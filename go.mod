module ferrum

go 1.22
