#!/usr/bin/env bash
# Rerun the canonical benchmarks at the pinned settings and rewrite
# BENCH_interp.json + BENCH_campaign.json + BENCH_obs.json in place, printing one
# machine-readable DELTA line per entry (file, benchmark, old ns, new ns,
# old/new ratio). The previous numbers are kept inside the JSONs as prev_*
# fields.
#
# By default the delta's before side is whatever the JSONs last recorded —
# possibly from a different host. Set BASELINE_REF to a git ref (e.g. the
# commit being compared against) to benchmark that checkout in a temporary
# worktree on this host first, making the delta a same-host before/after.
#
# Usage: scripts/bench.sh [interp|campaign|obs|compose]     (default: all)
# Env:   BENCHTIME (default 2s), COUNT (default 3),
#        CAMPAIGN_BENCHTIME (10x), OBS_BENCHTIME (20x),
#        COMPOSE_BENCHTIME (10x), BASELINE_REF (off)
set -euo pipefail
cd "$(dirname "$0")/.."

what="${1:-all}"
tmp="$(mktemp -d)"
baseline_wt=""
cleanup() {
  [[ -n "$baseline_wt" ]] && git worktree remove --force "$baseline_wt" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT

if [[ -n "${BASELINE_REF:-}" ]]; then
  baseline_wt="$tmp/baseline"
  git worktree add --quiet "$baseline_wt" "$BASELINE_REF" >&2
fi

# bench DIR PATTERN OUT EXTRA_ARGS... — one benchmark sweep into OUT.
bench() {
  local dir="$1" pattern="$2" out="$3"
  shift 3
  echo "== $out: go test -bench '$pattern' $*" >&2
  (cd "$dir" && go test -run xxx -bench "$pattern" "$@" .) | tee "$out" >&2
}

interp_args=()
campaign_args=()
obs_args=()
compose_args=()

if [[ "$what" == all || "$what" == interp ]]; then
  pat='Benchmark(MachineRun|IRRun)'
  flags=(-benchtime "${BENCHTIME:-2s}" -count "${COUNT:-3}")
  if [[ -n "$baseline_wt" ]]; then
    bench "$baseline_wt" "$pat" "$tmp/interp_prev.txt" "${flags[@]}"
    interp_args+=(-prev-interp "$tmp/interp_prev.txt")
  fi
  bench . "$pat" "$tmp/interp.txt" "${flags[@]}"
  interp_args+=(-interp "$tmp/interp.txt")
fi

if [[ "$what" == all || "$what" == campaign ]]; then
  pat='Benchmark(Asm|IR)Campaign'
  flags=(-benchtime "${CAMPAIGN_BENCHTIME:-10x}")
  if [[ -n "$baseline_wt" ]]; then
    bench "$baseline_wt" "$pat" "$tmp/campaign_prev.txt" "${flags[@]}"
    campaign_args+=(-prev-campaign "$tmp/campaign_prev.txt")
  fi
  bench . "$pat" "$tmp/campaign.txt" "${flags[@]}"
  campaign_args+=(-campaign "$tmp/campaign.txt")
fi

if [[ "$what" == all || "$what" == obs ]]; then
  # The obs-overhead guard needs the plain checkpointed campaign as the
  # baseline row, so two sweeps concatenate into one parse file. The
  # disabled mode still records detection latency into fi.Result (that
  # path is unconditional); only sink publication is obs-gated.
  flags=(-benchtime "${OBS_BENCHTIME:-20x}" -count "${COUNT:-3}")
  if [[ -n "$baseline_wt" ]]; then
    bench "$baseline_wt" 'BenchmarkObsOverhead' "$tmp/obs_prev_a.txt" "${flags[@]}"
    bench "$baseline_wt" 'BenchmarkAsmCampaign/checkpointed' "$tmp/obs_prev_b.txt" "${flags[@]}"
    cat "$tmp/obs_prev_a.txt" "$tmp/obs_prev_b.txt" > "$tmp/obs_prev.txt"
    obs_args+=(-prev-obs "$tmp/obs_prev.txt")
  fi
  bench . 'BenchmarkObsOverhead' "$tmp/obs_a.txt" "${flags[@]}"
  bench . 'BenchmarkAsmCampaign/checkpointed' "$tmp/obs_b.txt" "${flags[@]}"
  cat "$tmp/obs_a.txt" "$tmp/obs_b.txt" > "$tmp/obs.txt"
  obs_args+=(-obs "$tmp/obs.txt")
fi

if [[ "$what" == all || "$what" == compose ]]; then
  # Section-reuse headline: BENCH_compose.json asserts >= 3x full-vs-reuse.
  pat='BenchmarkCompose$'
  flags=(-benchtime "${COMPOSE_BENCHTIME:-10x}")
  if [[ -n "$baseline_wt" ]]; then
    bench "$baseline_wt" "$pat" "$tmp/compose_prev.txt" "${flags[@]}"
    compose_args+=(-prev-compose "$tmp/compose_prev.txt")
  fi
  bench . "$pat" "$tmp/compose.txt" "${flags[@]}"
  compose_args+=(-compose "$tmp/compose.txt")
fi

go run ./scripts/benchjson "${interp_args[@]}" "${campaign_args[@]}" "${obs_args[@]}" "${compose_args[@]}" -dir .
