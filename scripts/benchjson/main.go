// Command benchjson regenerates BENCH_interp.json, BENCH_campaign.json and
// BENCH_obs.json from raw `go test -bench` output. scripts/bench.sh runs the canonical
// benchmarks at the pinned -benchtime/-count settings and pipes the output
// here; this program takes the median across -count repetitions, rewrites
// both JSON files in place, and prints a machine-readable before/after
// delta line per rewritten entry (tab-separated: file, key, old ns, new
// ns, ratio). The previous numbers are preserved inside the JSONs as
// prev_* fields so the delta survives the rewrite.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// benchRuns maps benchmark name -> metric unit -> one value per -count
// repetition, in output order.
type benchRuns map[string]map[string][]float64

// parseBench reads `go test -bench` output: one line per repetition of each
// benchmark ("BenchmarkFoo/sub-8  100  12345 ns/op  67 plans/s ..."), plus
// the "cpu:" header line.
func parseBench(path string) (benchRuns, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	runs := benchRuns{}
	cpu := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip -GOMAXPROCS suffix
		}
		if runs[name] == nil {
			runs[name] = map[string][]float64{}
		}
		// fields[1] is the iteration count; the rest alternate value, unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, "", fmt.Errorf("%s: bad value %q in %q", path, fields[i], line)
			}
			unit := fields[i+1]
			runs[name][unit] = append(runs[name][unit], v)
		}
	}
	return runs, cpu, sc.Err()
}

func (r benchRuns) median(name, unit string) (float64, error) {
	vs := append([]float64(nil), r[name][unit]...)
	if len(vs) == 0 {
		return 0, fmt.Errorf("benchmark %q has no %q metric in the output", name, unit)
	}
	sort.Float64s(vs)
	return vs[len(vs)/2], nil
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }

// --- BENCH_interp.json ---

type interpCell struct {
	SeedNS    int64   `json:"seed_ns_per_run"`
	DecodedNS int64   `json:"decoded_ns_per_run"`
	Speedup   float64 `json:"speedup"`
	PrevNS    int64   `json:"prev_ns_per_run,omitempty"`
	Delta     float64 `json:"delta_vs_prev,omitempty"`
}

type interpFile struct {
	Description string                 `json:"description"`
	Date        string                 `json:"date"`
	CPU         string                 `json:"cpu"`
	Asm         map[string]*interpCell `json:"asm"`
	IR          map[string]*interpCell `json:"ir"`
}

const interpDesc = "Single-run interpreter throughput across engine generations (BenchmarkMachineRun / BenchmarkIRRun, bench_test.go). 'seed' is the original name-keyed engines; 'decoded' is the current tier: pre-decoded uops with basic-block threaded dispatch and profile-guided superinstruction fusion (asm) / slot-numbered registers with block-segment dispatch (IR). prev_ns_per_run is the before side of the delta (the same-host baseline ref when regenerated with BASELINE_REF, otherwise the previous regeneration) and delta_vs_prev the ratio against it. Median of -count runs. Regenerate with scripts/bench.sh, or: go test -run xxx -bench 'Benchmark(MachineRun|IRRun)' -benchtime 2s -count 3 ."

// rewriteInterp rewrites BENCH_interp.json from the parsed runs. When prev
// is non-nil (bench output from a baseline checkout on the same host), the
// prev_* fields come from it; otherwise they roll forward from the numbers
// already in the file — which may have been measured on a different host,
// so same-host baselines are preferred when the delta matters.
func rewriteInterp(path string, runs, prev benchRuns, cpu string) error {
	var f interpFile
	if err := readJSON(path, &f); err != nil {
		return err
	}
	for group, prefix := range map[string]map[string]*interpCell{
		"BenchmarkMachineRun/": f.Asm,
		"BenchmarkIRRun/":      f.IR,
	} {
		for key, cell := range prefix {
			ns, err := runs.median(group+key, "ns/op")
			if err != nil {
				return err
			}
			cell.PrevNS = cell.DecodedNS
			if prev != nil {
				pns, err := prev.median(group+key, "ns/op")
				if err != nil {
					return err
				}
				cell.PrevNS = int64(pns)
			}
			cell.DecodedNS = int64(ns)
			cell.Speedup = round2(float64(cell.SeedNS) / ns)
			cell.Delta = round2(float64(cell.PrevNS) / ns)
			deltaLine(path, group+key, cell.PrevNS, cell.DecodedNS)
		}
	}
	f.Description = interpDesc
	f.Date = time.Now().Format("2006-01-02")
	if cpu != "" {
		f.CPU = cpu
	}
	return writeJSON(path, &f)
}

// --- BENCH_campaign.json ---

type campPath struct {
	NS        int64   `json:"ns_per_campaign"`
	Plans     int64   `json:"plans_per_sec"`
	Executed  int64   `json:"executed_per_campaign,omitempty"`
	IntervalK int64   `json:"interval_k,omitempty"`
	Skipped   int64   `json:"skipped_insts_per_campaign,omitempty"`
	PrevNS    int64   `json:"prev_ns_per_campaign,omitempty"`
	PrevPlans int64   `json:"prev_plans_per_sec,omitempty"`
	Delta     float64 `json:"delta_vs_prev,omitempty"`
}

type campSide struct {
	Cell         string    `json:"cell"`
	Direct       *campPath `json:"direct"`
	Checkpointed *campPath `json:"checkpointed"`
	Pruned       *campPath `json:"pruned,omitempty"`
	SpeedupCkpt  float64   `json:"speedup_checkpointed,omitempty"`
	SpeedupPrune float64   `json:"speedup_pruned,omitempty"`
	Speedup      float64   `json:"speedup,omitempty"`
}

type campFile struct {
	Description string    `json:"description"`
	Date        string    `json:"date"`
	CPU         string    `json:"cpu"`
	Samples     int       `json:"samples_per_campaign"`
	Asm         *campSide `json:"asm"`
	IR          *campSide `json:"ir"`
}

const campDesc = "Campaign throughput for checkpointed fast-forward fault injection (BenchmarkAsmCampaign / BenchmarkIRCampaign, bench_test.go). Cell: bfs scale 1, seed 20240624, 250 samples, FERRUM-protected (asm) / EDDI-protected (IR). Workers are Clone()s of a fused template machine/interpreter; the asm paths run with profile-guided superinstruction fusion from the golden run. The pruned row runs the asm cell with Prune: full — plans/s counts planned samples (statically-answered plans included), executed counts plans that actually ran. prev_* fields are the before side of the delta (the same-host baseline ref when regenerated with BASELINE_REF, otherwise the previous regeneration) and delta_vs_prev the ns ratio against them. Regenerate with scripts/bench.sh, or: go test -run xxx -bench 'Benchmark(Asm|IR)Campaign' -benchtime 10x ."

func rewriteCampaign(path string, runs, prev benchRuns, cpu string) error {
	var f campFile
	if err := readJSON(path, &f); err != nil {
		return err
	}
	update := func(name string, p *campPath) error {
		if p == nil {
			return nil
		}
		ns, err := runs.median(name, "ns/op")
		if err != nil {
			return err
		}
		plans, err := runs.median(name, "plans/s")
		if err != nil {
			return err
		}
		p.PrevNS, p.PrevPlans = p.NS, p.Plans
		if prev != nil {
			pns, err := prev.median(name, "ns/op")
			if err != nil {
				return err
			}
			pplans, err := prev.median(name, "plans/s")
			if err != nil {
				return err
			}
			p.PrevNS, p.PrevPlans = int64(pns), int64(pplans)
		}
		p.NS, p.Plans = int64(ns), int64(plans)
		p.Delta = round2(float64(p.PrevNS) / ns)
		if v, err := runs.median(name, "K"); err == nil {
			p.IntervalK = int64(v)
		}
		if v, err := runs.median(name, "skipped-insts"); err == nil {
			p.Skipped = int64(v)
		}
		if v, err := runs.median(name, "executed"); err == nil {
			p.Executed = int64(v)
		}
		deltaLine(path, name, p.PrevNS, p.NS)
		return nil
	}
	for prefix, side := range map[string]*campSide{
		"BenchmarkAsmCampaign/": f.Asm,
		"BenchmarkIRCampaign/":  f.IR,
	} {
		if side == nil {
			continue
		}
		for name, p := range map[string]*campPath{
			prefix + "direct":       side.Direct,
			prefix + "checkpointed": side.Checkpointed,
			prefix + "pruned":       side.Pruned,
		} {
			if err := update(name, p); err != nil {
				return err
			}
		}
		if side.Direct != nil && side.Checkpointed != nil {
			ratio := round2(float64(side.Direct.NS) / float64(side.Checkpointed.NS))
			if side.Speedup != 0 {
				side.Speedup = ratio
			} else {
				side.SpeedupCkpt = ratio
			}
		}
		if side.Direct != nil && side.Pruned != nil {
			side.SpeedupPrune = round2(float64(side.Direct.NS) / float64(side.Pruned.NS))
		}
	}
	f.Description = campDesc
	f.Date = time.Now().Format("2006-01-02")
	if cpu != "" {
		f.CPU = cpu
	}
	return writeJSON(path, &f)
}

// --- BENCH_obs.json ---

type obsPath struct {
	NS        int64   `json:"ns_per_campaign"`
	Plans     int64   `json:"plans_per_sec"`
	PrevNS    int64   `json:"prev_ns_per_campaign,omitempty"`
	PrevPlans int64   `json:"prev_plans_per_sec,omitempty"`
	Delta     float64 `json:"delta_vs_prev,omitempty"`
}

type obsFile struct {
	Description        string   `json:"description"`
	Date               string   `json:"date"`
	CPU                string   `json:"cpu"`
	Samples            int      `json:"samples_per_campaign"`
	Cell               string   `json:"cell"`
	Baseline           *obsPath `json:"baseline_asm_checkpointed"`
	Disabled           *obsPath `json:"obs_disabled"`
	Enabled            *obsPath `json:"obs_enabled"`
	DisabledVsBaseline float64  `json:"disabled_vs_baseline"`
	Note               string   `json:"note"`
}

const obsDesc = "Observability off-path overhead (BenchmarkObsOverhead, bench_test.go). Same cell as BenchmarkAsmCampaign/checkpointed (bfs scale 1, seed 20240624, 250 samples, FERRUM-protected, checkpointed): 'disabled' runs with a nil obs.Ctx (the production default when no -events-out/-trace-out/-serve is given), 'enabled' runs with a live registry + tracer attached and publishes detection-latency histograms into it. Detection-latency capture itself (fi.Result per-outcome histograms) is unconditional in both modes. Median of -count runs. Regenerate with scripts/bench.sh obs, or: go test -run xxx -bench BenchmarkObsOverhead -benchtime 20x -count 3 . plus the same sweep of BenchmarkAsmCampaign/checkpointed."

const obsNote = "disabled must stay within single-CPU run-to-run noise (~±5% on this container) of the plain checkpointed baseline: latency capture adds two counter subtractions and one bucket increment per injected plan, and every other obs call is a nil-receiver no-op when no sink is attached; spans wrap campaign phases only, never the per-plan injection loop."

func rewriteObs(path string, runs, prev benchRuns, cpu string) error {
	var f obsFile
	if err := readJSON(path, &f); err != nil {
		return err
	}
	update := func(name string, p *obsPath) error {
		if p == nil {
			return fmt.Errorf("%s: missing row for %s", path, name)
		}
		ns, err := runs.median(name, "ns/op")
		if err != nil {
			return err
		}
		plans, err := runs.median(name, "plans/s")
		if err != nil {
			return err
		}
		p.PrevNS, p.PrevPlans = p.NS, p.Plans
		if prev != nil {
			pns, err := prev.median(name, "ns/op")
			if err != nil {
				return err
			}
			pplans, err := prev.median(name, "plans/s")
			if err != nil {
				return err
			}
			p.PrevNS, p.PrevPlans = int64(pns), int64(pplans)
		}
		p.NS, p.Plans = int64(ns), int64(plans)
		p.Delta = round2(float64(p.PrevNS) / ns)
		deltaLine(path, name, p.PrevNS, p.NS)
		return nil
	}
	for _, row := range []struct {
		name string
		p    *obsPath
	}{
		{"BenchmarkAsmCampaign/checkpointed", f.Baseline},
		{"BenchmarkObsOverhead/disabled", f.Disabled},
		{"BenchmarkObsOverhead/enabled", f.Enabled},
	} {
		if err := update(row.name, row.p); err != nil {
			return err
		}
	}
	f.DisabledVsBaseline = round2(float64(f.Disabled.NS) / float64(f.Baseline.NS))
	f.Description = obsDesc
	f.Note = obsNote
	f.Date = time.Now().Format("2006-01-02")
	if cpu != "" {
		f.CPU = cpu
	}
	return writeJSON(path, &f)
}

// --- BENCH_compose.json ---

type composeFile struct {
	Description string   `json:"description"`
	Date        string   `json:"date"`
	CPU         string   `json:"cpu"`
	Samples     int      `json:"samples_per_campaign"`
	Cell        string   `json:"cell"`
	Full        *obsPath `json:"full"`
	Reuse       *obsPath `json:"reuse"`
	Speedup     float64  `json:"speedup_reuse"`
	Note        string   `json:"note"`
}

const composeDesc = "Compositional-campaign section reuse (BenchmarkCompose, bench_test.go). Cell: bfs scale 1, seed 20240624, 1000 samples, raw (unprotected), Compose: on. 'full' runs the composed campaign against a cold section cache (golden run, recording run, every plan executed); 'reuse' runs the identical campaign against warm per-section propagation tables (every plan served from cache; only the golden and recording runs execute). speedup_reuse = full ns / reuse ns — the wall-clock saving a re-run pays when no section's content fingerprint changed. prev_* fields are the before side of the delta (the same-host baseline ref when regenerated with BASELINE_REF, otherwise the previous regeneration). Regenerate with scripts/bench.sh compose, or: go test -run xxx -bench 'BenchmarkCompose$' -benchtime 10x ."

const composeNote = "speedup_reuse must stay >= 3x: the reuse side's cost is sample-independent (two uninjected executions plus cache lookups), so falling under 3x means either the cache stopped serving (check compose.cache_plans_served) or the recording run regressed."

func rewriteCompose(path string, runs, prev benchRuns, cpu string) error {
	f := composeFile{Full: &obsPath{}, Reuse: &obsPath{}}
	if _, err := os.Stat(path); err == nil {
		if err := readJSON(path, &f); err != nil {
			return err
		}
	}
	update := func(name string, p *obsPath) error {
		ns, err := runs.median(name, "ns/op")
		if err != nil {
			return err
		}
		plans, err := runs.median(name, "plans/s")
		if err != nil {
			return err
		}
		p.PrevNS, p.PrevPlans = p.NS, p.Plans
		if prev != nil {
			pns, err := prev.median(name, "ns/op")
			if err != nil {
				return err
			}
			pplans, err := prev.median(name, "plans/s")
			if err != nil {
				return err
			}
			p.PrevNS, p.PrevPlans = int64(pns), int64(pplans)
		}
		p.NS, p.Plans = int64(ns), int64(plans)
		p.Delta = round2(float64(p.PrevNS) / ns)
		deltaLine(path, name, p.PrevNS, p.NS)
		return nil
	}
	if err := update("BenchmarkCompose/full", f.Full); err != nil {
		return err
	}
	if err := update("BenchmarkCompose/reuse", f.Reuse); err != nil {
		return err
	}
	f.Speedup = round2(float64(f.Full.NS) / float64(f.Reuse.NS))
	f.Samples = 1000
	f.Cell = "bfs/raw"
	f.Description = composeDesc
	f.Note = composeNote
	f.Date = time.Now().Format("2006-01-02")
	if cpu != "" {
		f.CPU = cpu
	}
	if f.Speedup < 3 {
		fmt.Fprintf(os.Stderr, "benchjson: WARNING: compose reuse speedup %.2fx below the 3x floor\n", f.Speedup)
	}
	return writeJSON(path, &f)
}

// --- plumbing ---

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// deltaLine prints one machine-readable before/after record:
// DELTA <file> <benchmark> <old ns> <new ns> <old/new ratio>.
func deltaLine(path, key string, oldNS, newNS int64) {
	ratio := 0.0
	if newNS != 0 {
		ratio = round2(float64(oldNS) / float64(newNS))
	}
	fmt.Printf("DELTA\t%s\t%s\t%d\t%d\t%.2f\n", filepath.Base(path), key, oldNS, newNS, ratio)
}

func main() {
	interp := flag.String("interp", "", "file with Benchmark(MachineRun|IRRun) output")
	campaign := flag.String("campaign", "", "file with Benchmark(Asm|IR)Campaign output")
	obsOut := flag.String("obs", "", "file with BenchmarkObsOverhead + BenchmarkAsmCampaign/checkpointed output")
	composeOut := flag.String("compose", "", "file with BenchmarkCompose output")
	prevInterp := flag.String("prev-interp", "", "optional baseline-checkout output for the interp before/after")
	prevCampaign := flag.String("prev-campaign", "", "optional baseline-checkout output for the campaign before/after")
	prevObs := flag.String("prev-obs", "", "optional baseline-checkout output for the obs before/after")
	prevCompose := flag.String("prev-compose", "", "optional baseline-checkout output for the compose before/after")
	dir := flag.String("dir", ".", "directory holding the BENCH_*.json files")
	flag.Parse()
	if *interp == "" && *campaign == "" && *obsOut == "" && *composeOut == "" {
		fmt.Fprintln(os.Stderr, "benchjson: need -interp, -campaign, -obs and/or -compose output files")
		os.Exit(2)
	}
	loadPrev := func(path string) benchRuns {
		if path == "" {
			return nil
		}
		runs, _, err := parseBench(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return runs
	}
	if *interp != "" {
		runs, cpu, err := parseBench(*interp)
		if err == nil {
			err = rewriteInterp(filepath.Join(*dir, "BENCH_interp.json"), runs, loadPrev(*prevInterp), cpu)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *campaign != "" {
		runs, cpu, err := parseBench(*campaign)
		if err == nil {
			err = rewriteCampaign(filepath.Join(*dir, "BENCH_campaign.json"), runs, loadPrev(*prevCampaign), cpu)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *obsOut != "" {
		runs, cpu, err := parseBench(*obsOut)
		if err == nil {
			err = rewriteObs(filepath.Join(*dir, "BENCH_obs.json"), runs, loadPrev(*prevObs), cpu)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *composeOut != "" {
		runs, cpu, err := parseBench(*composeOut)
		if err == nil {
			err = rewriteCompose(filepath.Join(*dir, "BENCH_compose.json"), runs, loadPrev(*prevCompose), cpu)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}
