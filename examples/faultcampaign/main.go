// Faultcampaign: run the paper's full fig. 10 + fig. 11 experiment matrix
// over a subset of benchmarks at reduced sample counts — the quickest way
// to see the reproduction's headline result end to end.
package main

import (
	"fmt"
	"log"

	"ferrum"
)

func main() {
	opts := ferrum.ExperimentOptions{
		Samples:    300,
		Seed:       1234,
		Benchmarks: []string{"bfs", "knn", "kmeans"},
	}

	fmt.Println(ferrum.RenderTable1())

	cov, err := ferrum.Fig10(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ferrum.RenderFig10(cov))

	ov, err := ferrum.Fig11(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ferrum.RenderFig11(ov))

	gap, err := ferrum.CrossLayerGap(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ferrum.RenderGap(gap))
}
