// Customkernel: protect your own kernel and explore FERRUM's design space —
// SIMD batch size and the SIMD/GPR ablation — the way §III-B of the paper
// motivates its choices. The kernel is a fixed-point matrix-vector product,
// the inner loop of the HPC workloads the paper's introduction targets.
package main

import (
	"fmt"
	"log"

	"ferrum"
)

const matvecSrc = `
; y = A*x (Q8.8 fixed point), followed by an output checksum.
; layout: A[n*n] | x[n] | y[n]
func @main(%base, %n) {
entry:
  %iS = alloca 1
  %jS = alloca 1
  %accS = alloca 1
  %csS = alloca 1
  %nsq = mul %n, %n
  %yoff = add %nsq, %n
  %xB = gep %base, %nsq
  %yB = gep %base, %yoff
  store 0, %iS
  br rowloop
rowloop:
  %i = load %iS
  %rc = icmp slt %i, %n
  br %rc, rowbody, emit
rowbody:
  store 0, %accS
  store 0, %jS
  br colloop
colloop:
  %j = load %jS
  %cc = icmp slt %j, %n
  br %cc, colbody, rowdone
colbody:
  %aIdx0 = mul %i, %n
  %aIdx = add %aIdx0, %j
  %aP = gep %base, %aIdx
  %a = load %aP
  %xP = gep %xB, %j
  %x = load %xP
  %p = mul %a, %x
  %pq = ashr %p, 8
  %acc0 = load %accS
  %acc1 = add %acc0, %pq
  store %acc1, %accS
  %j1 = add %j, 1
  store %j1, %jS
  br colloop
rowdone:
  %accF = load %accS
  %yP = gep %yB, %i
  store %accF, %yP
  %i1 = add %i, 1
  store %i1, %iS
  br rowloop
emit:
  store 0, %csS
  store 0, %iS
  br csloop
csloop:
  %ci = load %iS
  %cc2 = icmp slt %ci, %n
  br %cc2, csbody, done
csbody:
  %cyP = gep %yB, %ci
  %cy = load %cyP
  %cs0 = load %csS
  %cs1 = mul %cs0, 31
  %cs2 = add %cs1, %cy
  store %cs2, %csS
  %ci1 = add %ci, 1
  store %ci1, %iS
  br csloop
done:
  %csF = load %csS
  out %csF
  ret %csF
}
`

func main() {
	const n = 12
	data := map[uint64]uint64{}
	addr := uint64(8192)
	lcg := uint64(12345)
	next := func() uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return (lcg >> 33) % 512
	}
	for i := 0; i < n*n+n; i++ { // A then x
		data[addr] = next()
		addr += 8
	}
	args := []uint64{8192, n}

	pipe := ferrum.New()
	raw, err := pipe.CompileIR(matvecSrc)
	if err != nil {
		log.Fatal(err)
	}
	rawRes, err := pipe.Run(raw, args, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matvec raw: output %v, %.0f cycles\n\n", rawRes.Output, rawRes.Cycles)

	configs := []struct {
		name string
		cfg  ferrum.Config
	}{
		{"batch=4 (paper)", ferrum.Config{}},
		{"batch=2", ferrum.Config{BatchSize: 2}},
		{"batch=1", ferrum.Config{BatchSize: 1}},
		{"no SIMD (fig. 4 only)", ferrum.Config{DisableSIMD: true}},
	}
	campaign := ferrum.Campaign{Samples: 300, Seed: 9}
	rawCamp, err := pipe.Campaign(raw, args, data, campaign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %10s %10s %8s\n", "config", "overhead", "coverage", "insts")
	for _, c := range configs {
		pipe.Ferrum = c.cfg
		prot, _, err := pipe.Protect(raw)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pipe.Campaign(prot, args, data, campaign)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %9.1f%% %9.1f%% %8d\n",
			c.name,
			ferrum.Overhead(rawCamp.Cycles, res.Cycles)*100,
			ferrum.Coverage(rawCamp, res)*100,
			prot.StaticInstCount())
	}
	fmt.Println("\nlarger batches amortise the check branch over more results;")
	fmt.Println("disabling SIMD falls back to fig. 4 per-instruction GPR checks.")
}
