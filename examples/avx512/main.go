// Avx512: the extensions beyond the paper's evaluation — ZMM (AVX-512)
// batching that checks eight results per vptest (§III-B3 calls this out as
// viable), selective protection that trades coverage for overhead
// (SDCTune-style, ref. [9]), and multi-bit upsets (§II-A future work).
package main

import (
	"fmt"
	"log"

	"ferrum"
)

func main() {
	bench, _ := ferrum.BenchmarkByName("kmeans")
	inst, err := bench.Instantiate(1, 11)
	if err != nil {
		log.Fatal(err)
	}
	data := map[uint64]uint64{}
	for i, v := range inst.Words {
		data[8192+8*uint64(i)] = v
	}
	pipe := ferrum.New()
	raw, err := pipe.Compile(inst.Mod)
	if err != nil {
		log.Fatal(err)
	}
	campaign := ferrum.Campaign{Samples: 400, Seed: 3}
	rawRes, err := pipe.Campaign(raw, inst.Args, data, campaign)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("kmeans — FERRUM variants beyond the paper's evaluation")
	fmt.Printf("%-26s %10s %10s %9s\n", "variant", "overhead", "coverage", "batches")
	variants := []struct {
		name string
		cfg  ferrum.Config
	}{
		{"ymm batch=4 (paper)", ferrum.Config{}},
		{"zmm batch=8 (AVX-512)", ferrum.Config{UseZMM: true}},
		{"selective 50%", ferrum.Config{Select: ferrum.SelectRatio(0.5, 1)}},
		{"selective 25%", ferrum.Config{Select: ferrum.SelectRatio(0.25, 1)}},
	}
	for _, v := range variants {
		pipe.Ferrum = v.cfg
		prot, rep, err := pipe.Protect(raw)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pipe.Campaign(prot, inst.Args, data, campaign)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %9.1f%% %9.1f%% %9d\n",
			v.name,
			ferrum.Overhead(rawRes.Cycles, res.Cycles)*100,
			ferrum.Coverage(rawRes, res)*100,
			rep.Batches)
	}

	// Multi-bit upsets: FERRUM compares whole words, so double- and
	// triple-bit faults within one destination are caught like single
	// flips.
	pipe.Ferrum = ferrum.Config{}
	prot, _, err := pipe.Protect(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmulti-bit upsets (protected binary):")
	for _, bits := range []int{1, 2, 3} {
		res, err := pipe.Campaign(prot, inst.Args, data,
			ferrum.Campaign{Samples: 400, Seed: 3, BitsPerFault: bits})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d-bit faults: %3d detected, %d SDC\n",
			bits, res.Count(ferrum.OutcomeDetected), res.Count(ferrum.OutcomeSDC))
	}
}
