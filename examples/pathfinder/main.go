// Pathfinder: protect a real Rodinia workload (grid dynamic programming)
// with all three techniques from the paper and compare coverage and
// overhead side by side — the experiment of figs. 10 and 11 on one
// benchmark, driven through the public API.
package main

import (
	"fmt"
	"log"

	"ferrum"
)

func main() {
	bench, ok := ferrum.BenchmarkByName("pathfinder")
	if !ok {
		log.Fatal("pathfinder benchmark not registered")
	}
	inst, err := bench.Instantiate(1, 42)
	if err != nil {
		log.Fatal(err)
	}
	data := map[uint64]uint64{}
	for i, v := range inst.Words {
		data[8192+8*uint64(i)] = v
	}

	pipe := ferrum.New()
	raw, err := pipe.Compile(inst.Mod)
	if err != nil {
		log.Fatal(err)
	}
	campaign := ferrum.Campaign{Samples: 500, Seed: 7}
	rawRes, err := pipe.Campaign(raw, inst.Args, data, campaign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pathfinder (raw): %d dynamic sites, SDC rate %.1f%%, golden output %v\n\n",
		rawRes.DynSites, rawRes.SDCRate()*100, rawRes.Golden)

	type variant struct {
		name  string
		build func() (*ferrum.Program, error)
	}
	variants := []variant{
		{"ir-level-eddi", func() (*ferrum.Program, error) { return pipe.ProtectModuleIREDDI(inst.Mod) }},
		{"hybrid-asm-eddi", func() (*ferrum.Program, error) { return pipe.ProtectModuleHybrid(inst.Mod) }},
		{"ferrum", func() (*ferrum.Program, error) {
			p, _, err := pipe.ProtectModuleFerrum(inst.Mod)
			return p, err
		}},
	}
	fmt.Printf("%-16s %10s %10s %10s %10s\n", "technique", "coverage", "overhead", "detected", "sdc")
	for _, v := range variants {
		prog, err := v.build()
		if err != nil {
			log.Fatal(err)
		}
		res, err := pipe.Campaign(prog, inst.Args, data, campaign)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %9.1f%% %9.1f%% %10d %10d\n",
			v.name,
			ferrum.Coverage(rawRes, res)*100,
			ferrum.Overhead(rawRes.Cycles, res.Cycles)*100,
			res.Count(ferrum.OutcomeDetected),
			res.Count(ferrum.OutcomeSDC))
	}
}
