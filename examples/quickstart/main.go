// Quickstart: compile a small kernel, protect it with FERRUM, run it, and
// watch a single injected bit flip get detected instead of silently
// corrupting the output.
package main

import (
	"fmt"
	"log"

	"ferrum"
)

const src = `
; sum of squares 1..n
func @main(%n) {
entry:
  %acc = alloca 1
  %i = alloca 1
  store 0, %acc
  store 1, %i
  br loop
loop:
  %iv = load %i
  %c = icmp sle %iv, %n
  br %c, body, done
body:
  %sq = mul %iv, %iv
  %a = load %acc
  %a2 = add %a, %sq
  store %a2, %acc
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  %r = load %acc
  out %r
  ret %r
}
`

func main() {
	pipe := ferrum.New()

	// Compile the IR kernel to the modelled x86-64 subset.
	raw, err := pipe.CompileIR(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d static instructions\n", raw.StaticInstCount())

	// Apply FERRUM: SIMD-batched duplication, deferred comparison
	// protection, one check branch per four results.
	prot, rep, err := pipe.Protect(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected: %d instructions (%d SIMD-enabled, %d general, %d comparison units, %d batches) in %v\n",
		prot.StaticInstCount(), rep.SIMDEnabled, rep.General, rep.Comparisons, rep.Batches, rep.Duration)

	// Run both versions: same output, bounded overhead.
	args := []uint64{100}
	rawRes, err := pipe.Run(raw, args, nil)
	if err != nil {
		log.Fatal(err)
	}
	protRes, err := pipe.Run(prot, args, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw output: %d in %.0f cycles\n", rawRes.Output[0], rawRes.Cycles)
	fmt.Printf("protected output: %d in %.0f cycles (overhead %.1f%%)\n",
		protRes.Output[0], protRes.Cycles,
		ferrum.Overhead(rawRes.Cycles, protRes.Cycles)*100)

	// Inject one bit flip into the same dynamic site of both binaries.
	m, err := pipe.NewMachine(raw)
	if err != nil {
		log.Fatal(err)
	}
	faulty := m.Run(ferrum.RunOpts{Args: args, Fault: &ferrum.Fault{Site: 120, Bit: 7}})
	fmt.Printf("\nfault in raw binary:       outcome=%v output=%v  <- silent corruption\n",
		faulty.Outcome, faulty.Output)

	mp, err := pipe.NewMachine(prot)
	if err != nil {
		log.Fatal(err)
	}
	caught := mp.Run(ferrum.RunOpts{Args: args, Fault: &ferrum.Fault{Site: 120, Bit: 7}})
	fmt.Printf("fault in FERRUM binary:    outcome=%v  <- checker trapped before output\n",
		caught.Outcome)
}
