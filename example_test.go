package ferrum_test

import (
	"fmt"

	"ferrum"
)

// The canonical FERRUM flow: compile, protect, run.
func Example() {
	pipe := ferrum.New()
	prog, err := pipe.CompileIR(`
func @main(%n) {
entry:
  %sq = mul %n, %n
  out %sq
  ret %sq
}
`)
	if err != nil {
		panic(err)
	}
	prot, _, err := pipe.Protect(prog)
	if err != nil {
		panic(err)
	}
	res, err := pipe.Run(prot, []uint64{9}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Output[0])
	// Output: 81
}

// A fault injected into a FERRUM-protected binary is detected instead of
// silently corrupting the output.
func Example_faultDetection() {
	pipe := ferrum.New()
	prog, err := pipe.CompileIR(`
func @main(%n) {
entry:
  %d = add %n, 1
  out %d
  ret %d
}
`)
	if err != nil {
		panic(err)
	}
	prot, _, err := pipe.Protect(prog)
	if err != nil {
		panic(err)
	}
	m, err := pipe.NewMachine(prot)
	if err != nil {
		panic(err)
	}
	res := m.Run(ferrum.RunOpts{
		Args:  []uint64{7},
		Fault: &ferrum.Fault{Site: 13, Bit: 3},
	})
	fmt.Println(res.Outcome)
	// Output: detected
}

// Campaigns measure the paper's coverage metric statistically.
func ExampleCoverage() {
	pipe := ferrum.New()
	src := `
func @main(%n) {
entry:
  %iS = alloca 1
  %accS = alloca 1
  store 0, %iS
  store 0, %accS
  br loop
loop:
  %i = load %iS
  %c = icmp slt %i, %n
  br %c, body, done
body:
  %a = load %accS
  %a2 = add %a, %i
  store %a2, %accS
  %i2 = add %i, 1
  store %i2, %iS
  br loop
done:
  %r = load %accS
  out %r
  ret %r
}
`
	raw, err := pipe.CompileIR(src)
	if err != nil {
		panic(err)
	}
	prot, _, err := pipe.Protect(raw)
	if err != nil {
		panic(err)
	}
	campaign := ferrum.Campaign{Samples: 200, Seed: 1}
	rawRes, err := pipe.Campaign(raw, []uint64{50}, nil, campaign)
	if err != nil {
		panic(err)
	}
	protRes, err := pipe.Campaign(prot, []uint64{50}, nil, campaign)
	if err != nil {
		panic(err)
	}
	fmt.Printf("coverage: %.0f%%\n", ferrum.Coverage(rawRes, protRes)*100)
	// Output: coverage: 100%
}

// Benchmarks from the paper's Table II are available by name.
func ExampleBenchmarkByName() {
	b, ok := ferrum.BenchmarkByName("pathfinder")
	if !ok {
		panic("missing benchmark")
	}
	fmt.Println(b.Domain)
	// Output: Dynamic Programming
}
