package ferrumpass

import (
	"fmt"

	"ferrum/internal/asm"
	"ferrum/internal/eddi"
	"ferrum/internal/liveness"
)

// pendingLabels are attached by emitL to the next instruction so block
// labels stay at the block's (possibly transformed) start.
func (st *fnState) emitL(in asm.Inst) {
	if len(st.pendingLabels) > 0 {
		in.Labels = append(append([]string(nil), st.pendingLabels...), in.Labels...)
		st.pendingLabels = nil
	}
	st.out = append(st.out, in)
}

// processBlock transforms one basic block.
//
// Register requisition (fig. 7) needs care around stack-pointer changes:
// a pushed register must be popped at the same stack depth. The backend
// moves %rsp only in the prologue (entry block) and the epilogue, so the
// entry block protects its prologue with the reserved comparison registers
// (re-zeroing them afterwards) and requisitions only once the frame is
// established, and every block pops requisitioned registers before the
// epilogue restores %rsp.
func (st *fnState) processBlock(b asm.Block) error {
	insts := st.f.Insts[b.Start:b.End]

	// Deferred comparison check for a fall-through successor of a
	// protected conditional jump (the unlabelled half of fig. 5).
	if st.pendingCheck {
		st.pendingCheck = false
		for _, in := range st.deferredCheck() {
			st.emitL(in)
		}
	}
	if len(insts) == 0 {
		return nil
	}
	st.pendingLabels = insts[0].Labels

	needReq := st.gen == asm.RNone && st.needsGen(insts)
	st.blockGen, st.blockGen2 = st.gen, st.gen2
	st.req = nil
	st.usedCmpAsGen = false

	i := 0
	if needReq {
		// Entry block: run the prologue on borrowed comparison registers
		// before requisitioning at a stable stack depth.
		if b.Start == 0 {
			pro := prologueLen(insts)
			st.blockGen, st.blockGen2 = st.cmpA, st.cmpB
			for i < pro {
				st.curIdx = b.Start + i
				n, err := st.processInst(insts, i)
				if err != nil {
					return err
				}
				i += n
			}
			st.rezeroPair()
		}
		cands := st.requisitionCandidates(b)
		need := 1
		if st.blockGen2 == asm.RNone && st.needsGen2(insts) {
			need = 2
		}
		if len(cands) < need {
			return fmt.Errorf("block at %d: no register available for requisition", b.Start)
		}
		st.blockGen = cands[0]
		st.req = append(st.req, cands[0])
		if need == 2 {
			st.blockGen2 = cands[1]
			st.req = append(st.req, cands[1])
		}
		for _, r := range st.req {
			st.emitL(asm.NewInst(asm.PUSHQ, asm.Reg64(r)).
				WithTag(asm.TagSpill).WithComment("get temporary use"))
		}
		st.usedCmpAsGen = false
		st.rep.Requisitions++
	}

	for i < len(insts) {
		st.curIdx = b.Start + i
		n, err := st.processInst(insts, i)
		if err != nil {
			return err
		}
		i += n
	}

	// Fall-through block end.
	st.flush()
	st.popReq()
	return nil
}

// prologueLen returns the length of the backend prologue prefix:
// pushq %rbp ; movq %rsp, %rbp ; [subq $n, %rsp].
func prologueLen(insts []asm.Inst) int {
	n := 0
	if n < len(insts) && insts[n].Op == asm.PUSHQ && insts[n].A[0].IsReg(asm.RBP) {
		n++
	}
	if n < len(insts) && insts[n].Op == asm.MOVQ && len(insts[n].A) == 2 &&
		insts[n].A[0].IsReg(asm.RSP) && insts[n].A[1].IsReg(asm.RBP) {
		n++
	}
	if n < len(insts) && insts[n].Op == asm.SUBQ && insts[n].A[0].Kind == asm.KImm &&
		insts[n].Dst().IsReg(asm.RSP) {
		n++
	}
	return n
}

func (st *fnState) rezeroPair() {
	st.emitL(asm.NewInst(asm.MOVB, asm.Imm(0), asm.Reg8(st.cmpA)).WithTag(asm.TagStage))
	st.emitL(asm.NewInst(asm.MOVB, asm.Imm(0), asm.Reg8(st.cmpB)).WithTag(asm.TagStage))
}

func (st *fnState) popReq() {
	for i := len(st.req) - 1; i >= 0; i-- {
		st.emitL(asm.NewInst(asm.POPQ, asm.Reg64(st.req[i])).
			WithTag(asm.TagSpill).WithComment("reload to previous value"))
	}
	st.req = nil
}

// processInst transforms insts[i] (possibly consuming insts[i+1] for
// compare units) and returns how many input instructions were consumed.
func (st *fnState) processInst(insts []asm.Inst, i int) (int, error) {
	in := insts[i]
	in.Labels = nil // block labels travel via pendingLabels

	switch {
	case eddi.Classify(in) == eddi.KindFlagsOnly:
		if i+1 >= len(insts) {
			return 0, fmt.Errorf("compare at block end without consumer: %s", in.String())
		}
		next := insts[i+1]
		if !st.selected(st.curIdx, in) {
			// Selective protection skips this unit; the flush still runs
			// first so the batch check's flag effects precede the compare.
			st.flush()
			if asm.IsCondJump(next.Op) {
				st.popReq()
			}
			st.emitL(in)
			next.Labels = nil
			st.emitL(next)
			return 2, nil
		}
		switch {
		case asm.IsCondJump(next.Op):
			st.flush()
			st.popReq()
			st.emitCmpJccUnit(in, next)
			return 2, nil
		case asm.IsSetcc(next.Op):
			if st.blockGen == asm.RNone {
				return 0, fmt.Errorf("compare+setcc needs a general spare register")
			}
			st.emitCmpSetccUnit(in, next, st.blockGen)
			return 2, nil
		default:
			return 0, fmt.Errorf("unsupported flag pattern: %s then %s",
				in.String(), next.String())
		}

	case asm.IsCondJump(in.Op):
		return 0, fmt.Errorf("conditional jump without adjacent compare: %s", in.String())

	case in.Op == asm.CALL, in.Op == asm.OUT:
		st.flush()
		st.emitL(in)

	case in.Op == asm.JMP:
		st.flush()
		st.popReq()
		st.emitL(in)

	case in.Op == asm.RET:
		st.flush()
		st.popReq()
		if st.usedCmpAsGen {
			st.rezeroPair()
		}
		st.emitL(in)

	case in.Op == asm.HALT, in.Op == asm.DETECT:
		st.flush()
		st.popReq()
		st.emitL(in)

	default:
		// Epilogue boundary: once the stack pointer is about to be
		// restored from %rbp, requisitioned registers must be popped
		// (their save slots sit at the current depth). The remaining
		// epilogue instructions borrow the reserved comparison registers
		// for duplication; the pair is re-zeroed before ret.
		if len(st.req) > 0 && isEpilogueStart(in) {
			st.popReq()
			st.blockGen, st.blockGen2 = st.cmpA, st.cmpB
			st.usedCmpAsGen = true
		}
		if !st.selected(st.curIdx, in) {
			st.emitL(in)
			return 1, nil
		}
		if st.simd && simdEligible(in) {
			st.batchEmit(in)
			return 1, nil
		}
		seq, ok := eddi.BuildDup(in, st.blockGen, st.blockGen2)
		if !ok {
			st.emitL(in) // stores, pushes: no register destination
			return 1, nil
		}
		if st.blockGen == asm.RNone {
			return 0, fmt.Errorf("no spare register for %s", in.String())
		}
		if eddi.Classify(in) == eddi.KindIdiv && st.blockGen2 == asm.RNone {
			return 0, fmt.Errorf("division protection needs a second spare register")
		}
		st.rep.General++
		for _, d := range seq.Pre {
			st.emitL(d)
		}
		st.emitL(in)
		for _, d := range seq.Post {
			st.emitL(d)
		}
		for _, d := range seq.Check {
			st.emitL(d)
		}
	}
	return 1, nil
}

func isEpilogueStart(in asm.Inst) bool {
	return in.Op == asm.MOVQ && len(in.A) == 2 &&
		in.A[0].IsReg(asm.RBP) && in.A[1].IsReg(asm.RSP)
}

// requisitionCandidates lists registers this block never touches, excluding
// the reserved comparison pair.
func (st *fnState) requisitionCandidates(b asm.Block) []asm.Reg {
	var out []asm.Reg
	for _, r := range liveness.BlockUnusedGPRs(st.f, b) {
		if r == st.cmpA || r == st.cmpB {
			continue
		}
		out = append(out, r)
	}
	return out
}

// needsGen reports whether any instruction in the block requires the
// general duplication spare.
func (st *fnState) needsGen(insts []asm.Inst) bool {
	for i, in := range insts {
		switch eddi.Classify(in) {
		case eddi.KindFlagsOnly:
			if i+1 < len(insts) && asm.IsSetcc(insts[i+1].Op) {
				return true
			}
		case eddi.KindMov:
			if !(st.simd && simdEligible(in)) {
				return true
			}
		case eddi.KindRMW, eddi.KindNeg, eddi.KindPop, eddi.KindCqto,
			eddi.KindIdiv, eddi.KindSetcc:
			return true
		}
	}
	return false
}

func (st *fnState) needsGen2(insts []asm.Inst) bool {
	for _, in := range insts {
		if eddi.Classify(in) == eddi.KindIdiv {
			return true
		}
	}
	return false
}

// emitCmpJccUnit implements the deferred RFLAGS detection of fig. 5: the
// compare runs, its condition is captured with setcc into the first
// reserved register, the compare is re-executed and captured into the
// second, and the jump proceeds on the flags of the re-execution. Both
// successors verify the pair matches. The captured condition mirrors the
// jump's own condition code (fig. 5 captures ZF with sete; mirroring the
// condition extends the protection to sign/overflow-flag faults as well).
func (st *fnState) emitCmpJccUnit(cmp, jcc asm.Inst) {
	cc := asm.CondOf(jcc.Op)
	st.emitL(cmp)
	st.emitL(asm.NewInst(asm.SetccFor(cc), asm.Reg8(st.cmpA)).
		WithTag(asm.TagStage).WithComment("set original flag"))
	dup := cmp
	dup.Tag = asm.TagDup
	st.emitL(dup)
	st.emitL(asm.NewInst(asm.SetccFor(cc), asm.Reg8(st.cmpB)).
		WithTag(asm.TagStage).WithComment("set duplication flag"))
	st.emitL(jcc)
	st.rep.Comparisons++
	st.checkAt[jcc.A[0].Label] = true
	st.pendingCheck = true
}

// emitCmpSetccUnit protects a compare whose condition is materialised into
// a register. The original flags are captured into the spare first, the
// compare is re-executed, and only then does the original setcc run — the
// original setcc may clobber one of the compare's operand registers (the
// backend reuses %rax for both), so the duplicate compare must read its
// operands before that write. A fault in either compare's flags or either
// capture makes the two captures disagree.
func (st *fnState) emitCmpSetccUnit(cmp, setcc asm.Inst, spare asm.Reg) {
	st.emitL(cmp)
	st.emitL(asm.NewInst(setcc.Op, asm.Reg8(spare)).WithTag(asm.TagDup))
	dup := cmp
	dup.Tag = asm.TagDup
	st.emitL(dup)
	st.emitL(setcc)
	st.emitL(asm.NewInst(asm.XORB, asm.RegOp(setcc.Dst().Reg, asm.W8), asm.Reg8(spare)).
		WithTag(asm.TagCheck))
	st.emitL(asm.NewInst(asm.JNE, asm.LabelOp(asm.DetectLabel)).WithTag(asm.TagCheck))
	st.rep.CompareValues++
}

// batchEmit stages one SIMD-ENABLED instruction into the current batch
// (fig. 6): the duplicate targets the pair's dup register, the original
// executes, and its result is staged into the pair's original register.
func (st *fnState) batchEmit(in asm.Inst) {
	if !st.batchOpen {
		// Zero the staging registers so partially filled batches compare
		// clean lanes.
		pairs := (st.cfg.BatchSize + 1) / 2
		for p := 0; p < pairs; p++ {
			for _, x := range []asm.XReg{st.x[p*2], st.x[p*2+1]} {
				st.emitL(asm.NewInst(asm.VPXOR, asm.Ymm(x), asm.Ymm(x), asm.Ymm(x)).
					WithTag(asm.TagStage))
			}
		}
		st.batchOpen = true
	}
	k := st.batch
	pair := k / 2
	lane := k % 2
	dupX := st.x[pair*2]
	origX := st.x[pair*2+1]
	src := in.A[0]
	dst := in.Dst()

	if lane == 0 {
		st.emitL(asm.NewInst(asm.MOVQ, src, asm.Xmm(dupX)).WithTag(asm.TagDup))
	} else {
		st.emitL(asm.NewInst(asm.PINSRQ, asm.Imm(1), src, asm.Xmm(dupX)).WithTag(asm.TagDup))
	}
	orig := in
	orig.Comment = "original Ins"
	st.emitL(orig)
	if lane == 0 {
		st.emitL(asm.NewInst(asm.MOVQ, asm.Reg64(dst.Reg), asm.Xmm(origX)).WithTag(asm.TagStage))
	} else {
		st.emitL(asm.NewInst(asm.PINSRQ, asm.Imm(1), asm.Reg64(dst.Reg), asm.Xmm(origX)).
			WithTag(asm.TagStage))
	}
	st.rep.SIMDEnabled++
	st.batch++
	if st.batch >= st.cfg.BatchSize {
		st.flush()
	}
}

// flush closes the current SIMD batch with the fig. 6 check sequence:
// shift the second XMM pair of each half into the YMM views, combine YMM
// halves into ZMM when more than four results are staged (the AVX-512
// extension of §III-B3), then xor, test, trap.
func (st *fnState) flush() {
	if st.batch == 0 {
		return
	}
	if st.batch > 2 {
		st.emitL(asm.NewInst(asm.VINSERTI128, asm.Imm(1), asm.Xmm(st.x[2]), asm.Ymm(st.x[0]), asm.Ymm(st.x[0])).
			WithTag(asm.TagCheck))
		st.emitL(asm.NewInst(asm.VINSERTI128, asm.Imm(1), asm.Xmm(st.x[3]), asm.Ymm(st.x[1]), asm.Ymm(st.x[1])).
			WithTag(asm.TagCheck))
	}
	if st.batch > 4 {
		if st.batch > 6 {
			st.emitL(asm.NewInst(asm.VINSERTI128, asm.Imm(1), asm.Xmm(st.x[6]), asm.Ymm(st.x[4]), asm.Ymm(st.x[4])).
				WithTag(asm.TagCheck))
			st.emitL(asm.NewInst(asm.VINSERTI128, asm.Imm(1), asm.Xmm(st.x[7]), asm.Ymm(st.x[5]), asm.Ymm(st.x[5])).
				WithTag(asm.TagCheck))
		}
		st.emitL(asm.NewInst(asm.VINSERTI644, asm.Imm(1), asm.Ymm(st.x[4]), asm.Zmm(st.x[0]), asm.Zmm(st.x[0])).
			WithTag(asm.TagCheck))
		st.emitL(asm.NewInst(asm.VINSERTI644, asm.Imm(1), asm.Ymm(st.x[5]), asm.Zmm(st.x[1]), asm.Zmm(st.x[1])).
			WithTag(asm.TagCheck))
		st.emitL(asm.NewInst(asm.VPXOR, asm.Zmm(st.x[1]), asm.Zmm(st.x[0]), asm.Zmm(st.x[0])).
			WithTag(asm.TagCheck))
		st.emitL(asm.NewInst(asm.VPTEST, asm.Zmm(st.x[0]), asm.Zmm(st.x[0])).
			WithTag(asm.TagCheck))
	} else {
		st.emitL(asm.NewInst(asm.VPXOR, asm.Ymm(st.x[1]), asm.Ymm(st.x[0]), asm.Ymm(st.x[0])).
			WithTag(asm.TagCheck))
		st.emitL(asm.NewInst(asm.VPTEST, asm.Ymm(st.x[0]), asm.Ymm(st.x[0])).
			WithTag(asm.TagCheck))
	}
	st.emitL(asm.NewInst(asm.JNE, asm.LabelOp(asm.DetectLabel)).WithTag(asm.TagCheck))
	st.batch = 0
	st.batchOpen = false
	st.rep.Batches++
}
