package ferrumpass

import (
	"strings"
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/backend"
	"ferrum/internal/eddi"
	"ferrum/internal/ir"
	"ferrum/internal/irpass"
	"ferrum/internal/machine"
)

const memSize = 1 << 20

const loopSrc = `
func @main(%n, %base) {
entry:
  %acc = alloca 1
  %i = alloca 1
  store 0, %acc
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = icmp slt %iv, %n
  br %c, body, done
body:
  %p = gep %base, %iv
  %v = load %p
  %a = load %acc
  %a2 = add %a, %v
  store %a2, %acc
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  %r = load %acc
  out %r
  ret %r
}
`

func compileIR(t *testing.T, src string) *asm.Program {
	t.Helper()
	mod, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("ir.Parse: %v", err)
	}
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return prog
}

func newMachine(t *testing.T, prog *asm.Program, data map[uint64]uint64) *machine.Machine {
	t.Helper()
	m, err := machine.New(prog, memSize)
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	for addr, v := range data {
		if err := m.WriteWordImage(addr, v); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func arrayData(base uint64, vals ...uint64) map[uint64]uint64 {
	m := map[uint64]uint64{}
	for i, v := range vals {
		m[base+8*uint64(i)] = v
	}
	return m
}

func equalOutput(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestProtectPreservesSemantics(t *testing.T) {
	prog := compileIR(t, loopSrc)
	prot, rep, err := Protect(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := arrayData(8192, 10, 20, 30, 40)
	args := []uint64{4, 8192}
	raw := newMachine(t, prog, data).Run(machine.RunOpts{Args: args})
	protRes := newMachine(t, prot, data).Run(machine.RunOpts{Args: args})
	if raw.Outcome != machine.OutcomeOK {
		t.Fatalf("raw outcome %v (%s)", raw.Outcome, raw.CrashMsg)
	}
	if protRes.Outcome != machine.OutcomeOK {
		t.Fatalf("protected outcome %v (%s)", protRes.Outcome, protRes.CrashMsg)
	}
	if !equalOutput(raw.Output, protRes.Output) {
		t.Fatalf("outputs differ: %v vs %v", raw.Output, protRes.Output)
	}
	if rep.SIMDEnabled == 0 || rep.Comparisons == 0 || rep.Batches == 0 {
		t.Errorf("report looks empty: %+v", rep)
	}
	if prog.String() == prot.String() {
		t.Error("Protect returned the input unchanged")
	}
}

func TestProtectAllConfigsPreserveSemantics(t *testing.T) {
	prog := compileIR(t, loopSrc)
	data := arrayData(8192, 5, 6, 7, 8, 9)
	args := []uint64{5, 8192}
	raw := newMachine(t, prog, data).Run(machine.RunOpts{Args: args})
	configs := map[string]Config{
		"default":     {},
		"batch1":      {BatchSize: 1},
		"batch2":      {BatchSize: 2},
		"batch3":      {BatchSize: 3},
		"nosimd":      {DisableSIMD: true},
		"requisition": {SpareGPRs: []asm.Reg{asm.R11, asm.R12}},
		"threeSpares": {SpareGPRs: []asm.Reg{asm.R11, asm.R12, asm.R10}},
		"fewXMM":      {SpareXMMs: []asm.XReg{0, 1}},
	}
	for name, cfg := range configs {
		prot, _, err := Protect(prog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := newMachine(t, prot, data).Run(machine.RunOpts{Args: args})
		if res.Outcome != machine.OutcomeOK {
			t.Errorf("%s: outcome %v (%s)", name, res.Outcome, res.CrashMsg)
			continue
		}
		if !equalOutput(raw.Output, res.Output) {
			t.Errorf("%s: outputs differ: %v vs %v", name, raw.Output, res.Output)
		}
	}
}

// TestFig4Pattern checks the GENERAL-INSTRUCTIONS protection shape: dup into
// a spare register, original, xor, jne exit_function.
func TestFig4Pattern(t *testing.T) {
	src := `
	.globl	main
main:
	movslq	%ecx, %rcx
	hlt

	.globl	__rt
__rt:
exit_function:
	detect
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prot, rep, err := Protect(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.General != 1 {
		t.Errorf("general = %d, want 1", rep.General)
	}
	text := prot.Func("main")
	var got []string
	for _, in := range text.Insts {
		got = append(got, in.Op.String())
	}
	// init movb, movb, then dup movslq, orig movslq, xorq, jne, hlt.
	want := []string{"movb", "movb", "movslq", "movslq", "xorq", "jne", "hlt"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("sequence = %v, want %v", got, want)
	}
	// The duplicate must come before the original and target a spare.
	dup, orig := text.Insts[2], text.Insts[3]
	if dup.Tag != asm.TagDup || orig.Tag != asm.TagProgram {
		t.Errorf("dup/orig tags wrong: %v %v", dup.Tag, orig.Tag)
	}
	if dup.Dst().Reg == orig.Dst().Reg {
		t.Error("duplicate writes the original destination")
	}
}

// TestFig5Pattern checks deferred comparison protection: cmp, setcc A,
// cmp', setcc B, jcc, and the pair check at both successors.
func TestFig5Pattern(t *testing.T) {
	src := `
func @main(%n) {
entry:
  %c = icmp slt %n, 12
  br %c, a, b
a:
  out 1
  ret
b:
  out 0
  ret
}
`
	prog := compileIR(t, src)
	prot, rep, err := Protect(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Comparisons != 1 {
		t.Errorf("comparisons = %d, want 1", rep.Comparisons)
	}
	f := prot.Func("main")
	// Find the protected conditional jump unit: cmp, setcc, cmp, setcc, jcc.
	found := false
	for i := 0; i+4 < len(f.Insts); i++ {
		a, b, c, d, e := f.Insts[i], f.Insts[i+1], f.Insts[i+2], f.Insts[i+3], f.Insts[i+4]
		if a.Op == asm.CMPQ && asm.IsSetcc(b.Op) && c.Op == asm.CMPQ &&
			asm.IsSetcc(d.Op) && asm.IsCondJump(e.Op) {
			found = true
			if b.Dst().Reg == d.Dst().Reg {
				t.Error("both setcc captures target the same register")
			}
			if asm.CondOf(b.Op) != asm.CondOf(e.Op) {
				t.Error("setcc condition does not mirror the jump condition")
			}
		}
	}
	if !found {
		t.Errorf("deferred unit not found in:\n%s", prot)
	}
	// Both successors carry the pair check (cmpb + jne).
	checks := 0
	for _, in := range f.Insts {
		if in.Op == asm.CMPB && in.Tag == asm.TagCheck {
			checks++
		}
	}
	if checks < 2 {
		t.Errorf("pair checks = %d, want >= 2", checks)
	}
}

// TestFig6Pattern checks the SIMD batch shape: movq/pinsrq staging into two
// XMM pairs, vinserti128 x2, vpxor, vptest, jne.
func TestFig6Pattern(t *testing.T) {
	src := `
	.globl	main
main:
	movq	-24(%rbp), %rax
	movq	8(%rax), %rdi
	movq	-24(%rbp), %rcx
	movq	16(%rax), %rsi
	hlt

	.globl	__rt
__rt:
exit_function:
	detect
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prot, rep, err := Protect(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SIMDEnabled != 4 {
		t.Errorf("simd-enabled = %d, want 4", rep.SIMDEnabled)
	}
	if rep.Batches != 1 {
		t.Errorf("batches = %d, want 1", rep.Batches)
	}
	text := prot.String()
	for _, needle := range []string{"pinsrq", "vinserti128", "vpxor", "vptest"} {
		if !strings.Contains(text, needle) {
			t.Errorf("missing %s in:\n%s", needle, text)
		}
	}
	// Exactly one check branch for the whole batch of four.
	f := prot.Func("main")
	jnes := 0
	for _, in := range f.Insts {
		if in.Op == asm.JNE {
			jnes++
		}
	}
	if jnes != 1 {
		t.Errorf("jne count = %d, want 1 (one check per batch)", jnes)
	}
}

// TestFig7Pattern checks stack requisition: with no spare register for
// general duplication, the block pushes an unused register, uses it, and
// pops it back.
func TestFig7Pattern(t *testing.T) {
	src := `
	.globl	main
main:
	movslq	%ecx, %rcx
	hlt

	.globl	__rt
__rt:
exit_function:
	detect
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Only the two comparison registers are "spare": the general dup
	// register must be requisitioned.
	prot, rep, err := Protect(prog, Config{SpareGPRs: []asm.Reg{asm.R11, asm.R12}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requisitions == 0 {
		t.Error("no requisition recorded")
	}
	f := prot.Func("main")
	var pushes, pops int
	for _, in := range f.Insts {
		switch in.Op {
		case asm.PUSHQ:
			if in.Tag == asm.TagSpill {
				pushes++
			}
		case asm.POPQ:
			if in.Tag == asm.TagSpill {
				pops++
			}
		}
	}
	if pushes != 1 || pops != 1 {
		t.Errorf("spill pushes/pops = %d/%d, want 1/1 in:\n%s", pushes, pops, prot)
	}
}

func TestProtectNeedsTwoSpares(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$1, %rax
	hlt
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Protect(prog, Config{SpareGPRs: []asm.Reg{asm.R11}}); err == nil {
		t.Error("Protect accepted a single spare register")
	}
}

// TestFullCoverage is the paper's headline fig. 10 property for FERRUM:
// exhaustive single-bit injection over every dynamic site of the protected
// program produces no silent data corruption.
func TestFullCoverage(t *testing.T) {
	prog := compileIR(t, loopSrc)
	prot, _, err := Protect(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := arrayData(8192, 3, 1, 4, 1, 5)
	args := []uint64{5, 8192}
	m := newMachine(t, prot, data)
	golden := m.Run(machine.RunOpts{Args: args})
	if golden.Outcome != machine.OutcomeOK {
		t.Fatalf("golden outcome %v (%s)", golden.Outcome, golden.CrashMsg)
	}
	sdc := 0
	// Exhaustive over sites, sampled over bits.
	for site := uint64(0); site < golden.DynSites; site++ {
		for _, bit := range []uint{0, 1, 17, 33, 63} {
			res := m.Run(machine.RunOpts{Args: args, Fault: &machine.Fault{Site: site, Bit: bit}})
			if res.Outcome == machine.OutcomeOK && !equalOutput(res.Output, golden.Output) {
				sdc++
				if sdc < 5 {
					t.Errorf("SDC at site %d bit %d: %v", site, bit, res.Output)
				}
			}
		}
	}
	if sdc > 0 {
		t.Errorf("total SDCs = %d, want 0 (100%% coverage)", sdc)
	}
}

// TestFullCoverageHybrid verifies the hybrid baseline's 100% claim on the
// same program: signature IR protection + assembly duplication.
func TestFullCoverageHybrid(t *testing.T) {
	mod, err := ir.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := irpass.Signature(mod)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(sig)
	if err != nil {
		t.Fatal(err)
	}
	prot, _, err := eddi.Protect(prog)
	if err != nil {
		t.Fatal(err)
	}
	data := arrayData(8192, 3, 1, 4, 1, 5)
	args := []uint64{5, 8192}
	m := newMachine(t, prot, data)
	golden := m.Run(machine.RunOpts{Args: args})
	if golden.Outcome != machine.OutcomeOK {
		t.Fatalf("golden outcome %v (%s)", golden.Outcome, golden.CrashMsg)
	}
	sdc := 0
	for site := uint64(0); site < golden.DynSites; site += 2 {
		for _, bit := range []uint{0, 2, 40, 63} {
			res := m.Run(machine.RunOpts{Args: args, Fault: &machine.Fault{Site: site, Bit: bit}})
			if res.Outcome == machine.OutcomeOK && !equalOutput(res.Output, golden.Output) {
				sdc++
				if sdc < 5 {
					t.Errorf("SDC at site %d bit %d: %v", site, bit, res.Output)
				}
			}
		}
	}
	if sdc > 0 {
		t.Errorf("total SDCs = %d, want 0", sdc)
	}
}

func TestRequisitionCoverage(t *testing.T) {
	// The requisition path must also preserve semantics and detect faults
	// in the duplicated computation.
	prog := compileIR(t, loopSrc)
	prot, rep, err := Protect(prog, Config{SpareGPRs: []asm.Reg{asm.R11, asm.R12}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requisitions == 0 {
		t.Fatal("expected requisitions")
	}
	data := arrayData(8192, 2, 4, 6)
	args := []uint64{3, 8192}
	m := newMachine(t, prot, data)
	golden := m.Run(machine.RunOpts{Args: args})
	if golden.Outcome != machine.OutcomeOK || golden.Output[0] != 12 {
		t.Fatalf("golden: %+v (%s)", golden, golden.CrashMsg)
	}
}

func TestDivisionProtection(t *testing.T) {
	src := `
func @main(%a, %b) {
entry:
  %q = sdiv %a, %b
  %r = srem %a, %b
  out %q
  out %r
  ret
}
`
	prog := compileIR(t, src)
	prot, _, err := Protect(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t, prot, nil)
	negAi := int64(-103)
	negA := uint64(negAi)
	golden := m.Run(machine.RunOpts{Args: []uint64{negA, 7}})
	if golden.Outcome != machine.OutcomeOK {
		t.Fatalf("golden: %+v (%s)", golden, golden.CrashMsg)
	}
	if int64(golden.Output[0]) != -14 || int64(golden.Output[1]) != -5 {
		t.Fatalf("div output = %v", golden.Output)
	}
	// All single-bit faults on quotient/remainder sites must be caught.
	sdc := 0
	for site := uint64(0); site < golden.DynSites; site++ {
		for _, bit := range []uint{0, 5, 62} {
			res := m.Run(machine.RunOpts{Args: []uint64{negA, 7}, Fault: &machine.Fault{Site: site, Bit: bit}})
			if res.Outcome == machine.OutcomeOK && !equalOutput(res.Output, golden.Output) {
				sdc++
			}
		}
	}
	if sdc > 0 {
		t.Errorf("division SDCs = %d", sdc)
	}
}

func TestReportStaticInsts(t *testing.T) {
	prog := compileIR(t, loopSrc)
	_, rep, err := Protect(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StaticInsts != prog.StaticInstCount() {
		t.Errorf("static insts = %d, want %d", rep.StaticInsts, prog.StaticInstCount())
	}
	if rep.Duration <= 0 {
		t.Error("duration not recorded")
	}
}

func TestProtectedProgramsReparse(t *testing.T) {
	prog := compileIR(t, loopSrc)
	prot, _, err := Protect(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := asm.Parse(prot.String())
	if err != nil {
		t.Fatalf("protected program does not re-parse: %v", err)
	}
	// Comments are dropped by the parser, so compare the stable form.
	p3, err := asm.Parse(p2.String())
	if err != nil {
		t.Fatalf("second parse: %v", err)
	}
	if p2.String() != p3.String() {
		t.Error("print/parse round trip mismatch")
	}
}
