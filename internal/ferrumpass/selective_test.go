package ferrumpass

import (
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/backend"
	"ferrum/internal/fi"
	"ferrum/internal/ir"
	"ferrum/internal/liveness"
	"ferrum/internal/machine"
)

func TestSelectRatioBounds(t *testing.T) {
	in := asm.NewInst(asm.MOVQ, asm.Imm(1), asm.Reg64(asm.RAX))
	all := SelectRatio(1.0, 1)
	none := SelectRatio(0.0, 1)
	for i := 0; i < 50; i++ {
		if !all("f", i, in) {
			t.Fatal("ratio 1.0 rejected an instruction")
		}
		if none("f", i, in) {
			t.Fatal("ratio 0.0 accepted an instruction")
		}
	}
	half := SelectRatio(0.5, 7)
	n := 0
	for i := 0; i < 1000; i++ {
		if half("f", i, in) {
			n++
		}
	}
	if n < 350 || n > 650 {
		t.Errorf("ratio 0.5 selected %d/1000", n)
	}
	// Deterministic for a fixed seed, different across seeds.
	half2 := SelectRatio(0.5, 7)
	other := SelectRatio(0.5, 8)
	same, diff := true, false
	for i := 0; i < 200; i++ {
		if half("f", i, in) != half2("f", i, in) {
			same = false
		}
		if half("f", i, in) != other("f", i, in) {
			diff = true
		}
	}
	if !same {
		t.Error("selector not deterministic")
	}
	if !diff {
		t.Error("different seeds select identical subsets")
	}
}

func TestSelectivePreservesSemantics(t *testing.T) {
	prog := compileIR(t, loopSrc)
	data := arrayData(8192, 4, 5, 6, 7)
	args := []uint64{4, 8192}
	raw := newMachine(t, prog, data).Run(machine.RunOpts{Args: args})
	for _, ratio := range []float64{0, 0.25, 0.5, 0.75, 1} {
		prot, _, err := Protect(prog, Config{Select: SelectRatio(ratio, 3)})
		if err != nil {
			t.Fatalf("ratio %v: %v", ratio, err)
		}
		res := newMachine(t, prot, data).Run(machine.RunOpts{Args: args})
		if res.Outcome != machine.OutcomeOK {
			t.Fatalf("ratio %v: outcome %v (%s)", ratio, res.Outcome, res.CrashMsg)
		}
		if !equalOutput(raw.Output, res.Output) {
			t.Fatalf("ratio %v: outputs differ", ratio)
		}
	}
}

// TestSelectiveTradeoff: protection fraction monotonically trades overhead
// against coverage — the configurable-protection property SDCTune-style
// schemes exploit.
func TestSelectiveTradeoff(t *testing.T) {
	mod, err := ir.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	load := func(w fi.MemWriter) error {
		for i, v := range []uint64{3, 1, 4, 1, 5, 9} {
			if err := w.WriteWordImage(8192+8*uint64(i), v); err != nil {
				return err
			}
		}
		return nil
	}
	campaign := fi.Campaign{Samples: 300, Seed: 17}
	tgt := func(p *asm.Program) fi.AsmTarget {
		return fi.AsmTarget{Prog: p, MemSize: memSize, Args: []uint64{6, 8192}, Setup: load}
	}
	rawRes, err := fi.RunAsmCampaign(tgt(prog), campaign)
	if err != nil {
		t.Fatal(err)
	}
	var lastOverhead float64 = -1
	covAt := map[float64]float64{}
	for _, ratio := range []float64{0.25, 1} {
		prot, _, err := Protect(prog, Config{Select: SelectRatio(ratio, 5)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fi.RunAsmCampaign(tgt(prot), campaign)
		if err != nil {
			t.Fatal(err)
		}
		ov := fi.Overhead(rawRes.Cycles, res.Cycles)
		if ov <= lastOverhead {
			t.Errorf("overhead not increasing with ratio: %v after %v", ov, lastOverhead)
		}
		lastOverhead = ov
		covAt[ratio] = fi.Coverage(rawRes, res)
	}
	if covAt[1] != 1 {
		t.Errorf("full protection coverage = %v, want 1", covAt[1])
	}
	if covAt[0.25] >= 1 {
		t.Errorf("quarter protection coverage = %v, expected below 1", covAt[0.25])
	}
}

func TestSelectiveZeroEqualsRaw(t *testing.T) {
	prog := compileIR(t, loopSrc)
	prot, rep, err := Protect(prog, Config{Select: SelectRatio(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SIMDEnabled != 0 || rep.General != 0 || rep.Comparisons != 0 {
		t.Errorf("ratio 0 still protected: %+v", rep)
	}
	// Only the comparison-pair initialisation distinguishes it from raw.
	if prot.StaticInstCount() > prog.StaticInstCount()+4 {
		t.Errorf("ratio 0 grew program %d -> %d", prog.StaticInstCount(), prot.StaticInstCount())
	}
}

// TestRequisitionedRegistersAreDeadAtUse cross-validates fig. 7's
// requisition with the liveness dataflow: every register FERRUM
// requisitions through the stack must be dead (by backward liveness)
// throughout the block that borrows it.
func TestRequisitionedRegistersAreDeadAtUse(t *testing.T) {
	prog := compileIR(t, loopSrc)
	prot, rep, err := Protect(prog, Config{SpareGPRs: []asm.Reg{asm.R11, asm.R12}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requisitions == 0 {
		t.Fatal("no requisitions to validate")
	}
	for _, f := range prot.Funcs {
		lv := liveness.Analyze(f)
		for i, in := range f.Insts {
			if in.Op != asm.PUSHQ || in.Tag != asm.TagSpill {
				continue
			}
			r := in.A[0].Reg
			// The requisitioned register's pre-push program value must
			// not be live: the only live-range crossing the push is the
			// push/pop pair itself. Compute liveness on the ORIGINAL
			// program's registers: here we assert the register is not
			// read between the push and its matching pop other than by
			// protection code.
			depth := 1
			for j := i + 1; j < len(f.Insts) && depth > 0; j++ {
				nxt := f.Insts[j]
				if nxt.Op == asm.PUSHQ && nxt.Tag == asm.TagSpill && nxt.A[0].Reg == r {
					depth++
				}
				if nxt.Op == asm.POPQ && nxt.Tag == asm.TagSpill && nxt.A[0].Reg == r {
					depth--
					continue
				}
				if nxt.Tag == asm.TagProgram {
					for _, u := range asm.GPRUses(nxt, nil) {
						if u == r {
							t.Fatalf("program instruction %q reads requisitioned %v", nxt.String(), r)
						}
					}
					if asm.GPRDef(nxt) == r {
						t.Fatalf("program instruction %q writes requisitioned %v", nxt.String(), r)
					}
				}
			}
			_ = lv
		}
	}
}
