// Package ferrumpass implements FERRUM, the paper's contribution: an
// assembly-level EDDI transform that
//
//   - annotates every instruction as SIMD-ENABLED or GENERAL (§III-B1),
//   - protects SIMD-ENABLED instructions by staging duplicate/original
//     result pairs into spare XMM registers and checking four results with
//     one vinserti128/vpxor/vptest/jne sequence (§III-B3, fig. 6),
//   - protects GENERAL instructions with a spare-GPR duplicate and an
//     immediate xor/jne check (§III-B2, fig. 4),
//   - protects comparison instructions with deferred RFLAGS detection:
//     setcc captures of the original and a recomputed compare go into two
//     reserved byte registers, and the jump's successor blocks verify they
//     match (§III-B2, fig. 5), and
//   - requisitions registers through the stack when the function has no
//     spare ones (§III-B4, fig. 7).
package ferrumpass

import (
	"fmt"
	"time"

	"ferrum/internal/asm"
	"ferrum/internal/eddi"
	"ferrum/internal/liveness"
)

// DefaultBatchSize is the number of 64-bit results one YMM comparison
// covers: 2 XMM pairs shifted into 2 YMM registers (fig. 6).
const DefaultBatchSize = 4

// ZMMBatchSize is the number of results one ZMM (AVX-512) comparison
// covers; §III-B3 of the paper notes ZMM as a viable extension.
const ZMMBatchSize = 8

// MinSpareGPRs and MinSpareXMMs are the spare-register thresholds of
// §III-B1: two general-purpose registers for the comparison protection and
// four XMM registers for SIMD batching (eight in ZMM mode).
const (
	MinSpareGPRs    = 2
	MinSpareXMMs    = 4
	MinSpareXMMsZMM = 8
)

// Config tunes the transform. The zero value selects the paper's design.
type Config struct {
	// BatchSize is the number of results per SIMD check: 1..4, or up to
	// 8 with UseZMM. 0 means DefaultBatchSize (ZMMBatchSize with UseZMM).
	BatchSize int
	// UseZMM batches through 512-bit ZMM registers (AVX-512), checking
	// eight results per vptest — the extension §III-B3 describes. It
	// requires eight spare XMM registers.
	UseZMM bool
	// DisableSIMD protects every instruction through the GENERAL path, an
	// ablation of the paper's central optimisation.
	DisableSIMD bool
	// SpareGPRs, when non-nil, overrides spare-register discovery: the
	// transform behaves as if exactly these general-purpose registers
	// were spare. Used to exercise the stack-requisition path.
	SpareGPRs []asm.Reg
	// SpareXMMs, when non-nil, overrides SIMD spare discovery.
	SpareXMMs []asm.XReg
	// Select, when non-nil, restricts protection to the instructions it
	// accepts — the configurable selective protection of SDCTune-style
	// schemes (ref. [9] of the paper): unselected instructions execute
	// unduplicated, trading coverage for overhead. Compare/branch units
	// are selected through their compare instruction.
	Select Selector
}

// Selector decides whether one static instruction is protected. fn is the
// enclosing function name and idx the instruction's index within it.
type Selector func(fn string, idx int, in asm.Inst) bool

// SelectRatio returns a deterministic Selector protecting roughly the
// given fraction of instructions, hashed by position so the subset is
// stable across runs (seed varies the subset).
func SelectRatio(ratio float64, seed int64) Selector {
	if ratio >= 1 {
		return func(string, int, asm.Inst) bool { return true }
	}
	if ratio <= 0 {
		return func(string, int, asm.Inst) bool { return false }
	}
	threshold := uint64(ratio * float64(^uint64(0)>>1))
	return func(fn string, idx int, _ asm.Inst) bool {
		h := uint64(1469598103934665603) ^ uint64(seed)
		for _, c := range fn {
			h = (h ^ uint64(c)) * 1099511628211
		}
		h = (h ^ uint64(idx)) * 1099511628211
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return h>>1 < threshold
	}
}

// Report summarises a FERRUM transform, feeding §IV-B3's execution-time
// experiment and the instruction-annotation statistics.
type Report struct {
	SIMDEnabled   int           // instructions protected through SIMD batching
	General       int           // instructions protected through the GPR path
	Comparisons   int           // compare+branch units given deferred protection
	CompareValues int           // compare+setcc units protected
	Batches       int           // SIMD check sequences emitted
	Requisitions  int           // blocks that requisitioned a register (fig. 7)
	StaticInsts   int           // input program size
	Duration      time.Duration // wall-clock transform time
}

// Protect applies FERRUM to a compiled program and returns the protected
// clone plus a transform report. The input program is not modified.
func Protect(prog *asm.Program, cfg Config) (*asm.Program, *Report, error) {
	start := time.Now()
	maxBatch := DefaultBatchSize
	if cfg.UseZMM {
		maxBatch = ZMMBatchSize
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = maxBatch
	}
	if cfg.BatchSize < 1 || cfg.BatchSize > maxBatch {
		return nil, nil, fmt.Errorf("ferrumpass: batch size %d out of range [1,%d]", cfg.BatchSize, maxBatch)
	}
	out := prog.Clone()
	rep := &Report{StaticInsts: prog.StaticInstCount()}
	for _, f := range out.Funcs {
		if eddi.IsRuntimeFunc(f) {
			continue
		}
		if err := protectFunc(f, cfg, rep); err != nil {
			return nil, nil, fmt.Errorf("ferrumpass: %s: %w", f.Name, err)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("ferrumpass: produced invalid program: %w", err)
	}
	rep.Duration = time.Since(start)
	return out, rep, nil
}

// fnState carries the per-function transform state.
type fnState struct {
	cfg  Config
	rep  *Report
	f    *asm.Func
	out  []asm.Inst
	cmpA asm.Reg // reserved comparison registers (the paper's %r11/%r12)
	cmpB asm.Reg
	gen  asm.Reg // general duplication spare; RNone when requisitioned per block
	gen2 asm.Reg // second spare (division identity check)
	simd bool    // SIMD batching active for this function
	zmm  bool    // 512-bit batching (AVX-512)
	x    [8]asm.XReg

	batch     int  // results staged in the current batch
	batchOpen bool // staging registers initialised (zeroed)

	// checkAt records labels of blocks that must verify the deferred
	// comparison registers on entry.
	checkAt map[string]bool
	// pendingCheck requests a deferred comparison check at the start of
	// the next (fall-through) block.
	pendingCheck bool
	// pendingLabels carries block labels to the first instruction emitted
	// for the block.
	pendingLabels []string

	// Per-block state: the active general-duplication spares, the
	// registers requisitioned through the stack (fig. 7), and whether the
	// reserved comparison pair is standing in for the general spare.
	blockGen     asm.Reg
	blockGen2    asm.Reg
	req          []asm.Reg
	usedCmpAsGen bool
	// curIdx is the input-function index of the instruction being
	// processed (for the selective-protection callback).
	curIdx int
}

// selected reports whether the instruction at input index idx is protected.
func (st *fnState) selected(idx int, in asm.Inst) bool {
	if st.cfg.Select == nil {
		return true
	}
	return st.cfg.Select(st.f.Name, idx, in)
}

func protectFunc(f *asm.Func, cfg Config, rep *Report) error {
	spares := cfg.SpareGPRs
	if spares == nil {
		spares = liveness.SpareGPRs(f)
	}
	if len(spares) < MinSpareGPRs {
		return fmt.Errorf("needs %d spare general-purpose registers for comparison protection, found %d",
			MinSpareGPRs, len(spares))
	}
	xmms := cfg.SpareXMMs
	if xmms == nil {
		xmms = liveness.SpareXMMs(f)
	}
	needXMMs := MinSpareXMMs
	if cfg.UseZMM {
		needXMMs = MinSpareXMMsZMM
	}
	st := &fnState{
		cfg:     cfg,
		rep:     rep,
		f:       f,
		cmpA:    spares[0],
		cmpB:    spares[1],
		gen:     asm.RNone,
		gen2:    asm.RNone,
		simd:    !cfg.DisableSIMD && len(xmms) >= needXMMs,
		zmm:     cfg.UseZMM,
		checkAt: map[string]bool{},
	}
	if len(spares) >= 3 {
		st.gen = spares[2]
	}
	if len(spares) >= 4 {
		st.gen2 = spares[3]
	}
	if st.simd {
		copy(st.x[:], xmms[:needXMMs])
	}

	// Initialise the comparison pair so the A==B invariant holds from
	// the first instruction.
	st.emitL(asm.NewInst(asm.MOVB, asm.Imm(0), asm.Reg8(st.cmpA)).WithTag(asm.TagStage))
	st.emitL(asm.NewInst(asm.MOVB, asm.Imm(0), asm.Reg8(st.cmpB)).WithTag(asm.TagStage))

	blocks := asm.Blocks(f)
	for _, b := range blocks {
		if err := st.processBlock(b); err != nil {
			return err
		}
	}
	f.Insts = st.out

	// Insert the deferred comparison checks at the entry of every block
	// that is a successor of a protected conditional jump (fig. 5's
	// ".LBB7_4" check). Fall-through successors already received inline
	// checks during emission; here we patch the labelled targets.
	if len(st.checkAt) > 0 {
		var patched []asm.Inst
		for _, in := range f.Insts {
			needs := false
			for _, l := range in.Labels {
				if st.checkAt[l] {
					needs = true
				}
			}
			if needs {
				chk := st.deferredCheck()
				chk[0].Labels = in.Labels
				in.Labels = nil
				patched = append(patched, chk...)
			}
			patched = append(patched, in)
		}
		f.Insts = patched
	}
	return nil
}

// deferredCheck builds the comparison-register verification: a
// non-clobbering compare of the two reserved byte registers. The paper's
// fig. 5 uses xor; a compare has identical detection power but preserves
// the A==B invariant across blocks with multiple predecessors, which the
// paper relies on ("we employ the same registers for comparison
// instructions").
func (st *fnState) deferredCheck() []asm.Inst {
	return []asm.Inst{
		asm.NewInst(asm.CMPB, asm.Reg8(st.cmpA), asm.Reg8(st.cmpB)).
			WithTag(asm.TagCheck).WithComment("check flag value"),
		asm.NewInst(asm.JNE, asm.LabelOp(asm.DetectLabel)).WithTag(asm.TagCheck),
	}
}

// simdEligible reports whether the instruction is a SIMD-ENABLED-INSTRUCTION
// (§III-B1): a 64-bit move whose duplicate can target an XMM register with
// a single instruction, and whose source differs from its destination.
func simdEligible(in asm.Inst) bool {
	if in.Op != asm.MOVQ || len(in.A) != 2 {
		return false
	}
	src, dst := in.A[0], in.A[1]
	if dst.Kind != asm.KReg || dst.W != asm.W64 {
		return false
	}
	switch src.Kind {
	case asm.KMem:
		return true
	case asm.KReg:
		return src.W == asm.W64 && src.Reg != dst.Reg
	}
	return false // immediates cannot be moved to XMM in one instruction
}
