package ferrumpass

import (
	"strings"
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/machine"
)

func TestZMMPreservesSemantics(t *testing.T) {
	prog := compileIR(t, loopSrc)
	data := arrayData(8192, 9, 8, 7, 6, 5, 4)
	args := []uint64{6, 8192}
	raw := newMachine(t, prog, data).Run(machine.RunOpts{Args: args})
	if raw.Outcome != machine.OutcomeOK {
		t.Fatalf("raw: %v", raw.Outcome)
	}
	prot, rep, err := Protect(prog, Config{UseZMM: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SIMDEnabled == 0 {
		t.Fatal("no SIMD instructions under ZMM")
	}
	res := newMachine(t, prot, data).Run(machine.RunOpts{Args: args})
	if res.Outcome != machine.OutcomeOK {
		t.Fatalf("zmm outcome %v (%s)", res.Outcome, res.CrashMsg)
	}
	if !equalOutput(raw.Output, res.Output) {
		t.Fatalf("outputs differ: %v vs %v", raw.Output, res.Output)
	}
	if !strings.Contains(prot.String(), "vinserti64x4") {
		t.Error("no 512-bit combines emitted")
	}
	if !strings.Contains(prot.String(), "zmm") {
		t.Error("no zmm operands emitted")
	}
}

func TestZMMBatchesAreLarger(t *testing.T) {
	// A straight-line run of eight batchable loads: one ZMM batch vs two
	// YMM batches.
	src := `
	.globl	main
main:
	movq	-8(%rbp), %rax
	movq	-16(%rbp), %rcx
	movq	-24(%rbp), %rdx
	movq	-32(%rbp), %rsi
	movq	-40(%rbp), %rdi
	movq	-48(%rbp), %rbx
	movq	-56(%rbp), %r8
	movq	-64(%rbp), %r9
	hlt

	.globl	__rt
__rt:
exit_function:
	detect
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ymm, repY, err := Protect(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	zmm, repZ, err := Protect(prog, Config{UseZMM: true})
	if err != nil {
		t.Fatal(err)
	}
	if repY.Batches != 2 || repZ.Batches != 1 {
		t.Errorf("batches: ymm=%d zmm=%d, want 2/1", repY.Batches, repZ.Batches)
	}
	countJNE := func(p *asm.Program) int {
		n := 0
		for _, f := range p.Funcs {
			for _, in := range f.Insts {
				if in.Op == asm.JNE {
					n++
				}
			}
		}
		return n
	}
	if countJNE(zmm) >= countJNE(ymm) {
		t.Errorf("zmm should have fewer check branches: %d vs %d", countJNE(zmm), countJNE(ymm))
	}
}

func TestZMMFullCoverage(t *testing.T) {
	prog := compileIR(t, loopSrc)
	prot, _, err := Protect(prog, Config{UseZMM: true})
	if err != nil {
		t.Fatal(err)
	}
	data := arrayData(8192, 3, 1, 4, 1, 5)
	args := []uint64{5, 8192}
	m := newMachine(t, prot, data)
	golden := m.Run(machine.RunOpts{Args: args})
	if golden.Outcome != machine.OutcomeOK {
		t.Fatalf("golden: %v (%s)", golden.Outcome, golden.CrashMsg)
	}
	sdc := 0
	for site := uint64(0); site < golden.DynSites; site++ {
		for _, bit := range []uint{0, 13, 42, 63} {
			res := m.Run(machine.RunOpts{Args: args, Fault: &machine.Fault{Site: site, Bit: bit}})
			if res.Outcome == machine.OutcomeOK && !equalOutput(res.Output, golden.Output) {
				sdc++
			}
		}
	}
	if sdc > 0 {
		t.Errorf("ZMM mode SDCs = %d, want 0", sdc)
	}
}

func TestZMMPartialBatchSizes(t *testing.T) {
	// Every batch size 1..8 must preserve semantics in ZMM mode.
	prog := compileIR(t, loopSrc)
	data := arrayData(8192, 2, 3, 5, 7)
	args := []uint64{4, 8192}
	raw := newMachine(t, prog, data).Run(machine.RunOpts{Args: args})
	for batch := 1; batch <= 8; batch++ {
		prot, _, err := Protect(prog, Config{UseZMM: true, BatchSize: batch})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		res := newMachine(t, prot, data).Run(machine.RunOpts{Args: args})
		if res.Outcome != machine.OutcomeOK || !equalOutput(raw.Output, res.Output) {
			t.Errorf("batch %d: outcome %v output %v, want %v",
				batch, res.Outcome, res.Output, raw.Output)
		}
	}
	// Without ZMM, batch sizes above 4 are rejected.
	if _, _, err := Protect(prog, Config{BatchSize: 8}); err == nil {
		t.Error("batch 8 accepted without UseZMM")
	}
}

func TestZMMFallsBackWithoutSpares(t *testing.T) {
	prog := compileIR(t, loopSrc)
	// Only 6 XMM spares: ZMM mode needs 8, so SIMD falls back to the
	// GENERAL path entirely.
	prot, rep, err := Protect(prog, Config{UseZMM: true, SpareXMMs: []asm.XReg{0, 1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SIMDEnabled != 0 {
		t.Errorf("SIMD used with insufficient spares: %+v", rep)
	}
	data := arrayData(8192, 1, 2)
	res := newMachine(t, prot, data).Run(machine.RunOpts{Args: []uint64{2, 8192}})
	if res.Outcome != machine.OutcomeOK {
		t.Fatalf("fallback outcome %v (%s)", res.Outcome, res.CrashMsg)
	}
}

func TestZMMCheaperThanYMM(t *testing.T) {
	// On a batch-friendly straight-line kernel, ZMM halves the number of
	// flush sequences, so it must not be more expensive than YMM.
	prog := compileIR(t, loopSrc)
	data := arrayData(8192, 1, 2, 3, 4, 5, 6, 7, 8)
	args := []uint64{8, 8192}
	ymm, _, err := Protect(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	zmm, _, err := Protect(prog, Config{UseZMM: true})
	if err != nil {
		t.Fatal(err)
	}
	ymmRes := newMachine(t, ymm, data).Run(machine.RunOpts{Args: args})
	zmmRes := newMachine(t, zmm, data).Run(machine.RunOpts{Args: args})
	if zmmRes.Cycles > ymmRes.Cycles*1.05 {
		t.Errorf("zmm (%v cycles) notably worse than ymm (%v cycles)",
			zmmRes.Cycles, ymmRes.Cycles)
	}
}
