package machine

import (
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/backend"
	"ferrum/internal/ferrumpass"
	"ferrum/internal/progen"
)

// archState is the machine's terminal architectural state: every general-
// purpose register, every vector register, every flag, and a hash of the
// full memory image. The dispatch-tier property below requires it to be
// identical across tiers, not just the exported Result — a tier that
// computed the right output through the wrong register or memory state
// would pass a Result-only comparison.
type archState struct {
	gpr     [asm.NumReg]uint64
	x       [asm.NumXReg][8]uint64
	flags   [asm.NumFlag]bool
	memHash uint64
	pc      int
}

func fingerprint(m *Machine) archState {
	h := fnv.New64a()
	h.Write(m.mem)
	return archState{gpr: m.gpr, x: m.x, flags: m.flags, memHash: h.Sum64(), pc: m.pc}
}

// TestEquivFuzzDispatchTiers is the property-based complement to the
// Rodinia-cell equivalence suite: randomly generated branch-dense programs
// (short basic blocks, nested diamonds and loops — the shapes that stress
// block-formation boundaries and fusion-group claims) must produce a
// bit-identical Result AND bit-identical terminal architectural state on
// all four dispatch tiers, for the golden run and for injected faults.
// Unlike the Rodinia suite's golden options, the comparison runs carry no
// observers, so the block-dispatch fast path is what actually executes.
func TestEquivFuzzDispatchTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	iters := 12
	if testing.Short() {
		iters = 4
	}
	const maxSteps = 5_000_000
	for i := 0; i < iters; i++ {
		mod, err := progen.Generate(rng, progen.Options{
			Stmts: 30, Calls: i%2 == 0, BranchDensity: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		args := []uint64{8192, uint64(rng.Int63n(10000)), uint64(rng.Int63n(10000))}
		raw, err := backend.Compile(mod)
		if err != nil {
			t.Fatal(err)
		}
		prot, _, err := ferrumpass.Protect(raw, ferrumpass.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for tech, prog := range map[string]*asm.Program{"raw": raw, "ferrum": prot} {
			build := func() *Machine {
				m, err := New(prog, equivMemSize)
				if err != nil {
					t.Fatal(err)
				}
				for s := 0; s < 8; s++ {
					if err := m.WriteWordImage(8192+8*uint64(s), uint64(s*5+3)); err != nil {
						t.Fatal(err)
					}
				}
				return m
			}
			fast, fused, oneuop, slow := build(), build(), build(), build()
			forceOneUop(oneuop)
			forceSlow(slow)

			// The fusion profile comes from a separate profiled run so the
			// comparison runs themselves stay observer-free.
			profiled := build().Run(RunOpts{Args: args, MaxSteps: maxSteps, Profile: true})
			fused.FuseProfile(profiled.Profile)

			want := slow.Run(RunOpts{Args: args, MaxSteps: maxSteps})
			if want.Outcome != OutcomeOK {
				t.Fatalf("iter %d/%s: golden outcome = %v (%s)\n%s",
					i, tech, want.Outcome, want.CrashMsg, mod)
			}
			wantState := fingerprint(slow)

			tiers := map[string]*Machine{"fast": fast, "fused": fused, "oneuop": oneuop}
			for name, m := range tiers {
				got := m.Run(RunOpts{Args: args, MaxSteps: maxSteps})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("iter %d/%s %s: golden Result differs:\n%s: %+v\nslow: %+v",
						i, tech, name, name, got, want)
				}
				if st := fingerprint(m); st != wantState {
					t.Fatalf("iter %d/%s %s: terminal machine state differs from slow path",
						i, tech, name)
				}
			}

			if want.DynSites == 0 {
				continue
			}
			for _, site := range []uint64{0, want.DynSites / 2, want.DynSites - 1} {
				for _, bit := range []uint{0, 37} {
					opts := RunOpts{
						Args: args, MaxSteps: maxSteps,
						Fault: &Fault{Site: site, Bit: bit},
					}
					fw := slow.Run(opts)
					fwState := fingerprint(slow)
					for name, m := range tiers {
						fg := m.Run(opts)
						if !reflect.DeepEqual(fg, fw) {
							t.Errorf("iter %d/%s %s site=%d bit=%d: fault Result differs:\n%s: %+v\nslow: %+v",
								i, tech, name, site, bit, name, fg, fw)
						}
						if st := fingerprint(m); st != fwState {
							t.Errorf("iter %d/%s %s site=%d bit=%d: terminal machine state differs",
								i, tech, name, site, bit)
						}
					}
				}
			}
		}
	}
}
