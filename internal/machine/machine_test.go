package machine

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"ferrum/internal/asm"
)

const memSize = 1 << 16

func mustParse(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func run(t *testing.T, src string, opts RunOpts) Result {
	t.Helper()
	m, err := New(mustParse(t, src), memSize)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m.Run(opts)
}

func TestSimpleArithmetic(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$6, %rax
	movq	$7, %rcx
	imulq	%rcx, %rax
	out	%rax
	hlt
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.CrashMsg)
	}
	if len(res.Output) != 1 || res.Output[0] != 42 {
		t.Fatalf("output = %v, want [42]", res.Output)
	}
}

func TestBranchesAndFlags(t *testing.T) {
	// Sum 1..10 with a loop, exercising cmp/jle.
	src := `
	.globl	main
main:
	movq	$0, %rax
	movq	$1, %rcx
.Lloop:
	cmpq	$10, %rcx
	jg	.Ldone
	addq	%rcx, %rax
	addq	$1, %rcx
	jmp	.Lloop
.Ldone:
	out	%rax
	hlt
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeOK || len(res.Output) != 1 || res.Output[0] != 55 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSignedConditions(t *testing.T) {
	cases := []struct {
		a, b int64
		jcc  string
		want uint64 // 1 if branch taken
	}{
		{-5, 3, "jl", 1},
		{3, -5, "jl", 0},
		{3, 3, "jle", 1},
		{4, 3, "jle", 0},
		{4, 3, "jg", 1},
		{-4, 3, "jg", 0},
		{3, 3, "jge", 1},
		{-9223372036854775808 + 1, 1, "jl", 1},
		{7, 7, "je", 1},
		{7, 8, "jne", 1},
	}
	for _, tc := range cases {
		src := fmt.Sprintf(`
	.globl	main
main:
	movq	$%d, %%rax
	movq	$%d, %%rcx
	cmpq	%%rcx, %%rax
	%s	.Ltaken
	out	%%rax
	movq	$0, %%rax
	out	%%rax
	hlt
.Ltaken:
	movq	$1, %%rax
	out	%%rax
	hlt
`, tc.a, tc.b, tc.jcc)
		res := run(t, src, RunOpts{})
		if res.Outcome != OutcomeOK {
			t.Fatalf("%s %d,%d: outcome %v", tc.jcc, tc.a, tc.b, res.Outcome)
		}
		got := res.Output[len(res.Output)-1]
		if got != tc.want {
			t.Errorf("cmp %d,%d %s: taken=%d, want %d", tc.a, tc.b, tc.jcc, got, tc.want)
		}
	}
}

func TestMemoryAndLEA(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$8192, %rax
	movq	$123, %rcx
	movq	%rcx, (%rax)
	movq	$1, %rdx
	leaq	(%rax,%rdx,8), %rsi
	movq	$456, %rcx
	movq	%rcx, (%rsi)
	movq	8(%rax), %rdi
	out	%rdi
	movq	(%rax), %rdi
	out	%rdi
	hlt
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.CrashMsg)
	}
	if len(res.Output) != 2 || res.Output[0] != 456 || res.Output[1] != 123 {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestCallRetAndStack(t *testing.T) {
	src := `
	.entry	main
	.globl	_start
_start:
	callq	main
	hlt

	.globl	main
main:
	pushq	%rbp
	movq	%rsp, %rbp
	movq	$5, %rdi
	callq	double
	out	%rax
	movq	%rbp, %rsp
	popq	%rbp
	retq

	.globl	double
double:
	movq	%rdi, %rax
	addq	%rax, %rax
	retq
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeOK || len(res.Output) != 1 || res.Output[0] != 10 {
		t.Fatalf("res = %+v (%s)", res, res.CrashMsg)
	}
}

// TestStrayTopLevelRetCrashes: the stack starts empty (reset pushes no
// sentinel), so a RET with no matching CALL pops past the top of memory
// and must crash rather than wrap into program data.
func TestStrayTopLevelRetCrashes(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$1, %rax
	out	%rax
	retq
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeCrash {
		t.Fatalf("outcome = %v (%s), want crash", res.Outcome, res.CrashMsg)
	}
	if !strings.Contains(res.CrashMsg, "pop") {
		t.Errorf("crash message %q does not mention the failing pop", res.CrashMsg)
	}
}

func TestArgsReachEntry(t *testing.T) {
	src := `
	.globl	main
main:
	out	%rdi
	out	%rsi
	hlt
`
	res := run(t, src, RunOpts{Args: []uint64{11, 22}})
	if res.Outcome != OutcomeOK || res.Output[0] != 11 || res.Output[1] != 22 {
		t.Fatalf("res = %+v", res)
	}
}

func TestMovWidths(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$-1, %rax
	movl	$5, %eax	# 32-bit write zero-extends
	out	%rax
	movq	$-1, %rcx
	movb	$7, %cl		# 8-bit write preserves upper bits
	out	%rcx
	movq	$8192, %rdx
	movl	$-2, (%rdx)
	movslq	(%rdx), %rbx	# sign-extending load
	out	%rbx
	movq	$511, %rsi
	movzbq	%sil, %rdi
	out	%rdi
	hlt
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.CrashMsg)
	}
	negTwo := int64(-2)
	want := []uint64{5, 0xffffffffffffff07, uint64(negTwo), 255}
	for i, w := range want {
		if res.Output[i] != w {
			t.Errorf("output[%d] = %#x, want %#x", i, res.Output[i], w)
		}
	}
}

func TestDivision(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$-37, %rax
	cqto
	movq	$5, %rcx
	idivq	%rcx
	out	%rax
	out	%rdx
	hlt
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.CrashMsg)
	}
	if int64(res.Output[0]) != -7 || int64(res.Output[1]) != -2 {
		t.Fatalf("div results = %d rem %d", int64(res.Output[0]), int64(res.Output[1]))
	}
}

func TestDivideByZeroCrashes(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$1, %rax
	cqto
	movq	$0, %rcx
	idivq	%rcx
	hlt
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeCrash {
		t.Fatalf("outcome = %v, want crash", res.Outcome)
	}
}

func TestOutOfBoundsCrashes(t *testing.T) {
	for _, addr := range []int64{0, 100, memSize, memSize + 8, -8} {
		src := fmt.Sprintf(`
	.globl	main
main:
	movq	$%d, %%rax
	movq	(%%rax), %%rcx
	hlt
`, addr)
		res := run(t, src, RunOpts{})
		if res.Outcome != OutcomeCrash {
			t.Errorf("addr %d: outcome = %v, want crash", addr, res.Outcome)
		}
	}
}

func TestHangOutcome(t *testing.T) {
	src := `
	.globl	main
main:
	jmp	main
`
	res := run(t, src, RunOpts{MaxSteps: 1000})
	if res.Outcome != OutcomeHang {
		t.Fatalf("outcome = %v, want hang", res.Outcome)
	}
}

func TestDetectOutcome(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$1, %rax
	cmpq	$2, %rax
	jne	exit_function
	hlt

	.globl	__detect
exit_function:
	detect
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeDetected {
		t.Fatalf("outcome = %v, want detected", res.Outcome)
	}
}

func TestSIMDPath(t *testing.T) {
	// Mirror the fig. 6 check sequence: equal values => no detection.
	src := `
	.globl	main
main:
	movq	$8192, %rbp
	movq	$111, %rcx
	movq	%rcx, (%rbp)
	movq	(%rbp), %xmm0
	movq	(%rbp), %rax
	movq	%rax, %xmm1
	pinsrq	$1, (%rbp), %xmm0
	movq	(%rbp), %rdi
	pinsrq	$1, %rdi, %xmm1
	movq	(%rbp), %xmm2
	movq	(%rbp), %rax
	movq	%rax, %xmm3
	pinsrq	$1, (%rbp), %xmm2
	movq	(%rbp), %rdi
	pinsrq	$1, %rdi, %xmm3
	vinserti128	$1, %xmm2, %ymm0, %ymm0
	vinserti128	$1, %xmm3, %ymm1, %ymm1
	vpxor	%ymm1, %ymm0, %ymm0
	vptest	%ymm0, %ymm0
	jne	exit_function
	movq	$1, %rax
	out	%rax
	hlt

	.globl	__detect
exit_function:
	detect
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeOK || len(res.Output) != 1 {
		t.Fatalf("res = %+v (%s)", res, res.CrashMsg)
	}
}

func TestSIMDMismatchDetected(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$111, %rax
	movq	%rax, %xmm0
	movq	$112, %rax
	movq	%rax, %xmm1
	vpxor	%ymm1, %ymm0, %ymm0
	vptest	%ymm0, %ymm0
	jne	exit_function
	hlt

	.globl	__detect
exit_function:
	detect
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeDetected {
		t.Fatalf("outcome = %v, want detected", res.Outcome)
	}
}

const faultTestSrc = `
	.globl	main
main:
	movq	$100, %rax
	movq	%rax, %rcx
	out	%rcx
	hlt
`

func TestFaultInjectionGPR(t *testing.T) {
	m, err := New(mustParse(t, faultTestSrc), memSize)
	if err != nil {
		t.Fatal(err)
	}
	golden := m.Run(RunOpts{})
	if golden.Outcome != OutcomeOK || golden.DynSites != 2 {
		t.Fatalf("golden = %+v", golden)
	}
	// Flip bit 3 of the first site (movq $100, %rax): 100 ^ 8 = 108.
	res := m.Run(RunOpts{Fault: &Fault{Site: 0, Bit: 3}})
	if !res.Injected {
		t.Fatal("fault not injected")
	}
	if res.Output[0] != 108 {
		t.Fatalf("faulted output = %d, want 108", res.Output[0])
	}
	// Flip bit 3 of the second site (movq %rax, %rcx): rax stays 100.
	res = m.Run(RunOpts{Fault: &Fault{Site: 1, Bit: 3}})
	if res.Output[0] != 108 {
		t.Fatalf("faulted output = %d, want 108", res.Output[0])
	}
	// A site beyond the end is never reached.
	res = m.Run(RunOpts{Fault: &Fault{Site: 99, Bit: 3}})
	if res.Injected || res.Output[0] != 100 {
		t.Fatalf("res = %+v", res)
	}
}

func TestFaultInjectionFlags(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$1, %rax
	cmpq	$1, %rax
	je	.Leq
	movq	$0, %rcx
	out	%rcx
	hlt
.Leq:
	movq	$1, %rcx
	out	%rcx
	hlt
`
	m, err := New(mustParse(t, src), memSize)
	if err != nil {
		t.Fatal(err)
	}
	golden := m.Run(RunOpts{})
	if golden.Output[0] != 1 {
		t.Fatalf("golden output = %v", golden.Output)
	}
	// Site 1 is the cmpq (site 0 is the movq). Bit 0 flips ZF.
	res := m.Run(RunOpts{Fault: &Fault{Site: 1, Bit: 0}})
	if !res.Injected || res.Output[0] != 0 {
		t.Fatalf("flag fault res = %+v", res)
	}
}

func TestFaultInjectionXMM(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$5, %rax
	movq	%rax, %xmm0
	movq	%xmm0, %rcx
	out	%rcx
	hlt
`
	m, err := New(mustParse(t, src), memSize)
	if err != nil {
		t.Fatal(err)
	}
	// Site 1 is movq %rax, %xmm0 (site 0 = movq imm, site 2 = movq xmm->rcx).
	res := m.Run(RunOpts{Fault: &Fault{Site: 1, Bit: 1}})
	if !res.Injected || res.Output[0] != 7 {
		t.Fatalf("xmm fault res = %+v", res)
	}
}

func TestVectorOverlapCycles(t *testing.T) {
	// A block with only scalar work, vs the same block plus vector work
	// that fits under the scalar span: same cycle count.
	scalarOnly := `
	.globl	main
main:
	movq	$1, %rax
	addq	$2, %rax
	addq	$3, %rax
	addq	$4, %rax
	hlt
`
	withVector := `
	.globl	main
main:
	movq	$1, %rax
	addq	$2, %rax
	movq	%rax, %xmm0
	addq	$3, %rax
	addq	$4, %rax
	hlt
`
	r1 := run(t, scalarOnly, RunOpts{})
	r2 := run(t, withVector, RunOpts{})
	if r1.Cycles != r2.Cycles {
		t.Errorf("vector op not hidden: %v vs %v cycles", r1.Cycles, r2.Cycles)
	}
	// But vector work beyond the scalar span costs extra.
	vectorHeavy := withVector
	for i := 0; i < 8; i++ {
		vectorHeavy = vectorHeavy[:len(vectorHeavy)-len("\thlt\n")] + "\tvpxor\t%ymm1, %ymm0, %ymm0\n\thlt\n"
	}
	r3 := run(t, vectorHeavy, RunOpts{})
	if r3.Cycles <= r2.Cycles {
		t.Errorf("vector-heavy block should cost more: %v vs %v", r3.Cycles, r2.Cycles)
	}
}

func TestCyclesPositiveAndDeterministic(t *testing.T) {
	m, err := New(mustParse(t, faultTestSrc), memSize)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Run(RunOpts{})
	b := m.Run(RunOpts{})
	if a.Cycles <= 0 || a.Cycles != b.Cycles || a.DynInsts != b.DynInsts {
		t.Fatalf("nondeterministic or nonpositive cycles: %+v vs %+v", a, b)
	}
}

func TestMemImageRestoredBetweenRuns(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$8192, %rax
	movq	(%rax), %rcx
	addq	$1, %rcx
	movq	%rcx, (%rax)
	out	%rcx
	hlt
`
	m, err := New(mustParse(t, src), memSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteWordImage(8192, 41); err != nil {
		t.Fatal(err)
	}
	r1 := m.Run(RunOpts{})
	r2 := m.Run(RunOpts{})
	if r1.Output[0] != 42 || r2.Output[0] != 42 {
		t.Fatalf("memory not restored: %v then %v", r1.Output, r2.Output)
	}
}

// TestALUPropertyVsGo cross-checks machine arithmetic against Go's own
// 64-bit semantics on random operand pairs.
func TestALUPropertyVsGo(t *testing.T) {
	type binop struct {
		op   string
		eval func(a, b int64) int64
	}
	ops := []binop{
		{"addq", func(a, b int64) int64 { return b + a }},
		{"subq", func(a, b int64) int64 { return b - a }},
		{"imulq", func(a, b int64) int64 { return b * a }},
		{"andq", func(a, b int64) int64 { return b & a }},
		{"orq", func(a, b int64) int64 { return b | a }},
		{"xorq", func(a, b int64) int64 { return b ^ a }},
	}
	for _, o := range ops {
		o := o
		f := func(a, b int64) bool {
			src := fmt.Sprintf(`
	.globl	main
main:
	movq	$%d, %%rax
	movq	$%d, %%rcx
	%s	%%rax, %%rcx
	out	%%rcx
	hlt
`, a, b, o.op)
			p, err := asm.Parse(src)
			if err != nil {
				return false
			}
			m, err := New(p, memSize)
			if err != nil {
				return false
			}
			res := m.Run(RunOpts{})
			return res.Outcome == OutcomeOK && int64(res.Output[0]) == o.eval(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", o.op, err)
		}
	}
}

// TestCmpFlagsPropertyVsGo checks every signed condition against Go
// comparisons on random pairs.
func TestCmpFlagsPropertyVsGo(t *testing.T) {
	conds := map[string]func(a, b int64) bool{
		"je":  func(a, b int64) bool { return a == b },
		"jne": func(a, b int64) bool { return a != b },
		"jl":  func(a, b int64) bool { return a < b },
		"jle": func(a, b int64) bool { return a <= b },
		"jg":  func(a, b int64) bool { return a > b },
		"jge": func(a, b int64) bool { return a >= b },
	}
	for cc, eval := range conds {
		cc, eval := cc, eval
		f := func(a, b int64) bool {
			src := fmt.Sprintf(`
	.globl	main
main:
	movq	$%d, %%rax
	movq	$%d, %%rcx
	cmpq	%%rcx, %%rax
	%s	.Lt
	movq	$0, %%rdx
	out	%%rdx
	hlt
.Lt:
	movq	$1, %%rdx
	out	%%rdx
	hlt
`, a, b, cc)
			p, err := asm.Parse(src)
			if err != nil {
				return false
			}
			m, err := New(p, memSize)
			if err != nil {
				return false
			}
			res := m.Run(RunOpts{})
			want := uint64(0)
			if eval(a, b) {
				want = 1
			}
			return res.Outcome == OutcomeOK && res.Output[0] == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", cc, err)
		}
	}
}

func TestPushPopRoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		src := fmt.Sprintf(`
	.globl	main
main:
	movq	$%d, %%r10
	pushq	%%r10
	movq	$0, %%r10
	popq	%%r10
	out	%%r10
	hlt
`, v)
		p, err := asm.Parse(src)
		if err != nil {
			return false
		}
		m, err := New(p, memSize)
		if err != nil {
			return false
		}
		res := m.Run(RunOpts{})
		return res.Outcome == OutcomeOK && int64(res.Output[0]) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
