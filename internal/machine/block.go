package machine

import (
	"fmt"

	"ferrum/internal/asm"
)

// Basic-block threaded dispatch.
//
// The legacy Run loop pays a bounds check, a step-budget check and a
// fault-site comparison on every dynamic instruction. Block dispatch hoists
// all three to block entry: a block former (buildBlocks) partitions the
// decoded uop array into basic blocks at load time, and runBlocks executes
// a whole block after one bounds check, one watchdog check and one
// fault-proximity check. Blocks whose execution could cross the step budget
// or contain the planned fault site fall back to runBlockSlow, which
// replicates the legacy per-instruction semantics bit for bit — so Result
// (outcome, cycles, counters, crash messages) is identical either way.
//
// All tables are indexed by pre-fusion instruction position: block
// formation and fusion never renumber insts/uops, so fault-site indexing,
// DestBits, snapshots and journal identity are untouched.

// buildBlocks computes, for every instruction index, the exclusive end of
// its enclosing basic block (blockEnd) and the number of fault-injection
// sites from that index to the block end (siteSuffix). Leaders are the
// program start, every label (any label is a potential slow-path jump
// target), every resolved jump/call target, and the fall-through after any
// instruction that can transfer control — including uSlow, whose generic
// interpreter may perform arbitrary control flow. siteSuffix is defined for
// every index, not just leaders, so a run resumed mid-block (snapshot pcs
// are per-instruction) still gets an exact fault-proximity bound.
func (m *Machine) buildBlocks() {
	n := len(m.uops)
	m.blockEnd = make([]int32, n)
	m.siteSuffix = make([]int32, n)
	if n == 0 {
		return
	}
	leader := make([]bool, n)
	leader[0] = true
	mark := func(i int) {
		if i >= 0 && i < n {
			leader[i] = true
		}
	}
	mark(m.start)
	mark(m.entry)
	for _, idx := range m.labels {
		mark(idx)
	}
	for i := range m.uops {
		switch m.uops[i].code {
		case uJmp, uJcc, uCall:
			mark(int(m.uops[i].target))
			mark(i + 1)
		case uRet, uHalt, uDetect, uSlow:
			mark(i + 1)
		}
	}
	next := int32(n)
	for i := n - 1; i >= 0; i-- {
		m.blockEnd[i] = next
		if leader[i] {
			next = int32(i)
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := int32(0)
		if int(m.blockEnd[i]) > i+1 {
			s = m.siteSuffix[i+1]
		}
		if m.uops[i].destKind != asm.DestNone {
			s++
		}
		m.siteSuffix[i] = s
	}
}

// runBlocks is the block-dispatch execution loop. The caller has already
// established the run preconditions (no per-instruction observers, no
// checkpoint schedule). It returns the terminal outcome and crash message;
// the shared Run epilogue flushes spans and assembles the Result.
func (m *Machine) runBlocks(fault *Fault, maxSteps, stopAt uint64) (Outcome, string) {
	// The dispatch tables are loop-invariant; locals keep their headers in
	// registers instead of reloading them through m on every instruction.
	uops := m.uops
	blockEnd := m.blockEnd
	fuseAt := m.fuseAt
	fuops := m.fuops
	fuseHits := m.fuseHits
	for {
		pc := m.pc
		if pc < 0 || pc >= len(uops) {
			return OutcomeCrash, fmt.Sprintf("pc %d out of range", pc)
		}
		m.nBlocks++
		end := int(blockEnd[pc])
		// Fall back to exact per-instruction execution when the step
		// budget could expire inside the block (legacy checks the budget
		// before every instruction), the planned fault site could land
		// on one of the block's remaining destinations, or the site-count
		// stop boundary falls within the block — fused uops retire several
		// sites per step, so the fast path could blow straight past it.
		if m.dyn+uint64(end-pc) > maxSteps ||
			(fault != nil && !m.injected && fault.Site < m.sites+uint64(m.siteSuffix[pc])) ||
			(stopAt > 0 && stopAt <= m.sites+uint64(m.siteSuffix[pc])) {
			if out, msg, done := m.runBlockSlow(fault, maxSteps, stopAt, pc, end); done {
				return out, msg
			}
			continue
		}
		i := pc
		for i < end {
			var next nextAction
			var err error
			if fx := fuseAt[i]; fx >= 0 {
				fuseHits[fx]++
				next, err = m.stepFused(&fuops[fx], i)
			} else {
				u := &uops[i]
				m.dyn++
				next, err = m.step(u, i)
				// A crashed instruction does not retire its destination, so
				// its site is not counted (matching the legacy loop, which
				// breaks before the site bookkeeping on error).
				if err == nil && u.destKind != asm.DestNone {
					m.sites++
				}
			}
			if err != nil {
				return OutcomeCrash, err.Error()
			}
			switch next {
			case nextHalt:
				return OutcomeOK, ""
			case nextDetect:
				return OutcomeDetected, ""
			}
			// A backward transfer can re-enter this same block (a
			// one-block self loop): return to the outer loop so the
			// watchdog and fault-proximity checks run per block entry.
			// Forward targets are always leaders, so any in-range forward
			// pc is the sequential successor.
			if m.pc <= i || m.pc >= end {
				break
			}
			i = m.pc
		}
	}
}

// runBlockSlow executes one basic block with the legacy per-instruction
// checks: step budget before each instruction, fault application on the
// matching site, per-site counting. Fused uops are ignored here — every
// position executes its original single uop, which is what makes the slow
// block bit-identical to the pre-fusion interpreter. It reports done=false
// when control left the block with the run still live.
func (m *Machine) runBlockSlow(fault *Fault, maxSteps, stopAt uint64, pc, end int) (Outcome, string, bool) {
	i := pc
	for i < end {
		if m.dyn >= maxSteps {
			return OutcomeHang, "", true
		}
		u := &m.uops[i]
		m.pc = i
		m.dyn++
		next, err := m.step(u, i)
		if err != nil {
			return OutcomeCrash, err.Error(), true
		}
		if u.destKind != asm.DestNone {
			if fault != nil && m.sites == fault.Site {
				dest := m.insts[i].dest
				m.applyFault(dest, fault.Bit)
				for _, b := range fault.Extra {
					m.applyFault(dest, b)
				}
				m.injected = true
				m.injCycles = m.cyclesNow()
				m.injDyn = m.dyn
			}
			m.sites++
			if stopAt > 0 && m.sites == stopAt {
				m.boundary = m.Snapshot()
				return OutcomeBoundary, "", true
			}
		}
		switch next {
		case nextHalt:
			return OutcomeOK, "", true
		case nextDetect:
			return OutcomeDetected, "", true
		}
		if m.pc <= i || m.pc >= end {
			return 0, "", false
		}
		i = m.pc
	}
	return 0, "", false
}

// DispatchStats reports this machine's lifetime block-dispatch counters:
// basic blocks entered and fused superinstructions executed. The fused
// count is the sum of the per-fuop hit counters, which the dispatch loop
// maintains anyway — the hot path carries no separate global counter.
func (m *Machine) DispatchStats() (blocksEntered, fusedUops uint64) {
	for _, h := range m.fuseHits {
		fusedUops += h
	}
	return m.nBlocks, fusedUops
}
