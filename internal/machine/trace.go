package machine

import "fmt"

// traceRing is a fixed-size flight recorder of executed instructions.
type traceRing struct {
	entries []string
	next    int
	full    bool
}

func newTraceRing(n int) *traceRing {
	return &traceRing{entries: make([]string, n)}
}

func (t *traceRing) record(fi *flatInst) {
	t.entries[t.next] = fmt.Sprintf("%s\t%s", fi.in.Tag, fi.in.String())
	t.next++
	if t.next == len(t.entries) {
		t.next = 0
		t.full = true
	}
}

// dump returns the recorded entries oldest first; nil receiver yields nil.
func (t *traceRing) dump() []string {
	if t == nil {
		return nil
	}
	if !t.full {
		return append([]string(nil), t.entries[:t.next]...)
	}
	out := make([]string, 0, len(t.entries))
	out = append(out, t.entries[t.next:]...)
	out = append(out, t.entries[:t.next]...)
	return out
}
