package machine

import "fmt"

// traceRing is a fixed-size flight recorder of executed instructions. It
// stores *flatInst references and defers all string formatting to dump():
// recording must stay O(pointer store) because it happens on every executed
// instruction of a traced run, while dump runs once, on at most len(entries)
// instructions. The machine's flattened instruction array outlives every
// run, so the references stay valid until dump is called.
type traceRing struct {
	entries []*flatInst
	next    int
	full    bool
}

func newTraceRing(n int) *traceRing {
	return &traceRing{entries: make([]*flatInst, n)}
}

func (t *traceRing) record(fi *flatInst) {
	t.entries[t.next] = fi
	t.next++
	if t.next == len(t.entries) {
		t.next = 0
		t.full = true
	}
}

// dump formats the recorded entries oldest first; nil receiver yields nil.
// A full ring is read in rotated order directly — no scratch slice of
// references is materialised just to linearise it.
func (t *traceRing) dump() []string {
	if t == nil {
		return nil
	}
	n, start := t.next, 0
	if t.full {
		n, start = len(t.entries), t.next
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		j := start + i
		if j >= len(t.entries) {
			j -= len(t.entries)
		}
		fi := t.entries[j]
		out[i] = fmt.Sprintf("%s\t%s", fi.in.Tag, fi.in.String())
	}
	return out
}
