package machine

import "testing"

// TestEquivBoundaryStop pins the compose-mode invariant at machine level: a
// run stopped at a checkpoint's site count (OutcomeBoundary) must capture
// exactly the state the checkpoint recorded — same digest — on both the
// block-threaded fast path and the instrumented slow path, and whether the
// run started cold or resumed from an earlier snapshot.
func TestEquivBoundaryStop(t *testing.T) {
	prog := mustParse(t, snapSrc)
	m, err := New(prog, memSize)
	if err != nil {
		t.Fatal(err)
	}
	golden := m.Run(RunOpts{})
	if golden.Outcome != OutcomeOK || golden.DynSites == 0 {
		t.Fatalf("golden = %+v", golden)
	}
	var snaps []*Snapshot
	m.Run(RunOpts{CheckpointEvery: 5, OnCheckpoint: func(s *Snapshot) {
		snaps = append(snaps, s)
	}})
	if len(snaps) < 2 {
		t.Fatalf("only %d snapshots", len(snaps))
	}
	for i, snap := range snaps {
		stop := snap.Sites()
		// Fast path (block dispatch) and slow path (RecordFnSpans forces the
		// instrumented loop) must stop at the identical machine state.
		fast := m.Run(RunOpts{StopAtSites: stop})
		slow := m.Run(RunOpts{StopAtSites: stop, RecordFnSpans: true})
		if fast.Outcome != OutcomeBoundary || slow.Outcome != OutcomeBoundary {
			t.Fatalf("snap %d: outcomes %v/%v, want boundary", i, fast.Outcome, slow.Outcome)
		}
		want := snap.Digest()
		if got := fast.Boundary.Digest(); got != want {
			t.Errorf("snap %d: fast boundary digest %x != checkpoint %x", i, got, want)
		}
		if got := slow.Boundary.Digest(); got != want {
			t.Errorf("snap %d: slow boundary digest %x != checkpoint %x", i, got, want)
		}
		if i > 0 {
			resumed := m.Run(RunOpts{Resume: snaps[i-1], StopAtSites: stop})
			if resumed.Outcome != OutcomeBoundary {
				t.Fatalf("snap %d: resumed outcome %v", i, resumed.Outcome)
			}
			if got := resumed.Boundary.Digest(); got != want {
				t.Errorf("snap %d: resumed boundary digest %x != checkpoint %x", i, got, want)
			}
		}
	}
}

// TestEquivBoundaryFaulted checks that a faulted run stopped at a boundary
// carries the injection bookkeeping and diffs cleanly against the golden
// checkpoint, and that resuming from the boundary snapshot finishes the run
// with the same result as the unstopped faulted run.
func TestEquivBoundaryFaulted(t *testing.T) {
	prog := mustParse(t, snapSrc)
	m, err := New(prog, memSize)
	if err != nil {
		t.Fatal(err)
	}
	golden := m.Run(RunOpts{})
	var snaps []*Snapshot
	m.Run(RunOpts{CheckpointEvery: 10, OnCheckpoint: func(s *Snapshot) {
		snaps = append(snaps, s)
	}})
	stop := snaps[0].Sites()
	for site := uint64(0); site < stop; site++ {
		for _, bit := range []uint{0, 7, 31} {
			f := &Fault{Site: site, Bit: bit}
			full := m.Run(RunOpts{Fault: f})
			part := m.Run(RunOpts{Fault: f, StopAtSites: stop})
			if part.Outcome != OutcomeBoundary {
				// The fault derailed the run inside the section (crash, hang,
				// detection, early exit); nothing to compose.
				continue
			}
			if !part.Injected {
				t.Fatalf("site %d bit %d: boundary run not injected", site, bit)
			}
			d := m.DiffSnapshots(part.Boundary, snaps[0])
			if !d.Comparable {
				t.Fatalf("site %d bit %d: boundary not comparable", site, bit)
			}
			cont := m.Run(RunOpts{Resume: part.Boundary})
			if cont.Outcome != full.Outcome || !cont.Injected {
				t.Errorf("site %d bit %d: continued outcome %v (inj=%v) != full %v",
					site, bit, cont.Outcome, cont.Injected, full.Outcome)
			}
			if len(cont.Output) != len(full.Output) {
				t.Errorf("site %d bit %d: continued output len %d != full %d",
					site, bit, len(cont.Output), len(full.Output))
			} else {
				for i := range cont.Output {
					if cont.Output[i] != full.Output[i] {
						t.Errorf("site %d bit %d: continued output differs at %d", site, bit, i)
						break
					}
				}
			}
			if d.Clean() && len(d.GPRs) == 0 {
				// A bit-exact boundary must imply the golden tail.
				if cont.Outcome != OutcomeOK {
					t.Errorf("site %d bit %d: clean boundary but outcome %v", site, bit, cont.Outcome)
				}
			}
			_ = golden
		}
	}
}

// TestSnapshotDigestStability: the digest is a pure function of captured
// state — identical across re-recordings — and sensitive to state changes.
func TestSnapshotDigestStability(t *testing.T) {
	prog := mustParse(t, snapSrc)
	m, err := New(prog, memSize)
	if err != nil {
		t.Fatal(err)
	}
	record := func() []*Snapshot {
		var snaps []*Snapshot
		m.Run(RunOpts{CheckpointEvery: 7, OnCheckpoint: func(s *Snapshot) {
			snaps = append(snaps, s)
		}})
		return snaps
	}
	a, b := record(), record()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("snapshot counts %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Digest() != b[i].Digest() {
			t.Errorf("snapshot %d: digest not reproducible", i)
		}
		for j := i + 1; j < len(a); j++ {
			if a[i].Digest() == a[j].Digest() {
				t.Errorf("snapshots %d and %d: digest collision", i, j)
			}
		}
	}
}
