package machine

import (
	"reflect"
	"testing"
)

// snapSrc writes to memory inside the loop so snapshots carry dirty pages,
// and reads the values back so corrupted stores surface in the output.
const snapSrc = `
	.globl	main
main:
	movq	$8192, %rbp
	movq	$0, %rax
	movq	$1, %rcx
.Lloop:
	cmpq	$20, %rcx
	jg	.Ldone
	leaq	(%rbp,%rcx,8), %rdx
	movq	%rcx, (%rdx)
	addq	(%rdx), %rax
	addq	$1, %rcx
	jmp	.Lloop
.Ldone:
	out	%rax
	movq	8(%rbp), %rbx
	out	%rbx
	hlt
`

func sameResult(t *testing.T, got, want Result, ctx string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: resumed result differs\ngot  %+v\nwant %+v", ctx, got, want)
	}
}

// TestSnapshotResumeEquivalence pins the tentpole invariant at machine
// level: for every fault site and a schedule of snapshots, a run resumed
// from the latest snapshot at or before the fault site must be
// bit-identical (full Result struct) to the same faulted run from scratch.
func TestSnapshotResumeEquivalence(t *testing.T) {
	prog := mustParse(t, snapSrc)
	m, err := New(prog, memSize)
	if err != nil {
		t.Fatal(err)
	}
	golden := m.Run(RunOpts{})
	if golden.Outcome != OutcomeOK || golden.DynSites == 0 {
		t.Fatalf("golden = %+v", golden)
	}

	for _, every := range []uint64{1, 7, golden.DynSites} {
		var snaps []*Snapshot
		m.Run(RunOpts{CheckpointEvery: every, OnCheckpoint: func(s *Snapshot) {
			snaps = append(snaps, s)
		}})
		if len(snaps) == 0 {
			t.Fatalf("K=%d: no snapshots", every)
		}
		for site := uint64(0); site < golden.DynSites; site++ {
			f := &Fault{Site: site, Bit: 4}
			direct := m.Run(RunOpts{Fault: f})
			var snap *Snapshot
			for _, s := range snaps {
				if s.Sites() <= site {
					snap = s
				}
			}
			if snap == nil {
				continue // site precedes the first snapshot
			}
			resumed := m.Run(RunOpts{Fault: f, Resume: snap})
			sameResult(t, resumed, direct, "K="+itoa(every)+" site="+itoa(site))
		}
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestSnapshotResumeAfterAbnormalRuns checks a worker-machine lifecycle:
// resumed runs that crash or detect must not poison the next resume on the
// same machine instance.
func TestSnapshotResumeAfterAbnormalRuns(t *testing.T) {
	prog := mustParse(t, snapSrc)
	m, err := New(prog, memSize)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*Snapshot
	m.Run(RunOpts{CheckpointEvery: 5, OnCheckpoint: func(s *Snapshot) {
		snaps = append(snaps, s)
	}})
	golden := m.Run(RunOpts{})

	snap := snaps[0]
	// Hunt a crashing fault among high bits of the loaded pointer sites.
	var crashed bool
	for site := snap.Sites(); site < golden.DynSites && !crashed; site++ {
		for _, bit := range []uint{40, 50, 62} {
			f := &Fault{Site: site, Bit: bit}
			direct := m.Run(RunOpts{Fault: f})
			resumed := m.Run(RunOpts{Fault: f, Resume: snap})
			sameResult(t, resumed, direct, "abnormal")
			if direct.Outcome == OutcomeCrash {
				crashed = true
			}
			// A clean run resumed right after must still be golden.
			clean := m.Run(RunOpts{Resume: snap})
			if clean.Outcome != OutcomeOK || !reflect.DeepEqual(clean.Output, golden.Output) {
				t.Fatalf("clean resume after faulted run = %+v", clean)
			}
		}
	}
	if !crashed {
		t.Log("no crashing fault found; equivalence still checked")
	}
}

// TestSnapshotMultiBitResume runs multi-bit (Extra) faults through the
// resume path.
func TestSnapshotMultiBitResume(t *testing.T) {
	prog := mustParse(t, snapSrc)
	m, err := New(prog, memSize)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*Snapshot
	m.Run(RunOpts{CheckpointEvery: 3, OnCheckpoint: func(s *Snapshot) {
		snaps = append(snaps, s)
	}})
	snap := snaps[1]
	for site := snap.Sites(); site < snap.Sites()+6; site++ {
		f := &Fault{Site: site, Bit: 2, Extra: []uint{17, 33}}
		direct := m.Run(RunOpts{Fault: f})
		resumed := m.Run(RunOpts{Fault: f, Resume: snap})
		sameResult(t, resumed, direct, "multi-bit")
	}
}

// TestRestoreMismatch rejects snapshots from a different configuration.
func TestRestoreMismatch(t *testing.T) {
	prog := mustParse(t, snapSrc)
	m1, _ := New(prog, memSize)
	m2, _ := New(prog, memSize*2)
	var snaps []*Snapshot
	m1.Run(RunOpts{CheckpointEvery: 1, OnCheckpoint: func(s *Snapshot) {
		snaps = append(snaps, s)
	}})
	if err := m2.Restore(snaps[0]); err == nil {
		t.Fatal("restore across memory sizes accepted")
	}
	r := m2.Run(RunOpts{Resume: snaps[0]})
	if r.Outcome != OutcomeCrash {
		t.Fatalf("resume with mismatched snapshot = %v", r.Outcome)
	}
}

// TestDirtyPageReset pins the satellite optimisation: repeated runs must
// stay correct with dirty-page (not full-image) resets, including after
// SetMemImage invalidates the sync.
func TestDirtyPageReset(t *testing.T) {
	prog := mustParse(t, snapSrc)
	m, err := New(prog, memSize)
	if err != nil {
		t.Fatal(err)
	}
	first := m.Run(RunOpts{})
	for i := 0; i < 3; i++ {
		again := m.Run(RunOpts{})
		sameResult(t, again, first, "repeat run")
	}
	// Mutating the image must both invalidate the sync and change results:
	// slot 1 of the array at 8192 is re-stored by the program, but the sum
	// is unchanged... so poke a word the program reads but never writes.
	if err := m.WriteWordImage(8192+8, 99); err != nil {
		t.Fatal(err)
	}
	// The program overwrites slot 1 before reading it, so results must be
	// *identical* — the poke is clobbered iff the reset actually reapplied
	// the program's stores on a fresh image rather than leaking state.
	again := m.Run(RunOpts{})
	sameResult(t, again, first, "after SetMemImage")
}

// TestSnapshotSharedAcrossMachines restores one snapshot into a second
// machine instance built from the same program and image, the campaign
// worker-pool pattern.
func TestSnapshotSharedAcrossMachines(t *testing.T) {
	prog := mustParse(t, snapSrc)
	m1, _ := New(prog, memSize)
	m2, _ := New(prog, memSize)
	var snaps []*Snapshot
	m1.Run(RunOpts{CheckpointEvery: 4, OnCheckpoint: func(s *Snapshot) {
		snaps = append(snaps, s)
	}})
	golden := m1.Run(RunOpts{})
	for _, snap := range snaps {
		direct := m1.Run(RunOpts{Fault: &Fault{Site: snap.Sites(), Bit: 9}})
		resumed := m2.Run(RunOpts{Fault: &Fault{Site: snap.Sites(), Bit: 9}, Resume: snap})
		sameResult(t, resumed, direct, "cross-machine, fault on checkpoint site")
	}
	clean := m2.Run(RunOpts{})
	if !reflect.DeepEqual(clean, golden) {
		t.Fatalf("fresh run on m2 after resumes = %+v, want %+v", clean, golden)
	}
}

// TestSitesHintPrealloc checks that recording runs preallocate the site
// slices at the hinted capacity.
func TestSitesHintPrealloc(t *testing.T) {
	prog := mustParse(t, snapSrc)
	m, _ := New(prog, memSize)
	golden := m.Run(RunOpts{})
	res := m.Run(RunOpts{RecordSites: true, RecordSiteLocs: true, SitesHint: golden.DynSites})
	if uint64(cap(res.SiteDests)) != golden.DynSites || uint64(cap(res.SiteLocs)) != golden.DynSites {
		t.Errorf("caps = %d/%d, want %d", cap(res.SiteDests), cap(res.SiteLocs), golden.DynSites)
	}
	// Second recording run without a hint uses the machine's own memory of
	// the previous run's site count.
	res = m.Run(RunOpts{RecordSites: true})
	if uint64(cap(res.SiteDests)) != golden.DynSites {
		t.Errorf("lastSites prealloc cap = %d, want %d", cap(res.SiteDests), golden.DynSites)
	}
}
