package machine

import (
	"fmt"

	"ferrum/internal/asm"
)

// Dirty-page tracking granularity. The machine's working memory deviates
// from the pristine image only inside pages listed in dirtyPages, so reset
// and Restore copy back just those pages instead of all of memImage, and
// Snapshot captures exactly them.
const (
	pageShift = 9 // 512-byte pages
	pageSize  = 1 << pageShift
)

// markDirty records that [ea, ea+size) has been written. Callers have
// already bounds-checked the access.
func (m *Machine) markDirty(ea, size uint64) {
	for p := ea >> pageShift; p <= (ea+size-1)>>pageShift; p++ {
		if !m.dirty[p] {
			m.dirty[p] = true
			m.dirtyPages = append(m.dirtyPages, int32(p))
		}
	}
}

// restoreMem brings working memory back to the pristine image. When the
// image is unchanged since the last sync only the dirtied pages are copied;
// after SetMemImage the whole image is re-synced once.
func (m *Machine) restoreMem() {
	if !m.memSynced {
		copy(m.mem, m.memImage)
		for _, p := range m.dirtyPages {
			m.dirty[p] = false
		}
		m.dirtyPages = m.dirtyPages[:0]
		m.memSynced = true
		return
	}
	for _, p := range m.dirtyPages {
		lo := int(p) << pageShift
		hi := lo + pageSize
		if hi > len(m.mem) {
			hi = len(m.mem)
		}
		copy(m.mem[lo:hi], m.memImage[lo:hi])
		m.dirty[p] = false
	}
	m.dirtyPages = m.dirtyPages[:0]
}

// Snapshot is a self-contained copy of a Machine's mid-run state: registers,
// flags, pc, dynamic counters, the output stream, in-flight cycle spans, and
// the memory pages dirtied since the run began (a delta against the pristine
// image, not a full memory copy). A snapshot taken on one machine can be
// restored into any machine loaded with the same program and memory size, as
// long as both share the same pristine image; it is immutable after capture
// and safe to restore concurrently into different machines.
type Snapshot struct {
	gpr       [asm.NumReg]uint64
	x         [asm.NumXReg][8]uint64
	flags     [asm.NumFlag]bool
	pc        int
	dyn       uint64
	sites     uint64
	injected  bool
	injCycles float64
	injDyn    uint64

	output     []uint64
	scalarSpan float64
	vectorSpan float64
	cycles     float64

	pages   []snapPage
	memSize int
	nInsts  int
}

type snapPage struct {
	idx  int32
	data []byte
}

// Sites reports the number of dynamic fault-injection sites executed before
// the snapshot was taken; a resumed run can only reach fault sites >= this.
func (s *Snapshot) Sites() uint64 { return s.sites }

// DynInsts reports the dynamic instructions executed before the snapshot —
// the work a resumed run skips.
func (s *Snapshot) DynInsts() uint64 { return s.dyn }

// MemBytes reports the bytes of dirtied memory the snapshot carries, the
// dominant cost of a restore.
func (s *Snapshot) MemBytes() int {
	n := 0
	for _, pg := range s.pages {
		n += len(pg.data)
	}
	return n
}

// Snapshot captures the machine's current state. Meaningful mid-run (via
// RunOpts.OnCheckpoint) or immediately after a run; the capture is relative
// to the current pristine image, so mutating the image afterwards
// invalidates the snapshot.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		gpr: m.gpr, x: m.x, flags: m.flags,
		pc: m.pc, dyn: m.dyn, sites: m.sites, injected: m.injected,
		injCycles: m.injCycles, injDyn: m.injDyn,
		output:     append([]uint64(nil), m.output...),
		scalarSpan: m.scalarSpan, vectorSpan: m.vectorSpan, cycles: m.cycles,
		pages:   make([]snapPage, 0, len(m.dirtyPages)),
		memSize: len(m.mem),
		nInsts:  len(m.insts),
	}
	for _, p := range m.dirtyPages {
		lo := int(p) << pageShift
		hi := lo + pageSize
		if hi > len(m.mem) {
			hi = len(m.mem)
		}
		s.pages = append(s.pages, snapPage{idx: p, data: append([]byte(nil), m.mem[lo:hi]...)})
	}
	return s
}

// Restore replaces the machine's state with a previously captured snapshot,
// copying only the pristine image's dirtied pages plus the snapshot's page
// delta. After Restore the machine is bit-identical to the one the snapshot
// was taken from, so a Run resumed here matches a from-scratch run that
// reached the same point.
func (m *Machine) Restore(s *Snapshot) error {
	if s.memSize != len(m.mem) || s.nInsts != len(m.insts) {
		return fmt.Errorf("machine: snapshot mismatch (mem %d vs %d, insts %d vs %d)",
			s.memSize, len(m.mem), s.nInsts, len(m.insts))
	}
	m.restoreMem()
	for _, pg := range s.pages {
		lo := int(pg.idx) << pageShift
		copy(m.mem[lo:lo+len(pg.data)], pg.data)
		if !m.dirty[pg.idx] {
			m.dirty[pg.idx] = true
			m.dirtyPages = append(m.dirtyPages, pg.idx)
		}
	}
	m.gpr, m.x, m.flags = s.gpr, s.x, s.flags
	m.pc, m.dyn, m.sites, m.injected = s.pc, s.dyn, s.sites, s.injected
	m.injCycles, m.injDyn = s.injCycles, s.injDyn
	m.output = append(m.output[:0], s.output...)
	m.scalarSpan, m.vectorSpan, m.cycles = s.scalarSpan, s.vectorSpan, s.cycles
	return nil
}
