package machine

import (
	"fmt"
	"sort"
	"strings"

	"ferrum/internal/asm"
)

// Profile attributes a run's dynamic instructions and cycle costs to
// opcodes and to instruction provenance (program code vs. duplicates,
// checks, staging and spills inserted by a protection pass). It is how the
// harness explains *where* each technique's overhead goes.
type Profile struct {
	OpCount  map[asm.Op]uint64
	TagCount map[asm.Tag]uint64
	// TagScalar and TagVector accumulate the scalar- and vector-unit
	// costs charged to instructions of each provenance tag. Because the
	// units overlap within blocks, these sum to more than Result.Cycles;
	// they measure issued work per unit, not wall-clock.
	TagScalar map[asm.Tag]float64
	TagVector map[asm.Tag]float64
}

func newProfile() *Profile {
	return &Profile{
		OpCount:   map[asm.Op]uint64{},
		TagCount:  map[asm.Tag]uint64{},
		TagScalar: map[asm.Tag]float64{},
		TagVector: map[asm.Tag]float64{},
	}
}

func (p *Profile) record(fi *flatInst) {
	p.OpCount[fi.in.Op]++
	p.TagCount[fi.in.Tag]++
	p.TagScalar[fi.in.Tag] += fi.cost.scalar
	p.TagVector[fi.in.Tag] += fi.cost.vector
}

// DynInsts reports the total dynamic instruction count in the profile.
func (p *Profile) DynInsts() uint64 {
	var n uint64
	for _, c := range p.TagCount {
		n += c
	}
	return n
}

// TagFraction reports the fraction of dynamic instructions with the tag.
func (p *Profile) TagFraction(t asm.Tag) float64 {
	total := p.DynInsts()
	if total == 0 {
		return 0
	}
	return float64(p.TagCount[t]) / float64(total)
}

// TopOps returns the n most-executed opcodes with counts, descending.
func (p *Profile) TopOps(n int) []struct {
	Op    asm.Op
	Count uint64
} {
	type oc struct {
		Op    asm.Op
		Count uint64
	}
	all := make([]oc, 0, len(p.OpCount))
	for op, c := range p.OpCount {
		all = append(all, oc{op, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Op < all[j].Op
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Op    asm.Op
		Count uint64
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Op    asm.Op
			Count uint64
		}{all[i].Op, all[i].Count}
	}
	return out
}

// String summarises the profile by provenance tag.
func (p *Profile) String() string {
	var b strings.Builder
	tags := []asm.Tag{asm.TagProgram, asm.TagDup, asm.TagCheck, asm.TagStage, asm.TagSpill, asm.TagRuntime}
	total := p.DynInsts()
	fmt.Fprintf(&b, "dyn insts %d:", total)
	for _, t := range tags {
		if p.TagCount[t] == 0 {
			continue
		}
		fmt.Fprintf(&b, " %s %.1f%%", t, p.TagFraction(t)*100)
	}
	return b.String()
}
