package machine

import (
	"fmt"
	"sort"
	"strings"

	"ferrum/internal/asm"
)

// Profile attributes a run's dynamic instructions and cycle costs to
// opcodes and to instruction provenance (program code vs. duplicates,
// checks, staging and spills inserted by a protection pass). It is how the
// harness explains *where* each technique's overhead goes.
type Profile struct {
	OpCount  map[asm.Op]uint64
	TagCount map[asm.Tag]uint64
	// TagScalar and TagVector accumulate the scalar- and vector-unit
	// costs charged to instructions of each provenance tag. Because the
	// units overlap within blocks, these sum to more than Result.Cycles;
	// they measure issued work per unit, not wall-clock.
	TagScalar map[asm.Tag]float64
	TagVector map[asm.Tag]float64
}

// profile is the run-time recorder behind the exported Profile. The hot
// path indexes dense arrays by opcode and provenance tag — no map
// operations per dynamic instruction — and export converts to the exported
// map form once, when the run finishes. Opcode or tag values outside the
// defined enums (constructible only by hand-built programs; such runs crash
// on the unimplemented opcode anyway) spill into lazily allocated overflow
// maps so the recorder never panics where the old map-based one did not.
type profile struct {
	opCount   [asm.NumOps]uint64
	tagCount  [asm.NumTags]uint64
	tagScalar [asm.NumTags]float64
	tagVector [asm.NumTags]float64

	opOver  map[asm.Op]uint64
	tagOver map[asm.Tag]*tagWork
}

type tagWork struct {
	count          uint64
	scalar, vector float64
}

func (p *profile) record(fi *flatInst) {
	if op := fi.in.Op; int(op) < len(p.opCount) {
		p.opCount[op]++
	} else {
		if p.opOver == nil {
			p.opOver = map[asm.Op]uint64{}
		}
		p.opOver[op]++
	}
	if t := fi.in.Tag; int(t) < len(p.tagCount) {
		p.tagCount[t]++
		p.tagScalar[t] += fi.cost.scalar
		p.tagVector[t] += fi.cost.vector
	} else {
		if p.tagOver == nil {
			p.tagOver = map[asm.Tag]*tagWork{}
		}
		w := p.tagOver[t]
		if w == nil {
			w = &tagWork{}
			p.tagOver[t] = w
		}
		w.count++
		w.scalar += fi.cost.scalar
		w.vector += fi.cost.vector
	}
}

// export converts the dense counters to the exported map form. A nil
// receiver (profiling disabled) exports as nil.
func (p *profile) export() *Profile {
	if p == nil {
		return nil
	}
	// Size the maps exactly before filling them: export runs at the end of
	// every profiled run (every campaign golden run, every overhead-profile
	// iteration), and growing four maps from zero rehashed each one several
	// times on that path.
	nOps, nTags := len(p.opOver), len(p.tagOver)
	for _, c := range p.opCount {
		if c != 0 {
			nOps++
		}
	}
	for _, c := range p.tagCount {
		if c != 0 {
			nTags++
		}
	}
	out := &Profile{
		OpCount:   make(map[asm.Op]uint64, nOps),
		TagCount:  make(map[asm.Tag]uint64, nTags),
		TagScalar: make(map[asm.Tag]float64, nTags),
		TagVector: make(map[asm.Tag]float64, nTags),
	}
	for op, c := range p.opCount {
		if c != 0 {
			out.OpCount[asm.Op(op)] = c
		}
	}
	for t, c := range p.tagCount {
		if c != 0 {
			out.TagCount[asm.Tag(t)] = c
			out.TagScalar[asm.Tag(t)] = p.tagScalar[t]
			out.TagVector[asm.Tag(t)] = p.tagVector[t]
		}
	}
	for op, c := range p.opOver {
		out.OpCount[op] += c
	}
	for t, w := range p.tagOver {
		out.TagCount[t] += w.count
		out.TagScalar[t] += w.scalar
		out.TagVector[t] += w.vector
	}
	return out
}

// DynInsts reports the total dynamic instruction count in the profile.
func (p *Profile) DynInsts() uint64 {
	var n uint64
	for _, c := range p.TagCount {
		n += c
	}
	return n
}

// TagFraction reports the fraction of dynamic instructions with the tag.
func (p *Profile) TagFraction(t asm.Tag) float64 {
	total := p.DynInsts()
	if total == 0 {
		return 0
	}
	return float64(p.TagCount[t]) / float64(total)
}

// TopOps returns the n most-executed opcodes with counts, descending.
func (p *Profile) TopOps(n int) []struct {
	Op    asm.Op
	Count uint64
} {
	type oc struct {
		Op    asm.Op
		Count uint64
	}
	all := make([]oc, 0, len(p.OpCount))
	for op, c := range p.OpCount {
		all = append(all, oc{op, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Op < all[j].Op
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Op    asm.Op
		Count uint64
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Op    asm.Op
			Count uint64
		}{all[i].Op, all[i].Count}
	}
	return out
}

// String summarises the profile by provenance tag.
func (p *Profile) String() string {
	var b strings.Builder
	tags := []asm.Tag{asm.TagProgram, asm.TagDup, asm.TagCheck, asm.TagStage, asm.TagSpill, asm.TagRuntime}
	total := p.DynInsts()
	fmt.Fprintf(&b, "dyn insts %d:", total)
	for _, t := range tags {
		if p.TagCount[t] == 0 {
			continue
		}
		fmt.Fprintf(&b, " %s %.1f%%", t, p.TagFraction(t)*100)
	}
	return b.String()
}
