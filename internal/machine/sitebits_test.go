package machine

import (
	"testing"

	"ferrum/internal/asm"
)

// TestDestBits pins the destination-width table fault planners sample bit
// numbers from: GPR writes expose their writable width, SIMD writes 64 bits
// per touched lane, flag writers the NumFlag condition flags.
func TestDestBits(t *testing.T) {
	cases := []struct {
		name string
		d    asm.Dest
		want uint16
	}{
		{"gpr8", asm.Dest{Kind: asm.DestGPR, Reg: asm.RAX, W: asm.W8}, 8},
		{"gpr16", asm.Dest{Kind: asm.DestGPR, Reg: asm.RAX, W: asm.W16}, 16},
		{"gpr32", asm.Dest{Kind: asm.DestGPR, Reg: asm.RAX, W: asm.W32}, 32},
		{"gpr64", asm.Dest{Kind: asm.DestGPR, Reg: asm.RAX, W: asm.W64}, 64},
		{"gpr-unspecified-width", asm.Dest{Kind: asm.DestGPR, Reg: asm.RAX}, 64},
		{"xmm-one-lane", asm.Dest{Kind: asm.DestXMM, X: 1}, 64},
		{"ymm-lane-span", asm.Dest{Kind: asm.DestXMM, X: 0, LaneLo: 0, LaneHi: 3}, 256},
		{"zmm-lane-span", asm.Dest{Kind: asm.DestXMM, X: 0, LaneLo: 0, LaneHi: 7}, 512},
		{"upper-lane", asm.Dest{Kind: asm.DestXMM, X: 3, LaneLo: 1, LaneHi: 1}, 64},
		{"flags", asm.Dest{Kind: asm.DestFlags}, uint16(asm.NumFlag)},
		{"none", asm.Dest{}, 0},
	}
	for _, c := range cases {
		if got := DestBits(c.d); got != c.want {
			t.Errorf("DestBits(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestRecordSiteBits: a golden run with RecordSiteBits reports one width per
// dynamic injection site, in execution order, matching each site's actual
// destination — so a fault planner can sample bits inside the destination
// instead of a flat [0, 64).
func TestRecordSiteBits(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$6, %rax
	cmpq	$5, %rax
	addq	$1, %rax
	out	%rax
	hlt
`
	res := run(t, src, RunOpts{RecordSiteBits: true})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.CrashMsg)
	}
	want := []uint16{64, uint16(asm.NumFlag), 64}
	if len(res.SiteBits) != int(res.DynSites) {
		t.Fatalf("SiteBits has %d entries for %d sites", len(res.SiteBits), res.DynSites)
	}
	if len(res.SiteBits) != len(want) {
		t.Fatalf("SiteBits = %v, want %v", res.SiteBits, want)
	}
	for i, w := range want {
		if res.SiteBits[i] != w {
			t.Errorf("site %d width = %d, want %d", i, res.SiteBits[i], w)
		}
	}

	// Without the flag the run records nothing: the per-plan hot path must
	// not pay for width recording it didn't ask for.
	if plain := run(t, src, RunOpts{}); plain.SiteBits != nil {
		t.Errorf("SiteBits recorded without RecordSiteBits: %v", plain.SiteBits)
	}
}
