package machine

import (
	"testing"

	"ferrum/internal/asm"
)

// TestDestBits pins the destination-width table fault planners sample bit
// numbers from: GPR writes expose their writable width, SIMD writes 64 bits
// per touched lane, flag writers the NumFlag condition flags.
func TestDestBits(t *testing.T) {
	cases := []struct {
		name string
		d    asm.Dest
		want uint16
	}{
		{"gpr8", asm.Dest{Kind: asm.DestGPR, Reg: asm.RAX, W: asm.W8}, 8},
		{"gpr16", asm.Dest{Kind: asm.DestGPR, Reg: asm.RAX, W: asm.W16}, 16},
		{"gpr32", asm.Dest{Kind: asm.DestGPR, Reg: asm.RAX, W: asm.W32}, 32},
		{"gpr64", asm.Dest{Kind: asm.DestGPR, Reg: asm.RAX, W: asm.W64}, 64},
		{"gpr-unspecified-width", asm.Dest{Kind: asm.DestGPR, Reg: asm.RAX}, 64},
		{"xmm-one-lane", asm.Dest{Kind: asm.DestXMM, X: 1}, 64},
		{"ymm-lane-span", asm.Dest{Kind: asm.DestXMM, X: 0, LaneLo: 0, LaneHi: 3}, 256},
		{"zmm-lane-span", asm.Dest{Kind: asm.DestXMM, X: 0, LaneLo: 0, LaneHi: 7}, 512},
		{"upper-lane", asm.Dest{Kind: asm.DestXMM, X: 3, LaneLo: 1, LaneHi: 1}, 64},
		{"flags", asm.Dest{Kind: asm.DestFlags}, uint16(asm.NumFlag)},
		{"none", asm.Dest{}, 0},
	}
	for _, c := range cases {
		if got := DestBits(c.d); got != c.want {
			t.Errorf("DestBits(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestRecordSiteBits: a golden run with RecordSiteBits reports one width per
// dynamic injection site, in execution order, matching each site's actual
// destination — so a fault planner can sample bits inside the destination
// instead of a flat [0, 64).
func TestRecordSiteBits(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$6, %rax
	cmpq	$5, %rax
	addq	$1, %rax
	out	%rax
	hlt
`
	res := run(t, src, RunOpts{RecordSiteBits: true})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.CrashMsg)
	}
	want := []uint16{64, uint16(asm.NumFlag), 64}
	if len(res.SiteBits) != int(res.DynSites) {
		t.Fatalf("SiteBits has %d entries for %d sites", len(res.SiteBits), res.DynSites)
	}
	if len(res.SiteBits) != len(want) {
		t.Fatalf("SiteBits = %v, want %v", res.SiteBits, want)
	}
	for i, w := range want {
		if res.SiteBits[i] != w {
			t.Errorf("site %d width = %d, want %d", i, res.SiteBits[i], w)
		}
	}

	// Without the flag the run records nothing: the per-plan hot path must
	// not pay for width recording it didn't ask for.
	if plain := run(t, src, RunOpts{}); plain.SiteBits != nil {
		t.Errorf("SiteBits recorded without RecordSiteBits: %v", plain.SiteBits)
	}
}

// TestRecordSiteStatics: the per-site static instruction ids index
// StaticInstrs in load order, and the referenced instruction's destination
// width agrees with the SiteBits recorded for the same dynamic site — the
// alignment the prune partitioner depends on.
func TestRecordSiteStatics(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$3, %rcx
	movq	$0, %rax
.Lloop:
	addq	%rcx, %rax
	cmpq	$0, %rcx
	subq	$1, %rcx
	jne	.Lloop
	out	%rax
	hlt
`
	res := run(t, src, RunOpts{RecordSiteBits: true, RecordSiteStatics: true})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.CrashMsg)
	}
	if uint64(len(res.SiteStatics)) != res.DynSites || len(res.SiteStatics) != len(res.SiteBits) {
		t.Fatalf("SiteStatics has %d entries for %d sites (%d widths)",
			len(res.SiteStatics), res.DynSites, len(res.SiteBits))
	}
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	statics := m.StaticInstrs()
	seen := map[int32]bool{}
	for site, sid := range res.SiteStatics {
		if sid < 0 || int(sid) >= len(statics) {
			t.Fatalf("site %d: static id %d out of range [0,%d)", site, sid, len(statics))
		}
		st := statics[sid]
		if st.Fn != "main" {
			t.Errorf("site %d: static %d attributed to %q", site, sid, st.Fn)
		}
		if got := DestBits(st.Dest); got != res.SiteBits[site] {
			t.Errorf("site %d: static %d dest width %d != recorded SiteBits %d",
				site, sid, got, res.SiteBits[site])
		}
		seen[sid] = true
	}
	// The loop executes its sited instructions three times: distinct statics
	// must be far fewer than dynamic sites, or the ids are not static at all.
	if len(seen) >= len(res.SiteStatics) {
		t.Errorf("%d distinct statics for %d dynamic sites; ids look dynamic", len(seen), len(res.SiteStatics))
	}

	if plain := run(t, src, RunOpts{}); plain.SiteStatics != nil {
		t.Errorf("SiteStatics recorded without RecordSiteStatics: %v", plain.SiteStatics)
	}
}
