package machine

import (
	"strings"
	"testing"

	"ferrum/internal/asm"
)

func TestProfileAttribution(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$1, %rax
	addq	$2, %rax
	out	%rax
	hlt
`
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Tag the addq as a duplicate to exercise attribution.
	p.Funcs[0].Insts[1].Tag = asm.TagDup
	m, err := New(p, memSize)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(RunOpts{Profile: true})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome %v", res.Outcome)
	}
	prof := res.Profile
	if prof == nil {
		t.Fatal("no profile recorded")
	}
	if prof.DynInsts() != res.DynInsts {
		t.Errorf("profile insts %d != %d", prof.DynInsts(), res.DynInsts)
	}
	if prof.TagCount[asm.TagDup] != 1 {
		t.Errorf("dup count = %d", prof.TagCount[asm.TagDup])
	}
	if prof.OpCount[asm.MOVQ] != 1 || prof.OpCount[asm.ADDQ] != 1 {
		t.Errorf("op counts = %v", prof.OpCount)
	}
	if prof.TagFraction(asm.TagDup) != 0.25 {
		t.Errorf("dup fraction = %v", prof.TagFraction(asm.TagDup))
	}
	top := prof.TopOps(2)
	if len(top) != 2 || top[0].Count < top[1].Count {
		t.Errorf("top ops = %v", top)
	}
	if !strings.Contains(prof.String(), "dup") {
		t.Errorf("profile string = %q", prof.String())
	}
	// Scalar work attributed to the dup tag.
	if prof.TagScalar[asm.TagDup] <= 0 {
		t.Errorf("dup scalar work = %v", prof.TagScalar[asm.TagDup])
	}
}

func TestProfileDisabledByDefault(t *testing.T) {
	p, err := asm.Parse("\t.globl\tmain\nmain:\n\thlt\n")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, memSize)
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(RunOpts{}); res.Profile != nil {
		t.Error("profile recorded without being requested")
	}
}
