// Package machine executes programs in the asm model. It is the
// reproduction's stand-in for the paper's Intel Xeon testbed: it interprets
// the x86-64 subset, accounts cycles with a calibrated dual-issue cost
// model (scalar and vector units overlap within a basic block, which is
// what makes FERRUM's SIMD checking cheap on real hardware), and exposes
// the single-bit fault-injection hook that the fi package drives.
package machine

import (
	"encoding/binary"
	"fmt"

	"ferrum/internal/asm"
)

// Outcome is the terminal state of one program execution.
type Outcome uint8

// Execution outcomes.
const (
	OutcomeOK       Outcome = iota // reached HALT
	OutcomeDetected                // reached DETECT (a checker fired)
	OutcomeCrash                   // memory fault, bad control transfer, div error
	OutcomeHang                    // exceeded the step budget
	// OutcomeBoundary reports that the run reached RunOpts.StopAtSites
	// dynamic fault-injection sites and stopped there, with the machine state
	// captured in Result.Boundary. It is a sectioning outcome, not a terminal
	// program state: compositional campaigns classify the boundary state
	// against the golden run's snapshot at the same site count.
	OutcomeBoundary
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeDetected:
		return "detected"
	case OutcomeCrash:
		return "crash"
	case OutcomeHang:
		return "hang"
	case OutcomeBoundary:
		return "boundary"
	}
	return fmt.Sprintf("outcome?%d", o)
}

// GuardSize is the size of the unmapped low region; accesses below it crash,
// catching null-pointer-style corruption.
const GuardSize = 4096

// Fault is a fault plan in the paper's §IV-A2 model: flip bit Bit of the
// destination of the Site-th dynamically executed instruction that has an
// architectural destination, immediately after it retires. Extra lists
// additional bits flipped in the same destination, modelling the
// multi-bit-upset scenario the paper defers to future work (§II-A).
type Fault struct {
	Site  uint64
	Bit   uint
	Extra []uint
}

// Result summarises one execution.
type Result struct {
	Outcome  Outcome
	Output   []uint64
	Cycles   float64
	DynInsts uint64
	DynSites uint64 // dynamic instructions with a fault-injection destination
	CrashMsg string
	Injected bool // whether the planned fault was reached and applied
	// FaultCycles and FaultDyn record the cycle clock and retired dynamic
	// instruction count at the moment the fault was applied (valid only when
	// Injected). Cycles - FaultCycles is the fault's detection latency on
	// the machine cycle model: how long the corrupted state ran before the
	// terminal event (detector trap, crash, hang cutoff, or normal exit).
	FaultCycles float64
	FaultDyn    uint64
	// SiteDests holds the destination kind of each dynamic site, in site
	// order, when RunOpts.RecordSites was set.
	SiteDests []asm.DestKind
	// SiteLocs holds each dynamic site's static location when
	// RunOpts.RecordSiteLocs was set.
	SiteLocs []SiteLoc
	// SiteBits holds each dynamic site's destination width in bits when
	// RunOpts.RecordSiteBits was set: the number of distinct bit positions a
	// fault at that site can flip (8/16/32/64 for GPR writes, 64 per lane
	// for SIMD writes — up to 512 for full-width vector destinations — and
	// NumFlag for flag-only writers). Fault planners sample bits inside this
	// width so narrow and wide destinations are stressed uniformly.
	SiteBits []uint16
	// SiteStatics holds each dynamic site's static instruction id (its index
	// into StaticInstrs) when RunOpts.RecordSiteStatics was set. It maps
	// dynamic sites back to the static analysis that classified them.
	SiteStatics []int32
	// Profile holds the dynamic attribution when RunOpts.Profile was set.
	Profile *Profile
	// Trace holds the last RunOpts.Trace executed instructions, oldest
	// first, each rendered as "<tag>\t<instruction>".
	Trace []string
	// Boundary holds the machine state at the stop point when the run ended
	// with OutcomeBoundary (RunOpts.StopAtSites), captured at exactly the
	// state an OnCheckpoint snapshot at the same site count would see.
	Boundary *Snapshot
	// FnSpans records which functions executed over which dynamic-site
	// intervals when RunOpts.RecordFnSpans was set, in execution order.
	FnSpans []FnSpan
}

// RunOpts configures one execution.
type RunOpts struct {
	Args        []uint64 // passed to the entry function in the argument registers
	MaxSteps    uint64   // dynamic instruction budget; 0 means DefaultMaxSteps
	Fault       *Fault   // optional fault plan
	RecordSites bool     // record each dynamic site's destination kind
	// RecordSiteLocs records each dynamic site's static location
	// (function, index) in Result.SiteLocs, for proneness profiling.
	RecordSiteLocs bool
	// RecordSiteBits records each dynamic site's destination width in bits
	// in Result.SiteBits, so fault planners can clamp bit sampling to what
	// the destination can actually hold.
	RecordSiteBits bool
	// RecordSiteStatics records each dynamic site's static instruction id
	// (index into StaticInstrs) in Result.SiteStatics, so static per-site
	// analyses — the pruning pass's equivalence classes — can be joined
	// against the dynamic site sequence.
	RecordSiteStatics bool
	Profile           bool // attribute dynamic instructions/cycles by opcode and tag
	// Trace keeps the last N executed instructions (rendered with their
	// provenance tags) in Result.Trace — a flight recorder for debugging
	// fault outcomes. 0 disables tracing.
	Trace int
	// SitesHint preallocates the RecordSites/RecordSiteLocs slices when the
	// dynamic site count is known in advance (e.g. from a golden run). When
	// zero, the machine falls back to the previous run's site count.
	SitesHint uint64
	// CheckpointEvery captures a Snapshot after every CheckpointEvery-th
	// dynamic site and passes it to OnCheckpoint, recording a checkpoint
	// schedule for later fast-forward resumes. 0 disables checkpointing.
	CheckpointEvery uint64
	OnCheckpoint    func(*Snapshot)
	// Resume starts execution from a snapshot instead of the entry
	// scaffolding. Args are ignored (register state comes from the
	// snapshot) and all counters continue from the snapshot's values, so a
	// resumed run's Result is bit-identical to a from-scratch run that
	// passed through the snapshot point — including MaxSteps/hang
	// semantics. RecordSites/RecordSiteLocs/Profile/Trace observe only the
	// resumed suffix.
	Resume *Snapshot
	// StopAtSites, if > 0, ends the run with OutcomeBoundary the moment the
	// dynamic site counter reaches it, capturing the machine state in
	// Result.Boundary. The capture point is identical to OnCheckpoint's
	// (after the site instruction retires, before span flushing), so a
	// boundary snapshot is digest-comparable with a golden checkpoint taken
	// at the same site count. Runs that terminate first report their
	// terminal outcome as usual.
	StopAtSites uint64
	// RecordFnSpans records which function was executing over which
	// dynamic-site interval in Result.FnSpans. Compositional campaigns use
	// the spans to fingerprint the code a section actually executes —
	// including functions that retire no fault sites of their own.
	RecordFnSpans bool
}

// FnSpan records that function Fn was the executing function while the
// dynamic site counter ran from Start to End. Spans are half-open in
// spirit ([Start, End)) but a function entered and left without retiring a
// site yields an empty Start == End span, which still marks it as having
// executed at that point in the schedule.
type FnSpan struct {
	Fn         string
	Start, End uint64
}

// DefaultMaxSteps bounds executions that lost control of their loop
// conditions after a fault.
const DefaultMaxSteps = 50_000_000

// SiteLoc is the static location of a dynamic fault-injection site: the
// enclosing function and the instruction's index within it.
type SiteLoc struct {
	Fn  string
	Idx int
}

// flatInst is the cold side of a loaded instruction: the original asm form
// plus provenance, used by profiling, tracing, fault application and the
// generic slow path. The hot interpreter loop reads only the parallel
// decoded uop array (Machine.uops; see decode.go), which is kept small so
// the working set of a run fits closer to L1.
type flatInst struct {
	in   asm.Inst
	dest asm.Dest
	cost cost
	fn   string // enclosing function name
	idx  int    // index within the function
}

// Machine executes one loaded program. A Machine is reusable: each Run
// resets architectural state but keeps the loaded program and memory image.
type Machine struct {
	insts  []flatInst
	uops   []uop // decoded hot array, parallel to insts
	labels map[string]int
	entry  int
	start  int

	memImage []byte // pristine memory restored before each run

	// Dirty-page tracking: mem deviates from memImage only inside the
	// pages listed in dirtyPages (see snapshot.go), so reset and Restore
	// copy back only what the last run touched.
	dirty      []bool
	dirtyPages []int32
	memSynced  bool // mem matches memImage outside the dirty pages

	lastSites uint64 // previous run's site count (RecordSites capacity hint)

	// Block-dispatch and fusion tables (built at load time, indexed by
	// pre-fusion instruction position, shared read-only by Clones; see
	// block.go and fuse.go).
	blockEnd   []int32 // exclusive end of the enclosing basic block
	siteSuffix []int32 // fault sites from this index to its block end
	fuseAt     []int32 // head index -> fuop index, -1 when unfused
	fuops      []fuop
	hotOps     map[asm.Op]bool // profile-hot opcodes enabling pair fusion

	fuseHits []uint64 // per-fuop dynamic execution counts (this machine)
	noBlocks bool     // force the legacy one-uop loop (equivalence tests)
	nBlocks  uint64   // basic blocks entered (lifetime)

	// Architectural state (reset per run).
	gpr   [asm.NumReg]uint64
	x     [asm.NumXReg][8]uint64
	flags [asm.NumFlag]bool
	mem   []byte

	output   []uint64
	pc       int
	dyn      uint64
	sites    uint64
	injected bool

	// Injection instant, captured when the planned fault is applied (cycle
	// clock and retired instructions); zero until then. Only the two
	// injection points write these — the fast block path never does, because
	// blocks containing the fault site always fall back to runBlockSlow.
	injCycles float64
	injDyn    uint64

	scalarSpan float64
	vectorSpan float64
	cycles     float64

	// boundary holds the StopAtSites capture for the current run; cleared at
	// the top of Run. Both dispatch tiers write it (runBlockSlow cannot
	// return a snapshot through the block loop's plumbing).
	boundary *Snapshot

	costs *CostModel
}

// New loads a program into a machine with the given memory size. The
// initial memory image is zero; use SetMemImage or WriteWord to install
// benchmark data before Run.
func New(p *asm.Program, memSize int) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return newMachine(p, memSize)
}

// newMachine loads a program without validating it first. Decode still
// rejects undefined control-flow labels at load time; tests use this entry
// to exercise that guard directly.
func newMachine(p *asm.Program, memSize int) (*Machine, error) {
	if memSize < GuardSize*2 {
		return nil, fmt.Errorf("machine: memory size %d too small", memSize)
	}
	m := &Machine{
		labels:   make(map[string]int),
		memImage: make([]byte, memSize),
		costs:    DefaultCostModel(),
	}
	for _, f := range p.Funcs {
		m.labels[f.Name] = len(m.insts)
		for i, in := range f.Insts {
			for _, l := range in.Labels {
				m.labels[l] = len(m.insts)
			}
			m.insts = append(m.insts, flatInst{
				in: in, dest: asm.DestOf(in), fn: f.Name, idx: i,
			})
		}
	}
	m.uops = make([]uop, len(m.insts))
	for i := range m.insts {
		m.insts[i].cost = m.costs.staticCost(m.insts[i].in)
		m.uops[i].cost = m.insts[i].cost
		if err := m.decode(&m.uops[i], &m.insts[i]); err != nil {
			return nil, err
		}
	}
	entry := p.Entry
	if entry == "" {
		return nil, fmt.Errorf("machine: program has no entry")
	}
	start, ok := m.labels[asm.StartLabel]
	if !ok {
		// Without scaffolding, begin directly at the entry function.
		start = m.labels[entry]
	}
	m.start = start
	m.entry = m.labels[entry]
	m.mem = make([]byte, memSize)
	m.dirty = make([]bool, (memSize+pageSize-1)>>pageShift)
	m.buildBlocks()
	m.fuseAll()
	return m, nil
}

// Clone returns a machine that shares this machine's loaded program — the
// instruction, uop, block and fusion tables and the pristine memory image —
// but owns its architectural state, memory and counters. Clones are how
// campaigns pool the load-time decode across workers: clone once per
// worker after SetMemImage/SetCostModel/FuseProfile, then Run concurrently.
// Mutating the program (SetCostModel, SetMemImage, FuseProfile) on any
// machine after cloning is not safe while its clones run.
func (m *Machine) Clone() *Machine {
	return &Machine{
		insts:      m.insts,
		uops:       m.uops,
		labels:     m.labels,
		entry:      m.entry,
		start:      m.start,
		memImage:   m.memImage,
		blockEnd:   m.blockEnd,
		siteSuffix: m.siteSuffix,
		fuseAt:     m.fuseAt,
		fuops:      m.fuops,
		hotOps:     m.hotOps,
		costs:      m.costs,
		lastSites:  m.lastSites,
		mem:        make([]byte, len(m.memImage)),
		dirty:      make([]bool, len(m.dirty)),
		fuseHits:   make([]uint64, len(m.fuops)),
		// memSynced stays false: the first reset copies the full image.
	}
}

// SetCostModel replaces the cycle cost model (before Run).
func (m *Machine) SetCostModel(c *CostModel) {
	m.costs = c
	for i := range m.insts {
		m.insts[i].cost = c.staticCost(m.insts[i].in)
		m.uops[i].cost = m.insts[i].cost
	}
	// Fused uops hold copies of their constituents (including costs).
	m.fuseAll()
}

// MemSize reports the size of the machine's memory.
func (m *Machine) MemSize() int { return len(m.memImage) }

// SetMemImage copies data into the pristine memory image at addr; every Run
// starts from that image.
func (m *Machine) SetMemImage(addr uint64, data []byte) error {
	if addr < GuardSize || addr+uint64(len(data)) > uint64(len(m.memImage)) {
		return fmt.Errorf("machine: image write [%d,%d) out of range", addr, addr+uint64(len(data)))
	}
	copy(m.memImage[addr:], data)
	m.memSynced = false // force a full re-sync on the next reset
	return nil
}

// WriteWordImage stores a 64-bit little-endian word into the pristine image.
func (m *Machine) WriteWordImage(addr uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return m.SetMemImage(addr, b[:])
}

// ReadWord reads a 64-bit word from the current (post-run) memory.
func (m *Machine) ReadWord(addr uint64) (uint64, error) {
	if addr < GuardSize || addr+8 > uint64(len(m.mem)) {
		return 0, fmt.Errorf("machine: read [%d,%d) out of range", addr, addr+8)
	}
	return binary.LittleEndian.Uint64(m.mem[addr:]), nil
}

type crashError struct{ msg string }

func (e crashError) Error() string { return e.msg }

func crashf(format string, args ...any) error {
	return crashError{fmt.Sprintf(format, args...)}
}

// Run executes the program from the entry scaffolding and returns the
// result. Run never returns a Go error for in-program failures; those are
// reported through the Outcome.
func (m *Machine) Run(opts RunOpts) Result {
	sitesHint := opts.SitesHint
	if sitesHint == 0 {
		sitesHint = m.lastSites
	}
	m.boundary = nil
	if opts.Resume != nil {
		if err := m.Restore(opts.Resume); err != nil {
			return Result{Outcome: OutcomeCrash, CrashMsg: err.Error()}
		}
	} else {
		m.reset()
		for i, a := range opts.Args {
			if i >= len(asm.ArgRegs) {
				break
			}
			m.gpr[asm.ArgRegs[i]] = a
		}
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}

	outcome := OutcomeHang
	var crashMsg string
	var siteDests []asm.DestKind
	var siteLocs []SiteLoc
	var siteBits []uint16
	var siteStatics []int32
	if opts.RecordSites && sitesHint > 0 {
		siteDests = make([]asm.DestKind, 0, sitesHint)
	}
	if opts.RecordSiteLocs && sitesHint > 0 {
		siteLocs = make([]SiteLoc, 0, sitesHint)
	}
	if opts.RecordSiteBits && sitesHint > 0 {
		siteBits = make([]uint16, 0, sitesHint)
	}
	if opts.RecordSiteStatics && sitesHint > 0 {
		siteStatics = make([]int32, 0, sitesHint)
	}
	// One register-resident bool keeps the per-site hot path to a single
	// predicted branch on injection runs, where no recording is active.
	record := opts.RecordSites || opts.RecordSiteLocs || opts.RecordSiteBits ||
		opts.RecordSiteStatics || opts.RecordFnSpans
	var fnSpans []FnSpan
	var curFn string
	var spanStart uint64
	var prof *profile
	if opts.Profile {
		prof = &profile{}
	}
	var trace *traceRing
	if opts.Trace > 0 {
		trace = newTraceRing(opts.Trace)
	}
	// Block dispatch runs whole basic blocks with one bounds/watchdog/
	// fault-proximity check each (see block.go). Any per-instruction
	// observer — site recording, profiling, tracing, a checkpoint
	// schedule — forces the legacy one-uop loop below, which preserves
	// RunOpts semantics exactly; both paths produce bit-identical Results.
	if !m.noBlocks && !record && prof == nil && trace == nil &&
		(opts.CheckpointEvery == 0 || opts.OnCheckpoint == nil) {
		outcome, crashMsg = m.runBlocks(opts.Fault, maxSteps, opts.StopAtSites)
		goto done
	}
loop:
	for m.dyn < maxSteps {
		if m.pc < 0 || m.pc >= len(m.uops) {
			outcome, crashMsg = OutcomeCrash, fmt.Sprintf("pc %d out of range", m.pc)
			break
		}
		// pc is captured before step advances it: the cold flatInst at this
		// index backs profiling, tracing and fault application.
		pc := m.pc
		u := &m.uops[pc]
		m.dyn++
		if opts.RecordFnSpans {
			if fn := m.insts[pc].fn; fn != curFn {
				if curFn != "" {
					fnSpans = append(fnSpans, FnSpan{Fn: curFn, Start: spanStart, End: m.sites})
				}
				curFn, spanStart = fn, m.sites
			}
		}
		if prof != nil {
			prof.record(&m.insts[pc])
		}
		if trace != nil {
			trace.record(&m.insts[pc])
		}
		next, err := m.step(u, pc)
		if err != nil {
			outcome, crashMsg = OutcomeCrash, err.Error()
			break
		}
		// Fault injection: flip one bit of the destination after retire.
		if u.destKind != asm.DestNone {
			if opts.Fault != nil && m.sites == opts.Fault.Site {
				dest := m.insts[pc].dest
				m.applyFault(dest, opts.Fault.Bit)
				for _, b := range opts.Fault.Extra {
					m.applyFault(dest, b)
				}
				m.injected = true
				m.injCycles = m.cyclesNow()
				m.injDyn = m.dyn
			}
			if record {
				if opts.RecordSites {
					siteDests = append(siteDests, u.destKind)
				}
				if opts.RecordSiteLocs {
					siteLocs = append(siteLocs, SiteLoc{Fn: m.insts[pc].fn, Idx: m.insts[pc].idx})
				}
				if opts.RecordSiteBits {
					siteBits = append(siteBits, u.destBits)
				}
				if opts.RecordSiteStatics {
					siteStatics = append(siteStatics, int32(pc))
				}
			}
			m.sites++
			if opts.CheckpointEvery > 0 && m.sites%opts.CheckpointEvery == 0 && opts.OnCheckpoint != nil {
				opts.OnCheckpoint(m.Snapshot())
			}
			if opts.StopAtSites > 0 && m.sites == opts.StopAtSites {
				// Capture before the epilogue's span flush so the boundary
				// state matches a golden OnCheckpoint snapshot bit for bit.
				m.boundary = m.Snapshot()
				outcome = OutcomeBoundary
				break loop
			}
		}
		switch next {
		case nextHalt:
			outcome = OutcomeOK
			break loop
		case nextDetect:
			outcome = OutcomeDetected
			break loop
		}
	}
done:
	if opts.RecordFnSpans && curFn != "" {
		fnSpans = append(fnSpans, FnSpan{Fn: curFn, Start: spanStart, End: m.sites})
	}
	m.flushSpan()
	m.lastSites = m.sites
	return Result{
		Outcome:     outcome,
		Output:      append([]uint64(nil), m.output...),
		Cycles:      m.cycles,
		DynInsts:    m.dyn,
		DynSites:    m.sites,
		CrashMsg:    crashMsg,
		Injected:    m.injected,
		FaultCycles: m.injCycles,
		FaultDyn:    m.injDyn,
		SiteDests:   siteDests,
		SiteLocs:    siteLocs,
		SiteBits:    siteBits,
		SiteStatics: siteStatics,
		Profile:     prof.export(),
		Trace:       trace.dump(),
		Boundary:    m.boundary,
		FnSpans:     fnSpans,
	}
}

// StaticInstr describes one loaded instruction for static per-site
// analyses: its location and its fault-injection destination. The slice
// index in StaticInstrs is the id Result.SiteStatics records.
type StaticInstr struct {
	Fn   string
	Idx  int // index within the enclosing function
	Dest asm.Dest
}

// StaticInstrs exports the loaded program's instructions in flat (load)
// order, the coordinate system of Result.SiteStatics.
func (m *Machine) StaticInstrs() []StaticInstr {
	out := make([]StaticInstr, len(m.insts))
	for i := range m.insts {
		out[i] = StaticInstr{Fn: m.insts[i].fn, Idx: m.insts[i].idx, Dest: m.insts[i].dest}
	}
	return out
}

func (m *Machine) reset() {
	m.gpr = [asm.NumReg]uint64{}
	m.x = [asm.NumXReg][8]uint64{}
	m.flags = [asm.NumFlag]bool{}
	m.restoreMem()
	m.output = m.output[:0]
	m.pc = m.start
	m.dyn, m.sites = 0, 0
	m.injected = false
	m.injCycles, m.injDyn = 0, 0
	m.scalarSpan, m.vectorSpan, m.cycles = 0, 0, 0
	// Stack grows down from the top of memory and starts empty — no
	// sentinel is pushed. A stray top-level RET pops from the address one
	// past the end of memory, which fails the load bounds check and yields
	// OutcomeCrash instead of wrapping into program data.
	m.gpr[asm.RSP] = uint64(len(m.mem))
}

// DestBits reports how many distinct bit positions a fault at a destination
// can flip: the writable width for GPR writes, 64 per touched lane for SIMD
// writes, and NumFlag for flag-only writers. Zero only for DestNone.
func DestBits(d asm.Dest) uint16 {
	switch d.Kind {
	case asm.DestGPR:
		if b := d.W.Bits(); b > 0 {
			return uint16(b)
		}
		return 64
	case asm.DestXMM:
		return uint16((d.LaneHi - d.LaneLo + 1) * 64)
	case asm.DestFlags:
		return uint16(asm.NumFlag)
	}
	return 0
}

func (m *Machine) applyFault(d asm.Dest, bit uint) {
	switch d.Kind {
	case asm.DestGPR:
		b := bit % d.W.Bits()
		m.gpr[d.Reg] ^= 1 << b
	case asm.DestXMM:
		lanes := uint(d.LaneHi-d.LaneLo+1) * 64
		b := bit % lanes
		lane := d.LaneLo + int(b/64)
		m.x[d.X][lane] ^= 1 << (b % 64)
	case asm.DestFlags:
		f := asm.Flag(bit % uint(asm.NumFlag))
		m.flags[f] = !m.flags[f]
	}
}
