package machine

import (
	"fmt"
	"testing"
	"testing/quick"

	"ferrum/internal/asm"
)

func TestZMMInstructionSemantics(t *testing.T) {
	// Build an 8-lane comparison: equal halves -> ZF set, no detection.
	src := `
	.globl	main
main:
	movq	$10, %rax
	movq	%rax, %xmm0
	movq	%rax, %xmm1
	pinsrq	$1, %rax, %xmm0
	pinsrq	$1, %rax, %xmm1
	vinserti128	$1, %xmm0, %ymm2, %ymm2
	vinserti128	$1, %xmm1, %ymm3, %ymm3
	vinserti64x4	$1, %ymm2, %zmm4, %zmm4
	vinserti64x4	$1, %ymm3, %zmm5, %zmm5
	vpxor	%zmm5, %zmm4, %zmm4
	vptest	%zmm4, %zmm4
	jne	exit_function
	movq	$1, %rcx
	out	%rcx
	hlt

	.globl	__rt
__rt:
exit_function:
	detect
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeOK || res.Output[0] != 1 {
		t.Fatalf("res = %+v (%s)", res, res.CrashMsg)
	}
}

func TestZMMMismatchDetected(t *testing.T) {
	// Differ only in lane 7 (upper half of the zmm view): a ymm-wide
	// vptest would miss it, the zmm-wide one must catch it.
	src := `
	.globl	main
main:
	movq	$7, %rax
	movq	%rax, %xmm2
	vinserti64x4	$1, %ymm2, %zmm4, %zmm4
	vptest	%zmm4, %zmm4
	jne	exit_function
	hlt

	.globl	__rt
__rt:
exit_function:
	detect
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeDetected {
		t.Fatalf("outcome = %v, want detected (nonzero upper lanes)", res.Outcome)
	}
	// And the same program with a ymm-wide test does not see lanes 4-7.
	src2 := `
	.globl	main
main:
	movq	$7, %rax
	movq	%rax, %xmm2
	vinserti64x4	$1, %ymm2, %zmm4, %zmm4
	vptest	%ymm4, %ymm4
	jne	exit_function
	hlt

	.globl	__rt
__rt:
exit_function:
	detect
`
	res = run(t, src2, RunOpts{})
	if res.Outcome != OutcomeOK {
		t.Fatalf("ymm view saw upper lanes: %v", res.Outcome)
	}
}

func TestXorByteSemantics(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$511, %rax
	movq	$510, %rcx
	xorb	%al, %cl
	movzbq	%cl, %rdx
	out	%rdx
	out	%rcx
	hlt
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeOK {
		t.Fatalf("%v (%s)", res.Outcome, res.CrashMsg)
	}
	// 0xFF ^ 0xFE = 1; upper bits of rcx preserved (0x100).
	if res.Output[0] != 1 || res.Output[1] != 0x101 {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestNegAndTest(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$5, %rax
	negq	%rax
	out	%rax
	testq	%rax, %rax
	jl	.Lneg
	movq	$0, %rcx
	out	%rcx
	hlt
.Lneg:
	movq	$1, %rcx
	out	%rcx
	hlt
`
	res := run(t, src, RunOpts{})
	if int64(res.Output[0]) != -5 || res.Output[1] != 1 {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestMovXmmToMemory(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$77, %rax
	movq	%rax, %xmm3
	movq	$8192, %rcx
	movq	%xmm3, (%rcx)
	movq	(%rcx), %rdx
	out	%rdx
	movq	%xmm3, %rsi
	out	%rsi
	hlt
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeOK || res.Output[0] != 77 || res.Output[1] != 77 {
		t.Fatalf("res = %+v (%s)", res, res.CrashMsg)
	}
}

func TestDivideOverflowCrash(t *testing.T) {
	// rdx not the sign extension of rax: hardware #DE.
	src := `
	.globl	main
main:
	movq	$1, %rax
	movq	$5, %rdx
	movq	$3, %rcx
	idivq	%rcx
	hlt
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeCrash {
		t.Fatalf("outcome = %v, want crash", res.Outcome)
	}
}

func TestRetIntoNowhere(t *testing.T) {
	src := `
	.globl	main
main:
	retq
`
	res := run(t, src, RunOpts{})
	if res.Outcome != OutcomeCrash {
		t.Fatalf("outcome = %v, want crash (empty stack)", res.Outcome)
	}
}

func TestSetCostModel(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$1, %rax
	addq	$1, %rax
	hlt
`
	m, err := New(mustParse(t, src), memSize)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Run(RunOpts{}).Cycles
	cm := DefaultCostModel()
	cm.ALU *= 10
	m.SetCostModel(cm)
	scaled := m.Run(RunOpts{}).Cycles
	if scaled <= base {
		t.Errorf("cost model change had no effect: %v vs %v", scaled, base)
	}
}

func TestReadWordAndMemSize(t *testing.T) {
	m, err := New(mustParse(t, faultTestSrc), memSize)
	if err != nil {
		t.Fatal(err)
	}
	if m.MemSize() != memSize {
		t.Errorf("MemSize = %d", m.MemSize())
	}
	if err := m.WriteWordImage(8192, 99); err != nil {
		t.Fatal(err)
	}
	m.Run(RunOpts{})
	v, err := m.ReadWord(8192)
	if err != nil || v != 99 {
		t.Errorf("ReadWord = %d, %v", v, err)
	}
	if _, err := m.ReadWord(0); err == nil {
		t.Error("guard-page read accepted")
	}
	if err := m.WriteWordImage(10, 1); err == nil {
		t.Error("guard-page image write accepted")
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	p := mustParse(t, faultTestSrc)
	if _, err := New(p, 100); err == nil {
		t.Error("tiny memory accepted")
	}
	bad := &asm.Program{Funcs: p.Funcs} // no entry
	if _, err := New(bad, memSize); err == nil {
		t.Error("program without entry accepted")
	}
}

// TestShiftPropertyVsGo compares shift semantics (including counts >= 64,
// which x86 masks) against Go equivalents with explicit masking.
func TestShiftPropertyVsGo(t *testing.T) {
	ops := map[string]func(a uint64, s uint) uint64{
		"shlq": func(a uint64, s uint) uint64 { return a << (s & 63) },
		"shrq": func(a uint64, s uint) uint64 { return a >> (s & 63) },
		"sarq": func(a uint64, s uint) uint64 { return uint64(int64(a) >> (s & 63)) },
	}
	for name, eval := range ops {
		name, eval := name, eval
		f := func(a uint64, s uint8) bool {
			src := fmt.Sprintf(`
	.globl	main
main:
	movq	$%d, %%rax
	movq	$%d, %%rcx
	%s	%%rcx, %%rax
	out	%%rax
	hlt
`, int64(a), int64(s), name)
			p, err := asm.Parse(src)
			if err != nil {
				return false
			}
			m, err := New(p, memSize)
			if err != nil {
				return false
			}
			res := m.Run(RunOpts{})
			return res.Outcome == OutcomeOK && res.Output[0] == eval(a, uint(s))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeOK: "ok", OutcomeDetected: "detected",
		OutcomeCrash: "crash", OutcomeHang: "hang",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
}

func TestTraceRing(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$1, %rax
	addq	$2, %rax
	out	%rax
	hlt
`
	m, err := New(mustParse(t, src), memSize)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(RunOpts{Trace: 2})
	if len(res.Trace) != 2 {
		t.Fatalf("trace = %v", res.Trace)
	}
	// Last two instructions are out and hlt, oldest first.
	if res.Trace[0] != "program\tout\t%rax" || res.Trace[1] != "program\thlt" {
		t.Fatalf("trace = %q", res.Trace)
	}
	// Bigger ring than run: partial fill, oldest first.
	res = m.Run(RunOpts{Trace: 100})
	if len(res.Trace) != 4 || res.Trace[0] != "program\tmovq\t$1, %rax" {
		t.Fatalf("partial trace = %q", res.Trace)
	}
	// Disabled by default.
	if res2 := m.Run(RunOpts{}); res2.Trace != nil {
		t.Error("trace recorded without being requested")
	}
}
