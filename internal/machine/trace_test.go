package machine

import (
	"strings"
	"testing"

	"ferrum/internal/asm"
)

// benchProg is a small spin loop: enough distinct instructions to make ring
// recording realistic, long enough to amortise machine setup.
const benchProg = `
	.globl	main
main:
	movq	$0, %rax
	movq	$20000, %rcx
loop:
	addq	$1, %rax
	subq	$1, %rcx
	cmpq	$0, %rcx
	jne	loop
	out	%rax
	hlt
`

// BenchmarkTracedRun measures a full run with the flight recorder on. The
// ring stores instruction references and defers formatting to dump(), so a
// traced run should cost barely more than an untraced one — this benchmark
// is the regression guard for that (recording used to fmt.Sprintf every
// executed instruction, ~30x slower per step).
func BenchmarkTracedRun(b *testing.B) {
	prog, err := asm.Parse(benchProg)
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(prog, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m.Run(RunOpts{Trace: 32})
		if res.Outcome != OutcomeOK {
			b.Fatalf("run failed: %v", res.Outcome)
		}
	}
}

// BenchmarkUntracedRun is the baseline for BenchmarkTracedRun.
func BenchmarkUntracedRun(b *testing.B) {
	prog, err := asm.Parse(benchProg)
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(prog, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m.Run(RunOpts{})
		if res.Outcome != OutcomeOK {
			b.Fatalf("run failed: %v", res.Outcome)
		}
	}
}

// TestTraceRingWrap pins the lazy ring's dump across the wrap boundary: the
// ring holds references, and dump must format them oldest-first exactly
// once, regardless of how many times the ring wrapped.
func TestTraceRingWrap(t *testing.T) {
	prog, err := asm.Parse(benchProg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(prog, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(RunOpts{Trace: 3})
	if len(res.Trace) != 3 {
		t.Fatalf("trace = %v", res.Trace)
	}
	// The loop executes thousands of steps; the last three instructions are
	// the failed branch, out, and hlt.
	if !strings.Contains(res.Trace[0], "jne") ||
		!strings.Contains(res.Trace[1], "out") ||
		!strings.Contains(res.Trace[2], "hlt") {
		t.Fatalf("wrapped trace = %q", res.Trace)
	}
}
