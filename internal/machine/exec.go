package machine

import (
	"encoding/binary"
	"fmt"

	"ferrum/internal/asm"
)

type nextAction uint8

const (
	nextContinue nextAction = iota
	nextHalt
	nextDetect
)

// step executes one instruction, updates pc, charges cycles, and returns
// the control action. Crash conditions come back as errors. It dispatches
// once on the fused uop code decoded at load time (see decode.go); the
// inner loop touches no maps, no strings and no per-operand kind switches.
// The caller passes the instruction's own index so the sequential successor
// is computed from a register instead of re-reading m.pc.
func (m *Machine) step(u *uop, pc int) (nextAction, error) {
	m.scalarSpan += u.cost.scalar
	m.vectorSpan += u.cost.vector
	pcNext := pc + 1

	switch u.code {
	case uNop:

	// Scalar moves.
	case uMovRR64:
		m.gpr[u.r2] = m.gpr[u.r1]
	case uMovRR32:
		m.gpr[u.r2] = m.gpr[u.r1] & 0xffffffff
	case uMovRR8:
		m.gpr[u.r2] = m.gpr[u.r2]&^uint64(0xff) | m.gpr[u.r1]&0xff
	case uMovIR64, uMovIR32:
		// 32-bit immediates were pre-masked at decode; the write
		// zero-extends either way.
		m.gpr[u.r2] = u.imm
	case uMovIR8:
		m.gpr[u.r2] = m.gpr[u.r2]&^uint64(0xff) | u.imm
	case uMovMR64:
		v, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.gpr[u.r2] = v
	case uMovMR32:
		v, err := m.load32(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.gpr[u.r2] = v
	case uMovMR8:
		v, err := m.load8(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.gpr[u.r2] = m.gpr[u.r2]&^uint64(0xff) | v
	case uMovRM64:
		if err := m.store64(m.uea(&u.mem), m.gpr[u.r1]); err != nil {
			return 0, err
		}
	case uMovRM32:
		if err := m.store32(m.uea(&u.mem), m.gpr[u.r1]); err != nil {
			return 0, err
		}
	case uMovRM8:
		if err := m.store8(m.uea(&u.mem), m.gpr[u.r1]); err != nil {
			return 0, err
		}
	case uMovIM64:
		if err := m.store64(m.uea(&u.mem), u.imm); err != nil {
			return 0, err
		}
	case uMovIM32:
		if err := m.store32(m.uea(&u.mem), u.imm); err != nil {
			return 0, err
		}
	case uMovIM8:
		if err := m.store8(m.uea(&u.mem), u.imm); err != nil {
			return 0, err
		}

	// movq GPR<->XMM transfers (lane 0; upper lane zeroed on xmm writes).
	case uMovXX:
		m.x[u.x2][0] = m.x[u.x1][0]
		m.x[u.x2][1] = 0
	case uMovRX:
		m.x[u.x2][0] = m.gpr[u.r1]
		m.x[u.x2][1] = 0
	case uMovIX:
		m.x[u.x2][0] = u.imm
		m.x[u.x2][1] = 0
	case uMovMX:
		v, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.x[u.x2][0] = v
		m.x[u.x2][1] = 0
	case uMovXR:
		m.gpr[u.r2] = m.x[u.x1][0]
	case uMovXM:
		if err := m.store64(m.uea(&u.mem), m.x[u.x1][0]); err != nil {
			return 0, err
		}

	// Widening moves.
	case uMovslqRR:
		m.gpr[u.r2] = uint64(int64(int32(uint32(m.gpr[u.r1]))))
	case uMovslqMR:
		v, err := m.load32(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.gpr[u.r2] = uint64(int64(int32(uint32(v))))
	case uMovzbqRR:
		m.gpr[u.r2] = m.gpr[u.r1] & 0xff
	case uMovzbqMR:
		v, err := m.load8(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.gpr[u.r2] = v

	case uLea:
		m.gpr[u.r2] = m.uea(&u.mem)

	// 64-bit ALU: dst = dst OP src, five operand forms each.
	case uAddRR:
		a, b := m.gpr[u.r2], m.gpr[u.r1]
		r := a + b
		m.setFlagsAdd(a, b, r, asm.W64)
		m.gpr[u.r2] = r
	case uAddIR:
		a := m.gpr[u.r2]
		r := a + u.imm
		m.setFlagsAdd(a, u.imm, r, asm.W64)
		m.gpr[u.r2] = r
	case uAddMR:
		b, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		a := m.gpr[u.r2]
		r := a + b
		m.setFlagsAdd(a, b, r, asm.W64)
		m.gpr[u.r2] = r
	case uAddRM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		b := m.gpr[u.r1]
		r := a + b
		m.setFlagsAdd(a, b, r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}
	case uAddIM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := a + u.imm
		m.setFlagsAdd(a, u.imm, r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}

	case uSubRR:
		a, b := m.gpr[u.r2], m.gpr[u.r1]
		m.setFlagsSub(a, b, asm.W64)
		m.gpr[u.r2] = a - b
	case uSubIR:
		a := m.gpr[u.r2]
		m.setFlagsSub(a, u.imm, asm.W64)
		m.gpr[u.r2] = a - u.imm
	case uSubMR:
		b, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		a := m.gpr[u.r2]
		m.setFlagsSub(a, b, asm.W64)
		m.gpr[u.r2] = a - b
	case uSubRM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		b := m.gpr[u.r1]
		m.setFlagsSub(a, b, asm.W64)
		if err := m.store64(ea, a-b); err != nil {
			return 0, err
		}
	case uSubIM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		m.setFlagsSub(a, u.imm, asm.W64)
		if err := m.store64(ea, a-u.imm); err != nil {
			return 0, err
		}

	case uImulRR:
		r := uint64(int64(m.gpr[u.r2]) * int64(m.gpr[u.r1]))
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uImulIR:
		r := uint64(int64(m.gpr[u.r2]) * int64(u.imm))
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uImulMR:
		b, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		r := uint64(int64(m.gpr[u.r2]) * int64(b))
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uImulRM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := uint64(int64(a) * int64(m.gpr[u.r1]))
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}
	case uImulIM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := uint64(int64(a) * int64(u.imm))
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}

	case uAndRR:
		r := m.gpr[u.r2] & m.gpr[u.r1]
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uAndIR:
		r := m.gpr[u.r2] & u.imm
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uAndMR:
		b, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		r := m.gpr[u.r2] & b
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uAndRM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := a & m.gpr[u.r1]
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}
	case uAndIM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := a & u.imm
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}

	case uOrRR:
		r := m.gpr[u.r2] | m.gpr[u.r1]
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uOrIR:
		r := m.gpr[u.r2] | u.imm
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uOrMR:
		b, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		r := m.gpr[u.r2] | b
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uOrRM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := a | m.gpr[u.r1]
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}
	case uOrIM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := a | u.imm
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}

	case uXorRR:
		r := m.gpr[u.r2] ^ m.gpr[u.r1]
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uXorIR:
		r := m.gpr[u.r2] ^ u.imm
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uXorMR:
		b, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		r := m.gpr[u.r2] ^ b
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uXorRM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := a ^ m.gpr[u.r1]
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}
	case uXorIM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := a ^ u.imm
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}

	case uShlRR:
		r := m.gpr[u.r2] << (m.gpr[u.r1] & 63)
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uShlIR:
		r := m.gpr[u.r2] << (u.imm & 63)
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uShlMR:
		b, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		r := m.gpr[u.r2] << (b & 63)
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uShlRM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := a << (m.gpr[u.r1] & 63)
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}
	case uShlIM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := a << (u.imm & 63)
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}

	case uShrRR:
		r := m.gpr[u.r2] >> (m.gpr[u.r1] & 63)
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uShrIR:
		r := m.gpr[u.r2] >> (u.imm & 63)
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uShrMR:
		b, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		r := m.gpr[u.r2] >> (b & 63)
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uShrRM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := a >> (m.gpr[u.r1] & 63)
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}
	case uShrIM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := a >> (u.imm & 63)
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}

	case uSarRR:
		r := uint64(int64(m.gpr[u.r2]) >> (m.gpr[u.r1] & 63))
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uSarIR:
		r := uint64(int64(m.gpr[u.r2]) >> (u.imm & 63))
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uSarMR:
		b, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		r := uint64(int64(m.gpr[u.r2]) >> (b & 63))
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u.r2] = r
	case uSarRM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := uint64(int64(a) >> (m.gpr[u.r1] & 63))
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}
	case uSarIM:
		ea := m.uea(&u.mem)
		a, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		r := uint64(int64(a) >> (u.imm & 63))
		m.setFlagsLogic(r, asm.W64)
		if err := m.store64(ea, r); err != nil {
			return 0, err
		}

	// 8-bit xor: partial register write, byte-masked flags.
	case uXorbRR:
		r := m.gpr[u.r2] ^ m.gpr[u.r1]
		m.setFlagsLogic(r, asm.W8)
		m.gpr[u.r2] = m.gpr[u.r2]&^uint64(0xff) | r&0xff
	case uXorbIR:
		r := m.gpr[u.r2] ^ u.imm
		m.setFlagsLogic(r, asm.W8)
		m.gpr[u.r2] = m.gpr[u.r2]&^uint64(0xff) | r&0xff
	case uXorbMR:
		b, err := m.load8(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		r := m.gpr[u.r2] ^ b
		m.setFlagsLogic(r, asm.W8)
		m.gpr[u.r2] = m.gpr[u.r2]&^uint64(0xff) | r&0xff
	case uXorbRM:
		ea := m.uea(&u.mem)
		a, err := m.load8(ea)
		if err != nil {
			return 0, err
		}
		r := a ^ m.gpr[u.r1]
		m.setFlagsLogic(r, asm.W8)
		if err := m.store8(ea, r); err != nil {
			return 0, err
		}
	case uXorbIM:
		ea := m.uea(&u.mem)
		a, err := m.load8(ea)
		if err != nil {
			return 0, err
		}
		r := a ^ u.imm
		m.setFlagsLogic(r, asm.W8)
		if err := m.store8(ea, r); err != nil {
			return 0, err
		}

	case uNegR:
		v := m.gpr[u.r1]
		m.gpr[u.r1] = -v
		m.setFlagsSub(0, v, asm.W64)
	case uNegM:
		ea := m.uea(&u.mem)
		v, err := m.load64(ea)
		if err != nil {
			return 0, err
		}
		if err := m.store64(ea, -v); err != nil {
			return 0, err
		}
		m.setFlagsSub(0, v, asm.W64)

	case uCqto:
		if int64(m.gpr[asm.RAX]) < 0 {
			m.gpr[asm.RDX] = ^uint64(0)
		} else {
			m.gpr[asm.RDX] = 0
		}
	case uIdivR:
		if err := m.idiv(m.gpr[u.r1]); err != nil {
			return 0, err
		}
	case uIdivM:
		div, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		if err := m.idiv(div); err != nil {
			return 0, err
		}

	// Compares: flags only. setFlags* mask to the width internally.
	case uCmpRR64:
		m.setFlagsSub(m.gpr[u.r2], m.gpr[u.r1], asm.W64)
	case uCmpIR64:
		m.setFlagsSub(m.gpr[u.r2], u.imm, asm.W64)
	case uCmpMR64:
		b, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.setFlagsSub(m.gpr[u.r2], b, asm.W64)
	case uCmpRM64:
		a, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.setFlagsSub(a, m.gpr[u.r1], asm.W64)
	case uCmpIM64:
		a, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.setFlagsSub(a, u.imm, asm.W64)
	case uCmpRR32:
		m.setFlagsSub(m.gpr[u.r2], m.gpr[u.r1], asm.W32)
	case uCmpIR32:
		m.setFlagsSub(m.gpr[u.r2], u.imm, asm.W32)
	case uCmpMR32:
		b, err := m.load32(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.setFlagsSub(m.gpr[u.r2], b, asm.W32)
	case uCmpRM32:
		a, err := m.load32(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.setFlagsSub(a, m.gpr[u.r1], asm.W32)
	case uCmpIM32:
		a, err := m.load32(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.setFlagsSub(a, u.imm, asm.W32)
	case uCmpRR8:
		m.setFlagsSub(m.gpr[u.r2], m.gpr[u.r1], asm.W8)
	case uCmpIR8:
		m.setFlagsSub(m.gpr[u.r2], u.imm, asm.W8)
	case uCmpMR8:
		b, err := m.load8(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.setFlagsSub(m.gpr[u.r2], b, asm.W8)
	case uCmpRM8:
		a, err := m.load8(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.setFlagsSub(a, m.gpr[u.r1], asm.W8)
	case uCmpIM8:
		a, err := m.load8(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.setFlagsSub(a, u.imm, asm.W8)
	case uTestRR:
		m.setFlagsLogic(m.gpr[u.r1]&m.gpr[u.r2], asm.W64)
	case uTestIR:
		m.setFlagsLogic(u.imm&m.gpr[u.r2], asm.W64)

	// Control flow: targets resolved to instruction indices at decode.
	case uJmp:
		m.flushSpan()
		m.pc = int(u.target)
		return nextContinue, nil
	case uJcc:
		taken, err := m.cond(u.cc)
		if err != nil {
			return 0, err
		}
		m.flushSpan()
		if taken {
			m.scalarSpan += u.cost.takenExtra
			m.pc = int(u.target)
		} else {
			m.pc = pcNext
		}
		return nextContinue, nil
	case uCall:
		if err := m.push(uint64(pcNext)); err != nil {
			return 0, err
		}
		m.flushSpan()
		m.pc = int(u.target)
		return nextContinue, nil
	case uRet:
		v, err := m.pop()
		if err != nil {
			return 0, err
		}
		if v >= uint64(len(m.insts)) {
			return 0, crashf("ret to invalid address %d", v)
		}
		m.flushSpan()
		m.pc = int(v)
		return nextContinue, nil

	case uSetccR:
		taken, err := m.cond(u.cc)
		if err != nil {
			return 0, err
		}
		var v uint64
		if taken {
			v = 1
		}
		m.gpr[u.r2] = m.gpr[u.r2]&^uint64(0xff) | v

	case uPushR:
		if err := m.push(m.gpr[u.r1]); err != nil {
			return 0, err
		}
	case uPushI:
		if err := m.push(u.imm); err != nil {
			return 0, err
		}
	case uPushM:
		v, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		if err := m.push(v); err != nil {
			return 0, err
		}
	case uPopR:
		v, err := m.pop()
		if err != nil {
			return 0, err
		}
		m.gpr[u.r2] = v

	// SIMD (the FERRUM check path).
	case uPinsrqR:
		m.x[u.x2][u.lane] = m.gpr[u.r1]
	case uPinsrqM:
		v, err := m.load64(m.uea(&u.mem))
		if err != nil {
			return 0, err
		}
		m.x[u.x2][u.lane] = v
	case uVinserti128:
		// Source lanes are read out before the (possibly aliasing)
		// destination is written; copying base into the destination first
		// is skipped when they are the same register.
		s0, s1 := m.x[u.x1][0], m.x[u.x1][1]
		if u.x3 != u.x2 {
			m.x[u.x3] = m.x[u.x2]
		}
		m.x[u.x3][u.lane*2] = s0
		m.x[u.x3][u.lane*2+1] = s1
	case uVinserti644:
		var s [4]uint64
		copy(s[:], m.x[u.x1][0:4])
		if u.x3 != u.x2 {
			m.x[u.x3] = m.x[u.x2]
		}
		copy(m.x[u.x3][u.lane*4:u.lane*4+4], s[:])
	case uVpxor:
		// Element-wise with matching indices, so writing the destination
		// in place is safe even when it aliases a source; lanes above
		// u.lanes keep their previous contents, as before.
		a, b, d := &m.x[u.x1], &m.x[u.x2], &m.x[u.x3]
		for i := 0; i < int(u.lanes); i++ {
			d[i] = a[i] ^ b[i]
		}
	case uVptest:
		a, b := &m.x[u.x1], &m.x[u.x2]
		var andAcc, andnAcc uint64
		for i := 0; i < int(u.lanes); i++ {
			andAcc |= a[i] & b[i]
			andnAcc |= ^a[i] & b[i]
		}
		m.flags[asm.FlagZF] = andAcc == 0
		m.flags[asm.FlagCF] = andnAcc == 0
		m.flags[asm.FlagSF] = false
		m.flags[asm.FlagOF] = false

	case uOutR:
		m.output = append(m.output, m.gpr[u.r1])

	case uHalt:
		m.flushSpan()
		return nextHalt, nil
	case uDetect:
		m.flushSpan()
		return nextDetect, nil

	default: // uSlow: generic per-operand interpretation
		m.pc = pc // stepSlow computes its successor from m.pc
		return m.stepSlow(&m.insts[pc])
	}
	m.pc = pcNext
	return nextContinue, nil
}

// uea computes the effective address of a decoded memory reference.
// Branch-free: gpr[RNone] is invariantly zero (reset clears it and no
// instruction or fault can write it), and decode normalised Scale.
func (m *Machine) uea(mm *asm.Mem) uint64 {
	return uint64(mm.Disp) + m.gpr[mm.Base] + m.gpr[mm.Index]*uint64(mm.Scale)
}

// Width-specialised memory accessors for the fused cases; same bounds
// conditions and crash messages as the generic loadMem/storeMem, folded
// into a single unsigned comparison: ea-GuardSize wraps for ea < GuardSize
// and exceeds len(mem)-GuardSize-width for any access crossing the top of
// memory (len(mem) >= 2*GuardSize is enforced at construction, so the
// right-hand side never underflows).
func (m *Machine) load64(ea uint64) (uint64, error) {
	if ea-GuardSize > uint64(len(m.mem))-(GuardSize+8) {
		return 0, crashf("load of %d bytes at %#x out of range", 8, ea)
	}
	return binary.LittleEndian.Uint64(m.mem[ea:]), nil
}

func (m *Machine) load32(ea uint64) (uint64, error) {
	if ea-GuardSize > uint64(len(m.mem))-(GuardSize+4) {
		return 0, crashf("load of %d bytes at %#x out of range", 4, ea)
	}
	return uint64(binary.LittleEndian.Uint32(m.mem[ea:])), nil
}

func (m *Machine) load8(ea uint64) (uint64, error) {
	if ea-GuardSize > uint64(len(m.mem))-(GuardSize+1) {
		return 0, crashf("load of %d bytes at %#x out of range", 1, ea)
	}
	return uint64(m.mem[ea]), nil
}

func (m *Machine) store64(ea uint64, v uint64) error {
	if ea-GuardSize > uint64(len(m.mem))-(GuardSize+8) {
		return crashf("store of %d bytes at %#x out of range", 8, ea)
	}
	m.markDirty(ea, 8)
	binary.LittleEndian.PutUint64(m.mem[ea:], v)
	return nil
}

func (m *Machine) store32(ea uint64, v uint64) error {
	if ea-GuardSize > uint64(len(m.mem))-(GuardSize+4) {
		return crashf("store of %d bytes at %#x out of range", 4, ea)
	}
	m.markDirty(ea, 4)
	binary.LittleEndian.PutUint32(m.mem[ea:], uint32(v))
	return nil
}

func (m *Machine) store8(ea uint64, v uint64) error {
	if ea-GuardSize > uint64(len(m.mem))-(GuardSize+1) {
		return crashf("store of %d bytes at %#x out of range", 1, ea)
	}
	m.markDirty(ea, 1)
	m.mem[ea] = byte(v)
	return nil
}

// idiv implements idivq: signed divide of rdx:rax by div, quotient to rax,
// remainder to rdx, with the hardware #DE conditions as crashes.
func (m *Machine) idiv(div uint64) error {
	if div == 0 {
		return crashf("divide error")
	}
	lo, hi := m.gpr[asm.RAX], m.gpr[asm.RDX]
	wantHi := uint64(0)
	if int64(lo) < 0 {
		wantHi = ^uint64(0)
	}
	if hi != wantHi {
		// The 128-bit quotient does not fit 64 bits: hardware #DE.
		return crashf("divide overflow")
	}
	a, b := int64(lo), int64(div)
	if a == -1<<63 && b == -1 {
		return crashf("divide overflow")
	}
	m.gpr[asm.RAX] = uint64(a / b)
	m.gpr[asm.RDX] = uint64(a % b)
	return nil
}

// stepSlow is the generic interpreter: full per-operand kind/width
// dispatch. It executes the uSlow uops — operand shapes the fused decode
// does not cover — preserving the legacy semantics (and crash messages)
// exactly. The caller has already charged the instruction's cost spans.
func (m *Machine) stepSlow(fi *flatInst) (nextAction, error) {
	in := &fi.in
	pcNext := m.pc + 1

	switch in.Op {
	case asm.NOP:

	case asm.MOVQ:
		if err := m.execMov(in, asm.W64); err != nil {
			return 0, err
		}
	case asm.MOVL:
		if err := m.execMov(in, asm.W32); err != nil {
			return 0, err
		}
	case asm.MOVB:
		if err := m.execMov(in, asm.W8); err != nil {
			return 0, err
		}

	case asm.MOVSLQ:
		v, err := m.readOperand(in.A[0], asm.W32)
		if err != nil {
			return 0, err
		}
		m.writeGPR(in.A[1].Reg, asm.W64, uint64(int64(int32(uint32(v)))))
	case asm.MOVZBQ:
		v, err := m.readOperand(in.A[0], asm.W8)
		if err != nil {
			return 0, err
		}
		m.writeGPR(in.A[1].Reg, asm.W64, v&0xff)

	case asm.LEA:
		m.writeGPR(in.A[1].Reg, asm.W64, m.ea(in.A[0].M))

	case asm.ADDQ, asm.SUBQ, asm.IMULQ, asm.ANDQ, asm.ORQ, asm.XORQ,
		asm.SHLQ, asm.SHRQ, asm.SARQ:
		if err := m.execALU(in, asm.W64); err != nil {
			return 0, err
		}
	case asm.XORB:
		if err := m.execALU(in, asm.W8); err != nil {
			return 0, err
		}
	case asm.NEGQ:
		v, err := m.readOperand(in.A[0], asm.W64)
		if err != nil {
			return 0, err
		}
		r := -v
		if err := m.writeOperand(in.A[0], asm.W64, r); err != nil {
			return 0, err
		}
		m.setFlagsSub(0, v, asm.W64)

	case asm.CQTO:
		if int64(m.gpr[asm.RAX]) < 0 {
			m.gpr[asm.RDX] = ^uint64(0)
		} else {
			m.gpr[asm.RDX] = 0
		}
	case asm.IDIVQ:
		div, err := m.readOperand(in.A[0], asm.W64)
		if err != nil {
			return 0, err
		}
		if err := m.idiv(div); err != nil {
			return 0, err
		}

	case asm.CMPQ:
		if err := m.execCmp(in, asm.W64); err != nil {
			return 0, err
		}
	case asm.CMPL:
		if err := m.execCmp(in, asm.W32); err != nil {
			return 0, err
		}
	case asm.CMPB:
		if err := m.execCmp(in, asm.W8); err != nil {
			return 0, err
		}
	case asm.TESTQ:
		a, err := m.readOperand(in.A[0], asm.W64)
		if err != nil {
			return 0, err
		}
		b, err := m.readOperand(in.A[1], asm.W64)
		if err != nil {
			return 0, err
		}
		m.setFlagsLogic(a&b, asm.W64)

	case asm.JMP:
		m.flushSpan()
		return nextContinue, m.jumpTo(in.A[0].Label)
	case asm.JE, asm.JNE, asm.JL, asm.JLE, asm.JG, asm.JGE:
		taken, err := m.cond(asm.CondOf(in.Op))
		if err != nil {
			return 0, err
		}
		m.flushSpan()
		if taken {
			m.scalarSpan += fi.cost.takenExtra
			return nextContinue, m.jumpTo(in.A[0].Label)
		}
		m.pc = pcNext
		return nextContinue, nil

	case asm.CALL:
		if err := m.push(uint64(pcNext)); err != nil {
			return 0, err
		}
		m.flushSpan()
		return nextContinue, m.jumpTo(in.A[0].Label)
	case asm.RET:
		v, err := m.pop()
		if err != nil {
			return 0, err
		}
		if v >= uint64(len(m.insts)) {
			return 0, crashf("ret to invalid address %d", v)
		}
		m.flushSpan()
		m.pc = int(v)
		return nextContinue, nil

	case asm.SETE, asm.SETNE, asm.SETL, asm.SETLE, asm.SETG, asm.SETGE:
		taken, err := m.cond(asm.CondOf(in.Op))
		if err != nil {
			return 0, err
		}
		var v uint64
		if taken {
			v = 1
		}
		if err := m.writeOperand(in.A[0], asm.W8, v); err != nil {
			return 0, err
		}

	case asm.PUSHQ:
		v, err := m.readOperand(in.A[0], asm.W64)
		if err != nil {
			return 0, err
		}
		if err := m.push(v); err != nil {
			return 0, err
		}
	case asm.POPQ:
		v, err := m.pop()
		if err != nil {
			return 0, err
		}
		if err := m.writeOperand(in.A[0], asm.W64, v); err != nil {
			return 0, err
		}

	case asm.PINSRQ:
		lane := int(in.A[0].Imm)
		if lane < 0 || lane > 1 {
			return 0, crashf("pinsrq lane %d out of range", lane)
		}
		v, err := m.readOperand(in.A[1], asm.W64)
		if err != nil {
			return 0, err
		}
		m.x[in.A[2].X][lane] = v
	case asm.VINSERTI128:
		lane := int(in.A[0].Imm)
		if lane < 0 || lane > 1 {
			return 0, crashf("vinserti128 lane %d out of range", lane)
		}
		src := m.x[in.A[1].X]
		base := m.x[in.A[2].X]
		base[lane*2] = src[0]
		base[lane*2+1] = src[1]
		m.x[in.A[3].X] = base
	case asm.VINSERTI644:
		lane := int(in.A[0].Imm)
		if lane < 0 || lane > 1 {
			return 0, crashf("vinserti64x4 lane %d out of range", lane)
		}
		src := m.x[in.A[1].X]
		base := m.x[in.A[2].X]
		copy(base[lane*4:lane*4+4], src[0:4])
		m.x[in.A[3].X] = base
	case asm.VPXOR:
		lanes := in.A[2].XW.Lanes()
		a, b := m.x[in.A[0].X], m.x[in.A[1].X]
		r := m.x[in.A[2].X]
		for i := 0; i < lanes; i++ {
			r[i] = a[i] ^ b[i]
		}
		m.x[in.A[2].X] = r
	case asm.VPTEST:
		lanes := in.A[1].XW.Lanes()
		a, b := m.x[in.A[0].X], m.x[in.A[1].X]
		var andAcc, andnAcc uint64
		for i := 0; i < lanes; i++ {
			andAcc |= a[i] & b[i]
			andnAcc |= ^a[i] & b[i]
		}
		m.flags[asm.FlagZF] = andAcc == 0
		m.flags[asm.FlagCF] = andnAcc == 0
		m.flags[asm.FlagSF] = false
		m.flags[asm.FlagOF] = false

	case asm.OUT:
		v, err := m.readOperand(in.A[0], asm.W64)
		if err != nil {
			return 0, err
		}
		m.output = append(m.output, v)

	case asm.HALT:
		m.flushSpan()
		return nextHalt, nil
	case asm.DETECT:
		m.flushSpan()
		return nextDetect, nil

	default:
		return 0, crashf("unimplemented opcode %s", in.Op)
	}
	m.pc = pcNext
	return nextContinue, nil
}

func (m *Machine) execMov(in *asm.Inst, w asm.Width) error {
	src, dst := in.A[0], in.A[1]
	// GPR/XMM transfer forms of movq.
	if src.Kind == asm.KXReg || dst.Kind == asm.KXReg {
		switch {
		case dst.Kind == asm.KXReg && src.Kind == asm.KXReg:
			lane0 := m.x[src.X][0]
			m.x[dst.X][0] = lane0
			m.x[dst.X][1] = 0
		case dst.Kind == asm.KXReg:
			v, err := m.readOperand(src, asm.W64)
			if err != nil {
				return err
			}
			m.x[dst.X][0] = v
			m.x[dst.X][1] = 0
		default: // xmm -> gpr/mem
			return m.writeOperand(dst, asm.W64, m.x[src.X][0])
		}
		return nil
	}
	v, err := m.readOperand(src, w)
	if err != nil {
		return err
	}
	return m.writeOperand(dst, w, v)
}

func (m *Machine) execALU(in *asm.Inst, w asm.Width) error {
	src, dst := in.A[0], in.A[1]
	b, err := m.readOperand(src, w)
	if err != nil {
		return err
	}
	a, err := m.readOperand(dst, w)
	if err != nil {
		return err
	}
	var r uint64
	switch in.Op {
	case asm.ADDQ:
		r = a + b
		m.setFlagsAdd(a, b, r, w)
	case asm.SUBQ:
		r = a - b
		m.setFlagsSub(a, b, w)
	case asm.IMULQ:
		r = uint64(int64(a) * int64(b))
		m.setFlagsLogic(r, w) // CF/OF modelled as cleared; ZF/SF from result
	case asm.ANDQ:
		r = a & b
		m.setFlagsLogic(r, w)
	case asm.ORQ:
		r = a | b
		m.setFlagsLogic(r, w)
	case asm.XORQ, asm.XORB:
		r = a ^ b
		m.setFlagsLogic(r, w)
	case asm.SHLQ:
		r = a << (b & 63)
		m.setFlagsLogic(r, w)
	case asm.SHRQ:
		r = a >> (b & 63)
		m.setFlagsLogic(r, w)
	case asm.SARQ:
		r = uint64(int64(a) >> (b & 63))
		m.setFlagsLogic(r, w)
	default:
		return crashf("execALU: bad op %s", in.Op)
	}
	return m.writeOperand(dst, w, r)
}

func (m *Machine) execCmp(in *asm.Inst, w asm.Width) error {
	src, dst := in.A[0], in.A[1]
	b, err := m.readOperand(src, w)
	if err != nil {
		return err
	}
	a, err := m.readOperand(dst, w)
	if err != nil {
		return err
	}
	m.setFlagsSub(a, b, w)
	return nil
}

func widthMask(w asm.Width) uint64 {
	if w == asm.W64 {
		return ^uint64(0)
	}
	return 1<<(w.Bits()) - 1
}

func signBit(v uint64, w asm.Width) bool {
	return v>>(w.Bits()-1)&1 == 1
}

func (m *Machine) setFlagsSub(a, b uint64, w asm.Width) {
	mask := widthMask(w)
	a, b = a&mask, b&mask
	r := (a - b) & mask
	m.flags[asm.FlagZF] = r == 0
	m.flags[asm.FlagSF] = signBit(r, w)
	m.flags[asm.FlagCF] = a < b
	m.flags[asm.FlagOF] = signBit((a^b)&(a^r), w)
}

func (m *Machine) setFlagsAdd(a, b, r uint64, w asm.Width) {
	mask := widthMask(w)
	a, b, r = a&mask, b&mask, r&mask
	m.flags[asm.FlagZF] = r == 0
	m.flags[asm.FlagSF] = signBit(r, w)
	m.flags[asm.FlagCF] = r < a
	m.flags[asm.FlagOF] = signBit((a^r)&(b^r), w)
}

func (m *Machine) setFlagsLogic(r uint64, w asm.Width) {
	mask := widthMask(w)
	r &= mask
	m.flags[asm.FlagZF] = r == 0
	m.flags[asm.FlagSF] = signBit(r, w)
	m.flags[asm.FlagCF] = false
	m.flags[asm.FlagOF] = false
}

// cond evaluates a condition code against the current flags. An unknown
// condition code is a crash, not a silent not-taken: a corrupted or
// hand-built instruction must not quietly fall through.
func (m *Machine) cond(c asm.CC) (bool, error) {
	zf := m.flags[asm.FlagZF]
	sf := m.flags[asm.FlagSF]
	of := m.flags[asm.FlagOF]
	switch c {
	case asm.CCE:
		return zf, nil
	case asm.CCNE:
		return !zf, nil
	case asm.CCL:
		return sf != of, nil
	case asm.CCLE:
		return zf || sf != of, nil
	case asm.CCG:
		return !zf && sf == of, nil
	case asm.CCGE:
		return sf == of, nil
	}
	return false, crashf("unknown condition code %d", c)
}

func (m *Machine) jumpTo(label string) error {
	idx, ok := m.labels[label]
	if !ok {
		return crashf("jump to undefined label %q", label)
	}
	m.pc = idx
	return nil
}

func (m *Machine) flushSpan() {
	if m.vectorSpan > m.scalarSpan {
		m.cycles += m.vectorSpan
	} else {
		m.cycles += m.scalarSpan
	}
	m.scalarSpan, m.vectorSpan = 0, 0
}

// cyclesNow reports the effective cycle clock mid-run: flushed cycles plus
// the dual-issue span accumulated since the last block boundary. This is
// exactly what m.cycles would read after the next flushSpan if no further
// work issued.
func (m *Machine) cyclesNow() float64 {
	if m.vectorSpan > m.scalarSpan {
		return m.cycles + m.vectorSpan
	}
	return m.cycles + m.scalarSpan
}

func (m *Machine) readReg(r asm.Reg, w asm.Width) uint64 {
	return m.gpr[r] & widthMask(w)
}

func (m *Machine) writeGPR(r asm.Reg, w asm.Width, v uint64) {
	switch w {
	case asm.W64:
		m.gpr[r] = v
	case asm.W32:
		m.gpr[r] = v & 0xffffffff // 32-bit writes zero-extend
	case asm.W16:
		m.gpr[r] = m.gpr[r]&^uint64(0xffff) | v&0xffff
	case asm.W8:
		m.gpr[r] = m.gpr[r]&^uint64(0xff) | v&0xff
	}
}

func (m *Machine) ea(mem asm.Mem) uint64 {
	ea := uint64(mem.Disp)
	if mem.Base != asm.RNone {
		ea += m.gpr[mem.Base]
	}
	if mem.Index != asm.RNone {
		scale := uint64(mem.Scale)
		if scale == 0 {
			scale = 1
		}
		ea += m.gpr[mem.Index] * scale
	}
	return ea
}

func (m *Machine) loadMem(ea uint64, w asm.Width) (uint64, error) {
	size := uint64(w)
	if ea < GuardSize || ea+size > uint64(len(m.mem)) || ea+size < ea {
		return 0, crashf("load of %d bytes at %#x out of range", size, ea)
	}
	switch w {
	case asm.W64:
		return binary.LittleEndian.Uint64(m.mem[ea:]), nil
	case asm.W32:
		return uint64(binary.LittleEndian.Uint32(m.mem[ea:])), nil
	case asm.W16:
		return uint64(binary.LittleEndian.Uint16(m.mem[ea:])), nil
	default:
		return uint64(m.mem[ea]), nil
	}
}

func (m *Machine) storeMem(ea uint64, w asm.Width, v uint64) error {
	size := uint64(w)
	if ea < GuardSize || ea+size > uint64(len(m.mem)) || ea+size < ea {
		return crashf("store of %d bytes at %#x out of range", size, ea)
	}
	m.markDirty(ea, size)
	switch w {
	case asm.W64:
		binary.LittleEndian.PutUint64(m.mem[ea:], v)
	case asm.W32:
		binary.LittleEndian.PutUint32(m.mem[ea:], uint32(v))
	case asm.W16:
		binary.LittleEndian.PutUint16(m.mem[ea:], uint16(v))
	default:
		m.mem[ea] = byte(v)
	}
	return nil
}

func (m *Machine) readOperand(o asm.Operand, w asm.Width) (uint64, error) {
	switch o.Kind {
	case asm.KReg:
		return m.readReg(o.Reg, w), nil
	case asm.KImm:
		return uint64(o.Imm) & widthMask(w), nil
	case asm.KMem:
		return m.loadMem(m.ea(o.M), w)
	case asm.KXReg:
		return m.x[o.X][0], nil
	}
	return 0, crashf("unreadable operand %s", o)
}

func (m *Machine) writeOperand(o asm.Operand, w asm.Width, v uint64) error {
	switch o.Kind {
	case asm.KReg:
		m.writeGPR(o.Reg, w, v)
		return nil
	case asm.KMem:
		return m.storeMem(m.ea(o.M), w, v)
	}
	return crashf("unwritable operand %s", o)
}

func (m *Machine) push(v uint64) error {
	sp := m.gpr[asm.RSP] - 8
	if err := m.storeMem(sp, asm.W64, v); err != nil {
		return fmt.Errorf("push: %w", err)
	}
	m.gpr[asm.RSP] = sp
	return nil
}

func (m *Machine) pop() (uint64, error) {
	sp := m.gpr[asm.RSP]
	v, err := m.loadMem(sp, asm.W64)
	if err != nil {
		return 0, fmt.Errorf("pop: %w", err)
	}
	m.gpr[asm.RSP] = sp + 8
	return v, nil
}
