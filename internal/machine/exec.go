package machine

import (
	"encoding/binary"
	"fmt"

	"ferrum/internal/asm"
)

type nextAction uint8

const (
	nextContinue nextAction = iota
	nextHalt
	nextDetect
)

// step executes one instruction, updates pc, charges cycles, and returns
// the control action. Crash conditions come back as errors.
func (m *Machine) step(fi *flatInst) (nextAction, error) {
	in := &fi.in
	m.scalarSpan += fi.cost.scalar
	m.vectorSpan += fi.cost.vector
	pcNext := m.pc + 1

	switch in.Op {
	case asm.NOP:

	case asm.MOVQ:
		if err := m.execMov(in, asm.W64); err != nil {
			return 0, err
		}
	case asm.MOVL:
		if err := m.execMov(in, asm.W32); err != nil {
			return 0, err
		}
	case asm.MOVB:
		if err := m.execMov(in, asm.W8); err != nil {
			return 0, err
		}

	case asm.MOVSLQ:
		v, err := m.readOperand(in.A[0], asm.W32)
		if err != nil {
			return 0, err
		}
		m.writeGPR(in.A[1].Reg, asm.W64, uint64(int64(int32(uint32(v)))))
	case asm.MOVZBQ:
		v, err := m.readOperand(in.A[0], asm.W8)
		if err != nil {
			return 0, err
		}
		m.writeGPR(in.A[1].Reg, asm.W64, v&0xff)

	case asm.LEA:
		m.writeGPR(in.A[1].Reg, asm.W64, m.ea(in.A[0].M))

	case asm.ADDQ, asm.SUBQ, asm.IMULQ, asm.ANDQ, asm.ORQ, asm.XORQ,
		asm.SHLQ, asm.SHRQ, asm.SARQ:
		if err := m.execALU(in, asm.W64); err != nil {
			return 0, err
		}
	case asm.XORB:
		if err := m.execALU(in, asm.W8); err != nil {
			return 0, err
		}
	case asm.NEGQ:
		v, err := m.readOperand(in.A[0], asm.W64)
		if err != nil {
			return 0, err
		}
		r := -v
		if err := m.writeOperand(in.A[0], asm.W64, r); err != nil {
			return 0, err
		}
		m.setFlagsSub(0, v, asm.W64)

	case asm.CQTO:
		if int64(m.gpr[asm.RAX]) < 0 {
			m.gpr[asm.RDX] = ^uint64(0)
		} else {
			m.gpr[asm.RDX] = 0
		}
	case asm.IDIVQ:
		div, err := m.readOperand(in.A[0], asm.W64)
		if err != nil {
			return 0, err
		}
		if div == 0 {
			return 0, crashf("divide error")
		}
		lo, hi := m.gpr[asm.RAX], m.gpr[asm.RDX]
		wantHi := uint64(0)
		if int64(lo) < 0 {
			wantHi = ^uint64(0)
		}
		if hi != wantHi {
			// The 128-bit quotient does not fit 64 bits: hardware #DE.
			return 0, crashf("divide overflow")
		}
		a, b := int64(lo), int64(div)
		if a == -1<<63 && b == -1 {
			return 0, crashf("divide overflow")
		}
		m.gpr[asm.RAX] = uint64(a / b)
		m.gpr[asm.RDX] = uint64(a % b)

	case asm.CMPQ:
		if err := m.execCmp(in, asm.W64); err != nil {
			return 0, err
		}
	case asm.CMPL:
		if err := m.execCmp(in, asm.W32); err != nil {
			return 0, err
		}
	case asm.CMPB:
		if err := m.execCmp(in, asm.W8); err != nil {
			return 0, err
		}
	case asm.TESTQ:
		a, err := m.readOperand(in.A[0], asm.W64)
		if err != nil {
			return 0, err
		}
		b, err := m.readOperand(in.A[1], asm.W64)
		if err != nil {
			return 0, err
		}
		m.setFlagsLogic(a&b, asm.W64)

	case asm.JMP:
		m.flushSpan()
		return nextContinue, m.jumpTo(in.A[0].Label)
	case asm.JE, asm.JNE, asm.JL, asm.JLE, asm.JG, asm.JGE:
		taken := m.cond(asm.CondOf(in.Op))
		m.flushSpan()
		if taken {
			m.scalarSpan += fi.cost.takenExtra
			return nextContinue, m.jumpTo(in.A[0].Label)
		}
		m.pc = pcNext
		return nextContinue, nil

	case asm.CALL:
		if err := m.push(uint64(pcNext)); err != nil {
			return 0, err
		}
		m.flushSpan()
		return nextContinue, m.jumpTo(in.A[0].Label)
	case asm.RET:
		v, err := m.pop()
		if err != nil {
			return 0, err
		}
		if v >= uint64(len(m.insts)) {
			return 0, crashf("ret to invalid address %d", v)
		}
		m.flushSpan()
		m.pc = int(v)
		return nextContinue, nil

	case asm.SETE, asm.SETNE, asm.SETL, asm.SETLE, asm.SETG, asm.SETGE:
		var v uint64
		if m.cond(asm.CondOf(in.Op)) {
			v = 1
		}
		if err := m.writeOperand(in.A[0], asm.W8, v); err != nil {
			return 0, err
		}

	case asm.PUSHQ:
		v, err := m.readOperand(in.A[0], asm.W64)
		if err != nil {
			return 0, err
		}
		if err := m.push(v); err != nil {
			return 0, err
		}
	case asm.POPQ:
		v, err := m.pop()
		if err != nil {
			return 0, err
		}
		if err := m.writeOperand(in.A[0], asm.W64, v); err != nil {
			return 0, err
		}

	case asm.PINSRQ:
		lane := int(in.A[0].Imm)
		if lane < 0 || lane > 1 {
			return 0, crashf("pinsrq lane %d out of range", lane)
		}
		v, err := m.readOperand(in.A[1], asm.W64)
		if err != nil {
			return 0, err
		}
		m.x[in.A[2].X][lane] = v
	case asm.VINSERTI128:
		lane := int(in.A[0].Imm)
		if lane < 0 || lane > 1 {
			return 0, crashf("vinserti128 lane %d out of range", lane)
		}
		src := m.x[in.A[1].X]
		base := m.x[in.A[2].X]
		base[lane*2] = src[0]
		base[lane*2+1] = src[1]
		m.x[in.A[3].X] = base
	case asm.VINSERTI644:
		lane := int(in.A[0].Imm)
		if lane < 0 || lane > 1 {
			return 0, crashf("vinserti64x4 lane %d out of range", lane)
		}
		src := m.x[in.A[1].X]
		base := m.x[in.A[2].X]
		copy(base[lane*4:lane*4+4], src[0:4])
		m.x[in.A[3].X] = base
	case asm.VPXOR:
		lanes := in.A[2].XW.Lanes()
		a, b := m.x[in.A[0].X], m.x[in.A[1].X]
		r := m.x[in.A[2].X]
		for i := 0; i < lanes; i++ {
			r[i] = a[i] ^ b[i]
		}
		m.x[in.A[2].X] = r
	case asm.VPTEST:
		lanes := in.A[1].XW.Lanes()
		a, b := m.x[in.A[0].X], m.x[in.A[1].X]
		var andAcc, andnAcc uint64
		for i := 0; i < lanes; i++ {
			andAcc |= a[i] & b[i]
			andnAcc |= ^a[i] & b[i]
		}
		m.flags[asm.FlagZF] = andAcc == 0
		m.flags[asm.FlagCF] = andnAcc == 0
		m.flags[asm.FlagSF] = false
		m.flags[asm.FlagOF] = false

	case asm.OUT:
		v, err := m.readOperand(in.A[0], asm.W64)
		if err != nil {
			return 0, err
		}
		m.output = append(m.output, v)

	case asm.HALT:
		m.flushSpan()
		return nextHalt, nil
	case asm.DETECT:
		m.flushSpan()
		return nextDetect, nil

	default:
		return 0, crashf("unimplemented opcode %s", in.Op)
	}
	m.pc = pcNext
	return nextContinue, nil
}

func (m *Machine) execMov(in *asm.Inst, w asm.Width) error {
	src, dst := in.A[0], in.A[1]
	// GPR/XMM transfer forms of movq.
	if src.Kind == asm.KXReg || dst.Kind == asm.KXReg {
		switch {
		case dst.Kind == asm.KXReg && src.Kind == asm.KXReg:
			lane0 := m.x[src.X][0]
			m.x[dst.X][0] = lane0
			m.x[dst.X][1] = 0
		case dst.Kind == asm.KXReg:
			v, err := m.readOperand(src, asm.W64)
			if err != nil {
				return err
			}
			m.x[dst.X][0] = v
			m.x[dst.X][1] = 0
		default: // xmm -> gpr/mem
			return m.writeOperand(dst, asm.W64, m.x[src.X][0])
		}
		return nil
	}
	v, err := m.readOperand(src, w)
	if err != nil {
		return err
	}
	return m.writeOperand(dst, w, v)
}

func (m *Machine) execALU(in *asm.Inst, w asm.Width) error {
	src, dst := in.A[0], in.A[1]
	b, err := m.readOperand(src, w)
	if err != nil {
		return err
	}
	a, err := m.readOperand(dst, w)
	if err != nil {
		return err
	}
	var r uint64
	switch in.Op {
	case asm.ADDQ:
		r = a + b
		m.setFlagsAdd(a, b, r, w)
	case asm.SUBQ:
		r = a - b
		m.setFlagsSub(a, b, w)
	case asm.IMULQ:
		r = uint64(int64(a) * int64(b))
		m.setFlagsLogic(r, w) // CF/OF modelled as cleared; ZF/SF from result
	case asm.ANDQ:
		r = a & b
		m.setFlagsLogic(r, w)
	case asm.ORQ:
		r = a | b
		m.setFlagsLogic(r, w)
	case asm.XORQ, asm.XORB:
		r = a ^ b
		m.setFlagsLogic(r, w)
	case asm.SHLQ:
		r = a << (b & 63)
		m.setFlagsLogic(r, w)
	case asm.SHRQ:
		r = a >> (b & 63)
		m.setFlagsLogic(r, w)
	case asm.SARQ:
		r = uint64(int64(a) >> (b & 63))
		m.setFlagsLogic(r, w)
	default:
		return crashf("execALU: bad op %s", in.Op)
	}
	return m.writeOperand(dst, w, r)
}

func (m *Machine) execCmp(in *asm.Inst, w asm.Width) error {
	src, dst := in.A[0], in.A[1]
	b, err := m.readOperand(src, w)
	if err != nil {
		return err
	}
	a, err := m.readOperand(dst, w)
	if err != nil {
		return err
	}
	m.setFlagsSub(a, b, w)
	return nil
}

func widthMask(w asm.Width) uint64 {
	if w == asm.W64 {
		return ^uint64(0)
	}
	return 1<<(w.Bits()) - 1
}

func signBit(v uint64, w asm.Width) bool {
	return v>>(w.Bits()-1)&1 == 1
}

func (m *Machine) setFlagsSub(a, b uint64, w asm.Width) {
	mask := widthMask(w)
	a, b = a&mask, b&mask
	r := (a - b) & mask
	m.flags[asm.FlagZF] = r == 0
	m.flags[asm.FlagSF] = signBit(r, w)
	m.flags[asm.FlagCF] = a < b
	m.flags[asm.FlagOF] = signBit((a^b)&(a^r), w)
}

func (m *Machine) setFlagsAdd(a, b, r uint64, w asm.Width) {
	mask := widthMask(w)
	a, b, r = a&mask, b&mask, r&mask
	m.flags[asm.FlagZF] = r == 0
	m.flags[asm.FlagSF] = signBit(r, w)
	m.flags[asm.FlagCF] = r < a
	m.flags[asm.FlagOF] = signBit((a^r)&(b^r), w)
}

func (m *Machine) setFlagsLogic(r uint64, w asm.Width) {
	mask := widthMask(w)
	r &= mask
	m.flags[asm.FlagZF] = r == 0
	m.flags[asm.FlagSF] = signBit(r, w)
	m.flags[asm.FlagCF] = false
	m.flags[asm.FlagOF] = false
}

func (m *Machine) cond(c asm.CC) bool {
	zf := m.flags[asm.FlagZF]
	sf := m.flags[asm.FlagSF]
	of := m.flags[asm.FlagOF]
	switch c {
	case asm.CCE:
		return zf
	case asm.CCNE:
		return !zf
	case asm.CCL:
		return sf != of
	case asm.CCLE:
		return zf || sf != of
	case asm.CCG:
		return !zf && sf == of
	case asm.CCGE:
		return sf == of
	}
	return false
}

func (m *Machine) jumpTo(label string) error {
	idx, ok := m.labels[label]
	if !ok {
		return crashf("jump to undefined label %q", label)
	}
	m.pc = idx
	return nil
}

func (m *Machine) flushSpan() {
	if m.vectorSpan > m.scalarSpan {
		m.cycles += m.vectorSpan
	} else {
		m.cycles += m.scalarSpan
	}
	m.scalarSpan, m.vectorSpan = 0, 0
}

func (m *Machine) readReg(r asm.Reg, w asm.Width) uint64 {
	return m.gpr[r] & widthMask(w)
}

func (m *Machine) writeGPR(r asm.Reg, w asm.Width, v uint64) {
	switch w {
	case asm.W64:
		m.gpr[r] = v
	case asm.W32:
		m.gpr[r] = v & 0xffffffff // 32-bit writes zero-extend
	case asm.W16:
		m.gpr[r] = m.gpr[r]&^uint64(0xffff) | v&0xffff
	case asm.W8:
		m.gpr[r] = m.gpr[r]&^uint64(0xff) | v&0xff
	}
}

func (m *Machine) ea(mem asm.Mem) uint64 {
	ea := uint64(mem.Disp)
	if mem.Base != asm.RNone {
		ea += m.gpr[mem.Base]
	}
	if mem.Index != asm.RNone {
		scale := uint64(mem.Scale)
		if scale == 0 {
			scale = 1
		}
		ea += m.gpr[mem.Index] * scale
	}
	return ea
}

func (m *Machine) loadMem(ea uint64, w asm.Width) (uint64, error) {
	size := uint64(w)
	if ea < GuardSize || ea+size > uint64(len(m.mem)) || ea+size < ea {
		return 0, crashf("load of %d bytes at %#x out of range", size, ea)
	}
	switch w {
	case asm.W64:
		return binary.LittleEndian.Uint64(m.mem[ea:]), nil
	case asm.W32:
		return uint64(binary.LittleEndian.Uint32(m.mem[ea:])), nil
	case asm.W16:
		return uint64(binary.LittleEndian.Uint16(m.mem[ea:])), nil
	default:
		return uint64(m.mem[ea]), nil
	}
}

func (m *Machine) storeMem(ea uint64, w asm.Width, v uint64) error {
	size := uint64(w)
	if ea < GuardSize || ea+size > uint64(len(m.mem)) || ea+size < ea {
		return crashf("store of %d bytes at %#x out of range", size, ea)
	}
	m.markDirty(ea, size)
	switch w {
	case asm.W64:
		binary.LittleEndian.PutUint64(m.mem[ea:], v)
	case asm.W32:
		binary.LittleEndian.PutUint32(m.mem[ea:], uint32(v))
	case asm.W16:
		binary.LittleEndian.PutUint16(m.mem[ea:], uint16(v))
	default:
		m.mem[ea] = byte(v)
	}
	return nil
}

func (m *Machine) readOperand(o asm.Operand, w asm.Width) (uint64, error) {
	switch o.Kind {
	case asm.KReg:
		return m.readReg(o.Reg, w), nil
	case asm.KImm:
		return uint64(o.Imm) & widthMask(w), nil
	case asm.KMem:
		return m.loadMem(m.ea(o.M), w)
	case asm.KXReg:
		return m.x[o.X][0], nil
	}
	return 0, crashf("unreadable operand %s", o)
}

func (m *Machine) writeOperand(o asm.Operand, w asm.Width, v uint64) error {
	switch o.Kind {
	case asm.KReg:
		m.writeGPR(o.Reg, w, v)
		return nil
	case asm.KMem:
		return m.storeMem(m.ea(o.M), w, v)
	}
	return crashf("unwritable operand %s", o)
}

func (m *Machine) push(v uint64) error {
	sp := m.gpr[asm.RSP] - 8
	if err := m.storeMem(sp, asm.W64, v); err != nil {
		return fmt.Errorf("push: %w", err)
	}
	m.gpr[asm.RSP] = sp
	return nil
}

func (m *Machine) pop() (uint64, error) {
	sp := m.gpr[asm.RSP]
	v, err := m.loadMem(sp, asm.W64)
	if err != nil {
		return 0, fmt.Errorf("pop: %w", err)
	}
	m.gpr[asm.RSP] = sp + 8
	return v, nil
}
