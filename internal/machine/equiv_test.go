package machine

import (
	"reflect"
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/backend"
	"ferrum/internal/eddi"
	"ferrum/internal/ferrumpass"
	"ferrum/internal/rodinia"
)

// The decode stage is pure representation: the fused uop dispatch must be
// observationally identical to the generic slow-path interpreter it
// accelerates. These tests run every Rodinia benchmark under every
// protection technique on both engines and require bit-identical Results;
// they are part of the PR equivalence gate (go test -run 'Equiv|Snapshot').

const equivMemSize = 1 << 20
const equivMaxSteps = 1 << 20

// forceSlow reroutes every decoded uop through the generic interpreter,
// recovering the pre-decode execution engine. Cost, destination kind and
// destination width stay as decoded, so only the dispatch path changes.
// Block dispatch and fusion are disabled too: this machine is the legacy
// per-instruction reference the faster tiers are measured against.
func forceSlow(m *Machine) {
	for i := range m.uops {
		m.uops[i].code = uSlow
	}
	m.hotOps = nil
	m.fuseAll()
	m.noBlocks = true
}

// forceOneUop keeps the decoded uops but disables block dispatch, so the
// machine runs the legacy one-uop loop over fast uops — the middle tier
// between block dispatch and the generic slow path.
func forceOneUop(m *Machine) {
	m.noBlocks = true
}

func equivPrograms(t *testing.T, bench string) map[string]*asm.Program {
	t.Helper()
	b, ok := rodinia.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	inst, err := b.Instantiate(1, 99)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := backend.Compile(inst.Mod)
	if err != nil {
		t.Fatal(err)
	}
	eddiProg, _, err := eddi.Protect(raw)
	if err != nil {
		t.Fatal(err)
	}
	ferrumProg, _, err := ferrumpass.Protect(raw, ferrumpass.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*asm.Program{"raw": raw, "eddi": eddiProg, "ferrum": ferrumProg}
}

func equivMachine(t *testing.T, bench string, prog *asm.Program) (*Machine, []uint64) {
	t.Helper()
	b, _ := rodinia.ByName(bench)
	inst, err := b.Instantiate(1, 99)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(prog, equivMemSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(m); err != nil {
		t.Fatal(err)
	}
	return m, inst.Args
}

// TestEquivDecodeVsSlowAsm runs every Rodinia cell × {raw, eddi, ferrum}
// on all four dispatch tiers — block dispatch with profile-guided fusion,
// block dispatch with the static triad set, the one-uop legacy loop over
// decoded uops, and the forced slow path — asserting an identical Result
// (outcome, output, cycles, dynamic counts, per-site records and profile)
// for the golden run and for a spread of fault injections. It also pins
// decode coverage: compiled Rodinia programs must decode with no residual
// slow-path uops.
func TestEquivDecodeVsSlowAsm(t *testing.T) {
	for _, bench := range rodinia.Names() {
		for tech, prog := range equivPrograms(t, bench) {
			fast, args := equivMachine(t, bench, prog)
			fused, _ := equivMachine(t, bench, prog)
			oneuop, _ := equivMachine(t, bench, prog)
			slow, _ := equivMachine(t, bench, prog)
			forceOneUop(oneuop)
			forceSlow(slow)

			for i := range fast.uops {
				if fast.uops[i].code == uSlow {
					t.Errorf("%s/%s: instruction %d (%s) left on the slow path",
						bench, tech, i, fast.insts[i].in.String())
				}
			}
			if tech == "ferrum" && len(fast.fuops) == 0 {
				t.Errorf("%s/%s: no static check triads fused", bench, tech)
			}

			golden := RunOpts{
				Args: args, MaxSteps: equivMaxSteps,
				RecordSites: true, RecordSiteLocs: true, RecordSiteBits: true,
				Profile: true, Trace: 16,
			}
			want := slow.Run(golden)
			if want.Outcome != OutcomeOK {
				t.Fatalf("%s/%s: golden outcome = %v (%s)", bench, tech, want.Outcome, want.CrashMsg)
			}
			fused.FuseProfile(want.Profile)
			if len(fused.fuops) < len(fast.fuops) {
				t.Errorf("%s/%s: profile-guided fusion dropped static triads: %d < %d",
					bench, tech, len(fused.fuops), len(fast.fuops))
			}

			tiers := map[string]*Machine{"fast": fast, "fused": fused, "oneuop": oneuop}
			for name, m := range tiers {
				got := m.Run(golden)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s: golden Result differs:\n%s: %+v\nslow: %+v",
						bench, tech, name, got, want)
				}
			}

			sites := want.DynSites
			for _, site := range []uint64{0, sites / 3, sites / 2, sites - 1} {
				for _, bit := range []uint{0, 13, 63} {
					opts := RunOpts{
						Args: args, MaxSteps: equivMaxSteps,
						Fault: &Fault{Site: site, Bit: bit},
					}
					fw := slow.Run(opts)
					for name, m := range tiers {
						fg := m.Run(opts)
						if !reflect.DeepEqual(fg, fw) {
							t.Errorf("%s/%s site=%d bit=%d: fault Result differs:\n%s: %+v\nslow: %+v",
								bench, tech, site, bit, name, fg, fw)
						}
					}
				}
			}
		}
	}
}

// TestEquivSnapshotAcrossDecode checks that snapshots are engine-version
// independent: a snapshot captured mid-run by the slow-path engine restores
// into a decoded machine (and vice versa), and every resumed run reproduces
// the uninterrupted run's terminal Result.
func TestEquivSnapshotAcrossDecode(t *testing.T) {
	for _, bench := range []string{"bfs", "lud"} {
		prog := equivPrograms(t, bench)["ferrum"]
		fast, args := equivMachine(t, bench, prog)
		fused, _ := equivMachine(t, bench, prog)
		slow, _ := equivMachine(t, bench, prog)
		forceSlow(slow)

		profiled := fast.Run(RunOpts{Args: args, MaxSteps: equivMaxSteps, Profile: true})
		fused.FuseProfile(profiled.Profile)

		want := fast.Run(RunOpts{Args: args, MaxSteps: equivMaxSteps})
		if want.Outcome != OutcomeOK {
			t.Fatalf("%s: golden outcome = %v (%s)", bench, want.Outcome, want.CrashMsg)
		}

		pairs := []struct {
			name     string
			from, to *Machine
		}{
			{"slow->fused", slow, fast},
			{"fused->slow", fast, slow},
			{"slow->pfused", slow, fused},
			{"pfused->slow", fused, slow},
		}
		for _, p := range pairs {
			var snaps []*Snapshot
			p.from.Run(RunOpts{
				Args: args, MaxSteps: equivMaxSteps,
				CheckpointEvery: want.DynSites / 3,
				OnCheckpoint:    func(s *Snapshot) { snaps = append(snaps, s) },
			})
			if len(snaps) == 0 {
				t.Fatalf("%s %s: no snapshots captured", bench, p.name)
			}
			for i, s := range snaps {
				got := p.to.Run(RunOpts{Resume: s, MaxSteps: equivMaxSteps})
				if got.Outcome != want.Outcome || !reflect.DeepEqual(got.Output, want.Output) ||
					got.Cycles != want.Cycles || got.DynInsts != want.DynInsts ||
					got.DynSites != want.DynSites {
					t.Errorf("%s %s snapshot %d: resumed Result differs: %+v != %+v",
						bench, p.name, i, got, want)
				}
			}
		}
	}
}
