package machine

import (
	"strings"
	"testing"

	"ferrum/internal/asm"
)

// TestUnknownCondCodeIsCrash: cond must refuse a condition code it does not
// know rather than silently treating the branch as not-taken — a corrupted
// or miscompiled CC would otherwise fall through undetected.
func TestUnknownCondCodeIsCrash(t *testing.T) {
	m, err := New(mustParse(t, "\t.globl\tmain\nmain:\n\thlt\n"), memSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.cond(asm.CC(99)); err == nil {
		t.Fatal("cond(99) = nil error, want a crash")
	} else if !strings.Contains(err.Error(), "unknown condition code 99") {
		t.Fatalf("cond(99) error = %v, want it to name the code", err)
	}
	// CCNone is equally meaningless as a branch condition.
	if _, err := m.cond(asm.CCNone); err == nil {
		t.Fatal("cond(CCNone) = nil error, want a crash")
	}
}

// TestUnknownCondCodeCrashOutcome: a decoded conditional branch whose CC is
// corrupted in place makes the run crash, not branch-not-taken.
func TestUnknownCondCodeCrashOutcome(t *testing.T) {
	src := `
	.globl	main
main:
	cmpq	$0, %rax
	je	.Ldone
.Ldone:
	hlt
`
	m, err := New(mustParse(t, src), memSize)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for i := range m.uops {
		if m.uops[i].code == uJcc {
			m.uops[i].cc = asm.CC(200)
			corrupted = true
		}
	}
	if !corrupted {
		t.Fatal("no uJcc uop decoded for the je instruction")
	}
	res := m.Run(RunOpts{})
	if res.Outcome != OutcomeCrash {
		t.Fatalf("outcome = %v, want OutcomeCrash", res.Outcome)
	}
	if !strings.Contains(res.CrashMsg, "unknown condition code 200") {
		t.Fatalf("crash msg = %q, want unknown condition code", res.CrashMsg)
	}
}

// TestUndefinedLabelRejectedAtLoad: a branch to a label nobody defines is a
// load-time error from New (via Validate) and — independently — from the
// decode stage itself, so no machine is ever built that could defer the
// failure to runtime.
func TestUndefinedLabelRejectedAtLoad(t *testing.T) {
	mk := func(op asm.Op) *asm.Program {
		return &asm.Program{
			Entry: "main",
			Funcs: []*asm.Func{{
				Name: "main",
				Insts: []asm.Inst{
					asm.NewInst(op, asm.LabelOp("nowhere")),
					asm.NewInst(asm.HALT),
				},
			}},
		}
	}
	for _, op := range []asm.Op{asm.JMP, asm.JE, asm.CALL} {
		if _, err := New(mk(op), memSize); err == nil {
			t.Errorf("New accepted %s to an undefined label", op)
		} else if !strings.Contains(err.Error(), `undefined label "nowhere"`) {
			t.Errorf("New(%s) error = %v, want it to name the label", op, err)
		}
		// Bypass Validate: the decoder's own target resolution must still
		// refuse to build the machine.
		if _, err := newMachine(mk(op), memSize); err == nil {
			t.Errorf("newMachine accepted %s to an undefined label", op)
		} else if !strings.Contains(err.Error(), `undefined label "nowhere"`) {
			t.Errorf("newMachine(%s) error = %v, want it to name the label", op, err)
		}
	}
}

// TestRodiniaDecodesFully is in equiv_test.go; here we check a small parsed
// program decodes every instruction off the slow path, so the fused
// dispatch actually covers the common shapes.
func TestSmallProgramDecodesFully(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$6, %rax
	movq	$7, %rcx
	imulq	%rcx, %rax
	cmpq	$42, %rax
	jne	.Lbad
	out	%rax
	hlt
.Lbad:
	movq	$0, %rax
	out	%rax
	hlt
`
	m, err := New(mustParse(t, src), memSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.uops {
		if m.uops[i].code == uSlow {
			t.Errorf("instruction %d (%s) decoded to the slow path",
				i, m.insts[i].in.String())
		}
	}
}
