package machine

import (
	"fmt"

	"ferrum/internal/asm"
)

// ucode is the machine's dense internal opcode. Each value fuses an asm.Op
// with the operand-kind shape and width of one concrete instruction, so the
// interpreter's step dispatches exactly once per dynamic instruction
// instead of re-switching through readOperand/writeOperand/widthMask per
// operand. Decoding happens once, at load time (New), in the spirit of the
// paper's "pay the analysis cost statically" philosophy.
//
// uSlow is the escape hatch: operand shapes the fused cases do not cover
// (memory-to-memory ALU forms, immediate destinations, SIMD operands in
// scalar slots, non-label jump targets, statically out-of-range PINSRQ
// lanes) fall back to the generic interpreter, which preserves the exact
// legacy runtime semantics — including crash messages — for degenerate
// programs. Compiled Rodinia programs decode with zero slow uops (see
// decode_equiv_test.go).
type ucode uint16

const (
	uSlow ucode = iota // generic fallback: full per-operand interpretation
	uNop
	uHalt
	uDetect

	// Scalar moves: src kind (R=register, I=immediate, M=memory) ×
	// dst kind × width.
	uMovRR64
	uMovRR32
	uMovRR8
	uMovIR64
	uMovIR32
	uMovIR8
	uMovMR64
	uMovMR32
	uMovMR8
	uMovRM64
	uMovRM32
	uMovRM8
	uMovIM64
	uMovIM32
	uMovIM8

	// movq GPR<->XMM transfer forms (X = SIMD register lane 0).
	uMovXX
	uMovRX
	uMovIX
	uMovMX
	uMovXR
	uMovXM

	// Widening moves.
	uMovslqRR
	uMovslqMR
	uMovzbqRR
	uMovzbqMR

	uLea

	// Two-operand ALU, 64-bit: five src×dst forms each.
	uAddRR
	uAddIR
	uAddMR
	uAddRM
	uAddIM
	uSubRR
	uSubIR
	uSubMR
	uSubRM
	uSubIM
	uImulRR
	uImulIR
	uImulMR
	uImulRM
	uImulIM
	uAndRR
	uAndIR
	uAndMR
	uAndRM
	uAndIM
	uOrRR
	uOrIR
	uOrMR
	uOrRM
	uOrIM
	uXorRR
	uXorIR
	uXorMR
	uXorRM
	uXorIM
	uShlRR
	uShlIR
	uShlMR
	uShlRM
	uShlIM
	uShrRR
	uShrIR
	uShrMR
	uShrRM
	uShrIM
	uSarRR
	uSarIR
	uSarMR
	uSarRM
	uSarIM

	// xorb: 8-bit xor (the EDDI-style flag-writing check xor).
	uXorbRR
	uXorbIR
	uXorbMR
	uXorbRM
	uXorbIM

	uNegR
	uNegM
	uCqto
	uIdivR
	uIdivM

	// Compares (flags only): src×dst forms × width.
	uCmpRR64
	uCmpIR64
	uCmpMR64
	uCmpRM64
	uCmpIM64
	uCmpRR32
	uCmpIR32
	uCmpMR32
	uCmpRM32
	uCmpIM32
	uCmpRR8
	uCmpIR8
	uCmpMR8
	uCmpRM8
	uCmpIM8
	uTestRR
	uTestIR

	// Control flow: targets pre-resolved to instruction indices.
	uJmp
	uJcc
	uCall
	uRet
	uSetccR

	uPushR
	uPushI
	uPushM
	uPopR

	// SIMD (the FERRUM check path).
	uPinsrqR
	uPinsrqM
	uVinserti128
	uVinserti644
	uVpxor
	uVptest

	uOutR
)

// uop is one decoded instruction in the hot execution array. It is the
// machine's threaded-code form: the fused opcode plus every pre-extracted
// operand the fast path needs, sized well under a cache line so the inner
// loop's working set stays small. The parallel flatInst array keeps the
// cold data (original asm form, provenance, fault destination) that only
// profiling, tracing, fault application and the slow path consult.
type uop struct {
	code     ucode
	r1       asm.Reg // source GPR
	r2       asm.Reg // destination (or second source) GPR
	cc       asm.CC  // condition code of Jcc/SETcc
	lane     int8    // static SIMD lane (pinsrq/vinserti*)
	lanes    int8    // lane count of the operand view (vpxor/vptest)
	x1       asm.XReg
	x2       asm.XReg
	x3       asm.XReg
	destKind asm.DestKind // DestOf kind, for the per-site hot check
	destBits uint16       // precomputed DestBits(dest)
	target   int32        // jump/call target resolved to an instruction index
	imm      uint64       // immediate, pre-masked to the operation width
	mem      asm.Mem      // memory reference, Scale normalised (0 -> 1)
	cost     cost
}

// normMem normalises a memory reference for the fused effective-address
// computation: Scale 0 means 1 (matching Mem.effScale), so the hot path can
// multiply unconditionally. Base/Index stay as-is — gpr[RNone] is
// invariantly zero, which makes the address computation branch-free.
func normMem(mm asm.Mem) asm.Mem {
	if mm.Scale == 0 {
		mm.Scale = 1
	}
	return mm
}

// decodeSrcDst selects among the five fused src×dst forms of a two-operand
// instruction: reg→reg, imm→reg, mem→reg, reg→mem and imm→mem. Immediates
// are pre-masked to the operation width. Shapes outside these (mem→mem,
// immediate or SIMD destinations) leave u.code at uSlow.
func decodeSrcDst(u *uop, w asm.Width, src, dst asm.Operand, rr, ir, mr, rm, im ucode) {
	switch dst.Kind {
	case asm.KReg:
		u.r2 = dst.Reg
		switch src.Kind {
		case asm.KReg:
			u.code, u.r1 = rr, src.Reg
		case asm.KImm:
			u.code, u.imm = ir, uint64(src.Imm)&widthMask(w)
		case asm.KMem:
			u.code, u.mem = mr, normMem(src.M)
		}
	case asm.KMem:
		u.mem = normMem(dst.M)
		switch src.Kind {
		case asm.KReg:
			u.code, u.r1 = rm, src.Reg
		case asm.KImm:
			u.code, u.imm = im, uint64(src.Imm)&widthMask(w)
		}
	}
}

// resolveTarget resolves a jump/call target label to an instruction index
// at load time. Undefined labels are a load-time error here (Program.
// Validate already rejects them for the public New path); non-label
// operands keep the instruction on the slow path, where the legacy
// "jump to undefined label" crash is reproduced at runtime.
func (m *Machine) resolveTarget(u *uop, fi *flatInst, o asm.Operand, code ucode) error {
	if o.Kind != asm.KLabel {
		return nil
	}
	idx, ok := m.labels[o.Label]
	if !ok {
		return fmt.Errorf("machine: %s+%d: %s: undefined label %q",
			fi.fn, fi.idx, fi.in.Op, o.Label)
	}
	u.code, u.target = code, int32(idx)
	return nil
}

// decode compiles one flattened instruction into its fused uop form. It
// runs once per static instruction at load time, after the label map is
// built. Anything it cannot fuse stays at uSlow; decode itself only fails
// on undefined control-flow labels.
func (m *Machine) decode(u *uop, fi *flatInst) error {
	u.code = uSlow
	u.destKind = fi.dest.Kind
	u.destBits = DestBits(fi.dest)
	in := &fi.in
	a := in.A
	switch in.Op {
	case asm.NOP:
		u.code = uNop
	case asm.HALT:
		u.code = uHalt
	case asm.DETECT:
		u.code = uDetect

	case asm.MOVQ, asm.MOVL, asm.MOVB:
		if len(a) != 2 {
			return nil
		}
		src, dst := a[0], a[1]
		// GPR/XMM transfer forms (lane 0, upper lane zeroed on write).
		if src.Kind == asm.KXReg || dst.Kind == asm.KXReg {
			switch {
			case src.Kind == asm.KXReg && dst.Kind == asm.KXReg:
				u.code, u.x1, u.x2 = uMovXX, src.X, dst.X
			case dst.Kind == asm.KXReg:
				u.x2 = dst.X
				switch src.Kind {
				case asm.KReg:
					u.code, u.r1 = uMovRX, src.Reg
				case asm.KImm:
					u.code, u.imm = uMovIX, uint64(src.Imm)
				case asm.KMem:
					u.code, u.mem = uMovMX, normMem(src.M)
				}
			default: // xmm -> gpr/mem
				u.x1 = src.X
				switch dst.Kind {
				case asm.KReg:
					u.code, u.r2 = uMovXR, dst.Reg
				case asm.KMem:
					u.code, u.mem = uMovXM, normMem(dst.M)
				}
			}
			return nil
		}
		switch in.Op {
		case asm.MOVQ:
			decodeSrcDst(u, asm.W64, src, dst, uMovRR64, uMovIR64, uMovMR64, uMovRM64, uMovIM64)
		case asm.MOVL:
			decodeSrcDst(u, asm.W32, src, dst, uMovRR32, uMovIR32, uMovMR32, uMovRM32, uMovIM32)
		default:
			decodeSrcDst(u, asm.W8, src, dst, uMovRR8, uMovIR8, uMovMR8, uMovRM8, uMovIM8)
		}

	case asm.MOVSLQ, asm.MOVZBQ:
		if len(a) != 2 || a[1].Kind != asm.KReg {
			return nil
		}
		u.r2 = a[1].Reg
		switch a[0].Kind {
		case asm.KReg:
			u.r1 = a[0].Reg
			if in.Op == asm.MOVSLQ {
				u.code = uMovslqRR
			} else {
				u.code = uMovzbqRR
			}
		case asm.KMem:
			u.mem = normMem(a[0].M)
			if in.Op == asm.MOVSLQ {
				u.code = uMovslqMR
			} else {
				u.code = uMovzbqMR
			}
		}

	case asm.LEA:
		if len(a) != 2 || a[0].Kind != asm.KMem || a[1].Kind != asm.KReg {
			return nil
		}
		u.code, u.mem, u.r2 = uLea, normMem(a[0].M), a[1].Reg

	case asm.ADDQ, asm.SUBQ, asm.IMULQ, asm.ANDQ, asm.ORQ, asm.XORQ,
		asm.SHLQ, asm.SHRQ, asm.SARQ, asm.XORB:
		if len(a) != 2 {
			return nil
		}
		var rr ucode
		w := asm.W64
		switch in.Op {
		case asm.ADDQ:
			rr = uAddRR
		case asm.SUBQ:
			rr = uSubRR
		case asm.IMULQ:
			rr = uImulRR
		case asm.ANDQ:
			rr = uAndRR
		case asm.ORQ:
			rr = uOrRR
		case asm.XORQ:
			rr = uXorRR
		case asm.SHLQ:
			rr = uShlRR
		case asm.SHRQ:
			rr = uShrRR
		case asm.SARQ:
			rr = uSarRR
		case asm.XORB:
			rr, w = uXorbRR, asm.W8
		}
		// The five forms of each op are laid out contiguously (RR IR MR RM
		// IM), so one base code plus decodeSrcDst's offsets cover them all.
		decodeSrcDst(u, w, a[0], a[1], rr, rr+1, rr+2, rr+3, rr+4)

	case asm.NEGQ:
		if len(a) != 1 {
			return nil
		}
		switch a[0].Kind {
		case asm.KReg:
			u.code, u.r1 = uNegR, a[0].Reg
		case asm.KMem:
			u.code, u.mem = uNegM, normMem(a[0].M)
		}

	case asm.CQTO:
		u.code = uCqto
	case asm.IDIVQ:
		if len(a) != 1 {
			return nil
		}
		switch a[0].Kind {
		case asm.KReg:
			u.code, u.r1 = uIdivR, a[0].Reg
		case asm.KMem:
			u.code, u.mem = uIdivM, normMem(a[0].M)
		}

	case asm.CMPQ, asm.CMPL, asm.CMPB:
		if len(a) != 2 {
			return nil
		}
		switch in.Op {
		case asm.CMPQ:
			decodeSrcDst(u, asm.W64, a[0], a[1], uCmpRR64, uCmpIR64, uCmpMR64, uCmpRM64, uCmpIM64)
		case asm.CMPL:
			decodeSrcDst(u, asm.W32, a[0], a[1], uCmpRR32, uCmpIR32, uCmpMR32, uCmpRM32, uCmpIM32)
		default:
			decodeSrcDst(u, asm.W8, a[0], a[1], uCmpRR8, uCmpIR8, uCmpMR8, uCmpRM8, uCmpIM8)
		}
	case asm.TESTQ:
		if len(a) != 2 || a[1].Kind != asm.KReg {
			return nil
		}
		u.r2 = a[1].Reg
		switch a[0].Kind {
		case asm.KReg:
			u.code, u.r1 = uTestRR, a[0].Reg
		case asm.KImm:
			u.code, u.imm = uTestIR, uint64(a[0].Imm)
		}

	case asm.JMP:
		if len(a) != 1 {
			return nil
		}
		return m.resolveTarget(u, fi, a[0], uJmp)
	case asm.JE, asm.JNE, asm.JL, asm.JLE, asm.JG, asm.JGE:
		if len(a) != 1 {
			return nil
		}
		u.cc = asm.CondOf(in.Op)
		return m.resolveTarget(u, fi, a[0], uJcc)
	case asm.CALL:
		if len(a) != 1 {
			return nil
		}
		return m.resolveTarget(u, fi, a[0], uCall)
	case asm.RET:
		u.code = uRet

	case asm.SETE, asm.SETNE, asm.SETL, asm.SETLE, asm.SETG, asm.SETGE:
		if len(a) != 1 || a[0].Kind != asm.KReg {
			return nil
		}
		u.code, u.cc, u.r2 = uSetccR, asm.CondOf(in.Op), a[0].Reg

	case asm.PUSHQ:
		if len(a) != 1 {
			return nil
		}
		switch a[0].Kind {
		case asm.KReg:
			u.code, u.r1 = uPushR, a[0].Reg
		case asm.KImm:
			u.code, u.imm = uPushI, uint64(a[0].Imm)
		case asm.KMem:
			u.code, u.mem = uPushM, normMem(a[0].M)
		}
	case asm.POPQ:
		if len(a) != 1 || a[0].Kind != asm.KReg {
			return nil
		}
		u.code, u.r2 = uPopR, a[0].Reg

	case asm.PINSRQ:
		if len(a) != 3 {
			return nil
		}
		lane := int(a[0].Imm)
		if lane < 0 || lane > 1 {
			return nil // statically doomed: slow path reproduces the crash
		}
		u.lane, u.x2 = int8(lane), a[2].X
		switch a[1].Kind {
		case asm.KReg:
			u.code, u.r1 = uPinsrqR, a[1].Reg
		case asm.KMem:
			u.code, u.mem = uPinsrqM, normMem(a[1].M)
		}
	case asm.VINSERTI128, asm.VINSERTI644:
		if len(a) != 4 {
			return nil
		}
		lane := int(a[0].Imm)
		if lane < 0 || lane > 1 {
			return nil
		}
		u.lane, u.x1, u.x2, u.x3 = int8(lane), a[1].X, a[2].X, a[3].X
		if in.Op == asm.VINSERTI128 {
			u.code = uVinserti128
		} else {
			u.code = uVinserti644
		}
	case asm.VPXOR:
		if len(a) != 3 {
			return nil
		}
		u.code = uVpxor
		u.x1, u.x2, u.x3 = a[0].X, a[1].X, a[2].X
		u.lanes = int8(a[2].XW.Lanes())
	case asm.VPTEST:
		if len(a) != 2 {
			return nil
		}
		u.code, u.x1, u.x2 = uVptest, a[0].X, a[1].X
		u.lanes = int8(a[1].XW.Lanes())

	case asm.OUT:
		if len(a) != 1 || a[0].Kind != asm.KReg {
			return nil
		}
		u.code, u.r1 = uOutR, a[0].Reg
	}
	return nil
}
