package machine

import (
	"fmt"
	"sort"

	"ferrum/internal/asm"
)

// Superinstruction fusion.
//
// The fuser rewrites hot adjacent uop pairs/triples into single fused uops
// (fuops) dispatched once per group by runBlocks. Fusion is expressed in
// parallel tables — fuseAt maps a head instruction index to its fuop, tail
// positions stay unfused — so the insts/uops arrays and every pre-fusion
// index (fault sites, SiteStatics, snapshot pcs, journal identity) are
// untouched. A run resumed at a fused tail simply executes plain uops.
//
// Every fused handler charges its constituents' cycle-span costs in the
// original per-instruction order (float accumulation is not associative, so
// costs are never pre-summed) and advances dyn/sites per constituent —
// results are bit-identical to unfused execution, including mid-group crash
// accounting. The generic fPair kind dispatches each constituent through
// the ordinary step switch; the specialised kinds below it inline the exact
// step bodies of the pairs that dominate dynamically (measured on the
// FERRUM-protected Rodinia cells: the SIMD staging stream of loads, pinsrq
// lane inserts, vinserti128 assembly and vpxor accumulation), collapsing
// two switch dispatches into one.
//
// The FERRUM vpxor+vptest+jcc check triad is always fused so the
// raw-vs-protected overhead comparison reflects the technique, not the
// dispatcher. Pair fusion is profile-guided: FuseProfile enables pairs
// whose opcodes are hot in a Profile from a previous run.

type fuseKind uint8

const (
	// fPair executes both constituents through the generic step dispatch —
	// correct for any plain-headed pair, used when no specialised handler
	// matches. It saves the dispatch loop's per-instruction overhead
	// (bounds, fusion lookup, block-exit test) for the second constituent.
	fPair fuseKind = iota
	// fCheckTriad is the FERRUM vpxor+vptest+jcc detection idiom.
	fCheckTriad
	// Specialised pairs, named head+tail. Each handler inlines both step
	// bodies behind the single kind dispatch.
	fVpxorVpxor         // vector accumulate chain
	fVpxorMovMX         // accumulate, then load next operand into xmm
	fMovMXMovMR64       // xmm load + scalar load
	fMovMR64MovRX       // scalar load + gpr->xmm transfer
	fMovMR64PinsrqR     // scalar load + lane insert from gpr
	fPinsrqMMovMR64     // lane insert from memory + scalar load
	fMovRXPinsrqM       // gpr->xmm transfer + lane insert from memory
	fVinsVins           // ymm assembly chain
	fVinsVpxor          // ymm assembly, then accumulate
	fPinsrqRVins        // lane insert + ymm assembly
	fMovRM64Vpxor       // scalar store + vector accumulate
	fMovRM64MovMX       // scalar store + xmm load
	fXorRRJcc           // flag-setting xor + conditional branch
)

// fuop is one fused superinstruction: the kind, the head's instruction
// index, and copies of the constituent uops. Execution counters live in
// the per-machine fuseHits array (parallel to fuops) so the fuop tables
// are read-only and shareable across Clones.
type fuop struct {
	kind fuseKind
	span uint8
	head int32
	u1   uop
	u2   uop
	u3   uop
}

// fuseAll rebuilds the fusion tables from the current uops, blocks and hot
// set. Two passes: the always-on FERRUM check triads are claimed first so
// greedy pair fusion can never split a detection idiom, then pairs fill
// the remaining positions greedily left-to-right. Groups never cross block
// boundaries, so a fused head always owns all its tail positions.
func (m *Machine) fuseAll() {
	n := len(m.uops)
	m.fuseAt = make([]int32, n)
	for i := range m.fuseAt {
		m.fuseAt[i] = -1
	}
	m.fuops = nil
	taken := make([]bool, n)
	for i := 0; i+3 <= n; i++ {
		end := int(m.blockEnd[i])
		if m.uops[i].code == uVpxor && end == i+3 &&
			m.uops[i+1].code == uVptest && m.uops[i+2].code == uJcc {
			f := fuop{kind: fCheckTriad, span: 3, head: int32(i),
				u1: m.uops[i], u2: m.uops[i+1], u3: m.uops[i+2]}
			m.fuseAt[i] = int32(len(m.fuops))
			m.fuops = append(m.fuops, f)
			taken[i], taken[i+1], taken[i+2] = true, true, true
		}
	}
	for i := 0; i+2 <= n; {
		if taken[i] || taken[i+1] || !m.matchPair(i, int(m.blockEnd[i])) {
			i++
			continue
		}
		f := fuop{span: 2, head: int32(i), u1: m.uops[i], u2: m.uops[i+1]}
		f.kind = pairKind(f.u1.code, f.u2.code)
		m.fuseAt[i] = int32(len(m.fuops))
		m.fuops = append(m.fuops, f)
		taken[i], taken[i+1] = true, true
		i += 2
	}
	m.fuseHits = make([]uint64, len(m.fuops))
}

// plainHead reports whether a uop may head a fused pair: it must fall
// through to the next instruction on every non-crash path, so control flow,
// halting codes and the generic slow path (whose interpretation may branch)
// are excluded. Tails are unrestricted — step handles their control flow.
func plainHead(c ucode) bool {
	switch c {
	case uSlow, uHalt, uDetect, uJmp, uJcc, uCall, uRet:
		return false
	}
	return true
}

// pairKind picks the specialised handler for a fusable pair, falling back
// to the generic fPair when no inlined body exists for the combination.
func pairKind(c1, c2 ucode) fuseKind {
	switch c1 {
	case uVpxor:
		switch c2 {
		case uVpxor:
			return fVpxorVpxor
		case uMovMX:
			return fVpxorMovMX
		}
	case uMovMX:
		if c2 == uMovMR64 {
			return fMovMXMovMR64
		}
	case uMovMR64:
		switch c2 {
		case uMovRX:
			return fMovMR64MovRX
		case uPinsrqR:
			return fMovMR64PinsrqR
		}
	case uPinsrqM:
		if c2 == uMovMR64 {
			return fPinsrqMMovMR64
		}
	case uMovRX:
		if c2 == uPinsrqM {
			return fMovRXPinsrqM
		}
	case uVinserti128:
		switch c2 {
		case uVinserti128:
			return fVinsVins
		case uVpxor:
			return fVinsVpxor
		}
	case uPinsrqR:
		if c2 == uVinserti128 {
			return fPinsrqRVins
		}
	case uMovRM64:
		switch c2 {
		case uVpxor:
			return fMovRM64Vpxor
		case uMovMX:
			return fMovRM64MovMX
		}
	case uXorRR:
		if c2 == uJcc {
			return fXorRRJcc
		}
	}
	return fPair
}

// matchPair reports whether positions i, i+1 form a fusable pair: both in
// the same block, a plain head, and both opcodes profile-hot. (The FERRUM
// check triad is matched in a separate, earlier pass — always on, not
// profile-gated, so protected-run overhead stays honest.)
func (m *Machine) matchPair(i, end int) bool {
	return end >= i+2 && plainHead(m.uops[i].code) && m.pairHot(i)
}

// pairHot reports whether both asm opcodes at i, i+1 are in the hot set.
func (m *Machine) pairHot(i int) bool {
	if m.hotOps == nil {
		return false
	}
	return m.hotOps[m.insts[i].in.Op] && m.hotOps[m.insts[i+1].in.Op]
}

// FuseProfile enables profile-guided pair fusion using a Profile from a
// previous run (typically the golden run of a fault-injection campaign):
// an opcode is hot when it accounts for at least 1% of dynamic
// instructions, and a pair fuses when both its opcodes are hot. Call
// before Run and before Clone; the rebuilt tables are shared by clones
// made afterwards. Fused execution is bit-identical to unfused, so
// enabling fusion never changes campaign results.
func (m *Machine) FuseProfile(p *Profile) {
	if p == nil {
		return
	}
	total := p.DynInsts()
	if total == 0 {
		return
	}
	hot := make(map[asm.Op]bool)
	for op, c := range p.OpCount {
		if c*100 >= total {
			hot[op] = true
		}
	}
	m.hotOps = hot
	m.fuseAll()
}

// stepFused executes one fused superinstruction. Every constituent charges
// its own cost spans, increments dyn, and counts its fault site exactly as
// the unfused path would — the caller guarantees the planned fault site is
// not within this block, so no fault application is needed here.
func (m *Machine) stepFused(f *fuop, pc int) (nextAction, error) {
	switch f.kind {
	case fPair:
		// Generic pair: both constituents run through the ordinary step
		// dispatch, so this kind is bit-identical to unfused execution by
		// construction. The head is plain (falls through), so its action is
		// always nextContinue and m.pc advances to the tail.
		u1 := &f.u1
		m.dyn++
		if _, err := m.step(u1, pc); err != nil {
			return 0, err
		}
		if u1.destKind != asm.DestNone {
			m.sites++
		}
		u2 := &f.u2
		m.dyn++
		next, err := m.step(u2, pc+1)
		if err != nil {
			return 0, err
		}
		if u2.destKind != asm.DestNone {
			m.sites++
		}
		return next, nil

	case fCheckTriad:
		u1, u2, u3 := &f.u1, &f.u2, &f.u3
		// vpxor
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		a, b, d := &m.x[u1.x1], &m.x[u1.x2], &m.x[u1.x3]
		for i := 0; i < int(u1.lanes); i++ {
			d[i] = a[i] ^ b[i]
		}
		if u1.destKind != asm.DestNone {
			m.sites++
		}
		// vptest
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		va, vb := &m.x[u2.x1], &m.x[u2.x2]
		var andAcc, andnAcc uint64
		for i := 0; i < int(u2.lanes); i++ {
			andAcc |= va[i] & vb[i]
			andnAcc |= ^va[i] & vb[i]
		}
		m.flags[asm.FlagZF] = andAcc == 0
		m.flags[asm.FlagCF] = andnAcc == 0
		m.flags[asm.FlagSF] = false
		m.flags[asm.FlagOF] = false
		if u2.destKind != asm.DestNone {
			m.sites++
		}
		// jcc
		m.dyn++
		m.scalarSpan += u3.cost.scalar
		m.vectorSpan += u3.cost.vector
		taken, err := m.cond(u3.cc)
		if err != nil {
			return 0, err
		}
		m.flushSpan()
		if taken {
			m.scalarSpan += u3.cost.takenExtra
			m.pc = int(u3.target)
		} else {
			m.pc = pc + 3
		}
		return nextContinue, nil

	case fVpxorVpxor:
		u1, u2 := &f.u1, &f.u2
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		a, b, d := &m.x[u1.x1], &m.x[u1.x2], &m.x[u1.x3]
		for i := 0; i < int(u1.lanes); i++ {
			d[i] = a[i] ^ b[i]
		}
		m.sites++ // vpxor writes an XMM destination
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		a, b, d = &m.x[u2.x1], &m.x[u2.x2], &m.x[u2.x3]
		for i := 0; i < int(u2.lanes); i++ {
			d[i] = a[i] ^ b[i]
		}
		m.sites++
		m.pc = pc + 2
		return nextContinue, nil

	case fVpxorMovMX:
		u1, u2 := &f.u1, &f.u2
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		a, b, d := &m.x[u1.x1], &m.x[u1.x2], &m.x[u1.x3]
		for i := 0; i < int(u1.lanes); i++ {
			d[i] = a[i] ^ b[i]
		}
		m.sites++
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		v, err := m.load64(m.uea(&u2.mem))
		if err != nil {
			return 0, err
		}
		m.x[u2.x2][0] = v
		m.x[u2.x2][1] = 0
		m.sites++
		m.pc = pc + 2
		return nextContinue, nil

	case fMovMXMovMR64:
		u1, u2 := &f.u1, &f.u2
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		v, err := m.load64(m.uea(&u1.mem))
		if err != nil {
			return 0, err
		}
		m.x[u1.x2][0] = v
		m.x[u1.x2][1] = 0
		m.sites++
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		v, err = m.load64(m.uea(&u2.mem))
		if err != nil {
			return 0, err
		}
		m.gpr[u2.r2] = v
		m.sites++
		m.pc = pc + 2
		return nextContinue, nil

	case fMovMR64MovRX:
		u1, u2 := &f.u1, &f.u2
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		v, err := m.load64(m.uea(&u1.mem))
		if err != nil {
			return 0, err
		}
		m.gpr[u1.r2] = v
		m.sites++
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		m.x[u2.x2][0] = m.gpr[u2.r1]
		m.x[u2.x2][1] = 0
		m.sites++
		m.pc = pc + 2
		return nextContinue, nil

	case fMovMR64PinsrqR:
		u1, u2 := &f.u1, &f.u2
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		v, err := m.load64(m.uea(&u1.mem))
		if err != nil {
			return 0, err
		}
		m.gpr[u1.r2] = v
		m.sites++
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		m.x[u2.x2][u2.lane] = m.gpr[u2.r1]
		m.sites++
		m.pc = pc + 2
		return nextContinue, nil

	case fPinsrqMMovMR64:
		u1, u2 := &f.u1, &f.u2
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		v, err := m.load64(m.uea(&u1.mem))
		if err != nil {
			return 0, err
		}
		m.x[u1.x2][u1.lane] = v
		m.sites++
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		v, err = m.load64(m.uea(&u2.mem))
		if err != nil {
			return 0, err
		}
		m.gpr[u2.r2] = v
		m.sites++
		m.pc = pc + 2
		return nextContinue, nil

	case fMovRXPinsrqM:
		u1, u2 := &f.u1, &f.u2
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		m.x[u1.x2][0] = m.gpr[u1.r1]
		m.x[u1.x2][1] = 0
		m.sites++
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		v, err := m.load64(m.uea(&u2.mem))
		if err != nil {
			return 0, err
		}
		m.x[u2.x2][u2.lane] = v
		m.sites++
		m.pc = pc + 2
		return nextContinue, nil

	case fVinsVins:
		u1, u2 := &f.u1, &f.u2
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		s0, s1 := m.x[u1.x1][0], m.x[u1.x1][1]
		if u1.x3 != u1.x2 {
			m.x[u1.x3] = m.x[u1.x2]
		}
		m.x[u1.x3][u1.lane*2] = s0
		m.x[u1.x3][u1.lane*2+1] = s1
		m.sites++
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		s0, s1 = m.x[u2.x1][0], m.x[u2.x1][1]
		if u2.x3 != u2.x2 {
			m.x[u2.x3] = m.x[u2.x2]
		}
		m.x[u2.x3][u2.lane*2] = s0
		m.x[u2.x3][u2.lane*2+1] = s1
		m.sites++
		m.pc = pc + 2
		return nextContinue, nil

	case fVinsVpxor:
		u1, u2 := &f.u1, &f.u2
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		s0, s1 := m.x[u1.x1][0], m.x[u1.x1][1]
		if u1.x3 != u1.x2 {
			m.x[u1.x3] = m.x[u1.x2]
		}
		m.x[u1.x3][u1.lane*2] = s0
		m.x[u1.x3][u1.lane*2+1] = s1
		m.sites++
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		a, b, d := &m.x[u2.x1], &m.x[u2.x2], &m.x[u2.x3]
		for i := 0; i < int(u2.lanes); i++ {
			d[i] = a[i] ^ b[i]
		}
		m.sites++
		m.pc = pc + 2
		return nextContinue, nil

	case fPinsrqRVins:
		u1, u2 := &f.u1, &f.u2
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		m.x[u1.x2][u1.lane] = m.gpr[u1.r1]
		m.sites++
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		s0, s1 := m.x[u2.x1][0], m.x[u2.x1][1]
		if u2.x3 != u2.x2 {
			m.x[u2.x3] = m.x[u2.x2]
		}
		m.x[u2.x3][u2.lane*2] = s0
		m.x[u2.x3][u2.lane*2+1] = s1
		m.sites++
		m.pc = pc + 2
		return nextContinue, nil

	case fMovRM64Vpxor:
		u1, u2 := &f.u1, &f.u2
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		if err := m.store64(m.uea(&u1.mem), m.gpr[u1.r1]); err != nil {
			return 0, err
		}
		if u1.destKind != asm.DestNone {
			m.sites++
		}
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		a, b, d := &m.x[u2.x1], &m.x[u2.x2], &m.x[u2.x3]
		for i := 0; i < int(u2.lanes); i++ {
			d[i] = a[i] ^ b[i]
		}
		m.sites++
		m.pc = pc + 2
		return nextContinue, nil

	case fMovRM64MovMX:
		u1, u2 := &f.u1, &f.u2
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		if err := m.store64(m.uea(&u1.mem), m.gpr[u1.r1]); err != nil {
			return 0, err
		}
		if u1.destKind != asm.DestNone {
			m.sites++
		}
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		v, err := m.load64(m.uea(&u2.mem))
		if err != nil {
			return 0, err
		}
		m.x[u2.x2][0] = v
		m.x[u2.x2][1] = 0
		m.sites++
		m.pc = pc + 2
		return nextContinue, nil

	case fXorRRJcc:
		u1, u2 := &f.u1, &f.u2
		m.dyn++
		m.scalarSpan += u1.cost.scalar
		m.vectorSpan += u1.cost.vector
		r := m.gpr[u1.r2] ^ m.gpr[u1.r1]
		m.setFlagsLogic(r, asm.W64)
		m.gpr[u1.r2] = r
		m.sites++
		m.dyn++
		m.scalarSpan += u2.cost.scalar
		m.vectorSpan += u2.cost.vector
		taken, err := m.cond(u2.cc)
		if err != nil {
			return 0, err
		}
		m.flushSpan()
		if taken {
			m.scalarSpan += u2.cost.takenExtra
			m.pc = int(u2.target)
		} else {
			m.pc = pc + 2
		}
		return nextContinue, nil
	}
	return 0, crashf("unknown fused kind %d", f.kind)
}

// FusionPair describes one fused opcode pattern with its static occurrence
// count and dynamic execution count on this machine.
type FusionPair struct {
	Pair  string // constituent opcodes joined by '+', e.g. "CMPQ+JNE"
	Sites int    // static fused groups of this pattern
	Hits  uint64 // dynamic fused executions
}

// FusionPairs aggregates the machine's fusion table by opcode pattern,
// sorted by dynamic hits descending (ties by name). Campaign drivers merge
// these across worker machines for the -dump-fusion report.
func (m *Machine) FusionPairs() []FusionPair {
	agg := map[string]*FusionPair{}
	for i := range m.fuops {
		f := &m.fuops[i]
		pair := m.pairName(f)
		p := agg[pair]
		if p == nil {
			p = &FusionPair{Pair: pair}
			agg[pair] = p
		}
		p.Sites++
		p.Hits += m.fuseHits[i]
	}
	out := make([]FusionPair, 0, len(agg))
	for _, p := range agg {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Pair < out[j].Pair
	})
	return out
}

func (m *Machine) pairName(f *fuop) string {
	h := int(f.head)
	switch f.span {
	case 3:
		return fmt.Sprintf("%s+%s+%s", m.insts[h].in.Op, m.insts[h+1].in.Op, m.insts[h+2].in.Op)
	default:
		return fmt.Sprintf("%s+%s", m.insts[h].in.Op, m.insts[h+1].in.Op)
	}
}
