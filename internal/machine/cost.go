package machine

import "ferrum/internal/asm"

type cost struct {
	scalar     float64
	vector     float64
	takenExtra float64 // additional scalar cost when a conditional jump is taken
}

// CostModel holds the per-operation cycle costs of the machine. The model
// is a dual-issue approximation of an out-of-order x86 core: scalar and
// vector operations accumulate on separate units, and within one basic
// block the units overlap, so a block costs max(scalar, vector). Constants
// are effective throughput costs calibrated against published Intel
// latency/throughput tables (Agner Fog's instruction tables for
// Haswell-Skylake class Xeons); see DESIGN.md.
//
// This structure is what lets the paper's performance result emerge from
// mechanism rather than curve-fitting: FERRUM pushes its duplication and
// checking work onto the otherwise-idle vector unit and replaces
// per-instruction checker branches with one branch per batch, while
// HYBRID-ASSEMBLY-LEVEL-EDDI pays scalar duplication, a flag-writing xor
// and a jne for every protected instruction.
type CostModel struct {
	MovRR   float64 // register-to-register move
	MovImm  float64 // immediate-to-register move
	Load    float64 // memory read
	Store   float64 // memory write
	ALU     float64 // add/sub/logic/shift/neg, register or immediate forms
	Lea     float64
	IMul    float64
	IDiv    float64
	Cqto    float64
	Setcc   float64
	Jmp     float64
	Jcc     float64 // static cost of a conditional jump
	JccTak  float64 // extra cost when taken (redirect penalty)
	Call    float64
	Ret     float64
	PushPop float64
	Out     float64

	// Vector-unit costs (the FERRUM check path).
	VMov      float64 // movq gpr<->xmm
	VPinsrReg float64 // pinsrq from register
	VPinsrMem float64 // pinsrq from memory (uses a load uop too)
	VInsert   float64 // vinserti128
	VPXor     float64
	VPTest    float64
}

// DefaultCostModel returns the calibrated cost model.
func DefaultCostModel() *CostModel {
	return &CostModel{
		MovRR:   0.5, // move elimination at rename
		MovImm:  0.5,
		Load:    2,
		Store:   2,
		ALU:     0.5, // 4-wide issue, 0.25c reciprocal throughput
		Lea:     0.5,
		IMul:    3,
		IDiv:    24,
		Cqto:    0.5,
		Setcc:   0.5,
		Jmp:     1,
		Jcc:     0.5, // predicted not-taken: near-free
		JccTak:  2.5, // taken-branch redirect
		Call:    5,
		Ret:     5,
		PushPop: 1.5,
		Out:     2,

		VMov:      0.5,
		VPinsrReg: 0.75,
		VPinsrMem: 1.5,
		VInsert:   1,
		VPXor:     0.5,
		VPTest:    1,
	}
}

// staticCost computes the per-execution cost of an instruction from its
// opcode and operand shapes.
func (c *CostModel) staticCost(in asm.Inst) cost {
	hasMemSrc := false
	hasMemDst := false
	for i, a := range in.A {
		if a.Kind == asm.KMem {
			if i == len(in.A)-1 {
				hasMemDst = true
			} else {
				hasMemSrc = true
			}
		}
	}
	switch in.Op {
	case asm.NOP, asm.HALT, asm.DETECT:
		return cost{}
	case asm.MOVQ, asm.MOVL, asm.MOVB, asm.MOVSLQ, asm.MOVZBQ:
		// SIMD transfer forms run on the vector unit.
		if len(in.A) == 2 && (in.A[0].Kind == asm.KXReg || in.A[1].Kind == asm.KXReg) {
			if hasMemSrc || hasMemDst {
				return cost{vector: c.VPinsrMem}
			}
			return cost{vector: c.VMov}
		}
		switch {
		case hasMemSrc:
			return cost{scalar: c.Load}
		case hasMemDst:
			return cost{scalar: c.Store}
		case in.A[0].Kind == asm.KImm:
			return cost{scalar: c.MovImm}
		default:
			return cost{scalar: c.MovRR}
		}
	case asm.LEA:
		return cost{scalar: c.Lea}
	case asm.ADDQ, asm.SUBQ, asm.ANDQ, asm.ORQ, asm.XORQ, asm.XORB,
		asm.SHLQ, asm.SHRQ, asm.SARQ, asm.NEGQ:
		s := c.ALU
		if hasMemSrc {
			s += c.Load
		}
		if hasMemDst {
			s += c.Load + c.Store
		}
		return cost{scalar: s}
	case asm.IMULQ:
		s := c.IMul
		if hasMemSrc {
			s += c.Load
		}
		return cost{scalar: s}
	case asm.IDIVQ:
		s := c.IDiv
		if hasMemSrc {
			s += c.Load
		}
		return cost{scalar: s}
	case asm.CQTO:
		return cost{scalar: c.Cqto}
	case asm.CMPQ, asm.CMPL, asm.CMPB, asm.TESTQ:
		s := c.ALU
		if hasMemSrc || hasMemDst {
			s += c.Load
		}
		return cost{scalar: s}
	case asm.JMP:
		return cost{scalar: c.Jmp}
	case asm.JE, asm.JNE, asm.JL, asm.JLE, asm.JG, asm.JGE:
		return cost{scalar: c.Jcc, takenExtra: c.JccTak}
	case asm.CALL:
		return cost{scalar: c.Call}
	case asm.RET:
		return cost{scalar: c.Ret}
	case asm.SETE, asm.SETNE, asm.SETL, asm.SETLE, asm.SETG, asm.SETGE:
		return cost{scalar: c.Setcc}
	case asm.PUSHQ, asm.POPQ:
		return cost{scalar: c.PushPop}
	case asm.PINSRQ:
		if in.A[1].Kind == asm.KMem {
			return cost{vector: c.VPinsrMem}
		}
		return cost{vector: c.VPinsrReg}
	case asm.VINSERTI128, asm.VINSERTI644:
		return cost{vector: c.VInsert}
	case asm.VPXOR:
		return cost{vector: c.VPXor}
	case asm.VPTEST:
		return cost{vector: c.VPTest}
	case asm.OUT:
		return cost{scalar: c.Out}
	}
	return cost{scalar: 1}
}
