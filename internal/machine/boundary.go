package machine

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"

	"ferrum/internal/asm"
)

// Boundary-state support for compositional campaigns: snapshot digests that
// fingerprint a machine state, a pristine-image-aware diff between two
// snapshots taken at the same site count, and the small accessors the
// compose/fi layers need to classify a faulty boundary against the golden
// checkpoint schedule.

// PC reports the snapshot's program counter (the next instruction to
// execute), in flat load order — the coordinate system of LocOf.
func (s *Snapshot) PC() int { return s.pc }

// CyclesNow reports the snapshot's cycle clock with its in-flight
// dual-issue spans folded in, mirroring the machine's mid-run clock. Golden
// checkpoints are captured before span flushing, so this — not the raw
// cycles field — is the comparable "time at this snapshot" value.
func (s *Snapshot) CyclesNow() float64 {
	if s.vectorSpan > s.scalarSpan {
		return s.cycles + s.vectorSpan
	}
	return s.cycles + s.scalarSpan
}

// Digest fingerprints the snapshot's architectural and cost-model state:
// registers, flags, pc, counters, cycle clock, output stream, and the dirty
// page delta (in canonical page order). Two runs of the same program that
// pass through bit-identical state at the same point produce equal digests;
// injection bookkeeping (injected/injCycles/injDyn) is deliberately
// excluded so the digest speaks only for program-visible state.
func (s *Snapshot) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, g := range s.gpr {
		w(g)
	}
	for _, x := range s.x {
		for _, lane := range x {
			w(lane)
		}
	}
	var fl uint64
	for i, f := range s.flags {
		if f {
			fl |= 1 << i
		}
	}
	w(fl)
	w(uint64(s.pc))
	w(s.dyn)
	w(s.sites)
	w(math.Float64bits(s.cycles))
	w(math.Float64bits(s.scalarSpan))
	w(math.Float64bits(s.vectorSpan))
	w(uint64(len(s.output)))
	for _, o := range s.output {
		w(o)
	}
	// Dirty pages are listed in first-touch order, which can differ between
	// two runs reaching the same state; hash them in page order.
	pages := append([]snapPage(nil), s.pages...)
	sort.Slice(pages, func(i, j int) bool { return pages[i].idx < pages[j].idx })
	w(uint64(len(pages)))
	for _, pg := range pages {
		w(uint64(pg.idx))
		h.Write(pg.data)
	}
	w(uint64(s.memSize))
	w(uint64(s.nInsts))
	return h.Sum64()
}

// ImageDigest fingerprints the pristine memory image every run starts from.
// Section fingerprints fold it in so cached propagation tables from a
// program with different data never match.
func (m *Machine) ImageDigest() uint64 {
	h := fnv.New64a()
	h.Write(m.memImage)
	return h.Sum64()
}

// LocOf maps a flat program counter back to its static location (enclosing
// function and index within it) — the coordinates the liveness analyses
// speak. ok is false for an out-of-range pc.
func (m *Machine) LocOf(pc int) (fn string, idx int, ok bool) {
	if pc < 0 || pc >= len(m.insts) {
		return "", 0, false
	}
	return m.insts[pc].fn, m.insts[pc].idx, true
}

// BoundaryDiff reports how a faulty boundary snapshot's architectural state
// differs from the golden checkpoint at the same site count. Cycle-clock
// fields are deliberately not compared: they are cost-model bookkeeping,
// not program state.
type BoundaryDiff struct {
	// Comparable is false when the snapshots are from different programs or
	// memory sizes; nothing else in the diff is meaningful then.
	Comparable bool
	PC         bool // program counters differ
	Dyn        bool // dynamic instruction or site counters differ
	Mem        bool // any memory byte differs (pristine-image aware)
	XMM        bool // any vector register differs
	Output     bool // the output streams emitted so far differ
	GPRs       []asm.Reg
	Flags      []asm.Flag
}

// Clean reports a boundary with no architectural difference at all — the
// injected error dissipated completely before the section boundary.
func (d BoundaryDiff) Clean() bool {
	return d.Comparable && !d.PC && !d.Dyn && !d.Mem && !d.XMM && !d.Output &&
		len(d.GPRs) == 0 && len(d.Flags) == 0
}

// DiffSnapshots compares two snapshots of this machine's program. Pages
// dirty in one snapshot but not the other are compared against the pristine
// image, so a page touched and restored to its original bytes does not
// register as a memory difference.
func (m *Machine) DiffSnapshots(a, b *Snapshot) BoundaryDiff {
	var d BoundaryDiff
	if a.memSize != b.memSize || a.nInsts != b.nInsts ||
		a.memSize != len(m.mem) || a.nInsts != len(m.insts) {
		return d
	}
	d.Comparable = true
	for r := 0; r < int(asm.NumReg); r++ {
		if a.gpr[r] != b.gpr[r] {
			d.GPRs = append(d.GPRs, asm.Reg(r))
		}
	}
	for x := range a.x {
		if a.x[x] != b.x[x] {
			d.XMM = true
			break
		}
	}
	for f := 0; f < int(asm.NumFlag); f++ {
		if a.flags[f] != b.flags[f] {
			d.Flags = append(d.Flags, asm.Flag(f))
		}
	}
	d.PC = a.pc != b.pc
	d.Dyn = a.dyn != b.dyn || a.sites != b.sites
	if len(a.output) != len(b.output) {
		d.Output = true
	} else {
		for i := range a.output {
			if a.output[i] != b.output[i] {
				d.Output = true
				break
			}
		}
	}
	d.Mem = m.diffPages(a, b)
	return d
}

func (m *Machine) diffPages(a, b *Snapshot) bool {
	other := make(map[int32][]byte, len(b.pages))
	for _, pg := range b.pages {
		other[pg.idx] = pg.data
	}
	seen := make(map[int32]bool, len(a.pages))
	for _, pg := range a.pages {
		bd, ok := other[pg.idx]
		if !ok {
			bd = m.imagePage(pg.idx, len(pg.data))
		}
		if !bytes.Equal(pg.data, bd) {
			return true
		}
		seen[pg.idx] = true
	}
	for _, pg := range b.pages {
		if seen[pg.idx] {
			continue
		}
		if !bytes.Equal(pg.data, m.imagePage(pg.idx, len(pg.data))) {
			return true
		}
	}
	return false
}

func (m *Machine) imagePage(idx int32, n int) []byte {
	lo := int(idx) << pageShift
	hi := lo + n
	if hi > len(m.memImage) {
		hi = len(m.memImage)
	}
	return m.memImage[lo:hi]
}
