package fi

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestJournalMetaCheckNamesField pins the Check contract: a mismatch names
// the first differing field and both values, instead of dumping two JSON
// blobs to eyeball.
func TestJournalMetaCheckNamesField(t *testing.T) {
	base := JournalMeta{Tool: "test", Seed: 7, Samples: 80, Benchmarks: []string{"bfs", "lud"}}
	if err := base.Check(base); err != nil {
		t.Fatalf("identical metas: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*JournalMeta)
		want   string
	}{
		{"seed", func(m *JournalMeta) { m.Seed = 9 }, "journal seed=7, invocation seed=9"},
		{"samples", func(m *JournalMeta) { m.Samples = 100 }, "journal samples=80, invocation samples=100"},
		{"benchmarks", func(m *JournalMeta) { m.Benchmarks = []string{"bfs"} }, "journal benchmarks=bfs,lud, invocation benchmarks=bfs"},
		{"prune", func(m *JournalMeta) { m.Prune = "full" }, "journal prune=, invocation prune=full"},
		{"shard", func(m *JournalMeta) { m.ShardIndex = 1 }, "journal shard=0, invocation shard=1"},
		{"shard_count", func(m *JournalMeta) { m.ShardCount = 4 }, "journal shard_count=0, invocation shard_count=4"},
	}
	for _, tc := range cases {
		other := base
		tc.mutate(&other)
		err := base.Check(other)
		if err == nil {
			t.Errorf("%s: differing metas passed Check", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the field as %q", tc.name, err, tc.want)
		}
	}
	// Seed differs before samples in declaration order; only the first
	// differing field is reported.
	other := base
	other.Seed, other.Samples = 9, 100
	if err := base.Check(other); err == nil || !strings.Contains(err.Error(), "seed=") ||
		strings.Contains(err.Error(), "samples=") {
		t.Errorf("multi-field mismatch reported %q, want first field (seed) only", err)
	}
}

// failSink is a JournalSink whose writes start failing after allow bytes
// worth of calls have gone through — a full disk, from the journal's side.
type failSink struct {
	allow int // writes to accept before failing
	wrote int
}

var errSinkFull = errors.New("sink full")

func (s *failSink) Write(p []byte) (int, error) {
	if s.wrote >= s.allow {
		return 0, errSinkFull
	}
	s.wrote++
	return len(p), nil
}
func (s *failSink) Sync() error  { return nil }
func (s *failSink) Close() error { return nil }

// TestJournalWriteErrorFailsCampaign pins the swallowed-write-error fix: a
// journaled campaign whose journal latched a write failure must fail with a
// wrapped error, not return success over a silently truncated journal.
func TestJournalWriteErrorFailsCampaign(t *testing.T) {
	sink := &failSink{allow: 1} // meta record goes through, everything after fails
	j, err := NewStreamJournal(sink, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	tgt := asmTarget(t, false)
	c := Campaign{Samples: 40, Seed: 3, Workers: 1, Journal: j, Key: "cell"}
	_, err = RunAsmCampaign(tgt, c)
	if err == nil {
		t.Fatal("campaign with a failing journal returned success")
	}
	if !errors.Is(err, errSinkFull) {
		t.Errorf("campaign error %v does not wrap the sink error", err)
	}
	if !strings.Contains(err.Error(), "journal write failed") {
		t.Errorf("campaign error %q does not identify the journal", err)
	}
}

// TestNoJournalPastEarlyStop pins the post-stop journaling fix. The plan
// order is crafted so the early-stop decision fires on the first plan of a
// batch: generation index 63 is deferred to position 64, so recording it
// completes the 64-plan prefix (CIWidth 0.25 exceeds the worst-case Wilson
// width there) while the worker still holds 15 in-hand plans. Those plans
// execute — cancellation and stopping are batch-granular — but must not be
// journaled: finish() discards them, and journaling them would leave more
// plan records than the fi.* totals account for.
func TestNoJournalPastEarlyStop(t *testing.T) {
	var plans []plannedFault
	for i := 0; i < 63; i++ {
		plans = append(plans, plannedFault{idx: i, site: uint64(i)})
	}
	plans = append(plans, plannedFault{idx: 64, site: 64})
	plans = append(plans, plannedFault{idx: 63, site: 63})
	for i := 65; i < 128; i++ {
		plans = append(plans, plannedFault{idx: i, site: uint64(i)})
	}
	path := journalPath(t)
	j, err := CreateJournal(path, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Samples: len(plans), CIWidth: 0.25, Workers: 1, Journal: j, Key: "cell"}
	po, err := runPlans(c, plans, func() (func(plannedFault) planResult, error) {
		return func(plannedFault) planResult { return planResult{o: Benign} }, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !po.early || po.samples != earlyStopStride {
		t.Fatalf("stopped=%v at %d samples, want early stop at %d", po.early, po.samples, earlyStopStride)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cs := st.Cell("cell")
	// 65 records: the 64 counted prefix plans, plus index 64 — executed and
	// journaled before the stop decision existed, which resume replays
	// harmlessly. The 15 in-hand plans finished after the stop (indices
	// 65..79) are the bug: pre-fix they were journaled too (80 records).
	if want := earlyStopStride + 1; len(cs.Plans) != want {
		t.Errorf("early-stopped campaign journaled %d plans, want exactly %d", len(cs.Plans), want)
	}
	for i := range cs.Plans {
		if i > earlyStopStride {
			t.Errorf("journal holds plan %d, past the truncation point", i)
		}
	}
}

// TestNoJournalPastCancel: the same batch-in-hand rule for cancellation —
// plans finishing after Cancel fired are discarded by finish() and must not
// reach the journal.
func TestNoJournalPastCancel(t *testing.T) {
	var plans []plannedFault
	for i := 0; i < 32; i++ {
		plans = append(plans, plannedFault{idx: i, site: uint64(i)})
	}
	path := journalPath(t)
	j, err := CreateJournal(path, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	c := Campaign{Samples: len(plans), Workers: 1, Cancel: cancel, Journal: j, Key: "cell"}
	_, err = runPlans(c, plans, func() (func(plannedFault) planResult, error) {
		return func(p plannedFault) planResult {
			if p.idx == 20 { // mid-batch: positions 21..31 are still in hand
				close(cancel)
			}
			return planResult{o: Benign}
		}, nil
	}, nil)
	if !errors.Is(err, ErrCampaignCanceled) {
		t.Fatalf("err = %v, want ErrCampaignCanceled", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Plans 0..19 were recorded before Cancel fired; plan 20's own record —
	// and everything after — sees the closed channel and is discarded.
	if cs := st.Cell("cell"); len(cs.Plans) != 20 {
		t.Errorf("canceled campaign journaled %d plans, want 20", len(cs.Plans))
	}
}

// TestShardPlansPartition: the round-robin shard partition is exact — every
// generation index lands in exactly one shard, shard-local indices are
// dense ranks, and ShardSpec.global inverts the re-indexing in closed form.
func TestShardPlansPartition(t *testing.T) {
	const samples = 103 // deliberately not a multiple of the shard count
	plans := mustPlans(t, Campaign{Samples: samples, Seed: 42}, 17, nil)
	for _, count := range []int{2, 3, 4} {
		seen := map[int]plannedFault{}
		for s := 0; s < count; s++ {
			spec := ShardSpec{Index: s, Count: count}
			for local, p := range shardPlans(plans, spec) {
				if p.idx != local {
					t.Fatalf("count=%d shard=%d: plan at rank %d carries local index %d", count, s, local, p.idx)
				}
				g := spec.global(local)
				if _, dup := seen[g]; dup {
					t.Fatalf("count=%d: generation index %d assigned to two shards", count, g)
				}
				seen[g] = p
			}
		}
		if len(seen) != samples {
			t.Fatalf("count=%d: shards cover %d of %d plans", count, len(seen), samples)
		}
		for g, p := range seen {
			want := plans[g]
			if p.site != want.site || p.bit != want.bit {
				t.Fatalf("count=%d: generation index %d mapped to plan %+v, want %+v", count, g, p, want)
			}
		}
	}
}

// TestShardSpecCheck: invalid or incompatible shard specs are rejected
// before any work happens.
func TestShardSpecCheck(t *testing.T) {
	tgt := asmTarget(t, false)
	for _, tc := range []struct {
		c    Campaign
		want string
	}{
		{Campaign{Samples: 10, Shard: ShardSpec{Index: 3, Count: 2}}, "out of range"},
		{Campaign{Samples: 10, Shard: ShardSpec{Index: 1}}, "index without a shard count"},
		{Campaign{Samples: 10, Shard: ShardSpec{Count: 2}, Prune: PruneFull}, "incompatible with prune"},
		{Campaign{Samples: 10, Shard: ShardSpec{Count: 2}, CIWidth: 0.1}, "incompatible with CI-width"},
	} {
		_, err := RunAsmCampaign(tgt, tc.c)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("shard %+v: err = %v, want %q", tc.c.Shard, err, tc.want)
		}
	}
}

// testShardMergeEquivalence runs one campaign single-process and as a set
// of sharded campaigns, then requires the merged shard journals and Results
// to reproduce the single-process run byte for byte in canonical form.
func testShardMergeEquivalence(t *testing.T, count int, protect bool) {
	t.Helper()
	inst := equivBench(t, "bfs")
	tgt := equivAsmTarget(t, inst, protect)
	base := Campaign{Samples: 80, Seed: 12345, MaxSteps: equivSteps, Workers: 2}
	meta := JournalMeta{Tool: "test", Seed: base.Seed, Samples: base.Samples}

	singlePath := journalPath(t)
	j, err := CreateJournal(singlePath, meta)
	if err != nil {
		t.Fatal(err)
	}
	c := base
	c.Journal, c.Key = j, "cell"
	want, err := RunAsmCampaign(tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	singleState, err := LoadJournal(singlePath)
	if err != nil {
		t.Fatal(err)
	}

	var states []*JournalState
	var results []Result
	for s := 0; s < count; s++ {
		smeta := meta
		smeta.ShardIndex, smeta.ShardCount = s, count
		path := fmt.Sprintf("%s.shard%d", singlePath, s)
		sj, err := CreateJournal(path, smeta)
		if err != nil {
			t.Fatal(err)
		}
		sc := base
		sc.Shard = ShardSpec{Index: s, Count: count}
		sc.Journal, sc.Key = sj, "cell"
		res, err := RunAsmCampaign(tgt, sc)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", s, count, err)
		}
		if err := sj.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := LoadJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		states = append(states, st)
		results = append(results, res)
	}

	merged, err := MergeShardResults(results)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Samples != want.Samples || merged.Counts != want.Counts {
		t.Errorf("merged result counts %v (n=%d) != single-process %v (n=%d)",
			merged.Counts, merged.Samples, want.Counts, want.Samples)
	}
	if merged.DynSites != want.DynSites || merged.Cycles != want.Cycles {
		t.Errorf("merged golden-run fields differ from single-process run")
	}
	if merged.Latency.N() != want.Latency.N() {
		t.Errorf("merged latency has %d samples, single-process %d", merged.Latency.N(), want.Latency.N())
	}

	mergedState, err := MergeShardStates(states)
	if err != nil {
		t.Fatal(err)
	}
	var single, sharded bytes.Buffer
	if err := singleState.WriteCanonical(&single); err != nil {
		t.Fatal(err)
	}
	if err := mergedState.WriteCanonical(&sharded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(single.Bytes(), sharded.Bytes()) {
		t.Errorf("canonical merged journal differs from single-process canonical journal:\nsingle:\n%s\nmerged:\n%s",
			&single, &sharded)
	}
}

func TestShardMergeEquivalenceRaw(t *testing.T) {
	for _, count := range []int{2, 4} {
		testShardMergeEquivalence(t, count, false)
	}
}

func TestShardMergeEquivalenceProtected(t *testing.T) {
	testShardMergeEquivalence(t, 2, true)
}

// TestShardMergeEquivalenceIR: the sharding and merge machinery is
// level-agnostic — IR campaigns shard identically.
func TestShardMergeEquivalenceIR(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivIRTarget(t, inst, false)
	base := Campaign{Samples: 60, Seed: 12345, MaxSteps: equivSteps, Workers: 2}
	want, err := RunIRCampaign(tgt, base)
	if err != nil {
		t.Fatal(err)
	}
	var results []Result
	for s := 0; s < 3; s++ {
		sc := base
		sc.Shard = ShardSpec{Index: s, Count: 3}
		res, err := RunIRCampaign(tgt, sc)
		if err != nil {
			t.Fatalf("shard %d/3: %v", s, err)
		}
		results = append(results, res)
	}
	merged, err := MergeShardResults(results)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Samples != want.Samples || merged.Counts != want.Counts {
		t.Errorf("merged IR result counts %v (n=%d) != single-process %v (n=%d)",
			merged.Counts, merged.Samples, want.Counts, want.Samples)
	}
	if merged.Latency.N() != want.Latency.N() || merged.Latency.Unit != want.Latency.Unit {
		t.Errorf("merged IR latency (%s, n=%d) != single-process (%s, n=%d)",
			merged.Latency.Unit, merged.Latency.N(), want.Latency.Unit, want.Latency.N())
	}
}

// TestMergeShardStatesRejects: incomplete shard sets, duplicate indices and
// cross-configuration shards refuse to merge.
func TestMergeShardStatesRejects(t *testing.T) {
	mk := func(index, count int, seed int64) *JournalState {
		return &JournalState{
			Meta:  JournalMeta{Tool: "test", Seed: seed, Samples: 80, ShardIndex: index, ShardCount: count},
			cells: map[string]*CellState{},
		}
	}
	if _, err := MergeShardStates(nil); err == nil {
		t.Error("empty shard set merged")
	}
	if _, err := MergeShardStates([]*JournalState{mk(0, 3, 1), mk(1, 3, 1)}); err == nil {
		t.Error("incomplete shard set (2 of 3) merged")
	}
	if _, err := MergeShardStates([]*JournalState{mk(0, 2, 1), mk(0, 2, 1)}); err == nil {
		t.Error("duplicate shard index merged")
	}
	if _, err := MergeShardStates([]*JournalState{mk(0, 2, 1), mk(1, 2, 2)}); err == nil {
		t.Error("shards from different seeds merged")
	} else if !strings.Contains(err.Error(), "seed=") {
		t.Errorf("cross-seed merge error %q does not name the field", err)
	}
}
