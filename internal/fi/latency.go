package fi

import "sort"

// Detection latency is the paper's "fast" in fast error detection made
// measurable: for every injected fault, the distance between the injection
// instant and the run's terminal event — a detector trap, a crash, the hang
// cutoff, or a normal exit. Assembly-level campaigns measure it in machine
// cycles (the dual-issue cycle model), IR-level campaigns in retired IR
// instructions; LatencySummary.Unit names which.
//
// Latencies aggregate over executed plans only: plans answered statically
// by pruning, or replayed from a journal cell record, contribute their
// journaled histograms but never a fresh observation. Everything here is
// plain (non-atomic) bookkeeping built after the injection loop — the
// per-plan hot path only carries a float64 out of the engine.

// LatencyBuckets are the shared histogram bounds for detection latency:
// powers of two from 1 to 2^20, inclusive upper bounds, with an implicit
// +Inf bucket. One fixed geometry everywhere — fi.Result, the obs
// registry, the /metrics exposition and fistat's journal replay — is what
// makes the four surfaces reconcile count-for-count.
var LatencyBuckets = func() []float64 {
	b := make([]float64, 0, 21)
	for v := 1.0; v <= 1<<20; v *= 2 {
		b = append(b, v)
	}
	return b
}()

// LatencyHist is a fixed-bucket latency histogram over LatencyBuckets.
// Counts[i] holds observations ≤ LatencyBuckets[i]; the final element is
// the +Inf bucket. Counts is nil until the first observation, so empty
// histograms serialise to nothing in journal cell records.
type LatencyHist struct {
	Counts []int64 `json:"counts,omitempty"`
	Sum    float64 `json:"sum,omitempty"`
	N      int64   `json:"n,omitempty"`
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(v float64) {
	if h.Counts == nil {
		h.Counts = make([]int64, len(LatencyBuckets)+1)
	}
	h.Counts[sort.SearchFloat64s(LatencyBuckets, v)]++
	h.Sum += v
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
}

// Merge folds another histogram into this one. Histograms with a different
// bucket count (a foreign journal) are ignored rather than misaligned.
func (h *LatencyHist) Merge(o LatencyHist) {
	if o.N == 0 {
		return
	}
	if h.Counts == nil {
		h.Counts = make([]int64, len(o.Counts))
	}
	if len(h.Counts) != len(o.Counts) {
		return
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Sum += o.Sum
	if h.N == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.N += o.N
}

// Mean returns the average observed latency (0 when empty).
func (h LatencyHist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Quantile returns an upper-bound estimate of the q-quantile from the
// bucket counts: the smallest bucket bound whose cumulative count reaches
// q·N. The +Inf bucket reports the observed maximum.
func (h LatencyHist) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	target := int64(float64(h.N)*q + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(LatencyBuckets) {
				return LatencyBuckets[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// LatencySummary is a campaign's detection-latency telemetry: one
// histogram per outcome class, in engine units.
type LatencySummary struct {
	// Unit is "cycles" for assembly-level campaigns (machine cycle model)
	// and "insts" for IR-level campaigns (retired IR instructions); empty
	// on results that predate latency telemetry (old journal cell records).
	Unit      string                   `json:"unit,omitempty"`
	ByOutcome [numOutcomes]LatencyHist `json:"by_outcome"`
}

// Observe records one plan's latency under its outcome class.
func (s *LatencySummary) Observe(o Outcome, v float64) { s.ByOutcome[o].Observe(v) }

// Merge folds another summary into this one; an empty receiver adopts the
// other's unit. Mixed units refuse to merge (nothing sensible to report).
func (s *LatencySummary) Merge(o LatencySummary) {
	if o.N() == 0 {
		return
	}
	if s.Unit == "" {
		s.Unit = o.Unit
	}
	if s.Unit != o.Unit {
		return
	}
	for i := range s.ByOutcome {
		s.ByOutcome[i].Merge(o.ByOutcome[i])
	}
}

// N is the total number of latency observations across all outcomes.
func (s LatencySummary) N() int64 {
	var n int64
	for i := range s.ByOutcome {
		n += s.ByOutcome[i].N
	}
	return n
}

// Hist returns the histogram for one outcome class.
func (s LatencySummary) Hist(o Outcome) LatencyHist { return s.ByOutcome[o] }

// aggregateLatency builds the per-outcome latency summary from executed
// plan outcomes. n bounds the aggregation to the effective sample prefix
// (CI-width early stopping truncates there); pruned campaigns pass the
// dense executed plan set, whose indices lats/has are already keyed by.
func aggregateLatency(unit string, n int, outcomes []Outcome, lats []float64, has []bool) LatencySummary {
	s := LatencySummary{Unit: unit}
	for i := 0; i < n && i < len(lats); i++ {
		if has[i] {
			s.ByOutcome[outcomes[i]].Observe(lats[i])
		}
	}
	return s
}
