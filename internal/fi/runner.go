package fi

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ferrum/internal/obs"
)

// ErrCampaignCanceled is returned by campaign runners when Campaign.Cancel
// fires before the fault plan completes. Cancellation is cooperative:
// workers finish the batch in hand and stop at the next batch boundary, so
// a canceled campaign returns promptly but never mid-plan.
var ErrCampaignCanceled = errors.New("fi: campaign canceled")

// earlyStopStride is how often (in completed-plan-prefix length) the
// CI-width early-stopping rule is evaluated. Evaluating at fixed prefix
// lengths — rather than "whenever a worker finishes" — is what makes early
// stopping deterministic: the completed prefix passes through the same
// lengths in the same order no matter how many workers raced to fill it.
const earlyStopStride = 64

// planRun tracks one campaign's plan execution: which plans are done, their
// outcomes by original plan index, the longest contiguous completed prefix,
// and the early-stop decision derived from it.
//
// Early stopping works on the completed prefix only. Outcomes are recorded
// by generation index; each time the prefix extends across a multiple of
// earlyStopStride, the Wilson interval of the prefix SDC rate is tested
// against the requested width. The first qualifying length wins and the
// result is truncated there — later-finishing plans beyond it are discarded
// — so the stopped Result is a pure function of the plan sequence, not of
// worker scheduling.
type planRun struct {
	mu           sync.Mutex
	todo         []plannedFault
	next         int
	n            int
	ciWidth      float64
	cancel       <-chan struct{}
	canceled     bool
	firstErr     error
	done         []bool
	outcomes     []Outcome
	lats         []float64
	hasLat       []bool
	fbs          []bool
	prefixLen    int
	prefixCounts [numOutcomes]int
	stopped      bool
	stopAt       int
	stopCounts   [numOutcomes]int
}

// planResult is what a campaign worker returns for one executed plan: the
// classified outcome plus the fault's detection latency — the distance from
// injection to the terminal event, in engine units (machine cycles for asm,
// retired instructions for IR). hasLat is false when the fault was never
// applied (the run should always reach its sampled site, but a missing
// injection must not masquerade as a zero-latency detection).
type planResult struct {
	o      Outcome
	lat    float64
	hasLat bool
	// fb marks a composed-campaign plan that could not be answered at its
	// section boundary and ran end-to-end instead (the soundness fallback).
	// Always false outside compose mode.
	fb bool
}

// planOutcomes is what runPlans hands back: the effective sample count
// (truncated on early stop), its outcome counts, and the raw per-index
// outcome slice for callers that attribute outcomes to plans (profiling).
// Only outcomes[:samples] is guaranteed fully populated.
type planOutcomes struct {
	samples  int
	counts   [numOutcomes]int
	early    bool
	outcomes []Outcome
	// lats/hasLat carry per-index detection latencies for the plans that
	// executed (fresh or journal-replayed); indexed like outcomes.
	lats   []float64
	hasLat []bool
	// fbs marks composed-campaign fallback plans, indexed like outcomes.
	fbs []bool
}

// grab hands out the next batch of pending plans, or nil when the run is
// exhausted, early-stopped, or canceled.
func (pr *planRun) grab(nb int) []plannedFault {
	if pr.cancel != nil {
		select {
		case <-pr.cancel:
			pr.mu.Lock()
			pr.canceled = true
			pr.mu.Unlock()
			return nil
		default:
		}
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.stopped || pr.canceled || pr.next >= len(pr.todo) {
		return nil
	}
	end := pr.next + nb
	if end > len(pr.todo) {
		end = len(pr.todo)
	}
	batch := pr.todo[pr.next:end]
	pr.next = end
	return batch
}

// record stores one executed plan's result and reports whether the plan
// still counts toward the campaign — false once the run is canceled or the
// plan falls beyond an early-stop truncation point. Workers finishing their
// in-hand batch after a stop/cancel get false and must not journal the
// plan: finish() discards it, so journaling it would leave the journal with
// more plan records than the result (and the fi.* counters) account for.
func (pr *planRun) record(idx int, r planResult) bool {
	if pr.cancel != nil {
		// Re-check cancellation here, not only in grab(): a batch in hand
		// when Cancel fires still runs to the batch boundary, and its
		// remaining plans must be discarded, not journaled.
		select {
		case <-pr.cancel:
			pr.mu.Lock()
			pr.canceled = true
			pr.mu.Unlock()
		default:
		}
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.canceled || pr.done[idx] {
		return false
	}
	pr.done[idx] = true
	pr.outcomes[idx] = r.o
	if r.hasLat {
		pr.lats[idx] = r.lat
		pr.hasLat[idx] = true
	}
	pr.fbs[idx] = r.fb
	pr.advanceLocked()
	// A plan that itself completed the qualifying prefix (idx < stopAt)
	// counts; anything at or past the truncation point is discarded by
	// finish() and must stay out of the journal.
	return !pr.stopped || idx < pr.stopAt
}

// advanceLocked extends the completed prefix one plan at a time, testing
// the early-stop rule at every stride boundary the prefix crosses so the
// smallest qualifying length is found regardless of how far one record()
// call advanced it.
func (pr *planRun) advanceLocked() {
	if pr.stopped {
		return
	}
	for pr.prefixLen < pr.n && pr.done[pr.prefixLen] {
		pr.prefixCounts[pr.outcomes[pr.prefixLen]]++
		pr.prefixLen++
		if pr.ciWidth > 0 && pr.prefixLen < pr.n && pr.prefixLen%earlyStopStride == 0 {
			lo, hi := wilson(float64(pr.prefixCounts[SDC]), float64(pr.prefixLen))
			if hi-lo <= pr.ciWidth {
				pr.stopped = true
				pr.stopAt = pr.prefixLen
				pr.stopCounts = pr.prefixCounts
				return
			}
		}
	}
}

func (pr *planRun) fail(err error) {
	pr.mu.Lock()
	if pr.firstErr == nil {
		pr.firstErr = err
	}
	pr.mu.Unlock()
}

func (pr *planRun) finish() (planOutcomes, error) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	po := planOutcomes{outcomes: pr.outcomes, lats: pr.lats, hasLat: pr.hasLat, fbs: pr.fbs}
	switch {
	case pr.firstErr != nil:
		return po, pr.firstErr
	case pr.stopped:
		po.samples, po.counts, po.early = pr.stopAt, pr.stopCounts, true
	case pr.prefixLen == pr.n:
		po.samples, po.counts = pr.n, pr.prefixCounts
	default:
		return po, ErrCampaignCanceled
	}
	return po, nil
}

// journalPlan appends one completed plan to the campaign's journal, if any:
// its outcome, the dynamic fault site it hit, and the measured detection
// latency (when the fault was injected).
func (c Campaign) journalPlan(p plannedFault, r planResult) {
	if c.Journal != nil && c.Key != "" {
		c.Journal.Plan(c.Key, p.idx, r.o, p.site, r.lat, r.hasLat, r.fb)
	}
}

// journalCell appends the completed campaign's cell record, if journaling.
func (c Campaign) journalCell(res Result) {
	if c.Journal != nil && c.Key != "" {
		c.Journal.Cell(c.Key, res)
	}
}

// journalErr surfaces a latched journal write failure at the campaign
// boundary. Journal.append latches the first error and drops every later
// record; without this check a full disk silently yields a truncated
// journal that -resume would happily treat as valid, so a journaled
// campaign whose journal broke must fail, not succeed with quiet data loss.
func (c Campaign) journalErr() error {
	if c.Journal == nil || c.Key == "" {
		return nil
	}
	if err := c.Journal.Err(); err != nil {
		return fmt.Errorf("fi: campaign %q: journal write failed: %w", c.Key, err)
	}
	return nil
}

// runPlans executes the fault plan with the campaign's worker pool: prior
// (journal-replayed) outcomes are prefilled without running anything, plans
// answered by the compose section cache are prefilled AND journaled (the
// journal must stay complete even when nothing executed), each freshly
// executed plan is journaled, cancellation is honoured at batch boundaries,
// and the CI-width early-stop rule is applied to the completed prefix.
// plans may be in any order (the checkpointing path sorts them by site);
// outcome bookkeeping is always by the plan's generation index, so results
// are independent of both ordering and worker count.
func runPlans(c Campaign, plans []plannedFault,
	newWorker func() (func(plannedFault) planResult, error),
	cached map[int]planResult) (planOutcomes, error) {
	n := len(plans)
	pr := &planRun{
		n:        n,
		ciWidth:  c.CIWidth,
		cancel:   c.Cancel,
		done:     make([]bool, n),
		outcomes: make([]Outcome, n),
		lats:     make([]float64, n),
		hasLat:   make([]bool, n),
		fbs:      make([]bool, n),
	}
	prior := c.Prior
	prefill := func(idx int, r planResult) {
		pr.done[idx] = true
		pr.outcomes[idx] = r.o
		if r.hasLat {
			pr.lats[idx] = r.lat
			pr.hasLat[idx] = true
		}
		pr.fbs[idx] = r.fb
	}
	prefilled, replayed := 0, 0
	if (prior != nil && len(prior.Plans) > 0) || len(cached) > 0 {
		for _, p := range plans {
			if prior != nil && p.idx < n {
				if o, ok := prior.Plans[p.idx]; ok {
					r := planResult{o: o, fb: prior.PlanFB[p.idx]}
					if l, ok := prior.PlanLats[p.idx]; ok {
						r.lat, r.hasLat = l, true
					}
					prefill(p.idx, r)
					prefilled++
					replayed++
					continue
				}
			}
			if r, ok := cached[p.idx]; ok && p.idx < n {
				prefill(p.idx, r)
				c.journalPlan(p, r)
				prefilled++
				continue
			}
			pr.todo = append(pr.todo, p)
		}
		pr.advanceLocked()
	} else {
		pr.todo = plans
	}
	if replayed > 0 {
		c.Obs.Counter(obs.MJournalSkippedPlans).Add(int64(replayed))
	}
	var done int64
	report := func(k int) {
		if c.Progress != nil && k > 0 {
			c.Progress(int(atomic.AddInt64(&done, int64(k))))
		}
	}
	report(prefilled)

	runBatch := func(w func(plannedFault) planResult, batch []plannedFault) {
		for _, p := range batch {
			r := w(p)
			if pr.record(p.idx, r) {
				c.journalPlan(p, r)
			}
		}
		report(len(batch))
	}

	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pr.todo) {
		workers = len(pr.todo)
	}
	if workers <= 1 {
		if len(pr.todo) > 0 {
			w, err := newWorker()
			if err != nil {
				return planOutcomes{}, err
			}
			for {
				batch := pr.grab(16)
				if batch == nil {
					break
				}
				runBatch(w, batch)
			}
		}
		return pr.finish()
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := newWorker()
			if err != nil {
				pr.fail(err)
				return
			}
			for {
				batch := pr.grab(16)
				if batch == nil {
					return
				}
				runBatch(w, batch)
			}
		}()
	}
	wg.Wait()
	return pr.finish()
}
