package fi

import (
	"math"
	"sync"
	"testing"

	"ferrum/internal/machine"

	"ferrum/internal/backend"
	"ferrum/internal/ferrumpass"
	"ferrum/internal/ir"
)

const memSize = 1 << 20

const loopSrc = `
func @main(%n, %base) {
entry:
  %acc = alloca 1
  %i = alloca 1
  store 0, %acc
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = icmp slt %iv, %n
  br %c, body, done
body:
  %p = gep %base, %iv
  %v = load %p
  %a = load %acc
  %a2 = add %a, %v
  store %a2, %acc
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  %r = load %acc
  out %r
  ret %r
}
`

func loadArray(w MemWriter) error {
	for i, v := range []uint64{3, 1, 4, 1, 5, 9, 2, 6} {
		if err := w.WriteWordImage(8192+8*uint64(i), v); err != nil {
			return err
		}
	}
	return nil
}

func asmTarget(t *testing.T, protect bool) AsmTarget {
	t.Helper()
	mod, err := ir.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	if protect {
		prog, _, err = ferrumpass.Protect(prog, ferrumpass.Config{})
		if err != nil {
			t.Fatal(err)
		}
	}
	return AsmTarget{Prog: prog, MemSize: memSize, Args: []uint64{8, 8192}, Setup: loadArray}
}

func TestAsmCampaignRawHasSDCs(t *testing.T) {
	res, err := RunAsmCampaign(asmTarget(t, false), Campaign{Samples: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 400 {
		t.Fatalf("samples = %d", res.Samples)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != 400 {
		t.Fatalf("counts sum to %d", total)
	}
	if res.Count(SDC) == 0 {
		t.Error("unprotected program showed no SDCs")
	}
	if res.Count(Detected) != 0 {
		t.Error("unprotected program reported detections")
	}
	if res.Golden[0] != 31 {
		t.Errorf("golden output = %v", res.Golden)
	}
}

func TestAsmCampaignFerrumFullCoverage(t *testing.T) {
	raw, err := RunAsmCampaign(asmTarget(t, false), Campaign{Samples: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := RunAsmCampaign(asmTarget(t, true), Campaign{Samples: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if prot.Count(SDC) != 0 {
		t.Errorf("FERRUM SDCs = %d, want 0", prot.Count(SDC))
	}
	if prot.Count(Detected) == 0 {
		t.Error("FERRUM never detected anything")
	}
	if cov := Coverage(raw, prot); cov != 1 {
		t.Errorf("coverage = %v, want 1", cov)
	}
	if oh := Overhead(raw.Cycles, prot.Cycles); oh <= 0 {
		t.Errorf("overhead = %v, want positive", oh)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a, err := RunAsmCampaign(asmTarget(t, false), Campaign{Samples: 200, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAsmCampaign(asmTarget(t, false), Campaign{Samples: 200, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts != b.Counts {
		t.Errorf("worker count changed results: %v vs %v", a.Counts, b.Counts)
	}
	c, err := RunAsmCampaign(asmTarget(t, false), Campaign{Samples: 200, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts == c.Counts {
		t.Log("different seeds produced identical counts (possible but unlikely)")
	}
}

func TestIRCampaign(t *testing.T) {
	mod, err := ir.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunIRCampaign(IRTarget{Mod: mod, MemSize: memSize, Args: []uint64{8, 8192}, Setup: loadArray},
		Campaign{Samples: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(SDC) == 0 {
		t.Error("unprotected IR showed no SDCs")
	}
	if res.DynSites == 0 {
		t.Error("no IR sites")
	}
}

// TestResultCyclesShape pins the documented Result.Cycles contract: only
// assembly-level campaigns carry the golden-run cycle count; the IR
// interpreter has no cycle model, so IR campaigns leave the field zero.
func TestResultCyclesShape(t *testing.T) {
	asmRes, err := RunAsmCampaign(asmTarget(t, false), Campaign{Samples: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if asmRes.Cycles <= 0 {
		t.Errorf("asm campaign Cycles = %v, want positive golden-run cycles", asmRes.Cycles)
	}
	mod, err := ir.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	irRes, err := RunIRCampaign(IRTarget{Mod: mod, MemSize: memSize, Args: []uint64{8, 8192}, Setup: loadArray},
		Campaign{Samples: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if irRes.Cycles != 0 {
		t.Errorf("IR campaign Cycles = %v, want 0 (no cycle model)", irRes.Cycles)
	}
}

// TestCampaignProgress: the Progress hook reports monotonically increasing
// cumulative counts ending exactly at Samples, in serial and parallel runs.
func TestCampaignProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var seen []int
		_, err := RunAsmCampaign(asmTarget(t, false), Campaign{
			Samples: 100, Seed: 5, Workers: workers,
			Progress: func(done int) {
				mu.Lock()
				seen = append(seen, done)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) == 0 {
			t.Fatalf("workers=%d: progress never called", workers)
		}
		max := 0
		for _, n := range seen {
			if n > max {
				max = n
			}
		}
		if max != 100 {
			t.Errorf("workers=%d: max progress = %d, want 100", workers, max)
		}
		if workers == 1 {
			// Serial campaigns report in order; parallel callbacks may
			// deliver cumulative counts out of order.
			for i := 1; i < len(seen); i++ {
				if seen[i] <= seen[i-1] {
					t.Errorf("progress not increasing: %v", seen)
					break
				}
			}
		}
	}
}

func TestCoverageMetric(t *testing.T) {
	mk := func(sdc, samples int) Result {
		var r Result
		r.Samples = samples
		r.Counts[SDC] = sdc
		return r
	}
	if got := Coverage(mk(100, 1000), mk(0, 1000)); got != 1 {
		t.Errorf("full coverage = %v", got)
	}
	if got := Coverage(mk(100, 1000), mk(50, 1000)); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("half coverage = %v", got)
	}
	if got := Coverage(mk(100, 1000), mk(100, 1000)); got != 0 {
		t.Errorf("no coverage = %v", got)
	}
	if got := Coverage(mk(0, 1000), mk(0, 1000)); got != 1 {
		t.Errorf("zero-raw coverage = %v", got)
	}
	// Negative coverage clamps to zero.
	if got := Coverage(mk(10, 1000), mk(50, 1000)); got != 0 {
		t.Errorf("clamped coverage = %v", got)
	}
}

func TestWilsonCI(t *testing.T) {
	lo, hi := wilson(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("CI [%v, %v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("CI too wide: [%v, %v]", lo, hi)
	}
	lo, hi = wilson(0, 100)
	if lo != 0 || hi <= 0 {
		t.Errorf("zero-success CI = [%v, %v]", lo, hi)
	}
	lo, hi = wilson(0, 0)
	if lo != 0 || hi != 0 {
		t.Errorf("empty CI = [%v, %v]", lo, hi)
	}
}

func TestOutcomeString(t *testing.T) {
	names := map[Outcome]string{Benign: "benign", SDC: "sdc", Detected: "detected", Crash: "crash", Hang: "hang"}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
}

func TestCampaignErrors(t *testing.T) {
	// Golden run that crashes is rejected.
	mod, err := ir.Parse("func @main() {\nentry:\n  %v = load 0\n  ret\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunAsmCampaign(AsmTarget{Prog: prog, MemSize: memSize}, Campaign{Samples: 10, Seed: 1})
	if err == nil {
		t.Error("crashing golden run accepted")
	}
}

func machineNew(tgt AsmTarget) (*machine.Machine, error) {
	m, err := machine.New(tgt.Prog, tgt.MemSize)
	if err != nil {
		return nil, err
	}
	if tgt.Setup != nil {
		if err := tgt.Setup(m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func machineRunOpts(tgt AsmTarget, f *machine.Fault) machine.RunOpts {
	return machine.RunOpts{Args: tgt.Args, Fault: f}
}

const machineOutcomeOK = machine.OutcomeOK

func TestFindExample(t *testing.T) {
	tgt := asmTarget(t, false)
	c := Campaign{Samples: 300, Seed: 2}
	f, ok, err := FindExample(tgt, c, SDC)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no SDC example found in a raw program")
	}
	// Replaying the returned fault reproduces the outcome.
	m, err := machineNew(tgt)
	if err != nil {
		t.Fatal(err)
	}
	golden := m.Run(machineRunOpts(tgt, nil))
	res := m.Run(machineRunOpts(tgt, &f))
	if res.Outcome != machineOutcomeOK {
		t.Fatalf("replay outcome %v, want ok-with-wrong-output", res.Outcome)
	}
	if equalOutput(res.Output, golden.Output) {
		t.Error("replayed fault did not corrupt output")
	}
	// Protected program has no SDC example.
	ptgt := asmTarget(t, true)
	_, ok, err = FindExample(ptgt, c, SDC)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("found an SDC example in a FERRUM-protected program")
	}
}
