package fi

import (
	"reflect"
	"testing"

	"ferrum/internal/backend"
	"ferrum/internal/compose"
	"ferrum/internal/ir"
)

// twoKernelSrc is a two-phase program for the section-reuse test: main runs
// kernelA (writes the scratch array) then kernelB (reduces it). The %5 in
// kernelB's xor is the "edited line" — twoKernelEdited differs only there,
// preserving instruction counts, control flow and every PC, so the sections
// covering kernelA's execution keep their content fingerprints while the
// kernelB sections (and the whole-program digest) change.
const twoKernelSrc = `
func @kernelA(%base, %n) {
entry:
  %i = alloca 1
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = icmp slt %iv, %n
  br %c, body, done
body:
  %p = gep %base, %iv
  %v = load %p
  %v2 = mul %v, 3
  %v3 = add %v2, 11
  store %v3, %p
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  %z = load %base
  ret %z
}
func @kernelB(%base, %n) {
entry:
  %i = alloca 1
  %acc = alloca 1
  store 0, %i
  store 0, %acc
  br loop
loop:
  %iv = load %i
  %c = icmp slt %iv, %n
  br %c, body, done
body:
  %p = gep %base, %iv
  %v = load %p
  %v2 = xor %v, 5
  %a = load %acc
  %a2 = add %a, %v2
  store %a2, %acc
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  %r = load %acc
  out %r
  ret %r
}
func @main(%n, %base) {
entry:
  %a = call @kernelA(%base, %n)
  out %a
  %b = call @kernelB(%base, %n)
  out %b
  ret %b
}
`

func twoKernelTarget(t *testing.T, src string) AsmTarget {
	t.Helper()
	mod, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	return AsmTarget{Prog: prog, MemSize: memSize, Args: []uint64{8, 8192}, Setup: loadArray}
}

// TestComposeCacheReuseOnEdit is the headline re-injection property: after
// editing one kernel of a two-kernel program, a composed campaign against a
// warm section cache re-executes only the sections whose fingerprint the
// edit reached, serves the untouched sections' local-class plans from
// cache, and still produces results byte-identical to a cold campaign
// against the edited program.
func TestComposeCacheReuseOnEdit(t *testing.T) {
	tgtA := twoKernelTarget(t, twoKernelSrc)
	edited := "%v2 = xor %v, 13"
	tgtB := twoKernelTarget(t, replaceOnce(t, twoKernelSrc, "%v2 = xor %v, 5", edited))

	base := Campaign{Samples: 200, Seed: 11, MaxSteps: equivSteps, Workers: 4,
		Compose: ComposeOn, CheckpointEvery: 16}

	cache := compose.NewCache()
	c := base
	c.SectionCache = cache
	resA, err := RunAsmCampaign(tgtA, c)
	if err != nil {
		t.Fatal(err)
	}

	warm := base
	warm.SectionCache = cache.Clone() // shared tables, fresh counters
	resB, err := RunAsmCampaign(tgtB, warm)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.SectionCache.CacheStats()

	// Correctness first: the warm-cache result must be byte-identical to a
	// cold campaign against the edited program.
	cold := base
	want, err := RunAsmCampaign(tgtB, cold)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Counts != want.Counts {
		t.Errorf("warm counts %v != cold %v", resB.Counts, want.Counts)
	}
	if !reflect.DeepEqual(resB.Composed, want.Composed) {
		t.Errorf("warm composed summary differs from cold\ngot  %+v\nwant %+v",
			resB.Composed, want.Composed)
	}

	// The edit preserved instruction counts and control flow, so the section
	// partition is identical; only the fingerprints of sections reaching
	// kernelB (plus boundary states downstream of it) may change.
	if resA.DynSites != resB.DynSites {
		t.Fatalf("edit changed DynSites %d -> %d", resA.DynSites, resB.DynSites)
	}
	rowsA, rowsB := resA.Composed.Rows, resB.Composed.Rows
	if len(rowsA) != len(rowsB) {
		t.Fatalf("section count changed %d -> %d", len(rowsA), len(rowsB))
	}
	sameSecs, changedSecs, samePlans, sameFallbacks := 0, 0, 0, 0
	for i := range rowsA {
		if rowsA[i].Start != rowsB[i].Start || rowsA[i].End != rowsB[i].End {
			t.Fatalf("section %d range changed: %+v vs %+v", i, rowsA[i], rowsB[i])
		}
		if rowsA[i].Fingerprint == rowsB[i].Fingerprint {
			sameSecs++
			samePlans += rowsB[i].Plans
			sameFallbacks += rowsB[i].Fallbacks
		} else {
			changedSecs++
		}
	}
	if changedSecs == 0 {
		t.Fatal("edit changed no section fingerprint — the test edits nothing")
	}
	if sameSecs == 0 {
		t.Fatal("edit changed every section fingerprint — no reuse possible")
	}

	// The untouched sections' local-class plans must be served from cache.
	// Their fallback (and dead-tolerated) plans are ClassGlobal — measured
	// under the old whole-program digest — and legitimately re-run.
	minServed := samePlans - sameFallbacks
	if st.PlansServed < minServed/2 || st.PlansServed == 0 {
		t.Errorf("served %d plans from cache; %d sections unchanged carrying %d plans (%d fallbacks)",
			st.PlansServed, sameSecs, samePlans, sameFallbacks)
	}
	executed := int(resB.Checkpoint.Restores + resB.Checkpoint.ColdStarts)
	if executed+st.PlansServed != base.Samples {
		t.Errorf("executed %d + served %d != samples %d", executed, st.PlansServed, base.Samples)
	}
	if executed >= base.Samples {
		t.Errorf("warm run re-executed every plan")
	}
	t.Logf("edit reuse: %d/%d sections unchanged, %d/%d plans served, %d re-executed",
		sameSecs, len(rowsA), st.PlansServed, base.Samples, executed)
}

func replaceOnce(t *testing.T, s, old, new string) string {
	t.Helper()
	i := indexOf(s, old)
	if i < 0 {
		t.Fatalf("pattern %q not found", old)
	}
	out := s[:i] + new + s[i+len(old):]
	if indexOf(out[i+len(new):], old) >= 0 {
		t.Fatalf("pattern %q not unique", old)
	}
	return out
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
