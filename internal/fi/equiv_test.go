package fi

import (
	"fmt"
	"testing"

	"ferrum/internal/backend"
	"ferrum/internal/ferrumpass"
	"ferrum/internal/irpass"
	"ferrum/internal/rodinia"
)

// The checkpointed fast path must be invisible in results: byte-identical
// Result.Counts against the direct (NoCheckpoint) path for every K and
// worker count, per benchmark and technique, at both injection levels.
// These tests are the PR gate run under -race (go test -run Equiv -race).

const equivSteps = 1 << 20 // bounds hang-outcome runs; shared by both paths

func equivBench(t *testing.T, name string) *rodinia.Instance {
	t.Helper()
	b, ok := rodinia.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	inst, err := b.Instantiate(1, 99)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func equivAsmTarget(t *testing.T, inst *rodinia.Instance, protect bool) AsmTarget {
	t.Helper()
	prog, err := backend.Compile(inst.Mod)
	if err != nil {
		t.Fatal(err)
	}
	if protect {
		prog, _, err = ferrumpass.Protect(prog, ferrumpass.Config{})
		if err != nil {
			t.Fatal(err)
		}
	}
	return AsmTarget{Prog: prog, MemSize: memSize, Args: inst.Args,
		Setup: func(w MemWriter) error { return inst.Setup(w) }}
}

func equivIRTarget(t *testing.T, inst *rodinia.Instance, protect bool) IRTarget {
	t.Helper()
	mod := inst.Mod
	if protect {
		var err error
		mod, err = irpass.EDDI(mod)
		if err != nil {
			t.Fatal(err)
		}
	}
	return IRTarget{Mod: mod, MemSize: memSize, Args: inst.Args,
		Setup: func(w MemWriter) error { return inst.Setup(w) }}
}

// checkEquiv runs the direct path once and the checkpointed path across
// K ∈ {1, auto, DynSites} × workers ∈ {1, 8}, requiring identical Counts.
func checkEquiv(t *testing.T, name string, run func(Campaign) (Result, error)) {
	t.Helper()
	base := Campaign{Samples: 80, Seed: 12345, MaxSteps: equivSteps, Workers: 2}

	direct := base
	direct.NoCheckpoint = true
	want, err := run(direct)
	if err != nil {
		t.Fatalf("%s: direct: %v", name, err)
	}
	if want.Checkpoint.Enabled {
		t.Fatalf("%s: NoCheckpoint campaign reported checkpointing", name)
	}

	for _, k := range []uint64{1, 0 /* auto */, want.DynSites} {
		for _, workers := range []int{1, 8} {
			c := base
			c.CheckpointEvery = k
			c.Workers = workers
			got, err := run(c)
			if err != nil {
				t.Fatalf("%s K=%d w=%d: %v", name, k, workers, err)
			}
			ctx := fmt.Sprintf("%s K=%d workers=%d", name, k, workers)
			if got.Counts != want.Counts {
				t.Errorf("%s: counts %v != direct %v", ctx, got.Counts, want.Counts)
			}
			if got.DynSites != want.DynSites || !equalOutput(got.Golden, want.Golden) {
				t.Errorf("%s: golden-run fields differ", ctx)
			}
			cp := got.Checkpoint
			if !cp.Enabled {
				t.Fatalf("%s: checkpointing not enabled", ctx)
			}
			if cp.Restores+cp.ColdStarts != int64(base.Samples) {
				t.Errorf("%s: restores %d + cold starts %d != samples %d",
					ctx, cp.Restores, cp.ColdStarts, base.Samples)
			}
			if k == 1 && cp.ColdStarts > int64(base.Samples)/4 {
				// With a snapshot at every site only site-0 faults cold-start.
				t.Errorf("%s: %d cold starts at K=1", ctx, cp.ColdStarts)
			}
			if cp.Restores > 0 && cp.SkippedInsts == 0 {
				t.Errorf("%s: restores but no instructions skipped", ctx)
			}
		}
	}
}

func TestEquivAsmCampaigns(t *testing.T) {
	for _, bench := range []string{"bfs", "lud"} {
		inst := equivBench(t, bench)
		for _, protect := range []bool{false, true} {
			tech := map[bool]string{false: "raw", true: "ferrum"}[protect]
			tgt := equivAsmTarget(t, inst, protect)
			checkEquiv(t, "asm/"+bench+"/"+tech, func(c Campaign) (Result, error) {
				return RunAsmCampaign(tgt, c)
			})
		}
	}
}

func TestEquivIRCampaigns(t *testing.T) {
	for _, bench := range []string{"bfs", "lud"} {
		inst := equivBench(t, bench)
		for _, protect := range []bool{false, true} {
			tech := map[bool]string{false: "raw", true: "ir-eddi"}[protect]
			tgt := equivIRTarget(t, inst, protect)
			checkEquiv(t, "ir/"+bench+"/"+tech, func(c Campaign) (Result, error) {
				return RunIRCampaign(tgt, c)
			})
		}
	}
}

// TestEquivMultiBit pushes multi-bit (Extra) faults through the resume path.
func TestEquivMultiBit(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivAsmTarget(t, inst, true)
	base := Campaign{Samples: 60, Seed: 777, MaxSteps: equivSteps, Workers: 8, BitsPerFault: 3}

	direct := base
	direct.NoCheckpoint = true
	want, err := RunAsmCampaign(tgt, direct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunAsmCampaign(tgt, base)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counts != want.Counts {
		t.Errorf("multi-bit counts %v != direct %v", got.Counts, want.Counts)
	}
}

// TestEquivStatsSink checks the shared CampaignStats accumulator.
func TestEquivStatsSink(t *testing.T) {
	inst := equivBench(t, "bfs")
	stats := &CampaignStats{}
	c := Campaign{Samples: 40, Seed: 5, MaxSteps: equivSteps, Workers: 4, Stats: stats}
	if _, err := RunAsmCampaign(equivAsmTarget(t, inst, false), c); err != nil {
		t.Fatal(err)
	}
	if _, err := RunIRCampaign(equivIRTarget(t, inst, false), c); err != nil {
		t.Fatal(err)
	}
	if n := stats.Campaigns.Load(); n != 2 {
		t.Fatalf("campaigns = %d", n)
	}
	if stats.Restores.Load()+stats.ColdStarts.Load() != 80 {
		t.Errorf("restores %d + cold starts %d != 80",
			stats.Restores.Load(), stats.ColdStarts.Load())
	}
	if stats.Snapshots.Load() == 0 || stats.SnapshotBytes.Load() == 0 {
		t.Errorf("no snapshots recorded: %d/%d",
			stats.Snapshots.Load(), stats.SnapshotBytes.Load())
	}
}

// TestEquivFaultAtSiteZero pins the edge where the fault precedes every
// snapshot: it must cold-start and still match the direct path.
func TestEquivFaultAtSiteZero(t *testing.T) {
	tgt := asmTarget(t, false)
	// Seed-independent check: run one plan at site 0 both ways via
	// single-sample campaigns with a forced interval.
	for _, k := range []uint64{1, 4} {
		direct := Campaign{Samples: 1, Seed: 3, NoCheckpoint: true}
		want, err := RunAsmCampaign(tgt, direct)
		if err != nil {
			t.Fatal(err)
		}
		ck := Campaign{Samples: 1, Seed: 3, CheckpointEvery: k}
		got, err := RunAsmCampaign(tgt, ck)
		if err != nil {
			t.Fatal(err)
		}
		if got.Counts != want.Counts {
			t.Errorf("K=%d: counts %v != %v", k, got.Counts, want.Counts)
		}
	}
}
