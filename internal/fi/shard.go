package fi

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ferrum/internal/obs"
)

// Plan-space sharding splits one campaign's deterministic fault plan across
// cooperating processes (the fiserve coordinator/worker service). Every
// shard regenerates the identical full plan sequence from the seed, then
// keeps only the plans whose generation index is congruent to its shard
// index modulo the shard count — a round-robin partition, so each shard is
// itself a uniform sample of the plan space. Kept plans are re-indexed
// densely (rank order), exactly like the pruning partition's dense
// representative list, so the journal, prior-replay and prefix machinery
// work unchanged per shard; the merge inverts the re-indexing in closed
// form (global = shard + local*count) with no mapping tables.

// ShardSpec selects one shard of a campaign's plan space. The zero value
// (and Count <= 1) means unsharded.
type ShardSpec struct {
	Index int
	Count int
}

func (s ShardSpec) enabled() bool { return s.Count > 1 }

// global maps a shard-local dense plan index back to its generation index
// in the full plan sequence.
func (s ShardSpec) global(local int) int {
	if !s.enabled() {
		return local
	}
	return s.Index + local*s.Count
}

// check validates the spec against the campaign configuration. Sharding
// composes with neither pruning (plan indices would be dense-remapped
// twice, and the analysis already answers plans without executing them)
// nor CI-width early stopping (the qualifying prefix is defined over the
// global generation order, which no single shard observes).
func (s ShardSpec) check(c Campaign) error {
	if s.Count < 0 || s.Index < 0 {
		return fmt.Errorf("fi: shard %d/%d: negative shard spec", s.Index, s.Count)
	}
	if !s.enabled() {
		if s.Index != 0 {
			return fmt.Errorf("fi: shard %d/%d: index without a shard count", s.Index, s.Count)
		}
		return nil
	}
	if s.Index >= s.Count {
		return fmt.Errorf("fi: shard %d/%d: index out of range", s.Index, s.Count)
	}
	if c.Prune != PruneOff {
		return fmt.Errorf("fi: shard %d/%d: sharding is incompatible with prune mode %v", s.Index, s.Count, c.Prune)
	}
	if c.CIWidth > 0 {
		return fmt.Errorf("fi: shard %d/%d: sharding is incompatible with CI-width early stopping", s.Index, s.Count)
	}
	if c.Compose != ComposeOff {
		// Compose stratifies the plan space per section; a round-robin
		// residue of it is no longer a per-section budget, and the section
		// cache would be partitioned across workers.
		return fmt.Errorf("fi: shard %d/%d: sharding is incompatible with compose mode %v", s.Index, s.Count, c.Compose)
	}
	return nil
}

// shardPlans keeps the spec's residue class of the full plan sequence and
// re-indexes the kept plans densely by rank. A no-op when unsharded.
func shardPlans(plans []plannedFault, s ShardSpec) []plannedFault {
	if !s.enabled() {
		return plans
	}
	sub := make([]plannedFault, 0, len(plans)/s.Count+1)
	for _, p := range plans {
		if p.idx%s.Count == s.Index {
			p.idx = len(sub)
			sub = append(sub, p)
		}
	}
	return sub
}

// MergeShardResults combines per-shard campaign Results into the Result of
// the whole campaign. The shards must come from the same golden run —
// DynSites, Golden output and Cycles are cross-checked, not trusted — and
// outcome counts and latency histograms simply add, because the shards
// partition the plan space. Checkpoint work counters add too (they account
// for work actually performed), but the per-shard auto-tuned Interval is
// process-local and is reported as 0 unless all shards agree.
func MergeShardResults(shards []Result) (Result, error) {
	if len(shards) == 0 {
		return Result{}, fmt.Errorf("fi: merge shards: no shard results")
	}
	m := shards[0]
	for i, s := range shards[1:] {
		if s.DynSites != m.DynSites {
			return Result{}, fmt.Errorf("fi: merge shards: shard %d saw %d dynamic sites, shard 0 saw %d — different golden runs", i+1, s.DynSites, m.DynSites)
		}
		if !equalOutput(s.Golden, m.Golden) {
			return Result{}, fmt.Errorf("fi: merge shards: shard %d's golden output differs from shard 0's", i+1)
		}
		if s.Cycles != m.Cycles {
			return Result{}, fmt.Errorf("fi: merge shards: shard %d's golden run took %.0f cycles, shard 0's %.0f", i+1, s.Cycles, m.Cycles)
		}
		if s.EarlyStopped || m.EarlyStopped {
			return Result{}, fmt.Errorf("fi: merge shards: shard results must not be early-stopped")
		}
		if s.Pruned.Enabled || m.Pruned.Enabled {
			return Result{}, fmt.Errorf("fi: merge shards: shard results must not be pruned")
		}
		if s.Composed.Enabled || m.Composed.Enabled {
			return Result{}, fmt.Errorf("fi: merge shards: shard results must not be composed")
		}
		m.Samples += s.Samples
		for o := range m.Counts {
			m.Counts[o] += s.Counts[o]
		}
		m.Latency.Merge(s.Latency)
		m.Checkpoint.Enabled = m.Checkpoint.Enabled || s.Checkpoint.Enabled
		if s.Checkpoint.Interval != m.Checkpoint.Interval {
			m.Checkpoint.Interval = 0
		}
		m.Checkpoint.Snapshots += s.Checkpoint.Snapshots
		m.Checkpoint.SnapshotBytes += s.Checkpoint.SnapshotBytes
		m.Checkpoint.Restores += s.Checkpoint.Restores
		m.Checkpoint.ColdStarts += s.Checkpoint.ColdStarts
		m.Checkpoint.SkippedInsts += s.Checkpoint.SkippedInsts
	}
	return m, nil
}

// MergeShardStates combines loaded per-shard journals into one JournalState
// speaking for the whole campaign: shard-local plan indices are mapped back
// to generation indices, and cell Results are merged once every shard of a
// key has completed (a key with any incomplete shard stays partial). The
// states must form a complete shard set — indices 0..n-1, each claiming
// ShardCount n — recorded under one configuration.
func MergeShardStates(states []*JournalState) (*JournalState, error) {
	n := len(states)
	if n == 0 {
		return nil, fmt.Errorf("fi: merge shards: no shard journals")
	}
	byShard := make([]*JournalState, n)
	for _, st := range states {
		m := st.Meta
		if m.ShardCount != n {
			return nil, fmt.Errorf("fi: merge shards: journal for shard %d/%d merged into a set of %d", m.ShardIndex, m.ShardCount, n)
		}
		if m.ShardIndex < 0 || m.ShardIndex >= n || byShard[m.ShardIndex] != nil {
			return nil, fmt.Errorf("fi: merge shards: duplicate or out-of-range shard index %d", m.ShardIndex)
		}
		byShard[m.ShardIndex] = st
	}
	meta := byShard[0].Meta
	meta.ShardIndex, meta.ShardCount = 0, 0
	for i, st := range byShard {
		w := st.Meta
		w.ShardIndex, w.ShardCount = 0, 0
		if err := w.Check(meta); err != nil {
			return nil, fmt.Errorf("fi: merge shards: shard %d: %w", i, err)
		}
	}
	merged := &JournalState{Meta: meta, cells: map[string]*CellState{}}
	keys := map[string]bool{}
	for _, st := range byShard {
		for k := range st.cells {
			keys[k] = true
		}
	}
	for k := range keys {
		mc := merged.cell(k)
		results := make([]Result, 0, n)
		complete := true
		for i, st := range byShard {
			spec := ShardSpec{Index: i, Count: n}
			sc := st.cells[k]
			if sc == nil {
				complete = false
				continue
			}
			for local, o := range sc.Plans {
				g := spec.global(local)
				mc.Plans[g] = o
				if l, ok := sc.PlanLats[local]; ok {
					mc.PlanLats[g] = l
				}
				if site, ok := sc.PlanSites[local]; ok {
					mc.PlanSites[g] = site
				}
				if sc.PlanFB[local] {
					mc.PlanFB[g] = true
				}
			}
			if sc.Result == nil {
				complete = false
			} else {
				results = append(results, *sc.Result)
			}
		}
		if complete {
			res, err := MergeShardResults(results)
			if err != nil {
				return nil, fmt.Errorf("fi: merge shards: campaign %q: %w", k, err)
			}
			mc.Result = &res
		}
	}
	return merged, nil
}

// WriteCanonical writes the state as a canonical journal: the meta record,
// then per campaign key (sorted) its plan records in generation order
// followed by its cell record. Canonical form is what "byte-identical"
// means across process topologies — a single-process journal's record
// order reflects site-sorted execution and worker races, so raw files
// never compare equal; their canonical forms must. Checkpoint activity is
// stripped from cell records because it describes work performed by a
// particular process arrangement (per-shard auto-tuned intervals, snapshot
// counts), not the campaign's outcome — the same reason resume replays
// fi.* counters but never ckpt.*.
func (s *JournalState) WriteCanonical(w io.Writer) error {
	meta := s.Meta
	enc := func(r journalRecord) error {
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		_, err = w.Write(append(b, '\n'))
		return err
	}
	if err := enc(journalRecord{T: "meta", V: journalVersion, Meta: &meta}); err != nil {
		return err
	}
	for _, key := range s.Keys() {
		c := s.cells[key]
		idxs := make([]int, 0, len(c.Plans))
		for i := range c.Plans {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			r := journalRecord{T: "plan", C: key, I: i, O: c.Plans[i]}
			if site, ok := c.PlanSites[i]; ok {
				r.S = &site
			}
			if l, ok := c.PlanLats[i]; ok {
				lat := l
				r.L = &lat
			}
			if c.PlanFB[i] {
				fb := true
				r.FB = &fb
			}
			if err := enc(r); err != nil {
				return err
			}
		}
		if c.Result != nil {
			res := *c.Result
			res.Checkpoint = CheckpointSummary{}
			b, err := json.Marshal(res)
			if err != nil {
				return err
			}
			if err := enc(journalRecord{T: "cell", C: key, Res: b}); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReplayResult publishes a campaign Result's outcome counters and latency
// histograms to an observability context as if the campaign had completed
// there. The fiserve coordinator replays each merged campaign exactly once
// into its own registry, so its /metrics surface reconciles against the
// merged journal the same way a single process's does — worker snapshots
// contribute only their non-fi.* (engine, journal, checkpoint) counters.
func ReplayResult(cx *obs.Ctx, res Result) {
	Campaign{Obs: cx}.observeOutcomes(res)
}
