package fi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"ferrum/internal/obs"
)

// The campaign journal makes long suites durable: one NDJSON record per
// completed fault plan and one per completed campaign, fsync-batched, so a
// killed process loses at most the last unsynced batch. A resumed run loads
// the journal, skips every journaled plan and campaign, and produces
// byte-identical final tables to an uninterrupted run — outcomes are
// deterministic given the seed, so replayed work and re-run work agree.
//
// Record stream (one JSON object per line):
//
//	{"t":"meta","v":2,"meta":{...}}           — first line; config fingerprint
//	{"t":"plan","c":"<key>","i":17,"o":1,
//	 "s":204,"l":96}                          — plan i of campaign <key> had outcome o;
//	                                            it hit dynamic site s and its fault ran
//	                                            l engine units (cycles / retired insts)
//	                                            before the terminal event. l is absent
//	                                            when the fault was never injected.
//	{"t":"cell","c":"<key>","res":{...}}      — campaign <key> completed with Result res
//
// A torn trailing record (the process died mid-write) is detected on load,
// dropped, and truncated away before appending resumes; the plan it described
// is simply re-run.

// journalVersion is bumped when the record schema changes incompatibly.
// v2 added the per-plan fault site ("s") and detection latency ("l") fields
// and the Result.Latency summary inside cell records.
const journalVersion = 2

// defaultSyncBatch is how many records may accumulate before the journal
// flushes and fsyncs. Batching amortises fsync latency across plans; a crash
// loses at most this many plan records, each of which is re-run on resume.
const defaultSyncBatch = 64

// JournalMeta fingerprints the configuration a journal was recorded under.
// Resume refuses a journal whose meta does not match the current invocation:
// journaled outcomes are only reusable when they came from the same plans.
// Fields that cannot change results (worker counts, progress, sinks) are
// deliberately absent.
type JournalMeta struct {
	Tool       string   `json:"tool"` // "reprod", "fidi", or a library caller's tag
	Exp        string   `json:"exp,omitempty"`
	Seed       int64    `json:"seed"`
	Samples    int      `json:"samples"`
	Scale      int      `json:"scale,omitempty"`
	Optimize   bool     `json:"optimize,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`
	Technique  string   `json:"technique,omitempty"`
	Level      string   `json:"level,omitempty"`
	Bits       int      `json:"bits,omitempty"`
	CIWidth    float64  `json:"ci_width,omitempty"`
	// Prune is the PruneMode string ("" when off). It must guard resume:
	// a pruned journal's plan indices are dense representative indices, a
	// different partition of the same seed's plan space.
	Prune string `json:"prune,omitempty"`
	// Compose is the ComposeMode string ("" when off). It must guard resume
	// for the same reason as Prune: a composed journal's plan indices come
	// from per-section stratified sampling, a different plan sequence than
	// the monolithic draw from the same seed.
	Compose string `json:"compose,omitempty"`
	// ShardIndex/ShardCount identify one shard of a distributed campaign
	// (fiserve): the shard executes only the plan-generation indices
	// congruent to ShardIndex mod ShardCount, journaled under dense
	// shard-local indices. ShardCount zero means unsharded; a merged
	// journal carries no shard fields — it speaks for the whole campaign.
	ShardIndex int `json:"shard,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
}

// metaField pairs one meta field's JSON name with its value in two metas,
// for field-by-field comparison in declaration order.
type metaField struct {
	name string
	a, b any
}

func (m JournalMeta) fieldsAgainst(w JournalMeta) []metaField {
	return []metaField{
		{"tool", m.Tool, w.Tool},
		{"exp", m.Exp, w.Exp},
		{"seed", m.Seed, w.Seed},
		{"samples", m.Samples, w.Samples},
		{"scale", m.Scale, w.Scale},
		{"optimize", m.Optimize, w.Optimize},
		{"benchmarks", strings.Join(m.Benchmarks, ","), strings.Join(w.Benchmarks, ",")},
		{"technique", m.Technique, w.Technique},
		{"level", m.Level, w.Level},
		{"bits", m.Bits, w.Bits},
		{"ci_width", m.CIWidth, w.CIWidth},
		{"prune", m.Prune, w.Prune},
		{"compose", m.Compose, w.Compose},
		{"shard", m.ShardIndex, w.ShardIndex},
		{"shard_count", m.ShardCount, w.ShardCount},
	}
}

// Check reports an error naming the first field (in declaration order)
// where the journal's meta differs from the current invocation's — e.g.
// "journal seed=7, invocation seed=9" — so a mismatched resume, or a shard
// worker leasing from a differently-configured coordinator, says exactly
// what to fix instead of dumping both configurations to eyeball.
func (m JournalMeta) Check(want JournalMeta) error {
	for _, f := range m.fieldsAgainst(want) {
		if f.a != f.b {
			return fmt.Errorf("fi: journal was recorded under a different configuration: journal %s=%v, invocation %s=%v",
				f.name, f.a, f.name, f.b)
		}
	}
	return nil
}

type journalRecord struct {
	T    string          `json:"t"`
	V    int             `json:"v,omitempty"`
	Meta *JournalMeta    `json:"meta,omitempty"`
	C    string          `json:"c,omitempty"`
	I    int             `json:"i,omitempty"`
	O    Outcome         `json:"o,omitempty"`
	S    *uint64         `json:"s,omitempty"`  // dynamic fault site (plan records, v2+)
	L    *float64        `json:"l,omitempty"`  // detection latency in engine units; nil = not injected
	FB   *bool           `json:"fb,omitempty"` // composed-campaign fallback plan (absent = false)
	Res  json.RawMessage `json:"res,omitempty"`
}

// JournalSink is the byte sink a Journal writes through: an *os.File for
// on-disk journals, or a streaming transport (a fiserve shard worker
// appending records over an HTTP request body). Sync must make every byte
// written so far durable from the journal's point of view — fsync for
// files, whatever flush the transport offers for streams.
type JournalSink interface {
	io.Writer
	Sync() error
	Close() error
}

// Journal is the crash-safe campaign journal writer. All methods are safe
// for concurrent use (campaign workers across scheduler cells share one
// journal) and nil-safe, so un-journaled campaigns pay nothing.
type Journal struct {
	mu      sync.Mutex
	f       JournalSink
	w       *bufio.Writer
	pending int
	batch   int
	closed  bool
	err     error
	ob      *obs.Observer
}

// CreateJournal creates (or truncates) a journal at path and writes the meta
// record. The meta record is synced immediately: a journal file, if it
// exists at all, always identifies its configuration.
func CreateJournal(path string, meta JournalMeta) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("fi: create journal: %w", err)
	}
	j, err := NewStreamJournal(f, meta)
	if err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// NewStreamJournal wraps an arbitrary sink as a campaign journal and writes
// (and syncs) the meta record, exactly as CreateJournal does for a fresh
// file. fiserve shard workers journal through it over a streaming HTTP
// body: the coordinator owns the durable shard file, the worker only
// appends records. The sink is not closed on error; that stays with the
// caller who opened it.
func NewStreamJournal(sink JournalSink, meta JournalMeta) (*Journal, error) {
	j := &Journal{f: sink, w: bufio.NewWriter(sink), batch: defaultSyncBatch}
	j.append(journalRecord{T: "meta", V: journalVersion, Meta: &meta})
	j.mu.Lock()
	j.syncLocked()
	err := j.err
	j.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return j, nil
}

// Observe binds the journal's counters (journal.records, journal.syncs) to
// an observability registry. Nil observers are fine.
func (j *Journal) Observe(ob *obs.Observer) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.ob = ob
	j.mu.Unlock()
}

func (j *Journal) append(r journalRecord) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || j.closed {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		j.err = err
		return
	}
	j.ob.Counter(obs.MJournalRecords).Add(1)
	j.pending++
	if j.pending >= j.batch {
		j.syncLocked()
	}
}

// syncLocked flushes the buffer and fsyncs; callers hold j.mu.
func (j *Journal) syncLocked() {
	if j.err != nil || j.pending == 0 && j.w.Buffered() == 0 {
		return
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return
	}
	if err := j.f.Sync(); err != nil {
		j.err = err
		return
	}
	j.pending = 0
	j.ob.Counter(obs.MJournalSyncs).Add(1)
}

// Plan records one completed fault plan: plan index i of campaign key had
// outcome o, hitting dynamic site site. lat is the fault's detection
// latency in engine units; hasLat false (the fault was never injected)
// omits the latency field rather than journaling a spurious zero. fb marks
// a composed-campaign fallback plan (omitted when false), so a resumed
// composed campaign rebuilds the identical Sections/Fallbacks ledger.
func (j *Journal) Plan(key string, i int, o Outcome, site uint64, lat float64, hasLat, fb bool) {
	r := journalRecord{T: "plan", C: key, I: i, O: o, S: &site}
	if hasLat {
		r.L = &lat
	}
	if fb {
		r.FB = &fb
	}
	j.append(r)
}

// Cell records a completed campaign's full Result and syncs immediately —
// cell boundaries are the records a resumed suite skips whole campaigns on,
// so they are never left sitting in the batch buffer.
func (j *Journal) Cell(key string, res Result) {
	if j == nil {
		return
	}
	b, err := json.Marshal(res)
	if err != nil {
		j.mu.Lock()
		if j.err == nil {
			j.err = err
		}
		j.mu.Unlock()
		return
	}
	j.append(journalRecord{T: "cell", C: key, Res: b})
	j.Sync()
}

// Sync flushes buffered records to disk and fsyncs.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.syncLocked()
	return j.err
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close syncs and closes the journal. Idempotent; later appends are dropped.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	j.syncLocked()
	j.closed = true
	if err := j.f.Close(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// CellState is what a loaded journal knows about one campaign key.
type CellState struct {
	// Result is the completed campaign's journaled result; non-nil means the
	// whole campaign can be answered without running anything.
	Result *Result
	// Plans maps plan index → journaled outcome for the plans that completed
	// before the process died.
	Plans map[int]Outcome
	// PlanLats maps plan index → journaled detection latency (engine units)
	// for the subset of journaled plans whose fault was injected. Replayed
	// alongside Plans so a resumed campaign's latency histograms match an
	// uninterrupted run's exactly.
	PlanLats map[int]float64
	// PlanSites maps plan index → the dynamic fault site the plan hit, when
	// the journal recorded it (schema v2+). Post-hoc analytics (fistat's
	// per-site heatmap) key on it; resume does not need it.
	PlanSites map[int]uint64
	// PlanFB holds the plan indices journaled as composed-campaign fallback
	// plans (membership = true), so resume replays the fallback ledger.
	PlanFB map[int]bool
}

// JournalState is a loaded journal: everything a resumed run can skip.
type JournalState struct {
	Meta  JournalMeta
	cells map[string]*CellState
	// TornDropped reports that the journal ended in a partial record (the
	// writing process died mid-append); the record was dropped and the file
	// truncated back to the last complete record.
	TornDropped bool
	validLen    int64 // byte length of the parseable prefix
}

// Cell returns the journaled state for a campaign key, or nil. Nil states
// (no resume) return nil for every key.
func (s *JournalState) Cell(key string) *CellState {
	if s == nil {
		return nil
	}
	return s.cells[key]
}

// Cells reports how many campaign keys have a completed cell record.
func (s *JournalState) Cells() (complete, partial int) {
	if s == nil {
		return 0, 0
	}
	for _, c := range s.cells {
		if c.Result != nil {
			complete++
		} else {
			partial++
		}
	}
	return complete, partial
}

// LoadJournal parses a journal file. A torn trailing record — truncated
// JSON, or a final line without its newline — is dropped and reported via
// TornDropped; corruption anywhere else is an error, because records after
// it cannot be trusted. Duplicate plan records (a cell retried within one
// process) keep the last occurrence; outcomes are deterministic, so
// duplicates agree anyway.
func LoadJournal(path string) (*JournalState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fi: load journal: %w", err)
	}
	return LoadJournalData(data, path)
}

// LoadJournalData parses journal bytes already in hand — a shard journal
// shipped inside a fiserve lease, or a coordinator's in-memory copy of a
// shard file — with LoadJournal's exact semantics. name labels the source
// in error messages.
func LoadJournalData(data []byte, name string) (*JournalState, error) {
	st := &JournalState{cells: map[string]*CellState{}}
	sawMeta := false
	off := int64(0)
	for lineNo := 1; len(data) > 0; lineNo++ {
		nl := bytes.IndexByte(data, '\n')
		var line []byte
		complete := nl >= 0
		if complete {
			line, data = data[:nl], data[nl+1:]
		} else {
			line, data = data, nil
		}
		lineLen := int64(len(line))
		if complete {
			lineLen++
		}
		if len(bytes.TrimSpace(line)) == 0 {
			off += lineLen
			continue
		}
		var r journalRecord
		if err := json.Unmarshal(line, &r); err != nil || !validRecord(r) {
			if len(data) == 0 {
				// Torn tail: the process died mid-append. Drop it; the plan
				// it described is re-run.
				st.TornDropped = true
				break
			}
			return nil, fmt.Errorf("fi: journal corrupt at line %d: %q", lineNo, line)
		}
		if !complete {
			// Parsed, but the newline never made it to disk — treat the
			// record as committed; the content is intact.
			st.TornDropped = true
		}
		switch r.T {
		case "meta":
			if r.V != journalVersion {
				return nil, fmt.Errorf("fi: journal %s uses schema v%d; this build reads v%d — "+
					"finish it with the matching build, or re-run without -resume to record a fresh journal",
					name, r.V, journalVersion)
			}
			st.Meta = *r.Meta
			sawMeta = true
		case "plan":
			c := st.cell(r.C)
			c.Plans[r.I] = r.O
			if r.L != nil {
				c.PlanLats[r.I] = *r.L
			} else {
				delete(c.PlanLats, r.I) // duplicate record without latency wins whole
			}
			if r.S != nil {
				c.PlanSites[r.I] = *r.S
			}
			if r.FB != nil && *r.FB {
				c.PlanFB[r.I] = true
			} else {
				delete(c.PlanFB, r.I) // duplicate record without the flag wins whole
			}
		case "cell":
			var res Result
			if err := json.Unmarshal(r.Res, &res); err != nil {
				return nil, fmt.Errorf("fi: journal cell record corrupt at line %d: %v", lineNo, err)
			}
			st.cell(r.C).Result = &res
		}
		off += lineLen
	}
	if !sawMeta {
		return nil, fmt.Errorf("fi: journal %s has no meta record", name)
	}
	st.validLen = off
	return st, nil
}

// ValidLen is the byte length of the journal's parseable prefix — everything
// before a torn trailing record. The fiserve coordinator truncates a dead
// worker's shard journal to it before re-leasing, so the next worker appends
// on a record boundary.
func (s *JournalState) ValidLen() int64 { return s.validLen }

func (s *JournalState) cell(key string) *CellState {
	c := s.cells[key]
	if c == nil {
		c = &CellState{
			Plans:     map[int]Outcome{},
			PlanLats:  map[int]float64{},
			PlanSites: map[int]uint64{},
			PlanFB:    map[int]bool{},
		}
		s.cells[key] = c
	}
	return c
}

// Keys returns the journal's campaign keys in sorted order, for post-hoc
// analytics that iterate every journaled campaign.
func (s *JournalState) Keys() []string {
	if s == nil {
		return nil
	}
	keys := make([]string, 0, len(s.cells))
	for k := range s.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func validRecord(r journalRecord) bool {
	switch r.T {
	case "meta":
		return r.Meta != nil
	case "plan":
		return r.C != "" && r.I >= 0 && r.O < numOutcomes
	case "cell":
		return r.C != "" && len(r.Res) > 0
	}
	return false
}

// ResumeStreamJournal wraps a sink whose stream already begins with a meta
// record — a re-leased fiserve shard appending to the coordinator's durable
// shard file — so, unlike NewStreamJournal, no fresh meta record is written.
func ResumeStreamJournal(sink JournalSink) *Journal {
	return &Journal{f: sink, w: bufio.NewWriter(sink), batch: defaultSyncBatch}
}

// ValidateRecords checks that data is a whole number of well-formed journal
// records — the unit a streaming shard worker appends in one sync. The
// fiserve coordinator runs it on every records upload before the bytes reach
// the durable shard file, so a garbled or mid-record-truncated upload is
// rejected whole rather than tearing the journal.
func ValidateRecords(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if data[len(data)-1] != '\n' {
		return fmt.Errorf("fi: journal chunk does not end at a record boundary")
	}
	for lineNo := 1; len(data) > 0; lineNo++ {
		nl := bytes.IndexByte(data, '\n')
		line := data[:nl]
		data = data[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r journalRecord
		if err := json.Unmarshal(line, &r); err != nil || !validRecord(r) {
			return fmt.Errorf("fi: journal chunk corrupt at line %d: %q", lineNo, line)
		}
	}
	return nil
}

// ResumeJournal loads a journal and reopens it for appending. If the file
// ended in a torn record, the tail is truncated away first so the appended
// stream stays line-aligned.
func ResumeJournal(path string) (*JournalState, *Journal, error) {
	st, err := LoadJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("fi: resume journal: %w", err)
	}
	if err := f.Truncate(st.validLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fi: resume journal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(st.validLen, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fi: resume journal: %w", err)
	}
	return st, &Journal{f: f, w: bufio.NewWriter(f), batch: defaultSyncBatch}, nil
}
