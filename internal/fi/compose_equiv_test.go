package fi

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"ferrum/internal/compose"
)

// Compositional campaigns are a different estimator over the same fault
// space, not a replay of the monolithic plan, so "equivalent" means
// statistically: the composed SDC and detection rates must sit within the
// summed Wilson 95% half-widths of the monolithic rates on every cell.
// ComposeValidate computes exactly that gate. These tests are part of the
// -race PR tier (go test -run 'Equiv|Snapshot' -race).

// TestComposeEquivMonolithic gates composed-vs-monolithic rate agreement on
// {bfs, lud} × {raw, ferrum}, and checks the ledger identity exactly.
func TestComposeEquivMonolithic(t *testing.T) {
	for _, bench := range []string{"bfs", "lud"} {
		inst := equivBench(t, bench)
		for _, protect := range []bool{false, true} {
			tech := map[bool]string{false: "raw", true: "ferrum"}[protect]
			tgt := equivAsmTarget(t, inst, protect)
			c := Campaign{Samples: 150, Seed: 4242, MaxSteps: equivSteps,
				Workers: 4, Compose: ComposeValidate}
			res, err := RunAsmCampaign(tgt, c)
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, tech, err)
			}
			cs := res.Composed
			if !cs.Enabled || cs.Mode != "validate" {
				t.Fatalf("%s/%s: compose summary %+v", bench, tech, cs)
			}
			if cs.Composed != cs.Sections+cs.Fallbacks {
				t.Errorf("%s/%s: ledger %d != %d sections + %d fallbacks",
					bench, tech, cs.Composed, cs.Sections, cs.Fallbacks)
			}
			if cs.Composed != res.Samples || res.Samples != c.Samples {
				t.Errorf("%s/%s: composed %d, samples %d, want %d",
					bench, tech, cs.Composed, res.Samples, c.Samples)
			}
			plans, fbs := 0, 0
			var counts [numOutcomes]int
			for _, row := range cs.Rows {
				plans += row.Plans
				fbs += row.Fallbacks
				for o, n := range row.Counts {
					counts[o] += n
				}
				if row.End <= row.Start || row.Fingerprint == "" {
					t.Errorf("%s/%s: malformed row %+v", bench, tech, row)
				}
			}
			if plans != cs.Composed || fbs != cs.Fallbacks || counts != res.Counts {
				t.Errorf("%s/%s: rows sum plans=%d fbs=%d counts=%v, want %d/%d/%v",
					bench, tech, plans, fbs, counts, cs.Composed, cs.Fallbacks, res.Counts)
			}
			v := cs.Validation
			if v == nil {
				t.Fatalf("%s/%s: no validation block", bench, tech)
			}
			if !v.OK {
				t.Errorf("%s/%s: composed rates outside tolerance: SDC %.3f vs %.3f (tol %.3f), detected %.3f vs %.3f (tol %.3f)",
					bench, tech, v.SDC, v.MonoSDC, v.SDCTol, v.Detected, v.MonoDetected, v.DetectedTol)
			}
			if math.Abs(v.SDC-res.SDCRate()) > 1e-12 {
				t.Errorf("%s/%s: validation SDC %.6f != result %.6f", bench, tech, v.SDC, res.SDCRate())
			}
		}
	}
}

// TestComposeEquivDeterminism: identical campaigns produce identical Counts
// and Composed summaries for any worker count.
func TestComposeEquivDeterminism(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivAsmTarget(t, inst, true)
	base := Campaign{Samples: 120, Seed: 99, MaxSteps: equivSteps, Compose: ComposeOn}
	var want Result
	for i, workers := range []int{1, 8, 3} {
		c := base
		c.Workers = workers
		got, err := RunAsmCampaign(tgt, c)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got
			continue
		}
		if got.Counts != want.Counts {
			t.Errorf("workers=%d: counts %v != %v", workers, got.Counts, want.Counts)
		}
		if !reflect.DeepEqual(got.Composed, want.Composed) {
			t.Errorf("workers=%d: composed summary differs", workers)
		}
		if !reflect.DeepEqual(got.Latency, want.Latency) {
			t.Errorf("workers=%d: latency summary differs", workers)
		}
	}
}

// TestComposeEquivResume: a composed campaign killed mid-section and resumed
// from its journal must be byte-identical (Counts, Composed, Latency) to the
// uninterrupted run, at 1 and 8 workers.
func TestComposeEquivResume(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivAsmTarget(t, inst, false)
	base := Campaign{Samples: 100, Seed: 7, MaxSteps: equivSteps, Compose: ComposeOn}

	clean, err := RunAsmCampaign(tgt, base)
	if err != nil {
		t.Fatal(err)
	}

	meta := JournalMeta{Tool: "test", Samples: base.Samples, Seed: base.Seed,
		Compose: "on"}
	for _, workers := range []int{1, 8} {
		path := journalPath(t)
		j, err := CreateJournal(path, meta)
		if err != nil {
			t.Fatal(err)
		}
		// Cancel partway through: the campaign stops at a batch boundary with
		// a partial journal — some sections half-measured.
		cancel := make(chan struct{})
		var ran atomic.Int64
		c := base
		c.Workers = workers
		c.Cancel = cancel
		c.Journal = j
		c.Key = "cell"
		c.Progress = func(done int) {
			if ran.Add(1) == 2 {
				close(cancel)
			}
		}
		_, err = RunAsmCampaign(tgt, c)
		if err == nil {
			// The campaign won the race; the resume below degenerates to a
			// full journal replay, which must still be byte-identical.
			t.Logf("workers=%d: campaign completed before cancel", workers)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		st, j2, err := ResumeJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Meta.Check(meta); err != nil {
			t.Fatal(err)
		}
		rc := base
		rc.Workers = workers
		rc.Journal = j2
		rc.Key = "cell"
		rc.Prior = st.Cell("cell")
		got, err := RunAsmCampaign(tgt, rc)
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		if got.Counts != clean.Counts {
			t.Errorf("workers=%d: resumed counts %v != clean %v", workers, got.Counts, clean.Counts)
		}
		if !reflect.DeepEqual(got.Composed, clean.Composed) {
			t.Errorf("workers=%d: resumed composed summary differs\ngot  %+v\nwant %+v",
				workers, got.Composed, clean.Composed)
		}
		if !reflect.DeepEqual(got.Latency, clean.Latency) {
			t.Errorf("workers=%d: resumed latency differs", workers)
		}
	}
}

// TestComposeEquivCacheWarm: re-running an unchanged program against a warm
// section cache serves every plan from the tables — zero executions — and
// reproduces the cold result byte-identically.
func TestComposeEquivCacheWarm(t *testing.T) {
	inst := equivBench(t, "lud")
	tgt := equivAsmTarget(t, inst, false)
	cache := compose.NewCache()
	c := Campaign{Samples: 120, Seed: 31, MaxSteps: equivSteps, Workers: 4,
		Compose: ComposeOn, SectionCache: cache}
	cold, err := RunAsmCampaign(tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.CacheStats()
	if st.SectionHits != 0 || st.PlansServed != 0 {
		t.Fatalf("cold run hit the cache: %+v", st)
	}
	if cache.Len() == 0 {
		t.Fatal("cold run stored no tables")
	}

	warm, err := RunAsmCampaign(tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	st = cache.CacheStats()
	if st.SectionHits == 0 || st.PlansServed != c.Samples {
		t.Errorf("warm run served %d plans over %d section hits, want all %d plans",
			st.PlansServed, st.SectionHits, c.Samples)
	}
	if warm.Counts != cold.Counts {
		t.Errorf("warm counts %v != cold %v", warm.Counts, cold.Counts)
	}
	if !reflect.DeepEqual(warm.Composed, cold.Composed) {
		t.Errorf("warm composed summary differs\ngot  %+v\nwant %+v", warm.Composed, cold.Composed)
	}
	// The warm campaign still re-runs golden + recording, but no injections:
	// its checkpoint counters must show zero plan executions.
	if warm.Checkpoint.Restores != 0 || warm.Checkpoint.ColdStarts != 0 {
		t.Errorf("warm run executed plans: %+v", warm.Checkpoint)
	}
}
