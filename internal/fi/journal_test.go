package fi

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign.ndjson")
}

var testMeta = JournalMeta{Tool: "test", Seed: 42, Samples: 80}

// TestJournalRoundTrip: plan and cell records written through the journal
// come back intact from LoadJournal, keyed by campaign.
func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	j.Plan("a", 0, Benign, 10, 128, true, false)
	j.Plan("a", 3, SDC, 11, 0, false, false)
	j.Plan("b", 1, Crash, 12, 7, true, false)
	res := Result{Samples: 2, Counts: [numOutcomes]int{Benign: 1, SDC: 1}, DynSites: 9}
	j.Cell("a", res)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Meta.Check(testMeta); err != nil {
		t.Errorf("meta round-trip: %v", err)
	}
	if st.TornDropped {
		t.Error("clean journal reported a torn record")
	}
	a := st.Cell("a")
	if a == nil || a.Result == nil {
		t.Fatalf("cell a = %+v, want complete", a)
	}
	if a.Result.Samples != 2 || a.Result.Counts != res.Counts || a.Result.DynSites != 9 {
		t.Errorf("cell a result = %+v, want %+v", *a.Result, res)
	}
	if a.Plans[0] != Benign || a.Plans[3] != SDC {
		t.Errorf("cell a plans = %v", a.Plans)
	}
	b := st.Cell("b")
	if b == nil || b.Result != nil || b.Plans[1] != Crash {
		t.Errorf("cell b = %+v, want partial with plan 1 = crash", b)
	}
	if complete, partial := st.Cells(); complete != 1 || partial != 1 {
		t.Errorf("cells = %d complete, %d partial; want 1, 1", complete, partial)
	}
	if st.Cell("missing") != nil {
		t.Error("unknown key returned a cell state")
	}
	var nilState *JournalState
	if nilState.Cell("a") != nil {
		t.Error("nil state returned a cell")
	}
}

// TestJournalMetaMismatch: resume must refuse a journal recorded under a
// different configuration — replayed outcomes from different plans would
// silently corrupt the tables.
func TestJournalMetaMismatch(t *testing.T) {
	other := testMeta
	other.Seed++
	if err := testMeta.Check(other); err == nil {
		t.Error("meta check accepted a different seed")
	}
	if err := testMeta.Check(testMeta); err != nil {
		t.Errorf("meta check rejected itself: %v", err)
	}
}

// TestJournalTornTail: a process killed mid-append leaves a truncated final
// record. Load drops it (TornDropped), resume truncates the file so appends
// stay line-aligned, and the dropped plan is simply absent — re-run, never
// double-counted.
func TestJournalTornTail(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	j.Plan("a", 0, Benign, 0, 1, true, false)
	j.Plan("a", 1, SDC, 1, 2, true, false)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: a half-written record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"plan","c":"a","i":2,"o"`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, j2, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.TornDropped {
		t.Error("torn tail not reported")
	}
	a := st.Cell("a")
	if a == nil || len(a.Plans) != 2 {
		t.Fatalf("plans after torn tail = %+v, want exactly the 2 complete records", a)
	}
	if _, ok := a.Plans[2]; ok {
		t.Error("torn record survived the load")
	}
	// Appending after resume lands on a clean line boundary.
	j2.Plan("a", 2, Hang, 2, 3, true, false)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("journal unreadable after torn-tail resume: %v", err)
	}
	if st2.TornDropped {
		t.Error("resumed journal still reports a torn record")
	}
	a2 := st2.Cell("a")
	if len(a2.Plans) != 3 || a2.Plans[2] != Hang {
		t.Errorf("plans after resume append = %v, want 3 with plan 2 = hang", a2.Plans)
	}
}

// TestJournalMissingFinalNewline: a final record whose bytes are intact but
// whose newline never hit the disk is committed content, not a torn record
// to discard.
func TestJournalMissingFinalNewline(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	j.Plan("a", 0, Detected, 5, 42, true, false)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := strings.TrimSuffix(string(data), "\n")
	if err := os.WriteFile(path, []byte(trimmed), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.TornDropped {
		t.Error("missing final newline not flagged (resume must re-align the tail)")
	}
	if a := st.Cell("a"); a == nil || a.Plans[0] != Detected {
		t.Errorf("intact newline-less record dropped: %+v", a)
	}
}

// TestJournalMidFileCorruption: corruption before the tail poisons every
// record after it; load must fail loudly rather than resume from a lie.
func TestJournalMidFileCorruption(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	j.Plan("a", 0, Benign, 0, 1, true, false)
	j.Plan("a", 1, Benign, 1, 1, true, false)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = "{\"t\":\"plan\",garbage\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJournal(path); err == nil {
		t.Fatal("mid-file corruption loaded without error")
	}
}

// TestJournalNoMeta: a journal without its meta record cannot be checked
// against the invocation, so it cannot be resumed.
func TestJournalNoMeta(t *testing.T) {
	path := journalPath(t)
	if err := os.WriteFile(path, []byte(`{"t":"plan","c":"a","i":0,"o":0}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJournal(path); err == nil {
		t.Fatal("journal without meta loaded without error")
	}
}

// TestJournalDuplicatePlans: a retried cell may journal the same plan twice
// in one file; the last record wins (outcomes are deterministic, so they
// agree anyway) and the plan is counted once.
func TestJournalDuplicatePlans(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	j.Plan("a", 0, Benign, 0, 4, true, false)
	j.Plan("a", 0, Benign, 0, 4, true, false)
	j.Plan("a", 1, SDC, 1, 2, true, false)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if a := st.Cell("a"); len(a.Plans) != 2 {
		t.Errorf("duplicate plan records double-counted: %v", a.Plans)
	}
}

// TestJournalVersionRefused: a journal from an older schema must be refused
// with an actionable error naming both versions — never decoded on a guess
// and never a panic. (v1 lacked the per-plan "s"/"l" fields and latency in
// cell results; replaying it would silently drop telemetry.)
func TestJournalVersionRefused(t *testing.T) {
	path := journalPath(t)
	v1 := `{"t":"meta","v":1,"meta":{"tool":"test","seed":42,"samples":80}}
{"t":"plan","c":"a","i":0,"o":0}
`
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadJournal(path)
	if err == nil {
		t.Fatal("v1 journal loaded without error")
	}
	for _, needle := range []string{"schema v1", "v2", "re-run"} {
		if !strings.Contains(err.Error(), needle) {
			t.Errorf("version error %q missing %q", err, needle)
		}
	}
	if _, _, err := ResumeJournal(path); err == nil {
		t.Error("v1 journal resumed without error")
	}
}

// TestJournalV2ResumeByteIdentical: closing and resuming a v2 journal, then
// appending nothing, must leave the file byte-identical — resume truncates
// only torn tails, never rewrites committed records (latency fields
// included).
func TestJournalV2ResumeByteIdentical(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	j.Plan("a", 0, Detected, 10, 128.5, true, false)
	j.Plan("a", 1, Benign, 11, 0, false, false)
	var res Result
	res.Samples = 2
	res.Counts[Detected] = 1
	res.Counts[Benign] = 1
	res.Latency.Unit = "cycles"
	res.Latency.Observe(Detected, 128.5)
	j.Cell("a", res)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, j2, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Errorf("resume rewrote committed bytes:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	// The replayed state carries the v2 fields intact.
	a := st.Cell("a")
	if a.PlanLats[0] != 128.5 || a.PlanSites[0] != 10 {
		t.Errorf("v2 fields lost on resume: lats=%v sites=%v", a.PlanLats, a.PlanSites)
	}
	if _, ok := a.PlanLats[1]; ok {
		t.Error("uninjected plan gained a latency on replay")
	}
	if a.Result == nil || a.Result.Latency.Unit != "cycles" || a.Result.Latency.N() != 1 {
		t.Errorf("cell latency summary lost on resume: %+v", a.Result)
	}
}

// TestJournalNilSafety: campaigns without a journal call the same methods;
// every one of them must be a no-op on a nil receiver.
func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	j.Plan("a", 0, Benign, 0, 0, false, false)
	j.Cell("a", Result{})
	j.Observe(nil)
	if err := j.Sync(); err != nil {
		t.Errorf("nil Sync = %v", err)
	}
	if err := j.Err(); err != nil {
		t.Errorf("nil Err = %v", err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}
