package fi

import (
	"fmt"
	"sort"

	"ferrum/internal/machine"
)

// SiteStats aggregates per-static-instruction fault outcomes from a
// profiling campaign: how often faults at that instruction's dynamic
// instances became silent corruptions. This is the empirical
// SDC-proneness signal SDCTune-style selective protection (ref. [9] of the
// paper) ranks instructions by.
type SiteStats struct {
	Loc     machine.SiteLoc
	Faults  int
	SDCs    int
	Crashes int
}

// Proneness is the fraction of sampled faults at this location that became
// SDCs.
func (s SiteStats) Proneness() float64 {
	if s.Faults == 0 {
		return 0
	}
	return float64(s.SDCs) / float64(s.Faults)
}

// ProfileProneness runs a fault-injection campaign against the (raw)
// target, attributing every sampled fault to the static instruction it hit
// and aggregating SDC counts per instruction. The result is sorted by
// descending proneness (ties broken by fault count, then location).
func ProfileProneness(tgt AsmTarget, c Campaign) ([]SiteStats, error) {
	m, err := machine.New(tgt.Prog, tgt.MemSize)
	if err != nil {
		return nil, fmt.Errorf("fi: %w", err)
	}
	if tgt.Setup != nil {
		if err := tgt.Setup(m); err != nil {
			return nil, err
		}
	}
	golden := m.Run(machine.RunOpts{Args: tgt.Args, MaxSteps: c.MaxSteps, RecordSiteLocs: true})
	if golden.Outcome != machine.OutcomeOK {
		return nil, fmt.Errorf("fi: golden run failed: %v (%s)", golden.Outcome, golden.CrashMsg)
	}
	if golden.DynSites == 0 {
		return nil, fmt.Errorf("fi: no fault-injection sites")
	}
	agg := map[machine.SiteLoc]*SiteStats{}
	for _, p := range makePlans(c, golden.DynSites) {
		loc := golden.SiteLocs[p.site]
		st := agg[loc]
		if st == nil {
			st = &SiteStats{Loc: loc}
			agg[loc] = st
		}
		st.Faults++
		r := m.Run(machine.RunOpts{
			Args:     tgt.Args,
			MaxSteps: c.MaxSteps,
			Fault:    &machine.Fault{Site: p.site, Bit: p.bit, Extra: p.extra},
		})
		switch classifyAsm(r, golden.Output) {
		case SDC:
			st.SDCs++
		case Crash:
			st.Crashes++
		}
	}
	out := make([]SiteStats, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Proneness(), out[j].Proneness()
		if pi != pj {
			return pi > pj
		}
		if out[i].Faults != out[j].Faults {
			return out[i].Faults > out[j].Faults
		}
		if out[i].Loc.Fn != out[j].Loc.Fn {
			return out[i].Loc.Fn < out[j].Loc.Fn
		}
		return out[i].Loc.Idx < out[j].Loc.Idx
	})
	return out, nil
}
