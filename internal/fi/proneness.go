package fi

import (
	"sort"

	"ferrum/internal/machine"
)

// SiteStats aggregates per-static-instruction fault outcomes from a
// profiling campaign: how often faults at that instruction's dynamic
// instances became silent corruptions. This is the empirical
// SDC-proneness signal SDCTune-style selective protection (ref. [9] of the
// paper) ranks instructions by. Every outcome class is counted, so
// Faults == Benigns + SDCs + Detected + Hangs + Crashes always holds.
type SiteStats struct {
	Loc      machine.SiteLoc
	Faults   int
	Benigns  int
	SDCs     int
	Detected int
	Crashes  int
	Hangs    int
	// LatencySum/LatencyN aggregate detection latency (machine cycles from
	// injection to the terminal event) over this location's executed faults.
	// Under pruning only the executed representatives contribute, so
	// LatencyN can be smaller than Faults.
	LatencySum float64
	LatencyN   int
}

// Proneness is the fraction of sampled faults at this location that became
// SDCs.
func (s SiteStats) Proneness() float64 {
	if s.Faults == 0 {
		return 0
	}
	return float64(s.SDCs) / float64(s.Faults)
}

// MeanLatency is the average detection latency (cycles) over this
// location's executed faults; 0 when none executed.
func (s SiteStats) MeanLatency() float64 {
	if s.LatencyN == 0 {
		return 0
	}
	return s.LatencySum / float64(s.LatencyN)
}

// ProfileProneness runs a fault-injection campaign against the (raw)
// target, attributing every sampled fault to the static instruction it hit
// and aggregating outcome counts per instruction. The result is sorted by
// descending proneness (ties broken by fault count, then location).
//
// It runs through the same engine as RunAsmCampaign — per-worker machines
// (Campaign.Workers), checkpointed fast-forwarding, Progress, Stats and Obs
// all behave identically — and aggregates from the per-plan outcome record,
// so the profile is deterministic and independent of worker count.
func ProfileProneness(tgt AsmTarget, c Campaign) ([]SiteStats, error) {
	// The journaled cell record carries only campaign totals, not the
	// per-site attribution a profile needs, so a complete-cell shortcut
	// would lose data; journaled per-plan outcomes replay fine through
	// runPlans, and the profile writes no cell record of its own.
	if c.Prior != nil && c.Prior.Result != nil {
		c.Prior = &CellState{Plans: c.Prior.Plans, PlanLats: c.Prior.PlanLats, PlanSites: c.Prior.PlanSites}
	}
	a, err := newAsmCampaign(tgt, c, true)
	if err != nil {
		return nil, err
	}
	po, err := a.run()
	if err != nil {
		return nil, err
	}
	res := a.result(po)
	c.Stats.add(res.Checkpoint)
	c.observe(res)

	// Under pruning the dense outcomes expand back onto the full plan space
	// (pruned plans Benign, deduped plans their representative's outcome);
	// every member of a class shares a static instruction, so per-site
	// attribution composes exactly.
	samples, outcomes := a.expandedOutcomes(po)
	agg := map[machine.SiteLoc]*SiteStats{}
	for i := 0; i < samples; i++ {
		p := a.orig[i]
		loc := a.golden.SiteLocs[p.site]
		st := agg[loc]
		if st == nil {
			st = &SiteStats{Loc: loc}
			agg[loc] = st
		}
		st.Faults++
		switch outcomes[i] {
		case Benign:
			st.Benigns++
		case SDC:
			st.SDCs++
		case Detected:
			st.Detected++
		case Crash:
			st.Crashes++
		case Hang:
			st.Hangs++
		}
	}
	// Latency attributes by the executed plan set po actually indexes (the
	// dense representatives under pruning), not the expanded space: only
	// executed faults measured anything.
	execPlans := a.orig
	if a.part != nil {
		execPlans = a.part.exec
	}
	for i := 0; i < po.samples && i < len(execPlans); i++ {
		if !po.hasLat[i] {
			continue
		}
		loc := a.golden.SiteLocs[execPlans[i].site]
		st := agg[loc]
		if st == nil {
			st = &SiteStats{Loc: loc}
			agg[loc] = st
		}
		st.LatencySum += po.lats[i]
		st.LatencyN++
	}
	out := make([]SiteStats, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Proneness(), out[j].Proneness()
		if pi != pj {
			return pi > pj
		}
		if out[i].Faults != out[j].Faults {
			return out[i].Faults > out[j].Faults
		}
		if out[i].Loc.Fn != out[j].Loc.Fn {
			return out[i].Loc.Fn < out[j].Loc.Fn
		}
		return out[i].Loc.Idx < out[j].Loc.Idx
	})
	return out, nil
}
