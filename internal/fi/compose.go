package fi

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"ferrum/internal/compose"
	"ferrum/internal/liveness"
	"ferrum/internal/machine"
	"ferrum/internal/obs"
)

// Compositional campaigns (the FastFlip half of ROADMAP item 1): the golden
// checkpoint schedule partitions the program into sections, the sample
// budget is stratified across sections proportionally to their site counts,
// and each plan runs only from its section's entry snapshot to the section
// boundary. A plan that terminates inside its section is classified as
// usual; one that reaches the boundary is classified by diffing its state
// against the golden checkpoint — an error confined to provably-dead state
// composes to Benign (clean output prefix) or SDC (corrupt prefix: the
// downstream appends the golden suffix to both, so the outputs stay
// different and nothing is left to detect it), and anything ambiguous falls
// back to an end-to-end continuation run. Per-section propagation tables
// are cached under a section content fingerprint, so re-running after an
// edit re-injects only the sections whose fingerprint changed.

// ComposeMode selects whether and how a campaign runs compositionally.
type ComposeMode uint8

const (
	// ComposeOff runs the monolithic campaign (the default).
	ComposeOff ComposeMode = iota
	// ComposeOn runs the campaign compositionally.
	ComposeOn
	// ComposeValidate runs compositionally AND monolithically, reporting the
	// SDC/detection rate agreement within the Wilson-interval tolerance in
	// Result.Composed.Validation.
	ComposeValidate
)

// String names the mode.
func (m ComposeMode) String() string {
	switch m {
	case ComposeOff:
		return "off"
	case ComposeOn:
		return "on"
	case ComposeValidate:
		return "validate"
	}
	return fmt.Sprintf("compose?%d", m)
}

// ParseComposeMode parses a -compose flag value.
func ParseComposeMode(s string) (ComposeMode, error) {
	switch s {
	case "", "off":
		return ComposeOff, nil
	case "on":
		return ComposeOn, nil
	case "validate":
		return ComposeValidate, nil
	}
	return ComposeOff, fmt.Errorf("fi: unknown compose mode %q (off|on|validate)", s)
}

// composeCheck rejects campaign configurations compose cannot honour.
func (c Campaign) composeCheck() error {
	if c.Prune != PruneOff {
		// Both modes repartition the plan space; composing the dense
		// representative indices with per-section strata would leave the
		// journal identity meaning neither.
		return fmt.Errorf("fi: compose mode %v is incompatible with prune mode %v", c.Compose, c.Prune)
	}
	if c.CIWidth > 0 {
		// The stratified plan sequence has no meaningful uniform prefix for
		// the early-stop rule to truncate.
		return fmt.Errorf("fi: compose mode %v is incompatible with CI-width early stopping", c.Compose)
	}
	if c.NoCheckpoint {
		// Sections ARE the checkpoint schedule.
		return fmt.Errorf("fi: compose mode %v requires checkpointing (NoCheckpoint set)", c.Compose)
	}
	return nil
}

// SectionRow is one section's line in the composed ledger.
type SectionRow struct {
	Start, End  uint64 // dynamic site range [Start, End)
	Fingerprint string // section content fingerprint (hex), the cache key
	Plans       int    // stratified sample budget allocated to this section
	Fallbacks   int    // plans that ran end-to-end
	Counts      [numOutcomes]int
}

// ComposeValidation reports the composed-vs-monolithic rate agreement of a
// ComposeValidate campaign. Tolerances are the sum of both estimates' 95%
// Wilson half-widths: two rates measuring the same underlying probability
// from independent samples should differ by less than that.
type ComposeValidation struct {
	MonoSamples  int
	SDC          float64 // composed SDC rate
	MonoSDC      float64
	SDCTol       float64
	Detected     float64 // composed detection rate
	MonoDetected float64
	DetectedTol  float64
	OK           bool
}

// ComposeSummary reports a composed campaign's bookkeeping. The identity
// Composed == Sections + Fallbacks always holds (the analogue of
// PruneSummary's ledger). Cache activity is reported through the obs
// counters only — it is process-local, not a property of the campaign.
type ComposeSummary struct {
	Enabled  bool   `json:",omitempty"`
	Mode     string `json:",omitempty"`
	Interval uint64 `json:",omitempty"` // effective checkpoint spacing K
	// Composed is the total plan count; Sections of them were answered by
	// section-local measurement plus boundary composition, Fallbacks ran
	// end-to-end because their boundary descriptor was ambiguous.
	Composed   int                `json:",omitempty"`
	Sections   int                `json:",omitempty"`
	Fallbacks  int                `json:",omitempty"`
	Rows       []SectionRow       `json:",omitempty"`
	Validation *ComposeValidation `json:",omitempty"`
}

// section is one checkpoint-delimited slice of the golden execution.
type section struct {
	start, end uint64 // dynamic site range [start, end)
	// entry is the golden snapshot at start (nil: run from program start);
	// exit is the golden snapshot at end (nil: terminal section, runs to the
	// program's end with no boundary stop).
	entry, exit *machine.Snapshot
	base, n     int   // plan index range [base, base+n)
	seed        int64 // section-local plan RNG seed
	key         uint64
	exitCycles  float64 // golden cycle clock at the exit boundary
	deadR       liveness.RegSet
	deadF       liveness.FlagSet
}

// planMeta is the per-plan descriptor metadata a fresh (or cache-served)
// plan leaves behind for rebuilding the section's propagation table.
// Workers write disjoint indices; the runPlans WaitGroup publishes them.
type planMeta struct {
	set      bool
	class    compose.Class
	boundary bool    // resolved at the section boundary
	localLat float64 // injection → boundary distance (boundary plans only)
	outDig   uint64  // faulty output digest (ClassOutput plans only)
}

// buildSections derives the section partition from the recorded snapshot
// schedule. Empty site ranges (a snapshot at site 0, or two snapshots at
// the same count) are dropped; the terminal section always runs to program
// end.
func buildSections(cps *asmCheckpoints, dynSites uint64) []section {
	var secs []section
	var prev uint64
	var prevSnap *machine.Snapshot
	for i, s := range cps.snaps {
		if s.Sites() > prev {
			secs = append(secs, section{start: prev, end: s.Sites(), entry: prevSnap, exit: s})
		}
		prev, prevSnap = s.Sites(), cps.snaps[i]
	}
	if dynSites > prev {
		secs = append(secs, section{start: prev, end: dynSites, entry: prevSnap})
	}
	return secs
}

// makeSectionPlans samples one section's stratified plan slice: sites
// uniform in [start, end), bits and multi-bit extras exactly as makePlans
// draws them, from the section-local seed — so a section's plan sequence is
// a pure function of its identity, not of its ordinal or its neighbours.
func makeSectionPlans(c Campaign, sec *section, width func(uint64) uint) []plannedFault {
	rng := rand.New(rand.NewSource(sec.seed))
	plans := make([]plannedFault, sec.n)
	for i := range plans {
		site := sec.start + uint64(rng.Int63n(int64(sec.end-sec.start)))
		w := uint(64)
		if width != nil {
			w = width(site)
		}
		p := plannedFault{idx: sec.base + i, site: site, bit: uint(rng.Intn(int(w)))}
		bits := c.BitsPerFault
		if bits > int(w) {
			bits = int(w)
		}
		for extra := 1; extra < bits; extra++ {
			b := uint(rng.Intn(int(w)))
			for duplicateBit(p, b) {
				b = uint(rng.Intn(int(w)))
			}
			p.extra = append(p.extra, b)
		}
		plans[i] = p
	}
	return plans
}

func ciHalf(k, n int) float64 {
	lo, hi := wilson(float64(k), float64(n))
	return (hi - lo) / 2
}

// runComposedAsmCampaign is the compositional counterpart of the monolithic
// asmCampaign flow behind RunAsmCampaign.
func runComposedAsmCampaign(tgt AsmTarget, c Campaign) (Result, error) {
	m0, err := machine.New(tgt.Prog, tgt.MemSize)
	if err != nil {
		return Result{}, fmt.Errorf("fi: %w", err)
	}
	if tgt.Setup != nil {
		if err := tgt.Setup(m0); err != nil {
			return Result{}, fmt.Errorf("fi: %w", err)
		}
	}
	gsp := c.Obs.Span("golden")
	golden := m0.Run(machine.RunOpts{
		Args:           tgt.Args,
		MaxSteps:       c.MaxSteps,
		Profile:        true,
		RecordSiteBits: true,
	})
	gsp.SetAttr("dyn_insts", golden.DynInsts)
	gsp.SetAttr("dyn_sites", golden.DynSites)
	gsp.End()
	if golden.Outcome != machine.OutcomeOK {
		return Result{}, fmt.Errorf("fi: golden run failed: %v (%s)", golden.Outcome, golden.CrashMsg)
	}
	if golden.DynSites == 0 {
		return Result{}, ErrNoSites
	}
	m0.FuseProfile(golden.Profile)

	// The checkpoint replay doubles as the section scaffold: its snapshots
	// delimit sections and its function spans pin each section's fingerprint
	// to the code that actually executed inside it (including zero-site
	// functions, which a site-range mapping alone would miss).
	k := c.checkpointInterval(golden.DynSites)
	csp := c.Obs.Span("checkpoint.record")
	cps := &asmCheckpoints{}
	rec := m0.Run(machine.RunOpts{
		Args:            tgt.Args,
		MaxSteps:        c.MaxSteps,
		SitesHint:       golden.DynSites,
		CheckpointEvery: k,
		RecordFnSpans:   true,
		OnCheckpoint: func(s *machine.Snapshot) {
			cps.snaps = append(cps.snaps, s)
			cps.sites = append(cps.sites, s.Sites())
		},
	})
	csp.SetAttr("k", k)
	csp.SetAttr("snapshots", len(cps.snaps))
	csp.SetAttr("bytes", cps.bytes())
	csp.End()

	secs := buildSections(cps, golden.DynSites)

	// Whole-program and per-section fingerprints. The section key pins
	// everything that determines the section's propagation table: the data
	// image and arguments, the site range and schedule spacing, the golden
	// entry and exit states, the code executed inside, and the plan sequence
	// parameters. The global digest additionally pins the downstream context
	// that only ClassGlobal cache entries depend on.
	imageDig := m0.ImageDigest()
	argsDig := compose.Mix(append([]uint64{uint64(len(tgt.Args))}, tgt.Args...)...)
	allFns := make([]string, len(tgt.Prog.Funcs))
	for i, f := range tgt.Prog.Funcs {
		allFns[i] = f.Name
	}
	progDig := compose.CodeDigest(tgt.Prog, allFns)
	goldenOutDig := compose.OutputDigest(golden.Output)
	globalDig := compose.Mix(progDig, goldenOutDig, golden.DynSites,
		math.Float64bits(golden.Cycles), imageDig, argsDig, c.MaxSteps, uint64(c.BitsPerFault))

	weights := make([]uint64, len(secs))
	for i := range secs {
		weights[i] = secs[i].end - secs[i].start
	}
	budgets := compose.Alloc(c.Samples, weights)
	var widthFallbacks int
	width := siteWidth(golden.SiteBits, &widthFallbacks)
	plans := make([]plannedFault, 0, c.Samples)
	for i := range secs {
		sec := &secs[i]
		sec.base, sec.n = len(plans), budgets[i]
		sec.seed = compose.SectionSeed(c.Seed, sec.start, sec.end)
		plans = append(plans, makeSectionPlans(c, sec, width)...)

		entryDig := uint64(0)
		if sec.entry != nil {
			entryDig = sec.entry.Digest()
		}
		var exitDig uint64
		if sec.exit != nil {
			exitDig = sec.exit.Digest()
			sec.exitCycles = sec.exit.CyclesNow()
			if fn, idx, ok := m0.LocOf(sec.exit.PC()); ok {
				sec.deadR, sec.deadF = compose.DeadSets(tgt.Prog, fn, idx)
			}
		} else {
			// The terminal section's "exit state" is the golden program end.
			exitDig = compose.Mix(goldenOutDig, golden.DynSites, math.Float64bits(golden.Cycles))
		}
		secDig := compose.CodeDigest(tgt.Prog, compose.FnsInRange(rec.FnSpans, sec.start, sec.end))
		sec.key = compose.Mix(imageDig, argsDig, sec.start, sec.end, k,
			entryDig, exitDig, secDig, uint64(sec.seed), uint64(sec.n),
			uint64(c.BitsPerFault), c.MaxSteps)
	}
	if widthFallbacks > 0 {
		c.Obs.Counter(obs.MWidthFallbacks).Add(int64(widthFallbacks))
	}

	// Serve plans from cached section tables. A key hit serves every plan
	// whose validity class allows it: local and output-class plans on the
	// key alone, global-class plans only under an unchanged whole-program
	// digest — a partial hit re-executes just the stale global plans.
	cache := c.SectionCache
	metas := make([]planMeta, len(plans))
	var cached map[int]planResult
	if cache != nil {
		cached = map[int]planResult{}
		for i := range secs {
			sec := &secs[i]
			if sec.n == 0 {
				continue
			}
			t := cache.Get(sec.key)
			if t == nil {
				continue
			}
			if len(t.Plans) != sec.n || !tableMatchesPlans(t, plans[sec.base:sec.base+sec.n]) {
				// A fingerprint collision; vanishingly unlikely, but refuse
				// to serve results for different plans.
				continue
			}
			served := 0
			for j := 0; j < sec.n; j++ {
				cp := t.Plans[j]
				if cp.Class == compose.ClassGlobal && t.GlobalDigest != globalDig {
					continue
				}
				idx := sec.base + j
				r := planResult{o: Outcome(cp.Outcome), fb: cp.Fallback}
				if cp.Class == compose.ClassOutput {
					// Early program exit inside the section: the stored
					// faulty-output digest reclassifies against the CURRENT
					// golden output, so the entry survives golden changes.
					if cp.OutDigest == goldenOutDig {
						r.o = Benign
					} else {
						r.o = SDC
					}
				}
				if cp.HasLat {
					r.lat, r.hasLat = cp.Lat, true
					if cp.Boundary {
						// Boundary plans store the injection→boundary part;
						// the golden tail is this program's, not the one the
						// table was measured under.
						r.lat += golden.Cycles - sec.exitCycles
					}
				}
				cached[idx] = r
				metas[idx] = planMeta{set: true, class: cp.Class, boundary: cp.Boundary,
					localLat: cp.Lat, outDig: cp.OutDigest}
				served++
			}
			cache.Served(served)
		}
	}

	var restores, coldStarts, skipped atomic.Int64
	var mu sync.Mutex
	var machines []*machine.Machine
	findSec := func(site uint64) *section {
		i := sort.Search(len(secs), func(i int) bool { return secs[i].end > site })
		return &secs[i]
	}
	worker := func(m *machine.Machine, p plannedFault) planResult {
		sec := findSec(p.site)
		opts := machine.RunOpts{
			Args:     tgt.Args,
			MaxSteps: c.MaxSteps,
			Fault:    &machine.Fault{Site: p.site, Bit: p.bit, Extra: p.extra},
		}
		if sec.entry != nil {
			opts.Resume = sec.entry
			restores.Add(1)
			skipped.Add(int64(sec.entry.DynInsts()))
		} else {
			coldStarts.Add(1)
		}
		if sec.exit != nil {
			opts.StopAtSites = sec.end
		}
		r := m.Run(opts)
		var pr planResult
		meta := planMeta{set: true}
		if r.Outcome == machine.OutcomeBoundary {
			d := m.DiffSnapshots(r.Boundary, sec.exit)
			v, exact := compose.Classify(d, sec.deadR, sec.deadF)
			if v == compose.VerdictFallback {
				// Ambiguous boundary: continue the same run end-to-end. The
				// boundary snapshot carries the injection bookkeeping, so
				// outcome and latency match a monolithic full run.
				r2 := m.Run(machine.RunOpts{Args: tgt.Args, MaxSteps: c.MaxSteps, Resume: r.Boundary})
				pr.o = classifyAsm(r2, golden.Output)
				if r2.Injected {
					pr.lat, pr.hasLat = r2.Cycles-r2.FaultCycles, true
				}
				pr.fb = true
				meta.class = compose.ClassGlobal
			} else {
				if v == compose.VerdictSDC {
					pr.o = SDC
				} else {
					pr.o = Benign
				}
				meta.boundary = true
				meta.class = compose.ClassGlobal
				if exact {
					meta.class = compose.ClassLocal
				}
				if r.Injected {
					meta.localLat = r.Boundary.CyclesNow() - r.FaultCycles
					pr.lat, pr.hasLat = meta.localLat+(golden.Cycles-sec.exitCycles), true
				}
			}
		} else {
			pr.o = classifyAsm(r, golden.Output)
			if r.Injected {
				pr.lat, pr.hasLat = r.Cycles-r.FaultCycles, true
			}
			if r.Outcome == machine.OutcomeOK {
				meta.class = compose.ClassOutput
				meta.outDig = compose.OutputDigest(r.Output)
			} else {
				meta.class = compose.ClassLocal
			}
		}
		metas[p.idx] = meta
		return pr
	}

	isp := c.Obs.Span("inject")
	isp.SetAttr("plans", len(plans))
	po, err := runPlans(c, plans, func() (func(plannedFault) planResult, error) {
		m := m0.Clone()
		mu.Lock()
		machines = append(machines, m)
		mu.Unlock()
		return func(p plannedFault) planResult { return worker(m, p) }, nil
	}, cached)
	isp.End()
	if c.Obs != nil {
		mu.Lock()
		all := append([]*machine.Machine{m0}, machines...)
		mu.Unlock()
		var blocks, fused uint64
		for _, m := range all {
			b, f := m.DispatchStats()
			blocks += b
			fused += f
			for _, p := range m.FusionPairs() {
				if p.Hits > 0 {
					c.Obs.Counter(obs.MFusionPrefix + p.Pair).Add(int64(p.Hits))
				}
			}
		}
		c.Obs.Counter(obs.MBlocksEntered).Add(int64(blocks))
		c.Obs.Counter(obs.MFusedUops).Add(int64(fused))
	}
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Samples:  po.samples,
		Counts:   po.counts,
		DynSites: golden.DynSites,
		Golden:   golden.Output,
		Cycles:   golden.Cycles,
		Checkpoint: CheckpointSummary{
			Enabled:       true,
			Interval:      k,
			Snapshots:     len(cps.snaps),
			SnapshotBytes: cps.bytes(),
			Restores:      restores.Load(),
			ColdStarts:    coldStarts.Load(),
			SkippedInsts:  skipped.Load(),
		},
		Latency: aggregateLatency("cycles", po.samples, po.outcomes, po.lats, po.hasLat),
	}
	cs := ComposeSummary{Enabled: true, Mode: c.Compose.String(), Interval: k, Composed: po.samples}
	for i := range secs {
		sec := &secs[i]
		row := SectionRow{
			Start:       sec.start,
			End:         sec.end,
			Fingerprint: fmt.Sprintf("%016x", sec.key),
			Plans:       sec.n,
		}
		for j := 0; j < sec.n; j++ {
			row.Counts[po.outcomes[sec.base+j]]++
			if po.fbs[sec.base+j] {
				row.Fallbacks++
			}
		}
		cs.Fallbacks += row.Fallbacks
		cs.Rows = append(cs.Rows, row)
	}
	cs.Sections = cs.Composed - cs.Fallbacks
	res.Composed = cs

	// Rebuild and store each fully-measured section's propagation table.
	// Sections containing journal-replayed plans carry no descriptor
	// metadata and are skipped — resume correctness never depends on the
	// cache. Tables that served under a stale global digest were re-measured
	// plan-by-plan above, so the Put refreshes their global entries.
	if cache != nil {
		for i := range secs {
			sec := &secs[i]
			if sec.n == 0 {
				continue
			}
			complete := true
			for j := 0; j < sec.n; j++ {
				if !metas[sec.base+j].set {
					complete = false
					break
				}
			}
			if !complete {
				continue
			}
			t := &compose.Table{GlobalDigest: globalDig, Plans: make([]compose.CachedPlan, sec.n)}
			for j := 0; j < sec.n; j++ {
				idx := sec.base + j
				pm := metas[idx]
				cp := compose.CachedPlan{
					Site:      plans[idx].site,
					Bit:       uint16(plans[idx].bit),
					Outcome:   uint8(po.outcomes[idx]),
					Fallback:  po.fbs[idx],
					Class:     pm.class,
					Boundary:  pm.boundary,
					OutDigest: pm.outDig,
				}
				if po.hasLat[idx] {
					cp.HasLat = true
					if pm.boundary {
						cp.Lat = pm.localLat
					} else {
						cp.Lat = po.lats[idx]
					}
				}
				t.Plans[j] = cp
			}
			cache.Put(sec.key, t)
		}
	}

	if c.Compose == ComposeValidate {
		mc := c
		mc.Compose, mc.SectionCache = ComposeOff, nil
		mc.Journal, mc.Key, mc.Prior = nil, "", nil
		mc.Obs, mc.Progress, mc.Stats = nil, nil, nil
		mono, err := RunAsmCampaign(tgt, mc)
		if err != nil {
			return Result{}, fmt.Errorf("fi: compose validation: %w", err)
		}
		v := &ComposeValidation{
			MonoSamples:  mono.Samples,
			SDC:          res.SDCRate(),
			MonoSDC:      mono.SDCRate(),
			Detected:     res.Rate(Detected),
			MonoDetected: mono.Rate(Detected),
			SDCTol:       ciHalf(res.Counts[SDC], res.Samples) + ciHalf(mono.Counts[SDC], mono.Samples),
			DetectedTol:  ciHalf(res.Counts[Detected], res.Samples) + ciHalf(mono.Counts[Detected], mono.Samples),
		}
		v.OK = math.Abs(v.SDC-v.MonoSDC) <= v.SDCTol &&
			math.Abs(v.Detected-v.MonoDetected) <= v.DetectedTol
		res.Composed.Validation = v
	}

	c.Stats.add(res.Checkpoint)
	c.observe(res)
	c.journalCell(res)
	if err := c.journalErr(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// tableMatchesPlans cross-checks a cached table's plan identity against the
// regenerated section plans.
func tableMatchesPlans(t *compose.Table, plans []plannedFault) bool {
	for j, p := range plans {
		if t.Plans[j].Site != p.site || t.Plans[j].Bit != uint16(p.bit) {
			return false
		}
	}
	return true
}
