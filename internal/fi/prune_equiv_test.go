package fi

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"ferrum/internal/machine"
	"ferrum/internal/obs"
)

// These tests pin the pruned-campaign contract: a campaign that answers
// dead and masked plans statically is bit-identical to the full campaign
// (those outcomes are Benign by construction), and a PruneFull campaign —
// which also folds each (static instruction, bit) class onto one executed
// representative — stays Wilson-interval-compatible with it. The exact
// bookkeeping identity Planned == Executed + Dead + Masked + Deduped holds
// throughout, for any worker count, under -race.

func mustPlans(t *testing.T, c Campaign, sites uint64, width func(uint64) uint) []plannedFault {
	t.Helper()
	plans, err := makePlans(c, sites, width)
	if err != nil {
		t.Fatal(err)
	}
	return plans
}

func TestMakePlansNoSites(t *testing.T) {
	if _, err := makePlans(Campaign{Samples: 10, Seed: 1}, 0, nil); !errors.Is(err, ErrNoSites) {
		t.Fatalf("makePlans with 0 sites = %v, want ErrNoSites", err)
	}
}

func TestSiteWidthFallbackCounted(t *testing.T) {
	var n int
	width := siteWidth([]uint16{8, 0}, &n)
	if w := width(0); w != 8 || n != 0 {
		t.Fatalf("recorded width: got %d (fallbacks %d)", w, n)
	}
	if w := width(1); w != 64 || n != 1 {
		t.Fatalf("zero width: got %d (fallbacks %d), want 64 (1)", w, n)
	}
	if w := width(5); w != 64 || n != 2 {
		t.Fatalf("out-of-range site: got %d (fallbacks %d), want 64 (2)", w, n)
	}
	// A nil counter must still fall back without crashing.
	if w := siteWidth([]uint16{0}, nil)(0); w != 64 {
		t.Fatalf("nil-counter fallback width = %d", w)
	}
}

func TestParsePruneMode(t *testing.T) {
	for _, m := range []PruneMode{PruneOff, PruneDead, PruneExact, PruneFull} {
		got, err := ParsePruneMode(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v: got %v, %v", m, got, err)
		}
	}
	if m, err := ParsePruneMode(""); err != nil || m != PruneOff {
		t.Errorf("empty string: got %v, %v", m, err)
	}
	if _, err := ParsePruneMode("bogus"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func checkPruneIdentity(t *testing.T, ctx string, pr PruneSummary, samples int) {
	t.Helper()
	if !pr.Enabled {
		t.Fatalf("%s: result carries no prune summary", ctx)
	}
	if pr.Planned != samples {
		t.Errorf("%s: planned %d != samples %d", ctx, pr.Planned, samples)
	}
	if pr.Executed+pr.Dead+pr.Masked+pr.Deduped != pr.Planned {
		t.Errorf("%s: bookkeeping identity broken: %+v", ctx, pr)
	}
}

// TestPrunedPlansAreBenign is the direct soundness check behind the
// bit-identical claim: every plan the partition answers statically, when
// actually executed, is Benign. (The equivalence tests alone could mask a
// misclassification through count cancellation; this cannot.)
func TestPrunedPlansAreBenign(t *testing.T) {
	for _, protect := range []bool{false, true} {
		tgt := asmTarget(t, protect)
		c := Campaign{Samples: 250, Seed: 99, MaxSteps: equivSteps, Prune: PruneExact}
		a, err := newAsmCampaign(tgt, c, false)
		if err != nil {
			t.Fatal(err)
		}
		m, err := a.build()
		if err != nil {
			t.Fatal(err)
		}
		pruned := 0
		for i, p := range a.orig {
			if a.part.assign[i] >= 0 {
				continue
			}
			pruned++
			f := machine.Fault{Site: p.site, Bit: p.bit, Extra: p.extra}
			r := m.Run(machine.RunOpts{Args: tgt.Args, MaxSteps: c.MaxSteps, Fault: &f})
			if o := classifyAsm(r, a.golden.Output); o != Benign {
				t.Errorf("protect=%v plan %d (site %d bit %d) pruned as %d but executes to %v",
					protect, i, p.site, p.bit, a.part.assign[i], o)
			}
		}
		if pruned == 0 {
			t.Errorf("protect=%v: no plans pruned; the check is vacuous", protect)
		}
	}
}

// TestPruneEquivalence: pruned-vs-full across {bfs, lud} × {raw, ferrum} ×
// {1, 8} workers. Exact modes (dead, exact) must be bit-identical to the
// unpruned campaign; full mode must agree within overlapping Wilson
// intervals and be deterministic across worker counts.
func TestPruneEquivalence(t *testing.T) {
	for _, bench := range []string{"bfs", "lud"} {
		inst := equivBench(t, bench)
		for _, protect := range []bool{false, true} {
			tech := map[bool]string{false: "raw", true: "ferrum"}[protect]
			tgt := equivAsmTarget(t, inst, protect)
			base := Campaign{Samples: 120, Seed: 2026, MaxSteps: equivSteps, Workers: 2}

			direct := base
			direct.NoCheckpoint = true
			want, err := RunAsmCampaign(tgt, direct)
			if err != nil {
				t.Fatalf("%s/%s: full: %v", bench, tech, err)
			}
			if want.Pruned.Enabled {
				t.Fatalf("%s/%s: unpruned campaign reported a prune summary", bench, tech)
			}

			var fullCounts *[numOutcomes]int
			for _, mode := range []PruneMode{PruneDead, PruneExact, PruneFull} {
				for _, workers := range []int{1, 8} {
					c := base
					c.Prune = mode
					c.Workers = workers
					got, err := RunAsmCampaign(tgt, c)
					if err != nil {
						t.Fatalf("%s/%s %v w=%d: %v", bench, tech, mode, workers, err)
					}
					ctx := bench + "/" + tech + "/" + mode.String()
					checkPruneIdentity(t, ctx, got.Pruned, base.Samples)
					if got.Samples != base.Samples {
						t.Errorf("%s: samples %d != %d", ctx, got.Samples, base.Samples)
					}
					if got.DynSites != want.DynSites || !equalOutput(got.Golden, want.Golden) {
						t.Errorf("%s: golden-run fields differ", ctx)
					}
					switch mode {
					case PruneDead, PruneExact:
						if got.Counts != want.Counts {
							t.Errorf("%s w=%d: counts %v != full %v", ctx, workers, got.Counts, want.Counts)
						}
						if got.Pruned.Deduped != 0 {
							t.Errorf("%s: exact mode deduplicated %d plans", ctx, got.Pruned.Deduped)
						}
					case PruneFull:
						// Deterministic across worker counts...
						if fullCounts == nil {
							cp := got.Counts
							fullCounts = &cp
						} else if got.Counts != *fullCounts {
							t.Errorf("%s w=%d: counts %v != w=1 %v", ctx, workers, got.Counts, *fullCounts)
						}
						// ... and statistically compatible with the full run.
						lo, hi := want.CI95()
						plo, phi := got.CI95()
						if phi < lo || plo > hi {
							t.Errorf("%s: SDC CI [%.3f,%.3f] disjoint from full [%.3f,%.3f]",
								ctx, plo, phi, lo, hi)
						}
					}
					if mode == PruneDead && got.Pruned.Masked != 0 {
						t.Errorf("%s: dead-only mode pruned %d masked plans", ctx, got.Pruned.Masked)
					}
				}
			}
		}
	}
}

// TestPruneReduction pins the acceptance bar: on at least one Rodinia cell
// a PruneFull campaign executes ≥ 3x fewer plans than it answers. knn at
// 16000 samples saturates its (static, bit) class space — executed plans
// are bounded by the distinct classes the site distribution can reach, so
// the reduction keeps growing with the sample budget (7x at 32000).
func TestPruneReduction(t *testing.T) {
	inst := equivBench(t, "knn")
	tgt := equivAsmTarget(t, inst, false)
	c := Campaign{Samples: 16000, Seed: 7, MaxSteps: equivSteps, Workers: 8, Prune: PruneFull}
	res, err := RunAsmCampaign(tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	pr := res.Pruned
	checkPruneIdentity(t, "knn/raw", pr, c.Samples)
	if pr.Executed == 0 || pr.Classes == 0 {
		t.Fatalf("degenerate partition: %+v", pr)
	}
	if pr.Planned < 3*pr.Executed {
		t.Errorf("reduction %d/%d < 3x: %+v", pr.Planned, pr.Executed, pr)
	}
	t.Logf("knn/raw: %d planned, %d executed (%.1fx), %d dead, %d masked, %d deduped, %d classes",
		pr.Planned, pr.Executed, float64(pr.Planned)/float64(pr.Executed),
		pr.Dead, pr.Masked, pr.Deduped, pr.Classes)
}

// TestPruneObsCounters: a pruned campaign publishes the fi.pruned_* family
// and the totals reconcile with the result's summary.
func TestPruneObsCounters(t *testing.T) {
	ob := obs.New()
	tgt := asmTarget(t, true)
	c := Campaign{Samples: 200, Seed: 11, MaxSteps: equivSteps, Prune: PruneFull,
		Obs: ob.Cell("cell", 0)}
	res, err := RunAsmCampaign(tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	snap := ob.Reg.Snapshot()
	pr := res.Pruned
	if n := snap.Counters[obs.MPrunedCampaigns]; n != 1 {
		t.Errorf("fi.pruned_campaigns = %d", n)
	}
	if n := snap.Counters[obs.MPrunedPlans]; n != int64(pr.Dead+pr.Masked+pr.Deduped) {
		t.Errorf("fi.pruned_plans = %d, want %d", n, pr.Dead+pr.Masked+pr.Deduped)
	}
	if n := snap.Counters[obs.MPrunedDead]; n != int64(pr.Dead) {
		t.Errorf("fi.pruned_dead = %d, want %d", n, pr.Dead)
	}
	// fi.plans reports the statistical weight, not the executed count.
	if n := snap.Counters[obs.MPlans]; n != int64(c.Samples) {
		t.Errorf("fi.plans = %d, want %d", n, c.Samples)
	}
}

func TestPruneRejectsCIWidth(t *testing.T) {
	tgt := asmTarget(t, false)
	c := Campaign{Samples: 50, Seed: 1, Prune: PruneFull, CIWidth: 0.1}
	if _, err := RunAsmCampaign(tgt, c); err == nil ||
		!strings.Contains(err.Error(), "early stopping") {
		t.Fatalf("CIWidth+Prune accepted: %v", err)
	}
}

func TestPruneRejectsIR(t *testing.T) {
	tgt := equivIRTarget(t, equivBench(t, "bfs"), false)
	c := Campaign{Samples: 50, Seed: 1, Prune: PruneDead}
	if _, err := RunIRCampaign(tgt, c); err == nil ||
		!strings.Contains(err.Error(), "not supported for IR") {
		t.Fatalf("IR campaign accepted prune mode: %v", err)
	}
}

// TestPruneProneness: per-site attribution composes with pruning — every
// class member shares its representative's static site, so the pruned
// profile is identical to the full one in exact modes.
func TestPruneProneness(t *testing.T) {
	tgt := asmTarget(t, false)
	base := Campaign{Samples: 200, Seed: 21, MaxSteps: equivSteps, Workers: 4}
	want, err := ProfileProneness(tgt, base)
	if err != nil {
		t.Fatal(err)
	}
	c := base
	c.Prune = PruneExact
	got, err := ProfileProneness(tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pruned profile has %d sites, full %d", len(got), len(want))
	}
	for i := range want {
		// Latency aggregates over executed plans only, so a pruned profile
		// legitimately observes fewer (class representatives stand in for
		// their members, and statically-answered plans never ran); the
		// outcome attribution is what must compose exactly.
		g, w := got[i], want[i]
		g.LatencySum, g.LatencyN = 0, 0
		w.LatencySum, w.LatencyN = 0, 0
		if g != w {
			t.Errorf("site %d: pruned %+v != full %+v", i, got[i], want[i])
		}
		if got[i].LatencyN > want[i].LatencyN {
			t.Errorf("site %d: pruned profile observed more latencies (%d) than the full one (%d)",
				i, got[i].LatencyN, want[i].LatencyN)
		}
	}
}

// TestPruneKillResume: a pruned journaled campaign crashed mid-run resumes
// to the identical result, and the journal meta's Prune field fences
// resumes under a different partition.
func TestPruneKillResume(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivAsmTarget(t, inst, true)
	const keep = 10
	base := Campaign{Samples: 300, Seed: 12345, MaxSteps: equivSteps, Workers: 8, Prune: PruneFull}
	want, err := RunAsmCampaign(tgt, base)
	if err != nil {
		t.Fatal(err)
	}
	if want.Pruned.Executed <= keep {
		t.Fatalf("only %d executed plans; crash test needs > %d", want.Pruned.Executed, keep)
	}

	path := journalPath(t)
	meta := JournalMeta{Tool: "test", Seed: base.Seed, Samples: base.Samples, Prune: base.Prune.String()}
	j, err := CreateJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	c := base
	c.Journal, c.Key = j, "cell"
	full, err := RunAsmCampaign(tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	if full.Counts != want.Counts || full.Pruned != want.Pruned {
		t.Fatalf("journaled run %+v != baseline %+v", full, want)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	crashJournal(t, path, "cell", keep)
	ob := obs.New()
	st, j2, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Meta.Check(meta); err != nil {
		t.Fatal(err)
	}
	// A resume under a different prune mode (different plan partition) must
	// be refused: the journaled indices are dense representative indices.
	unpruned := meta
	unpruned.Prune = ""
	if err := st.Meta.Check(unpruned); err == nil {
		t.Fatal("journal meta accepted a resume with pruning off")
	}
	cs := st.Cell("cell")
	if cs == nil || cs.Result != nil || len(cs.Plans) != keep {
		t.Fatalf("crash journal cell state = %+v, want partial with %d plans", cs, keep)
	}
	j2.Observe(ob)
	c2 := base
	c2.Journal, c2.Key, c2.Prior = j2, "cell", cs
	c2.Obs = ob.Cell("cell", 0)
	got, err := RunAsmCampaign(tgt, c2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counts != want.Counts || got.Samples != want.Samples || got.Pruned != want.Pruned {
		t.Errorf("partial resume %+v != baseline %+v", got, want)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	snap := ob.Reg.Snapshot()
	if n := snap.Counters[obs.MJournalSkippedPlans]; n != keep {
		t.Errorf("journal.skipped_plans = %d, want %d", n, keep)
	}
	if n := snap.Counters[obs.MPlans]; n != int64(base.Samples) {
		t.Errorf("resumed fi.plans = %d, want %d", n, base.Samples)
	}

	// Full-cell resume: answered without any execution, Progress still
	// reports the complete (unpruned) sample count.
	st2, j3, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cs2 := st2.Cell("cell")
	if cs2 == nil || cs2.Result == nil {
		t.Fatalf("cell record missing after completed resume: %+v", cs2)
	}
	if len(cs2.Plans) != want.Pruned.Executed {
		t.Errorf("journal holds %d plan records, want executed %d", len(cs2.Plans), want.Pruned.Executed)
	}
	var progressed atomic.Int64
	c3 := base
	c3.Journal, c3.Key, c3.Prior = j3, "cell", cs2
	c3.Progress = func(done int) { progressed.Store(int64(done)) }
	again, err := RunAsmCampaign(tgt, c3)
	if err != nil {
		t.Fatal(err)
	}
	if again.Counts != want.Counts || again.Pruned != want.Pruned {
		t.Errorf("full-cell resume %+v != baseline %+v", again, want)
	}
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
	if progressed.Load() != int64(base.Samples) {
		t.Errorf("full-cell resume reported progress %d, want %d", progressed.Load(), base.Samples)
	}
}
