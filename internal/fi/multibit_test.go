package fi

import (
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/backend"
	"ferrum/internal/ferrumpass"
	"ferrum/internal/ir"
	"ferrum/internal/machine"
)

// TestMultiBitFaultsStillDetected: FERRUM duplicates whole values, so any
// number of bit flips confined to one destination register still produces
// a duplicate/original mismatch — multi-bit upsets within a word are
// detected exactly like single flips (the future-work scenario of §II-A).
func TestMultiBitFaultsStillDetected(t *testing.T) {
	mod, err := ir.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	prot, _, err := ferrumpass.Protect(prog, ferrumpass.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bits := range []int{2, 3, 4} {
		res, err := RunAsmCampaign(AsmTarget{
			Prog: prot, MemSize: memSize, Args: []uint64{8, 8192}, Setup: loadArray,
		}, Campaign{Samples: 200, Seed: 11, BitsPerFault: bits})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count(SDC) != 0 {
			t.Errorf("bits=%d: SDCs = %d, want 0", bits, res.Count(SDC))
		}
		if res.Count(Detected) == 0 {
			t.Errorf("bits=%d: nothing detected", bits)
		}
	}
}

// TestMultiBitRaisesRawSeverity: in the unprotected program, multi-bit
// faults corrupt more aggressively (never less) than single-bit faults.
func TestMultiBitRaisesRawSeverity(t *testing.T) {
	mod, err := ir.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	tgt := AsmTarget{Prog: prog, MemSize: memSize, Args: []uint64{8, 8192}, Setup: loadArray}
	single, err := RunAsmCampaign(tgt, Campaign{Samples: 400, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	double, err := RunAsmCampaign(tgt, Campaign{Samples: 400, Seed: 21, BitsPerFault: 2})
	if err != nil {
		t.Fatal(err)
	}
	// More flipped bits cannot increase the benign fraction much; allow
	// slack for sampling noise but catch inverted behaviour.
	if double.Rate(Benign) > single.Rate(Benign)+0.1 {
		t.Errorf("double-bit benign rate %.2f implausibly above single-bit %.2f",
			double.Rate(Benign), single.Rate(Benign))
	}
}

// TestMultiBitDistinctBits: every planned bit — primary and extras — is
// pairwise distinct. Extras that merely avoided the primary could still
// collide with each other, XOR-cancel, and silently degrade a planned
// 3-bit upset to a 1-bit fault (the regression this guards against).
func TestMultiBitDistinctBits(t *testing.T) {
	for _, bits := range []int{2, 3, 8, 32} {
		plans := mustPlans(t, Campaign{Samples: 500, Seed: 3, BitsPerFault: bits}, 100, nil)
		for _, p := range plans {
			if len(p.extra) != bits-1 {
				t.Fatalf("bits=%d: extra bits = %d, want %d", bits, len(p.extra), bits-1)
			}
			seen := map[uint]bool{p.bit: true}
			for _, b := range p.extra {
				if seen[b] {
					t.Fatalf("bits=%d: bit %d planned twice in %+v", bits, b, p)
				}
				seen[b] = true
			}
		}
	}
}

// TestMultiBitCappedAt64: more than 64 requested bits cannot be distinct in
// a 64-bit destination; the planner caps instead of spinning forever.
func TestMultiBitCappedAt64(t *testing.T) {
	plans := mustPlans(t, Campaign{Samples: 10, Seed: 4, BitsPerFault: 100}, 50, nil)
	for _, p := range plans {
		if len(p.extra) != 63 {
			t.Fatalf("extra bits = %d, want 63", len(p.extra))
		}
	}
}

// TestMultiBitMachineApply checks the machine flips all planned bits.
func TestMultiBitMachineApply(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$0, %rax
	out	%rax
	hlt
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(prog, memSize)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(machine.RunOpts{Fault: &machine.Fault{Site: 0, Bit: 0, Extra: []uint{2, 5}}})
	if !res.Injected || res.Output[0] != 0b100101 {
		t.Fatalf("output = %#b, want 0b100101", res.Output[0])
	}
}

func TestProfileProneness(t *testing.T) {
	mod, err := ir.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	tgt := AsmTarget{Prog: prog, MemSize: memSize, Args: []uint64{8, 8192}, Setup: loadArray}
	stats, err := ProfileProneness(tgt, Campaign{Samples: 400, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no stats")
	}
	totalFaults := 0
	for i, s := range stats {
		totalFaults += s.Faults
		if s.SDCs > s.Faults || s.Crashes > s.Faults {
			t.Errorf("implausible stats %+v", s)
		}
		if i > 0 && stats[i-1].Proneness() < s.Proneness() {
			t.Error("stats not sorted by proneness")
		}
		if s.Loc.Fn == "" {
			t.Error("missing function name")
		}
	}
	if totalFaults != 400 {
		t.Errorf("faults sum to %d, want 400", totalFaults)
	}
	// Deterministic.
	stats2, err := ProfileProneness(tgt, Campaign{Samples: 400, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats2) != len(stats) || stats2[0] != stats[0] {
		t.Error("profiling not deterministic")
	}
}
