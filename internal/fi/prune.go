package fi

import (
	"fmt"

	"ferrum/internal/machine"
	"ferrum/internal/prune"
)

// PruneMode selects how much of the static (site, bit) classification a
// campaign exploits. Dead and masked classifications are exact — a pruned
// campaign's table is bit-identical to the full campaign's — while
// representative deduplication is statistical: one execution stands in for
// every sampled fault of the same (static instruction, bit) class, so the
// table is Wilson-interval-compatible rather than identical.
type PruneMode uint8

const (
	// PruneOff executes every sampled plan (the default).
	PruneOff PruneMode = iota
	// PruneDead skips only dead-class plans (liveness-proven Benign). Exact.
	PruneDead
	// PruneExact skips dead and masked classes. Exact.
	PruneExact
	// PruneFull additionally executes one representative per
	// (static instruction, bit) class of live single-bit plans, weighting
	// its outcome by class cardinality. Statistical.
	PruneFull
)

// String names the mode.
func (m PruneMode) String() string {
	switch m {
	case PruneOff:
		return "off"
	case PruneDead:
		return "dead"
	case PruneExact:
		return "exact"
	case PruneFull:
		return "full"
	}
	return fmt.Sprintf("prune?%d", m)
}

// ParsePruneMode parses a -prune flag value.
func ParsePruneMode(s string) (PruneMode, error) {
	switch s {
	case "", "off":
		return PruneOff, nil
	case "dead":
		return PruneDead, nil
	case "exact":
		return PruneExact, nil
	case "full":
		return PruneFull, nil
	}
	return PruneOff, fmt.Errorf("fi: unknown prune mode %q (off|dead|exact|full)", s)
}

// PruneSummary reports a pruned campaign's exact-count bookkeeping. The
// identity Planned == Executed + Dead + Masked + Deduped always holds.
type PruneSummary struct {
	Enabled  bool   `json:",omitempty"`
	Mode     string `json:",omitempty"`
	Planned  int    `json:",omitempty"` // sampled plans (Campaign.Samples)
	Executed int    `json:",omitempty"` // plans actually run (class representatives)
	Dead     int    `json:",omitempty"` // answered Benign: destination/bit not live
	Masked   int    `json:",omitempty"` // answered Benign: bit destroyed before use
	Deduped  int    `json:",omitempty"` // answered by their class representative
	Classes  int    `json:",omitempty"` // distinct live (static, bit) classes executed
}

// Plan-assignment sentinels for planPartition.assign: non-negative values
// are dense indices into exec.
const (
	assignDead   = -1
	assignMasked = -2
)

// planPartition is a campaign's pruned plan space: the dense execution
// list (representatives re-indexed 0..len(exec)-1 so the journal, prefix
// and outcome machinery work unchanged), the per-generation-index
// assignment back onto it, and the live equivalence classes in
// scheduler-consumable form.
type planPartition struct {
	exec    []plannedFault
	assign  []int32 // per generation index: dense exec index, or assign*
	classes []prune.Class
	summary PruneSummary
}

// partitionPlans classifies every sampled plan against the static analysis
// and builds the pruned execution list. plans must be in generation order.
// siteStatics maps dynamic site -> static instruction id (from the golden
// run); statics maps the id to its location and destination.
func partitionPlans(mode PruneMode, plans []plannedFault, siteStatics []int32,
	an *prune.Analysis, statics []machine.StaticInstr) (*planPartition, error) {
	part := &planPartition{
		assign:  make([]int32, len(plans)),
		summary: PruneSummary{Enabled: true, Mode: mode.String(), Planned: len(plans)},
	}
	classAt := map[prune.ClassKey]int{} // key -> index into part.classes
	for i, p := range plans {
		if p.idx != i {
			return nil, fmt.Errorf("fi: prune: plan %d out of generation order", i)
		}
		if p.site >= uint64(len(siteStatics)) {
			return nil, fmt.Errorf("fi: prune: site %d beyond recorded statics (%d)", p.site, len(siteStatics))
		}
		static := siteStatics[p.site]
		if static < 0 || int(static) >= len(statics) {
			return nil, fmt.Errorf("fi: prune: static id %d out of range", static)
		}
		si := an.At(statics[static].Fn, statics[static].Idx)
		kind := planKind(mode, si, p)
		switch kind {
		case prune.Dead:
			part.assign[i] = assignDead
			part.summary.Dead++
			continue
		case prune.Masked:
			part.assign[i] = assignMasked
			part.summary.Masked++
			continue
		}
		// Live: execute, or fold onto an already-seen representative.
		if mode == PruneFull && len(p.extra) == 0 {
			key := prune.ClassKey{Static: static, Bit: uint16(p.bit)}
			if ci, ok := classAt[key]; ok {
				cl := &part.classes[ci]
				cl.Members = append(cl.Members, i)
				part.assign[i] = part.assign[cl.Members[0]]
				part.summary.Deduped++
				continue
			}
			classAt[key] = len(part.classes)
			part.classes = append(part.classes, prune.Class{
				Kind: prune.Live, Key: key, Members: []int{i},
			})
		}
		dense := int32(len(part.exec))
		part.exec = append(part.exec, plannedFault{
			idx: int(dense), site: p.site, bit: p.bit, extra: p.extra,
		})
		part.assign[i] = dense
	}
	part.summary.Executed = len(part.exec)
	part.summary.Classes = len(part.classes)
	return part, nil
}

// planKind combines the per-bit classifications of a plan's flipped bits:
// any live bit makes the plan live; an all-dead plan is dead; a mix of
// dead and masked bits is masked (still exactly Benign — every flipped bit
// is individually proven inert, and bit flips are independent XORs).
// PruneDead demotes masked classifications to live, executing them.
func planKind(mode PruneMode, si prune.SiteInfo, p plannedFault) prune.Kind {
	kind := si.Classify(p.bit)
	for _, b := range p.extra {
		switch si.Classify(b) {
		case prune.Live:
			return prune.Live
		case prune.Masked:
			if kind == prune.Dead {
				kind = prune.Masked
			}
		}
	}
	if kind == prune.Masked && mode == PruneDead {
		return prune.Live
	}
	return kind
}

// expandedOutcomes maps dense executed outcomes back onto the full
// generation-ordered plan space: pruned plans are Benign by construction,
// deduplicated plans take their representative's outcome. Without a
// partition it returns the plan outcomes as-is (including early-stop
// truncation).
func (a *asmCampaign) expandedOutcomes(po planOutcomes) (int, []Outcome) {
	if a.part == nil {
		return po.samples, po.outcomes
	}
	out := make([]Outcome, len(a.orig))
	for i := range a.orig {
		if oi := a.part.assign[i]; oi >= 0 {
			out[i] = po.outcomes[oi]
		} else {
			out[i] = Benign
		}
	}
	return len(out), out
}
