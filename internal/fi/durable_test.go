package fi

import (
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ferrum/internal/obs"
)

// These tests pin the durable-campaign contract: a campaign interrupted at
// an arbitrary point and resumed from its journal produces a Result
// byte-identical to an uninterrupted run, for both injection levels and any
// worker count, with reconciled fi.*/journal.* counters.

// crashJournal rewrites a completed journal as a killed process would have
// left it: the meta record, the first keep plan records (in write order),
// no cell record, and a torn half-written record at the tail.
func crashJournal(t *testing.T, path, key string, keep int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	kept := 0
	for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		var r journalRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		switch r.T {
		case "meta":
			out = append(out, line)
		case "plan":
			if kept < keep {
				out = append(out, line)
				kept++
			}
		}
	}
	if kept < keep {
		t.Fatalf("journal holds %d plan records, want >= %d", kept, keep)
	}
	body := strings.Join(out, "\n") + "\n" + `{"t":"plan","c":"` + key + `","i":`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

// testKillResume drives the full durable lifecycle for one campaign runner:
// baseline → journaled run → simulated crash (truncation + torn tail) →
// partial resume → full-cell resume, requiring the baseline Result at every
// stage and reconciled counters.
func testKillResume(t *testing.T, workers int, run func(Campaign) (Result, error)) {
	t.Helper()
	const samples, keep = 80, 30
	base := Campaign{Samples: samples, Seed: 12345, MaxSteps: equivSteps, Workers: workers}
	want, err := run(base)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	check := func(stage string, got Result) {
		t.Helper()
		if got.Counts != want.Counts || got.Samples != want.Samples {
			t.Errorf("%s: counts %v (n=%d) != baseline %v (n=%d)",
				stage, got.Counts, got.Samples, want.Counts, want.Samples)
		}
		if got.DynSites != want.DynSites || !equalOutput(got.Golden, want.Golden) {
			t.Errorf("%s: golden-run fields differ from baseline", stage)
		}
	}

	path := journalPath(t)
	meta := JournalMeta{Tool: "test", Seed: base.Seed, Samples: samples}
	j, err := CreateJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	c := base
	c.Journal, c.Key = j, "cell"
	full, err := run(c)
	if err != nil {
		t.Fatalf("journaled run: %v", err)
	}
	check("journaled run", full)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	crashJournal(t, path, "cell", keep)

	ob := obs.New()
	st, j2, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.TornDropped {
		t.Error("crash journal's torn tail not reported")
	}
	if err := st.Meta.Check(meta); err != nil {
		t.Fatal(err)
	}
	cs := st.Cell("cell")
	if cs == nil || cs.Result != nil || len(cs.Plans) != keep {
		t.Fatalf("crash journal cell state = %+v, want partial with %d plans", cs, keep)
	}
	j2.Observe(ob)
	c2 := base
	c2.Journal, c2.Key, c2.Prior = j2, "cell", cs
	c2.Obs = ob.Cell("cell", 0)
	got, err := run(c2)
	if err != nil {
		t.Fatalf("partial resume: %v", err)
	}
	check("partial resume", got)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	snap := ob.Reg.Snapshot()
	if n := snap.Counters[obs.MJournalSkippedPlans]; n != keep {
		t.Errorf("journal.skipped_plans = %d, want %d", n, keep)
	}
	// fi.plans reconciles with the uninterrupted total: replayed + re-run.
	if n := snap.Counters[obs.MPlans]; n != samples {
		t.Errorf("resumed fi.plans = %d, want %d", n, samples)
	}

	// Third pass: the cell record exists now, so the campaign is answered
	// without a golden run or a single injection, and Progress still sees
	// the full sample count.
	ob2 := obs.New()
	st2, j3, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cs2 := st2.Cell("cell")
	if cs2 == nil || cs2.Result == nil {
		t.Fatalf("cell record missing after completed resume: %+v", cs2)
	}
	if len(cs2.Plans) != samples {
		t.Errorf("resumed journal holds %d plan records, want %d", len(cs2.Plans), samples)
	}
	var progressed atomic.Int64
	c3 := base
	c3.Journal, c3.Key, c3.Prior = j3, "cell", cs2
	c3.Obs = ob2.Cell("cell", 0)
	c3.Progress = func(done int) { progressed.Store(int64(done)) }
	again, err := run(c3)
	if err != nil {
		t.Fatalf("full-cell resume: %v", err)
	}
	check("full-cell resume", again)
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
	if progressed.Load() != samples {
		t.Errorf("full-cell resume reported progress %d, want %d", progressed.Load(), samples)
	}
	snap2 := ob2.Reg.Snapshot()
	if n := snap2.Counters[obs.MJournalSkippedCells]; n != 1 {
		t.Errorf("journal.skipped_cells = %d, want 1", n)
	}
	if n := snap2.Counters[obs.MPlans]; n != samples {
		t.Errorf("cell-replayed fi.plans = %d, want %d", n, samples)
	}
	if n := snap2.Counters[obs.MCkptCampaigns]; n != 0 {
		t.Errorf("cell replay counted %d ckpt.campaigns; no work happened", n)
	}
}

func TestKillResumeAsm(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivAsmTarget(t, inst, false)
	for _, workers := range []int{1, 8} {
		testKillResume(t, workers, func(c Campaign) (Result, error) {
			return RunAsmCampaign(tgt, c)
		})
	}
}

func TestKillResumeIR(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivIRTarget(t, inst, false)
	for _, workers := range []int{1, 8} {
		testKillResume(t, workers, func(c Campaign) (Result, error) {
			return RunIRCampaign(tgt, c)
		})
	}
}

// TestCampaignCancelMidRun interrupts a live journaled campaign through the
// Cancel channel — the watchdog path — and resumes it from the real journal
// the canceled process wrote.
func TestCampaignCancelMidRun(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivAsmTarget(t, inst, false)
	base := Campaign{Samples: 80, Seed: 12345, MaxSteps: equivSteps, Workers: 1}
	want, err := RunAsmCampaign(tgt, base)
	if err != nil {
		t.Fatal(err)
	}

	path := journalPath(t)
	j, err := CreateJournal(path, JournalMeta{Tool: "test", Seed: base.Seed, Samples: base.Samples})
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	var once sync.Once
	c := base
	c.Journal, c.Key, c.Cancel = j, "cell", cancel
	c.Progress = func(done int) {
		if done >= 32 {
			once.Do(func() { close(cancel) })
		}
	}
	if _, err := RunAsmCampaign(tgt, c); !errors.Is(err, ErrCampaignCanceled) {
		t.Fatalf("canceled campaign returned %v, want ErrCampaignCanceled", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, j2, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cs := st.Cell("cell")
	if cs == nil || cs.Result != nil {
		t.Fatalf("canceled campaign journaled a cell record: %+v", cs)
	}
	if len(cs.Plans) == 0 || len(cs.Plans) >= base.Samples {
		t.Fatalf("canceled campaign journaled %d plans, want a strict subset", len(cs.Plans))
	}
	c2 := base
	c2.Journal, c2.Key, c2.Prior = j2, "cell", cs
	got, err := RunAsmCampaign(tgt, c2)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Counts != want.Counts || got.Samples != want.Samples {
		t.Errorf("resume after cancel: counts %v != baseline %v", got.Counts, want.Counts)
	}
}

// TestCampaignCancelImmediate: an already-fired Cancel stops the campaign at
// the first batch boundary for any worker count.
func TestCampaignCancelImmediate(t *testing.T) {
	tgt := asmTarget(t, false)
	cancel := make(chan struct{})
	close(cancel)
	for _, workers := range []int{1, 8} {
		c := Campaign{Samples: 40, Seed: 3, Workers: workers, Cancel: cancel}
		if _, err := RunAsmCampaign(tgt, c); !errors.Is(err, ErrCampaignCanceled) {
			t.Errorf("workers=%d: err = %v, want ErrCampaignCanceled", workers, err)
		}
	}
}

// TestEarlyStopDeterministic: the CI-width rule truncates to the same prefix
// for every worker count and checkpointing mode. CIWidth 0.25 exceeds the
// worst-case Wilson width at n=64 (~0.238 at p=0.5), so the rule fires at
// the first stride boundary whatever the SDC rate.
func TestEarlyStopDeterministic(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivAsmTarget(t, inst, false)
	var want Result
	for i, cfg := range []struct {
		workers int
		noCkpt  bool
	}{{1, true}, {8, true}, {1, false}, {8, false}} {
		ob := obs.New()
		c := Campaign{
			Samples: 256, Seed: 12345, MaxSteps: equivSteps, CIWidth: 0.25,
			Workers: cfg.workers, NoCheckpoint: cfg.noCkpt,
			Obs: ob.Cell("cell", 0),
		}
		res, err := RunAsmCampaign(tgt, c)
		if err != nil {
			t.Fatalf("workers=%d noCkpt=%v: %v", cfg.workers, cfg.noCkpt, err)
		}
		if !res.EarlyStopped {
			t.Fatalf("workers=%d noCkpt=%v: campaign ran to %d samples without stopping",
				cfg.workers, cfg.noCkpt, res.Samples)
		}
		if res.Samples != earlyStopStride {
			t.Errorf("workers=%d noCkpt=%v: stopped at %d samples, want %d",
				cfg.workers, cfg.noCkpt, res.Samples, earlyStopStride)
		}
		if lo, hi := res.CI95(); hi-lo > c.CIWidth {
			t.Errorf("stopped CI width %.4f exceeds requested %.2f", hi-lo, c.CIWidth)
		}
		snap := ob.Reg.Snapshot()
		if n := snap.Counters[obs.MEarlyStops]; n != 1 {
			t.Errorf("fi.early_stops = %d, want 1", n)
		}
		if n := snap.Counters[obs.MPlans]; n != int64(res.Samples) {
			t.Errorf("fi.plans = %d, want effective sample count %d", n, res.Samples)
		}
		if i == 0 {
			want = res
		} else if res.Counts != want.Counts || res.Samples != want.Samples {
			t.Errorf("workers=%d noCkpt=%v: truncated result %v (n=%d) differs from first config %v (n=%d)",
				cfg.workers, cfg.noCkpt, res.Counts, res.Samples, want.Counts, want.Samples)
		}
	}
}

// TestEarlyStopIR: the rule lives in the shared plan runner, so IR campaigns
// stop identically.
func TestEarlyStopIR(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivIRTarget(t, inst, false)
	c := Campaign{Samples: 256, Seed: 12345, MaxSteps: equivSteps, Workers: 4, CIWidth: 0.25}
	res, err := RunIRCampaign(tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStopped || res.Samples != earlyStopStride {
		t.Errorf("IR early stop: stopped=%v at %d samples, want %d", res.EarlyStopped, res.Samples, earlyStopStride)
	}
}

// TestEarlyStopNotAtFullBudget: a campaign that reaches its configured
// Samples exactly is complete, not early-stopped — the rule only fires on a
// strict prefix.
func TestEarlyStopNotAtFullBudget(t *testing.T) {
	tgt := asmTarget(t, false)
	c := Campaign{Samples: earlyStopStride, Seed: 3, CIWidth: 0.25}
	res, err := RunAsmCampaign(tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.EarlyStopped {
		t.Error("full-budget campaign marked EarlyStopped")
	}
	if res.Samples != earlyStopStride {
		t.Errorf("samples = %d, want %d", res.Samples, earlyStopStride)
	}
}

// TestEarlyStopJournalReplay: the journaled cell record of an early-stopped
// campaign carries the truncated result, and replaying it preserves the
// EarlyStopped marker and effective sample count.
func TestEarlyStopJournalReplay(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivAsmTarget(t, inst, false)
	base := Campaign{Samples: 256, Seed: 12345, MaxSteps: equivSteps, Workers: 4, CIWidth: 0.25}

	path := journalPath(t)
	meta := JournalMeta{Tool: "test", Seed: base.Seed, Samples: base.Samples, CIWidth: base.CIWidth}
	j, err := CreateJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	c := base
	c.Journal, c.Key = j, "cell"
	want, err := RunAsmCampaign(tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if !want.EarlyStopped {
		t.Fatal("campaign did not early-stop")
	}

	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cs := st.Cell("cell")
	if cs == nil || cs.Result == nil {
		t.Fatal("early-stopped campaign left no cell record")
	}
	c2 := base
	c2.Prior = cs
	got, err := RunAsmCampaign(tgt, c2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EarlyStopped || got.Samples != want.Samples || got.Counts != want.Counts {
		t.Errorf("replayed early-stopped result %+v != original %+v", got, want)
	}
}

// TestMakePlansRespectsWidth: sampled bit numbers land inside each site's
// destination width — narrow destinations (flags, byte moves) never draw an
// out-of-range bit the injector would have to wrap, and SIMD destinations
// wider than 64 bits actually receive upper-lane faults.
func TestMakePlansRespectsWidth(t *testing.T) {
	widths := []uint{4, 8, 16, 32, 64, 256, 512}
	width := func(site uint64) uint { return widths[site%uint64(len(widths))] }
	plans := mustPlans(t, Campaign{Samples: 4000, Seed: 42}, uint64(len(widths)), width)
	if len(plans) != 4000 {
		t.Fatalf("planned %d faults, want 4000", len(plans))
	}
	sawUpper := false
	narrowBits := map[uint]bool{}
	for i, p := range plans {
		if p.idx != i {
			t.Fatalf("plan %d carries generation index %d", i, p.idx)
		}
		w := width(p.site)
		if p.bit >= w {
			t.Fatalf("plan %d: bit %d sampled for a %d-bit destination", i, p.bit, w)
		}
		if p.bit >= 64 {
			sawUpper = true
		}
		if w == 4 {
			narrowBits[p.bit] = true
		}
	}
	if !sawUpper {
		t.Error("destinations wider than 64 bits never received an upper-lane fault (the flat-[0,64) regression)")
	}
	for b := uint(0); b < 4; b++ {
		if !narrowBits[b] {
			t.Errorf("4-bit destinations never drew bit %d", b)
		}
	}
	// A nil width map is the IR case: every site is 64 bits wide.
	for _, p := range mustPlans(t, Campaign{Samples: 2000, Seed: 1}, 10, nil) {
		if p.bit >= 64 {
			t.Fatalf("nil-width plan sampled bit %d", p.bit)
		}
	}
}

// TestMakePlansMultiBitNarrowDest: BitsPerFault larger than the destination
// width is capped at the width — a 4-bit destination has only 4 distinct
// bits, and resampling for more would never terminate.
func TestMakePlansMultiBitNarrowDest(t *testing.T) {
	width := func(uint64) uint { return 4 }
	plans := mustPlans(t, Campaign{Samples: 50, Seed: 7, BitsPerFault: 8}, 3, width)
	for i, p := range plans {
		if len(p.extra) != 3 {
			t.Fatalf("plan %d: %d extra bits for a 4-bit destination, want 3 (cap minus primary)", i, len(p.extra))
		}
		seen := map[uint]bool{p.bit: true}
		for _, e := range p.extra {
			if e >= 4 {
				t.Fatalf("plan %d: extra bit %d outside the 4-bit destination", i, e)
			}
			if seen[e] {
				t.Fatalf("plan %d: duplicate bit %d", i, e)
			}
			seen[e] = true
		}
	}
}

// TestProfilePronenessParallelMatchesSerial pins the parity bugfix: the
// profiling campaign routes through the same worker/checkpoint engine as
// RunAsmCampaign, so a parallel profile deep-equals a serial one.
func TestProfilePronenessParallelMatchesSerial(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivAsmTarget(t, inst, false)
	base := Campaign{Samples: 300, Seed: 13, MaxSteps: equivSteps}
	serial := base
	serial.Workers = 1
	serial.NoCheckpoint = true
	want, err := ProfileProneness(tgt, serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par := base
		par.Workers = workers
		got, err := ProfileProneness(tgt, par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d (checkpointed) profile differs from serial direct profile", workers)
		}
	}
}

// TestProfilePronenessPlumbing: Workers, Progress, Stats and Obs all reach
// the profiling campaign (the regression was ProfileProneness ignoring every
// one of them).
func TestProfilePronenessPlumbing(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivAsmTarget(t, inst, false)
	stats := &CampaignStats{}
	ob := obs.New()
	var high atomic.Int64
	c := Campaign{
		Samples: 200, Seed: 13, MaxSteps: equivSteps, Workers: 4,
		Stats: stats, Obs: ob.Cell("profile", 0),
		Progress: func(done int) {
			for {
				h := high.Load()
				if int64(done) <= h || high.CompareAndSwap(h, int64(done)) {
					return
				}
			}
		},
	}
	rows, err := ProfileProneness(tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := high.Load(); got != 200 {
		t.Errorf("Progress high-water mark = %d, want 200", got)
	}
	if n := stats.Campaigns.Load(); n != 1 {
		t.Errorf("Stats.Campaigns = %d, want 1", n)
	}
	if stats.Restores.Load()+stats.ColdStarts.Load() != 200 {
		t.Errorf("Stats restores %d + cold starts %d != 200",
			stats.Restores.Load(), stats.ColdStarts.Load())
	}
	snap := ob.Reg.Snapshot()
	if n := snap.Counters[obs.MPlans]; n != 200 {
		t.Errorf("fi.plans = %d, want 200", n)
	}
	if n := snap.Counters[obs.MCampaigns]; n != 1 {
		t.Errorf("fi.campaigns = %d, want 1", n)
	}
	total := 0
	for _, r := range rows {
		total += r.Faults
	}
	if total != 200 {
		t.Errorf("profile rows aggregate %d faults, want 200", total)
	}
}

// TestSiteStatsOutcomeInvariant pins the dropped-outcome bugfix: every
// outcome class is counted, so Faults == Benigns+SDCs+Detected+Crashes+Hangs
// at every site and the rows account for every sample — on a protected
// target, Detected outcomes (the ones SiteStats used to drop) must show up.
func TestSiteStatsOutcomeInvariant(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivAsmTarget(t, inst, true)
	c := Campaign{Samples: 300, Seed: 7, MaxSteps: equivSteps, Workers: 4}
	rows, err := ProfileProneness(tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	total, detected := 0, 0
	for _, r := range rows {
		if sum := r.Benigns + r.SDCs + r.Detected + r.Crashes + r.Hangs; sum != r.Faults {
			t.Errorf("site %v: outcome fields sum to %d, Faults = %d", r.Loc, sum, r.Faults)
		}
		total += r.Faults
		detected += r.Detected
	}
	if total != c.Samples {
		t.Errorf("rows aggregate %d faults, want every one of the %d samples", total, c.Samples)
	}
	if detected == 0 {
		t.Error("protected target profiled zero Detected outcomes (the dropped-outcome regression)")
	}
}

// TestProfilePronenessJournalReplay: a profile resumed from a journal —
// including one whose campaign completed, i.e. a cell record exists —
// replays the per-plan outcomes and reproduces the fresh profile exactly.
// The cell record alone cannot answer a profile (no per-site attribution),
// so the engine must fall through to plan replay.
func TestProfilePronenessJournalReplay(t *testing.T) {
	inst := equivBench(t, "bfs")
	tgt := equivAsmTarget(t, inst, false)
	base := Campaign{Samples: 120, Seed: 13, MaxSteps: equivSteps, Workers: 2}
	want, err := ProfileProneness(tgt, base)
	if err != nil {
		t.Fatal(err)
	}

	path := journalPath(t)
	j, err := CreateJournal(path, JournalMeta{Tool: "test", Seed: base.Seed, Samples: base.Samples})
	if err != nil {
		t.Fatal(err)
	}
	c := base
	c.Journal, c.Key = j, "prof"
	if _, err := RunAsmCampaign(tgt, c); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cs := st.Cell("prof")
	if cs == nil || cs.Result == nil || len(cs.Plans) != base.Samples {
		t.Fatalf("journal cell state = %+v, want complete with %d plans", cs, base.Samples)
	}
	c2 := base
	c2.Prior = cs
	got, err := ProfileProneness(tgt, c2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("journal-replayed profile differs from fresh profile")
	}
}
