package fi

import (
	"math"
	"sort"
	"sync/atomic"

	"ferrum/internal/ir"
	"ferrum/internal/machine"
)

// DefaultCheckpointInterval auto-tunes the checkpoint spacing K for a
// campaign: DynSites/√Samples balances the one-off cost of recording
// DynSites/K snapshots against the per-plan cost of replaying on average
// K/2 sites, which is minimised (to first order) at K ≈ DynSites/√Samples.
// Always at least 1.
func DefaultCheckpointInterval(dynSites uint64, samples int) uint64 {
	if samples <= 0 {
		return dynSites + 1 // no plans: never checkpoint
	}
	k := uint64(float64(dynSites) / math.Sqrt(float64(samples)))
	if k < 1 {
		k = 1
	}
	return k
}

// checkpointInterval resolves the campaign's effective K.
func (c Campaign) checkpointInterval(dynSites uint64) uint64 {
	if c.CheckpointEvery > 0 {
		return c.CheckpointEvery
	}
	return DefaultCheckpointInterval(dynSites, c.Samples)
}

// CampaignStats accumulates checkpointing counters across many campaigns
// (e.g. a whole experiment suite). All fields are atomic; one instance may
// be shared by concurrent campaigns.
type CampaignStats struct {
	Campaigns     atomic.Int64 // campaigns that ran with checkpointing
	Snapshots     atomic.Int64 // snapshots recorded
	SnapshotBytes atomic.Int64 // dirtied memory captured across snapshots
	Restores      atomic.Int64 // plans resumed from a snapshot
	ColdStarts    atomic.Int64 // plans run from scratch (site before first snapshot)
	SkippedInsts  atomic.Int64 // dynamic instructions fast-forwarded over
}

func (s *CampaignStats) add(cs CheckpointSummary) {
	if s == nil || !cs.Enabled {
		return
	}
	s.Campaigns.Add(1)
	s.Snapshots.Add(int64(cs.Snapshots))
	s.SnapshotBytes.Add(int64(cs.SnapshotBytes))
	s.Restores.Add(cs.Restores)
	s.ColdStarts.Add(cs.ColdStarts)
	s.SkippedInsts.Add(cs.SkippedInsts)
}

// CheckpointSummary describes one campaign's checkpointing activity.
// A disabled campaign (Campaign.NoCheckpoint) leaves it zero.
type CheckpointSummary struct {
	Enabled       bool
	Interval      uint64 // effective K (dynamic sites between snapshots)
	Snapshots     int
	SnapshotBytes int   // total dirtied bytes captured across snapshots
	Restores      int64 // plans resumed from a snapshot
	ColdStarts    int64 // plans run from scratch
	SkippedInsts  int64 // dynamic instructions fast-forwarded over
}

// sortPlansBySite orders the fault plan by ascending site (stable, so
// plans at the same site keep their generation order). Outcome counts are
// order-independent, so sorting cannot change Result.Counts; it gives each
// worker's batch good snapshot locality.
func sortPlansBySite(plans []plannedFault) {
	sort.SliceStable(plans, func(i, j int) bool { return plans[i].site < plans[j].site })
}

// nearestSnapshot returns the latest snapshot taken at or before site, or
// -1 if the site precedes the first snapshot. snaps must be ordered by
// ascending Sites(), which the recording run guarantees.
func nearestSnapshot(sites []uint64, site uint64) int {
	return sort.Search(len(sites), func(i int) bool { return sites[i] > site }) - 1
}

// asmCheckpoints is the snapshot schedule recorded from one golden replay.
type asmCheckpoints struct {
	snaps []*machine.Snapshot
	sites []uint64 // snaps[i].Sites(), for binary search
}

func recordAsmCheckpoints(m *machine.Machine, tgt AsmTarget, c Campaign, k, dynSites uint64) *asmCheckpoints {
	cps := &asmCheckpoints{}
	m.Run(machine.RunOpts{
		Args:            tgt.Args,
		MaxSteps:        c.MaxSteps,
		SitesHint:       dynSites,
		CheckpointEvery: k,
		OnCheckpoint: func(s *machine.Snapshot) {
			cps.snaps = append(cps.snaps, s)
			cps.sites = append(cps.sites, s.Sites())
		},
	})
	return cps
}

func (cps *asmCheckpoints) bytes() int {
	n := 0
	for _, s := range cps.snaps {
		n += s.MemBytes()
	}
	return n
}

// irCheckpoints is the IR-level snapshot schedule from one golden replay.
type irCheckpoints struct {
	snaps []*ir.Snapshot
	sites []uint64
}

func recordIRCheckpoints(ip *ir.Interp, tgt IRTarget, c Campaign, k uint64) *irCheckpoints {
	cps := &irCheckpoints{}
	ip.Run(ir.RunOpts{
		Args:            tgt.Args,
		MaxSteps:        c.MaxSteps,
		CheckpointEvery: k,
		OnCheckpoint: func(s *ir.Snapshot) {
			cps.snaps = append(cps.snaps, s)
			cps.sites = append(cps.sites, s.Sites())
		},
	})
	return cps
}

func (cps *irCheckpoints) bytes() int {
	n := 0
	for _, s := range cps.snaps {
		n += s.MemBytes()
	}
	return n
}
