// Package fi implements the paper's fault-injection methodology (§IV-A2):
// statistical single-bit-flip campaigns against the machine model (the
// PINFI-style assembly-level injector) and against the IR interpreter (the
// LLFI-style injector used for "anticipated" coverage). One fault is
// sampled per execution: a uniformly random dynamic instruction with an
// architectural destination, and a uniformly random bit of that
// destination.
package fi

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"ferrum/internal/asm"
	"ferrum/internal/ir"
	"ferrum/internal/machine"
	"ferrum/internal/obs"
)

// Outcome classifies one injected execution against the golden run.
type Outcome uint8

// Injection outcomes.
const (
	Benign   Outcome = iota // completed with the correct output
	SDC                     // completed with a silently wrong output
	Detected                // a checker trapped
	Crash                   // memory fault, divide error, bad control transfer
	Hang                    // exceeded the step budget
	numOutcomes
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Benign:
		return "benign"
	case SDC:
		return "sdc"
	case Detected:
		return "detected"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	}
	return fmt.Sprintf("outcome?%d", o)
}

// Campaign configures an injection campaign.
type Campaign struct {
	Samples  int    // number of injected executions (paper: 1000)
	Seed     int64  // RNG seed; campaigns are deterministic given a seed
	MaxSteps uint64 // per-run dynamic instruction budget (0: default)
	Workers  int    // parallel workers (0: GOMAXPROCS)
	// BitsPerFault is the number of distinct bits flipped in the sampled
	// destination (default 1, the paper's fault model; >1 models the
	// multi-bit upsets §II-A defers to future work; capped at 64, the
	// widest destination). Assembly-level campaigns only.
	BitsPerFault int
	// Progress, if non-nil, receives the cumulative number of completed
	// injections (out of Samples) as the campaign advances. It may be
	// called concurrently from campaign worker goroutines; implementations
	// must be safe for concurrent use.
	Progress func(done int)
	// NoCheckpoint disables checkpointed fast-forwarding: every injected
	// run re-executes its unfaulted prefix from instruction zero. The two
	// paths produce byte-identical Result.Counts; this is the escape hatch
	// for debugging and for the equivalence tests.
	NoCheckpoint bool
	// CheckpointEvery overrides the snapshot spacing K (dynamic sites
	// between checkpoints). 0 auto-tunes via DefaultCheckpointInterval.
	CheckpointEvery uint64
	// Stats, if non-nil, accumulates checkpointing counters across
	// campaigns (shared, concurrency-safe sink). It predates Obs and is kept
	// as a thin adapter for library callers; new code should prefer Obs,
	// which captures the same counters plus spans in one registry.
	Stats *CampaignStats
	// Obs, if non-nil, attributes the campaign's phases — golden run,
	// snapshot recording, the injection loop — to the owning scheduler cell
	// as spans, and accumulates plan/outcome/checkpoint counters in the
	// observability registry. Nil disables instrumentation at zero cost:
	// nothing inside the per-plan inner loop ever touches it.
	Obs *obs.Ctx
}

// observe publishes a finished campaign's totals to the observability
// registry: plan/outcome counts plus the checkpointing counters that the
// legacy Stats adapter also accumulates. Called once per campaign, after
// the injection loop — never from inside it.
func (c Campaign) observe(res Result) {
	if c.Obs == nil {
		return
	}
	c.Obs.Counter(obs.MCampaigns).Add(1)
	c.Obs.Counter(obs.MPlans).Add(int64(res.Samples))
	for o := Outcome(0); o < numOutcomes; o++ {
		if n := res.Counts[o]; n > 0 {
			c.Obs.Counter(obs.MOutcomePrefix + o.String()).Add(int64(n))
		}
	}
	if ck := res.Checkpoint; ck.Enabled {
		c.Obs.Counter(obs.MCkptCampaigns).Add(1)
		c.Obs.Counter(obs.MCkptSnapshots).Add(int64(ck.Snapshots))
		c.Obs.Counter(obs.MCkptBytes).Add(int64(ck.SnapshotBytes))
		c.Obs.Counter(obs.MCkptRestores).Add(ck.Restores)
		c.Obs.Counter(obs.MCkptColdStarts).Add(ck.ColdStarts)
		c.Obs.Counter(obs.MCkptSkippedInsts).Add(ck.SkippedInsts)
	}
}

// Result aggregates campaign outcomes.
type Result struct {
	Samples  int
	Counts   [numOutcomes]int
	DynSites uint64 // dynamic fault-injection sites in the golden run
	Golden   []uint64
	// Cycles is the golden-run cycle count on the machine cycle model.
	// Only assembly-level campaigns set it; the IR interpreter has no
	// cycle model, so IR campaigns leave it zero.
	Cycles float64
	// Checkpoint reports the campaign's fast-forwarding activity; zero
	// when checkpointing was disabled.
	Checkpoint CheckpointSummary
}

// Count returns the number of runs with the given outcome.
func (r Result) Count(o Outcome) int { return r.Counts[o] }

// Rate returns the fraction of runs with the given outcome.
func (r Result) Rate(o Outcome) float64 {
	if r.Samples == 0 {
		return 0
	}
	return float64(r.Counts[o]) / float64(r.Samples)
}

// SDCRate returns the silent-data-corruption probability.
func (r Result) SDCRate() float64 { return r.Rate(SDC) }

// CI95 returns the 95% Wilson-score half-width interval of the SDC rate.
func (r Result) CI95() (lo, hi float64) {
	return wilson(float64(r.Counts[SDC]), float64(r.Samples))
}

func wilson(successes, n float64) (lo, hi float64) {
	if n == 0 {
		return 0, 0
	}
	const z = 1.959963984540054
	p := successes / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	return math.Max(0, center-half), math.Min(1, center+half)
}

// Coverage computes the paper's SDC-coverage metric:
// (SDC_raw - SDC_prot) / SDC_raw. It is 1 when the protected program shows
// no SDCs and 0 when protection is useless; a raw SDC rate of zero yields
// full coverage by convention.
func Coverage(raw, prot Result) float64 {
	r := raw.SDCRate()
	if r == 0 {
		return 1
	}
	c := (r - prot.SDCRate()) / r
	if c < 0 {
		return 0
	}
	return c
}

// Overhead computes the paper's runtime-overhead metric from golden-run
// cycles: (cycles_prot - cycles_raw) / cycles_raw.
func Overhead(rawCycles, protCycles float64) float64 {
	if rawCycles == 0 {
		return 0
	}
	return (protCycles - rawCycles) / rawCycles
}

// AsmTarget describes one program to inject at assembly level.
type AsmTarget struct {
	Prog    *asm.Program
	MemSize int
	Args    []uint64
	// Setup installs the benchmark's memory image; it runs once per
	// machine instance.
	Setup func(mem MemWriter) error
}

// MemWriter is the data-loading interface shared by the machine and the IR
// interpreter.
type MemWriter interface {
	WriteWordImage(addr, v uint64) error
	SetMemImage(addr uint64, data []byte) error
}

type plannedFault struct {
	site  uint64
	bit   uint
	extra []uint
}

// RunAsmCampaign executes a fault-injection campaign against the machine
// model. The fault plan is pre-generated from the seed, so results are
// deterministic and independent of worker count.
func RunAsmCampaign(tgt AsmTarget, c Campaign) (Result, error) {
	build := func() (*machine.Machine, error) {
		m, err := machine.New(tgt.Prog, tgt.MemSize)
		if err != nil {
			return nil, err
		}
		if tgt.Setup != nil {
			if err := tgt.Setup(m); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
	m0, err := build()
	if err != nil {
		return Result{}, fmt.Errorf("fi: %w", err)
	}
	gsp := c.Obs.Span("golden")
	golden := m0.Run(machine.RunOpts{Args: tgt.Args, MaxSteps: c.MaxSteps})
	gsp.SetAttr("dyn_insts", golden.DynInsts)
	gsp.SetAttr("dyn_sites", golden.DynSites)
	gsp.End()
	if golden.Outcome != machine.OutcomeOK {
		return Result{}, fmt.Errorf("fi: golden run failed: %v (%s)", golden.Outcome, golden.CrashMsg)
	}
	if golden.DynSites == 0 {
		return Result{}, fmt.Errorf("fi: program has no fault-injection sites")
	}
	res := Result{
		Samples:  c.Samples,
		DynSites: golden.DynSites,
		Golden:   golden.Output,
		Cycles:   golden.Cycles,
	}
	plans := makePlans(c, golden.DynSites)

	var (
		cps                           *asmCheckpoints
		restores, coldStarts, skipped atomic.Int64
	)
	if !c.NoCheckpoint && len(plans) > 0 {
		k := c.checkpointInterval(golden.DynSites)
		csp := c.Obs.Span("checkpoint.record")
		cps = recordAsmCheckpoints(m0, tgt, c, k, golden.DynSites)
		csp.SetAttr("k", k)
		csp.SetAttr("snapshots", len(cps.snaps))
		csp.SetAttr("bytes", cps.bytes())
		csp.End()
		sortPlansBySite(plans)
		res.Checkpoint = CheckpointSummary{
			Enabled:       true,
			Interval:      k,
			Snapshots:     len(cps.snaps),
			SnapshotBytes: cps.bytes(),
		}
	}
	run := func(m *machine.Machine, p plannedFault) Outcome {
		opts := machine.RunOpts{
			Args:     tgt.Args,
			MaxSteps: c.MaxSteps,
			Fault:    &machine.Fault{Site: p.site, Bit: p.bit, Extra: p.extra},
		}
		if cps != nil {
			if i := nearestSnapshot(cps.sites, p.site); i >= 0 {
				opts.Resume = cps.snaps[i]
				restores.Add(1)
				skipped.Add(int64(cps.snaps[i].DynInsts()))
			} else {
				coldStarts.Add(1)
			}
		}
		return classifyAsm(m.Run(opts), golden.Output)
	}
	isp := c.Obs.Span("inject")
	isp.SetAttr("plans", len(plans))
	counts, err := runParallel(c, plans, func() (func(plannedFault) Outcome, error) {
		m, err := build()
		if err != nil {
			return nil, err
		}
		return func(p plannedFault) Outcome { return run(m, p) }, nil
	})
	isp.End()
	if err != nil {
		return Result{}, err
	}
	res.Counts = counts
	res.Checkpoint.Restores = restores.Load()
	res.Checkpoint.ColdStarts = coldStarts.Load()
	res.Checkpoint.SkippedInsts = skipped.Load()
	c.Stats.add(res.Checkpoint)
	c.observe(res)
	return res, nil
}

// IRTarget describes one module to inject at IR level.
type IRTarget struct {
	Mod     *ir.Module
	MemSize int
	Args    []uint64
	Setup   func(mem MemWriter) error
}

// RunIRCampaign executes an LLFI-style campaign against the IR interpreter.
// IR sites are value-producing instructions; alloca addresses and call
// results are excluded (they are sphere inputs for EDDI, matching how the
// paper's IR-level coverage expectations are formed).
func RunIRCampaign(tgt IRTarget, c Campaign) (Result, error) {
	build := func() (*ir.Interp, error) {
		ip, err := ir.NewInterp(tgt.Mod, tgt.MemSize)
		if err != nil {
			return nil, err
		}
		if tgt.Setup != nil {
			if err := tgt.Setup(ip); err != nil {
				return nil, err
			}
		}
		return ip, nil
	}
	ip0, err := build()
	if err != nil {
		return Result{}, fmt.Errorf("fi: %w", err)
	}
	gsp := c.Obs.Span("golden")
	golden := ip0.Run(ir.RunOpts{Args: tgt.Args, MaxSteps: c.MaxSteps})
	gsp.SetAttr("dyn_sites", golden.Sites)
	gsp.End()
	if golden.Outcome != ir.OutcomeOK {
		return Result{}, fmt.Errorf("fi: golden IR run failed: %v (%s)", golden.Outcome, golden.CrashMsg)
	}
	if golden.Sites == 0 {
		return Result{}, fmt.Errorf("fi: module has no IR fault-injection sites")
	}
	res := Result{Samples: c.Samples, DynSites: golden.Sites, Golden: golden.Output}
	plans := makePlans(c, golden.Sites)

	var (
		cps                           *irCheckpoints
		restores, coldStarts, skipped atomic.Int64
	)
	if !c.NoCheckpoint && len(plans) > 0 {
		k := c.checkpointInterval(golden.Sites)
		csp := c.Obs.Span("checkpoint.record")
		cps = recordIRCheckpoints(ip0, tgt, c, k)
		csp.SetAttr("k", k)
		csp.SetAttr("snapshots", len(cps.snaps))
		csp.SetAttr("bytes", cps.bytes())
		csp.End()
		sortPlansBySite(plans)
		res.Checkpoint = CheckpointSummary{
			Enabled:       true,
			Interval:      k,
			Snapshots:     len(cps.snaps),
			SnapshotBytes: cps.bytes(),
		}
	}
	isp := c.Obs.Span("inject")
	isp.SetAttr("plans", len(plans))
	counts, err := runParallel(c, plans, func() (func(plannedFault) Outcome, error) {
		ip, err := build()
		if err != nil {
			return nil, err
		}
		return func(p plannedFault) Outcome {
			opts := ir.RunOpts{
				Args:     tgt.Args,
				MaxSteps: c.MaxSteps,
				Fault:    &ir.Fault{Site: p.site, Bit: p.bit},
			}
			if cps != nil {
				if i := nearestSnapshot(cps.sites, p.site); i >= 0 {
					opts.Resume = cps.snaps[i]
					restores.Add(1)
					skipped.Add(int64(cps.snaps[i].Steps()))
				} else {
					coldStarts.Add(1)
				}
			}
			return classifyIR(ip.Run(opts), golden.Output)
		}, nil
	})
	isp.End()
	if err != nil {
		return Result{}, err
	}
	res.Counts = counts
	res.Checkpoint.Restores = restores.Load()
	res.Checkpoint.ColdStarts = coldStarts.Load()
	res.Checkpoint.SkippedInsts = skipped.Load()
	c.Stats.add(res.Checkpoint)
	c.observe(res)
	return res, nil
}

func makePlans(c Campaign, sites uint64) []plannedFault {
	rng := rand.New(rand.NewSource(c.Seed))
	bits := c.BitsPerFault
	if bits > 64 {
		bits = 64 // a destination has at most 64 distinct bits
	}
	plans := make([]plannedFault, c.Samples)
	for i := range plans {
		p := plannedFault{
			site: uint64(rng.Int63n(int64(sites))),
			bit:  uint(rng.Intn(64)),
		}
		for extra := 1; extra < bits; extra++ {
			// Resample until the bit is distinct from every bit already
			// chosen for this fault, not just the primary one: two equal
			// extras would XOR-cancel and silently weaken the planned
			// multi-bit upset.
			b := uint(rng.Intn(64))
			for duplicateBit(p, b) {
				b = uint(rng.Intn(64))
			}
			p.extra = append(p.extra, b)
		}
		plans[i] = p
	}
	return plans
}

func duplicateBit(p plannedFault, b uint) bool {
	if b == p.bit {
		return true
	}
	for _, e := range p.extra {
		if e == b {
			return true
		}
	}
	return false
}

func runParallel(c Campaign, plans []plannedFault,
	newWorker func() (func(plannedFault) Outcome, error)) ([numOutcomes]int, error) {
	var counts [numOutcomes]int
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plans) {
		workers = len(plans)
	}
	var done int64
	report := func(n int) {
		if c.Progress == nil || n == 0 {
			return
		}
		c.Progress(int(atomic.AddInt64(&done, int64(n))))
	}
	if workers <= 1 {
		w, err := newWorker()
		if err != nil {
			return counts, err
		}
		reported := 0
		for i, p := range plans {
			counts[w(p)]++
			if (i+1)%16 == 0 || i+1 == len(plans) {
				report(i + 1 - reported)
				reported = i + 1
			}
		}
		return counts, nil
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		next     int
	)
	grab := func(n int) []plannedFault {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(plans) {
			return nil
		}
		end := next + n
		if end > len(plans) {
			end = len(plans)
		}
		batch := plans[next:end]
		next = end
		return batch
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := newWorker()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			var local [numOutcomes]int
			for {
				batch := grab(16)
				if batch == nil {
					break
				}
				for _, p := range batch {
					local[w(p)]++
				}
				report(len(batch))
			}
			mu.Lock()
			for o, n := range local {
				counts[o] += n
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return counts, firstErr
}

func classifyAsm(r machine.Result, golden []uint64) Outcome {
	switch r.Outcome {
	case machine.OutcomeDetected:
		return Detected
	case machine.OutcomeCrash:
		return Crash
	case machine.OutcomeHang:
		return Hang
	}
	if equalOutput(r.Output, golden) {
		return Benign
	}
	return SDC
}

func classifyIR(r ir.RunResult, golden []uint64) Outcome {
	switch r.Outcome {
	case ir.OutcomeDetected:
		return Detected
	case ir.OutcomeCrash:
		return Crash
	case ir.OutcomeHang:
		return Hang
	}
	if equalOutput(r.Output, golden) {
		return Benign
	}
	return SDC
}

func equalOutput(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FindExample scans the campaign's deterministic fault plan for the first
// fault whose outcome matches want, returning the fault so callers can
// replay it (e.g. with machine tracing enabled for diagnosis). ok is false
// if no sampled fault produces the outcome.
func FindExample(tgt AsmTarget, c Campaign, want Outcome) (machine.Fault, bool, error) {
	m, err := machine.New(tgt.Prog, tgt.MemSize)
	if err != nil {
		return machine.Fault{}, false, err
	}
	if tgt.Setup != nil {
		if err := tgt.Setup(m); err != nil {
			return machine.Fault{}, false, err
		}
	}
	golden := m.Run(machine.RunOpts{Args: tgt.Args, MaxSteps: c.MaxSteps})
	if golden.Outcome != machine.OutcomeOK {
		return machine.Fault{}, false, fmt.Errorf("fi: golden run failed: %v", golden.Outcome)
	}
	if golden.DynSites == 0 {
		return machine.Fault{}, false, fmt.Errorf("fi: no fault-injection sites")
	}
	for _, p := range makePlans(c, golden.DynSites) {
		f := machine.Fault{Site: p.site, Bit: p.bit, Extra: p.extra}
		r := m.Run(machine.RunOpts{Args: tgt.Args, MaxSteps: c.MaxSteps, Fault: &f})
		if classifyAsm(r, golden.Output) == want {
			return f, true, nil
		}
	}
	return machine.Fault{}, false, nil
}
