// Package fi implements the paper's fault-injection methodology (§IV-A2):
// statistical single-bit-flip campaigns against the machine model (the
// PINFI-style assembly-level injector) and against the IR interpreter (the
// LLFI-style injector used for "anticipated" coverage). One fault is
// sampled per execution: a uniformly random dynamic instruction with an
// architectural destination, and a uniformly random bit of that
// destination.
package fi

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"ferrum/internal/asm"
	"ferrum/internal/compose"
	"ferrum/internal/ir"
	"ferrum/internal/machine"
	"ferrum/internal/obs"
	"ferrum/internal/prune"
)

// ErrNoSites reports a campaign whose golden run exposed no fault-injection
// sites: there is nothing to sample a plan from.
var ErrNoSites = errors.New("fi: program has no fault-injection sites")

// Outcome classifies one injected execution against the golden run.
type Outcome uint8

// Injection outcomes.
const (
	Benign   Outcome = iota // completed with the correct output
	SDC                     // completed with a silently wrong output
	Detected                // a checker trapped
	Crash                   // memory fault, divide error, bad control transfer
	Hang                    // exceeded the step budget
	numOutcomes
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Benign:
		return "benign"
	case SDC:
		return "sdc"
	case Detected:
		return "detected"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	}
	return fmt.Sprintf("outcome?%d", o)
}

// Campaign configures an injection campaign.
type Campaign struct {
	Samples  int    // number of injected executions (paper: 1000)
	Seed     int64  // RNG seed; campaigns are deterministic given a seed
	MaxSteps uint64 // per-run dynamic instruction budget (0: default)
	Workers  int    // parallel workers (0: GOMAXPROCS)
	// BitsPerFault is the number of distinct bits flipped in the sampled
	// destination (default 1, the paper's fault model; >1 models the
	// multi-bit upsets §II-A defers to future work; capped per plan at the
	// sampled destination's width). Assembly-level campaigns only.
	BitsPerFault int
	// Prune, if not PruneOff, classifies each sampled (site, bit) pair
	// against the static liveness/masking analysis (internal/prune) and
	// executes only the plans the analysis cannot answer: dead and masked
	// plans are Benign by construction, and under PruneFull one
	// representative stands in for every plan of the same
	// (static instruction, bit) class. Result.Counts still aggregates all
	// Samples plans. Assembly-level campaigns only; incompatible with
	// CIWidth early stopping (the truncation prefix would no longer be a
	// uniform sample).
	Prune PruneMode
	// Compose, if not ComposeOff, runs the campaign compositionally:
	// the program is partitioned into sections at the golden checkpoint
	// boundaries, the sample budget is stratified across sections by site
	// count, and each plan runs only to its section boundary where its
	// propagation descriptor is classified against the downstream live-in
	// state — with an end-to-end fallback whenever the descriptor is
	// ambiguous. ComposeValidate additionally runs the monolithic campaign
	// and reports the rate agreement. Assembly-level campaigns only;
	// incompatible with Prune, CIWidth, sharding and NoCheckpoint.
	Compose ComposeMode
	// SectionCache, if non-nil with Compose on, memoises per-section
	// propagation tables across campaigns keyed by section content
	// fingerprint, so re-running after an edit re-injects only the changed
	// sections and serves the rest from cache.
	SectionCache *compose.Cache
	// Shard, if Count > 1, restricts the campaign to one shard of its plan
	// space: the plans whose generation index is congruent to Shard.Index
	// modulo Shard.Count, re-indexed densely so journaling and resume work
	// per shard (see shard.go). Samples still names the full campaign's
	// sample budget — every shard derives the identical plan sequence from
	// it. Incompatible with Prune and CIWidth.
	Shard ShardSpec
	// Progress, if non-nil, receives the cumulative number of completed
	// injections (out of Samples) as the campaign advances. It may be
	// called concurrently from campaign worker goroutines; implementations
	// must be safe for concurrent use. Journal-replayed plans are reported
	// upfront in one call.
	Progress func(done int)
	// NoCheckpoint disables checkpointed fast-forwarding: every injected
	// run re-executes its unfaulted prefix from instruction zero. The two
	// paths produce byte-identical Result.Counts; this is the escape hatch
	// for debugging and for the equivalence tests.
	NoCheckpoint bool
	// CheckpointEvery overrides the snapshot spacing K (dynamic sites
	// between checkpoints). 0 auto-tunes via DefaultCheckpointInterval.
	CheckpointEvery uint64
	// CIWidth, if > 0, enables Wilson-interval early stopping: the campaign
	// ends once the 95% confidence interval of the SDC rate over the
	// completed plan prefix is no wider than CIWidth. The decision is
	// evaluated at fixed prefix lengths and the result truncated to the
	// qualifying prefix, so stopped results are identical for any worker
	// count. Result.Samples reports the effective (possibly truncated)
	// sample count and Result.EarlyStopped is set.
	CIWidth float64
	// Cancel, if non-nil, cancels the campaign when closed: workers stop at
	// the next batch boundary and the runner returns ErrCampaignCanceled.
	// The harness per-cell watchdog drives this.
	Cancel <-chan struct{}
	// Journal, if non-nil (and Key set), receives one record per completed
	// plan and one per completed campaign, making the campaign resumable
	// after a crash. See CreateJournal/ResumeJournal.
	Journal *Journal
	// Key names this campaign in the journal (e.g. "fig10/bfs/raw/asm").
	// Empty disables journaling even with Journal set.
	Key string
	// Prior, if non-nil, is this campaign's journaled state from a previous
	// interrupted run: journaled plan outcomes are replayed without
	// executing them, and a journaled complete Result short-circuits the
	// whole campaign (golden run included).
	Prior *CellState
	// Stats, if non-nil, accumulates checkpointing counters across
	// campaigns (shared, concurrency-safe sink). It predates Obs and is kept
	// as a thin adapter for library callers; new code should prefer Obs,
	// which captures the same counters plus spans in one registry.
	Stats *CampaignStats
	// Obs, if non-nil, attributes the campaign's phases — golden run,
	// snapshot recording, the injection loop — to the owning scheduler cell
	// as spans, and accumulates plan/outcome/checkpoint counters in the
	// observability registry. Nil disables instrumentation at zero cost:
	// nothing inside the per-plan inner loop ever touches it.
	Obs *obs.Ctx
}

// observe publishes a finished campaign's totals to the observability
// registry: plan/outcome counts plus the checkpointing counters that the
// legacy Stats adapter also accumulates. Called once per campaign, after
// the injection loop — never from inside it.
func (c Campaign) observe(res Result) {
	c.observeOutcomes(res)
	if c.Obs == nil {
		return
	}
	if pr := res.Pruned; pr.Enabled {
		c.Obs.Counter(obs.MPrunedCampaigns).Add(1)
		c.Obs.Counter(obs.MPrunedPlans).Add(int64(pr.Planned - pr.Executed))
		c.Obs.Counter(obs.MPrunedDead).Add(int64(pr.Dead))
		c.Obs.Counter(obs.MPrunedMasked).Add(int64(pr.Masked))
		c.Obs.Counter(obs.MPrunedDedup).Add(int64(pr.Deduped))
	}
	if cs := res.Composed; cs.Enabled {
		c.Obs.Counter(obs.MComposedCampaigns).Add(1)
		c.Obs.Counter(obs.MComposedPlans).Add(int64(cs.Sections))
		c.Obs.Counter(obs.MComposedSections).Add(int64(len(cs.Rows)))
		c.Obs.Counter(obs.MComposedFallbacks).Add(int64(cs.Fallbacks))
	}
	if ck := res.Checkpoint; ck.Enabled {
		c.Obs.Counter(obs.MCkptCampaigns).Add(1)
		c.Obs.Counter(obs.MCkptSnapshots).Add(int64(ck.Snapshots))
		c.Obs.Counter(obs.MCkptBytes).Add(int64(ck.SnapshotBytes))
		c.Obs.Counter(obs.MCkptRestores).Add(ck.Restores)
		c.Obs.Counter(obs.MCkptColdStarts).Add(ck.ColdStarts)
		c.Obs.Counter(obs.MCkptSkippedInsts).Add(ck.SkippedInsts)
	}
}

// observeOutcomes publishes the campaign/plan/outcome counters only. This
// is the portion replayed for journal-answered campaigns, so fi.* totals in
// a resumed run reconcile with an uninterrupted one; ckpt.* counters are
// deliberately not replayed — they account for work actually performed by
// this process.
func (c Campaign) observeOutcomes(res Result) {
	if c.Obs == nil {
		return
	}
	c.Obs.Counter(obs.MCampaigns).Add(1)
	c.Obs.Counter(obs.MPlans).Add(int64(res.Samples))
	for o := Outcome(0); o < numOutcomes; o++ {
		if n := res.Counts[o]; n > 0 {
			c.Obs.Counter(obs.MOutcomePrefix + o.String()).Add(int64(n))
		}
	}
	if res.EarlyStopped {
		c.Obs.Counter(obs.MEarlyStops).Add(1)
	}
	// Detection-latency histograms fold in pre-bucketed: LatencyBuckets and
	// the registry histogram share one geometry, so the obs totals equal the
	// per-campaign summaries exactly — including for journal-replayed
	// campaigns, whose cell records carry the same frozen buckets.
	if res.Latency.Unit != "" {
		for o := Outcome(0); o < numOutcomes; o++ {
			lh := res.Latency.ByOutcome[o]
			if lh.N == 0 {
				continue
			}
			c.Obs.Histogram(obs.MDetectLatencyPrefix+res.Latency.Unit+"."+o.String(), LatencyBuckets).
				AddBuckets(lh.Counts, lh.Sum, lh.N)
		}
	}
}

// priorResult answers the campaign from its journaled cell record, if one
// exists: no golden run, no injections. Outcome counters are replayed so
// suite totals reconcile; checkpoint counters are not (no work happened).
func (c Campaign) priorResult() (Result, bool) {
	if c.Prior == nil || c.Prior.Result == nil {
		return Result{}, false
	}
	res := *c.Prior.Result
	c.Obs.Counter(obs.MJournalSkippedCells).Add(1)
	c.observeOutcomes(res)
	if c.Progress != nil && res.Samples > 0 {
		c.Progress(res.Samples)
	}
	return res, true
}

// pendingPlans counts plans not already answered by the journaled prior.
func (c Campaign) pendingPlans(plans []plannedFault) int {
	if c.Prior == nil || len(c.Prior.Plans) == 0 {
		return len(plans)
	}
	n := 0
	for _, p := range plans {
		if _, ok := c.Prior.Plans[p.idx]; !ok {
			n++
		}
	}
	return n
}

// Result aggregates campaign outcomes.
type Result struct {
	// Samples is the number of plans the result aggregates. It equals the
	// configured Campaign.Samples unless CI-width early stopping truncated
	// the campaign, in which case it is the qualifying prefix length.
	Samples  int
	Counts   [numOutcomes]int
	DynSites uint64 // dynamic fault-injection sites in the golden run
	Golden   []uint64
	// Cycles is the golden-run cycle count on the machine cycle model.
	// Only assembly-level campaigns set it; the IR interpreter has no
	// cycle model, so IR campaigns leave it zero.
	Cycles float64
	// EarlyStopped reports that the CI-width rule ended the campaign before
	// the full sample budget.
	EarlyStopped bool `json:",omitempty"`
	// Checkpoint reports the campaign's fast-forwarding activity; zero
	// when checkpointing was disabled.
	Checkpoint CheckpointSummary
	// Pruned reports the static-pruning bookkeeping; zero when pruning was
	// off. Counts answered statically are folded into Counts as Benign (dead,
	// masked) or as their representative's outcome (deduped).
	Pruned PruneSummary
	// Latency holds the campaign's detection-latency histograms: for every
	// executed plan whose fault was injected, the distance from injection to
	// the terminal event, bucketed per outcome class. Units are machine
	// cycles (asm) or retired IR instructions (ir); plans answered
	// statically by pruning never executed and contribute nothing.
	Latency LatencySummary
	// Composed reports the compositional-campaign ledger (sections, boundary
	// classifications, fallbacks, validation); zero when Compose was off.
	// Cache activity is deliberately absent: it describes work avoided by a
	// particular process, not the campaign's outcome, so resumed and
	// cache-warm runs stay byte-identical to cold ones.
	Composed ComposeSummary
}

// Count returns the number of runs with the given outcome.
func (r Result) Count(o Outcome) int { return r.Counts[o] }

// Rate returns the fraction of runs with the given outcome.
func (r Result) Rate(o Outcome) float64 {
	if r.Samples == 0 {
		return 0
	}
	return float64(r.Counts[o]) / float64(r.Samples)
}

// SDCRate returns the silent-data-corruption probability.
func (r Result) SDCRate() float64 { return r.Rate(SDC) }

// CI95 returns the 95% Wilson-score half-width interval of the SDC rate.
func (r Result) CI95() (lo, hi float64) {
	return wilson(float64(r.Counts[SDC]), float64(r.Samples))
}

func wilson(successes, n float64) (lo, hi float64) {
	if n == 0 {
		return 0, 0
	}
	const z = 1.959963984540054
	p := successes / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	return math.Max(0, center-half), math.Min(1, center+half)
}

// Coverage computes the paper's SDC-coverage metric:
// (SDC_raw - SDC_prot) / SDC_raw. It is 1 when the protected program shows
// no SDCs and 0 when protection is useless; a raw SDC rate of zero yields
// full coverage by convention.
func Coverage(raw, prot Result) float64 {
	r := raw.SDCRate()
	if r == 0 {
		return 1
	}
	c := (r - prot.SDCRate()) / r
	if c < 0 {
		return 0
	}
	return c
}

// Overhead computes the paper's runtime-overhead metric from golden-run
// cycles: (cycles_prot - cycles_raw) / cycles_raw.
func Overhead(rawCycles, protCycles float64) float64 {
	if rawCycles == 0 {
		return 0
	}
	return (protCycles - rawCycles) / rawCycles
}

// AsmTarget describes one program to inject at assembly level.
type AsmTarget struct {
	Prog    *asm.Program
	MemSize int
	Args    []uint64
	// Setup installs the benchmark's memory image; it runs once per
	// machine instance.
	Setup func(mem MemWriter) error
}

// MemWriter is the data-loading interface shared by the machine and the IR
// interpreter.
type MemWriter interface {
	WriteWordImage(addr, v uint64) error
	SetMemImage(addr uint64, data []byte) error
}

// plannedFault is one sampled fault. idx is its generation index in the
// deterministic plan sequence: the identity used for journal records,
// outcome bookkeeping and early-stop prefixes, stable under the site sort
// the checkpointing path applies.
type plannedFault struct {
	idx   int
	site  uint64
	bit   uint
	extra []uint
}

// asmCampaign is the shared assembly-level campaign engine behind
// RunAsmCampaign and ProfileProneness: golden run, width-aware fault plan,
// snapshot schedule, and the worker factory for runPlans.
type asmCampaign struct {
	c      Campaign
	tgt    AsmTarget
	build  func() (*machine.Machine, error)
	golden machine.Result
	// m0 is the fully-loaded template machine: program decoded, data image
	// installed, fusion tables rebuilt from the golden run's profile.
	// Workers are clones of it — they share the decoded program and image
	// (no per-worker re-decode, re-fuse or image copy) and own all mutable
	// run state. machines collects the clones (factories run inside worker
	// goroutines, hence the mutex) so dispatch-tier counters and fusion-pair
	// tables can be merged after the injection loop.
	m0       *machine.Machine
	mu       sync.Mutex
	machines []*machine.Machine
	// plans is execution-ordered (sorted by site when checkpointing);
	// orig keeps generation order for per-plan attribution by index. Under
	// pruning, plans holds only the dense-indexed class representatives and
	// part maps generation indices back onto them.
	plans []plannedFault
	orig  []plannedFault
	part  *planPartition
	cps   *asmCheckpoints
	ckpt  CheckpointSummary

	restores, coldStarts, skipped atomic.Int64
}

// newAsmCampaign builds the target, performs the golden run (recording
// per-site destination widths, and site locations when recordLocs), samples
// the fault plan, and records the snapshot schedule if any plan still needs
// executing.
func newAsmCampaign(tgt AsmTarget, c Campaign, recordLocs bool) (*asmCampaign, error) {
	build := func() (*machine.Machine, error) {
		m, err := machine.New(tgt.Prog, tgt.MemSize)
		if err != nil {
			return nil, err
		}
		if tgt.Setup != nil {
			if err := tgt.Setup(m); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
	m0, err := build()
	if err != nil {
		return nil, fmt.Errorf("fi: %w", err)
	}
	gsp := c.Obs.Span("golden")
	golden := m0.Run(machine.RunOpts{
		Args:              tgt.Args,
		MaxSteps:          c.MaxSteps,
		Profile:           true,
		RecordSiteBits:    true,
		RecordSiteLocs:    recordLocs,
		RecordSiteStatics: c.Prune != PruneOff,
	})
	gsp.SetAttr("dyn_insts", golden.DynInsts)
	gsp.SetAttr("dyn_sites", golden.DynSites)
	gsp.End()
	if golden.Outcome != machine.OutcomeOK {
		return nil, fmt.Errorf("fi: golden run failed: %v (%s)", golden.Outcome, golden.CrashMsg)
	}
	// The golden run doubles as the fusion profile: rebuild the template's
	// fusion tables from it before any clone is taken, so every worker
	// inherits the profile-guided superinstruction tier. Fused execution is
	// bit-identical to unfused, so campaign results are unaffected.
	m0.FuseProfile(golden.Profile)
	a := &asmCampaign{c: c, tgt: tgt, build: build, golden: golden, m0: m0}
	var fallbacks int
	plans, err := makePlans(c, golden.DynSites, siteWidth(golden.SiteBits, &fallbacks))
	if err != nil {
		return nil, err
	}
	if fallbacks > 0 {
		c.Obs.Counter(obs.MWidthFallbacks).Add(int64(fallbacks))
		if c.Prune != PruneOff {
			// A fallback width means the recorded destination metadata is
			// incomplete; the static classification cannot be trusted for
			// those sites, and an exact-mode campaign must not guess.
			return nil, fmt.Errorf("fi: prune: %d plan draws hit sites with missing/zero recorded width", fallbacks)
		}
	}
	a.plans = shardPlans(plans, c.Shard)
	a.orig = append([]plannedFault(nil), a.plans...)
	if c.Prune != PruneOff {
		if c.CIWidth > 0 {
			return nil, fmt.Errorf("fi: prune mode %v is incompatible with CI-width early stopping", c.Prune)
		}
		psp := c.Obs.Span("prune")
		an := prune.Analyze(tgt.Prog)
		part, err := partitionPlans(c.Prune, a.orig, golden.SiteStatics, an, m0.StaticInstrs())
		psp.End()
		if err != nil {
			return nil, err
		}
		a.part = part
		a.plans = append([]plannedFault(nil), part.exec...)
		// Plans answered statically are complete before any execution:
		// report them upfront and shift later worker progress past them, so
		// the caller still observes a monotone count ending at Samples.
		if answered := len(a.orig) - len(a.plans); answered > 0 && c.Progress != nil {
			orig := c.Progress
			a.c.Progress = func(done int) { orig(done + answered) }
			orig(answered)
		}
	}
	if !c.NoCheckpoint && a.c.pendingPlans(a.plans) > 0 {
		k := c.checkpointInterval(golden.DynSites)
		csp := c.Obs.Span("checkpoint.record")
		a.cps = recordAsmCheckpoints(m0, tgt, c, k, golden.DynSites)
		csp.SetAttr("k", k)
		csp.SetAttr("snapshots", len(a.cps.snaps))
		csp.SetAttr("bytes", a.cps.bytes())
		csp.End()
		sortPlansBySite(a.plans)
		a.ckpt = CheckpointSummary{
			Enabled:       true,
			Interval:      k,
			Snapshots:     len(a.cps.snaps),
			SnapshotBytes: a.cps.bytes(),
		}
	}
	return a, nil
}

func (a *asmCampaign) runOne(m *machine.Machine, p plannedFault) planResult {
	opts := machine.RunOpts{
		Args:     a.tgt.Args,
		MaxSteps: a.c.MaxSteps,
		Fault:    &machine.Fault{Site: p.site, Bit: p.bit, Extra: p.extra},
	}
	if a.cps != nil {
		if i := nearestSnapshot(a.cps.sites, p.site); i >= 0 {
			opts.Resume = a.cps.snaps[i]
			a.restores.Add(1)
			a.skipped.Add(int64(a.cps.snaps[i].DynInsts()))
		} else {
			a.coldStarts.Add(1)
		}
	}
	r := m.Run(opts)
	pr := planResult{o: classifyAsm(r, a.golden.Output)}
	if r.Injected {
		pr.lat, pr.hasLat = r.Cycles-r.FaultCycles, true
	}
	return pr
}

// run executes the plan through runPlans with a per-worker machine. Each
// worker is a clone of the fused template rather than a from-scratch
// build: program decode, block formation, fusion and the data image are
// paid once per campaign instead of once per worker.
func (a *asmCampaign) run() (planOutcomes, error) {
	isp := a.c.Obs.Span("inject")
	isp.SetAttr("plans", len(a.plans))
	po, err := runPlans(a.c, a.plans, func() (func(plannedFault) planResult, error) {
		m := a.m0.Clone()
		a.mu.Lock()
		a.machines = append(a.machines, m)
		a.mu.Unlock()
		return func(p plannedFault) planResult { return a.runOne(m, p) }, nil
	}, nil)
	isp.End()
	a.observeDispatch()
	return po, err
}

// observeDispatch merges the dispatch-tier counters and fusion-pair tables
// of every machine the campaign ran (template plus worker clones) into the
// observability registry. Pair tables go under obs.MFusionPrefix so the
// -dump-fusion report can rank patterns by dynamic executions.
func (a *asmCampaign) observeDispatch() {
	if a.c.Obs == nil {
		return
	}
	a.mu.Lock()
	machines := append([]*machine.Machine{a.m0}, a.machines...)
	a.mu.Unlock()
	var blocks, fused uint64
	for _, m := range machines {
		b, f := m.DispatchStats()
		blocks += b
		fused += f
		for _, p := range m.FusionPairs() {
			if p.Hits > 0 {
				a.c.Obs.Counter(obs.MFusionPrefix + p.Pair).Add(int64(p.Hits))
			}
		}
	}
	a.c.Obs.Counter(obs.MBlocksEntered).Add(int64(blocks))
	a.c.Obs.Counter(obs.MFusedUops).Add(int64(fused))
}

// result assembles the campaign Result from the plan outcomes. Under
// pruning the dense executed outcomes are expanded back onto the full
// generation-ordered plan space first, so Samples and Counts aggregate
// every planned fault exactly as an unpruned campaign's would.
func (a *asmCampaign) result(po planOutcomes) Result {
	samples, counts, early := po.samples, po.counts, po.early
	if a.part != nil {
		n, outcomes := a.expandedOutcomes(po)
		samples, early = n, false
		counts = [numOutcomes]int{}
		for _, o := range outcomes[:n] {
			counts[o]++
		}
	}
	res := Result{
		Samples:      samples,
		Counts:       counts,
		DynSites:     a.golden.DynSites,
		Golden:       a.golden.Output,
		Cycles:       a.golden.Cycles,
		EarlyStopped: early,
		Checkpoint:   a.ckpt,
		// Latency aggregates over the executed prefix po indexes: the
		// generation order for plain campaigns (truncated on early stop),
		// the dense representative set under pruning — expanded outcomes
		// never executed, so they carry no latency.
		Latency: aggregateLatency("cycles", po.samples, po.outcomes, po.lats, po.hasLat),
	}
	if a.part != nil {
		res.Pruned = a.part.summary
	}
	res.Checkpoint.Restores = a.restores.Load()
	res.Checkpoint.ColdStarts = a.coldStarts.Load()
	res.Checkpoint.SkippedInsts = a.skipped.Load()
	return res
}

// RunAsmCampaign executes a fault-injection campaign against the machine
// model. The fault plan is pre-generated from the seed, so results are
// deterministic and independent of worker count.
func RunAsmCampaign(tgt AsmTarget, c Campaign) (Result, error) {
	if err := c.Shard.check(c); err != nil {
		return Result{}, err
	}
	if c.Compose != ComposeOff {
		if err := c.composeCheck(); err != nil {
			return Result{}, err
		}
		if res, ok := c.priorResult(); ok {
			return res, nil
		}
		return runComposedAsmCampaign(tgt, c)
	}
	if res, ok := c.priorResult(); ok {
		return res, nil
	}
	a, err := newAsmCampaign(tgt, c, false)
	if err != nil {
		return Result{}, err
	}
	po, err := a.run()
	if err != nil {
		return Result{}, err
	}
	res := a.result(po)
	c.Stats.add(res.Checkpoint)
	c.observe(res)
	c.journalCell(res)
	if err := c.journalErr(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// IRTarget describes one module to inject at IR level.
type IRTarget struct {
	Mod     *ir.Module
	MemSize int
	Args    []uint64
	Setup   func(mem MemWriter) error
}

// RunIRCampaign executes an LLFI-style campaign against the IR interpreter.
// IR sites are value-producing instructions; alloca addresses and call
// results are excluded (they are sphere inputs for EDDI, matching how the
// paper's IR-level coverage expectations are formed).
func RunIRCampaign(tgt IRTarget, c Campaign) (Result, error) {
	if c.Prune != PruneOff {
		// The static classification is an assembly-level analysis (register
		// liveness, flag consumers, masking idioms); IR sites have no
		// equivalent metadata.
		return Result{}, fmt.Errorf("fi: prune mode %v is not supported for IR campaigns", c.Prune)
	}
	if c.Compose != ComposeOff {
		// Section boundaries are machine snapshots and boundary descriptors
		// are register/flag/page diffs; the IR interpreter has neither.
		return Result{}, fmt.Errorf("fi: compose mode %v is not supported for IR campaigns", c.Compose)
	}
	if err := c.Shard.check(c); err != nil {
		return Result{}, err
	}
	if res, ok := c.priorResult(); ok {
		return res, nil
	}
	build := func() (*ir.Interp, error) {
		ip, err := ir.NewInterp(tgt.Mod, tgt.MemSize)
		if err != nil {
			return nil, err
		}
		if tgt.Setup != nil {
			if err := tgt.Setup(ip); err != nil {
				return nil, err
			}
		}
		return ip, nil
	}
	ip0, err := build()
	if err != nil {
		return Result{}, fmt.Errorf("fi: %w", err)
	}
	gsp := c.Obs.Span("golden")
	golden := ip0.Run(ir.RunOpts{Args: tgt.Args, MaxSteps: c.MaxSteps})
	gsp.SetAttr("dyn_sites", golden.Sites)
	gsp.End()
	if golden.Outcome != ir.OutcomeOK {
		return Result{}, fmt.Errorf("fi: golden IR run failed: %v (%s)", golden.Outcome, golden.CrashMsg)
	}
	res := Result{DynSites: golden.Sites, Golden: golden.Output}
	// Every IR site produces a 64-bit value, so the plan needs no per-site
	// width map (nil samples bits uniformly in [0,64)).
	plans, err := makePlans(c, golden.Sites, nil)
	if err != nil {
		return Result{}, err
	}
	plans = shardPlans(plans, c.Shard)

	var (
		cps                           *irCheckpoints
		restores, coldStarts, skipped atomic.Int64
	)
	if !c.NoCheckpoint && c.pendingPlans(plans) > 0 {
		k := c.checkpointInterval(golden.Sites)
		csp := c.Obs.Span("checkpoint.record")
		cps = recordIRCheckpoints(ip0, tgt, c, k)
		csp.SetAttr("k", k)
		csp.SetAttr("snapshots", len(cps.snaps))
		csp.SetAttr("bytes", cps.bytes())
		csp.End()
		sortPlansBySite(plans)
		res.Checkpoint = CheckpointSummary{
			Enabled:       true,
			Interval:      k,
			Snapshots:     len(cps.snaps),
			SnapshotBytes: cps.bytes(),
		}
	}
	isp := c.Obs.Span("inject")
	isp.SetAttr("plans", len(plans))
	po, err := runPlans(c, plans, func() (func(plannedFault) planResult, error) {
		// Workers clone the fully-loaded template: the decoded module and
		// pristine memory image are shared, so per-worker setup skips the
		// verify/decode passes and the data-image copy.
		ip := ip0.Clone()
		return func(p plannedFault) planResult {
			opts := ir.RunOpts{
				Args:     tgt.Args,
				MaxSteps: c.MaxSteps,
				Fault:    &ir.Fault{Site: p.site, Bit: p.bit},
			}
			if cps != nil {
				if i := nearestSnapshot(cps.sites, p.site); i >= 0 {
					opts.Resume = cps.snaps[i]
					restores.Add(1)
					skipped.Add(int64(cps.snaps[i].Steps()))
				} else {
					coldStarts.Add(1)
				}
			}
			r := ip.Run(opts)
			pr := planResult{o: classifyIR(r, golden.Output)}
			if r.Injected {
				pr.lat, pr.hasLat = float64(r.Steps-r.FaultStep), true
			}
			return pr
		}, nil
	}, nil)
	isp.End()
	if err != nil {
		return Result{}, err
	}
	res.Samples = po.samples
	res.Counts = po.counts
	res.EarlyStopped = po.early
	res.Latency = aggregateLatency("insts", po.samples, po.outcomes, po.lats, po.hasLat)
	res.Checkpoint.Restores = restores.Load()
	res.Checkpoint.ColdStarts = coldStarts.Load()
	res.Checkpoint.SkippedInsts = skipped.Load()
	c.Stats.add(res.Checkpoint)
	c.observe(res)
	c.journalCell(res)
	if err := c.journalErr(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// siteWidth adapts a golden run's per-site destination widths (from
// machine.RunOpts.RecordSiteBits) into makePlans' width lookup. Zero or
// missing widths fall back to 64; when that happens the fallback is no
// longer silent — each fallback draw increments *fallbacks (when non-nil)
// so callers can surface it (fi.width_fallbacks) or refuse to proceed.
func siteWidth(siteBits []uint16, fallbacks *int) func(uint64) uint {
	if len(siteBits) == 0 {
		return nil
	}
	return func(site uint64) uint {
		if site < uint64(len(siteBits)) {
			if b := siteBits[site]; b > 0 {
				return uint(b)
			}
		}
		if fallbacks != nil {
			*fallbacks++
		}
		return 64
	}
}

// makePlans samples the campaign's deterministic fault plan: a uniformly
// random site, then a uniformly random bit of that site's actual
// destination width (width nil means every site is 64 bits wide, the IR
// case). Sampling in [0, width) rather than a flat [0, 64) matters in both
// directions: narrow destinations (8/16/32-bit moves, the 4 condition
// flags) would otherwise draw bit numbers the injector must wrap or mask,
// and SIMD destinations wider than 64 bits (multi-lane stores up to 512
// bits) would never receive faults in their upper lanes at all.
//
// A siteless golden run returns ErrNoSites rather than panicking inside
// the RNG draw.
func makePlans(c Campaign, sites uint64, width func(uint64) uint) ([]plannedFault, error) {
	if sites == 0 {
		return nil, ErrNoSites
	}
	rng := rand.New(rand.NewSource(c.Seed))
	plans := make([]plannedFault, c.Samples)
	for i := range plans {
		site := uint64(rng.Int63n(int64(sites)))
		w := uint(64)
		if width != nil {
			w = width(site)
		}
		p := plannedFault{
			idx:  i,
			site: site,
			bit:  uint(rng.Intn(int(w))),
		}
		bits := c.BitsPerFault
		if bits > int(w) {
			// A destination has only w distinct bits; flipping more is
			// impossible and resampling for them would never terminate.
			bits = int(w)
		}
		for extra := 1; extra < bits; extra++ {
			// Resample until the bit is distinct from every bit already
			// chosen for this fault, not just the primary one: two equal
			// extras would XOR-cancel and silently weaken the planned
			// multi-bit upset.
			b := uint(rng.Intn(int(w)))
			for duplicateBit(p, b) {
				b = uint(rng.Intn(int(w)))
			}
			p.extra = append(p.extra, b)
		}
		plans[i] = p
	}
	return plans, nil
}

func duplicateBit(p plannedFault, b uint) bool {
	if b == p.bit {
		return true
	}
	for _, e := range p.extra {
		if e == b {
			return true
		}
	}
	return false
}

func classifyAsm(r machine.Result, golden []uint64) Outcome {
	switch r.Outcome {
	case machine.OutcomeDetected:
		return Detected
	case machine.OutcomeCrash:
		return Crash
	case machine.OutcomeHang:
		return Hang
	}
	if equalOutput(r.Output, golden) {
		return Benign
	}
	return SDC
}

func classifyIR(r ir.RunResult, golden []uint64) Outcome {
	switch r.Outcome {
	case ir.OutcomeDetected:
		return Detected
	case ir.OutcomeCrash:
		return Crash
	case ir.OutcomeHang:
		return Hang
	}
	if equalOutput(r.Output, golden) {
		return Benign
	}
	return SDC
}

func equalOutput(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FindExample scans the campaign's deterministic fault plan for the first
// fault whose outcome matches want, returning the fault so callers can
// replay it (e.g. with machine tracing enabled for diagnosis). ok is false
// if no sampled fault produces the outcome.
func FindExample(tgt AsmTarget, c Campaign, want Outcome) (machine.Fault, bool, error) {
	m, err := machine.New(tgt.Prog, tgt.MemSize)
	if err != nil {
		return machine.Fault{}, false, err
	}
	if tgt.Setup != nil {
		if err := tgt.Setup(m); err != nil {
			return machine.Fault{}, false, err
		}
	}
	golden := m.Run(machine.RunOpts{Args: tgt.Args, MaxSteps: c.MaxSteps, RecordSiteBits: true})
	if golden.Outcome != machine.OutcomeOK {
		return machine.Fault{}, false, fmt.Errorf("fi: golden run failed: %v", golden.Outcome)
	}
	plans, err := makePlans(c, golden.DynSites, siteWidth(golden.SiteBits, nil))
	if err != nil {
		return machine.Fault{}, false, err
	}
	for _, p := range plans {
		f := machine.Fault{Site: p.site, Bit: p.bit, Extra: p.extra}
		r := m.Run(machine.RunOpts{Args: tgt.Args, MaxSteps: c.MaxSteps, Fault: &f})
		if classifyAsm(r, golden.Output) == want {
			return f, true, nil
		}
	}
	return machine.Fault{}, false, nil
}
