// Package prune statically classifies fault-injection (site, bit) pairs
// into equivalence classes before a campaign runs, in the spirit of BEC's
// bit-level static analysis: a fault into a destination that is not live
// after the write, or into a bit that a following mask or shift destroys
// before any use, is provably equivalent to no fault at all. Campaigns can
// then skip those plans (their outcome is Benign by construction) and
// execute one representative per remaining class, reweighting counts by
// class cardinality.
//
// The register analysis runs under liveness.CallPreserves: modelling calls
// as clobbering caller-saved registers would declare their pre-call values
// dead, but the machine's callees never actually write registers they
// don't define — the pre-call value survives and may reach a later use, so
// deadness must let liveness flow through calls untouched. The flag
// analysis exploits that no condition in the machine reads CF and that
// je/jne consumers need only ZF, so most bits of a compare's flag
// destination are exactly dead.
package prune

import (
	"ferrum/internal/asm"
	"ferrum/internal/liveness"
)

// Kind classifies one (site, bit) pair.
type Kind uint8

const (
	// Live: the flipped bit may reach an output, check or branch; the plan
	// must execute (or be covered by a class representative).
	Live Kind = iota
	// Dead: the destination (or this bit of it) is not live after the
	// write; the outcome is Benign by construction. Exact.
	Dead
	// Masked: a following AND/shift/partial overwrite destroys this bit
	// before any instruction reads it; Benign by construction. Exact.
	Masked
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Live:
		return "live"
	case Dead:
		return "dead"
	case Masked:
		return "masked"
	}
	return "kind?"
}

// SiteInfo is the static classification of one instruction's destination.
// The zero value classifies every bit Live, which is the safe default for
// instructions the analysis does not cover (SIMD destinations, sites in
// functions it could not resolve).
type SiteInfo struct {
	Kind asm.DestKind
	// Dead marks the whole destination dead: the written register is not
	// live after the instruction retires.
	Dead bool
	// DeadBits marks individual dead bits (bit i of the fault-bit space).
	// Used for flag destinations, where bit i addresses asm.Flag(i).
	DeadBits uint64
	// Masked marks bits a following instruction destroys before any use.
	Masked uint64
}

// Classify returns the kind of a single-bit fault at bit. Bits at or above
// 64 (wide SIMD lanes) are always Live: Go shifts of ≥ 64 yield 0, so the
// mask lookups below are safely false for them.
func (s SiteInfo) Classify(bit uint) Kind {
	if s.Dead {
		return Dead
	}
	if bit < 64 {
		if s.DeadBits&(1<<bit) != 0 {
			return Dead
		}
		if s.Masked&(1<<bit) != 0 {
			return Masked
		}
	}
	return Live
}

// Analysis holds per-instruction site classifications for a whole program,
// keyed by (function, instruction index).
type Analysis struct {
	funcs map[string][]SiteInfo
}

// Analyze classifies every destination-bearing instruction of the program.
func Analyze(p *asm.Program) *Analysis {
	a := &Analysis{funcs: make(map[string][]SiteInfo, len(p.Funcs))}
	for _, f := range p.Funcs {
		a.funcs[f.Name] = analyzeFunc(f)
	}
	return a
}

// At returns the classification of instruction idx of function fn. Unknown
// locations return the zero SiteInfo (every bit Live).
func (a *Analysis) At(fn string, idx int) SiteInfo {
	infos, ok := a.funcs[fn]
	if !ok || idx < 0 || idx >= len(infos) {
		return SiteInfo{}
	}
	return infos[idx]
}

// analyzeFunc computes live-after register and flag sets at each
// instruction with one backward sweep per block, then classifies each
// destination against them.
func analyzeFunc(f *asm.Func) []SiteInfo {
	lv := liveness.AnalyzeCalls(f, liveness.CallPreserves)
	fl := liveness.AnalyzeFlags(f)
	infos := make([]SiteInfo, len(f.Insts))
	var buf []asm.Reg
	for bi, b := range lv.CFG.Blocks {
		liveR := lv.LiveOut[bi]
		liveF := fl.LiveOut[bi]
		for idx := b.End - 1; idx >= b.Start; idx-- {
			in := f.Insts[idx]
			d := asm.DestOf(in)
			// liveR/liveF currently hold the live sets immediately AFTER
			// instruction idx — exactly what a post-retire fault sees.
			switch d.Kind {
			case asm.DestGPR:
				si := SiteInfo{Kind: d.Kind}
				if !liveR.Has(d.Reg) {
					si.Dead = true
				} else {
					si.Masked = maskedBits(f, b, idx, d.Reg)
				}
				infos[idx] = si
			case asm.DestFlags:
				si := SiteInfo{Kind: d.Kind}
				for fb := asm.Flag(0); fb < asm.NumFlag; fb++ {
					if !liveF.Has(fb) {
						si.DeadBits |= 1 << fb
					}
				}
				infos[idx] = si
			}
			// Transfer to the live sets before idx.
			for _, r := range liveness.InstDefs(in, liveness.CallPreserves) {
				liveR.Remove(r)
			}
			buf = liveness.InstUses(in, buf[:0])
			for _, r := range buf {
				liveR.Add(r)
			}
			if liveness.FlagsWritten(in) {
				liveF = 0
			}
			liveF.Union(liveness.FlagsRead(in))
		}
	}
	return infos
}

// maskedBits finds bits of register r (just written at idx) that the first
// following toucher inside the block destroys without reading: cleared by
// an and-immediate, shifted out, or overwritten by a partial-width write.
// Sound because the toucher is the only consumer of the old value on every
// path (any other consumer would have to read r after the toucher's full
// redefinition, or before it inside this block — and there is none).
func maskedBits(f *asm.Func, b asm.Block, idx int, r asm.Reg) uint64 {
	var buf []asm.Reg
	for j := idx + 1; j < b.End; j++ {
		in := f.Insts[j]
		touches := false
		buf = liveness.InstUses(in, buf[:0])
		for _, u := range buf {
			if u == r {
				touches = true
			}
		}
		for _, d := range liveness.InstDefs(in, liveness.CallPreserves) {
			if d == r {
				touches = true
			}
		}
		if touches {
			return maskOf(in, r)
		}
	}
	return 0 // value escapes the block unmasked
}

// maskOf returns the bits of r's old value that instruction in destroys
// without reading, given that in is the first toucher of r. Shapes the
// machine's flag semantics keep exact: andq's flags come from the masked
// result (CF/OF cleared), shifts set flags from the shifted result only
// (no carry-out of shifted bits), and partial-width writes replace the low
// byte without consulting it.
func maskOf(in asm.Inst, r asm.Reg) uint64 {
	dst := in.Dst()
	if dst.Kind != asm.KReg || dst.Reg != r {
		return 0
	}
	// The destination operand must be the ONLY operand involving r: a
	// source or address read of r consumes the full value.
	for i := 0; i < len(in.A)-1; i++ {
		o := in.A[i]
		switch o.Kind {
		case asm.KReg:
			if o.Reg == r {
				return 0
			}
		case asm.KMem:
			if o.M.Base == r || o.M.Index == r {
				return 0
			}
		}
	}
	switch in.Op {
	case asm.ANDQ:
		if in.A[0].Kind == asm.KImm {
			return ^uint64(in.A[0].Imm)
		}
	case asm.SHLQ:
		if in.A[0].Kind == asm.KImm {
			if k := uint(in.A[0].Imm) & 63; k > 0 {
				return ((uint64(1) << k) - 1) << (64 - k)
			}
		}
	case asm.SHRQ, asm.SARQ:
		if in.A[0].Kind == asm.KImm {
			if k := uint(in.A[0].Imm) & 63; k > 0 {
				return (uint64(1) << k) - 1
			}
		}
	case asm.MOVB, asm.SETE, asm.SETNE, asm.SETL, asm.SETLE, asm.SETG, asm.SETGE:
		// Partial write: the low byte is replaced without being read; the
		// preserved upper bits still carry the old value.
		return 0xff
	}
	return 0
}

// ClassKey identifies an equivalence class of plans: every sampled fault
// into the same static instruction at the same bit position lands in the
// same class. Static is the machine's static instruction id.
type ClassKey struct {
	Static int32
	Bit    uint16
}

// Class is one equivalence class of planned faults. Members lists plan
// indices in generation order; Members[0] is the representative a pruned
// campaign executes. The type is deliberately scheduler-shaped: a
// plan-space partitioner can hand whole classes to workers.
type Class struct {
	Kind    Kind
	Key     ClassKey
	Members []int
}
