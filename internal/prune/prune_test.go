package prune

import (
	"testing"

	"ferrum/internal/asm"
)

func parseProg(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestClassifyZeroValueIsLive(t *testing.T) {
	var s SiteInfo
	for _, bit := range []uint{0, 3, 63, 64, 511} {
		if k := s.Classify(bit); k != Live {
			t.Errorf("zero SiteInfo bit %d = %v, want live", bit, k)
		}
	}
}

func TestClassifyKinds(t *testing.T) {
	s := SiteInfo{DeadBits: 1 << 2, Masked: 1 << 5}
	if s.Classify(2) != Dead || s.Classify(5) != Masked || s.Classify(0) != Live {
		t.Errorf("per-bit classify wrong: %v %v %v", s.Classify(2), s.Classify(5), s.Classify(0))
	}
	s = SiteInfo{Dead: true, Masked: 1}
	if s.Classify(0) != Dead {
		t.Error("whole-site Dead should win")
	}
	// Wide SIMD bits never hit the 64-bit masks.
	s = SiteInfo{DeadBits: ^uint64(0)}
	if s.Classify(64) != Live || s.Classify(200) != Live {
		t.Error("bits >= 64 must classify live")
	}
}

func TestAnalyzeDeadMaskedAndFlags(t *testing.T) {
	p := parseProg(t, `
	.globl	f
f:
	movq	$1, %r10
	movq	$2, %rax
	cmpq	$0, %rax
	je	.La
	movq	$7, %rcx
	andq	$15, %rcx
	out	%rcx
.La:
	addq	$1, %rax
	retq
`)
	a := Analyze(p)
	// Site 0: r10 is never read — whole destination dead.
	if si := a.At("f", 0); !si.Dead {
		t.Errorf("movq $1, %%r10 should be dead, got %+v", si)
	}
	// Site 1: rax reaches the ret — live.
	if si := a.At("f", 1); si.Dead || si.Classify(0) != Live {
		t.Errorf("movq $2, %%rax should be live, got %+v", si)
	}
	// Site 2: cmp feeding je — only ZF live, so SF/CF/OF bits are dead.
	si := a.At("f", 2)
	want := uint64(1<<asm.FlagSF | 1<<asm.FlagCF | 1<<asm.FlagOF)
	if si.DeadBits != want {
		t.Errorf("cmp DeadBits = %04b, want %04b", si.DeadBits, want)
	}
	if si.Classify(uint(asm.FlagZF)) != Live || si.Classify(uint(asm.FlagCF)) != Dead {
		t.Error("ZF must stay live, CF must be dead")
	}
	// Site 4: movq $7, %rcx with a following andq $15 — bits 4..63 masked.
	si = a.At("f", 4)
	if si.Dead {
		t.Fatalf("rcx is read by the andq; site must not be dead: %+v", si)
	}
	if si.Masked != ^uint64(15) {
		t.Errorf("masked = %#x, want %#x", si.Masked, ^uint64(15))
	}
	if si.Classify(3) != Live || si.Classify(4) != Masked || si.Classify(63) != Masked {
		t.Error("and-immediate mask bits misclassified")
	}
	// Site 5: the andq result flows to out — fully live.
	if si := a.At("f", 5); si.Dead || si.Masked != 0 {
		t.Errorf("andq result should be live/unmasked, got %+v", si)
	}
}

func TestAnalyzeShiftAndPartialWriteMasks(t *testing.T) {
	p := parseProg(t, `
	.globl	f
f:
	movq	$7, %rax
	shrq	$8, %rax
	movq	$9, %rcx
	shlq	$4, %rcx
	movq	$3, %rdx
	movb	$1, %rdx
	out	%rax
	out	%rcx
	out	%rdx
	retq
`)
	a := Analyze(p)
	if m := a.At("f", 0).Masked; m != 0xff {
		t.Errorf("shrq mask = %#x, want 0xff", m)
	}
	if m := a.At("f", 2).Masked; m != uint64(0xf)<<60 {
		t.Errorf("shlq mask = %#x, want %#x", m, uint64(0xf)<<60)
	}
	if m := a.At("f", 4).Masked; m != 0xff {
		t.Errorf("movb overwrite mask = %#x, want 0xff", m)
	}
}

func TestAnalyzeSourceReadBlocksMask(t *testing.T) {
	// The andq reads r10 as a source: r10's value is fully consumed, no
	// mask despite r10 being the first toucher's... only rcx is the dest.
	p := parseProg(t, `
	.globl	f
f:
	movq	$7, %r10
	andq	%r10, %rcx
	out	%rcx
	retq
`)
	a := Analyze(p)
	if si := a.At("f", 0); si.Dead || si.Masked != 0 {
		t.Errorf("source-read register must stay fully live, got %+v", si)
	}
	// Register-source andq also gives its own dest no mask.
	if si := a.At("f", 1); si.Masked != 0 {
		t.Errorf("register andq should not mask, got %+v", si)
	}
}

func TestAnalyzeValueEscapingBlockUnmasked(t *testing.T) {
	// rax crosses a block boundary before its andq: no in-block toucher,
	// so no mask even though every path leads to the same andq.
	p := parseProg(t, `
	.globl	f
f:
	movq	$7, %rax
	jmp	.La
.La:
	andq	$1, %rax
	out	%rax
	retq
`)
	a := Analyze(p)
	if m := a.At("f", 0).Masked; m != 0 {
		t.Errorf("cross-block mask must not apply, got %#x", m)
	}
}

func TestAnalyzeCallPreservesLiveness(t *testing.T) {
	// r12 is callee-saved... irrelevant: under CallPreserves ANY register
	// written before a call and read after it stays live across the call,
	// including caller-saved r10.
	p := parseProg(t, `
	.globl	f
f:
	retq
	.globl	g
g:
	movq	$1, %r10
	callq	f
	out	%r10
	retq
`)
	a := Analyze(p)
	if si := a.At("g", 0); si.Dead {
		t.Error("r10 read after call must be live under CallPreserves")
	}
}

func TestAtUnknownLocation(t *testing.T) {
	p := parseProg(t, "\t.globl\tf\nf:\n\tretq\n")
	a := Analyze(p)
	if si := a.At("nosuch", 0); si.Dead || si.DeadBits != 0 {
		t.Error("unknown function must classify live")
	}
	if si := a.At("f", 99); si.Dead {
		t.Error("out-of-range index must classify live")
	}
}
