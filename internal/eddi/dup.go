// Package eddi implements assembly-level error detection by duplicated
// instructions. It provides the shared duplication machinery (how to build
// an independent second computation of any protectable instruction into a
// spare register) and the HYBRID-ASSEMBLY-LEVEL-EDDI baseline of the paper:
// every protectable instruction is immediately duplicated and checked with
// an xor + jne pair (fig. 4), while comparison and branch instructions are
// protected at IR level by the irpass.Signature pass (Table I).
package eddi

import (
	"ferrum/internal/asm"
)

// Kind classifies how an instruction can be protected at assembly level.
type Kind uint8

// Protection kinds.
const (
	KindSkip      Kind = iota // no register destination, or checker plumbing
	KindMov                   // re-executable move-family: dup re-runs with a spare destination
	KindRMW                   // read-modify-write ALU: dup copies the old dest then re-applies
	KindNeg                   // one-operand RMW
	KindSetcc                 // flag materialisation: dup re-runs setcc into a spare byte
	KindPop                   // pop: dup pre-reads the stack slot
	KindCqto                  // sign extension: dup recomputes with mov+sar
	KindIdiv                  // division: verified with the multiplicative identity
	KindFlagsOnly             // cmp/test: destination is RFLAGS (deferred/IR protection)
)

// Classify determines the protection kind of an instruction.
func Classify(in asm.Inst) Kind {
	switch in.Op {
	case asm.MOVQ, asm.MOVL, asm.MOVB:
		if in.Dst().Kind == asm.KReg {
			return KindMov
		}
		return KindSkip // store or SIMD transfer
	case asm.MOVSLQ, asm.MOVZBQ, asm.LEA:
		return KindMov
	case asm.ADDQ, asm.SUBQ, asm.IMULQ, asm.ANDQ, asm.ORQ, asm.XORQ, asm.XORB,
		asm.SHLQ, asm.SHRQ, asm.SARQ:
		if in.Dst().Kind == asm.KReg {
			return KindRMW
		}
		return KindSkip
	case asm.NEGQ:
		if in.Dst().Kind == asm.KReg {
			return KindNeg
		}
		return KindSkip
	case asm.SETE, asm.SETNE, asm.SETL, asm.SETLE, asm.SETG, asm.SETGE:
		if in.Dst().Kind == asm.KReg {
			return KindSetcc
		}
		return KindSkip
	case asm.POPQ:
		if in.Dst().Kind == asm.KReg {
			return KindPop
		}
		return KindSkip
	case asm.CQTO:
		return KindCqto
	case asm.IDIVQ:
		return KindIdiv
	case asm.CMPQ, asm.CMPL, asm.CMPB, asm.TESTQ:
		return KindFlagsOnly
	}
	return KindSkip
}

// CheckWidth returns the width at which the duplicate should be compared
// with the original destination.
func CheckWidth(in asm.Inst) asm.Width {
	d := asm.DestOf(in)
	if d.Kind == asm.DestGPR && d.W == asm.W8 {
		return asm.W8
	}
	return asm.W64
}

// replaceDst returns a copy of the instruction with its destination operand
// replaced by reg at the destination's width.
func replaceDst(in asm.Inst, reg asm.Reg) asm.Inst {
	out := in
	out.Labels = nil
	out.Comment = ""
	out.A = append([]asm.Operand(nil), in.A...)
	d := out.A[len(out.A)-1]
	out.A[len(out.A)-1] = asm.RegOp(reg, d.W)
	return out
}

// DupSeq holds the instruction sequences that implement one duplication:
// Pre runs before the original instruction (it must observe pre-state),
// Post runs after it, and Check compares the duplicate against the
// original's destination, ending with a jne to the detection label.
// CheckReg is the register holding the duplicate at check time.
type DupSeq struct {
	Pre      []asm.Inst
	Post     []asm.Inst
	Check    []asm.Inst
	CheckReg asm.Reg
}

// BuildDup constructs the duplication for a protectable instruction using
// spare registers. spare is the primary duplicate register; spare2 is only
// needed for KindIdiv. ok is false when the instruction is not protectable
// by duplication (KindSkip and KindFlagsOnly).
//
// The emitted shapes follow the paper:
//
//	KindMov (fig. 4):     dup-with-spare-dest ; ORIG ; xor origDst,spare ; jne
//	KindRMW:              mov dst,spare ; op src,spare ; ORIG ; xor ; jne
//	KindPop:              mov (rsp),spare ; ORIG ; xor ; jne
//	KindCqto:             mov rax,spare ; sar $63,spare ; ORIG ; xor rdx,spare ; jne
//	KindIdiv:             mov rax,spare ; ORIG ; mov rax,spare2 ;
//	                      imul divisor,spare2 ; add rdx,spare2 ;
//	                      xor spare2,spare ; jne      (q*b + r == a)
func BuildDup(in asm.Inst, spare, spare2 asm.Reg) (DupSeq, bool) {
	kind := Classify(in)
	w := CheckWidth(in)
	xorOp := asm.XORQ
	if w == asm.W8 {
		xorOp = asm.XORB
	}
	checkAgainst := func(origDst asm.Operand) []asm.Inst {
		return []asm.Inst{
			asm.NewInst(xorOp, asm.RegOp(origDst.Reg, w), asm.RegOp(spare, w)).WithTag(asm.TagCheck),
			asm.NewInst(asm.JNE, asm.LabelOp(asm.DetectLabel)).WithTag(asm.TagCheck),
		}
	}
	switch kind {
	case KindMov, KindSetcc:
		return DupSeq{
			Pre:      []asm.Inst{replaceDst(in, spare).WithTag(asm.TagDup)},
			Check:    checkAgainst(in.Dst()),
			CheckReg: spare,
		}, true
	case KindRMW:
		dst := in.Dst()
		op := replaceDst(in, spare)
		return DupSeq{
			Pre: []asm.Inst{
				asm.NewInst(asm.MOVQ, asm.Reg64(dst.Reg), asm.Reg64(spare)).WithTag(asm.TagDup),
				op.WithTag(asm.TagDup),
			},
			Check:    checkAgainst(dst),
			CheckReg: spare,
		}, true
	case KindNeg:
		dst := in.Dst()
		return DupSeq{
			Pre: []asm.Inst{
				asm.NewInst(asm.MOVQ, asm.Reg64(dst.Reg), asm.Reg64(spare)).WithTag(asm.TagDup),
				asm.NewInst(asm.NEGQ, asm.Reg64(spare)).WithTag(asm.TagDup),
			},
			Check:    checkAgainst(dst),
			CheckReg: spare,
		}, true
	case KindPop:
		dst := in.Dst()
		return DupSeq{
			Pre: []asm.Inst{
				asm.NewInst(asm.MOVQ, asm.MemBD(asm.RSP, 0), asm.Reg64(spare)).WithTag(asm.TagDup),
			},
			Check:    checkAgainst(dst),
			CheckReg: spare,
		}, true
	case KindCqto:
		return DupSeq{
			Pre: []asm.Inst{
				asm.NewInst(asm.MOVQ, asm.Reg64(asm.RAX), asm.Reg64(spare)).WithTag(asm.TagDup),
				asm.NewInst(asm.SARQ, asm.Imm(63), asm.Reg64(spare)).WithTag(asm.TagDup),
			},
			Check: []asm.Inst{
				asm.NewInst(asm.XORQ, asm.Reg64(asm.RDX), asm.Reg64(spare)).WithTag(asm.TagCheck),
				asm.NewInst(asm.JNE, asm.LabelOp(asm.DetectLabel)).WithTag(asm.TagCheck),
			},
			CheckReg: spare,
		}, true
	case KindIdiv:
		divisor := in.A[0]
		return DupSeq{
			Pre: []asm.Inst{
				asm.NewInst(asm.MOVQ, asm.Reg64(asm.RAX), asm.Reg64(spare)).WithTag(asm.TagDup),
			},
			Post: []asm.Inst{
				asm.NewInst(asm.MOVQ, asm.Reg64(asm.RAX), asm.Reg64(spare2)).WithTag(asm.TagDup),
				asm.NewInst(asm.IMULQ, divisor, asm.Reg64(spare2)).WithTag(asm.TagDup),
				asm.NewInst(asm.ADDQ, asm.Reg64(asm.RDX), asm.Reg64(spare2)).WithTag(asm.TagDup),
			},
			Check: []asm.Inst{
				asm.NewInst(asm.XORQ, asm.Reg64(spare2), asm.Reg64(spare)).WithTag(asm.TagCheck),
				asm.NewInst(asm.JNE, asm.LabelOp(asm.DetectLabel)).WithTag(asm.TagCheck),
			},
			CheckReg: spare,
		}, true
	}
	return DupSeq{}, false
}
