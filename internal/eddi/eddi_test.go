package eddi

import (
	"strings"
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/backend"
	"ferrum/internal/ir"
	"ferrum/internal/irpass"
	"ferrum/internal/machine"
)

const memSize = 1 << 20

const loopSrc = `
func @main(%n, %base) {
entry:
  %acc = alloca 1
  %i = alloca 1
  store 0, %acc
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = icmp slt %iv, %n
  br %c, body, done
body:
  %p = gep %base, %iv
  %v = load %p
  %a = load %acc
  %a2 = add %a, %v
  store %a2, %acc
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  %r = load %acc
  out %r
  ret %r
}
`

func compileIR(t *testing.T, src string, withSig bool) *asm.Program {
	t.Helper()
	mod, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("ir.Parse: %v", err)
	}
	if withSig {
		mod, err = irpass.Signature(mod)
		if err != nil {
			t.Fatalf("Signature: %v", err)
		}
	}
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return prog
}

func runProg(t *testing.T, prog *asm.Program, args []uint64, data map[uint64]uint64) machine.Result {
	t.Helper()
	m, err := machine.New(prog, memSize)
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	for addr, v := range data {
		if err := m.WriteWordImage(addr, v); err != nil {
			t.Fatal(err)
		}
	}
	return m.Run(machine.RunOpts{Args: args})
}

func TestClassify(t *testing.T) {
	tests := []struct {
		in   asm.Inst
		want Kind
	}{
		{asm.NewInst(asm.MOVQ, asm.MemBD(asm.RBP, -8), asm.Reg64(asm.RAX)), KindMov},
		{asm.NewInst(asm.MOVQ, asm.Reg64(asm.RAX), asm.MemBD(asm.RBP, -8)), KindSkip},
		{asm.NewInst(asm.MOVSLQ, asm.Reg32(asm.RCX), asm.Reg64(asm.R10)), KindMov},
		{asm.NewInst(asm.LEA, asm.MemBD(asm.RAX, 8), asm.Reg64(asm.RCX)), KindMov},
		{asm.NewInst(asm.ADDQ, asm.Reg64(asm.RCX), asm.Reg64(asm.RAX)), KindRMW},
		{asm.NewInst(asm.NEGQ, asm.Reg64(asm.RAX)), KindNeg},
		{asm.NewInst(asm.SETE, asm.Reg8(asm.RAX)), KindSetcc},
		{asm.NewInst(asm.POPQ, asm.Reg64(asm.RBP)), KindPop},
		{asm.NewInst(asm.PUSHQ, asm.Reg64(asm.RBP)), KindSkip},
		{asm.NewInst(asm.CQTO), KindCqto},
		{asm.NewInst(asm.IDIVQ, asm.Reg64(asm.RCX)), KindIdiv},
		{asm.NewInst(asm.CMPQ, asm.Imm(0), asm.Reg64(asm.RAX)), KindFlagsOnly},
		{asm.NewInst(asm.TESTQ, asm.Reg64(asm.RAX), asm.Reg64(asm.RAX)), KindFlagsOnly},
		{asm.NewInst(asm.JMP, asm.LabelOp("x")), KindSkip},
		{asm.NewInst(asm.CALL, asm.LabelOp("f")), KindSkip},
		{asm.NewInst(asm.OUT, asm.Reg64(asm.RAX)), KindSkip},
	}
	for _, tt := range tests {
		if got := Classify(tt.in); got != tt.want {
			t.Errorf("Classify(%s) = %v, want %v", tt.in.String(), got, tt.want)
		}
	}
}

func TestBuildDupShapes(t *testing.T) {
	// Mov: one dup instruction, xor+jne check.
	seq, ok := BuildDup(asm.NewInst(asm.MOVSLQ, asm.Reg32(asm.RCX), asm.Reg64(asm.RCX)), asm.R10, asm.R11)
	if !ok || len(seq.Pre) != 1 || len(seq.Check) != 2 {
		t.Fatalf("mov dup = %+v", seq)
	}
	if seq.Pre[0].Dst().Reg != asm.R10 {
		t.Errorf("dup dest = %v", seq.Pre[0].Dst())
	}
	if seq.Check[0].Op != asm.XORQ || seq.Check[1].Op != asm.JNE {
		t.Errorf("check = %v %v", seq.Check[0].Op, seq.Check[1].Op)
	}
	// RMW: copy + reapply.
	seq, ok = BuildDup(asm.NewInst(asm.ADDQ, asm.Imm(1), asm.Reg64(asm.RAX)), asm.R10, asm.R11)
	if !ok || len(seq.Pre) != 2 {
		t.Fatalf("rmw dup = %+v", seq)
	}
	// Setcc: byte-width check.
	seq, ok = BuildDup(asm.NewInst(asm.SETL, asm.Reg8(asm.RAX)), asm.R10, asm.R11)
	if !ok || seq.Check[0].Op != asm.XORB {
		t.Fatalf("setcc dup check = %+v", seq)
	}
	// Flags-only and skips are not duplicable.
	if _, ok = BuildDup(asm.NewInst(asm.CMPQ, asm.Imm(0), asm.Reg64(asm.RAX)), asm.R10, asm.R11); ok {
		t.Error("BuildDup accepted cmp")
	}
	if _, ok = BuildDup(asm.NewInst(asm.JMP, asm.LabelOp("x")), asm.R10, asm.R11); ok {
		t.Error("BuildDup accepted jmp")
	}
}

func TestHybridPreservesSemantics(t *testing.T) {
	prog := compileIR(t, loopSrc, true)
	prot, rep, err := Protect(prog)
	if err != nil {
		t.Fatal(err)
	}
	data := map[uint64]uint64{8192: 10, 8200: 20, 8208: 30}
	args := []uint64{3, 8192}
	raw := runProg(t, prog, args, data)
	protRes := runProg(t, prot, args, data)
	if raw.Outcome != machine.OutcomeOK || protRes.Outcome != machine.OutcomeOK {
		t.Fatalf("outcomes %v/%v (%s)", raw.Outcome, protRes.Outcome, protRes.CrashMsg)
	}
	if raw.Output[0] != 60 || protRes.Output[0] != 60 {
		t.Fatalf("outputs %v / %v", raw.Output, protRes.Output)
	}
	if rep.Protected == 0 || rep.Checks == 0 {
		t.Errorf("report = %+v", rep)
	}
	// Every protectable instruction got a check: jne count at least
	// Protected (plus signature ones).
	jnes := 0
	for _, f := range prot.Funcs {
		for _, in := range f.Insts {
			if in.Op == asm.JNE && in.A[0].Label == asm.DetectLabel {
				jnes++
			}
		}
	}
	if jnes < rep.Protected {
		t.Errorf("jne checks = %d < protected %d", jnes, rep.Protected)
	}
}

func TestHybridDupBeforeOriginal(t *testing.T) {
	src := `
	.globl	main
main:
	movslq	%ecx, %rcx
	hlt

	.globl	__rt
__rt:
exit_function:
	detect
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prot, _, err := Protect(prog)
	if err != nil {
		t.Fatal(err)
	}
	f := prot.Func("main")
	// fig. 4: dup, original, xor, jne.
	ops := make([]asm.Op, 0, len(f.Insts))
	for _, in := range f.Insts {
		ops = append(ops, in.Op)
	}
	want := []asm.Op{asm.MOVSLQ, asm.MOVSLQ, asm.XORQ, asm.JNE, asm.HALT}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
	if f.Insts[0].Tag != asm.TagDup {
		t.Error("first instruction is not the duplicate")
	}
	// The dup must read the *original* %ecx before the original
	// instruction overwrites %rcx (src == dst case).
	if f.Insts[0].Dst().Reg == asm.RCX {
		t.Error("dup overwrites the original source")
	}
}

func TestHybridDetectsInjectedFaults(t *testing.T) {
	prog := compileIR(t, loopSrc, true)
	prot, _, err := Protect(prog)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(prot, memSize)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []uint64{10, 20, 30} {
		if err := m.WriteWordImage(8192+8*uint64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	args := []uint64{3, 8192}
	golden := m.Run(machine.RunOpts{Args: args})
	if golden.Outcome != machine.OutcomeOK {
		t.Fatalf("golden: %v (%s)", golden.Outcome, golden.CrashMsg)
	}
	sdc := 0
	for site := uint64(0); site < golden.DynSites; site += 3 {
		for _, bit := range []uint{0, 11, 47} {
			res := m.Run(machine.RunOpts{Args: args, Fault: &machine.Fault{Site: site, Bit: bit}})
			if res.Outcome == machine.OutcomeOK {
				same := len(res.Output) == len(golden.Output)
				if same {
					for i := range res.Output {
						if res.Output[i] != golden.Output[i] {
							same = false
						}
					}
				}
				if !same {
					sdc++
				}
			}
		}
	}
	if sdc != 0 {
		t.Errorf("hybrid SDCs = %d, want 0", sdc)
	}
}

func TestHybridLabelsPreserved(t *testing.T) {
	prog := compileIR(t, loopSrc, true)
	prot, _, err := Protect(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := prot.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Every label of the input survives in the output.
	want := map[string]bool{}
	for _, f := range prog.Funcs {
		for _, in := range f.Insts {
			for _, l := range in.Labels {
				want[l] = true
			}
		}
	}
	got := map[string]bool{}
	for _, f := range prot.Funcs {
		for _, in := range f.Insts {
			for _, l := range in.Labels {
				got[l] = true
			}
		}
	}
	for l := range want {
		if !got[l] {
			t.Errorf("label %q lost", l)
		}
	}
}

func TestIsRuntimeFunc(t *testing.T) {
	prog := compileIR(t, "func @main() {\nentry:\n  ret\n}\n", false)
	for _, f := range prog.Funcs {
		isRT := IsRuntimeFunc(f)
		switch f.Name {
		case asm.StartLabel, "__ferrum_rt":
			if !isRT {
				t.Errorf("%s should be runtime", f.Name)
			}
		default:
			if isRT {
				t.Errorf("%s should not be runtime", f.Name)
			}
		}
	}
}

func TestHybridOverheadIsSubstantial(t *testing.T) {
	// The hybrid baseline duplicates nearly everything: its instruction
	// count must grow substantially (the paper reports ~83% runtime
	// overhead, higher than both FERRUM and IR-EDDI).
	prog := compileIR(t, loopSrc, true)
	prot, _, err := Protect(prog)
	if err != nil {
		t.Fatal(err)
	}
	if prot.StaticInstCount() < prog.StaticInstCount()*2 {
		t.Errorf("hybrid grew %d -> %d, expected at least 2x",
			prog.StaticInstCount(), prot.StaticInstCount())
	}
	if !strings.Contains(prot.String(), "jne\texit_function") {
		t.Error("no checks in protected program")
	}
}
