package eddi

import (
	"fmt"
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/machine"
)

// runSnippet protects a hand-written snippet with the hybrid pass and runs
// it, returning the result.
func runSnippet(t *testing.T, body string, fault *machine.Fault) machine.Result {
	t.Helper()
	src := fmt.Sprintf(`
	.globl	main
main:
%s
	.globl	__rt
__rt:
exit_function:
	detect
`, body)
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prot, _, err := Protect(prog)
	if err != nil {
		t.Fatalf("protect: %v", err)
	}
	m, err := machine.New(prot, memSize)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run(machine.RunOpts{Fault: fault})
}

func TestCqtoDupSemantics(t *testing.T) {
	// cqto of a negative rax: rdx = all ones; dup recomputes via sar.
	body := `
	movq	$-9, %rax
	cqto
	out	%rdx
	movq	$9, %rax
	cqto
	out	%rdx
	hlt
`
	res := runSnippet(t, body, nil)
	if res.Outcome != machine.OutcomeOK {
		t.Fatalf("outcome %v (%s)", res.Outcome, res.CrashMsg)
	}
	if res.Output[0] != ^uint64(0) || res.Output[1] != 0 {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestIdivDupSemantics(t *testing.T) {
	body := `
	movq	$-100, %rax
	cqto
	movq	$7, %rcx
	idivq	%rcx
	out	%rax
	out	%rdx
	hlt
`
	res := runSnippet(t, body, nil)
	if res.Outcome != machine.OutcomeOK {
		t.Fatalf("outcome %v (%s)", res.Outcome, res.CrashMsg)
	}
	if int64(res.Output[0]) != -14 || int64(res.Output[1]) != -2 {
		t.Fatalf("div = %d rem %d", int64(res.Output[0]), int64(res.Output[1]))
	}
}

func TestIdivFaultsDetected(t *testing.T) {
	body := `
	movq	$-100, %rax
	cqto
	movq	$7, %rcx
	idivq	%rcx
	out	%rax
	out	%rdx
	hlt
`
	// Golden run to count sites, then flip bits at every site: the
	// multiplicative-identity check must stop any silent corruption.
	golden := runSnippet(t, body, nil)
	for site := uint64(0); site < golden.DynSites; site++ {
		for _, bit := range []uint{0, 31, 63} {
			res := runSnippet(t, body, &machine.Fault{Site: site, Bit: bit})
			if res.Outcome == machine.OutcomeOK {
				if len(res.Output) != len(golden.Output) {
					t.Fatalf("site %d: truncated output", site)
				}
				for i := range res.Output {
					if res.Output[i] != golden.Output[i] {
						t.Errorf("site %d bit %d: silent corruption %v", site, bit, res.Output)
					}
				}
			}
		}
	}
}

func TestPopDupSemantics(t *testing.T) {
	body := `
	movq	$1234, %r9
	pushq	%r9
	movq	$0, %r9
	popq	%r9
	out	%r9
	hlt
`
	res := runSnippet(t, body, nil)
	if res.Outcome != machine.OutcomeOK || res.Output[0] != 1234 {
		t.Fatalf("res = %+v (%s)", res, res.CrashMsg)
	}
}

func TestPopFaultDetected(t *testing.T) {
	body := `
	movq	$1234, %r9
	pushq	%r9
	movq	$0, %r9
	popq	%r9
	out	%r9
	hlt
`
	golden := runSnippet(t, body, nil)
	sdc := 0
	for site := uint64(0); site < golden.DynSites; site++ {
		res := runSnippet(t, body, &machine.Fault{Site: site, Bit: 5})
		if res.Outcome == machine.OutcomeOK && res.Output[0] != golden.Output[0] {
			sdc++
		}
	}
	if sdc != 0 {
		t.Errorf("pop corruption escaped %d times", sdc)
	}
}

func TestMovToRSPProtected(t *testing.T) {
	// The frame teardown pattern: movq %rbp, %rsp is duplicated through a
	// spare and checked.
	body := `
	pushq	%rbp
	movq	%rsp, %rbp
	subq	$32, %rsp
	movq	%rbp, %rsp
	popq	%rbp
	movq	$5, %rax
	out	%rax
	hlt
`
	res := runSnippet(t, body, nil)
	if res.Outcome != machine.OutcomeOK || res.Output[0] != 5 {
		t.Fatalf("res = %+v (%s)", res, res.CrashMsg)
	}
}

func TestHybridRejectsNoSpares(t *testing.T) {
	// A function using every general-purpose register leaves nothing to
	// duplicate into: Protect must fail loudly, not silently skip.
	var body string
	for _, r := range []string{"rax", "rcx", "rdx", "rbx", "rsi", "rdi",
		"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"} {
		body += fmt.Sprintf("\tmovq\t$1, %%%s\n", r)
	}
	body += "\thlt\n"
	src := fmt.Sprintf("\t.globl\tmain\nmain:\n%s", body)
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Protect(prog); err == nil {
		t.Error("Protect accepted a program with no spare registers")
	}
}
