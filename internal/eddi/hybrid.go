package eddi

import (
	"fmt"

	"ferrum/internal/asm"
	"ferrum/internal/liveness"
)

// Report summarises what a protection pass did to a program.
type Report struct {
	Protected int // instructions duplicated and checked
	Skipped   int // instructions with no protectable destination
	FlagsOnly int // compare instructions left to IR-level protection
	Checks    int // checker sequences inserted
}

// Protect applies HYBRID-ASSEMBLY-LEVEL-EDDI's assembly half to a compiled
// program: every protectable instruction in every non-runtime function is
// duplicated into a spare register and immediately checked with an
// xor + jne exit_function pair (fig. 4 of the paper). Compare instructions
// are left untouched — the hybrid baseline protects comparisons and
// branches at IR level with irpass.Signature before compilation (Table I).
//
// The input program is not modified; the protected clone is returned.
func Protect(prog *asm.Program) (*asm.Program, *Report, error) {
	out := prog.Clone()
	rep := &Report{}
	for _, f := range out.Funcs {
		if IsRuntimeFunc(f) {
			continue
		}
		if err := protectFunc(f, rep); err != nil {
			return nil, nil, fmt.Errorf("eddi: %s: %w", f.Name, err)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("eddi: produced invalid program: %w", err)
	}
	return out, rep, nil
}

// IsRuntimeFunc reports whether the function is scaffolding emitted by the
// backend (_start, detection block) rather than program code.
func IsRuntimeFunc(f *asm.Func) bool {
	if f.Name == asm.StartLabel {
		return true
	}
	for _, in := range f.Insts {
		if in.Tag != asm.TagRuntime {
			return false
		}
	}
	return true
}

func protectFunc(f *asm.Func, rep *Report) error {
	spares := liveness.SpareGPRs(f)
	if len(spares) == 0 {
		return fmt.Errorf("no spare registers for duplication")
	}
	spare := spares[0]
	spare2 := spare
	if len(spares) > 1 {
		spare2 = spares[1]
	}

	var out []asm.Inst
	for _, in := range f.Insts {
		switch Classify(in) {
		case KindSkip:
			rep.Skipped++
			out = append(out, in)
			continue
		case KindFlagsOnly:
			rep.FlagsOnly++
			out = append(out, in)
			continue
		case KindIdiv:
			if spare2 == spare {
				return fmt.Errorf("division protection needs two spare registers")
			}
		}
		seq, ok := BuildDup(in, spare, spare2)
		if !ok {
			rep.Skipped++
			out = append(out, in)
			continue
		}
		rep.Protected++
		rep.Checks++
		// Labels stay at the original program point: the duplication
		// runs first (fig. 4), so they move to the first dup inst.
		first := len(out)
		out = append(out, seq.Pre...)
		orig := in
		orig.Labels = nil
		out = append(out, orig)
		out = append(out, seq.Post...)
		out = append(out, seq.Check...)
		if len(in.Labels) > 0 {
			out[first].Labels = append(append([]string(nil), in.Labels...), out[first].Labels...)
		}
	}
	f.Insts = out
	return nil
}
