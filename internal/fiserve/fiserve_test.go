package fiserve

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ferrum/internal/fi"
	"ferrum/internal/harness"
	"ferrum/internal/obs"
)

func testSpec(bench string, tech harness.Technique, samples int) harness.CampaignSpec {
	return harness.CampaignSpec{
		Bench: bench, Technique: tech, Level: "asm", Samples: samples, Seed: 7,
	}
}

// singleProcess runs the spec's campaign locally — the reference every
// sharded topology must match byte for byte — and returns the rendered table
// and the canonical journal bytes.
func singleProcess(t *testing.T, spec harness.CampaignSpec) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "single.ndjson")
	j, err := fi.CreateJournal(path, SpecMeta(spec))
	if err != nil {
		t.Fatalf("create journal: %v", err)
	}
	res, err := harness.RunSpec(spec, fi.Campaign{Workers: 4, Journal: j, Key: SpecKey(spec)})
	if err != nil {
		t.Fatalf("single-process run: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}
	st, err := fi.LoadJournal(path)
	if err != nil {
		t.Fatalf("load journal: %v", err)
	}
	var canon bytes.Buffer
	if err := st.WriteCanonical(&canon); err != nil {
		t.Fatalf("canonicalise journal: %v", err)
	}
	var table strings.Builder
	harness.RenderCampaign(&table, string(spec.Technique), spec.Level, res)
	return table.String(), canon.Bytes()
}

// startWorkers launches n pollers against the coordinator; the returned stop
// function shuts them down and collects their exit errors.
func startWorkers(t *testing.T, base string, workers []*Worker) (stop func() []error) {
	t.Helper()
	ch := make(chan struct{})
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		w.Base = base
		if w.Name == "" {
			w.Name = fmt.Sprintf("w%d", i)
		}
		if w.Poll <= 0 {
			w.Poll = 10 * time.Millisecond
		}
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			errs[i] = w.Run(ch)
		}(i, w)
	}
	var once sync.Once
	return func() []error {
		once.Do(func() { close(ch) })
		wg.Wait()
		return errs
	}
}

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return b
}

// TestServiceEquivalence is the shard-merge equivalence suite: a coordinator
// plus {2,4} workers on {bfs,lud}×{raw,ferrum} produces a result table and a
// merged canonical journal byte-identical to the single-process run's.
func TestServiceEquivalence(t *testing.T) {
	cases := []struct {
		spec            harness.CampaignSpec
		shards, workers int
	}{
		{testSpec("bfs", harness.Raw, 60), 2, 2},
		{testSpec("bfs", harness.Ferrum, 60), 4, 4},
		{testSpec("lud", harness.Raw, 60), 4, 2},
		{testSpec("lud", harness.Ferrum, 60), 2, 4},
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("%s-%s-s%d-w%d", tc.spec.Bench, tc.spec.Technique, tc.shards, tc.workers)
		t.Run(name, func(t *testing.T) {
			wantTable, wantJournal := singleProcess(t, tc.spec)

			co, err := Start(Config{Addr: "127.0.0.1:0", Dir: t.TempDir(), Shards: tc.shards})
			if err != nil {
				t.Fatalf("start coordinator: %v", err)
			}
			defer co.Close()
			ws := make([]*Worker, tc.workers)
			for i := range ws {
				ws[i] = &Worker{Workers: 2}
			}
			stop := startWorkers(t, "http://"+co.Addr(), ws)
			defer stop()

			cl := &Client{Base: "http://" + co.Addr(), Tenant: "equiv"}
			st, err := cl.Run(tc.spec)
			if err != nil {
				t.Fatalf("service run: %v", err)
			}
			for _, werr := range stop() {
				if werr != nil {
					t.Errorf("worker exit: %v", werr)
				}
			}
			if st.Result == nil || st.Result.Samples != tc.spec.Samples {
				t.Fatalf("merged result %+v, want %d samples", st.Result, tc.spec.Samples)
			}
			if len(st.Shards) != tc.shards {
				t.Errorf("campaign ran %d shards, want %d", len(st.Shards), tc.shards)
			}
			if st.Table != wantTable {
				t.Errorf("sharded table differs from single-process:\n--- service\n%s--- single\n%s", st.Table, wantTable)
			}
			if got := mustReadFile(t, st.MergedJournal); !bytes.Equal(got, wantJournal) {
				t.Errorf("merged journal differs from single-process canonical journal (%d vs %d bytes)",
					len(got), len(wantJournal))
			}
		})
	}
}

// TestWorkerDeathResume kills one worker mid-shard (after the meta record and
// one 64-plan batch are durable) and checks that the watchdog re-leases the
// shard, the survivor resumes from the journal prefix, and every output is
// still byte-identical to the single-process run. It also pins the /metrics
// reconciliation identity at the coordinator: fi_plans equals the sample
// count and journal_records equals 1 + plans + cells of the merged journal.
func TestWorkerDeathResume(t *testing.T) {
	spec := testSpec("bfs", harness.Raw, 200) // 100 plans per shard: > one sync batch
	wantTable, wantJournal := singleProcess(t, spec)

	co, err := Start(Config{
		Addr: "127.0.0.1:0", Dir: t.TempDir(), Shards: 2,
		LeaseTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("start coordinator: %v", err)
	}
	defer co.Close()

	// Worker 0 silently dies after two successful uploads (meta + first
	// 64-plan batch); worker 1 is healthy and must finish everything.
	ws := []*Worker{
		{Name: "doomed", Workers: 2, DieAfterSyncs: 2},
		{Name: "survivor", Workers: 2},
	}
	stop := startWorkers(t, "http://"+co.Addr(), ws)
	defer stop()

	cl := &Client{Base: "http://" + co.Addr(), Tenant: "death"}
	st, err := cl.Run(spec)
	if err != nil {
		t.Fatalf("service run: %v", err)
	}
	errs := stop()
	if !errors.Is(errs[0], ErrWorkerDied) {
		t.Errorf("doomed worker exited with %v, want ErrWorkerDied", errs[0])
	}
	if errs[1] != nil {
		t.Errorf("survivor exited with %v", errs[1])
	}

	if st.Table != wantTable {
		t.Errorf("table after death+resume differs from single-process:\n--- service\n%s--- single\n%s",
			st.Table, wantTable)
	}
	if got := mustReadFile(t, st.MergedJournal); !bytes.Equal(got, wantJournal) {
		t.Errorf("merged journal after death+resume differs from single-process canonical journal (%d vs %d bytes)",
			len(got), len(wantJournal))
	}

	snap, err := obs.FetchSnapshot(nil, "http://"+co.Addr())
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	if n := snap.Counters["serve_releases"]; n < 1 {
		t.Errorf("serve_releases = %d, want >= 1 (watchdog re-lease)", n)
	}
	if n := snap.Counters["fi_plans"]; n != int64(spec.Samples) {
		t.Errorf("fi_plans = %d, want %d", n, spec.Samples)
	}
	if n := snap.Counters["fi_campaigns"]; n != 1 {
		t.Errorf("fi_campaigns = %d, want 1", n)
	}
	// The merged journal holds 1 meta + one record per plan + one cell; the
	// coordinator's own accounting must reconcile exactly, with the workers'
	// journal.* counters (including the resume's skipped plans) filtered out.
	if n := snap.Counters["journal_records"]; n != int64(1+spec.Samples+1) {
		t.Errorf("journal_records = %d, want %d", n, 1+spec.Samples+1)
	}
	if n := snap.Counters["journal_skipped_plans"]; n != 0 {
		t.Errorf("journal_skipped_plans = %d leaked from a worker snapshot", n)
	}
}

// TestAdmissionLimits exercises the bounded queue and per-tenant quotas: both
// reject with typed errors, and the HTTP surface turns them into 429s the
// client reports as ErrRejected.
func TestAdmissionLimits(t *testing.T) {
	co, err := Start(Config{
		Addr: "127.0.0.1:0", Dir: t.TempDir(), QueueMax: 2, TenantQuota: 1,
	})
	if err != nil {
		t.Fatalf("start coordinator: %v", err)
	}
	defer co.Close()

	spec := testSpec("bfs", harness.Raw, 8)
	if _, err := co.Submit("t1", spec); err != nil {
		t.Fatalf("first submission rejected: %v", err)
	}
	if _, err := co.Submit("t1", spec); !errors.Is(err, ErrTenantQuota) {
		t.Errorf("second t1 submission: %v, want ErrTenantQuota", err)
	}
	if _, err := co.Submit("t2", spec); err != nil {
		t.Fatalf("t2 submission rejected: %v", err)
	}
	if _, err := co.Submit("t3", spec); !errors.Is(err, ErrQueueFull) {
		t.Errorf("over-queue submission: %v, want ErrQueueFull", err)
	}

	// Through the HTTP surface the same rejection is a 429 → ErrRejected.
	cl := &Client{Base: "http://" + co.Addr(), Tenant: "t3"}
	if _, err := cl.Submit(spec); !errors.Is(err, ErrRejected) {
		t.Errorf("HTTP over-queue submission: %v, want ErrRejected", err)
	}

	if n := co.snapshot().Counters["serve.rejects"]; n != 3 {
		t.Errorf("serve.rejects = %d, want 3", n)
	}
	if n := co.snapshot().Gauges["serve.unfinished"]; n != 2 {
		t.Errorf("serve.unfinished = %d, want 2", n)
	}
}

// TestStaleEpochRejected covers the lease-epoch fencing and upload
// validation: chunks from an old epoch are 409s, torn or corrupt chunks 400s.
func TestStaleEpochRejected(t *testing.T) {
	co, err := Start(Config{Addr: "127.0.0.1:0", Dir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatalf("start coordinator: %v", err)
	}
	defer co.Close()

	spec := testSpec("bfs", harness.Raw, 8)
	id, err := co.Submit("t", spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	l, _, err := co.lease("w1")
	if err != nil || l == nil {
		t.Fatalf("lease: %v (lease %v)", err, l)
	}

	// A valid chunk to replay under different epochs: a real journal file.
	seed := filepath.Join(t.TempDir(), "seed.ndjson")
	j, err := fi.CreateJournal(seed, l.Meta)
	if err != nil {
		t.Fatalf("create journal: %v", err)
	}
	j.Close()
	chunk := mustReadFile(t, seed)

	post := func(path string, body []byte) int {
		t.Helper()
		resp, err := http.Post("http://"+co.Addr()+path, "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	records := func(epoch int) string {
		return fmt.Sprintf("/api/records?campaign=%s&shard=%d&epoch=%d", id, l.Shard, epoch)
	}

	if code := post(records(l.Epoch+7), chunk); code != http.StatusConflict {
		t.Errorf("stale-epoch upload: %d, want 409", code)
	}
	if code := post(records(l.Epoch), []byte("not json\n")); code != http.StatusBadRequest {
		t.Errorf("corrupt upload: %d, want 400", code)
	}
	if code := post(records(l.Epoch), chunk[:len(chunk)-1]); code != http.StatusBadRequest {
		t.Errorf("torn upload (no trailing newline): %d, want 400", code)
	}
	if code := post(records(l.Epoch), chunk); code != http.StatusNoContent {
		t.Errorf("current-epoch upload: %d, want 204", code)
	}

	// Release the shard; every further upload under the old epoch is stale.
	if err := co.release(ReleaseRequest{Campaign: id, Shard: l.Shard, Epoch: l.Epoch, Error: "test"}); err != nil {
		t.Fatalf("release: %v", err)
	}
	if code := post(records(l.Epoch), chunk); code != http.StatusConflict {
		t.Errorf("upload after release: %d, want 409", code)
	}
	if err := co.heartbeat(HeartbeatRequest{Campaign: id, Shard: l.Shard, Epoch: l.Epoch}); !errors.Is(err, errStale) {
		t.Errorf("heartbeat after release: %v, want errStale", err)
	}
	if n := co.snapshot().Counters["serve.stale_drops"]; n < 3 {
		t.Errorf("serve.stale_drops = %d, want >= 3", n)
	}
}

// TestLeaseMetaCheckNamesField: a worker resuming a shard journal recorded
// under a different configuration must fail with the first differing field
// named — the service-level face of JournalMeta.Check.
func TestLeaseMetaCheckNamesField(t *testing.T) {
	dir := t.TempDir()
	co, err := Start(Config{Addr: "127.0.0.1:0", Dir: dir, Shards: 2})
	if err != nil {
		t.Fatalf("start coordinator: %v", err)
	}
	defer co.Close()

	spec := testSpec("bfs", harness.Raw, 8) // Seed 7
	id, err := co.Submit("t", spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Plant a prior shard journal recorded under a different seed, as if the
	// coordinator had been restarted with a changed spec.
	bad := spec
	bad.Seed = 9
	meta := SpecMeta(bad)
	meta.ShardIndex, meta.ShardCount = 0, 2
	j, err := fi.CreateJournal(filepath.Join(dir, id, "shard-0.ndjson"), meta)
	if err != nil {
		t.Fatalf("plant prior journal: %v", err)
	}
	j.Close()

	w := &Worker{Base: "http://" + co.Addr(), Name: "w"}
	worked, _, err := w.RunOne()
	if !worked {
		t.Fatalf("worker got no lease")
	}
	if err == nil || !strings.Contains(err.Error(), "journal seed=9, invocation seed=7") {
		t.Errorf("mismatched prior journal: %v, want the seed field named", err)
	}

	// The worker released the lease voluntarily: shard pending again with a
	// bumped epoch, release counted.
	st, ok := co.Status(id)
	if !ok {
		t.Fatalf("campaign %s vanished", id)
	}
	if st.Shards[0].State != ShardPending || st.Shards[0].Epoch != 2 {
		t.Errorf("shard 0 after failed resume: %+v, want pending at epoch 2", st.Shards[0])
	}
	if n := co.snapshot().Counters["serve.releases"]; n != 1 {
		t.Errorf("serve.releases = %d, want 1", n)
	}
}
