package fiserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"ferrum/internal/fi"
	"ferrum/internal/harness"
	"ferrum/internal/obs"
)

// Coordinator-side metric names, alongside the standard fi.*/journal.*
// namespaces the merge re-publishes.
const (
	mCampaignsAdmitted = "serve.campaigns_admitted" // campaigns past admission
	mCampaignsMerged   = "serve.campaigns_merged"   // campaigns merged to done
	mRejects           = "serve.rejects"            // 429s (queue or quota)
	mLeases            = "serve.leases"             // shard leases granted
	mReleases          = "serve.releases"           // leases lost (watchdog or voluntary)
	mStaleDrops        = "serve.stale_drops"        // uploads rejected for a stale epoch
	mRecordPosts       = "serve.record_posts"       // journal chunks accepted
	gUnfinished        = "serve.unfinished"         // campaigns not yet done/failed
)

// Admission errors; the HTTP layer maps both to 429.
var (
	ErrQueueFull   = errors.New("fiserve: submission queue full")
	ErrTenantQuota = errors.New("fiserve: tenant quota exhausted")
)

// Config tunes a coordinator.
type Config struct {
	// Addr is the listen address (host:port; ":0" picks a free port).
	Addr string
	// Dir is where shard journals and merged journals live, one
	// subdirectory per campaign.
	Dir string
	// Shards is how many shards each campaign's plan space is split into
	// (default 2; clamped to the campaign's sample count).
	Shards int
	// LeaseTimeout is the watchdog: a leased shard with no upload or
	// heartbeat for this long loses its lease and is re-leased (default 30s).
	LeaseTimeout time.Duration
	// QueueMax bounds unfinished campaigns across all tenants; submissions
	// past it get 429 (default 16).
	QueueMax int
	// TenantQuota bounds unfinished campaigns per tenant — the per-tenant
	// admission tokens (default QueueMax).
	TenantQuota int
}

func (cfg Config) withDefaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 30 * time.Second
	}
	if cfg.QueueMax <= 0 {
		cfg.QueueMax = 16
	}
	if cfg.TenantQuota <= 0 {
		cfg.TenantQuota = cfg.QueueMax
	}
	return cfg
}

type shard struct {
	index    int
	state    string // ShardPending | ShardLeased | ShardDone
	epoch    int
	worker   string
	lastBeat time.Time
	done     int
	fails    int // voluntary releases (worker-reported errors)
	path     string
	result   *fi.Result
}

// maxShardFails bounds deterministic failures: a shard whose workers keep
// reporting errors (a build that cannot succeed) fails the whole campaign
// instead of bouncing between lease and release forever. Watchdog releases
// (worker death) don't count — death is environmental, not deterministic.
const maxShardFails = 3

type campaign struct {
	id     string
	tenant string
	spec   harness.CampaignSpec
	key    string
	state  string
	shards []*shard
	errMsg string
	result *fi.Result
	table  string
	merged string // merged canonical journal path
}

// Coordinator owns campaign admission, shard leasing, durable shard
// journals, and the merge. One HTTP server carries both the service API and
// the standard observability surface.
type Coordinator struct {
	cfg Config
	ob  *obs.Observer
	hub *obs.Hub
	srv *obs.Server

	mu        sync.Mutex
	seq       int
	campaigns map[string]*campaign
	order     []string // submission order, for fair leasing
	workerAgg obs.Snapshot
	stop      chan struct{}
	wg        sync.WaitGroup
}

// Start launches a coordinator: listener bound, watchdog running.
func Start(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fiserve: coordinator needs a journal directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fiserve: %w", err)
	}
	co := &Coordinator{
		cfg:       cfg,
		ob:        obs.New(),
		hub:       obs.NewHub(),
		campaigns: map[string]*campaign{},
		stop:      make(chan struct{}),
	}
	srv, err := obs.StartServerMux(cfg.Addr, co.snapshot, co.hub, co.routes)
	if err != nil {
		return nil, err
	}
	co.srv = srv
	co.wg.Add(1)
	go co.watchdog()
	return co, nil
}

// Addr is the bound listen address.
func (co *Coordinator) Addr() string { return co.srv.Addr() }

// Close stops the watchdog and the HTTP server.
func (co *Coordinator) Close() error {
	close(co.stop)
	co.wg.Wait()
	return co.srv.Close()
}

// snapshot is the /metrics surface: the coordinator's own registry (merged
// campaign results replayed once, merged-journal record accounting) plus the
// workers' non-fi.*, non-journal.* counters.
func (co *Coordinator) snapshot() obs.Snapshot {
	s := co.ob.Reg.Snapshot()
	co.mu.Lock()
	agg := co.workerAgg
	co.mu.Unlock()
	return s.Merge(agg)
}

// event broadcasts one NDJSON progress line through the hub.
func (co *Coordinator) event(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	co.hub.Write(append(b, '\n'))
}

// Submit admits one campaign, or rejects it with ErrQueueFull /
// ErrTenantQuota (HTTP 429) when the bounded queue or the tenant's token
// quota is exhausted.
func (co *Coordinator) Submit(tenant string, spec harness.CampaignSpec) (string, error) {
	if spec.Samples <= 0 {
		return "", fmt.Errorf("fiserve: spec needs a positive sample count")
	}
	if spec.Level != "asm" && spec.Level != "ir" {
		return "", fmt.Errorf("fiserve: unknown injection level %q", spec.Level)
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	unfinished, byTenant := 0, 0
	for _, c := range co.campaigns {
		if c.state == StateRunning {
			unfinished++
			if c.tenant == tenant {
				byTenant++
			}
		}
	}
	if unfinished >= co.cfg.QueueMax {
		co.ob.Counter(mRejects).Add(1)
		return "", fmt.Errorf("%w: %d campaigns in flight (max %d)", ErrQueueFull, unfinished, co.cfg.QueueMax)
	}
	if byTenant >= co.cfg.TenantQuota {
		co.ob.Counter(mRejects).Add(1)
		return "", fmt.Errorf("%w: tenant %q has %d campaigns in flight (max %d)",
			ErrTenantQuota, tenant, byTenant, co.cfg.TenantQuota)
	}
	co.seq++
	id := fmt.Sprintf("c%03d-%s-%s-%s", co.seq, spec.Bench, spec.Technique, spec.Level)
	n := co.cfg.Shards
	if n > spec.Samples {
		n = spec.Samples
	}
	cdir := filepath.Join(co.cfg.Dir, id)
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		return "", fmt.Errorf("fiserve: %w", err)
	}
	c := &campaign{
		id: id, tenant: tenant, spec: spec, key: SpecKey(spec), state: StateRunning,
	}
	for i := 0; i < n; i++ {
		c.shards = append(c.shards, &shard{
			index: i, state: ShardPending,
			path: filepath.Join(cdir, fmt.Sprintf("shard-%d.ndjson", i)),
		})
	}
	co.campaigns[id] = c
	co.order = append(co.order, id)
	co.ob.Counter(mCampaignsAdmitted).Add(1)
	co.ob.Reg.Gauge(gUnfinished).Set(int64(unfinished + 1))
	co.event(map[string]any{"t": "fiserve.submit", "campaign": id, "tenant": tenant, "shards": n})
	return id, nil
}

// Status reports one campaign's public state.
func (co *Coordinator) Status(id string) (CampaignStatus, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c, ok := co.campaigns[id]
	if !ok {
		return CampaignStatus{}, false
	}
	st := CampaignStatus{
		ID: c.id, Tenant: c.tenant, Spec: c.spec, State: c.state,
		Error: c.errMsg, Result: c.result, Table: c.table, MergedJournal: c.merged,
	}
	for _, s := range c.shards {
		st.Shards = append(st.Shards, ShardStatus{
			Index: s.index, State: s.state, Epoch: s.epoch, Done: s.done, Worker: s.worker,
		})
	}
	return st, true
}

// lease hands the next pending shard (submission order) to a worker. The
// shard's epoch is bumped so any uploads from a previous holder go stale,
// and the lease carries the shard journal's synced prefix for resume.
func (co *Coordinator) lease(worker string) (*Lease, bool, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	drained := true
	for _, id := range co.order {
		c := co.campaigns[id]
		if c.state != StateRunning {
			continue
		}
		drained = false
		for _, s := range c.shards {
			if s.state != ShardPending {
				continue
			}
			prior, err := co.shardPrior(s)
			if err != nil {
				// An unreadable shard journal is a coordinator-side fault;
				// fail the campaign rather than leasing corrupt state.
				co.failCampaignLocked(c, fmt.Sprintf("shard %d journal: %v", s.index, err))
				break
			}
			s.state = ShardLeased
			s.epoch++
			s.worker = worker
			s.lastBeat = time.Now()
			co.ob.Counter(mLeases).Add(1)
			meta := SpecMeta(c.spec)
			meta.ShardIndex, meta.ShardCount = s.index, len(c.shards)
			co.event(map[string]any{
				"t": "fiserve.lease", "campaign": c.id, "shard": s.index,
				"epoch": s.epoch, "worker": worker, "resumed": len(prior) > 0,
			})
			return &Lease{
				Campaign: c.id, Shard: s.index, ShardCount: len(c.shards),
				Epoch: s.epoch, Spec: c.spec, Key: c.key, Meta: meta, Prior: prior,
				LeaseTimeout: co.cfg.LeaseTimeout,
			}, false, nil
		}
	}
	return nil, drained, nil
}

// shardPrior loads a shard journal's synced prefix for a re-lease,
// truncating any torn tail so the next worker appends on a record boundary.
// A shard never leased before has no file and no prior.
func (co *Coordinator) shardPrior(s *shard) ([]byte, error) {
	data, err := os.ReadFile(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, nil
	}
	st, err := fi.LoadJournalData(data, s.path)
	if err != nil {
		return nil, err
	}
	if st.ValidLen() < int64(len(data)) {
		if err := os.Truncate(s.path, st.ValidLen()); err != nil {
			return nil, err
		}
		data = data[:st.ValidLen()]
	}
	return data, nil
}

// resolveShard validates a (campaign, shard, epoch) triple from an upload.
// A stale epoch — the watchdog re-leased the shard — is reported as
// errStale, which the HTTP layer maps to 409.
var errStale = errors.New("fiserve: stale lease epoch")

func (co *Coordinator) resolveShard(id string, idx, epoch int) (*campaign, *shard, error) {
	c := co.campaigns[id]
	if c == nil {
		return nil, nil, fmt.Errorf("fiserve: unknown campaign %q", id)
	}
	if idx < 0 || idx >= len(c.shards) {
		return nil, nil, fmt.Errorf("fiserve: campaign %q has no shard %d", id, idx)
	}
	s := c.shards[idx]
	if s.state != ShardLeased || s.epoch != epoch {
		co.ob.Counter(mStaleDrops).Add(1)
		return nil, nil, fmt.Errorf("%w: shard %d is %s at epoch %d, upload claims epoch %d",
			errStale, idx, s.state, s.epoch, epoch)
	}
	return c, s, nil
}

// appendRecords appends a validated NDJSON chunk to a shard journal, fsynced
// before the 204 goes back — the worker's Journal.Sync contract.
func (co *Coordinator) appendRecords(id string, idx, epoch int, chunk []byte) error {
	if err := fi.ValidateRecords(chunk); err != nil {
		return err
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	_, s, err := co.resolveShard(id, idx, epoch)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(chunk); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	s.lastBeat = time.Now()
	co.ob.Counter(mRecordPosts).Add(1)
	return nil
}

// heartbeat renews a lease and publishes shard progress to the hub.
func (co *Coordinator) heartbeat(hb HeartbeatRequest) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	c, s, err := co.resolveShard(hb.Campaign, hb.Shard, hb.Epoch)
	if err != nil {
		return err
	}
	s.lastBeat = time.Now()
	if hb.Done > s.done {
		s.done = hb.Done
	}
	co.event(map[string]any{
		"t": "fiserve.shard", "campaign": c.id, "shard": s.index,
		"done": s.done, "worker": s.worker,
	})
	return nil
}

// release returns a lease the worker cannot finish; the shard goes back to
// pending with a bumped epoch.
func (co *Coordinator) release(rel ReleaseRequest) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	c, s, err := co.resolveShard(rel.Campaign, rel.Shard, rel.Epoch)
	if err != nil {
		return err
	}
	s.state = ShardPending
	s.epoch++
	s.fails++
	co.ob.Counter(mReleases).Add(1)
	co.event(map[string]any{
		"t": "fiserve.release", "campaign": c.id, "shard": s.index,
		"worker": s.worker, "error": rel.Error,
	})
	if s.fails >= maxShardFails {
		co.failCampaignLocked(c, fmt.Sprintf("shard %d failed %d times, last: %s", s.index, s.fails, rel.Error))
	}
	return nil
}

// complete records a finished shard and, when it was the last one, merges
// the campaign.
func (co *Coordinator) complete(req CompleteRequest) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	c, s, err := co.resolveShard(req.Campaign, req.Shard, req.Epoch)
	if err != nil {
		return err
	}
	res := req.Result
	s.result = &res
	s.state = ShardDone
	s.done = res.Samples
	keep := func(name string) bool {
		return !strings.HasPrefix(name, "fi.") && !strings.HasPrefix(name, "journal.")
	}
	co.workerAgg = co.workerAgg.Merge(obs.FilterSnapshot(req.Snapshot, keep))
	co.event(map[string]any{
		"t": "fiserve.shard_done", "campaign": c.id, "shard": s.index, "samples": res.Samples,
	})
	for _, sh := range c.shards {
		if sh.state != ShardDone {
			return nil
		}
	}
	if err := co.mergeLocked(c); err != nil {
		co.failCampaignLocked(c, err.Error())
	}
	return nil
}

// mergeLocked merges a campaign whose shards are all done: load every shard
// journal, merge states, write the canonical merged journal, account its
// records, replay the merged result into the coordinator's registry exactly
// once, and render the table. Callers hold co.mu.
func (co *Coordinator) mergeLocked(c *campaign) error {
	states := make([]*fi.JournalState, 0, len(c.shards))
	for _, s := range c.shards {
		st, err := fi.LoadJournal(s.path)
		if err != nil {
			return fmt.Errorf("shard %d: %w", s.index, err)
		}
		states = append(states, st)
	}
	merged, err := fi.MergeShardStates(states)
	if err != nil {
		return err
	}
	mc := merged.Cell(c.key)
	if mc == nil || mc.Result == nil {
		return fmt.Errorf("merged journal has no complete cell for %q", c.key)
	}
	// Cross-check the journaled merge against the results the workers
	// POSTed; a difference means a surface drifted.
	posted := make([]fi.Result, len(c.shards))
	for i, s := range c.shards {
		posted[i] = *s.result
	}
	fromPosted, err := fi.MergeShardResults(posted)
	if err != nil {
		return err
	}
	if fromPosted.Samples != mc.Result.Samples || fromPosted.Counts != mc.Result.Counts {
		return fmt.Errorf("posted shard results disagree with journaled ones: %v vs %v",
			fromPosted.Counts, mc.Result.Counts)
	}
	mergedPath := filepath.Join(filepath.Dir(c.shards[0].path), "merged.ndjson")
	f, err := os.Create(mergedPath)
	if err != nil {
		return err
	}
	if err := merged.WriteCanonical(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// The merged journal is the coordinator's artifact; account its records
	// under the standard journal.* names so /metrics reconciles exactly
	// against it (1 meta + per-plan + per-cell).
	records := int64(1)
	for _, key := range merged.Keys() {
		cell := merged.Cell(key)
		records += int64(len(cell.Plans))
		if cell.Result != nil {
			records++
		}
	}
	co.ob.Counter(obs.MJournalRecords).Add(records)
	co.ob.Counter(obs.MJournalSyncs).Add(1)
	fi.ReplayResult(co.ob.Cell(c.id, 0), *mc.Result)
	var table strings.Builder
	harness.RenderCampaign(&table, string(c.spec.Technique), c.spec.Level, *mc.Result)
	c.result = mc.Result
	c.table = table.String()
	c.merged = mergedPath
	c.state = StateDone
	co.ob.Counter(mCampaignsMerged).Add(1)
	co.setUnfinishedLocked()
	co.event(map[string]any{"t": "fiserve.done", "campaign": c.id, "samples": mc.Result.Samples})
	return nil
}

func (co *Coordinator) failCampaignLocked(c *campaign, msg string) {
	c.state = StateFailed
	c.errMsg = msg
	co.setUnfinishedLocked()
	co.event(map[string]any{"t": "fiserve.failed", "campaign": c.id, "error": msg})
}

func (co *Coordinator) setUnfinishedLocked() {
	n := 0
	for _, c := range co.campaigns {
		if c.state == StateRunning {
			n++
		}
	}
	co.ob.Reg.Gauge(gUnfinished).Set(int64(n))
}

// watchdog scans leases; one silent for LeaseTimeout loses its shard, which
// goes back to pending with a bumped epoch so the dead worker's late
// uploads are dropped as stale.
func (co *Coordinator) watchdog() {
	defer co.wg.Done()
	tick := co.cfg.LeaseTimeout / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		co.mu.Lock()
		for _, id := range co.order {
			c := co.campaigns[id]
			if c.state != StateRunning {
				continue
			}
			for _, s := range c.shards {
				if s.state == ShardLeased && now.Sub(s.lastBeat) > co.cfg.LeaseTimeout {
					s.state = ShardPending
					s.epoch++
					co.ob.Counter(mReleases).Add(1)
					co.event(map[string]any{
						"t": "fiserve.watchdog", "campaign": c.id, "shard": s.index,
						"worker": s.worker,
					})
				}
			}
		}
		co.mu.Unlock()
	}
}

// --- HTTP layer ---

func (co *Coordinator) routes(mux *http.ServeMux) {
	mux.HandleFunc("/api/submit", co.handleSubmit)
	mux.HandleFunc("/api/campaigns/", co.handleStatus)
	mux.HandleFunc("/api/lease", co.handleLease)
	mux.HandleFunc("/api/records", co.handleRecords)
	mux.HandleFunc("/api/heartbeat", co.handleHeartbeat)
	mux.HandleFunc("/api/complete", co.handleComplete)
	mux.HandleFunc("/api/release", co.handleRelease)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// uploadError maps upload failures onto status codes: stale epochs are 409
// (the worker should drop the lease), everything else 400.
func uploadError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	if errors.Is(err, errStale) {
		code = http.StatusConflict
	}
	http.Error(w, err.Error(), code)
}

func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !readJSON(w, r, &req) {
		return
	}
	id, err := co.Submit(req.Tenant, req.Spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrTenantQuota) {
			code = http.StatusTooManyRequests
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id})
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/api/campaigns/")
	st, ok := co.Status(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown campaign %q", id), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (co *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	l, drained, err := co.lease(req.Worker)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{Lease: l, Drained: drained})
}

func (co *Coordinator) handleRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	idx, err1 := strconv.Atoi(q.Get("shard"))
	epoch, err2 := strconv.Atoi(q.Get("epoch"))
	if q.Get("campaign") == "" || err1 != nil || err2 != nil {
		http.Error(w, "need campaign, shard and epoch query parameters", http.StatusBadRequest)
		return
	}
	// Read the whole chunk before touching the shard file: a worker that
	// dies mid-upload errors the read and nothing is appended, keeping the
	// journal record-aligned.
	chunk, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "short upload: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := co.appendRecords(q.Get("campaign"), idx, epoch, chunk); err != nil {
		uploadError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (co *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb HeartbeatRequest
	if !readJSON(w, r, &hb) {
		return
	}
	if err := co.heartbeat(hb); err != nil {
		uploadError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (co *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := co.complete(req); err != nil {
		uploadError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (co *Coordinator) handleRelease(w http.ResponseWriter, r *http.Request) {
	var rel ReleaseRequest
	if !readJSON(w, r, &rel) {
		return
	}
	if err := co.release(rel); err != nil {
		uploadError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
