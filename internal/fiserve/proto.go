// Package fiserve is the sharded campaign service: a coordinator that
// partitions a fault-injection campaign's deterministic plan space into
// round-robin shards (fi.ShardSpec), leases the shards to worker processes
// over a minimal JSON/NDJSON HTTP API, owns every shard's durable journal,
// and merges the shard journals and results back into one table that is
// byte-identical to a single-process run at any worker count.
//
// The wire surface (all JSON unless noted):
//
//	POST /api/submit     {tenant, spec}            → 202 {id} | 429
//	GET  /api/campaigns/{id}                       → CampaignStatus
//	POST /api/lease      {worker}                  → {lease|null, drained}
//	POST /api/records?campaign=&shard=&epoch=      NDJSON body → 204 | 409
//	POST /api/heartbeat  {campaign, shard, epoch, done}        → 204 | 409
//	POST /api/complete   {campaign, shard, epoch, result, snapshot} → 204 | 409
//	POST /api/release    {campaign, shard, epoch, error}       → 204 | 409
//	GET  /metrics, /progress, /debug/pprof         (internal/obs surface)
//
// Every shard lease carries an epoch. A worker that stops heartbeating loses
// its lease after the watchdog timeout: the shard's epoch is bumped and the
// shard re-leased, so the dead worker's late uploads are rejected with 409
// instead of corrupting the journal. The new lease ships the shard journal's
// synced prefix, and the next worker resumes from it — re-running only the
// plans the journal never recorded.
package fiserve

import (
	"time"

	"ferrum/internal/fi"
	"ferrum/internal/harness"
	"ferrum/internal/obs"
)

// SpecKey is the campaign journal key for a spec, fidi's "<cell>/<technique>/<level>"
// convention, so a fiserve journal and a fidi journal of the same campaign
// reconcile with the same tooling.
func SpecKey(spec harness.CampaignSpec) string {
	return spec.Bench + "/" + string(spec.Technique) + "/" + spec.Level
}

// SpecMeta is the journal meta a spec's campaign records under, without
// shard fields: each shard journal adds its own ShardIndex/ShardCount, and
// the merged journal carries exactly this meta. A single-process reference
// run journaling under SpecMeta produces a canonical journal byte-identical
// to the service's merged one.
func SpecMeta(spec harness.CampaignSpec) fi.JournalMeta {
	return fi.JournalMeta{
		Tool: "fiserve", Seed: spec.Seed, Samples: spec.Samples, Scale: spec.Scale,
		Optimize: spec.Optimize, Benchmarks: []string{spec.Bench},
		Technique: string(spec.Technique), Level: spec.Level, Bits: spec.Bits,
	}
}

// SubmitRequest asks the coordinator to admit one campaign.
type SubmitRequest struct {
	Tenant string               `json:"tenant"`
	Spec   harness.CampaignSpec `json:"spec"`
}

// SubmitResponse acknowledges an admitted campaign.
type SubmitResponse struct {
	ID string `json:"id"`
}

// Campaign states, in lifecycle order.
const (
	StateRunning = "running" // admitted; shards pending, leased or done
	StateDone    = "done"    // all shards complete, journals merged
	StateFailed  = "failed"  // merge failed; Error says why
)

// Shard states.
const (
	ShardPending = "pending" // waiting for a worker
	ShardLeased  = "leased"  // a worker holds the current epoch
	ShardDone    = "done"    // result received
)

// ShardStatus is one shard's public state.
type ShardStatus struct {
	Index  int    `json:"index"`
	State  string `json:"state"`
	Epoch  int    `json:"epoch"`
	Done   int    `json:"done,omitempty"`   // plans completed (last heartbeat)
	Worker string `json:"worker,omitempty"` // current or last lease holder
}

// CampaignStatus is the public view of one campaign.
type CampaignStatus struct {
	ID     string               `json:"id"`
	Tenant string               `json:"tenant"`
	Spec   harness.CampaignSpec `json:"spec"`
	State  string               `json:"state"`
	Shards []ShardStatus        `json:"shards"`
	Error  string               `json:"error,omitempty"`
	// Result and Table are set once State is done: the merged campaign
	// result and its rendered table (harness.RenderCampaign), byte-identical
	// to a single-process run's.
	Result *fi.Result `json:"result,omitempty"`
	Table  string     `json:"table,omitempty"`
	// MergedJournal is the coordinator-local path of the merged canonical
	// journal, for fistat and reconciliation.
	MergedJournal string `json:"merged_journal,omitempty"`
}

// Lease hands one shard to one worker.
type Lease struct {
	Campaign   string               `json:"campaign"`
	Shard      int                  `json:"shard"`
	ShardCount int                  `json:"shard_count"`
	Epoch      int                  `json:"epoch"`
	Spec       harness.CampaignSpec `json:"spec"`
	Key        string               `json:"key"`
	Meta       fi.JournalMeta       `json:"meta"`
	// LeaseTimeout is the coordinator's watchdog deadline; the worker
	// heartbeats a few times per period so a lease is only lost when the
	// worker is actually gone, not when one plan runs long.
	LeaseTimeout time.Duration `json:"lease_timeout"`
	// Prior is the shard journal's synced prefix (NDJSON) from a previous
	// lease that died; empty on a fresh shard. The worker replays it and
	// appends only the missing plans.
	Prior []byte `json:"prior,omitempty"`
}

// LeaseRequest asks for work; Worker names the caller in statuses and logs.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse carries a lease, or reports why there is none.
type LeaseResponse struct {
	Lease *Lease `json:"lease"`
	// Drained reports that the coordinator has no unfinished campaigns at
	// all — polling workers may exit.
	Drained bool `json:"drained"`
}

// HeartbeatRequest renews a lease and reports progress.
type HeartbeatRequest struct {
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	Epoch    int    `json:"epoch"`
	Done     int    `json:"done"`
}

// CompleteRequest delivers a finished shard: the shard's campaign Result and
// the worker's metrics snapshot (registry names, unsanitised). The
// coordinator strips fi.* and journal.* from the snapshot before merging —
// campaign outcomes are replayed exactly once from the merged Result, and
// the merged journal's record count is the coordinator's own accounting.
type CompleteRequest struct {
	Campaign string       `json:"campaign"`
	Shard    int          `json:"shard"`
	Epoch    int          `json:"epoch"`
	Result   fi.Result    `json:"result"`
	Snapshot obs.Snapshot `json:"snapshot"`
}

// ReleaseRequest returns a lease the worker cannot finish (build failure,
// journal write error), with the error for the campaign log. The shard goes
// back to pending immediately instead of waiting out the watchdog.
type ReleaseRequest struct {
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	Epoch    int    `json:"epoch"`
	Error    string `json:"error"`
}
