package fiserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ferrum/internal/fi"
	"ferrum/internal/harness"
	"ferrum/internal/obs"
)

// ErrWorkerDied is what the test-only DieAfterSyncs hook surfaces: the
// worker simulated a crash mid-shard (durable records already uploaded stay
// in the coordinator's shard journal; nothing else is sent, exactly like a
// killed process).
var ErrWorkerDied = errors.New("fiserve: worker died (test hook)")

// Worker executes leased shards against a coordinator. Zero value plus Base
// is usable; Run polls until stopped.
type Worker struct {
	// Base is the coordinator root, "http://host:port".
	Base string
	// Name labels this worker in leases and statuses.
	Name string
	// Client defaults to http.DefaultClient.
	Client *http.Client
	// Workers is the intra-campaign parallelism per shard (0 = GOMAXPROCS).
	Workers int
	// Poll is the idle lease-poll interval (default 100ms).
	Poll time.Duration
	// ExitOnDrain makes Run return once the coordinator reports no
	// unfinished campaigns. Off by default: a worker that polls an idle
	// coordinator stays up waiting for future submissions.
	ExitOnDrain bool
	// DieAfterSyncs, when > 0, is a test hook: after that many successful
	// record uploads (across the worker's lifetime) the journal sink starts
	// failing and the worker reports ErrWorkerDied without notifying the
	// coordinator — a silent crash the watchdog must recover from.
	DieAfterSyncs int

	syncs atomic.Int64
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) postJSON(path string, v any) (*http.Response, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	resp, err := w.client().Post(w.Base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("fiserve: POST %s: %w", path, err)
	}
	return resp, nil
}

// postChecked POSTs v and expects a 2xx, discarding the body.
func (w *Worker) postChecked(path string, v any) error {
	resp, err := w.postJSON(path, v)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fiserve: POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// Run polls for leases and executes them until stop closes — or, with
// ExitOnDrain, until the coordinator reports itself drained. A worker that
// dies via DieAfterSyncs stops immediately with ErrWorkerDied.
func (w *Worker) Run(stop <-chan struct{}) error {
	poll := w.Poll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		worked, drained, err := w.RunOne()
		if errors.Is(err, ErrWorkerDied) {
			return err
		}
		if err != nil {
			// Transient (coordinator restarting, lease raced away): back off
			// and keep polling; the lease protocol already released or will
			// watchdog the shard.
			worked = false
		}
		if drained && w.ExitOnDrain {
			return nil
		}
		if !worked {
			select {
			case <-stop:
				return nil
			case <-time.After(poll):
			}
		}
	}
}

// RunOne leases and executes at most one shard. worked reports whether a
// lease was executed; drained that the coordinator has no unfinished work.
func (w *Worker) RunOne() (worked, drained bool, err error) {
	resp, err := w.postJSON("/api/lease", LeaseRequest{Worker: w.Name})
	if err != nil {
		return false, false, err
	}
	var lr LeaseResponse
	jerr := json.NewDecoder(resp.Body).Decode(&lr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, false, fmt.Errorf("fiserve: lease: %s", resp.Status)
	}
	if jerr != nil {
		return false, false, fmt.Errorf("fiserve: lease: %w", jerr)
	}
	if lr.Lease == nil {
		return false, lr.Drained, nil
	}
	if err := w.execute(lr.Lease); err != nil {
		if errors.Is(err, ErrWorkerDied) {
			return true, false, err
		}
		// Give the shard back right away instead of waiting out the
		// watchdog; a stale 409 here just means it was already re-leased.
		w.postChecked("/api/release", ReleaseRequest{
			Campaign: lr.Lease.Campaign, Shard: lr.Lease.Shard,
			Epoch: lr.Lease.Epoch, Error: err.Error(),
		})
		return true, false, err
	}
	return true, false, nil
}

// execute runs one leased shard: rebuild the target from the spec, resume
// from the lease's prior journal prefix, stream fresh records back through
// the coordinator's durable shard file, and deliver the result plus this
// worker's metrics snapshot.
func (w *Worker) execute(l *Lease) error {
	var prior *fi.CellState
	resumed := len(l.Prior) > 0
	if resumed {
		st, err := fi.LoadJournalData(l.Prior, "lease prior")
		if err != nil {
			return fmt.Errorf("fiserve: lease prior journal: %w", err)
		}
		// The prior journal must have been recorded under this lease's
		// exact configuration; Check names the first differing field.
		if err := st.Meta.Check(l.Meta); err != nil {
			return err
		}
		prior = st.Cell(l.Key)
	}
	ob := obs.New()
	sink := &recordSink{w: w, l: l}
	var journal *fi.Journal
	if resumed {
		// The shard file already starts with the meta record; appending
		// another would double-count it in the merged accounting.
		journal = fi.ResumeStreamJournal(sink)
	} else {
		j, err := fi.NewStreamJournal(sink, l.Meta)
		if err != nil {
			return err
		}
		journal = j
	}
	journal.Observe(ob)

	// Heartbeats are time-driven, not plan-driven: a single plan can run
	// millions of steps (a hang or a late-detected SDC), and a lease must
	// not be revoked just because one plan outlasts the watchdog. The
	// ticker covers the target build too, and goes silent the moment the
	// sink dies — a dead worker stops renewing exactly like a killed
	// process.
	var done atomic.Int64
	interval := l.LeaseTimeout / 4
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				if sink.died() {
					return
				}
				w.postChecked("/api/heartbeat", HeartbeatRequest{
					Campaign: l.Campaign, Shard: l.Shard, Epoch: l.Epoch,
					Done: int(done.Load()),
				})
			}
		}
	}()
	var hbOnce sync.Once
	stopHB := func() { hbOnce.Do(func() { close(hbStop) }); hbWG.Wait() }
	defer stopHB()

	c := fi.Campaign{
		Workers: w.Workers,
		Shard:   fi.ShardSpec{Index: l.Shard, Count: l.ShardCount},
		Journal: journal, Key: l.Key, Prior: prior,
		Obs: ob.Cell(l.Campaign+"/"+fmt.Sprint(l.Shard), 0),
		Progress: func(n int) {
			for {
				cur := done.Load()
				if int64(n) <= cur || done.CompareAndSwap(cur, int64(n)) {
					return
				}
			}
		},
	}
	res, err := harness.RunSpec(l.Spec, c)
	stopHB() // no beats may race the complete/release below
	if err == nil {
		err = journal.Close()
	} else {
		journal.Close()
	}
	if err != nil {
		if sink.died() {
			return ErrWorkerDied
		}
		return err
	}
	return w.postChecked("/api/complete", CompleteRequest{
		Campaign: l.Campaign, Shard: l.Shard, Epoch: l.Epoch,
		Result: res, Snapshot: ob.Reg.Snapshot(),
	})
}

// recordSink adapts the records upload to fi.JournalSink: Write buffers,
// Sync POSTs the buffered chunk to the coordinator, which appends it to the
// durable shard file and fsyncs before answering. A failed upload poisons
// the journal (Journal.Err), which fails the campaign at the next cell
// boundary — exactly like a failed fsync on a local journal.
type recordSink struct {
	w   *Worker
	l   *Lease
	mu  sync.Mutex
	buf bytes.Buffer
	dd  bool // DieAfterSyncs tripped
}

func (s *recordSink) died() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dd
}

func (s *recordSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func (s *recordSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.buf.Len() == 0 {
		return nil
	}
	if s.w.DieAfterSyncs > 0 && s.w.syncs.Load() >= int64(s.w.DieAfterSyncs) {
		s.dd = true
		return ErrWorkerDied
	}
	url := fmt.Sprintf("%s/api/records?campaign=%s&shard=%d&epoch=%d",
		s.w.Base, s.l.Campaign, s.l.Shard, s.l.Epoch)
	resp, err := s.w.client().Post(url, "application/x-ndjson", bytes.NewReader(s.buf.Bytes()))
	if err != nil {
		return fmt.Errorf("fiserve: records upload: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fiserve: records upload: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	s.buf.Reset()
	s.w.syncs.Add(1)
	return nil
}

func (s *recordSink) Close() error {
	return s.Sync()
}
