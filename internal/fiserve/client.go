package fiserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"ferrum/internal/fi"
	"ferrum/internal/harness"
)

// Client submits campaigns to a coordinator and waits for their results.
type Client struct {
	// Base is the coordinator root, "http://host:port".
	Base string
	// Tenant names the submitter for admission quotas ("" is a tenant too).
	Tenant string
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
	// PollInterval is the status poll spacing in Wait (default 50ms).
	PollInterval time.Duration
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// ErrRejected wraps a 429: the queue or the tenant quota is full. Callers
// can back off and resubmit.
var ErrRejected = errors.New("fiserve: submission rejected")

// Submit asks the coordinator to admit one campaign and returns its ID.
func (c *Client) Submit(spec harness.CampaignSpec) (string, error) {
	b, err := json.Marshal(SubmitRequest{Tenant: c.Tenant, Spec: spec})
	if err != nil {
		return "", err
	}
	resp, err := c.client().Post(c.Base+"/api/submit", "application/json", bytes.NewReader(b))
	if err != nil {
		return "", fmt.Errorf("fiserve: submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("%w: %s", ErrRejected, bytes.TrimSpace(msg))
	}
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("fiserve: submit: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return "", fmt.Errorf("fiserve: submit: %w", err)
	}
	return sr.ID, nil
}

// Status fetches one campaign's current state.
func (c *Client) Status(id string) (CampaignStatus, error) {
	resp, err := c.client().Get(c.Base + "/api/campaigns/" + id)
	if err != nil {
		return CampaignStatus{}, fmt.Errorf("fiserve: status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return CampaignStatus{}, fmt.Errorf("fiserve: status: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var st CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return CampaignStatus{}, fmt.Errorf("fiserve: status: %w", err)
	}
	return st, nil
}

// Wait polls until the campaign leaves the running state and returns its
// final status; a failed campaign is an error carrying the campaign's own
// message.
func (c *Client) Wait(id string) (CampaignStatus, error) {
	poll := c.PollInterval
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case StateDone:
			return st, nil
		case StateFailed:
			return st, fmt.Errorf("fiserve: campaign %s failed: %s", id, st.Error)
		}
		time.Sleep(poll)
	}
}

// Run submits a spec and waits for the merged result.
func (c *Client) Run(spec harness.CampaignSpec) (CampaignStatus, error) {
	id, err := c.Submit(spec)
	if err != nil {
		return CampaignStatus{}, err
	}
	return c.Wait(id)
}

// Delegate adapts the client to harness.Options.Delegate: every campaign
// cell of an experiment is submitted to the service and its merged Result
// adopted. Results are deterministic functions of the spec, so a delegated
// experiment's tables are byte-identical to a local run's.
func (c *Client) Delegate() func(harness.CampaignSpec) (fi.Result, error) {
	return func(spec harness.CampaignSpec) (fi.Result, error) {
		st, err := c.Run(spec)
		if err != nil {
			return fi.Result{}, err
		}
		if st.Result == nil {
			return fi.Result{}, fmt.Errorf("fiserve: campaign %s finished without a result", st.ID)
		}
		return *st.Result, nil
	}
}
