package liveness

import (
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/backend"
	"ferrum/internal/ir"
)

func parseFunc(t *testing.T, src string) *asm.Func {
	t.Helper()
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p.Funcs[0]
}

func TestUsedAndSpareGPRs(t *testing.T) {
	f := parseFunc(t, `
	.globl	f
f:
	pushq	%rbp
	movq	%rsp, %rbp
	movq	-8(%rbp), %rax
	addq	%rcx, %rax
	popq	%rbp
	retq
`)
	used := UsedGPRs(f)
	for _, r := range []asm.Reg{asm.RAX, asm.RCX, asm.RBP, asm.RSP} {
		if !used.Has(r) {
			t.Errorf("%v should be used", r)
		}
	}
	if used.Has(asm.R10) || used.Has(asm.RBX) {
		t.Error("r10/rbx wrongly marked used")
	}
	spare := SpareGPRs(f)
	if len(spare) == 0 || spare[0] != asm.R15 {
		t.Errorf("spare = %v, want r15 first", spare)
	}
	for _, r := range spare {
		if used.Has(r) {
			t.Errorf("spare register %v is used", r)
		}
	}
}

func TestUsedXMMs(t *testing.T) {
	f := parseFunc(t, `
	.globl	f
f:
	movq	%rax, %xmm1
	pinsrq	$1, %rcx, %xmm3
	vinserti128	$1, %xmm3, %ymm1, %ymm5
	retq
`)
	used := UsedXMMs(f)
	for _, x := range []asm.XReg{1, 3, 5} {
		if !used[x] {
			t.Errorf("xmm%d should be used", x)
		}
	}
	if used[0] || used[2] {
		t.Error("xmm0/xmm2 wrongly used")
	}
	spare := SpareXMMs(f)
	if len(spare) != 13 || spare[0] != 0 || spare[1] != 2 {
		t.Errorf("spare xmms = %v", spare)
	}
}

func TestBlockUnusedGPRs(t *testing.T) {
	f := parseFunc(t, `
	.globl	f
f:
	movq	$1, %rax
	jmp	.Lb
.Lb:
	movq	$2, %r10
	movq	%r10, %rcx
	retq
`)
	blocks := asm.Blocks(f)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	un0 := BlockUnusedGPRs(f, blocks[0])
	has := func(rs []asm.Reg, r asm.Reg) bool {
		for _, x := range rs {
			if x == r {
				return true
			}
		}
		return false
	}
	if !has(un0, asm.R10) || has(un0, asm.RAX) {
		t.Errorf("block 0 unused = %v", un0)
	}
	un1 := BlockUnusedGPRs(f, blocks[1])
	if has(un1, asm.R10) || has(un1, asm.RCX) || !has(un1, asm.RBX) {
		t.Errorf("block 1 unused = %v", un1)
	}
}

func TestCFGConstruction(t *testing.T) {
	f := parseFunc(t, `
	.globl	f
f:
	cmpq	$0, %rax
	je	.La
	movq	$1, %rcx
	jmp	.Lb
.La:
	movq	$2, %rcx
.Lb:
	retq
`)
	cfg := BuildCFG(f)
	if len(cfg.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(cfg.Blocks))
	}
	// Block 0 (cmp/je) -> .La (block 2) and fallthrough (block 1).
	if len(cfg.Succs[0]) != 2 {
		t.Errorf("succs[0] = %v", cfg.Succs[0])
	}
	// Block 1 (mov/jmp) -> .Lb (block 3).
	if len(cfg.Succs[1]) != 1 || cfg.Succs[1][0] != 3 {
		t.Errorf("succs[1] = %v", cfg.Succs[1])
	}
	// Block 2 (.La) -> fallthrough block 3.
	if len(cfg.Succs[2]) != 1 || cfg.Succs[2][0] != 3 {
		t.Errorf("succs[2] = %v", cfg.Succs[2])
	}
	// Block 3 (ret) -> none.
	if len(cfg.Succs[3]) != 0 {
		t.Errorf("succs[3] = %v", cfg.Succs[3])
	}
}

func TestLivenessLoop(t *testing.T) {
	// rax is the accumulator carried around the loop; rcx is the counter.
	f := parseFunc(t, `
	.globl	f
f:
	movq	$0, %rax
	movq	$10, %rcx
.Lloop:
	addq	%rcx, %rax
	subq	$1, %rcx
	cmpq	$0, %rcx
	jg	.Lloop
	retq
`)
	lv := Analyze(f)
	// Find the loop block.
	loopIdx := -1
	for i, b := range lv.CFG.Blocks {
		for _, l := range f.Insts[b.Start].Labels {
			if l == ".Lloop" {
				loopIdx = i
			}
		}
	}
	if loopIdx < 0 {
		t.Fatal("loop block not found")
	}
	in := lv.LiveIn[loopIdx]
	if !in.Has(asm.RAX) || !in.Has(asm.RCX) {
		t.Errorf("loop live-in = %v", in.Regs())
	}
	if in.Has(asm.R10) {
		t.Errorf("r10 live at loop entry: %v", in.Regs())
	}
	out := lv.LiveOut[loopIdx]
	if !out.Has(asm.RAX) {
		t.Errorf("rax not live-out of loop: %v", out.Regs())
	}
}

func TestLiveAtInstruction(t *testing.T) {
	f := parseFunc(t, `
	.globl	f
f:
	movq	$1, %rax
	movq	$2, %rcx
	addq	%rcx, %rax
	retq
`)
	lv := Analyze(f)
	// Before the addq (index 2), both rax and rcx are live.
	live := lv.LiveAt(2)
	if !live.Has(asm.RAX) || !live.Has(asm.RCX) {
		t.Errorf("live at addq = %v", live.Regs())
	}
	// Before the first movq only the function-entry registers matter;
	// rcx is not yet live (it is defined at index 1 before any use).
	live = lv.LiveAt(0)
	if live.Has(asm.RCX) {
		t.Errorf("rcx live at entry: %v", live.Regs())
	}
}

func TestCallKillsCallerSaved(t *testing.T) {
	f := parseFunc(t, `
	.globl	f
f:
	movq	$1, %r10
	movq	$2, %rbx
	callq	f
	addq	%rbx, %r10
	retq
`)
	lv := Analyze(f)
	// r10 is caller-saved and redefined... actually killed by the call,
	// so before the call it is NOT live (its pre-call value never
	// reaches a use). rbx is callee-saved and survives to the addq.
	live := lv.LiveAt(2) // before callq
	if live.Has(asm.R10) {
		t.Errorf("r10 should be killed by call: %v", live.Regs())
	}
	if !live.Has(asm.RBX) {
		t.Errorf("rbx should be live across call: %v", live.Regs())
	}
}

func TestSparseOnCompiledCode(t *testing.T) {
	mod, err := ir.Parse(`
func @main(%n) {
entry:
  %x = add %n, 1
  out %x
  ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	spare := SpareGPRs(f)
	// The backend only uses rax/rcx/rdx scratch + rdi arg + rbp/rsp, so
	// rbx and r10-r15 must be spare: plenty for FERRUM's requirements
	// (2 GPRs) and the comparison protection (2 more).
	if len(spare) < 4 {
		t.Errorf("spare = %v, want at least 4", spare)
	}
	if len(SpareXMMs(f)) != 16 {
		t.Errorf("all 16 xmm registers should be spare in scalar code")
	}
}
