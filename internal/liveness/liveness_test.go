package liveness

import (
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/backend"
	"ferrum/internal/ir"
)

func parseFunc(t *testing.T, src string) *asm.Func {
	t.Helper()
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p.Funcs[0]
}

func TestUsedAndSpareGPRs(t *testing.T) {
	f := parseFunc(t, `
	.globl	f
f:
	pushq	%rbp
	movq	%rsp, %rbp
	movq	-8(%rbp), %rax
	addq	%rcx, %rax
	popq	%rbp
	retq
`)
	used := UsedGPRs(f)
	for _, r := range []asm.Reg{asm.RAX, asm.RCX, asm.RBP, asm.RSP} {
		if !used.Has(r) {
			t.Errorf("%v should be used", r)
		}
	}
	if used.Has(asm.R10) || used.Has(asm.RBX) {
		t.Error("r10/rbx wrongly marked used")
	}
	spare := SpareGPRs(f)
	if len(spare) == 0 || spare[0] != asm.R15 {
		t.Errorf("spare = %v, want r15 first", spare)
	}
	for _, r := range spare {
		if used.Has(r) {
			t.Errorf("spare register %v is used", r)
		}
	}
}

func TestUsedXMMs(t *testing.T) {
	f := parseFunc(t, `
	.globl	f
f:
	movq	%rax, %xmm1
	pinsrq	$1, %rcx, %xmm3
	vinserti128	$1, %xmm3, %ymm1, %ymm5
	retq
`)
	used := UsedXMMs(f)
	for _, x := range []asm.XReg{1, 3, 5} {
		if !used[x] {
			t.Errorf("xmm%d should be used", x)
		}
	}
	if used[0] || used[2] {
		t.Error("xmm0/xmm2 wrongly used")
	}
	spare := SpareXMMs(f)
	if len(spare) != 13 || spare[0] != 0 || spare[1] != 2 {
		t.Errorf("spare xmms = %v", spare)
	}
}

func TestBlockUnusedGPRs(t *testing.T) {
	f := parseFunc(t, `
	.globl	f
f:
	movq	$1, %rax
	jmp	.Lb
.Lb:
	movq	$2, %r10
	movq	%r10, %rcx
	retq
`)
	blocks := asm.Blocks(f)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	un0 := BlockUnusedGPRs(f, blocks[0])
	has := func(rs []asm.Reg, r asm.Reg) bool {
		for _, x := range rs {
			if x == r {
				return true
			}
		}
		return false
	}
	if !has(un0, asm.R10) || has(un0, asm.RAX) {
		t.Errorf("block 0 unused = %v", un0)
	}
	un1 := BlockUnusedGPRs(f, blocks[1])
	if has(un1, asm.R10) || has(un1, asm.RCX) || !has(un1, asm.RBX) {
		t.Errorf("block 1 unused = %v", un1)
	}
}

func TestCFGConstruction(t *testing.T) {
	f := parseFunc(t, `
	.globl	f
f:
	cmpq	$0, %rax
	je	.La
	movq	$1, %rcx
	jmp	.Lb
.La:
	movq	$2, %rcx
.Lb:
	retq
`)
	cfg := BuildCFG(f)
	if len(cfg.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(cfg.Blocks))
	}
	// Block 0 (cmp/je) -> .La (block 2) and fallthrough (block 1).
	if len(cfg.Succs[0]) != 2 {
		t.Errorf("succs[0] = %v", cfg.Succs[0])
	}
	// Block 1 (mov/jmp) -> .Lb (block 3).
	if len(cfg.Succs[1]) != 1 || cfg.Succs[1][0] != 3 {
		t.Errorf("succs[1] = %v", cfg.Succs[1])
	}
	// Block 2 (.La) -> fallthrough block 3.
	if len(cfg.Succs[2]) != 1 || cfg.Succs[2][0] != 3 {
		t.Errorf("succs[2] = %v", cfg.Succs[2])
	}
	// Block 3 (ret) -> none.
	if len(cfg.Succs[3]) != 0 {
		t.Errorf("succs[3] = %v", cfg.Succs[3])
	}
}

func TestLivenessLoop(t *testing.T) {
	// rax is the accumulator carried around the loop; rcx is the counter.
	f := parseFunc(t, `
	.globl	f
f:
	movq	$0, %rax
	movq	$10, %rcx
.Lloop:
	addq	%rcx, %rax
	subq	$1, %rcx
	cmpq	$0, %rcx
	jg	.Lloop
	retq
`)
	lv := Analyze(f)
	// Find the loop block.
	loopIdx := -1
	for i, b := range lv.CFG.Blocks {
		for _, l := range f.Insts[b.Start].Labels {
			if l == ".Lloop" {
				loopIdx = i
			}
		}
	}
	if loopIdx < 0 {
		t.Fatal("loop block not found")
	}
	in := lv.LiveIn[loopIdx]
	if !in.Has(asm.RAX) || !in.Has(asm.RCX) {
		t.Errorf("loop live-in = %v", in.Regs())
	}
	if in.Has(asm.R10) {
		t.Errorf("r10 live at loop entry: %v", in.Regs())
	}
	out := lv.LiveOut[loopIdx]
	if !out.Has(asm.RAX) {
		t.Errorf("rax not live-out of loop: %v", out.Regs())
	}
}

func TestLiveAtInstruction(t *testing.T) {
	f := parseFunc(t, `
	.globl	f
f:
	movq	$1, %rax
	movq	$2, %rcx
	addq	%rcx, %rax
	retq
`)
	lv := Analyze(f)
	// Before the addq (index 2), both rax and rcx are live.
	live, ok := lv.LiveAt(2)
	if !ok {
		t.Fatal("index 2 should be in range")
	}
	if !live.Has(asm.RAX) || !live.Has(asm.RCX) {
		t.Errorf("live at addq = %v", live.Regs())
	}
	// Before the first movq only the function-entry registers matter;
	// rcx is not yet live (it is defined at index 1 before any use).
	live, ok = lv.LiveAt(0)
	if !ok {
		t.Fatal("index 0 should be in range")
	}
	if live.Has(asm.RCX) {
		t.Errorf("rcx live at entry: %v", live.Regs())
	}
}

func TestLiveAtOutOfRange(t *testing.T) {
	f := parseFunc(t, `
	.globl	f
f:
	movq	$1, %rax
	retq
`)
	lv := Analyze(f)
	for _, idx := range []int{-1, len(f.Insts), len(f.Insts) + 7} {
		if live, ok := lv.LiveAt(idx); ok {
			t.Errorf("LiveAt(%d) = (%v, true), want ok=false", idx, live.Regs())
		}
	}
	fl := AnalyzeFlags(f)
	for _, idx := range []int{-1, len(f.Insts)} {
		if _, ok := fl.LiveAt(idx); ok {
			t.Errorf("flags LiveAt(%d) ok, want false", idx)
		}
	}
}

// TestLiveAtBlockBoundaries pins LiveAt at the first and last instruction
// of each block, covering both fallthrough and branch successor edges.
func TestLiveAtBlockBoundaries(t *testing.T) {
	// Block 0: cmp/je (rax read). Block 1: fallthrough, defines rcx from
	// rdx. Block 2 (.La): defines rcx from rbx. Block 3 (.Lb): uses rcx.
	f := parseFunc(t, `
	.globl	f
f:
	cmpq	$0, %rax
	je	.La
	movq	%rdx, %rcx
	jmp	.Lb
.La:
	movq	%rbx, %rcx
.Lb:
	movq	%rcx, %rax
	retq
`)
	lv := Analyze(f)
	mustLive := func(idx int, want []asm.Reg, not []asm.Reg) {
		t.Helper()
		live, ok := lv.LiveAt(idx)
		if !ok {
			t.Fatalf("LiveAt(%d): out of range", idx)
		}
		for _, r := range want {
			if !live.Has(r) {
				t.Errorf("LiveAt(%d): %v should be live (got %v)", idx, r, live.Regs())
			}
		}
		for _, r := range not {
			if live.Has(r) {
				t.Errorf("LiveAt(%d): %v should be dead (got %v)", idx, r, live.Regs())
			}
		}
	}
	// First instruction of block 0: both successor paths' uses (rdx via
	// fallthrough, rbx via the branch) are live; rcx is not.
	mustLive(0, []asm.Reg{asm.RAX, asm.RDX, asm.RBX}, []asm.Reg{asm.RCX})
	// Last instruction of block 0 (the je): same set, rax's use retired.
	mustLive(1, []asm.Reg{asm.RDX, asm.RBX}, []asm.Reg{asm.RCX})
	// First instruction of block 1 (fallthrough target): rdx live, rbx not
	// on this path.
	mustLive(2, []asm.Reg{asm.RDX}, []asm.Reg{asm.RBX, asm.RCX})
	// Last instruction of block 1 (the jmp): rcx carried to .Lb.
	mustLive(3, []asm.Reg{asm.RCX}, []asm.Reg{asm.RDX})
	// Branch target .La (block 2): rbx live.
	mustLive(4, []asm.Reg{asm.RBX}, []asm.Reg{asm.RDX, asm.RCX})
	// .Lb first instruction: rcx live from both predecessors.
	mustLive(5, []asm.Reg{asm.RCX}, []asm.Reg{asm.RBX, asm.RDX})
	// Final ret: rax (return value) live.
	mustLive(6, []asm.Reg{asm.RAX}, []asm.Reg{asm.RCX})
}

func TestCallKillsCallerSaved(t *testing.T) {
	f := parseFunc(t, `
	.globl	f
f:
	movq	$1, %r10
	movq	$2, %rbx
	callq	f
	addq	%rbx, %r10
	retq
`)
	lv := Analyze(f)
	// r10 is caller-saved and redefined... actually killed by the call,
	// so before the call it is NOT live (its pre-call value never
	// reaches a use). rbx is callee-saved and survives to the addq.
	live, ok := lv.LiveAt(2) // before callq
	if !ok {
		t.Fatal("index 2 should be in range")
	}
	if live.Has(asm.R10) {
		t.Errorf("r10 should be killed by call: %v", live.Regs())
	}
	if !live.Has(asm.RBX) {
		t.Errorf("rbx should be live across call: %v", live.Regs())
	}
	// Under CallPreserves the call defines nothing, so r10's pre-call
	// value flows through to the addq and stays live — the conservative
	// direction pruning needs.
	pv := AnalyzeCalls(f, CallPreserves)
	live, ok = pv.LiveAt(2)
	if !ok {
		t.Fatal("index 2 should be in range")
	}
	if !live.Has(asm.R10) || !live.Has(asm.RBX) {
		t.Errorf("CallPreserves live before call = %v, want r10+rbx", live.Regs())
	}
}

func TestFlagLiveness(t *testing.T) {
	// cmp consumed by je: only ZF flows backward to the je; between a
	// consumer and the next compare nothing is live; jl keeps SF|OF alive.
	// The trailing cmp/jne isolates the jl region from ret's conservative
	// read-everything model.
	f := parseFunc(t, `
	.globl	f
f:
	cmpq	$0, %rax
	je	.La
	movq	$1, %rcx
.La:
	cmpq	$2, %rcx
	jl	.Lb
	movq	$3, %rcx
.Lb:
	cmpq	$0, %rcx
	jne	.Le
	movq	$4, %rcx
.Le:
	retq
`)
	fl := AnalyzeFlags(f)
	at := func(idx int) FlagSet {
		t.Helper()
		live, ok := fl.LiveAt(idx)
		if !ok {
			t.Fatalf("index %d out of range", idx)
		}
		return live
	}
	// Before the je (index 1): exactly ZF.
	if live := at(1); live != 1<<asm.FlagZF {
		t.Errorf("live before je = %04b, want ZF only", live)
	}
	// Before the first cmp (index 0): the compare kills everything before
	// reading nothing, so no earlier flag value survives to a use.
	if live := at(0); live != 0 {
		t.Errorf("live before cmp = %04b, want none", live)
	}
	// Between the je and the next cmp (index 2): nothing live.
	if live := at(2); live != 0 {
		t.Errorf("flags live between consumers = %04b, want none", live)
	}
	// Before the jl (index 4): SF and OF live, ZF/CF dead — the following
	// block's cmp kills the flags before the jne reads.
	if live := at(4); live != 1<<asm.FlagSF|1<<asm.FlagOF {
		t.Errorf("live before jl = %04b, want SF|OF", live)
	}
}

// TestFlagLivenessCFNeverLive pins the property the pruning pass exploits:
// no condition in the machine reads CF, so CF is dead at every flags site
// in compiled code.
func TestFlagLivenessCFNeverLive(t *testing.T) {
	mod, err := ir.Parse(`
func @main(%n) {
entry:
  %c = icmp slt %n, 10
  br %c, yes, no
yes:
  out %n
  ret
no:
  ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range prog.Funcs {
		fl := AnalyzeFlags(f)
		for idx, in := range f.Insts {
			if asm.DestOf(in).Kind != asm.DestFlags {
				continue
			}
			live, ok := fl.LiveAt(idx)
			if !ok {
				t.Fatalf("%s[%d]: out of range", f.Name, idx)
			}
			if live.Has(asm.FlagCF) {
				t.Errorf("%s[%d] %v: CF live at flags site", f.Name, idx, in)
			}
		}
	}
}

func TestSparseOnCompiledCode(t *testing.T) {
	mod, err := ir.Parse(`
func @main(%n) {
entry:
  %x = add %n, 1
  out %x
  ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	spare := SpareGPRs(f)
	// The backend only uses rax/rcx/rdx scratch + rdi arg + rbp/rsp, so
	// rbx and r10-r15 must be spare: plenty for FERRUM's requirements
	// (2 GPRs) and the comparison protection (2 more).
	if len(spare) < 4 {
		t.Errorf("spare = %v, want at least 4", spare)
	}
	if len(SpareXMMs(f)) != 16 {
		t.Errorf("all 16 xmm registers should be spare in scalar code")
	}
}
