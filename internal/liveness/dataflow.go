package liveness

import (
	"ferrum/internal/asm"
)

// CFG is the control-flow graph of one function's basic blocks.
type CFG struct {
	Blocks []asm.Block
	// Succs[i] lists the indices of blocks control may reach from block i.
	// Targets outside the function (the shared detection block) are
	// omitted: they never return, so they contribute no liveness.
	Succs [][]int
}

// BuildCFG partitions the function into blocks and connects them.
func BuildCFG(f *asm.Func) *CFG {
	blocks := asm.Blocks(f)
	labelToBlock := map[string]int{}
	for i, b := range blocks {
		for _, l := range f.Insts[b.Start].Labels {
			labelToBlock[l] = i
		}
	}
	cfg := &CFG{Blocks: blocks, Succs: make([][]int, len(blocks))}
	for i, b := range blocks {
		last := f.Insts[b.End-1]
		addTarget := func(label string) {
			if t, ok := labelToBlock[label]; ok {
				cfg.Succs[i] = append(cfg.Succs[i], t)
			}
		}
		switch {
		case last.Op == asm.JMP:
			addTarget(last.A[0].Label)
		case asm.IsCondJump(last.Op):
			addTarget(last.A[0].Label)
			if i+1 < len(blocks) {
				cfg.Succs[i] = append(cfg.Succs[i], i+1)
			}
		case asm.IsTerminator(last.Op):
			// ret/halt/detect: no successors.
		default:
			if i+1 < len(blocks) {
				cfg.Succs[i] = append(cfg.Succs[i], i+1)
			}
		}
	}
	return cfg
}

// CallEffect selects how the dataflow models a call instruction's register
// effects. The two models bound the truth from opposite sides, and which
// bound is sound depends on what the analysis result is used for.
type CallEffect uint8

const (
	// CallClobbers models a call as defining the full caller-saved set:
	// registers not explicitly saved may not survive the call. This
	// over-approximates definitions, which is the safe direction for
	// FERRUM's insertion-point validation (a register reported live really
	// is needed).
	CallClobbers CallEffect = iota
	// CallPreserves models a call as defining nothing. This
	// under-approximates definitions, so liveness propagates through calls
	// untouched — the safe direction for deadness-based pruning: a register
	// the caller reads after the call stays live across it even though the
	// callee would architecturally be allowed to clobber it.
	CallPreserves
)

// Liveness holds the result of the backward dataflow: registers live at
// block entry and exit.
type Liveness struct {
	CFG     *CFG
	LiveIn  []RegSet
	LiveOut []RegSet
	f       *asm.Func
	ce      CallEffect
}

// Analyze runs the backward may-liveness dataflow to a fixed point with the
// CallClobbers model. Calls are modelled as using the argument registers
// and defining the caller-saved set; ret uses RAX (the return value), RSP
// and RBP.
func Analyze(f *asm.Func) *Liveness {
	return AnalyzeCalls(f, CallClobbers)
}

// AnalyzeCalls runs the backward may-liveness dataflow to a fixed point
// under the given call-effect model.
func AnalyzeCalls(f *asm.Func, ce CallEffect) *Liveness {
	cfg := BuildCFG(f)
	n := len(cfg.Blocks)
	lv := &Liveness{
		CFG:     cfg,
		LiveIn:  make([]RegSet, n),
		LiveOut: make([]RegSet, n),
		f:       f,
		ce:      ce,
	}
	use := make([]RegSet, n)
	def := make([]RegSet, n)
	for i, b := range cfg.Blocks {
		var u, d RegSet
		var buf []asm.Reg
		for idx := b.Start; idx < b.End; idx++ {
			in := f.Insts[idx]
			buf = InstUses(in, buf[:0])
			for _, r := range buf {
				if !d.Has(r) {
					u.Add(r)
				}
			}
			for _, r := range InstDefs(in, ce) {
				d.Add(r)
			}
		}
		use[i], def[i] = u, d
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			var out RegSet
			for _, s := range cfg.Succs[i] {
				out.Union(lv.LiveIn[s])
			}
			in := use[i] | (out &^ def[i])
			if out != lv.LiveOut[i] {
				lv.LiveOut[i] = out
				changed = true
			}
			if in != lv.LiveIn[i] {
				lv.LiveIn[i] = in
				changed = true
			}
		}
	}
	return lv
}

// LiveAt returns the registers live immediately before instruction index
// idx and whether idx lies inside a block of the analysed function. An
// out-of-range index returns (0, false) rather than a silently-empty set:
// callers that would read "nothing live" as "safe to prune" must be able
// to tell the two apart.
func (lv *Liveness) LiveAt(idx int) (RegSet, bool) {
	for bi, b := range lv.CFG.Blocks {
		if idx < b.Start || idx >= b.End {
			continue
		}
		live := lv.LiveOut[bi]
		var buf []asm.Reg
		for j := b.End - 1; j >= idx; j-- {
			in := lv.f.Insts[j]
			for _, r := range InstDefs(in, lv.ce) {
				live.Remove(r)
			}
			buf = InstUses(in, buf[:0])
			for _, r := range buf {
				live.Add(r)
			}
		}
		return live, true
	}
	return 0, false
}

// InstUses appends the general-purpose registers the instruction reads
// under the dataflow's model (GPRUses plus the implicit ret/call uses) and
// returns the extended slice.
func InstUses(in asm.Inst, buf []asm.Reg) []asm.Reg {
	buf = asm.GPRUses(in, buf)
	switch in.Op {
	case asm.RET:
		buf = append(buf, asm.RAX, asm.RSP, asm.RBP)
	case asm.CALL:
		buf = append(buf, asm.RSP)
	}
	return buf
}

// InstDefs returns the general-purpose registers the instruction defines
// under the given call-effect model.
func InstDefs(in asm.Inst, ce CallEffect) []asm.Reg {
	if in.Op == asm.CALL {
		if ce == CallPreserves {
			return nil
		}
		return asm.CallerSaved
	}
	if d := asm.GPRDef(in); d != asm.RNone {
		return []asm.Reg{d}
	}
	return nil
}
