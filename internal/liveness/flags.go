// Flag-bit liveness: a backward may-liveness dataflow over the four
// modelled status flags, mirroring the register dataflow in dataflow.go.
// The pruning pass uses it to find dead flag bits at DestFlags fault
// sites — e.g. a cmpq consumed only by je leaves SF, CF and OF dead, so
// flipping them is Benign by construction.
//
// The transfer functions model the MACHINE's semantics, not the
// architecture's: every flag-writing instruction in the machine writes all
// four flags (the setFlags* helpers and the inline vptest path), and idivq
// leaves the flags untouched, so it is deliberately absent from the writer
// set even though x86 marks its flags undefined.
package liveness

import (
	"ferrum/internal/asm"
)

// FlagSet is a bitset over asm.Flag values.
type FlagSet uint8

// AllFlags contains every modelled status flag.
const AllFlags = FlagSet(1)<<asm.NumFlag - 1

// Add inserts a flag.
func (s *FlagSet) Add(f asm.Flag) { *s |= 1 << f }

// Has reports membership.
func (s FlagSet) Has(f asm.Flag) bool { return s&(1<<f) != 0 }

// Union merges another set into this one.
func (s *FlagSet) Union(o FlagSet) { *s |= o }

// FlagsRead returns the flags whose values the instruction's execution
// consults. Conditional jumps and setcc read the cond() inputs; notably no
// condition in the machine ever reads CF. Calls and returns conservatively
// read everything: flags could in principle flow across the function
// boundary, which the per-function dataflow cannot see.
func FlagsRead(in asm.Inst) FlagSet {
	switch in.Op {
	case asm.JE, asm.JNE, asm.SETE, asm.SETNE:
		return 1 << asm.FlagZF
	case asm.JL, asm.JGE, asm.SETL, asm.SETGE:
		return 1<<asm.FlagSF | 1<<asm.FlagOF
	case asm.JLE, asm.JG, asm.SETLE, asm.SETG:
		return 1<<asm.FlagZF | 1<<asm.FlagSF | 1<<asm.FlagOF
	case asm.CALL, asm.RET:
		return AllFlags
	}
	return 0
}

// FlagsWritten reports whether the machine redefines all four status flags
// when executing the instruction. There is no partial-write case: every
// flag writer in the machine sets ZF, SF, CF and OF together.
func FlagsWritten(in asm.Inst) bool {
	switch in.Op {
	case asm.ADDQ, asm.SUBQ, asm.IMULQ, asm.ANDQ, asm.ORQ, asm.XORQ, asm.XORB,
		asm.SHLQ, asm.SHRQ, asm.SARQ, asm.NEGQ,
		asm.CMPQ, asm.CMPL, asm.CMPB, asm.TESTQ, asm.VPTEST:
		return true
	}
	return false
}

// FlagLiveness holds the result of the backward flag dataflow: flags live
// at block entry and exit.
type FlagLiveness struct {
	CFG     *CFG
	LiveIn  []FlagSet
	LiveOut []FlagSet
	f       *asm.Func
}

// AnalyzeFlags runs the backward flag-liveness dataflow to a fixed point.
func AnalyzeFlags(f *asm.Func) *FlagLiveness {
	cfg := BuildCFG(f)
	n := len(cfg.Blocks)
	fl := &FlagLiveness{
		CFG:     cfg,
		LiveIn:  make([]FlagSet, n),
		LiveOut: make([]FlagSet, n),
		f:       f,
	}
	use := make([]FlagSet, n)
	def := make([]FlagSet, n)
	for i, b := range cfg.Blocks {
		var u, d FlagSet
		for idx := b.Start; idx < b.End; idx++ {
			in := f.Insts[idx]
			u |= FlagsRead(in) &^ d
			if FlagsWritten(in) {
				d = AllFlags
			}
		}
		use[i], def[i] = u, d
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			var out FlagSet
			for _, s := range cfg.Succs[i] {
				out.Union(fl.LiveIn[s])
			}
			in := use[i] | (out &^ def[i])
			if out != fl.LiveOut[i] {
				fl.LiveOut[i] = out
				changed = true
			}
			if in != fl.LiveIn[i] {
				fl.LiveIn[i] = in
				changed = true
			}
		}
	}
	return fl
}

// LiveAt returns the flags live immediately before instruction index idx
// and whether idx lies inside a block of the analysed function.
func (fl *FlagLiveness) LiveAt(idx int) (FlagSet, bool) {
	for bi, b := range fl.CFG.Blocks {
		if idx < b.Start || idx >= b.End {
			continue
		}
		live := fl.LiveOut[bi]
		for j := b.End - 1; j >= idx; j-- {
			in := fl.f.Insts[j]
			if FlagsWritten(in) {
				live = 0
			}
			live |= FlagsRead(in)
		}
		return live, true
	}
	return 0, false
}
