// Package liveness implements the static register analysis FERRUM's first
// phase performs (§III-B1 of the paper): scanning a function for the
// general-purpose and SIMD registers it uses, discovering spare registers
// available for duplication, finding registers unused within individual
// basic blocks (candidates for stack requisition, fig. 7), and a classic
// backward liveness dataflow over the assembly CFG used to validate
// insertion points.
package liveness

import (
	"ferrum/internal/asm"
)

// RegSet is a small bitset over general-purpose registers.
type RegSet uint32

// Add inserts a register.
func (s *RegSet) Add(r asm.Reg) { *s |= 1 << r }

// Has reports membership.
func (s RegSet) Has(r asm.Reg) bool { return s&(1<<r) != 0 }

// Union merges another set into this one and reports whether it grew.
func (s *RegSet) Union(o RegSet) bool {
	old := *s
	*s |= o
	return *s != old
}

// Remove deletes a register.
func (s *RegSet) Remove(r asm.Reg) { *s &^= 1 << r }

// Regs lists the members in register order.
func (s RegSet) Regs() []asm.Reg {
	var out []asm.Reg
	for r := asm.RAX; r < asm.NumReg; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// UsedGPRs reports every general-purpose register the function reads or
// writes, including implicit uses. RSP and RBP are always considered used:
// they anchor the stack and frame.
func UsedGPRs(f *asm.Func) RegSet {
	var used RegSet
	used.Add(asm.RSP)
	used.Add(asm.RBP)
	var buf []asm.Reg
	for _, in := range f.Insts {
		buf = asm.GPRUses(in, buf[:0])
		for _, r := range buf {
			used.Add(r)
		}
		if d := asm.GPRDef(in); d != asm.RNone {
			used.Add(d)
		}
	}
	return used
}

// UsedXMMs reports every SIMD register the function touches.
func UsedXMMs(f *asm.Func) map[asm.XReg]bool {
	used := map[asm.XReg]bool{}
	var buf []asm.XReg
	for _, in := range f.Insts {
		buf = asm.XUses(in, buf[:0])
		for _, x := range buf {
			used[x] = true
		}
		if x, ok := asm.XDef(in); ok {
			used[x] = true
		}
	}
	return used
}

// SpareGPRs lists the general-purpose registers the function never touches,
// in allocation-preference order (high registers first, matching the
// paper's examples which requisition %r10-%r12).
func SpareGPRs(f *asm.Func) []asm.Reg {
	used := UsedGPRs(f)
	var out []asm.Reg
	for r := asm.R15; r >= asm.RAX; r-- {
		if !used.Has(r) {
			out = append(out, r)
		}
		if r == asm.RAX {
			break
		}
	}
	return out
}

// SpareXMMs lists the SIMD registers the function never touches, lowest
// first (FERRUM stages batches in xmm0-xmm3 when free, as in fig. 6).
func SpareXMMs(f *asm.Func) []asm.XReg {
	used := UsedXMMs(f)
	var out []asm.XReg
	for x := asm.XReg(0); x < asm.NumXReg; x++ {
		if !used[x] {
			out = append(out, x)
		}
	}
	return out
}

// BlockUnusedGPRs lists registers not referenced anywhere inside the block,
// which therefore can be requisitioned with push/pop around the block body
// (fig. 7 of the paper). RSP and RBP are never candidates.
func BlockUnusedGPRs(f *asm.Func, b asm.Block) []asm.Reg {
	var used RegSet
	used.Add(asm.RSP)
	used.Add(asm.RBP)
	var buf []asm.Reg
	for i := b.Start; i < b.End; i++ {
		in := f.Insts[i]
		buf = asm.GPRUses(in, buf[:0])
		for _, r := range buf {
			used.Add(r)
		}
		if d := asm.GPRDef(in); d != asm.RNone {
			used.Add(d)
		}
	}
	var out []asm.Reg
	for r := asm.R15; r >= asm.RAX; r-- {
		if !used.Has(r) {
			out = append(out, r)
		}
		if r == asm.RAX {
			break
		}
	}
	return out
}
