// Package backend compiles IR modules to the asm subset in the style of an
// unoptimising (-O0) compiler: every IR value lives in an %rbp-relative
// stack slot, operands are reloaded into scratch registers, and branch
// conditions are rematerialised with a "cmpq $0, slot" immediately before
// the conditional jump — exactly the pattern of figs. 8-9 in the paper.
//
// This faithfulness matters for the reproduction: the backend *introduces*
// instructions that do not exist at IR level (flag-setting reloads, address
// arithmetic, argument staging, prologue/epilogue traffic). Those
// instructions are the unprotected fault-injection sites that make
// IR-LEVEL-EDDI lose coverage when it is evaluated at assembly level, which
// is the paper's first headline finding.
package backend

import (
	"fmt"

	"ferrum/internal/asm"
	"ferrum/internal/ir"
)

// Compile lowers a verified IR module to an assembly program, appending the
// _start scaffolding and the shared exit_function detection block.
func Compile(mod *ir.Module) (*asm.Program, error) {
	if err := ir.Verify(mod); err != nil {
		return nil, err
	}
	if mod.Entry == "" || mod.Func(mod.Entry) == nil {
		return nil, fmt.Errorf("backend: entry function %q not found", mod.Entry)
	}
	prog := &asm.Program{Entry: mod.Entry}

	start := &asm.Func{Name: asm.StartLabel}
	start.Insts = append(start.Insts,
		asm.NewInst(asm.CALL, asm.LabelOp(mod.Entry)).WithTag(asm.TagRuntime),
		asm.NewInst(asm.HALT).WithTag(asm.TagRuntime),
	)
	prog.Funcs = append(prog.Funcs, start)

	for _, f := range mod.Funcs {
		af, err := compileFunc(f)
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, af)
	}

	rt := &asm.Func{Name: "__ferrum_rt"}
	rt.Insts = append(rt.Insts, asm.Inst{
		Op:     asm.DETECT,
		Labels: []string{asm.DetectLabel},
		Tag:    asm.TagRuntime,
	})
	prog.Funcs = append(prog.Funcs, rt)

	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("backend: generated invalid program: %w", err)
	}
	return prog, nil
}

type funcCompiler struct {
	f             *ir.Func
	out           *asm.Func
	slots         map[string]int64 // value name -> rbp offset (negative)
	frame         int64
	pendingLabels []string
	curTag        asm.Tag // provenance tag for instructions being lowered
}

func compileFunc(f *ir.Func) (*asm.Func, error) {
	c := &funcCompiler{f: f, out: &asm.Func{Name: f.Name}, slots: map[string]int64{}}

	// Slot assignment: parameters first, then every named result, then
	// alloca regions.
	next := int64(0)
	slotFor := func(name string) {
		next -= 8
		c.slots[name] = next
	}
	for _, p := range f.Params {
		slotFor(p.Name)
	}
	allocaBase := map[string]int64{}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Name != "" {
				slotFor(in.Name)
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Op == ir.OpAlloca {
				next -= in.NSlots * 8
				allocaBase[in.Name] = next
			}
		}
	}
	c.frame = -next
	if rem := c.frame % 16; rem != 0 {
		c.frame += 16 - rem
	}

	// Prologue.
	c.emit(asm.NewInst(asm.PUSHQ, asm.Reg64(asm.RBP)))
	c.emit(asm.NewInst(asm.MOVQ, asm.Reg64(asm.RSP), asm.Reg64(asm.RBP)))
	if c.frame > 0 {
		c.emit(asm.NewInst(asm.SUBQ, asm.Imm(c.frame), asm.Reg64(asm.RSP)))
	}
	for i, p := range f.Params {
		c.emit(asm.NewInst(asm.MOVQ, asm.Reg64(asm.ArgRegs[i]), c.slot(p.Name)))
	}

	for bi, b := range f.Blocks {
		if bi > 0 || hasBranchTo(f, b.Name) {
			c.label(c.blockLabel(b.Name))
		}
		for _, in := range b.Insts {
			switch in.Prov {
			case ir.ProvDup:
				c.curTag = asm.TagDup
			case ir.ProvCheck:
				c.curTag = asm.TagCheck
			default:
				c.curTag = asm.TagProgram
			}
			if err := c.compileInst(in, allocaBase); err != nil {
				return nil, fmt.Errorf("backend: @%s/%s: %w", f.Name, b.Name, err)
			}
		}
		c.curTag = asm.TagProgram
	}
	return c.out, nil
}

func hasBranchTo(f *ir.Func, name string) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			for _, t := range in.Targets {
				if t == name {
					return true
				}
			}
		}
	}
	return false
}

func (c *funcCompiler) blockLabel(block string) string {
	return fmt.Sprintf(".L%s_%s", c.f.Name, block)
}

func (c *funcCompiler) emit(in asm.Inst) {
	if len(c.pendingLabels) > 0 {
		in.Labels = append(in.Labels, c.pendingLabels...)
		c.pendingLabels = nil
	}
	if in.Tag == asm.TagProgram {
		in.Tag = c.curTag
	}
	c.out.Insts = append(c.out.Insts, in)
}

// label attaches a label to the next emitted instruction by recording it on
// a pending list; since every block emits at least one instruction (blocks
// are verified non-empty and terminated), attaching to the next emit is
// safe.
func (c *funcCompiler) label(name string) {
	c.pendingLabels = append(c.pendingLabels, name)
}

func (c *funcCompiler) slot(name string) asm.Operand {
	off, ok := c.slots[name]
	if !ok {
		panic(fmt.Sprintf("backend: no slot for %%%s", name))
	}
	return asm.MemBD(asm.RBP, off)
}

// loadVal emits code moving an IR value into a register.
func (c *funcCompiler) loadVal(v ir.Value, r asm.Reg) {
	switch x := v.(type) {
	case ir.Const:
		c.emit(asm.NewInst(asm.MOVQ, asm.Imm(int64(x)), asm.Reg64(r)))
	case *ir.Param:
		c.emit(asm.NewInst(asm.MOVQ, c.slot(x.Name), asm.Reg64(r)))
	case *ir.Inst:
		c.emit(asm.NewInst(asm.MOVQ, c.slot(x.Name), asm.Reg64(r)))
	}
}

func (c *funcCompiler) storeResult(name string, r asm.Reg) {
	c.emit(asm.NewInst(asm.MOVQ, asm.Reg64(r), c.slot(name)))
}
