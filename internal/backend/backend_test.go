package backend

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/ir"
	"ferrum/internal/machine"
)

const memSize = 1 << 20

func compileRun(t *testing.T, src string, args []uint64, setup func(img func(addr, v uint64))) (machine.Result, ir.RunResult) {
	t.Helper()
	mod, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("ir.Parse: %v", err)
	}
	prog, err := Compile(mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m, err := machine.New(prog, memSize)
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	ip, err := ir.NewInterp(mod, memSize)
	if err != nil {
		t.Fatalf("NewInterp: %v", err)
	}
	if setup != nil {
		setup(func(addr, v uint64) {
			if err := m.WriteWordImage(addr, v); err != nil {
				t.Fatal(err)
			}
			if err := ip.WriteWordImage(addr, v); err != nil {
				t.Fatal(err)
			}
		})
	}
	mres := m.Run(machine.RunOpts{Args: args})
	ires := ip.Run(ir.RunOpts{Args: args})
	return mres, ires
}

func assertMatch(t *testing.T, mres machine.Result, ires ir.RunResult) {
	t.Helper()
	if mres.Outcome != machine.OutcomeOK {
		t.Fatalf("machine outcome = %v (%s)", mres.Outcome, mres.CrashMsg)
	}
	if ires.Outcome != ir.OutcomeOK {
		t.Fatalf("interp outcome = %v (%s)", ires.Outcome, ires.CrashMsg)
	}
	if len(mres.Output) != len(ires.Output) {
		t.Fatalf("output lengths differ: asm %v vs ir %v", mres.Output, ires.Output)
	}
	for i := range mres.Output {
		if mres.Output[i] != ires.Output[i] {
			t.Fatalf("output[%d]: asm %d vs ir %d", i, mres.Output[i], ires.Output[i])
		}
	}
}

func TestCompileSumLoop(t *testing.T) {
	src := `
func @main(%n) {
entry:
  %acc = alloca 1
  %i = alloca 1
  store 0, %acc
  store 1, %i
  br loop
loop:
  %iv = load %i
  %c = icmp sle %iv, %n
  br %c, body, done
body:
  %a = load %acc
  %a2 = add %a, %iv
  store %a2, %acc
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  %r = load %acc
  out %r
  ret %r
}
`
	mres, ires := compileRun(t, src, []uint64{100}, nil)
	assertMatch(t, mres, ires)
	if mres.Output[0] != 5050 {
		t.Fatalf("sum = %d", mres.Output[0])
	}
}

func TestCompileAllBinaryOps(t *testing.T) {
	src := `
func @main(%a, %b) {
entry:
  %v0 = add %a, %b
  out %v0
  %v1 = sub %a, %b
  out %v1
  %v2 = mul %a, %b
  out %v2
  %v3 = sdiv %a, %b
  out %v3
  %v4 = srem %a, %b
  out %v4
  %v5 = and %a, %b
  out %v5
  %v6 = or %a, %b
  out %v6
  %v7 = xor %a, %b
  out %v7
  %v8 = shl %a, 3
  out %v8
  %v9 = lshr %a, 2
  out %v9
  %v10 = ashr %a, 2
  out %v10
  %v11 = add %a, 7
  out %v11
  ret
}
`
	for _, pair := range [][2]int64{{100, 7}, {-100, 7}, {-100, -7}, {0, 5}, {1 << 40, 3}} {
		mres, ires := compileRun(t, src, []uint64{uint64(pair[0]), uint64(pair[1])}, nil)
		assertMatch(t, mres, ires)
	}
}

func TestCompileICmpAllPreds(t *testing.T) {
	src := `
func @main(%a, %b) {
entry:
  %c0 = icmp eq %a, %b
  out %c0
  %c1 = icmp ne %a, %b
  out %c1
  %c2 = icmp slt %a, %b
  out %c2
  %c3 = icmp sle %a, %b
  out %c3
  %c4 = icmp sgt %a, %b
  out %c4
  %c5 = icmp sge %a, %b
  out %c5
  %c6 = icmp slt %a, 5
  out %c6
  ret
}
`
	for _, pair := range [][2]int64{{1, 2}, {2, 1}, {3, 3}, {-5, 5}, {5, -5}, {-5, -5}} {
		mres, ires := compileRun(t, src, []uint64{uint64(pair[0]), uint64(pair[1])}, nil)
		assertMatch(t, mres, ires)
	}
}

func TestCompileMemoryProgram(t *testing.T) {
	// Reverse an array of n words at %base in place, then emit it.
	src := `
func @main(%base, %n) {
entry:
  %iSlot = alloca 1
  %jSlot = alloca 1
  store 0, %iSlot
  %n1 = sub %n, 1
  store %n1, %jSlot
  br loop
loop:
  %i = load %iSlot
  %j = load %jSlot
  %c = icmp slt %i, %j
  br %c, swap, emit
swap:
  %pi = gep %base, %i
  %pj = gep %base, %j
  %vi = load %pi
  %vj = load %pj
  store %vj, %pi
  store %vi, %pj
  %i2 = add %i, 1
  store %i2, %iSlot
  %j2 = sub %j, 1
  store %j2, %jSlot
  br loop
emit:
  %kSlot = alloca 1
  store 0, %kSlot
  br eloop
eloop:
  %k = load %kSlot
  %ec = icmp slt %k, %n
  br %ec, ebody, done
ebody:
  %pk = gep %base, %k
  %vk = load %pk
  out %vk
  %k2 = add %k, 1
  store %k2, %kSlot
  br eloop
done:
  ret
}
`
	base := uint64(8192)
	n := uint64(9)
	mres, ires := compileRun(t, src, []uint64{base, n}, func(img func(addr, v uint64)) {
		for i := uint64(0); i < n; i++ {
			img(base+8*i, i*i)
		}
	})
	assertMatch(t, mres, ires)
	for i := uint64(0); i < n; i++ {
		want := (n - 1 - i) * (n - 1 - i)
		if mres.Output[i] != want {
			t.Errorf("output[%d] = %d, want %d", i, mres.Output[i], want)
		}
	}
}

func TestCompileCalls(t *testing.T) {
	src := `
func @mix(%a, %b, %c, %d, %e, %f) {
entry:
  %s1 = add %a, %b
  %s2 = add %s1, %c
  %s3 = add %s2, %d
  %s4 = add %s3, %e
  %s5 = add %s4, %f
  ret %s5
}

func @fib(%n) {
entry:
  %c = icmp sle %n, 1
  br %c, base, rec
base:
  ret %n
rec:
  %n1 = sub %n, 1
  %n2 = sub %n, 2
  %a = call @fib(%n1)
  %b = call @fib(%n2)
  %r = add %a, %b
  ret %r
}

func @main(%n) {
entry:
  %r = call @fib(%n)
  out %r
  %m = call @mix(1, 2, 3, 4, 5, 6)
  out %m
  call @mix(0, 0, 0, 0, 0, 0)
  ret
}
`
	mres, ires := compileRun(t, src, []uint64{12}, nil)
	assertMatch(t, mres, ires)
	if mres.Output[0] != 144 || mres.Output[1] != 21 {
		t.Fatalf("output = %v", mres.Output)
	}
}

func TestCompileCheckIntrinsic(t *testing.T) {
	src := `
func @main(%n) {
entry:
  %a = add %n, 1
  %b = add %n, 2
  check %a, %b
  out %a
  ret
}
`
	mod, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(prog, memSize)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(machine.RunOpts{Args: []uint64{1}})
	if res.Outcome != machine.OutcomeDetected {
		t.Fatalf("outcome = %v, want detected", res.Outcome)
	}
}

func TestCondBrRematerialisesFlags(t *testing.T) {
	// The compiled form of a conditional branch must contain the
	// cmpq $0, slot + jne pattern of fig. 9 — the new FI site.
	src := `
func @main(%n) {
entry:
  %c = icmp sgt %n, 0
  br %c, a, b
a:
  out 1
  ret
b:
  out 0
  ret
}
`
	mod, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	text := prog.String()
	if !strings.Contains(text, "cmpq\t$0, -") {
		t.Errorf("missing rematerialised compare in:\n%s", text)
	}
	main := prog.Func("main")
	found := false
	for _, in := range main.Insts {
		if in.Op == asm.CMPQ && in.A[0].Kind == asm.KImm && in.A[0].Imm == 0 &&
			in.A[1].Kind == asm.KMem {
			found = true
		}
	}
	if !found {
		t.Error("no cmpq $0, slot instruction found")
	}
}

func TestCompileRejectsBadModules(t *testing.T) {
	mod := &ir.Module{Entry: "missing"}
	if _, err := Compile(mod); err == nil {
		t.Error("Compile accepted module without entry")
	}
}

// randModule builds a random straight-line arithmetic program whose
// interpreter and machine outputs must agree — a differential fuzz test of
// the backend and both executors.
func randModule(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("func @main(%a, %b) {\nentry:\n")
	vals := []string{"%a", "%b"}
	ops := []string{"add", "sub", "mul", "and", "or", "xor"}
	n := 5 + rng.Intn(20)
	for i := 0; i < n; i++ {
		var operand string
		if rng.Intn(3) == 0 {
			operand = fmt.Sprintf("%d", rng.Int63n(1000)-500)
		} else {
			operand = vals[rng.Intn(len(vals))]
		}
		name := fmt.Sprintf("%%v%d", i)
		fmt.Fprintf(&b, "  %s = %s %s, %s\n", name, ops[rng.Intn(len(ops))],
			vals[rng.Intn(len(vals))], operand)
		vals = append(vals, name)
	}
	fmt.Fprintf(&b, "  out %s\n  ret\n}\n", vals[len(vals)-1])
	return b.String()
}

func TestDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 60; i++ {
		src := randModule(rng)
		args := []uint64{uint64(rng.Int63()), uint64(rng.Int63())}
		mres, ires := compileRun(t, src, args, nil)
		if mres.Outcome != machine.OutcomeOK || ires.Outcome != ir.OutcomeOK {
			t.Fatalf("iteration %d: outcomes %v/%v\n%s", i, mres.Outcome, ires.Outcome, src)
		}
		if mres.Output[0] != ires.Output[0] {
			t.Fatalf("iteration %d: asm %d vs ir %d\n%s", i, mres.Output[0], ires.Output[0], src)
		}
	}
}

func TestGeneratedProgramsAreParseable(t *testing.T) {
	src := `
func @main(%n) {
entry:
  %c = icmp sgt %n, 0
  br %c, a, b
a:
  out 1
  ret
b:
  out 0
  ret
}
`
	mod, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := asm.Parse(prog.String())
	if err != nil {
		t.Fatalf("generated assembly does not re-parse: %v\n%s", err, prog)
	}
	if p2.String() != prog.String() {
		t.Error("assembly print/parse round trip mismatch")
	}
}

func TestProvenancePropagatesToTags(t *testing.T) {
	src := `
func @main(%n) {
entry:
  %a = add %n, 1
  out %a
  ret %a
}
`
	mod, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Mark the add as a duplicate and verify its lowered instructions
	// carry the dup tag.
	mod.Funcs[0].Blocks[0].Insts[0].Prov = ir.ProvDup
	prog, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	dupTagged := 0
	for _, in := range f.Insts {
		if in.Tag == asm.TagDup {
			dupTagged++
		}
	}
	// The add lowers to at least load+op+store, all dup-tagged.
	if dupTagged < 3 {
		t.Errorf("dup-tagged instructions = %d, want >= 3\n%s", dupTagged, prog)
	}
}

func TestFrameAlignment(t *testing.T) {
	src := `
func @main(%a, %b, %c) {
entry:
  %x = add %a, %b
  %y = add %x, %c
  out %y
  ret
}
`
	mod, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	for _, in := range f.Insts {
		if in.Op == asm.SUBQ && in.Dst().IsReg(asm.RSP) {
			if in.A[0].Imm%16 != 0 {
				t.Errorf("frame size %d not 16-aligned", in.A[0].Imm)
			}
			return
		}
	}
	t.Error("no frame allocation found")
}
