package backend

import (
	"fmt"

	"ferrum/internal/asm"
	"ferrum/internal/ir"
)

// compileInst lowers one IR instruction. Scratch registers RAX, RCX and RDX
// are free at every instruction boundary because all values live in stack
// slots (-O0 discipline).
func (c *funcCompiler) compileInst(in *ir.Inst, allocaBase map[string]int64) error {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl,
		ir.OpLShr, ir.OpAShr, ir.OpMul:
		c.loadVal(in.Args[0], asm.RAX)
		var src asm.Operand
		if k, ok := in.Args[1].(ir.Const); ok && in.Op != ir.OpMul {
			src = asm.Imm(int64(k))
		} else {
			c.loadVal(in.Args[1], asm.RCX)
			src = asm.Reg64(asm.RCX)
		}
		c.emit(asm.NewInst(binOpFor(in.Op), src, asm.Reg64(asm.RAX)))
		c.storeResult(in.Name, asm.RAX)

	case ir.OpSDiv, ir.OpSRem:
		c.loadVal(in.Args[0], asm.RAX)
		c.emit(asm.NewInst(asm.CQTO))
		c.loadVal(in.Args[1], asm.RCX)
		c.emit(asm.NewInst(asm.IDIVQ, asm.Reg64(asm.RCX)))
		if in.Op == ir.OpSDiv {
			c.storeResult(in.Name, asm.RAX)
		} else {
			c.storeResult(in.Name, asm.RDX)
		}

	case ir.OpICmp:
		c.loadVal(in.Args[0], asm.RAX)
		if k, ok := in.Args[1].(ir.Const); ok {
			c.emit(asm.NewInst(asm.CMPQ, asm.Imm(int64(k)), asm.Reg64(asm.RAX)))
		} else {
			c.loadVal(in.Args[1], asm.RCX)
			c.emit(asm.NewInst(asm.CMPQ, asm.Reg64(asm.RCX), asm.Reg64(asm.RAX)))
		}
		c.emit(asm.NewInst(asm.SetccFor(ccForPred(in.Pred)), asm.Reg8(asm.RAX)))
		c.emit(asm.NewInst(asm.MOVZBQ, asm.Reg8(asm.RAX), asm.Reg64(asm.RAX)))
		c.storeResult(in.Name, asm.RAX)

	case ir.OpAlloca:
		off := allocaBase[in.Name]
		c.emit(asm.NewInst(asm.LEA, asm.MemBD(asm.RBP, off), asm.Reg64(asm.RAX)))
		c.storeResult(in.Name, asm.RAX)

	case ir.OpLoad:
		c.loadVal(in.Args[0], asm.RAX)
		c.emit(asm.NewInst(asm.MOVQ, asm.MemBD(asm.RAX, 0), asm.Reg64(asm.RCX)))
		c.storeResult(in.Name, asm.RCX)

	case ir.OpStore:
		c.loadVal(in.Args[0], asm.RAX)
		c.loadVal(in.Args[1], asm.RCX)
		c.emit(asm.NewInst(asm.MOVQ, asm.Reg64(asm.RAX), asm.MemBD(asm.RCX, 0)))

	case ir.OpGEP:
		c.loadVal(in.Args[0], asm.RAX)
		if k, ok := in.Args[1].(ir.Const); ok {
			c.emit(asm.NewInst(asm.LEA, asm.MemBD(asm.RAX, 8*int64(k)), asm.Reg64(asm.RCX)))
		} else {
			c.loadVal(in.Args[1], asm.RCX)
			c.emit(asm.NewInst(asm.LEA, asm.MemBIS(asm.RAX, asm.RCX, 8, 0), asm.Reg64(asm.RCX)))
		}
		c.storeResult(in.Name, asm.RCX)

	case ir.OpBr:
		c.emit(asm.NewInst(asm.JMP, asm.LabelOp(c.blockLabel(in.Targets[0]))))

	case ir.OpCondBr:
		// The cross-layer pattern of figs. 8-9: the condition value is
		// reloaded from its slot and the flags are rematerialised with a
		// compare the IR never sees. This compare is a fresh
		// fault-injection site that IR-LEVEL-EDDI does not protect.
		cond := in.Args[0]
		if k, ok := cond.(ir.Const); ok {
			// Constant condition still materialises a compare at -O0.
			c.loadVal(k, asm.RAX)
			c.emit(asm.NewInst(asm.CMPQ, asm.Imm(0), asm.Reg64(asm.RAX)))
		} else {
			c.emit(asm.NewInst(asm.CMPQ, asm.Imm(0), c.slotOf(cond)))
		}
		c.emit(asm.NewInst(asm.JNE, asm.LabelOp(c.blockLabel(in.Targets[0]))))
		c.emit(asm.NewInst(asm.JMP, asm.LabelOp(c.blockLabel(in.Targets[1]))))

	case ir.OpCall:
		if len(in.Args) > len(asm.ArgRegs) {
			return fmt.Errorf("call @%s: too many arguments", in.Callee)
		}
		for i, a := range in.Args {
			c.loadVal(a, asm.ArgRegs[i])
		}
		c.emit(asm.NewInst(asm.CALL, asm.LabelOp(in.Callee)))
		if in.Name != "" {
			c.storeResult(in.Name, asm.RAX)
		}

	case ir.OpRet:
		if len(in.Args) == 1 {
			c.loadVal(in.Args[0], asm.RAX)
		}
		c.emit(asm.NewInst(asm.MOVQ, asm.Reg64(asm.RBP), asm.Reg64(asm.RSP)))
		c.emit(asm.NewInst(asm.POPQ, asm.Reg64(asm.RBP)))
		c.emit(asm.NewInst(asm.RET))

	case ir.OpOut:
		c.loadVal(in.Args[0], asm.RAX)
		c.emit(asm.NewInst(asm.OUT, asm.Reg64(asm.RAX)))

	case ir.OpCheck:
		// The EDDI checker intrinsic: compare and trap on mismatch.
		c.loadVal(in.Args[0], asm.RAX)
		if k, ok := in.Args[1].(ir.Const); ok {
			c.emit(asm.NewInst(asm.CMPQ, asm.Imm(int64(k)), asm.Reg64(asm.RAX)))
		} else {
			c.loadVal(in.Args[1], asm.RCX)
			c.emit(asm.NewInst(asm.CMPQ, asm.Reg64(asm.RCX), asm.Reg64(asm.RAX)))
		}
		c.emit(asm.NewInst(asm.JNE, asm.LabelOp(asm.DetectLabel)))

	default:
		return fmt.Errorf("unsupported IR op %s", in.Op)
	}
	return nil
}

// slotOf returns the stack-slot operand of a non-constant value.
func (c *funcCompiler) slotOf(v ir.Value) asm.Operand {
	switch x := v.(type) {
	case *ir.Param:
		return c.slot(x.Name)
	case *ir.Inst:
		return c.slot(x.Name)
	}
	panic("backend: slotOf on constant")
}

func binOpFor(op ir.Op) asm.Op {
	switch op {
	case ir.OpAdd:
		return asm.ADDQ
	case ir.OpSub:
		return asm.SUBQ
	case ir.OpMul:
		return asm.IMULQ
	case ir.OpAnd:
		return asm.ANDQ
	case ir.OpOr:
		return asm.ORQ
	case ir.OpXor:
		return asm.XORQ
	case ir.OpShl:
		return asm.SHLQ
	case ir.OpLShr:
		return asm.SHRQ
	case ir.OpAShr:
		return asm.SARQ
	}
	panic(fmt.Sprintf("backend: not a binary op: %s", op))
}

func ccForPred(p ir.Pred) asm.CC {
	switch p {
	case ir.PredEQ:
		return asm.CCE
	case ir.PredNE:
		return asm.CCNE
	case ir.PredSLT:
		return asm.CCL
	case ir.PredSLE:
		return asm.CCLE
	case ir.PredSGT:
		return asm.CCG
	case ir.PredSGE:
		return asm.CCGE
	}
	panic(fmt.Sprintf("backend: unknown predicate %v", p))
}
