package asm

import (
	"fmt"
	"strings"
)

// Tag records the provenance of an instruction so passes, tests and the
// fault-injection analysis can distinguish original program code from code
// inserted by a protection pass.
type Tag uint8

// Instruction provenance tags.
const (
	TagProgram Tag = iota // compiled from the source program
	TagDup                // duplicate of a program instruction (EDDI shadow)
	TagCheck              // checker code (compare + jne exit_function)
	TagStage              // staging move into a SIMD/spare register
	TagSpill              // register requisition push/pop (fig. 7)
	TagRuntime            // runtime scaffolding (_start, detect block)

	// NumTags is the number of provenance tags; it sizes dense per-tag
	// counter arrays.
	NumTags = int(TagRuntime) + 1
)

// String names the tag.
func (t Tag) String() string {
	switch t {
	case TagProgram:
		return "program"
	case TagDup:
		return "dup"
	case TagCheck:
		return "check"
	case TagStage:
		return "stage"
	case TagSpill:
		return "spill"
	case TagRuntime:
		return "runtime"
	}
	return fmt.Sprintf("tag?%d", t)
}

// Inst is one assembly instruction. Operands are in AT&T order: sources
// first, destination last. Labels attached to the instruction name the
// program point immediately before it.
type Inst struct {
	Op      Op
	A       []Operand
	Labels  []string
	Comment string
	Tag     Tag
}

// NewInst builds an untagged program instruction.
func NewInst(op Op, args ...Operand) Inst { return Inst{Op: op, A: args} }

// WithTag returns a copy of the instruction carrying the given tag.
func (in Inst) WithTag(t Tag) Inst {
	in.Tag = t
	return in
}

// WithComment returns a copy of the instruction carrying a trailing comment.
func (in Inst) WithComment(c string) Inst {
	in.Comment = c
	return in
}

// Src returns the i-th source operand (operands before the last).
func (in Inst) Src(i int) Operand {
	if i < 0 || i >= len(in.A)-1 {
		return Operand{}
	}
	return in.A[i]
}

// Dst returns the final operand, which is the destination for instructions
// that have one.
func (in Inst) Dst() Operand {
	if len(in.A) == 0 {
		return Operand{}
	}
	return in.A[len(in.A)-1]
}

// String renders the instruction (without labels) in AT&T syntax.
func (in Inst) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	for i, a := range in.A {
		if i == 0 {
			b.WriteByte('\t')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	if in.Comment != "" {
		b.WriteString("\t# ")
		b.WriteString(in.Comment)
	}
	return b.String()
}

// DestKind classifies the architectural destination of an instruction for
// fault injection.
type DestKind uint8

// Destination kinds.
const (
	DestNone  DestKind = iota
	DestGPR            // general-purpose register write
	DestXMM            // SIMD register write
	DestFlags          // status-flag write with no register destination
)

// Dest describes where a dynamic instance of an instruction deposits its
// result, i.e. the fault-injection site the paper's §IV-A2 methodology
// targets ("inject single bit-flip faults to the destination register of
// instructions").
type Dest struct {
	Kind DestKind
	Reg  Reg   // DestGPR
	W    Width // DestGPR: writable width (bit flips land inside it)
	X    XReg  // DestXMM
	// LaneLo/LaneHi bound the 64-bit lanes a SIMD write touches,
	// inclusive. A movq to xmm writes lane 0 (and zeroes lane 1, but the
	// architectural value there is then a deterministic 0, so faults are
	// modelled in the written lane range only).
	LaneLo, LaneHi int
}

// DestOf computes the fault-injection destination of an instruction.
//
// Instructions that only write memory (stores, push), only transfer control
// (jumps, call, ret) or are machine pseudo-ops have no destination: memory
// is ECC-protected under the paper's fault model and the instruction pointer
// is out of scope. Compare instructions destinate the status flags
// (figs. 8-9 of the paper make these first-class injection sites). ALU
// instructions write both a register and flags; the register is the
// destination, matching the paper's methodology.
func DestOf(in Inst) Dest {
	switch in.Op {
	case MOVQ, MOVL, MOVB:
		d := in.Dst()
		switch d.Kind {
		case KReg:
			return Dest{Kind: DestGPR, Reg: d.Reg, W: d.W}
		case KXReg:
			return Dest{Kind: DestXMM, X: d.X, LaneLo: 0, LaneHi: 0}
		}
		return Dest{} // store to memory
	case MOVSLQ, MOVZBQ, LEA, POPQ:
		d := in.Dst()
		if d.Kind == KReg {
			return Dest{Kind: DestGPR, Reg: d.Reg, W: W64}
		}
		return Dest{}
	case ADDQ, SUBQ, IMULQ, ANDQ, ORQ, XORQ, SHLQ, SHRQ, SARQ, NEGQ:
		d := in.Dst()
		if d.Kind == KReg {
			return Dest{Kind: DestGPR, Reg: d.Reg, W: d.W}
		}
		return Dest{} // read-modify-write on memory: ECC-protected
	case XORB:
		d := in.Dst()
		if d.Kind == KReg {
			return Dest{Kind: DestGPR, Reg: d.Reg, W: W8}
		}
		return Dest{}
	case CQTO:
		return Dest{Kind: DestGPR, Reg: RDX, W: W64}
	case IDIVQ:
		// Quotient register; the remainder write in RDX is secondary.
		return Dest{Kind: DestGPR, Reg: RAX, W: W64}
	case SETE, SETNE, SETL, SETLE, SETG, SETGE:
		d := in.Dst()
		if d.Kind == KReg {
			return Dest{Kind: DestGPR, Reg: d.Reg, W: W8}
		}
		return Dest{}
	case CMPQ, CMPL, CMPB, TESTQ, VPTEST:
		return Dest{Kind: DestFlags}
	case PINSRQ:
		d := in.Dst()
		lane := 0
		if in.A[0].Kind == KImm {
			lane = int(in.A[0].Imm)
		}
		return Dest{Kind: DestXMM, X: d.X, LaneLo: lane, LaneHi: lane}
	case VINSERTI128:
		d := in.Dst()
		return Dest{Kind: DestXMM, X: d.X, LaneLo: 0, LaneHi: 3}
	case VINSERTI644:
		d := in.Dst()
		return Dest{Kind: DestXMM, X: d.X, LaneLo: 0, LaneHi: 7}
	case VPXOR:
		d := in.Dst()
		return Dest{Kind: DestXMM, X: d.X, LaneLo: 0, LaneHi: d.XW.Lanes() - 1}
	}
	return Dest{}
}

// GPRUses appends to buf the general-purpose registers the instruction
// reads (including memory-operand base/index registers and implicit reads)
// and returns the extended slice.
func GPRUses(in Inst, buf []Reg) []Reg {
	add := func(r Reg) {
		if r.Valid() {
			buf = append(buf, r)
		}
	}
	addOperandReads := func(o Operand) {
		switch o.Kind {
		case KReg:
			add(o.Reg)
		case KMem:
			add(o.M.Base)
			add(o.M.Index)
		}
	}
	switch in.Op {
	case NOP, HALT, DETECT, RET, CQTO:
		if in.Op == CQTO {
			add(RAX)
		}
		return buf
	case IDIVQ:
		add(RAX)
		add(RDX)
		addOperandReads(in.A[0])
		return buf
	case CALL:
		// Conservative: a call reads all argument registers.
		buf = append(buf, ArgRegs...)
		return buf
	case POPQ:
		add(RSP)
		return buf
	case OUT:
		// out reads the value register; without this the generic path below
		// sees a zero-source instruction and drops the read, which would let
		// liveness pronounce pending output values dead.
		addOperandReads(in.A[0])
		return buf
	case PUSHQ:
		add(RSP)
		addOperandReads(in.A[0])
		return buf
	case LEA:
		// lea reads only the address components.
		addOperandReads(Operand{Kind: KMem, M: in.A[0].M})
		return buf
	}
	// Generic: all sources are read; a register destination is also read
	// for read-modify-write ALU ops and partial-width writes.
	for i := 0; i < len(in.A)-1; i++ {
		addOperandReads(in.A[i])
	}
	if len(in.A) > 0 {
		d := in.Dst()
		switch in.Op {
		case ADDQ, SUBQ, IMULQ, ANDQ, ORQ, XORQ, XORB, SHLQ, SHRQ, SARQ, NEGQ,
			MOVB, SETE, SETNE, SETL, SETLE, SETG, SETGE:
			// RMW or partial write: old value of dest matters.
			addOperandReads(d)
		case CMPQ, CMPL, CMPB, TESTQ, VPTEST:
			addOperandReads(d) // "dest" operand of a compare is read only
		default:
			if d.Kind == KMem {
				addOperandReads(d) // store address
			}
		}
	}
	return buf
}

// GPRDef returns the general-purpose register the instruction writes, or
// RNone. RSP effects of push/pop/call/ret are implicit and excluded; the
// liveness analysis treats RSP and RBP as always-live.
func GPRDef(in Inst) Reg {
	d := DestOf(in)
	if d.Kind == DestGPR {
		return d.Reg
	}
	if in.Op == MOVQ && in.Dst().Kind == KReg {
		return in.Dst().Reg
	}
	return RNone
}

// XUses appends the SIMD registers the instruction reads.
func XUses(in Inst, buf []XReg) []XReg {
	for i, o := range in.A {
		if o.Kind != KXReg {
			continue
		}
		if i == len(in.A)-1 {
			// Destination operand: read as well for lane-preserving
			// writes and for vptest.
			switch in.Op {
			case PINSRQ, VPTEST, MOVB:
				buf = append(buf, o.X)
			}
			continue
		}
		buf = append(buf, o.X)
	}
	return buf
}

// XDef returns the SIMD register the instruction writes, or (0, false).
func XDef(in Inst) (XReg, bool) {
	d := DestOf(in)
	if d.Kind == DestXMM {
		return d.X, true
	}
	return 0, false
}
