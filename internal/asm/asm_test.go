package asm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	tests := []struct {
		r    Reg
		w    Width
		want string
	}{
		{RAX, W64, "rax"},
		{RAX, W32, "eax"},
		{RAX, W16, "ax"},
		{RAX, W8, "al"},
		{RSI, W8, "sil"},
		{R10, W64, "r10"},
		{R10, W32, "r10d"},
		{R11, W8, "r11b"},
		{R15, W16, "r15w"},
	}
	for _, tt := range tests {
		if got := tt.r.Name(tt.w); got != tt.want {
			t.Errorf("%v.Name(%v) = %q, want %q", tt.r, tt.w, got, tt.want)
		}
		r, w, ok := LookupReg(tt.want)
		if !ok || r != tt.r || w != tt.w {
			t.Errorf("LookupReg(%q) = (%v, %v, %v), want (%v, %v, true)",
				tt.want, r, w, ok, tt.r, tt.w)
		}
	}
}

func TestRegNameRoundTripProperty(t *testing.T) {
	f := func(rRaw, wRaw uint8) bool {
		r := Reg(rRaw%uint8(NumReg-1)) + 1
		ws := []Width{W8, W16, W32, W64}
		w := ws[int(wRaw)%len(ws)]
		name := r.Name(w)
		r2, w2, ok := LookupReg(name)
		return ok && r2 == r && w2 == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXRegNames(t *testing.T) {
	if got := XReg(3).Name(X128); got != "xmm3" {
		t.Errorf("xmm name = %q", got)
	}
	if got := XReg(15).Name(Y256); got != "ymm15" {
		t.Errorf("ymm name = %q", got)
	}
	x, w, ok := LookupXReg("ymm7")
	if !ok || x != 7 || w != Y256 {
		t.Errorf("LookupXReg(ymm7) = (%v, %v, %v)", x, w, ok)
	}
	if _, _, ok := LookupXReg("xmm16"); ok {
		t.Error("LookupXReg(xmm16) should fail")
	}
}

func TestCCNegate(t *testing.T) {
	pairs := map[CC]CC{CCE: CCNE, CCL: CCGE, CCLE: CCG}
	for c, n := range pairs {
		if c.Negate() != n {
			t.Errorf("%v.Negate() = %v, want %v", c, c.Negate(), n)
		}
		if n.Negate() != c {
			t.Errorf("%v.Negate() = %v, want %v", n, n.Negate(), c)
		}
	}
}

func TestCondOpcodesAgree(t *testing.T) {
	for _, c := range []CC{CCE, CCNE, CCL, CCLE, CCG, CCGE} {
		if got := CondOf(JccFor(c)); got != c {
			t.Errorf("CondOf(JccFor(%v)) = %v", c, got)
		}
		if got := CondOf(SetccFor(c)); got != c {
			t.Errorf("CondOf(SetccFor(%v)) = %v", c, got)
		}
	}
}

func TestMemString(t *testing.T) {
	tests := []struct {
		m    Mem
		want string
	}{
		{Mem{Base: RBP, Disp: -24}, "-24(%rbp)"},
		{Mem{Base: RAX}, "(%rax)"},
		{Mem{Base: RAX, Index: RCX, Scale: 8}, "(%rax,%rcx,8)"},
		{Mem{Base: RAX, Index: RCX, Scale: 8, Disp: 16}, "16(%rax,%rcx,8)"},
		{Mem{Disp: 4096}, "4096"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("Mem%+v.String() = %q, want %q", tt.m, got, tt.want)
		}
	}
}

func TestInstString(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{NewInst(MOVSLQ, Reg32(RCX), Reg64(R10)), "movslq\t%ecx, %r10"},
		{NewInst(CMPQ, Imm(0), MemBD(RBP, -8)), "cmpq\t$0, -8(%rbp)"},
		{NewInst(JNE, LabelOp("exit_function")), "jne\texit_function"},
		{NewInst(PINSRQ, Imm(1), MemBD(RAX, 8), Xmm(0)), "pinsrq\t$1, 8(%rax), %xmm0"},
		{NewInst(VINSERTI128, Imm(1), Xmm(2), Ymm(0), Ymm(0)),
			"vinserti128\t$1, %xmm2, %ymm0, %ymm0"},
		{NewInst(VPXOR, Ymm(1), Ymm(0), Ymm(0)), "vpxor\t%ymm1, %ymm0, %ymm0"},
		{NewInst(RET), "retq"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Inst.String() = %q, want %q", got, tt.want)
		}
	}
}

func parseOne(t *testing.T, line string) Inst {
	t.Helper()
	in, err := parseInst(line)
	if err != nil {
		t.Fatalf("parseInst(%q): %v", line, err)
	}
	return in
}

func TestParseInstRoundTrip(t *testing.T) {
	lines := []string{
		"movslq\t%ecx, %r10",
		"movq\t-24(%rbp), %xmm0",
		"movq\t%rax, %xmm1",
		"pinsrq\t$1, 8(%rax), %xmm0",
		"vinserti128\t$1, %xmm2, %ymm0, %ymm0",
		"vpxor\t%ymm1, %ymm0, %ymm0",
		"vptest\t%ymm0, %ymm0",
		"jne\texit_function",
		"xorq\t%rcx, %r10",
		"sete\t%r11b",
		"cmpl\t$0, -4(%rbp)",
		"pushq\t%r10",
		"popq\t%r10",
		"leaq\t(%rax,%rcx,8), %rdx",
		"idivq\t%rcx",
		"cqto",
		"callq\tmain",
		"retq",
		"out\t%rax",
		"hlt",
		"detect",
	}
	for _, l := range lines {
		in := parseOne(t, l)
		if got := in.String(); got != l {
			t.Errorf("round trip: %q -> %q", l, got)
		}
	}
}

func TestParseProgram(t *testing.T) {
	src := `
	.globl	main
main:
	pushq	%rbp
	movq	%rsp, %rbp
.L0:
	movslq	%ecx, %r10
	cmpq	$0, -8(%rbp)	# reload comparison
	je	.L1
	jmp	.L0
.L1:
	popq	%rbp
	retq

	.globl	helper
helper:
	retq
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != 2 {
		t.Fatalf("got %d funcs, want 2", len(p.Funcs))
	}
	if p.Entry != "main" {
		t.Errorf("entry = %q, want main", p.Entry)
	}
	main := p.Func("main")
	if main == nil || len(main.Insts) != 8 {
		t.Fatalf("main = %+v", main)
	}
	if got := main.Insts[2].Labels; len(got) != 1 || got[0] != ".L0" {
		t.Errorf("labels on inst 2 = %v", got)
	}
	// Full program round-trip through the printer.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse printed program: %v", err)
	}
	if p.String() != p2.String() {
		t.Errorf("print/parse round trip mismatch:\n%s\nvs\n%s", p, p2)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", ".globl f\nf:\n\tfrobq %rax, %rbx\n"},
		{"bad operand count", ".globl f\nf:\n\tmovq %rax\n"},
		{"unknown register", ".globl f\nf:\n\tmovq %rqx, %rbx\n"},
		{"undefined label", ".globl f\nf:\n\tjmp nowhere\n"},
		{"instruction outside function", "\tmovq %rax, %rbx\n"},
		{"duplicate label", ".globl f\nf:\nx:\n\tretq\nx:\n\tretq\n"},
		{"unknown directive", ".frob x\n.globl f\nf:\n\tretq\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil {
				t.Errorf("Parse succeeded, want error")
			}
		})
	}
}

func TestDestOf(t *testing.T) {
	tests := []struct {
		in   Inst
		want Dest
	}{
		{NewInst(MOVQ, MemBD(RBP, -8), Reg64(RAX)), Dest{Kind: DestGPR, Reg: RAX, W: W64}},
		{NewInst(MOVQ, Reg64(RAX), MemBD(RBP, -8)), Dest{}},
		{NewInst(MOVQ, Reg64(RAX), Xmm(1)), Dest{Kind: DestXMM, X: 1}},
		{NewInst(MOVSLQ, Reg32(RCX), Reg64(R10)), Dest{Kind: DestGPR, Reg: R10, W: W64}},
		{NewInst(ADDQ, Reg64(RCX), Reg64(RAX)), Dest{Kind: DestGPR, Reg: RAX, W: W64}},
		{NewInst(CMPQ, Imm(0), MemBD(RBP, -8)), Dest{Kind: DestFlags}},
		{NewInst(TESTQ, Reg64(RAX), Reg64(RAX)), Dest{Kind: DestFlags}},
		{NewInst(SETE, Reg8(R11)), Dest{Kind: DestGPR, Reg: R11, W: W8}},
		{NewInst(PUSHQ, Reg64(R10)), Dest{}},
		{NewInst(POPQ, Reg64(R10)), Dest{Kind: DestGPR, Reg: R10, W: W64}},
		{NewInst(PINSRQ, Imm(1), Reg64(RDI), Xmm(3)),
			Dest{Kind: DestXMM, X: 3, LaneLo: 1, LaneHi: 1}},
		{NewInst(VPXOR, Ymm(1), Ymm(0), Ymm(0)),
			Dest{Kind: DestXMM, X: 0, LaneLo: 0, LaneHi: 3}},
		{NewInst(VPTEST, Ymm(0), Ymm(0)), Dest{Kind: DestFlags}},
		{NewInst(JNE, LabelOp("x")), Dest{}},
		{NewInst(CALL, LabelOp("f")), Dest{}},
		{NewInst(RET), Dest{}},
		{NewInst(LEA, MemBIS(RAX, RCX, 8, 0), Reg64(RDX)),
			Dest{Kind: DestGPR, Reg: RDX, W: W64}},
		{NewInst(IDIVQ, Reg64(RCX)), Dest{Kind: DestGPR, Reg: RAX, W: W64}},
		{NewInst(CQTO), Dest{Kind: DestGPR, Reg: RDX, W: W64}},
		{NewInst(OUT, Reg64(RAX)), Dest{}},
	}
	for _, tt := range tests {
		if got := DestOf(tt.in); got != tt.want {
			t.Errorf("DestOf(%s) = %+v, want %+v", tt.in.String(), got, tt.want)
		}
	}
}

func TestGPRUses(t *testing.T) {
	has := func(rs []Reg, r Reg) bool {
		for _, x := range rs {
			if x == r {
				return true
			}
		}
		return false
	}
	in := NewInst(LEA, MemBIS(RAX, RCX, 8, 0), Reg64(RDX))
	uses := GPRUses(in, nil)
	if !has(uses, RAX) || !has(uses, RCX) || has(uses, RDX) {
		t.Errorf("lea uses = %v", uses)
	}
	in = NewInst(ADDQ, Reg64(RCX), Reg64(RAX))
	uses = GPRUses(in, nil)
	if !has(uses, RCX) || !has(uses, RAX) {
		t.Errorf("add uses = %v", uses)
	}
	in = NewInst(MOVQ, Reg64(RSI), MemBD(RDI, 8))
	uses = GPRUses(in, nil)
	if !has(uses, RSI) || !has(uses, RDI) {
		t.Errorf("store uses = %v", uses)
	}
	in = NewInst(MOVQ, MemBD(RBP, -8), Reg64(RAX))
	uses = GPRUses(in, nil)
	if !has(uses, RBP) || has(uses, RAX) {
		t.Errorf("load uses = %v", uses)
	}
	if GPRDef(in) != RAX {
		t.Errorf("load def = %v", GPRDef(in))
	}
	in = NewInst(IDIVQ, Reg64(RCX))
	uses = GPRUses(in, nil)
	if !has(uses, RAX) || !has(uses, RDX) || !has(uses, RCX) {
		t.Errorf("idiv uses = %v", uses)
	}
}

func TestBlocks(t *testing.T) {
	src := `
	.globl	f
f:
	movq	$1, %rax
	cmpq	$0, %rax
	je	.La
	addq	$1, %rax
.La:
	subq	$1, %rax
	jmp	.Lb
.Lb:
	retq
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	blocks := Blocks(p.Funcs[0])
	if len(blocks) != 4 {
		t.Fatalf("got %d blocks, want 4: %+v", len(blocks), blocks)
	}
	wantStarts := []int{0, 3, 4, 6}
	for i, b := range blocks {
		if b.Start != wantStarts[i] {
			t.Errorf("block %d start = %d, want %d", i, b.Start, wantStarts[i])
		}
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	p := &Program{Funcs: []*Func{{Name: "f", Insts: []Inst{
		NewInst(JMP, LabelOp("missing")),
	}}}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("Validate = %v, want undefined-label error", err)
	}
	p = &Program{Funcs: []*Func{{Name: "f"}}}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted empty function")
	}
	p = &Program{Funcs: []*Func{
		{Name: "f", Insts: []Inst{NewInst(RET)}},
		{Name: "f", Insts: []Inst{NewInst(RET)}},
	}}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted duplicate function names")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Program{Entry: "f", Funcs: []*Func{{Name: "f", Insts: []Inst{
		NewInst(MOVQ, Imm(1), Reg64(RAX)),
		NewInst(RET),
	}}}}
	q := p.Clone()
	q.Funcs[0].Insts[0].A[0] = Imm(2)
	q.Funcs[0].Name = "g"
	if p.Funcs[0].Insts[0].A[0].Imm != 1 || p.Funcs[0].Name != "f" {
		t.Error("Clone shares state with original")
	}
}

func TestCollectStats(t *testing.T) {
	p := &Program{Funcs: []*Func{{Name: "f", Insts: []Inst{
		NewInst(MOVQ, Imm(1), Reg64(RAX)),
		NewInst(CMPQ, Imm(0), Reg64(RAX)),
		NewInst(JE, LabelOp("f")),
		NewInst(RET),
	}}}}
	s := CollectStats(p)
	if s.Total != 4 || s.Funcs != 1 {
		t.Errorf("stats = %+v", s)
	}
	// movq writes RAX, cmpq writes flags; je and ret have no dest.
	if s.FISites != 2 {
		t.Errorf("FISites = %d, want 2", s.FISites)
	}
}
