package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a program in the AT&T-style syntax Print/String emit.
//
// Functions are introduced by a ".globl name" directive followed by the
// "name:" label; other labels are local to the enclosing function. The
// optional ".entry name" directive selects the entry function (default:
// the first function).
func Parse(src string) (*Program, error) {
	p := &Program{}
	var cur *Func
	var pendingGlobl string
	var pendingLabels []string

	flushLabels := func(in *Inst) {
		in.Labels = append(in.Labels, pendingLabels...)
		pendingLabels = nil
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("asm: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}

		// Directives.
		if strings.HasPrefix(line, ".") && !strings.HasSuffix(line, ":") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".globl", ".global":
				if len(fields) != 2 {
					return nil, fail("malformed %s", fields[0])
				}
				pendingGlobl = fields[1]
			case ".entry":
				if len(fields) != 2 {
					return nil, fail("malformed .entry")
				}
				p.Entry = fields[1]
			case ".text", ".data", ".align", ".type", ".size", ".section":
				// Accepted and ignored for compatibility.
			default:
				return nil, fail("unknown directive %q", fields[0])
			}
			continue
		}

		// Labels (possibly several per line position).
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if name == "" || strings.ContainsAny(name, " \t") {
				return nil, fail("malformed label %q", line)
			}
			if name == pendingGlobl || cur == nil {
				cur = &Func{Name: name}
				p.Funcs = append(p.Funcs, cur)
				pendingGlobl = ""
				if len(pendingLabels) > 0 {
					return nil, fail("labels %v dangle before function %q", pendingLabels, name)
				}
			} else {
				pendingLabels = append(pendingLabels, name)
			}
			continue
		}

		// Instructions.
		if cur == nil {
			return nil, fail("instruction outside any function: %q", line)
		}
		in, err := parseInst(line)
		if err != nil {
			return nil, fail("%v", err)
		}
		flushLabels(&in)
		cur.Insts = append(cur.Insts, in)
	}
	if len(pendingLabels) > 0 {
		return nil, fmt.Errorf("asm: trailing labels %v with no instruction", pendingLabels)
	}
	if p.Entry == "" && len(p.Funcs) > 0 {
		p.Entry = p.Funcs[0].Name
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseInst(line string) (Inst, error) {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	op, ok := LookupOp(mnemonic)
	if !ok {
		return Inst{}, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	in := Inst{Op: op}
	if rest != "" {
		for _, part := range splitOperands(rest) {
			o, err := parseOperand(strings.TrimSpace(part))
			if err != nil {
				return Inst{}, fmt.Errorf("%s: %v", mnemonic, err)
			}
			in.A = append(in.A, o)
		}
	}
	if err := checkShape(in); err != nil {
		return Inst{}, err
	}
	return in, nil
}

// splitOperands splits on commas that are not inside parentheses, so
// "(%rax,%rcx,8), %rdx" yields two operands.
func splitOperands(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseOperand(s string) (Operand, error) {
	if s == "" {
		return Operand{}, fmt.Errorf("empty operand")
	}
	switch {
	case s[0] == '$':
		v, err := strconv.ParseInt(s[1:], 0, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("bad immediate %q: %v", s, err)
		}
		return Imm(v), nil
	case s[0] == '%':
		name := s[1:]
		if r, w, ok := LookupReg(name); ok {
			return RegOp(r, w), nil
		}
		if x, xw, ok := LookupXReg(name); ok {
			return XOp(x, xw), nil
		}
		return Operand{}, fmt.Errorf("unknown register %q", s)
	case strings.ContainsRune(s, '('):
		return parseMem(s)
	default:
		// Bare integer means absolute memory; otherwise a label.
		if v, err := strconv.ParseInt(s, 0, 64); err == nil {
			return MemOp(Mem{Disp: v}), nil
		}
		return LabelOp(s), nil
	}
}

func parseMem(s string) (Operand, error) {
	open := strings.IndexByte(s, '(')
	closeIdx := strings.LastIndexByte(s, ')')
	if closeIdx != len(s)-1 {
		return Operand{}, fmt.Errorf("bad memory operand %q", s)
	}
	var m Mem
	if dispStr := s[:open]; dispStr != "" {
		v, err := strconv.ParseInt(dispStr, 0, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("bad displacement in %q: %v", s, err)
		}
		m.Disp = v
	}
	inner := s[open+1 : closeIdx]
	parts := strings.Split(inner, ",")
	if len(parts) > 3 {
		return Operand{}, fmt.Errorf("bad memory operand %q", s)
	}
	parseReg := func(t string) (Reg, error) {
		t = strings.TrimSpace(t)
		if t == "" {
			return RNone, nil
		}
		if !strings.HasPrefix(t, "%") {
			return RNone, fmt.Errorf("bad register %q in %q", t, s)
		}
		r, w, ok := LookupReg(t[1:])
		if !ok || w != W64 {
			return RNone, fmt.Errorf("bad 64-bit register %q in %q", t, s)
		}
		return r, nil
	}
	var err error
	if m.Base, err = parseReg(parts[0]); err != nil {
		return Operand{}, err
	}
	if len(parts) >= 2 {
		if m.Index, err = parseReg(parts[1]); err != nil {
			return Operand{}, err
		}
	}
	if len(parts) == 3 {
		sc, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
			return Operand{}, fmt.Errorf("bad scale in %q", s)
		}
		m.Scale = uint8(sc)
	}
	return MemOp(m), nil
}
