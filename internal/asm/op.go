package asm

import "fmt"

// Op is an opcode in the modelled x86-64 subset.
type Op uint8

// Opcodes. AT&T suffixes are part of the opcode where the width matters to
// semantics (movq vs movl vs movb). MOVQ doubles as the GPR<->XMM transfer
// instruction, as in real x86-64 AT&T syntax; the operand kinds select the
// form.
const (
	NOP Op = iota

	// Data movement.
	MOVQ   // movq src, dst (gpr/mem/imm/xmm combinations)
	MOVL   // movl src, dst (32-bit, zero-extends into the 64-bit register)
	MOVB   // movb src, dst (8-bit partial write)
	MOVSLQ // movslq src32, dst64 (sign-extend)
	MOVZBQ // movzbq src8, dst64 (zero-extend)
	LEA    // leaq mem, dst

	// Integer ALU. Two-operand AT&T form: op src, dst ; dst = dst OP src.
	ADDQ
	SUBQ
	IMULQ
	ANDQ
	ORQ
	XORQ
	XORB
	SHLQ
	SHRQ
	SARQ
	NEGQ
	CQTO  // sign-extend rax into rdx:rax
	IDIVQ // signed divide rdx:rax by operand; quotient->rax, remainder->rdx

	// Compares (write flags only).
	CMPQ
	CMPL
	CMPB
	TESTQ

	// Control flow.
	JMP
	JE
	JNE
	JL
	JLE
	JG
	JGE
	CALL
	RET

	// Flag materialisation.
	SETE
	SETNE
	SETL
	SETLE
	SETG
	SETGE

	// Stack.
	PUSHQ
	POPQ

	// SIMD (the FERRUM check path, fig. 6 of the paper).
	PINSRQ      // pinsrq $lane, src, xmm
	VINSERTI128 // vinserti128 $lane, xmmsrc, ymmsrc2, ymmdst
	VINSERTI644 // vinserti64x4 $lane, ymmsrc, zmmsrc2, zmmdst (AVX-512)
	VPXOR       // vpxor v1, v2, vdst (lane count from the operand view)
	VPTEST      // vptest v1, v2 (sets ZF from AND over the operand view)

	// Pseudo-instructions understood by the machine model.
	OUT    // out %reg : append the register value to the program output
	HALT   // normal program termination
	DETECT // error-detection trap (the exit_function target)

	numOps
)

// NumOps is one past the largest valid Op; it sizes dense per-opcode
// counter arrays (e.g. the machine's execution profile).
const NumOps = int(numOps)

var opNames = [numOps]string{
	NOP:         "nop",
	MOVQ:        "movq",
	MOVL:        "movl",
	MOVB:        "movb",
	MOVSLQ:      "movslq",
	MOVZBQ:      "movzbq",
	LEA:         "leaq",
	ADDQ:        "addq",
	SUBQ:        "subq",
	IMULQ:       "imulq",
	ANDQ:        "andq",
	ORQ:         "orq",
	XORQ:        "xorq",
	XORB:        "xorb",
	SHLQ:        "shlq",
	SHRQ:        "shrq",
	SARQ:        "sarq",
	NEGQ:        "negq",
	CQTO:        "cqto",
	IDIVQ:       "idivq",
	CMPQ:        "cmpq",
	CMPL:        "cmpl",
	CMPB:        "cmpb",
	TESTQ:       "testq",
	JMP:         "jmp",
	JE:          "je",
	JNE:         "jne",
	JL:          "jl",
	JLE:         "jle",
	JG:          "jg",
	JGE:         "jge",
	CALL:        "callq",
	RET:         "retq",
	SETE:        "sete",
	SETNE:       "setne",
	SETL:        "setl",
	SETLE:       "setle",
	SETG:        "setg",
	SETGE:       "setge",
	PUSHQ:       "pushq",
	POPQ:        "popq",
	PINSRQ:      "pinsrq",
	VINSERTI128: "vinserti128",
	VINSERTI644: "vinserti64x4",
	VPXOR:       "vpxor",
	VPTEST:      "vptest",
	OUT:         "out",
	HALT:        "hlt",
	DETECT:      "detect",
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		m[opNames[op]] = op
	}
	return m
}()

// String returns the AT&T mnemonic.
func (op Op) String() string {
	if op < numOps {
		return opNames[op]
	}
	return fmt.Sprintf("op?%d", op)
}

// LookupOp resolves an AT&T mnemonic to its opcode.
func LookupOp(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

// CC is a condition code shared by conditional jumps and setcc.
type CC uint8

// Condition codes.
const (
	CCNone CC = iota
	CCE       // equal (ZF)
	CCNE      // not equal (!ZF)
	CCL       // signed less (SF != OF)
	CCLE      // signed less-or-equal (ZF || SF != OF)
	CCG       // signed greater (!ZF && SF == OF)
	CCGE      // signed greater-or-equal (SF == OF)
)

// String returns the condition suffix, e.g. "ne".
func (c CC) String() string {
	switch c {
	case CCE:
		return "e"
	case CCNE:
		return "ne"
	case CCL:
		return "l"
	case CCLE:
		return "le"
	case CCG:
		return "g"
	case CCGE:
		return "ge"
	}
	return "?"
}

// Negate returns the opposite condition.
func (c CC) Negate() CC {
	switch c {
	case CCE:
		return CCNE
	case CCNE:
		return CCE
	case CCL:
		return CCGE
	case CCLE:
		return CCG
	case CCG:
		return CCLE
	case CCGE:
		return CCL
	}
	return CCNone
}

// CondOf returns the condition code of a conditional jump or setcc opcode,
// or CCNone for other opcodes.
func CondOf(op Op) CC {
	switch op {
	case JE, SETE:
		return CCE
	case JNE, SETNE:
		return CCNE
	case JL, SETL:
		return CCL
	case JLE, SETLE:
		return CCLE
	case JG, SETG:
		return CCG
	case JGE, SETGE:
		return CCGE
	}
	return CCNone
}

// JccFor returns the conditional-jump opcode for a condition code.
func JccFor(c CC) Op {
	switch c {
	case CCE:
		return JE
	case CCNE:
		return JNE
	case CCL:
		return JL
	case CCLE:
		return JLE
	case CCG:
		return JG
	case CCGE:
		return JGE
	}
	return NOP
}

// SetccFor returns the setcc opcode for a condition code.
func SetccFor(c CC) Op {
	switch c {
	case CCE:
		return SETE
	case CCNE:
		return SETNE
	case CCL:
		return SETL
	case CCLE:
		return SETLE
	case CCG:
		return SETG
	case CCGE:
		return SETGE
	}
	return NOP
}

// IsCondJump reports whether op is a conditional jump.
func IsCondJump(op Op) bool {
	switch op {
	case JE, JNE, JL, JLE, JG, JGE:
		return true
	}
	return false
}

// IsSetcc reports whether op materialises a flag into a byte register.
func IsSetcc(op Op) bool {
	switch op {
	case SETE, SETNE, SETL, SETLE, SETG, SETGE:
		return true
	}
	return false
}

// WritesFlags reports whether executing op redefines the status flags.
func WritesFlags(op Op) bool {
	switch op {
	case ADDQ, SUBQ, IMULQ, ANDQ, ORQ, XORQ, XORB, SHLQ, SHRQ, SARQ, NEGQ,
		CMPQ, CMPL, CMPB, TESTQ, VPTEST, IDIVQ:
		return true
	}
	return false
}

// ReadsFlags reports whether op's behaviour depends on the status flags.
func ReadsFlags(op Op) bool { return IsCondJump(op) || IsSetcc(op) }

// IsTerminator reports whether op unconditionally ends a basic block
// (control cannot fall through to the next instruction).
func IsTerminator(op Op) bool {
	switch op {
	case JMP, RET, HALT, DETECT:
		return true
	}
	return false
}

// EndsBlock reports whether op ends a basic block, including conditional
// branches whose fall-through starts a new block.
func EndsBlock(op Op) bool { return IsTerminator(op) || IsCondJump(op) }
