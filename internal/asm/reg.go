// Package asm models the subset of the x86-64 instruction set that the
// FERRUM toolchain manipulates: sixteen general-purpose registers with
// 8/16/32/64-bit views, sixteen XMM/YMM SIMD registers, the RFLAGS status
// bits, an AT&T-style textual syntax, and enough instruction metadata
// (destinations, flag effects, execution unit, cost) for the protection
// passes, the fault injector, and the machine simulator to agree on
// semantics.
package asm

import "fmt"

// Reg identifies a general-purpose register. The zero value RNone means
// "no register" and is what an absent Base/Index field in a memory operand
// holds.
type Reg uint8

// General-purpose registers in x86-64 encoding order.
const (
	RNone Reg = iota
	RAX
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// NumReg is one past the largest valid Reg and sizes register files.
	NumReg
)

// Width is an operand width in bytes.
type Width uint8

// Operand widths.
const (
	W8  Width = 1
	W16 Width = 2
	W32 Width = 4
	W64 Width = 8
)

// Bits reports the width in bits.
func (w Width) Bits() uint { return uint(w) * 8 }

// gprNames[reg][width] gives the AT&T register name (without the % sigil).
var gprNames = map[Reg]map[Width]string{
	RAX: {W64: "rax", W32: "eax", W16: "ax", W8: "al"},
	RCX: {W64: "rcx", W32: "ecx", W16: "cx", W8: "cl"},
	RDX: {W64: "rdx", W32: "edx", W16: "dx", W8: "dl"},
	RBX: {W64: "rbx", W32: "ebx", W16: "bx", W8: "bl"},
	RSP: {W64: "rsp", W32: "esp", W16: "sp", W8: "spl"},
	RBP: {W64: "rbp", W32: "ebp", W16: "bp", W8: "bpl"},
	RSI: {W64: "rsi", W32: "esi", W16: "si", W8: "sil"},
	RDI: {W64: "rdi", W32: "edi", W16: "di", W8: "dil"},
	R8:  {W64: "r8", W32: "r8d", W16: "r8w", W8: "r8b"},
	R9:  {W64: "r9", W32: "r9d", W16: "r9w", W8: "r9b"},
	R10: {W64: "r10", W32: "r10d", W16: "r10w", W8: "r10b"},
	R11: {W64: "r11", W32: "r11d", W16: "r11w", W8: "r11b"},
	R12: {W64: "r12", W32: "r12d", W16: "r12w", W8: "r12b"},
	R13: {W64: "r13", W32: "r13d", W16: "r13w", W8: "r13b"},
	R14: {W64: "r14", W32: "r14d", W16: "r14w", W8: "r14b"},
	R15: {W64: "r15", W32: "r15d", W16: "r15w", W8: "r15b"},
}

// regByName maps every register name at every width back to (reg, width).
var regByName = func() map[string]struct {
	Reg Reg
	W   Width
} {
	m := make(map[string]struct {
		Reg Reg
		W   Width
	})
	for r, ws := range gprNames {
		for w, name := range ws {
			m[name] = struct {
				Reg Reg
				W   Width
			}{r, w}
		}
	}
	return m
}()

// Name returns the AT&T name of the register at width w, e.g. "eax".
func (r Reg) Name(w Width) string {
	if ws, ok := gprNames[r]; ok {
		return ws[w]
	}
	return fmt.Sprintf("r?%d", r)
}

// String returns the 64-bit name of the register.
func (r Reg) String() string {
	if r == RNone {
		return "none"
	}
	return r.Name(W64)
}

// Valid reports whether r names an actual register.
func (r Reg) Valid() bool { return r > RNone && r < NumReg }

// LookupReg resolves an AT&T register name (without the % sigil) to its
// register and width. ok is false for unknown names.
func LookupReg(name string) (reg Reg, w Width, ok bool) {
	e, ok := regByName[name]
	return e.Reg, e.W, ok
}

// XReg identifies a SIMD register. XMM and YMM views share the same file:
// XMMi aliases the low 128 bits of YMMi, matching real hardware and the
// aliasing FERRUM exploits in fig. 6 of the paper.
type XReg uint8

// NumXReg is the number of SIMD registers.
const NumXReg = 16

// XWidth selects the XMM (128-bit), YMM (256-bit) or ZMM (512-bit,
// AVX-512) view of a SIMD register. The paper's §III-B3 notes ZMM as a
// viable extension of the FERRUM design; this model supports it.
type XWidth uint8

// SIMD register views.
const (
	X128 XWidth = 1 // xmm view, lanes 0-1
	Y256 XWidth = 2 // ymm view, lanes 0-3
	Z512 XWidth = 3 // zmm view, lanes 0-7 (AVX-512)
)

// Lanes reports how many 64-bit lanes the view covers.
func (w XWidth) Lanes() int {
	switch w {
	case Z512:
		return 8
	case Y256:
		return 4
	}
	return 2
}

// Name returns the register name at the given view, e.g. "xmm3" or "zmm3".
func (x XReg) Name(w XWidth) string {
	switch w {
	case Z512:
		return fmt.Sprintf("zmm%d", x)
	case Y256:
		return fmt.Sprintf("ymm%d", x)
	}
	return fmt.Sprintf("xmm%d", x)
}

// LookupXReg resolves "xmmN"/"ymmN"/"zmmN" to a SIMD register and view.
func LookupXReg(name string) (x XReg, w XWidth, ok bool) {
	var n int
	if _, err := fmt.Sscanf(name, "xmm%d", &n); err == nil && n >= 0 && n < NumXReg {
		return XReg(n), X128, true
	}
	if _, err := fmt.Sscanf(name, "ymm%d", &n); err == nil && n >= 0 && n < NumXReg {
		return XReg(n), Y256, true
	}
	if _, err := fmt.Sscanf(name, "zmm%d", &n); err == nil && n >= 0 && n < NumXReg {
		return XReg(n), Z512, true
	}
	return 0, 0, false
}

// Flag identifies one RFLAGS status bit. Flags are a fault-injection
// destination for compare instructions (§IV-B1 of the paper: "faults ...
// introduced into the status register following the test instruction").
type Flag uint8

// Status flags tracked by the machine model.
const (
	FlagZF Flag = iota // zero
	FlagSF             // sign
	FlagCF             // carry
	FlagOF             // overflow

	// NumFlag is the number of modelled status flags.
	NumFlag
)

// String returns the conventional flag mnemonic.
func (f Flag) String() string {
	switch f {
	case FlagZF:
		return "ZF"
	case FlagSF:
		return "SF"
	case FlagCF:
		return "CF"
	case FlagOF:
		return "OF"
	}
	return fmt.Sprintf("flag?%d", f)
}

// CallerSaved lists the registers a callee may clobber under the System-V
// style convention the backend emits (argument and scratch registers).
var CallerSaved = []Reg{RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11}

// CalleeSaved lists the registers a callee must preserve.
var CalleeSaved = []Reg{RBX, RBP, R12, R13, R14, R15}

// ArgRegs lists the integer argument registers in order.
var ArgRegs = []Reg{RDI, RSI, RDX, RCX, R8, R9}
