package asm

import (
	"math/rand"
	"strings"
	"testing"
)

func TestZmmOperands(t *testing.T) {
	if got := Zmm(5).String(); got != "%zmm5" {
		t.Errorf("Zmm(5) = %q", got)
	}
	x, w, ok := LookupXReg("zmm12")
	if !ok || x != 12 || w != Z512 {
		t.Errorf("LookupXReg(zmm12) = %v %v %v", x, w, ok)
	}
	if Z512.Lanes() != 8 || Y256.Lanes() != 4 || X128.Lanes() != 2 {
		t.Error("lane counts wrong")
	}
	in := NewInst(VINSERTI644, Imm(1), Ymm(4), Zmm(0), Zmm(0))
	if got := in.String(); got != "vinserti64x4\t$1, %ymm4, %zmm0, %zmm0" {
		t.Errorf("vinserti64x4 renders as %q", got)
	}
	d := DestOf(in)
	if d.Kind != DestXMM || d.LaneHi != 7 {
		t.Errorf("vinserti64x4 dest = %+v", d)
	}
	// zmm-wide vpxor destination spans 8 lanes.
	d = DestOf(NewInst(VPXOR, Zmm(1), Zmm(0), Zmm(0)))
	if d.LaneHi != 7 {
		t.Errorf("zmm vpxor dest = %+v", d)
	}
}

func TestTagStrings(t *testing.T) {
	for tag, want := range map[Tag]string{
		TagProgram: "program", TagDup: "dup", TagCheck: "check",
		TagStage: "stage", TagSpill: "spill", TagRuntime: "runtime",
	} {
		if tag.String() != want {
			t.Errorf("%d.String() = %q", tag, tag.String())
		}
	}
}

func TestWithHelpers(t *testing.T) {
	in := NewInst(NOP).WithTag(TagCheck).WithComment("hi")
	if in.Tag != TagCheck || in.Comment != "hi" {
		t.Errorf("helpers broken: %+v", in)
	}
	if in.Src(0).Kind != KNone || in.Src(-1).Kind != KNone {
		t.Error("Src out of range should be empty")
	}
	if NewInst(NOP).Dst().Kind != KNone {
		t.Error("Dst of nullary should be empty")
	}
}

func TestFlagPredicates(t *testing.T) {
	if !WritesFlags(NewInst(ADDQ, Imm(1), Reg64(RAX)).Op) {
		t.Error("addq writes flags")
	}
	if WritesFlags(MOVQ) || WritesFlags(JMP) || WritesFlags(LEA) {
		t.Error("mov/jmp/lea do not write flags")
	}
	if !ReadsFlags(JNE) || !ReadsFlags(SETG) || ReadsFlags(ADDQ) {
		t.Error("flag readers wrong")
	}
	if !IsTerminator(RET) || !IsTerminator(HALT) || IsTerminator(JE) {
		t.Error("terminators wrong")
	}
	if !EndsBlock(JE) || EndsBlock(CALL) {
		t.Error("block enders wrong")
	}
}

// randInst builds a random instruction from a set of printable shapes.
func randInst(rng *rand.Rand) Inst {
	regs := []Reg{RAX, RCX, RDX, RBX, RSI, RDI, R8, R9, R10, R11, R12, R13, R14, R15}
	reg := func() Reg { return regs[rng.Intn(len(regs))] }
	mem := func() Operand {
		m := Mem{Base: reg(), Disp: int64(rng.Intn(512) - 256)}
		if rng.Intn(2) == 0 {
			m.Index = reg()
			m.Scale = []uint8{1, 2, 4, 8}[rng.Intn(4)]
		}
		return MemOp(m)
	}
	switch rng.Intn(9) {
	case 0:
		return NewInst(MOVQ, mem(), Reg64(reg()))
	case 1:
		return NewInst(MOVQ, Reg64(reg()), mem())
	case 2:
		return NewInst(MOVQ, Imm(int64(rng.Intn(10000)-5000)), Reg64(reg()))
	case 3:
		return NewInst(ADDQ, Reg64(reg()), Reg64(reg()))
	case 4:
		return NewInst(CMPQ, Imm(int64(rng.Intn(100))), mem())
	case 5:
		return NewInst(LEA, mem(), Reg64(reg()))
	case 6:
		return NewInst(PINSRQ, Imm(int64(rng.Intn(2))), Reg64(reg()), Xmm(XReg(rng.Intn(16))))
	case 7:
		return NewInst(SETE, Reg8(reg()))
	default:
		return NewInst(MOVSLQ, Reg32(reg()), Reg64(reg()))
	}
}

// TestRandomInstRoundTrip: every randomly generated instruction prints to a
// line that parses back to itself.
func TestRandomInstRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		in := randInst(rng)
		line := in.String()
		parsed, err := parseInst(strings.ReplaceAll(line, ", ", ","))
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		if parsed.String() != line {
			t.Fatalf("round trip: %q -> %q", line, parsed.String())
		}
	}
}

func TestParserToleratesDirectivesAndEntry(t *testing.T) {
	src := `
	.text
	.entry	f
	.globl	f
	.align	16
f:
	retq
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != "f" {
		t.Errorf("entry = %q", p.Entry)
	}
}

func TestCountTag(t *testing.T) {
	p := &Program{Funcs: []*Func{{Name: "f", Insts: []Inst{
		NewInst(NOP).WithTag(TagDup),
		NewInst(NOP).WithTag(TagDup),
		NewInst(RET),
	}}}}
	if p.CountTag(TagDup) != 2 || p.CountTag(TagProgram) != 1 {
		t.Errorf("CountTag wrong: %d %d", p.CountTag(TagDup), p.CountTag(TagProgram))
	}
}

func TestStatsString(t *testing.T) {
	p := &Program{Funcs: []*Func{{Name: "f", Insts: []Inst{
		NewInst(MOVQ, Imm(1), Reg64(RAX)),
		NewInst(RET),
	}}}}
	s := CollectStats(p).String()
	if !strings.Contains(s, "insts=2") || !strings.Contains(s, "movq:1") {
		t.Errorf("stats = %q", s)
	}
}

func TestRegSetLikeHelpers(t *testing.T) {
	if RNone.Valid() || NumReg.Valid() {
		t.Error("invalid regs report valid")
	}
	if !RAX.Valid() || !R15.Valid() {
		t.Error("valid regs report invalid")
	}
	if RNone.String() != "none" {
		t.Errorf("RNone.String() = %q", RNone.String())
	}
	for _, f := range []Flag{FlagZF, FlagSF, FlagCF, FlagOF} {
		if strings.HasPrefix(f.String(), "flag?") {
			t.Errorf("flag %d has no name", f)
		}
	}
}

func TestOperandString(t *testing.T) {
	tests := map[string]Operand{
		"%eax":          Reg32(RAX),
		"%r10b":         Reg8(R10),
		"$-5":           Imm(-5),
		"%xmm9":         Xmm(9),
		"%ymm0":         Ymm(0),
		"target":        LabelOp("target"),
		"8(%rsp)":       MemBD(RSP, 8),
		"(%rax,%rcx,4)": MemBIS(RAX, RCX, 4, 0),
	}
	for want, o := range tests {
		if got := o.String(); got != want {
			t.Errorf("operand = %q, want %q", got, want)
		}
	}
	if (Operand{}).String() != "<none>" {
		t.Error("empty operand string")
	}
}

func TestXUsesXDef(t *testing.T) {
	in := NewInst(VPXOR, Ymm(1), Ymm(2), Ymm(3))
	uses := XUses(in, nil)
	if len(uses) != 2 || uses[0] != 1 || uses[1] != 2 {
		t.Errorf("vpxor uses = %v", uses)
	}
	if d, ok := XDef(in); !ok || d != 3 {
		t.Errorf("vpxor def = %v %v", d, ok)
	}
	// pinsrq reads its destination (lane-preserving write).
	in = NewInst(PINSRQ, Imm(1), Reg64(RAX), Xmm(5))
	uses = XUses(in, nil)
	if len(uses) != 1 || uses[0] != 5 {
		t.Errorf("pinsrq uses = %v", uses)
	}
	// vptest reads both operands and defines nothing.
	in = NewInst(VPTEST, Ymm(0), Ymm(4))
	uses = XUses(in, nil)
	if len(uses) != 2 {
		t.Errorf("vptest uses = %v", uses)
	}
	if _, ok := XDef(in); ok {
		t.Error("vptest has no xmm def")
	}
	// movq gpr->xmm defines the xmm register.
	in = NewInst(MOVQ, Reg64(RAX), Xmm(7))
	if d, ok := XDef(in); !ok || d != 7 {
		t.Errorf("movq def = %v %v", d, ok)
	}
}

func TestGPRDefForms(t *testing.T) {
	if GPRDef(NewInst(MOVQ, Imm(1), Reg64(R9))) != R9 {
		t.Error("movq def wrong")
	}
	if GPRDef(NewInst(MOVQ, Reg64(RAX), MemBD(RBP, -8))) != RNone {
		t.Error("store has no gpr def")
	}
	if GPRDef(NewInst(JMP, LabelOp("x"))) != RNone {
		t.Error("jmp has no gpr def")
	}
}

func TestWidthBits(t *testing.T) {
	if W8.Bits() != 8 || W64.Bits() != 64 {
		t.Error("Bits wrong")
	}
}

func TestOperandHelpers(t *testing.T) {
	if !Reg64(RAX).IsReg(RAX) || Reg64(RAX).IsReg(RCX) || Imm(1).IsReg(RAX) {
		t.Error("IsReg wrong")
	}
	if !Reg64(RAX).Equal(Reg64(RAX)) || Reg64(RAX).Equal(Reg32(RAX)) {
		t.Error("Equal wrong")
	}
	if MemBIS(RAX, RCX, 0, 0).M.effScale() != 1 {
		t.Error("zero scale should act as 1")
	}
	if StaticCount := (&Program{Funcs: []*Func{{Name: "f", Insts: []Inst{NewInst(RET)}}}}).StaticInstCount(); StaticCount != 1 {
		t.Errorf("StaticInstCount = %d", StaticCount)
	}
}

func TestUnknownEnumStrings(t *testing.T) {
	if CC(99).String() != "?" {
		t.Error("unknown cc string")
	}
	if Op(200).String() == "" {
		t.Error("unknown op string empty")
	}
	if Tag(99).String() == "" || Flag(99).String() == "" {
		t.Error("unknown tag/flag string empty")
	}
}
