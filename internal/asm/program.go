package asm

import (
	"fmt"
	"sort"
	"strings"
)

// DetectLabel is the global label every checker jumps to on a mismatch.
// The runtime scaffolding places a DETECT pseudo-instruction there; the
// machine model turns it into the Detected outcome.
const DetectLabel = "exit_function"

// StartLabel is the program entry point emitted by the backend: it calls
// the main function and halts.
const StartLabel = "_start"

// Func is one function's instruction sequence. The function's name is also
// the label of its first instruction.
type Func struct {
	Name  string
	Insts []Inst
}

// Clone deep-copies the function.
func (f *Func) Clone() *Func {
	nf := &Func{Name: f.Name, Insts: make([]Inst, len(f.Insts))}
	for i, in := range f.Insts {
		ni := in
		ni.A = append([]Operand(nil), in.A...)
		ni.Labels = append([]string(nil), in.Labels...)
		nf.Insts[i] = ni
	}
	return nf
}

// Program is a complete assembly module: a list of functions plus the name
// of the entry function the _start scaffolding calls.
type Program struct {
	Funcs []*Func
	Entry string
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	np := &Program{Entry: p.Entry, Funcs: make([]*Func, len(p.Funcs))}
	for i, f := range p.Funcs {
		np.Funcs[i] = f.Clone()
	}
	return np
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// StaticInstCount reports the number of static instructions across all
// functions (the metric §IV-B3 of the paper correlates transform time with).
func (p *Program) StaticInstCount() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Insts)
	}
	return n
}

// CountTag reports how many instructions carry the given provenance tag.
func (p *Program) CountTag(t Tag) int {
	n := 0
	for _, f := range p.Funcs {
		for _, in := range f.Insts {
			if in.Tag == t {
				n++
			}
		}
	}
	return n
}

// Validate checks structural invariants: non-empty functions, unique
// function names, unique labels, and that every jump or call target
// resolves to a function name or label.
func (p *Program) Validate() error {
	labels := map[string]bool{}
	for _, f := range p.Funcs {
		if f.Name == "" {
			return fmt.Errorf("asm: function with empty name")
		}
		if labels[f.Name] {
			return fmt.Errorf("asm: duplicate function name %q", f.Name)
		}
		labels[f.Name] = true
		if len(f.Insts) == 0 {
			return fmt.Errorf("asm: function %q has no instructions", f.Name)
		}
	}
	for _, f := range p.Funcs {
		for i, in := range f.Insts {
			for _, l := range in.Labels {
				if labels[l] {
					return fmt.Errorf("asm: %s+%d: duplicate label %q", f.Name, i, l)
				}
				labels[l] = true
			}
		}
	}
	for _, f := range p.Funcs {
		for i, in := range f.Insts {
			for _, a := range in.A {
				if a.Kind == KLabel && !labels[a.Label] {
					return fmt.Errorf("asm: %s+%d: undefined label %q in %s",
						f.Name, i, a.Label, in.String())
				}
			}
			if err := checkShape(in); err != nil {
				return fmt.Errorf("asm: %s+%d: %v", f.Name, i, err)
			}
		}
	}
	if p.Entry != "" && !labels[p.Entry] {
		return fmt.Errorf("asm: entry %q is not defined", p.Entry)
	}
	return nil
}

func checkShape(in Inst) error {
	argc := len(in.A)
	want := func(n int) error {
		if argc != n {
			return fmt.Errorf("%s expects %d operands, has %d", in.Op, n, argc)
		}
		return nil
	}
	switch in.Op {
	case NOP, RET, HALT, DETECT, CQTO:
		return want(0)
	case JMP, JE, JNE, JL, JLE, JG, JGE, CALL, PUSHQ, POPQ, IDIVQ, NEGQ, OUT,
		SETE, SETNE, SETL, SETLE, SETG, SETGE:
		return want(1)
	case MOVQ, MOVL, MOVB, MOVSLQ, MOVZBQ, LEA, ADDQ, SUBQ, IMULQ, ANDQ, ORQ,
		XORQ, XORB, SHLQ, SHRQ, SARQ, CMPQ, CMPL, CMPB, TESTQ, VPTEST:
		return want(2)
	case PINSRQ, VPXOR:
		return want(3)
	case VINSERTI128, VINSERTI644:
		return want(4)
	}
	return nil
}

// Block is a basic block within a function: a maximal straight-line
// instruction range [Start, End) of f.Insts.
type Block struct {
	Start, End int
	Labels     []string
}

// Blocks partitions a function into basic blocks. Leaders are the first
// instruction, any labelled instruction, and any instruction following a
// block-ending instruction (jumps, conditional jumps, ret, halt, detect).
// Calls do not end blocks.
func Blocks(f *Func) []Block {
	if len(f.Insts) == 0 {
		return nil
	}
	leader := make([]bool, len(f.Insts))
	leader[0] = true
	for i, in := range f.Insts {
		if len(in.Labels) > 0 {
			leader[i] = true
		}
		if EndsBlock(in.Op) && i+1 < len(f.Insts) {
			leader[i+1] = true
		}
	}
	var blocks []Block
	for i := 0; i < len(f.Insts); i++ {
		if !leader[i] {
			continue
		}
		end := i + 1
		for end < len(f.Insts) && !leader[end] {
			end++
		}
		blocks = append(blocks, Block{Start: i, End: end, Labels: f.Insts[i].Labels})
	}
	return blocks
}

// String renders the whole program in AT&T syntax.
func (p *Program) String() string {
	var b strings.Builder
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "\t.globl\t%s\n%s:\n", f.Name, f.Name)
		for _, in := range f.Insts {
			for _, l := range in.Labels {
				b.WriteString(l)
				b.WriteString(":\n")
			}
			b.WriteByte('\t')
			b.WriteString(in.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Stats summarises a program's instruction mix; useful in tests and in the
// experiment harness (Table II extension).
type Stats struct {
	Total   int
	ByTag   map[Tag]int
	ByOp    map[Op]int
	Funcs   int
	FISites int // static instructions with a fault-injection destination
}

// CollectStats computes instruction-mix statistics.
func CollectStats(p *Program) Stats {
	s := Stats{ByTag: map[Tag]int{}, ByOp: map[Op]int{}, Funcs: len(p.Funcs)}
	for _, f := range p.Funcs {
		for _, in := range f.Insts {
			s.Total++
			s.ByTag[in.Tag]++
			s.ByOp[in.Op]++
			if DestOf(in).Kind != DestNone {
				s.FISites++
			}
		}
	}
	return s
}

// String renders the statistics compactly with deterministic ordering.
func (s Stats) String() string {
	var ops []string
	for op, n := range s.ByOp {
		ops = append(ops, fmt.Sprintf("%s:%d", op, n))
	}
	sort.Strings(ops)
	return fmt.Sprintf("insts=%d funcs=%d fi-sites=%d ops={%s}",
		s.Total, s.Funcs, s.FISites, strings.Join(ops, " "))
}
