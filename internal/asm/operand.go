package asm

import (
	"fmt"
	"strings"
)

// OpKind discriminates the Operand union.
type OpKind uint8

// Operand kinds.
const (
	KNone  OpKind = iota
	KReg          // general-purpose register at some width
	KXReg         // SIMD register (xmm/ymm view)
	KImm          // immediate
	KMem          // memory reference disp(base,index,scale)
	KLabel        // code label (branch/call target)
)

// Mem is an x86 addressing-mode memory reference: Disp(Base,Index,Scale).
type Mem struct {
	Base  Reg
	Index Reg
	Scale uint8 // 1, 2, 4 or 8; 0 treated as 1
	Disp  int64
}

// String renders the reference in AT&T syntax, e.g. "-24(%rbp)" or
// "(%rax,%rcx,8)".
func (m Mem) String() string {
	var b strings.Builder
	if m.Disp != 0 || (m.Base == RNone && m.Index == RNone) {
		fmt.Fprintf(&b, "%d", m.Disp)
	}
	if m.Base != RNone || m.Index != RNone {
		b.WriteByte('(')
		if m.Base != RNone {
			b.WriteByte('%')
			b.WriteString(m.Base.Name(W64))
		}
		if m.Index != RNone {
			fmt.Fprintf(&b, ",%%%s,%d", m.Index.Name(W64), m.effScale())
		}
		b.WriteByte(')')
	}
	return b.String()
}

func (m Mem) effScale() uint8 {
	if m.Scale == 0 {
		return 1
	}
	return m.Scale
}

// Operand is one instruction operand. Exactly the fields implied by Kind
// are meaningful.
type Operand struct {
	Kind  OpKind
	Reg   Reg    // KReg
	W     Width  // KReg width
	X     XReg   // KXReg
	XW    XWidth // KXReg view
	Imm   int64  // KImm
	M     Mem    // KMem
	Label string // KLabel
}

// RegOp builds a register operand at width w.
func RegOp(r Reg, w Width) Operand { return Operand{Kind: KReg, Reg: r, W: w} }

// Reg64 builds a 64-bit register operand.
func Reg64(r Reg) Operand { return RegOp(r, W64) }

// Reg32 builds a 32-bit register operand.
func Reg32(r Reg) Operand { return RegOp(r, W32) }

// Reg8 builds an 8-bit register operand.
func Reg8(r Reg) Operand { return RegOp(r, W8) }

// XOp builds a SIMD register operand at view w.
func XOp(x XReg, w XWidth) Operand { return Operand{Kind: KXReg, X: x, XW: w} }

// Xmm builds an XMM-view SIMD operand.
func Xmm(x XReg) Operand { return XOp(x, X128) }

// Ymm builds a YMM-view SIMD operand.
func Ymm(x XReg) Operand { return XOp(x, Y256) }

// Zmm builds a ZMM-view (AVX-512) SIMD operand.
func Zmm(x XReg) Operand { return XOp(x, Z512) }

// Imm builds an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: KImm, Imm: v} }

// MemOp builds a memory operand from a Mem reference.
func MemOp(m Mem) Operand { return Operand{Kind: KMem, M: m} }

// MemBD builds a Disp(Base) memory operand, the backend's stack-slot shape.
func MemBD(base Reg, disp int64) Operand {
	return Operand{Kind: KMem, M: Mem{Base: base, Disp: disp}}
}

// MemBIS builds a Disp(Base,Index,Scale) memory operand.
func MemBIS(base, index Reg, scale uint8, disp int64) Operand {
	return Operand{Kind: KMem, M: Mem{Base: base, Index: index, Scale: scale, Disp: disp}}
}

// LabelOp builds a label operand.
func LabelOp(name string) Operand { return Operand{Kind: KLabel, Label: name} }

// String renders the operand in AT&T syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KReg:
		return "%" + o.Reg.Name(o.W)
	case KXReg:
		return "%" + o.X.Name(o.XW)
	case KImm:
		return fmt.Sprintf("$%d", o.Imm)
	case KMem:
		return o.M.String()
	case KLabel:
		return o.Label
	case KNone:
		return "<none>"
	}
	return fmt.Sprintf("<operand kind %d>", o.Kind)
}

// IsReg reports whether the operand is general-purpose register r at any
// width.
func (o Operand) IsReg(r Reg) bool { return o.Kind == KReg && o.Reg == r }

// Equal reports structural equality of two operands.
func (o Operand) Equal(p Operand) bool { return o == p }
