package compose

import (
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/liveness"
	"ferrum/internal/machine"
)

func TestAllocExactAndProportional(t *testing.T) {
	cases := []struct {
		total   int
		weights []uint64
	}{
		{1000, []uint64{100, 200, 700}},
		{7, []uint64{1, 1, 1}},
		{5, []uint64{0, 10, 0}},
		{0, []uint64{3, 4}},
		{10, []uint64{}},
		{3, []uint64{0, 0}},
		{1000, []uint64{1, 1, 1, 999999}},
	}
	for _, c := range cases {
		got := Alloc(c.total, c.weights)
		if len(got) != len(c.weights) {
			t.Fatalf("Alloc(%d, %v) returned %d entries", c.total, c.weights, len(got))
		}
		sum, wsum := 0, uint64(0)
		for i, n := range got {
			sum += n
			wsum += c.weights[i]
			if c.weights[i] == 0 && n != 0 {
				t.Errorf("Alloc(%d, %v): zero-weight section got %d", c.total, c.weights, n)
			}
		}
		want := c.total
		if want < 0 || wsum == 0 {
			want = 0
		}
		if sum != want {
			t.Errorf("Alloc(%d, %v) = %v, sums to %d", c.total, c.weights, got, sum)
		}
	}
	// Proportionality within one unit of the exact share.
	got := Alloc(1000, []uint64{100, 200, 700})
	for i, want := range []int{100, 200, 700} {
		if got[i] < want-1 || got[i] > want+1 {
			t.Errorf("budget[%d] = %d, want ~%d", i, got[i], want)
		}
	}
}

func TestSectionSeedIdentity(t *testing.T) {
	a := SectionSeed(42, 0, 100)
	if a != SectionSeed(42, 0, 100) {
		t.Error("seed not deterministic")
	}
	for _, other := range []int64{
		SectionSeed(42, 100, 200),
		SectionSeed(42, 0, 101),
		SectionSeed(43, 0, 100),
	} {
		if other == a {
			t.Error("distinct section identities collided")
		}
	}
}

func TestClassifyVerdicts(t *testing.T) {
	var deadR liveness.RegSet
	deadR.Add(asm.RAX)
	var deadF liveness.FlagSet
	deadF.Add(asm.FlagZF)

	cases := []struct {
		name  string
		d     machine.BoundaryDiff
		want  Verdict
		exact bool
	}{
		{"clean", machine.BoundaryDiff{Comparable: true}, VerdictBenign, true},
		{"clean-sdc", machine.BoundaryDiff{Comparable: true, Output: true}, VerdictSDC, true},
		{"incomparable", machine.BoundaryDiff{}, VerdictFallback, false},
		{"pc", machine.BoundaryDiff{Comparable: true, PC: true}, VerdictFallback, false},
		{"mem", machine.BoundaryDiff{Comparable: true, Mem: true}, VerdictFallback, false},
		{"xmm", machine.BoundaryDiff{Comparable: true, XMM: true}, VerdictFallback, false},
		{"dyn", machine.BoundaryDiff{Comparable: true, Dyn: true}, VerdictFallback, false},
		{"dead-reg", machine.BoundaryDiff{Comparable: true, GPRs: []asm.Reg{asm.RAX}}, VerdictBenign, false},
		{"live-reg", machine.BoundaryDiff{Comparable: true, GPRs: []asm.Reg{asm.RBX}}, VerdictFallback, false},
		{"dead-flag", machine.BoundaryDiff{Comparable: true, Flags: []asm.Flag{asm.FlagZF}}, VerdictBenign, false},
		{"live-flag", machine.BoundaryDiff{Comparable: true, Flags: []asm.Flag{asm.FlagSF}}, VerdictFallback, false},
		{"dead-reg-sdc", machine.BoundaryDiff{Comparable: true, Output: true, GPRs: []asm.Reg{asm.RAX}}, VerdictSDC, false},
	}
	for _, c := range cases {
		v, exact := Classify(c.d, deadR, deadF)
		if v != c.want || exact != c.exact {
			t.Errorf("%s: Classify = (%v, %v), want (%v, %v)", c.name, v, exact, c.want, c.exact)
		}
	}
}

func TestFnsInRange(t *testing.T) {
	spans := []machine.FnSpan{
		{Fn: "main", Start: 0, End: 10},
		{Fn: "kernel", Start: 10, End: 50},
		{Fn: "main", Start: 50, End: 50}, // zero-site tail
		{Fn: "fini", Start: 50, End: 60},
	}
	got := FnsInRange(spans, 10, 49)
	if len(got) != 2 || got[0] != "main" || got[1] != "kernel" {
		t.Errorf("FnsInRange mid = %v", got)
	}
	got = FnsInRange(spans, 50, 60)
	if len(got) != 3 { // kernel's span touches 50, main's zero-site span too
		t.Errorf("FnsInRange tail = %v", got)
	}
	if got := FnsInRange(nil, 0, 10); len(got) != 0 {
		t.Errorf("FnsInRange(nil) = %v", got)
	}
}

func TestCacheClasses(t *testing.T) {
	c := NewCache()
	tbl := &Table{GlobalDigest: 7, Plans: []CachedPlan{{Site: 1, Bit: 2, Outcome: 1}}}
	if c.Get(99) != nil {
		t.Error("hit on empty cache")
	}
	c.Put(99, tbl)
	if got := c.Get(99); got != tbl {
		t.Error("miss after Put")
	}
	c.Served(1)
	st := c.CacheStats()
	if st.SectionHits != 1 || st.SectionMisses != 1 || st.PlansServed != 1 {
		t.Errorf("stats = %+v", st)
	}
	cl := c.Clone()
	if cl.Len() != 1 || cl.Get(99) != tbl {
		t.Error("clone lost tables")
	}
	if s := cl.CacheStats(); s.SectionHits != 1 || s.SectionMisses != 0 {
		t.Errorf("clone stats not fresh: %+v", s)
	}
	// nil-receiver safety
	var nilCache *Cache
	if nilCache.Get(1) != nil || nilCache.Len() != 0 {
		t.Error("nil cache misbehaved")
	}
	nilCache.Put(1, tbl)
	nilCache.Served(3)
}
