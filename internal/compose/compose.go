// Package compose implements the compositional half of ROADMAP item 1, after
// FastFlip (PAPERS.md): partition a program into sections at the golden-run
// checkpoint boundaries, measure each section's error propagation once, and
// compose whole-program outcome distributions. The package is deliberately
// policy-free — it provides the section fingerprints, boundary-descriptor
// classification, budget allocation, and the per-section propagation-table
// cache; internal/fi owns the campaign loop that uses them.
package compose

import (
	"hash/fnv"

	"ferrum/internal/asm"
	"ferrum/internal/liveness"
	"ferrum/internal/machine"
)

// Verdict is the composition-time meaning of a section-boundary descriptor.
type Verdict uint8

const (
	// VerdictBenign: the error dissipated (or survives only in state the
	// downstream provably never reads) and the output prefix matches golden,
	// so the whole-program outcome is Benign.
	VerdictBenign Verdict = iota
	// VerdictSDC: the machine state at the boundary is clean modulo dead
	// state but the output prefix already differs from golden. The downstream
	// appends the golden suffix to a wrong prefix, so the final output is
	// wrong with no detection left to fire: SDC.
	VerdictSDC
	// VerdictFallback: the descriptor is ambiguous (control-flow, memory,
	// vector or live-register divergence) — the plan must run end-to-end.
	VerdictFallback
)

// String names the verdict for tables and logs.
func (v Verdict) String() string {
	switch v {
	case VerdictBenign:
		return "benign"
	case VerdictSDC:
		return "sdc"
	case VerdictFallback:
		return "fallback"
	}
	return "unknown"
}

// Classify maps a boundary diff to a composition verdict. deadRegs and
// deadFlags are the state the downstream section provably never reads
// (DeadSets at the boundary's static location); differences confined to them
// are tolerated. exact reports that NO difference was tolerated — the
// machine state matched golden bit for bit — which is what makes the verdict
// robust to edits of the downstream sections (see Class).
func Classify(d machine.BoundaryDiff, deadRegs liveness.RegSet, deadFlags liveness.FlagSet) (verdict Verdict, exact bool) {
	if !d.Comparable || d.PC || d.Dyn || d.Mem || d.XMM {
		return VerdictFallback, false
	}
	for _, r := range d.GPRs {
		if !deadRegs.Has(r) {
			return VerdictFallback, false
		}
	}
	for _, f := range d.Flags {
		if !deadFlags.Has(f) {
			return VerdictFallback, false
		}
	}
	exact = len(d.GPRs) == 0 && len(d.Flags) == 0
	if d.Output {
		return VerdictSDC, exact
	}
	return VerdictBenign, exact
}

// DeadSets computes the registers and flags whose corruption at the static
// location (fn, idx) — the golden boundary pc — the downstream execution
// provably never observes. A GPR is dead only when the intra-function
// dataflow (CallPreserves: liveness flows through calls untouched, the safe
// direction for deadness) reports it not live at idx, the function performs
// no calls (so no callee could read it before redefinition), and no other
// function in the program mentions it at all (so no later-executing code —
// including the caller after ret — can read it). Flags need no such escape
// condition: FlagsRead models call and ret as reading every flag, so a flag
// that could cross the function boundary is already live.
func DeadSets(prog *asm.Program, fn string, idx int) (liveness.RegSet, liveness.FlagSet) {
	f := prog.Func(fn)
	if f == nil {
		return 0, 0
	}
	var deadR liveness.RegSet
	hasCall := false
	for _, in := range f.Insts {
		if in.Op == asm.CALL {
			hasCall = true
			break
		}
	}
	if !hasCall {
		if live, ok := liveness.AnalyzeCalls(f, liveness.CallPreserves).LiveAt(idx); ok {
			var others liveness.RegSet
			for _, g := range prog.Funcs {
				if g.Name != fn {
					others.Union(liveness.UsedGPRs(g))
				}
			}
			for r := asm.RNone + 1; r < asm.NumReg; r++ {
				if !live.Has(r) && !others.Has(r) {
					deadR.Add(r)
				}
			}
		}
	}
	var deadF liveness.FlagSet
	if live, ok := liveness.AnalyzeFlags(f).LiveAt(idx); ok {
		for fb := asm.Flag(0); fb < asm.NumFlag; fb++ {
			if !live.Has(fb) {
				deadF.Add(fb)
			}
		}
	}
	return deadR, deadF
}

// Mix folds words into one fnv-64a digest; the building block for every
// fingerprint in this package.
func Mix(vals ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vals {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		buf[4] = byte(v >> 32)
		buf[5] = byte(v >> 40)
		buf[6] = byte(v >> 48)
		buf[7] = byte(v >> 56)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// SectionSeed derives a section-local RNG seed from the campaign seed and
// the section's site range. Deterministic in the section identity, not its
// ordinal, so inserting a section upstream does not reshuffle the plans of
// the sections after it.
func SectionSeed(seed int64, start, end uint64) int64 {
	return int64(Mix(uint64(seed), start, end, 0x5ec7105eed))
}

// Alloc splits a total sample budget across sections proportionally to
// their weights (site counts) by largest remainder, so the per-section
// budgets always sum exactly to total. Zero-weight sections get zero.
func Alloc(total int, weights []uint64) []int {
	n := make([]int, len(weights))
	if total <= 0 || len(weights) == 0 {
		return n
	}
	var sum uint64
	for _, w := range weights {
		sum += w
	}
	if sum == 0 {
		return n
	}
	given := 0
	rems := make([]uint64, len(weights))
	for i, w := range weights {
		q := uint64(total) * w
		n[i] = int(q / sum)
		rems[i] = q % sum
		given += n[i]
	}
	for given < total {
		best := -1
		for i, r := range rems {
			if weights[i] == 0 {
				continue
			}
			if best < 0 || r > rems[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		n[best]++
		rems[best] = 0
		given++
	}
	return n
}

// CodeDigest fingerprints the code of the named functions: each function's
// name followed by the rendered text of its instructions. Rendered text is
// the right granularity — it captures opcodes, operands, labels and
// provenance-free structure while staying stable across process runs.
func CodeDigest(prog *asm.Program, fns []string) uint64 {
	h := fnv.New64a()
	for _, name := range fns {
		f := prog.Func(name)
		if f == nil {
			continue
		}
		h.Write([]byte(f.Name))
		h.Write([]byte{0})
		for _, in := range f.Insts {
			for _, l := range in.Labels {
				h.Write([]byte(l))
				h.Write([]byte{':'})
			}
			h.Write([]byte(in.String()))
			h.Write([]byte{'\n'})
		}
	}
	return h.Sum64()
}

// FnsInRange returns the (deduplicated, first-execution-ordered) names of
// the functions whose golden execution overlaps the site range [start, end).
// Spans are conservative: a span touching the range at either edge counts,
// so zero-site functions executing inside a section still pin that section's
// fingerprint to their code.
func FnsInRange(spans []machine.FnSpan, start, end uint64) []string {
	var fns []string
	seen := map[string]bool{}
	for _, sp := range spans {
		if sp.Start > end || sp.End < start {
			continue
		}
		if !seen[sp.Fn] {
			seen[sp.Fn] = true
			fns = append(fns, sp.Fn)
		}
	}
	return fns
}

// OutputDigest fingerprints an output stream.
func OutputDigest(out []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range out {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		buf[4] = byte(v >> 32)
		buf[5] = byte(v >> 40)
		buf[6] = byte(v >> 48)
		buf[7] = byte(v >> 56)
		h.Write(buf[:])
	}
	return h.Sum64()
}
