package compose

import (
	"sync"

	"ferrum/internal/obs"
)

// Class grades how robust a cached plan result is to program edits outside
// its own section.
type Class uint8

const (
	// ClassLocal results are valid whenever the section key matches: the
	// plan terminated inside the section (crash, detect, hang), or reached
	// the boundary with bit-exact clean machine state — Benign if the output
	// prefix matched golden, SDC if it differed (the downstream, whatever it
	// now is, appends the same suffix to both prefixes).
	ClassLocal Class = iota
	// ClassOutput results exited the program early (OutcomeOK) inside the
	// section. The stored OutDigest fingerprints the faulty final output;
	// at reuse time the plan is Benign iff that digest equals the current
	// golden output digest, else SDC — so the entry survives golden-output
	// changes instead of being invalidated by them.
	ClassOutput
	// ClassGlobal results depended on downstream context: a boundary verdict
	// tolerated via dead registers/flags (deadness is a property of the
	// downstream code) or an end-to-end fallback run. They are valid only
	// while the whole-program digest matches Table.GlobalDigest.
	ClassGlobal
)

// CachedPlan is one plan's recorded result in a section propagation table.
// Site/Bit double-check plan identity — the section key already pins the
// seeded plan sequence, so a mismatch means a bug, not a stale entry.
type CachedPlan struct {
	Site      uint64
	Bit       uint16
	Outcome   uint8
	Lat       float64
	HasLat    bool
	Fallback  bool
	// Boundary marks a plan resolved at the section boundary; Lat then
	// stores only the injection→boundary distance, and the serving campaign
	// adds the CURRENT golden tail (golden cycles − section exit cycles),
	// because the tail depends on downstream code the entry stays valid
	// across.
	Boundary bool
	Class     Class
	OutDigest uint64
}

// Table is one section's propagation table: the per-plan results, plus the
// whole-program digest its ClassGlobal entries were measured under.
type Table struct {
	GlobalDigest uint64
	Plans        []CachedPlan
}

// Cache maps section fingerprints to propagation tables. It is safe for
// concurrent use and follows the BuildCache counter idiom: counters start
// standalone so an unobserved cache still counts, and Observe rebinds them
// into a registry.
type Cache struct {
	mu     sync.Mutex
	tables map[uint64]*Table

	sectionHits   *obs.Counter
	sectionMisses *obs.Counter
	plansServed   *obs.Counter
}

// NewCache returns an empty section-table cache.
func NewCache() *Cache {
	return &Cache{
		tables:        map[uint64]*Table{},
		sectionHits:   &obs.Counter{},
		sectionMisses: &obs.Counter{},
		plansServed:   &obs.Counter{},
	}
}

// Get looks up a section table by fingerprint, counting the hit or miss.
// The returned table is shared and must be treated as immutable.
func (c *Cache) Get(key uint64) *Table {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	t := c.tables[key]
	if t != nil {
		c.sectionHits.Add(1)
	} else {
		c.sectionMisses.Add(1)
	}
	c.mu.Unlock()
	return t
}

// Put stores a freshly measured section table. The cache takes ownership.
func (c *Cache) Put(key uint64, t *Table) {
	if c == nil || t == nil {
		return
	}
	c.mu.Lock()
	c.tables[key] = t
	c.mu.Unlock()
}

// Served counts plans answered from cached tables instead of executed.
func (c *Cache) Served(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.plansServed.Add(int64(n))
}

// Len reports the number of cached section tables.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tables)
}

// Clone returns an independent cache holding the same (shared, immutable)
// tables with fresh zero counters. Benchmarks use it to replay a warm cache
// without the replay's own insertions leaking into the next iteration.
func (c *Cache) Clone() *Cache {
	nc := NewCache()
	if c == nil {
		return nc
	}
	c.mu.Lock()
	for k, t := range c.tables {
		nc.tables[k] = t
	}
	c.mu.Unlock()
	return nc
}

// Observe rebinds the cache's counters to the observer's registry under the
// canonical compose.cache_* names, carrying accumulated counts across. Must
// not race with cache use; the harness calls it while wiring Options.
func (c *Cache) Observe(o *obs.Observer) {
	if c == nil || o == nil || o.Reg == nil {
		return
	}
	rebind := func(dst **obs.Counter, name string) {
		reg := o.Reg.Counter(name)
		if *dst == reg {
			return
		}
		reg.Add((*dst).Load())
		*dst = reg
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rebind(&c.sectionHits, obs.MComposeSectionHits)
	rebind(&c.sectionMisses, obs.MComposeSectionMisses)
	rebind(&c.plansServed, obs.MComposePlansServed)
}

// Stats is a snapshot of the cache's counters for tests and summaries.
type Stats struct {
	SectionHits   int
	SectionMisses int
	PlansServed   int
}

// CacheStats snapshots the counters.
func (c *Cache) CacheStats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		SectionHits:   int(c.sectionHits.Load()),
		SectionMisses: int(c.sectionMisses.Load()),
		PlansServed:   int(c.plansServed.Load()),
	}
}
