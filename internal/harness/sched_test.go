package harness

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ferrum/internal/obs"
)

// TestSchedulerDeterminism: rendered tables must be byte-identical whatever
// the cell-worker count — fault plans are pre-generated per cell from the
// seed and results land in per-cell slots, so parallelism can only change
// wall-clock, never a byte of output.
func TestSchedulerDeterminism(t *testing.T) {
	base := Options{Samples: 80, Seed: 7, Benchmarks: []string{"bfs", "knn"}}

	serial := base
	serial.CellWorkers = 1
	parallel := base
	parallel.CellWorkers = 8

	r1, err := Fig10(serial)
	if err != nil {
		t.Fatal(err)
	}
	rN, err := Fig10(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := RenderFig10(r1), RenderFig10(rN); a != b {
		t.Errorf("Fig10 output differs between cell-workers=1 and 8:\n%s\n---\n%s", a, b)
	}

	g1, err := Gap(serial)
	if err != nil {
		t.Fatal(err)
	}
	gN, err := Gap(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := RenderGap(g1), RenderGap(gN); a != b {
		t.Errorf("Gap output differs between cell-workers=1 and 8:\n%s\n---\n%s", a, b)
	}
}

// TestBuildCacheCounts: a shared cache across a two-experiment run performs
// each (benchmark, technique, optimize) build exactly once. Fig11 populates
// builds and goldens (4 techniques × 1 benchmark); Fig10 then reuses every
// build without a single new compilation.
func TestBuildCacheCounts(t *testing.T) {
	cache := NewBuildCache()
	opts := Options{
		Samples: 60, Seed: 9, Benchmarks: []string{"bfs"},
		Cache: cache, CellWorkers: 4,
	}

	if _, err := Fig11(opts); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.BuildMisses != 4 || st.BuildHits != 0 {
		t.Errorf("after Fig11: builds = %d misses, %d hits; want 4, 0", st.BuildMisses, st.BuildHits)
	}
	if st.GoldenMisses != 4 || st.GoldenHits != 0 {
		t.Errorf("after Fig11: goldens = %d misses, %d hits; want 4, 0", st.GoldenMisses, st.GoldenHits)
	}

	if _, err := Fig10(opts); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.BuildMisses != 4 {
		t.Errorf("Fig10 recompiled: %d build misses, want still 4", st.BuildMisses)
	}
	if st.BuildHits != 4 {
		t.Errorf("Fig10 after Fig11: %d build hits, want 4", st.BuildHits)
	}

	// A second Fig11 answers entirely from the golden cache.
	if _, err := Fig11(opts); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.GoldenMisses != 4 || st.GoldenHits != 4 {
		t.Errorf("repeat Fig11: goldens = %d misses, %d hits; want 4, 4", st.GoldenMisses, st.GoldenHits)
	}
}

// TestPrivateCachePerCall: without an explicit cache each call builds its
// own, so results stay correct (no sharing assertions, just behaviour).
func TestPrivateCachePerCall(t *testing.T) {
	opts := Options{Samples: 60, Seed: 9, Benchmarks: []string{"bfs"}}
	a, err := Fig11(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig11(opts)
	if err != nil {
		t.Fatal(err)
	}
	if RenderFig11(a) != RenderFig11(b) {
		t.Error("repeated Fig11 calls with private caches differ")
	}
}

// TestProgressEvents: every cell emits one start and one completion event,
// and completion events carry wall-clock and injection counts.
func TestProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []CellEvent
	opts := Options{
		Samples: 50, Seed: 11, Benchmarks: []string{"bfs"}, CellWorkers: 4,
		Progress: func(ev CellEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	if _, err := Fig10(opts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	starts, dones, injections := 0, 0, 0
	for _, ev := range events {
		if ev.Experiment != "fig10" {
			t.Errorf("event experiment = %q", ev.Experiment)
		}
		if ev.Total != 4 {
			t.Errorf("event total = %d, want 4 cells", ev.Total)
		}
		if !strings.Contains(ev.Cell, "bfs/") {
			t.Errorf("cell name = %q", ev.Cell)
		}
		if ev.Done {
			dones++
			injections += ev.Injections
			if ev.Wall <= 0 {
				t.Errorf("completed cell %q has no wall-clock", ev.Cell)
			}
			if ev.Err != nil {
				t.Errorf("cell %q failed: %v", ev.Cell, ev.Err)
			}
		} else {
			starts++
		}
	}
	if starts != 4 || dones != 4 {
		t.Errorf("events = %d starts, %d dones; want 4, 4", starts, dones)
	}
	if injections != 4*50 {
		t.Errorf("injections = %d, want %d", injections, 4*50)
	}
}

// TestProgressOrderingConcurrent: under concurrent cells, every cell's
// start event arrives before its completion event, and callbacks are
// serialised through the scheduler's progressMu — the callback body never
// runs concurrently with itself, so implementations need no locking.
func TestProgressOrderingConcurrent(t *testing.T) {
	var inCallback atomic.Int32
	started := map[string]int{}
	finished := map[string]int{}
	opts := Options{
		Samples: 40, Seed: 3, Benchmarks: []string{"bfs", "knn"}, CellWorkers: 8,
		Progress: func(ev CellEvent) {
			if inCallback.Add(1) != 1 {
				t.Error("Progress callback ran concurrently with itself")
			}
			defer inCallback.Add(-1)
			if ev.Done {
				if started[ev.Cell] != 1 {
					t.Errorf("cell %q finished with %d start events", ev.Cell, started[ev.Cell])
				}
				finished[ev.Cell]++
			} else {
				if finished[ev.Cell] != 0 {
					t.Errorf("cell %q started after finishing", ev.Cell)
				}
				started[ev.Cell]++
			}
		},
	}
	if _, err := Fig10(opts); err != nil {
		t.Fatal(err)
	}
	if len(started) != 8 || len(finished) != 8 {
		t.Errorf("cells = %d started, %d finished; want 8, 8 (2 benches × 4 techniques)",
			len(started), len(finished))
	}
	for cell, n := range finished {
		if n != 1 || started[cell] != 1 {
			t.Errorf("cell %q: %d starts, %d finishes; want exactly 1 each", cell, started[cell], n)
		}
	}
}

// TestObserverCounters: an injected observer ends a suite with a registry
// whose sched.* and fi.* counters reconcile with each other and with the
// legacy CacheStats adapter.
func TestObserverCounters(t *testing.T) {
	ob := obs.New()
	opts := Options{
		Samples: 50, Seed: 5, Benchmarks: []string{"bfs"}, CellWorkers: 4, Obs: ob,
	}
	if _, err := Fig10(opts); err != nil {
		t.Fatal(err)
	}
	s := ob.Reg.Snapshot()
	if s.Counters[obs.MCells] != 4 {
		t.Errorf("sched.cells = %d, want 4", s.Counters[obs.MCells])
	}
	if s.Counters[obs.MInjections] != 200 || s.Counters[obs.MPlans] != 200 {
		t.Errorf("injections = %d, plans = %d; want 200, 200",
			s.Counters[obs.MInjections], s.Counters[obs.MPlans])
	}
	if s.Counters[obs.MCampaigns] != 4 {
		t.Errorf("fi.campaigns = %d, want 4", s.Counters[obs.MCampaigns])
	}
	var outcomes int64
	for _, o := range []string{"benign", "sdc", "detected", "crash", "hang"} {
		outcomes += s.Counters[obs.MOutcomePrefix+o]
	}
	if outcomes != 200 {
		t.Errorf("outcome counters sum to %d, want 200", outcomes)
	}
	if got := s.Counters[obs.MBuildMisses]; got != 4 {
		t.Errorf("cache.build_misses = %d, want 4", got)
	}
	// Spans exist for every phase the cells went through.
	byName := map[string]int{}
	for _, sp := range ob.Trace.Spans() {
		byName[sp.Name]++
	}
	for _, name := range []string{"cell", "build", "golden", "inject"} {
		if byName[name] != 4 {
			t.Errorf("%d %q spans, want 4 (one per cell)", byName[name], name)
		}
	}
	for _, sp := range ob.Trace.Spans() {
		if sp.Name == "cell" && sp.Lane == 0 {
			t.Errorf("cell %q ran on lane 0; cells belong to worker lanes >= 1", sp.Cell)
		}
	}
	// Histogram sanity: one cell-wall observation per cell.
	if h := s.Hists[obs.HCellWallMS]; h.Count != 4 {
		t.Errorf("cell wall histogram count = %d, want 4", h.Count)
	}
}

// TestSeedZeroHonest: seed 0 is a real seed, not an alias for the default —
// the regression was Options.withDefaults silently replacing 0 with
// DefaultSeed, so `reprod -seed 0` ran a different experiment than asked.
func TestSeedZeroHonest(t *testing.T) {
	o := Options{Seed: 0}.withDefaults()
	if o.Seed != 0 {
		t.Fatalf("withDefaults rewrote seed 0 to %d", o.Seed)
	}
	zero, err := Options{Benchmarks: []string{"bfs"}, Seed: 0}.withDefaults().instances()
	if err != nil {
		t.Fatal(err)
	}
	def, err := Options{Benchmarks: []string{"bfs"}, Seed: DefaultSeed}.withDefaults().instances()
	if err != nil {
		t.Fatal(err)
	}
	same := len(zero[0].Words) == len(def[0].Words)
	if same {
		for i := range zero[0].Words {
			if zero[0].Words[i] != def[0].Words[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seed 0 produced the DefaultSeed memory image; zero is not being honoured")
	}
}

// TestSchedulerErrorLowestIndex: the parallel scheduler reports the same
// error a serial sweep would have hit first.
func TestSchedulerErrorLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		opts := Options{Samples: 40, Seed: 1, CellWorkers: workers}.withDefaults()
		s := newScheduler("test", opts)
		var cells []cellSpec
		for i := 0; i < 8; i++ {
			cells = append(cells, cellSpec{
				name: "cell",
				run: func(*cellCtx) error {
					if i >= 3 {
						return fmt.Errorf("cell %d failed", i)
					}
					return nil
				},
			})
		}
		err := s.run(cells)
		if err == nil || err.Error() != "cell 3 failed" {
			t.Errorf("workers=%d: err = %v, want cell 3 failed", workers, err)
		}
	}
}
