package harness

import (
	"fmt"
	"io"
	"strings"

	"ferrum/internal/fi"
)

// RenderCampaign prints one campaign's result table: the outcome
// distribution, the SDC rate with its 95% CI, and the per-outcome
// detection-latency summary when latencies were recorded. fidi prints it
// for local runs and the fiserve coordinator prints it for merged sharded
// runs, so a distributed campaign's table is string-for-string the
// single-process one.
func RenderCampaign(w io.Writer, technique, level string, res fi.Result) {
	fmt.Fprintf(w, "technique: %s, level: %s, samples: %d, dynamic sites: %d\n",
		technique, level, res.Samples, res.DynSites)
	for _, o := range []fi.Outcome{fi.Benign, fi.SDC, fi.Detected, fi.Crash, fi.Hang} {
		fmt.Fprintf(w, "  %-9s %5d  (%.1f%%)\n", o, res.Count(o), res.Rate(o)*100)
	}
	lo, hi := res.CI95()
	fmt.Fprintf(w, "SDC rate: %.3f  (95%% CI [%.3f, %.3f])\n", res.SDCRate(), lo, hi)
	if res.Latency.N() > 0 {
		fmt.Fprintf(w, "detection latency (%s):\n", res.Latency.Unit)
		for _, o := range []fi.Outcome{fi.Benign, fi.SDC, fi.Detected, fi.Crash, fi.Hang} {
			h := res.Latency.Hist(o)
			if h.N == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-9s n=%-5d mean=%-8.0f p50<=%-8.0f p90<=%-8.0f max=%.0f\n",
				o, h.N, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Max)
		}
	}
}

// table is a small text-table builder with right-padded columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// RenderFig10 renders the SDC-coverage figure as a text table with bars.
func RenderFig10(rows []Fig10Row) string {
	t := &table{header: []string{"benchmark", "raw SDC", "technique", "coverage", ""}}
	means := map[Technique]float64{}
	for _, r := range rows {
		first := true
		for _, tech := range Techniques {
			cov := r.Coverage[tech]
			means[tech] += cov
			name, raw := "", ""
			if first {
				name, raw = r.Benchmark, pct(r.RawSDCRate)
				first = false
			}
			t.add(name, raw, string(tech), pct(cov), bar(cov, 30))
		}
	}
	var b strings.Builder
	b.WriteString("Fig. 10 — SDC coverage per benchmark and technique\n")
	b.WriteString("(coverage = (SDC_raw - SDC_prot) / SDC_raw, assembly-level injection)\n\n")
	b.WriteString(t.String())
	if len(rows) > 0 {
		b.WriteString("\naverages: ")
		for i, tech := range Techniques {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", tech, pct(means[tech]/float64(len(rows))))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderLatency renders the detection-latency table from the fig. 10
// campaigns: machine cycles between fault injection and the terminal event,
// per benchmark, technique, and outcome class. Short latencies mean the
// detector (or the fault's own crash) fired close to the corruption — the
// window a recovery scheme has to contain it. Bucketed quantiles are upper
// bounds (p50<= is the smallest power-of-two bucket covering the median).
func RenderLatency(rows []Fig10Row) string {
	t := &table{header: []string{"benchmark", "technique", "outcome", "n", "mean", "p50<=", "p90<=", "max"}}
	outcomes := []fi.Outcome{fi.Detected, fi.Crash, fi.Hang}
	for _, r := range rows {
		name := r.Benchmark
		for _, tech := range append([]Technique{Raw}, Techniques...) {
			res, ok := r.Counts[tech]
			if !ok {
				continue
			}
			for _, o := range outcomes {
				h := res.Latency.Hist(o)
				if h.N == 0 {
					continue
				}
				t.add(name, string(tech), o.String(), fmt.Sprintf("%d", h.N),
					fmt.Sprintf("%.0f", h.Mean()),
					fmt.Sprintf("%.0f", h.Quantile(0.5)),
					fmt.Sprintf("%.0f", h.Quantile(0.9)),
					fmt.Sprintf("%.0f", h.Max))
				name = ""
			}
		}
	}
	var b strings.Builder
	b.WriteString("Detection latency — cycles from injection to terminal event\n")
	b.WriteString("(executed faults only; unit: machine cycles, assembly-level injection)\n\n")
	if len(t.rows) == 0 {
		b.WriteString("no injected faults reached a terminal event\n")
		return b.String()
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderFig11 renders the runtime-overhead figure.
func RenderFig11(rows []Fig11Row) string {
	maxOv := 0.0
	for _, r := range rows {
		for _, tech := range Techniques {
			if r.Overhead[tech] > maxOv {
				maxOv = r.Overhead[tech]
			}
		}
	}
	if maxOv == 0 {
		maxOv = 1
	}
	t := &table{header: []string{"benchmark", "raw cycles", "technique", "overhead", ""}}
	means := map[Technique]float64{}
	for _, r := range rows {
		first := true
		for _, tech := range Techniques {
			ov := r.Overhead[tech]
			means[tech] += ov
			name, raw := "", ""
			if first {
				name, raw = r.Benchmark, fmt.Sprintf("%.0f", r.RawCycles)
				first = false
			}
			t.add(name, raw, string(tech), pct(ov), bar(ov/maxOv, 30))
		}
	}
	var b strings.Builder
	b.WriteString("Fig. 11 — runtime performance overhead per benchmark and technique\n")
	b.WriteString("(overhead = (cycles_prot - cycles_raw) / cycles_raw, machine cycle model)\n\n")
	b.WriteString(t.String())
	if len(rows) > 0 {
		b.WriteString("\naverages: ")
		for i, tech := range Techniques {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", tech, pct(means[tech]/float64(len(rows))))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTable1 renders the technique capability matrix.
func RenderTable1() string {
	m := Table1()
	header := []string{"technique"}
	for _, c := range InstClasses {
		header = append(header, string(c))
	}
	t := &table{header: header}
	for _, tech := range Techniques {
		row := []string{string(tech)}
		for _, c := range InstClasses {
			row = append(row, m[tech][c])
		}
		t.add(row...)
	}
	return "Table I — FERRUM and baseline techniques\n\n" + t.String()
}

// RenderTable2 renders the benchmark-details table.
func RenderTable2(rows []Table2Row) string {
	t := &table{header: []string{"benchmark", "suite", "domain", "IR insts", "asm insts"}}
	for _, r := range rows {
		t.add(r.Benchmark, r.Suite, r.Domain,
			fmt.Sprintf("%d", r.IRInsts), fmt.Sprintf("%d", r.StaticInsts))
	}
	return "Table II — details of benchmarks\n\n" + t.String()
}

// RenderExecTime renders the §IV-B3 transform-time measurement.
func RenderExecTime(rows []ExecTimeRow) string {
	t := &table{header: []string{"benchmark", "static insts", "transform time",
		"simd-enabled", "general", "comparisons", "batches"}}
	var total float64
	for _, r := range rows {
		total += r.Duration.Seconds()
		t.add(r.Benchmark, fmt.Sprintf("%d", r.StaticInsts), r.Duration.String(),
			fmt.Sprintf("%d", r.SIMDEnabled), fmt.Sprintf("%d", r.General),
			fmt.Sprintf("%d", r.Comparisons), fmt.Sprintf("%d", r.Batches))
	}
	var b strings.Builder
	b.WriteString("§IV-B3 — time to execute FERRUM (compile-time transform)\n\n")
	b.WriteString(t.String())
	if len(rows) > 0 {
		fmt.Fprintf(&b, "\naverage: %.6fs across %d benchmarks\n",
			total/float64(len(rows)), len(rows))
	}
	return b.String()
}

// RenderGap renders the anticipated-vs-measured coverage gap for
// IR-LEVEL-EDDI.
func RenderGap(rows []GapRow) string {
	t := &table{header: []string{"benchmark", "anticipated (IR FI)", "measured (asm FI)", "gap"}}
	var totalGap float64
	for _, r := range rows {
		totalGap += r.Gap
		t.add(r.Benchmark, pct(r.Anticipated), pct(r.Measured), pct(r.Gap))
	}
	var b strings.Builder
	b.WriteString("Cross-layer gap — IR-LEVEL-EDDI anticipated vs. measured SDC coverage\n\n")
	b.WriteString(t.String())
	if len(rows) > 0 {
		fmt.Fprintf(&b, "\naverage gap: %s\n", pct(totalGap/float64(len(rows))))
	}
	return b.String()
}
