package harness

import (
	"sync"

	"ferrum/internal/compose"
	"ferrum/internal/obs"
	"ferrum/internal/rodinia"
)

// buildKey identifies one memoisable build: the benchmark inputs are fully
// determined by (benchmark, scale, seed) and the binary by the technique
// and optimisation level on top of that.
type buildKey struct {
	bench    string
	scale    int
	seed     int64
	tech     Technique
	optimize bool
}

type instKey struct {
	bench string
	scale int
	seed  int64
}

// BuildCache memoises benchmark instantiation, per-technique builds, and
// golden runs across experiment functions. Sharing one cache across a whole
// `reprod -exp all` invocation (Options.Cache) makes each (benchmark,
// technique, optimize) build happen exactly once no matter how many
// experiments need it; the hit/miss counters prove it in the suite summary.
//
// A BuildCache is safe for concurrent use: concurrent cells asking for the
// same key block on a single computation (sync.Once per entry) instead of
// duplicating work. Cached values — instances, builds, golden outputs — are
// treated as immutable by every consumer.
type BuildCache struct {
	mu      sync.Mutex
	insts   map[instKey]*instEntry
	builds  map[buildKey]*buildEntry
	goldens map[buildKey]*goldenEntry
	// sections memoises compositional campaigns' per-section propagation
	// tables (keyed by section content fingerprint inside the compose
	// cache). It rides in the BuildCache so one suite-wide cache gives every
	// experiment both build reuse and section reuse.
	sections *compose.Cache

	// Hit/miss counters. They start as standalone obs counters so an
	// unobserved cache still counts; Observe rebinds them to a registry,
	// which is where the suite summary and the NDJSON metrics record read
	// them from. CacheStats remains as a thin read adapter.
	instances    *obs.Counter
	buildHits    *obs.Counter
	buildMisses  *obs.Counter
	goldenHits   *obs.Counter
	goldenMisses *obs.Counter
}

type instEntry struct {
	once sync.Once
	inst *rodinia.Instance
	err  error
}

type buildEntry struct {
	once  sync.Once
	build *Build
	err   error
}

type goldenEntry struct {
	once sync.Once
	g    golden
	err  error
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{
		insts:        map[instKey]*instEntry{},
		builds:       map[buildKey]*buildEntry{},
		goldens:      map[buildKey]*goldenEntry{},
		sections:     compose.NewCache(),
		instances:    &obs.Counter{},
		buildHits:    &obs.Counter{},
		buildMisses:  &obs.Counter{},
		goldenHits:   &obs.Counter{},
		goldenMisses: &obs.Counter{},
	}
}

// Observe rebinds the cache's counters to the observer's registry under the
// canonical cache.* names, carrying any counts accumulated so far across.
// Idempotent for a given observer (the registry memoises by name); must not
// be called concurrently with cache use — the harness wires it up in
// Options.withDefaults, before any cells run.
func (c *BuildCache) Observe(o *obs.Observer) {
	if o == nil || o.Reg == nil {
		return
	}
	rebind := func(dst **obs.Counter, name string) {
		reg := o.Reg.Counter(name)
		if *dst == reg {
			return
		}
		reg.Add((*dst).Load())
		*dst = reg
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rebind(&c.instances, obs.MInstances)
	rebind(&c.buildHits, obs.MBuildHits)
	rebind(&c.buildMisses, obs.MBuildMisses)
	rebind(&c.goldenHits, obs.MGoldenHits)
	rebind(&c.goldenMisses, obs.MGoldenMisses)
	c.sections.Observe(o)
}

// Sections returns the cache's compose section-table cache.
func (c *BuildCache) Sections() *compose.Cache {
	if c == nil {
		return nil
	}
	return c.sections
}

// CacheStats is a snapshot of the cache's hit/miss counters. Misses count
// distinct computations performed; hits count computations avoided.
type CacheStats struct {
	BuildHits    int
	BuildMisses  int
	GoldenHits   int
	GoldenMisses int
}

// Stats snapshots the counters. It is the legacy read adapter kept for
// callers that predate the obs registry; observed caches report the same
// values under the cache.* names in Registry.Snapshot.
func (c *BuildCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		BuildHits:    int(c.buildHits.Load()),
		BuildMisses:  int(c.buildMisses.Load()),
		GoldenHits:   int(c.goldenHits.Load()),
		GoldenMisses: int(c.goldenMisses.Load()),
	}
}

// instance returns the memoised benchmark instance for (bench, scale, seed).
func (c *BuildCache) instance(bench *rodinia.Benchmark, scale int, seed int64) (*rodinia.Instance, error) {
	key := instKey{bench.Name, scale, seed}
	c.mu.Lock()
	e, ok := c.insts[key]
	if !ok {
		e = &instEntry{}
		c.insts[key] = e
	}
	if !ok {
		c.instances.Add(1)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.inst, e.err = bench.Instantiate(scale, seed)
	})
	return e.inst, e.err
}

// build returns the memoised BuildTechniqueOpts result for the instance's
// key under the given technique and options.
func (c *BuildCache) build(inst *rodinia.Instance, scale int, seed int64, tech Technique, bo BuildOptions) (*Build, error) {
	key := buildKey{inst.Bench.Name, scale, seed, tech, bo.Optimize}
	c.mu.Lock()
	e, ok := c.builds[key]
	if !ok {
		e = &buildEntry{}
		c.builds[key] = e
	}
	if ok {
		c.buildHits.Add(1)
	} else {
		c.buildMisses.Add(1)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.build, e.err = BuildTechniqueOpts(inst.Mod, tech, bo)
	})
	return e.build, e.err
}

// golden returns the memoised golden run (cycles, dynamic instructions,
// output) of the instance's build under the given technique and options.
func (c *BuildCache) golden(inst *rodinia.Instance, scale int, seed int64, tech Technique, bo BuildOptions) (golden, error) {
	key := buildKey{inst.Bench.Name, scale, seed, tech, bo.Optimize}
	c.mu.Lock()
	e, ok := c.goldens[key]
	if !ok {
		e = &goldenEntry{}
		c.goldens[key] = e
	}
	if ok {
		c.goldenHits.Add(1)
	} else {
		c.goldenMisses.Add(1)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		var build *Build
		build, e.err = c.build(inst, scale, seed, tech, bo)
		if e.err != nil {
			return
		}
		e.g, e.err = runBuild(inst, build)
	})
	return e.g, e.err
}
