package harness

import (
	"testing"

	"ferrum/internal/ir"
	"ferrum/internal/machine"
)

// corpus is a set of small programs beyond the Rodinia suite, used to
// differential-test the full pipeline (interpreter vs. machine, raw vs.
// every protection technique) on diverse program shapes: sorting, number
// theory, searching, nested data structures and deep call chains.
var corpus = []struct {
	name string
	src  string
	args []uint64
	data map[uint64]uint64
	want []uint64
}{
	{
		name: "gcd",
		src: `
func @gcd(%a, %b) {
entry:
  %zero = icmp eq %b, 0
  br %zero, base, rec
base:
  ret %a
rec:
  %r = srem %a, %b
  %g = call @gcd(%b, %r)
  ret %g
}
func @main(%a, %b) {
entry:
  %g = call @gcd(%a, %b)
  out %g
  ret %g
}
`,
		args: []uint64{252, 105},
		want: []uint64{21},
	},
	{
		name: "bubblesort",
		src: `
func @main(%base, %n) {
entry:
  %iS = alloca 1
  %jS = alloca 1
  store 0, %iS
  br outer
outer:
  %i = load %iS
  %n1 = sub %n, 1
  %oc = icmp slt %i, %n1
  br %oc, inner_init, emit
inner_init:
  store 0, %jS
  br inner
inner:
  %j = load %jS
  %lim = sub %n1, %i
  %ic = icmp slt %j, %lim
  br %ic, body, onext
body:
  %pj = gep %base, %j
  %j1 = add %j, 1
  %pj1 = gep %base, %j1
  %vj = load %pj
  %vj1 = load %pj1
  %gt = icmp sgt %vj, %vj1
  br %gt, swap, nnext
swap:
  store %vj1, %pj
  store %vj, %pj1
  br nnext
nnext:
  %j2 = add %j, 1
  store %j2, %jS
  br inner
onext:
  %i2 = add %i, 1
  store %i2, %iS
  br outer
emit:
  store 0, %iS
  br eloop
eloop:
  %e = load %iS
  %ec = icmp slt %e, %n
  br %ec, ebody, done
ebody:
  %pe = gep %base, %e
  %ve = load %pe
  out %ve
  %e2 = add %e, 1
  store %e2, %iS
  br eloop
done:
  ret
}
`,
		args: []uint64{8192, 6},
		data: map[uint64]uint64{8192: 5, 8200: 2, 8208: 9, 8216: 1, 8224: 7, 8232: 2},
		want: []uint64{1, 2, 2, 5, 7, 9},
	},
	{
		name: "sieve",
		src: `
; count primes below n with a sieve of flags
func @main(%base, %n) {
entry:
  %iS = alloca 1
  %jS = alloca 1
  %cntS = alloca 1
  store 2, %iS
  br mark
mark:
  %i = load %iS
  %sq = mul %i, %i
  %mc = icmp sle %sq, %n
  br %mc, minner_init, count
minner_init:
  %pi = gep %base, %i
  %vi = load %pi
  %composite = icmp ne %vi, 0
  br %composite, mnext, minner
minner:
  %i2 = mul %i, %i
  store %i2, %jS
  br mloop
mloop:
  %j = load %jS
  %jc = icmp slt %j, %n
  br %jc, mbody, mnext
mbody:
  %pj = gep %base, %j
  store 1, %pj
  %j2 = add %j, %i
  store %j2, %jS
  br mloop
mnext:
  %i3 = load %iS
  %i4 = add %i3, 1
  store %i4, %iS
  br mark
count:
  store 0, %cntS
  store 2, %iS
  br cloop
cloop:
  %c = load %iS
  %cc = icmp slt %c, %n
  br %cc, cbody, done
cbody:
  %pc = gep %base, %c
  %vc = load %pc
  %isprime = icmp eq %vc, 0
  br %isprime, bump, cnext
bump:
  %cnt = load %cntS
  %cnt1 = add %cnt, 1
  store %cnt1, %cntS
  br cnext
cnext:
  %c2 = add %c, 1
  store %c2, %iS
  br cloop
done:
  %cntF = load %cntS
  out %cntF
  ret %cntF
}
`,
		args: []uint64{8192, 50},
		want: []uint64{15}, // primes below 50
	},
	{
		name: "binarysearch",
		src: `
func @main(%base, %n, %needle) {
entry:
  %loS = alloca 1
  %hiS = alloca 1
  %resS = alloca 1
  store 0, %loS
  store %n, %hiS
  store -1, %resS
  br loop
loop:
  %lo = load %loS
  %hi = load %hiS
  %c = icmp slt %lo, %hi
  br %c, body, done
body:
  %sum = add %lo, %hi
  %mid = ashr %sum, 1
  %pm = gep %base, %mid
  %vm = load %pm
  %eq = icmp eq %vm, %needle
  br %eq, found, narrow
found:
  store %mid, %resS
  br done
narrow:
  %lt = icmp slt %vm, %needle
  br %lt, goright, goleft
goright:
  %mid1 = add %mid, 1
  store %mid1, %loS
  br loop
goleft:
  store %mid, %hiS
  br loop
done:
  %res = load %resS
  out %res
  ret %res
}
`,
		args: []uint64{8192, 8, 23},
		data: map[uint64]uint64{8192: 2, 8200: 5, 8208: 9, 8216: 14, 8224: 23, 8232: 31, 8240: 44, 8248: 60},
		want: []uint64{4},
	},
	{
		name: "collatz",
		src: `
func @main(%n) {
entry:
  %curS = alloca 1
  %stepsS = alloca 1
  store %n, %curS
  store 0, %stepsS
  br loop
loop:
  %cur = load %curS
  %done = icmp sle %cur, 1
  br %done, finish, step
step:
  %parity = and %cur, 1
  %odd = icmp eq %parity, 1
  br %odd, odd3n1, even
odd3n1:
  %t = mul %cur, 3
  %t1 = add %t, 1
  store %t1, %curS
  br bump
even:
  %half = ashr %cur, 1
  store %half, %curS
  br bump
bump:
  %s = load %stepsS
  %s1 = add %s, 1
  store %s1, %stepsS
  br loop
finish:
  %sf = load %stepsS
  out %sf
  ret %sf
}
`,
		args: []uint64{27},
		want: []uint64{111},
	},
	{
		name: "matmul",
		src: `
; C = A*B for n x n matrices; layout A | B | C
func @main(%base, %n) {
entry:
  %iS = alloca 1
  %jS = alloca 1
  %kS = alloca 1
  %accS = alloca 1
  %csS = alloca 1
  %nsq = mul %n, %n
  %coff = mul %nsq, 2
  %bB = gep %base, %nsq
  %cB = gep %base, %coff
  store 0, %iS
  br iloop
iloop:
  %i = load %iS
  %ic = icmp slt %i, %n
  br %ic, jinit, checksum
jinit:
  store 0, %jS
  br jloop
jloop:
  %j = load %jS
  %jc = icmp slt %j, %n
  br %jc, kinit, inext
kinit:
  store 0, %kS
  store 0, %accS
  br kloop
kloop:
  %k = load %kS
  %kc = icmp slt %k, %n
  br %kc, kbody, cstore
kbody:
  %aIdx0 = mul %i, %n
  %aIdx = add %aIdx0, %k
  %pa = gep %base, %aIdx
  %va = load %pa
  %bIdx0 = mul %k, %n
  %bIdx = add %bIdx0, %j
  %pb = gep %bB, %bIdx
  %vb = load %pb
  %prod = mul %va, %vb
  %acc = load %accS
  %acc1 = add %acc, %prod
  store %acc1, %accS
  %k1 = add %k, 1
  store %k1, %kS
  br kloop
cstore:
  %cIdx0 = mul %i, %n
  %j0 = load %jS
  %cIdx = add %cIdx0, %j0
  %pc = gep %cB, %cIdx
  %accF = load %accS
  store %accF, %pc
  %j1 = add %j0, 1
  store %j1, %jS
  br jloop
inext:
  %i1 = add %i, 1
  store %i1, %iS
  br iloop
checksum:
  store 0, %csS
  store 0, %iS
  br csloop
csloop:
  %ci = load %iS
  %cc = icmp slt %ci, %nsq
  br %cc, csbody, done
csbody:
  %pcs = gep %cB, %ci
  %vcs = load %pcs
  %cs = load %csS
  %cs1 = mul %cs, 31
  %cs2 = add %cs1, %vcs
  store %cs2, %csS
  %ci1 = add %ci, 1
  store %ci1, %iS
  br csloop
done:
  %csF = load %csS
  out %csF
  ret %csF
}
`,
		args: []uint64{8192, 4},
		data: func() map[uint64]uint64 {
			m := map[uint64]uint64{}
			for i := 0; i < 32; i++ { // A and B
				m[8192+8*uint64(i)] = uint64(i%7 + 1)
			}
			return m
		}(),
		want: nil, // checked for agreement only
	},
}

// TestCorpusDifferential runs every corpus program through the IR
// interpreter, the raw machine build, and all three protected builds; all
// five executions must agree.
func TestCorpusDifferential(t *testing.T) {
	for _, tc := range corpus {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mod, err := ir.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			ip, err := ir.NewInterp(mod, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			for addr, v := range tc.data {
				if err := ip.WriteWordImage(addr, v); err != nil {
					t.Fatal(err)
				}
			}
			ires := ip.Run(ir.RunOpts{Args: tc.args})
			if ires.Outcome != ir.OutcomeOK {
				t.Fatalf("interp: %v (%s)", ires.Outcome, ires.CrashMsg)
			}
			if tc.want != nil {
				if len(ires.Output) != len(tc.want) {
					t.Fatalf("output %v, want %v", ires.Output, tc.want)
				}
				for i := range tc.want {
					if ires.Output[i] != tc.want[i] {
						t.Fatalf("output %v, want %v", ires.Output, tc.want)
					}
				}
			}
			for _, tech := range append([]Technique{Raw}, Techniques...) {
				build, err := BuildTechnique(mod, tech)
				if err != nil {
					t.Fatalf("%s: %v", tech, err)
				}
				m, err := machine.New(build.Prog, 1<<20)
				if err != nil {
					t.Fatal(err)
				}
				for addr, v := range tc.data {
					if err := m.WriteWordImage(addr, v); err != nil {
						t.Fatal(err)
					}
				}
				res := m.Run(machine.RunOpts{Args: tc.args})
				if res.Outcome != machine.OutcomeOK {
					t.Fatalf("%s: %v (%s)", tech, res.Outcome, res.CrashMsg)
				}
				if len(res.Output) != len(ires.Output) {
					t.Fatalf("%s: output %v vs interp %v", tech, res.Output, ires.Output)
				}
				for i := range res.Output {
					if res.Output[i] != ires.Output[i] {
						t.Fatalf("%s: output[%d] %d vs interp %d", tech, i, res.Output[i], ires.Output[i])
					}
				}
			}
		})
	}
}

// TestCorpusFerrumCoverage samples faults over every corpus program under
// FERRUM; no silent corruption is tolerated.
func TestCorpusFerrumCoverage(t *testing.T) {
	for _, tc := range corpus {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mod, err := ir.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			build, err := BuildTechnique(mod, Ferrum)
			if err != nil {
				t.Fatal(err)
			}
			m, err := machine.New(build.Prog, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			for addr, v := range tc.data {
				if err := m.WriteWordImage(addr, v); err != nil {
					t.Fatal(err)
				}
			}
			golden := m.Run(machine.RunOpts{Args: tc.args})
			if golden.Outcome != machine.OutcomeOK {
				t.Fatalf("golden: %v (%s)", golden.Outcome, golden.CrashMsg)
			}
			stride := golden.DynSites/150 + 1
			sdc := 0
			for site := uint64(0); site < golden.DynSites; site += stride {
				for _, bit := range []uint{1, 29, 60} {
					res := m.Run(machine.RunOpts{Args: tc.args,
						Fault: &machine.Fault{Site: site, Bit: bit}})
					if res.Outcome == machine.OutcomeOK {
						same := len(res.Output) == len(golden.Output)
						if same {
							for i := range res.Output {
								if res.Output[i] != golden.Output[i] {
									same = false
								}
							}
						}
						if !same {
							sdc++
						}
					}
				}
			}
			if sdc != 0 {
				t.Errorf("SDCs = %d, want 0", sdc)
			}
		})
	}
}
