package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ferrum/internal/fi"
	"ferrum/internal/obs"
)

// TestCellWatchdogTimeout: a wedged cell is canceled after CellTimeout and
// reported as ErrCellTimeout, while its sibling cells run to completion on
// the other workers.
func TestCellWatchdogTimeout(t *testing.T) {
	ob := obs.New()
	opts := Options{CellWorkers: 2, CellTimeout: 30 * time.Millisecond, Obs: ob}.withDefaults()
	s := newScheduler("wd", opts)
	var ok0, ok2 atomic.Bool
	cells := []cellSpec{
		{name: "ok0", run: func(cc *cellCtx) error { ok0.Store(true); return nil }},
		{name: "wedged", run: func(cc *cellCtx) error {
			if cc.cancel == nil {
				t.Error("CellTimeout set but the cell received no cancel channel")
				return nil
			}
			<-cc.cancel
			return fi.ErrCampaignCanceled
		}},
		{name: "ok2", run: func(cc *cellCtx) error { ok2.Store(true); return nil }},
	}
	err := s.run(cells)
	if !errors.Is(err, ErrCellTimeout) {
		t.Fatalf("err = %v, want ErrCellTimeout", err)
	}
	if !strings.Contains(err.Error(), "wedged") {
		t.Errorf("timeout error does not name the cell: %v", err)
	}
	if !ok0.Load() || !ok2.Load() {
		t.Errorf("siblings of the wedged cell did not complete: ok0=%v ok2=%v", ok0.Load(), ok2.Load())
	}
	snap := ob.Reg.Snapshot()
	if n := snap.Counters[obs.MSchedTimeouts]; n != 1 {
		t.Errorf("sched.timeouts = %d, want 1", n)
	}
}

// TestCellTimeoutNotRetried: a watchdog-canceled cell is not retried — a
// wedged cell would wedge again and hold its worker for another timeout.
func TestCellTimeoutNotRetried(t *testing.T) {
	ob := obs.New()
	opts := Options{CellWorkers: 1, CellTimeout: 20 * time.Millisecond, MaxRetries: 3, Obs: ob}.withDefaults()
	s := newScheduler("wd", opts)
	attempts := 0
	err := s.run([]cellSpec{{name: "wedged", run: func(cc *cellCtx) error {
		attempts++
		<-cc.cancel
		return fi.ErrCampaignCanceled
	}}})
	if !errors.Is(err, ErrCellTimeout) {
		t.Fatalf("err = %v, want ErrCellTimeout", err)
	}
	if attempts != 1 {
		t.Errorf("timed-out cell ran %d attempts, want 1", attempts)
	}
	snap := ob.Reg.Snapshot()
	if n := snap.Counters[obs.MSchedRetries]; n != 0 {
		t.Errorf("sched.retries = %d, want 0 for a timeout", n)
	}
	if n := snap.Counters[obs.MSchedTimeouts]; n != 1 {
		t.Errorf("sched.timeouts = %d, want 1", n)
	}
}

// TestCellRetry: a transiently failing cell is re-attempted up to MaxRetries
// times; success on a later attempt is success, exhaustion surfaces the
// error.
func TestCellRetry(t *testing.T) {
	ob := obs.New()
	opts := Options{CellWorkers: 1, MaxRetries: 2, RetryBackoff: time.Millisecond, Obs: ob}.withDefaults()
	s := newScheduler("retry", opts)
	tries := 0
	err := s.run([]cellSpec{{name: "flaky", run: func(cc *cellCtx) error {
		tries++
		if tries < 3 {
			return fmt.Errorf("transient failure %d", tries)
		}
		return nil
	}}})
	if err != nil {
		t.Fatalf("flaky cell failed despite retry budget: %v", err)
	}
	if tries != 3 {
		t.Errorf("flaky cell ran %d attempts, want 3", tries)
	}
	if n := ob.Reg.Snapshot().Counters[obs.MSchedRetries]; n != 2 {
		t.Errorf("sched.retries = %d, want 2", n)
	}

	ob2 := obs.New()
	opts2 := Options{CellWorkers: 1, MaxRetries: 1, Obs: ob2}.withDefaults()
	s2 := newScheduler("retry", opts2)
	attempts := 0
	err = s2.run([]cellSpec{{name: "dead", run: func(cc *cellCtx) error {
		attempts++
		return fmt.Errorf("permanent failure")
	}}})
	if err == nil || !strings.Contains(err.Error(), "permanent failure") {
		t.Fatalf("exhausted retries returned %v", err)
	}
	if attempts != 2 {
		t.Errorf("dead cell ran %d attempts, want 2 (1 + MaxRetries)", attempts)
	}
	if n := ob2.Reg.Snapshot().Counters[obs.MSchedRetries]; n != 1 {
		t.Errorf("sched.retries = %d, want 1", n)
	}
}

// TestWatchdogCancelsCampaign: the watchdog's cancel channel reaches the
// fi.Campaign batch loop through scheduler.campaign, so a real experiment
// cell whose budget expires is cut short and reported as a timeout.
func TestWatchdogCancelsCampaign(t *testing.T) {
	// Enough samples (and no checkpoint fast-forwarding) that every cell
	// outlives the armed watchdog by orders of magnitude, whatever the
	// interpreter's speed; the 1µs timeout then always cancels mid-campaign.
	opts := Options{
		Samples: 4000, Seed: 7, Benchmarks: []string{"bfs"},
		CellWorkers: 2, CellTimeout: time.Microsecond, NoCheckpoint: true,
	}
	_, err := Fig10(opts)
	if !errors.Is(err, ErrCellTimeout) {
		t.Fatalf("err = %v, want ErrCellTimeout", err)
	}
}

// crashSuiteJournal rewrites a completed suite journal as a crash would have
// left it: meta, the first keep plan records, no cell records, and a torn
// half-record at the tail.
func crashSuiteJournal(t *testing.T, path string, keep int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	kept := 0
	for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		var r struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		switch r.T {
		case "meta":
			out = append(out, line)
		case "plan":
			if kept < keep {
				out = append(out, line)
				kept++
			}
		}
	}
	if kept < keep {
		t.Fatalf("journal holds %d plan records, want >= %d", kept, keep)
	}
	body := strings.Join(out, "\n") + "\n" + `{"t":"plan","c":"fig10/bfs/raw","i":`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFig10JournalResume: the suite-level durable contract — a journaled
// Fig10 run killed mid-suite and resumed renders a byte-identical table,
// and a fully journaled suite resumes without re-running a single campaign.
func TestFig10JournalResume(t *testing.T) {
	baseOpts := func() Options {
		return Options{Samples: 40, Seed: 7, CellWorkers: 2, Benchmarks: []string{"bfs"}}
	}
	want, err := Fig10(baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	ref := RenderFig10(want)

	path := filepath.Join(t.TempDir(), "suite.ndjson")
	meta := fi.JournalMeta{Tool: "test", Exp: "fig10", Seed: 7, Samples: 40, Benchmarks: []string{"bfs"}}
	j, err := fi.CreateJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	o := baseOpts()
	o.Journal = j
	full, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if RenderFig10(full) != ref {
		t.Fatal("journaled run's table differs from the un-journaled baseline")
	}

	// Kill: keep 50 of the 160 plan records, lose every cell record, leave
	// a torn record at the tail.
	crashSuiteJournal(t, path, 50)

	ob := obs.New()
	st, j2, err := fi.ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.TornDropped {
		t.Error("torn tail not reported on resume")
	}
	if err := st.Meta.Check(meta); err != nil {
		t.Fatal(err)
	}
	o2 := baseOpts()
	o2.Journal, o2.Resume, o2.Obs = j2, st, ob
	got, err := Fig10(o2)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if RenderFig10(got) != ref {
		t.Errorf("resumed table is not byte-identical:\n%s\n---\n%s", RenderFig10(got), ref)
	}
	snap := ob.Reg.Snapshot()
	if n := snap.Counters[obs.MJournalSkippedPlans]; n != 50 {
		t.Errorf("journal.skipped_plans = %d, want 50", n)
	}
	if n := snap.Counters[obs.MPlans]; n != 160 {
		t.Errorf("resumed fi.plans = %d, want the uninterrupted total 160", n)
	}

	// Second resume: all four cells are complete now; the suite renders the
	// same table from cell records alone.
	ob3 := obs.New()
	st3, j3, err := fi.ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if complete, partial := st3.Cells(); complete != 4 || partial != 0 {
		t.Fatalf("cells = %d complete, %d partial; want 4, 0", complete, partial)
	}
	o3 := baseOpts()
	o3.Journal, o3.Resume, o3.Obs = j3, st3, ob3
	got3, err := Fig10(o3)
	if err != nil {
		t.Fatal(err)
	}
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
	if RenderFig10(got3) != ref {
		t.Error("fully journaled resume's table is not byte-identical")
	}
	snap3 := ob3.Reg.Snapshot()
	if n := snap3.Counters[obs.MJournalSkippedCells]; n != 4 {
		t.Errorf("journal.skipped_cells = %d, want 4", n)
	}
	if n := snap3.Counters[obs.MPlans]; n != 160 {
		t.Errorf("cell-replayed fi.plans = %d, want 160", n)
	}
	if n := snap3.Counters[obs.MCells]; n != 4 {
		t.Errorf("sched.cells = %d, want 4 (skipped cells still count as scheduled)", n)
	}
}
