package harness

import (
	"strings"
	"testing"

	"ferrum/internal/asm"
)

// Small, fast options for tests; the full 1000-sample campaigns run in
// cmd/reprod and the benchmark harness.
func testOpts(benchmarks ...string) Options {
	return Options{Samples: 120, Seed: 99, Benchmarks: benchmarks}
}

func TestBuildTechniqueAll(t *testing.T) {
	opts := testOpts("bfs").withDefaults()
	insts, err := opts.instances()
	if err != nil {
		t.Fatal(err)
	}
	inst := insts[0]
	for _, tech := range append([]Technique{Raw}, Techniques...) {
		build, err := BuildTechnique(inst.Mod, tech)
		if err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		if build.Prog == nil {
			t.Fatalf("%s: nil program", tech)
		}
		g, err := runBuild(inst, build)
		if err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		if g.cycles <= 0 || len(g.output) == 0 {
			t.Errorf("%s: golden = %+v", tech, g)
		}
	}
	if _, err := BuildTechnique(inst.Mod, Technique("bogus")); err == nil {
		t.Error("bogus technique accepted")
	}
}

func TestProtectedOutputsMatchRaw(t *testing.T) {
	opts := testOpts("pathfinder", "lud").withDefaults()
	insts, err := opts.instances()
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		rawBuild, err := BuildTechnique(inst.Mod, Raw)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := runBuild(inst, rawBuild)
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range Techniques {
			build, err := BuildTechnique(inst.Mod, tech)
			if err != nil {
				t.Fatalf("%s/%s: %v", inst.Bench.Name, tech, err)
			}
			g, err := runBuild(inst, build)
			if err != nil {
				t.Fatalf("%s/%s: %v", inst.Bench.Name, tech, err)
			}
			if len(g.output) != len(raw.output) {
				t.Fatalf("%s/%s: output length %d vs %d", inst.Bench.Name, tech, len(g.output), len(raw.output))
			}
			for i := range g.output {
				if g.output[i] != raw.output[i] {
					t.Errorf("%s/%s: output[%d] = %d, want %d",
						inst.Bench.Name, tech, i, g.output[i], raw.output[i])
				}
			}
			if g.cycles <= raw.cycles {
				t.Errorf("%s/%s: protection has no cost (%v <= %v)",
					inst.Bench.Name, tech, g.cycles, raw.cycles)
			}
		}
	}
}

func TestFig10SmallCampaign(t *testing.T) {
	rows, err := Fig10(testOpts("bfs", "kmeans"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RawSDCRate <= 0 {
			t.Errorf("%s: raw SDC rate = %v, expected positive", r.Benchmark, r.RawSDCRate)
		}
		// The paper's headline: FERRUM and Hybrid reach full coverage,
		// IR-level EDDI does not always.
		if got := r.Coverage[Ferrum]; got != 1 {
			t.Errorf("%s: FERRUM coverage = %v, want 1", r.Benchmark, got)
		}
		if got := r.Coverage[Hybrid]; got != 1 {
			t.Errorf("%s: Hybrid coverage = %v, want 1", r.Benchmark, got)
		}
		if got := r.Coverage[IREDDI]; got < 0 || got > 1 {
			t.Errorf("%s: IR-EDDI coverage out of range: %v", r.Benchmark, got)
		}
	}
	text := RenderFig10(rows)
	for _, needle := range []string{"Fig. 10", "bfs", "kmeans", "ferrum", "averages"} {
		if !strings.Contains(text, needle) {
			t.Errorf("render missing %q:\n%s", needle, text)
		}
	}
}

func TestFig11Overheads(t *testing.T) {
	rows, err := Fig11(testOpts("bfs", "pathfinder", "knn"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, tech := range Techniques {
			if r.Overhead[tech] <= 0 {
				t.Errorf("%s/%s: overhead = %v", r.Benchmark, tech, r.Overhead[tech])
			}
		}
		// The paper's ordering: FERRUM cheapest, Hybrid most expensive.
		if !(r.Overhead[Ferrum] < r.Overhead[IREDDI]) {
			t.Errorf("%s: FERRUM (%v) not cheaper than IR-EDDI (%v)",
				r.Benchmark, r.Overhead[Ferrum], r.Overhead[IREDDI])
		}
		if !(r.Overhead[IREDDI] < r.Overhead[Hybrid]) {
			t.Errorf("%s: IR-EDDI (%v) not cheaper than Hybrid (%v)",
				r.Benchmark, r.Overhead[IREDDI], r.Overhead[Hybrid])
		}
	}
	text := RenderFig11(rows)
	if !strings.Contains(text, "Fig. 11") || !strings.Contains(text, "averages") {
		t.Errorf("render broken:\n%s", text)
	}
}

func TestExecTime(t *testing.T) {
	rows, err := ExecTime(testOpts("bfs", "particlefilter"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var bfs, pf ExecTimeRow
	for _, r := range rows {
		switch r.Benchmark {
		case "bfs":
			bfs = r
		case "particlefilter":
			pf = r
		}
		if r.Duration <= 0 || r.StaticInsts <= 0 {
			t.Errorf("%+v", r)
		}
	}
	// §IV-B3: transform time scales with static instructions; the
	// particlefilter is the largest program.
	if pf.StaticInsts <= bfs.StaticInsts {
		t.Errorf("particlefilter (%d) should exceed bfs (%d)", pf.StaticInsts, bfs.StaticInsts)
	}
	text := RenderExecTime(rows)
	if !strings.Contains(text, "IV-B3") || !strings.Contains(text, "average") {
		t.Errorf("render broken:\n%s", text)
	}
}

func TestGapExperiment(t *testing.T) {
	rows, err := Gap(Options{Samples: 400, Seed: 5, Benchmarks: []string{"knn"}})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Anticipated coverage at IR level must be (near) perfect; measured
	// coverage at assembly level lower — the paper's 28% gap finding.
	if r.Anticipated < 0.95 {
		t.Errorf("anticipated coverage = %v, want >= 0.95", r.Anticipated)
	}
	if r.Gap <= 0 {
		t.Errorf("gap = %v, want positive", r.Gap)
	}
	text := RenderGap(rows)
	if !strings.Contains(text, "knn") || !strings.Contains(text, "average gap") {
		t.Errorf("render broken:\n%s", text)
	}
}

func TestTable1Static(t *testing.T) {
	m := Table1()
	if m[Ferrum][ClassComparison] != LevelAS2 {
		t.Error("FERRUM must cover comparisons at AS2")
	}
	if m[Hybrid][ClassBranch] != LevelIR || m[Hybrid][ClassComparison] != LevelIR {
		t.Error("Hybrid must cover branch/comparison at IR")
	}
	if m[IREDDI][ClassStore] != LevelNone {
		t.Error("IR-EDDI must not cover stores")
	}
	for _, tech := range Techniques {
		for _, c := range InstClasses {
			if m[tech][c] == "" {
				t.Errorf("missing cell %s/%s", tech, c)
			}
		}
	}
	if !strings.Contains(RenderTable1(), "Table I") {
		t.Error("render broken")
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Suite != "Rodinia" || r.Domain == "" || r.StaticInsts <= 0 || r.IRInsts <= 0 {
			t.Errorf("bad row %+v", r)
		}
	}
	text := RenderTable2(rows)
	if !strings.Contains(text, "Table II") || !strings.Contains(text, "particlefilter") {
		t.Errorf("render broken:\n%s", text)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Fig11(Options{Benchmarks: []string{"nope"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	o := Options{}.withDefaults()
	if o.Samples != 1000 || o.Scale != 1 || len(o.Benchmarks) != 8 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestProfileExperiment(t *testing.T) {
	rows, err := Profile(testOpts("bfs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // raw + 3 techniques
		t.Fatalf("rows = %d", len(rows))
	}
	byTech := map[Technique]ProfileRow{}
	for _, r := range rows {
		byTech[r.Technique] = r
	}
	// Raw is all program code except the two _start runtime instructions.
	if f := byTech[Raw].Fractions[asm.TagProgram]; f < 0.999 {
		t.Errorf("raw program fraction = %v, want ~1", f)
	}
	for _, tech := range Techniques {
		r := byTech[tech]
		if r.Fractions[asm.TagDup] <= 0 {
			t.Errorf("%s: no duplicate instructions attributed", tech)
		}
		if r.Fractions[asm.TagProgram] >= 1 {
			t.Errorf("%s: program fraction = %v", tech, r.Fractions[asm.TagProgram])
		}
	}
	// FERRUM stages results into SIMD registers; the hybrid does not.
	if byTech[Ferrum].Fractions[asm.TagStage] <= 0 {
		t.Error("FERRUM shows no staging instructions")
	}
	if byTech[Hybrid].Fractions[asm.TagStage] != 0 {
		t.Error("hybrid shows staging instructions")
	}
	text := RenderProfile(rows)
	if !strings.Contains(text, "Dynamic attribution") || !strings.Contains(text, "bfs") {
		t.Errorf("render broken:\n%s", text)
	}
}

// TestProfileRowInvariants pins the contents of every Profile row: the tag
// fractions partition the dynamic instruction count (sum to 1), protection
// always costs instructions over raw, and FERRUM is the only technique
// issuing vector work.
func TestProfileRowInvariants(t *testing.T) {
	rows, err := Profile(testOpts("bfs"))
	if err != nil {
		t.Fatal(err)
	}
	byTech := map[Technique]ProfileRow{}
	for _, r := range rows {
		if r.Benchmark != "bfs" {
			t.Errorf("row benchmark = %q", r.Benchmark)
		}
		if r.DynInsts == 0 {
			t.Errorf("%s: zero dynamic instructions", r.Technique)
		}
		var sum float64
		for tag, f := range r.Fractions {
			if f < 0 || f > 1 {
				t.Errorf("%s: fraction[%v] = %v out of [0,1]", r.Technique, tag, f)
			}
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %v, want 1", r.Technique, sum)
		}
		byTech[r.Technique] = r
	}
	raw := byTech[Raw]
	for _, tech := range Techniques {
		if byTech[tech].DynInsts <= raw.DynInsts {
			t.Errorf("%s: %d dyn insts, not above raw's %d",
				tech, byTech[tech].DynInsts, raw.DynInsts)
		}
	}
	var ferrumVector float64
	for _, v := range byTech[Ferrum].VectorWork {
		ferrumVector += v
	}
	if ferrumVector <= 0 {
		t.Error("FERRUM issued no vector work")
	}
	var hybridVector float64
	for _, v := range byTech[Hybrid].VectorWork {
		hybridVector += v
	}
	if hybridVector != 0 {
		t.Errorf("hybrid issued vector work %v; scalar-only technique", hybridVector)
	}
}

func TestVariationExperiment(t *testing.T) {
	rows, err := Variation(testOpts("bfs"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // one per technique
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Mean <= 0 || r.Min > r.Mean || r.Max < r.Mean || r.StdDev < 0 {
			t.Errorf("implausible row %+v", r)
		}
		if r.Seeds != 3 {
			t.Errorf("seeds = %d", r.Seeds)
		}
	}
	text := RenderVariation(rows)
	if !strings.Contains(text, "variation") || !strings.Contains(text, "bfs") {
		t.Errorf("render broken:\n%s", text)
	}
	// Guard against degenerate seed handling.
	if _, err := Variation(testOpts("bfs"), 0); err != nil {
		t.Errorf("default seeds failed: %v", err)
	}
}
