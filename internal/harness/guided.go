package harness

import (
	"math"
	"sort"

	"ferrum/internal/asm"
	"ferrum/internal/ferrumpass"
	"ferrum/internal/fi"
	"ferrum/internal/machine"
)

type asmInst = asm.Inst

// GuidedSelector builds a selective-protection Selector from an empirical
// SDC-proneness profile (fi.ProfileProneness): it protects the given
// fraction of observed instructions, chosen by descending SDC mass. This is
// the SDCTune idea (ref. [9] of the paper) — spend the protection budget
// where silent corruptions actually come from — in contrast to
// ferrumpass.SelectRatio's uniform random subset.
//
// Instructions that never appeared in the profile (unsampled or without a
// fault destination) are left unprotected; by construction they carry
// little observed SDC mass.
func GuidedSelector(stats []fi.SiteStats, fraction float64) ferrumpass.Selector {
	if fraction >= 1 {
		return func(string, int, asmInst) bool { return true }
	}
	ranked := append([]fi.SiteStats(nil), stats...)
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].SDCs != ranked[j].SDCs {
			return ranked[i].SDCs > ranked[j].SDCs
		}
		return ranked[i].Crashes > ranked[j].Crashes
	})
	take := int(math.Ceil(fraction * float64(len(ranked))))
	if take > len(ranked) {
		take = len(ranked)
	}
	chosen := make(map[machine.SiteLoc]bool, take)
	for _, st := range ranked[:take] {
		chosen[st.Loc] = true
	}
	return func(fn string, idx int, _ asmInst) bool {
		return chosen[machine.SiteLoc{Fn: fn, Idx: idx}]
	}
}
