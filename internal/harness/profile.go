package harness

import (
	"fmt"
	"strings"

	"ferrum/internal/asm"
	"ferrum/internal/machine"
)

// ProfileRow attributes one benchmark's dynamic execution under a
// technique to instruction provenance, answering "where does the overhead
// go": how much of the protected run is original program code vs.
// duplicates, checker sequences, SIMD staging and stack requisition.
type ProfileRow struct {
	Benchmark string
	Technique Technique
	DynInsts  uint64
	Fractions map[asm.Tag]float64
	// ScalarWork/VectorWork are the total unit costs issued per tag.
	ScalarWork map[asm.Tag]float64
	VectorWork map[asm.Tag]float64
}

// Profile runs every benchmark under every technique with dynamic
// attribution enabled. Each (benchmark × technique) profiled run is an
// independent scheduler cell; builds are memoised through Options.Cache.
func Profile(opts Options) ([]ProfileRow, error) {
	opts = opts.withDefaults()
	insts, err := opts.instances()
	if err != nil {
		return nil, err
	}
	s := newScheduler("profile", opts)
	techs := append([]Technique{Raw}, Techniques...)
	rows := make([]ProfileRow, len(insts)*len(techs))
	var cells []cellSpec
	for bi, inst := range insts {
		for ti, tech := range techs {
			idx := bi*len(techs) + ti
			cells = append(cells, cellSpec{
				name: inst.Bench.Name + "/" + string(tech),
				run: func(cc *cellCtx) error {
					build, err := s.build(cc.cx, instanceAt{inst, opts.Seed}, tech)
					if err != nil {
						return fmt.Errorf("%s/%s: %w", inst.Bench.Name, tech, err)
					}
					m, err := machine.New(build.Prog, 1<<20)
					if err != nil {
						return err
					}
					if err := inst.Setup(m); err != nil {
						return err
					}
					sp := cc.cx.Span("profile.run")
					res := m.Run(machine.RunOpts{Args: inst.Args, Profile: true})
					sp.End()
					if res.Outcome != machine.OutcomeOK {
						return fmt.Errorf("%s/%s: %v (%s)", inst.Bench.Name, tech, res.Outcome, res.CrashMsg)
					}
					row := ProfileRow{
						Benchmark:  inst.Bench.Name,
						Technique:  tech,
						DynInsts:   res.DynInsts,
						Fractions:  map[asm.Tag]float64{},
						ScalarWork: map[asm.Tag]float64{},
						VectorWork: map[asm.Tag]float64{},
					}
					for t := asm.TagProgram; t <= asm.TagRuntime; t++ {
						row.Fractions[t] = res.Profile.TagFraction(t)
						row.ScalarWork[t] = res.Profile.TagScalar[t]
						row.VectorWork[t] = res.Profile.TagVector[t]
					}
					rows[idx] = row
					return nil
				},
			})
		}
	}
	if err := s.run(cells); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderProfile renders the dynamic-attribution table.
func RenderProfile(rows []ProfileRow) string {
	t := &table{header: []string{"benchmark", "technique", "dyn insts",
		"program", "dup", "check", "stage", "spill"}}
	last := ""
	for _, r := range rows {
		name := ""
		if r.Benchmark != last {
			name, last = r.Benchmark, r.Benchmark
		}
		t.add(name, string(r.Technique), fmt.Sprintf("%d", r.DynInsts),
			pct(r.Fractions[asm.TagProgram]), pct(r.Fractions[asm.TagDup]),
			pct(r.Fractions[asm.TagCheck]), pct(r.Fractions[asm.TagStage]),
			pct(r.Fractions[asm.TagSpill]))
	}
	var b strings.Builder
	b.WriteString("Dynamic attribution — where each technique's instructions go\n")
	b.WriteString("(fractions of dynamically executed instructions by provenance)\n\n")
	b.WriteString(t.String())
	return b.String()
}
