package harness

import (
	"fmt"
	"strings"

	"ferrum/internal/asm"
	"ferrum/internal/machine"
)

// ProfileRow attributes one benchmark's dynamic execution under a
// technique to instruction provenance, answering "where does the overhead
// go": how much of the protected run is original program code vs.
// duplicates, checker sequences, SIMD staging and stack requisition.
type ProfileRow struct {
	Benchmark string
	Technique Technique
	DynInsts  uint64
	Fractions map[asm.Tag]float64
	// ScalarWork/VectorWork are the total unit costs issued per tag.
	ScalarWork map[asm.Tag]float64
	VectorWork map[asm.Tag]float64
}

// Profile runs every benchmark under every technique with dynamic
// attribution enabled.
func Profile(opts Options) ([]ProfileRow, error) {
	opts = opts.withDefaults()
	insts, err := opts.instances()
	if err != nil {
		return nil, err
	}
	var rows []ProfileRow
	for _, inst := range insts {
		for _, tech := range append([]Technique{Raw}, Techniques...) {
			build, err := BuildTechniqueOpts(inst.Mod, tech, BuildOptions{Optimize: opts.Optimize})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", inst.Bench.Name, tech, err)
			}
			m, err := machine.New(build.Prog, 1<<20)
			if err != nil {
				return nil, err
			}
			if err := inst.Setup(m); err != nil {
				return nil, err
			}
			res := m.Run(machine.RunOpts{Args: inst.Args, Profile: true})
			if res.Outcome != machine.OutcomeOK {
				return nil, fmt.Errorf("%s/%s: %v (%s)", inst.Bench.Name, tech, res.Outcome, res.CrashMsg)
			}
			row := ProfileRow{
				Benchmark:  inst.Bench.Name,
				Technique:  tech,
				DynInsts:   res.DynInsts,
				Fractions:  map[asm.Tag]float64{},
				ScalarWork: map[asm.Tag]float64{},
				VectorWork: map[asm.Tag]float64{},
			}
			for t := asm.TagProgram; t <= asm.TagRuntime; t++ {
				row.Fractions[t] = res.Profile.TagFraction(t)
				row.ScalarWork[t] = res.Profile.TagScalar[t]
				row.VectorWork[t] = res.Profile.TagVector[t]
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderProfile renders the dynamic-attribution table.
func RenderProfile(rows []ProfileRow) string {
	t := &table{header: []string{"benchmark", "technique", "dyn insts",
		"program", "dup", "check", "stage", "spill"}}
	last := ""
	for _, r := range rows {
		name := ""
		if r.Benchmark != last {
			name, last = r.Benchmark, r.Benchmark
		}
		t.add(name, string(r.Technique), fmt.Sprintf("%d", r.DynInsts),
			pct(r.Fractions[asm.TagProgram]), pct(r.Fractions[asm.TagDup]),
			pct(r.Fractions[asm.TagCheck]), pct(r.Fractions[asm.TagStage]),
			pct(r.Fractions[asm.TagSpill]))
	}
	var b strings.Builder
	b.WriteString("Dynamic attribution — where each technique's instructions go\n")
	b.WriteString("(fractions of dynamically executed instructions by provenance)\n\n")
	b.WriteString(t.String())
	return b.String()
}
