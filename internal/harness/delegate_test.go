package harness

import (
	"strings"
	"sync/atomic"
	"testing"

	"ferrum/internal/fi"
)

// TestDelegateEquivalence: an experiment whose campaign cells are routed
// through Options.Delegate — with the delegate executing each CampaignSpec
// via RunSpec, the way a fiserve worker does — renders byte-identical
// tables to the same experiment run fully in-process.
func TestDelegateEquivalence(t *testing.T) {
	local, err := Fig10(testOpts("bfs"))
	if err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	opts := testOpts("bfs")
	opts.Delegate = func(sp CampaignSpec) (fi.Result, error) {
		calls.Add(1)
		if sp.Bench != "bfs" || sp.Level != "asm" || sp.Samples != opts.Samples || sp.Seed != opts.Seed {
			t.Errorf("unexpected spec: %+v", sp)
		}
		// A different worker count than the local run: results are
		// worker-count independent, so the tables must still match.
		return RunSpec(sp, fi.Campaign{Workers: 3})
	}
	delegated, err := Fig10(opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 { // raw + 3 techniques
		t.Errorf("delegate called %d times, want 4", calls.Load())
	}
	if got, want := RenderFig10(delegated), RenderFig10(local); got != want {
		t.Errorf("delegated Fig10 differs:\n--- local ---\n%s\n--- delegated ---\n%s", want, got)
	}
	if got, want := RenderLatency(delegated), RenderLatency(local); got != want {
		t.Errorf("delegated latency table differs:\n--- local ---\n%s\n--- delegated ---\n%s", want, got)
	}
}

// TestDelegateEquivalenceGap: the four-kind Gap experiment (IR and assembly
// levels) delegates both levels correctly.
func TestDelegateEquivalenceGap(t *testing.T) {
	base := Options{Samples: 200, Seed: 5, Benchmarks: []string{"knn"}}
	local, err := Gap(base)
	if err != nil {
		t.Fatal(err)
	}
	levels := map[string]int{}
	del := base
	del.Delegate = func(sp CampaignSpec) (fi.Result, error) {
		levels[sp.Level]++
		return RunSpec(sp, fi.Campaign{Workers: 2})
	}
	delegated, err := Gap(del)
	if err != nil {
		t.Fatal(err)
	}
	if levels["ir"] != 2 || levels["asm"] != 2 {
		t.Errorf("delegate calls per level = %v, want 2 ir + 2 asm", levels)
	}
	if got, want := RenderGap(delegated), RenderGap(local); got != want {
		t.Errorf("delegated Gap differs:\n--- local ---\n%s\n--- delegated ---\n%s", want, got)
	}
}

// TestRunSpecErrors: specs naming unknown benchmarks, levels or IR-level
// techniques are rejected with the offending name in the message.
func TestRunSpecErrors(t *testing.T) {
	for _, tc := range []struct {
		spec CampaignSpec
		want string
	}{
		{CampaignSpec{Bench: "nope", Level: "asm", Technique: Raw, Samples: 1}, "unknown benchmark"},
		{CampaignSpec{Bench: "bfs", Level: "bogus", Technique: Raw, Samples: 1}, "unknown injection level"},
		{CampaignSpec{Bench: "bfs", Level: "ir", Technique: Ferrum, Samples: 1}, "ir-level-eddi"},
	} {
		_, err := RunSpec(tc.spec, fi.Campaign{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("RunSpec(%+v) error = %v, want %q", tc.spec, err, tc.want)
		}
	}
}
