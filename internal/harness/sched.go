package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ferrum/internal/fi"
	"ferrum/internal/obs"
	"ferrum/internal/rodinia"
)

// ErrCellTimeout marks a cell that the per-cell watchdog canceled after
// Options.CellTimeout elapsed. Wrapped errors satisfy errors.Is.
var ErrCellTimeout = errors.New("harness: cell timed out")

// CellEvent is one scheduler cell transition, delivered to Options.Progress.
// Each independent (benchmark × technique) unit of an experiment is a cell;
// every cell produces one start event (Done=false) and one completion event
// (Done=true) carrying its wall-clock and injection count.
type CellEvent struct {
	Experiment string        // e.g. "fig10"
	Cell       string        // e.g. "bfs/ferrum"
	Index      int           // cell index within the experiment
	Total      int           // number of cells in the experiment
	Done       bool          // false on start, true on completion
	Wall       time.Duration // cell wall-clock (completion events only)
	Injections int           // fault injections executed by the cell
	Err        error         // non-nil if the cell failed (completion events only)
}

// cellSpec is one schedulable unit: a named closure plus the number of
// fault injections it will execute (for rate reporting; 0 for build-only
// cells). The closure receives the cell's context — observability handle,
// journal key, watchdog cancellation — so campaign phases attribute their
// spans to the cell and campaigns participate in durable resume.
type cellSpec struct {
	name string
	inj  int
	run  func(cc *cellCtx) error
}

// cellCtx is what a cell closure receives for one attempt: the cell's
// observability context (cx, nil when observability is off), its journal
// key (experiment-qualified, stable across runs, so resumed suites match
// records to cells), and the watchdog's cancellation channel (nil when no
// CellTimeout is set). Campaign-running cells thread all three into
// fi.Campaign via scheduler.campaign; cancellation is cooperative, so a
// cell that never checks cancel (pure build/golden cells) simply runs to
// completion.
type cellCtx struct {
	cx     *obs.Ctx
	key    string
	cancel <-chan struct{}
}

// scheduler runs an experiment's independent cells on a bounded worker
// pool, layered on top of the intra-campaign parallelism in package fi.
// Determinism: cells write results into caller-owned slots indexed by cell,
// and every campaign's fault plan is pre-generated from the seed, so
// rendered tables are byte-identical for any worker count.
type scheduler struct {
	exp         string
	opts        Options
	cache       *BuildCache
	cellWorkers int
	campWorkers int

	progressMu sync.Mutex // serialises Options.Progress callbacks
}

func newScheduler(exp string, opts Options) *scheduler {
	cw := opts.CellWorkers
	if cw <= 0 {
		cw = runtime.GOMAXPROCS(0)
	}
	camp := opts.Workers
	if camp <= 0 {
		// Split the CPU budget between the two parallelism layers so cell
		// concurrency does not multiply into GOMAXPROCS² goroutines.
		camp = runtime.GOMAXPROCS(0) / cw
		if camp < 1 {
			camp = 1
		}
	}
	return &scheduler{exp: exp, opts: opts, cache: opts.Cache, cellWorkers: cw, campWorkers: camp}
}

// campaign builds the per-cell fi.Campaign. Fault plans derive only from
// Samples and Seed, so worker counts never change campaign results. cc ties
// the campaign's spans and counters to the cell being run, keys its journal
// records, replays its journaled prior, and wires the watchdog's
// cancellation into the campaign's batch loop.
func (s *scheduler) campaign(cc *cellCtx) fi.Campaign {
	return fi.Campaign{
		Samples:         s.opts.Samples,
		Seed:            s.opts.Seed,
		Workers:         s.campWorkers,
		NoCheckpoint:    s.opts.NoCheckpoint,
		CheckpointEvery: s.opts.CheckpointEvery,
		CIWidth:         s.opts.CIWidth,
		Prune:           s.opts.Prune,
		Compose:         s.opts.Compose,
		SectionCache:    s.opts.SectionCache,
		Cancel:          cc.cancel,
		Journal:         s.opts.Journal,
		Key:             cc.key,
		Prior:           s.opts.Resume.Cell(cc.key),
		Stats:           s.opts.CampaignStats,
		Obs:             cc.cx,
	}
}

// attempt runs the cell once, arming the watchdog when CellTimeout is set.
// A watchdog-canceled attempt is reported as ErrCellTimeout (and counted);
// if the cell won the race and completed anyway, success stands.
func (s *scheduler) attempt(cx *obs.Ctx, c cellSpec) error {
	cc := &cellCtx{cx: cx, key: s.exp + "/" + c.name}
	var fired atomic.Bool
	if s.opts.CellTimeout > 0 {
		cancel := make(chan struct{})
		cc.cancel = cancel
		t := time.AfterFunc(s.opts.CellTimeout, func() {
			fired.Store(true)
			close(cancel)
		})
		defer t.Stop()
	}
	err := c.run(cc)
	if err != nil && fired.Load() {
		s.opts.Obs.Counter(obs.MSchedTimeouts).Add(1)
		return fmt.Errorf("%s: %w after %v (%v)", c.name, ErrCellTimeout, s.opts.CellTimeout, err)
	}
	if err == nil {
		// A latched journal write error (full disk, yanked volume) means this
		// cell's records may be missing even though the campaign itself
		// succeeded; surfacing it here fails the cell instead of leaving a
		// silently truncated journal for -resume to trust.
		if jerr := s.opts.Journal.Err(); jerr != nil {
			return fmt.Errorf("%s: journal write failed: %w", c.name, jerr)
		}
	}
	return err
}

// attempts runs the cell with bounded retry: a transiently failing cell is
// re-attempted up to MaxRetries times (with exponentially doubling
// RetryBackoff between attempts). Watchdog timeouts are not retried — a
// wedged cell would wedge again and hold its worker for another full
// timeout. Retries are invisible to Progress (one start, one done event per
// cell); the sched.retries counter records them. Re-running a cell is safe:
// campaigns are deterministic and results land in caller-owned slots, so a
// retry overwrites equal values, and duplicate journal records resolve to
// the identical last occurrence on load.
func (s *scheduler) attempts(cx *obs.Ctx, c cellSpec) error {
	for try := 0; ; try++ {
		err := s.attempt(cx, c)
		if err == nil || errors.Is(err, ErrCellTimeout) || try >= s.opts.MaxRetries {
			return err
		}
		s.opts.Obs.Counter(obs.MSchedRetries).Add(1)
		if s.opts.RetryBackoff > 0 {
			time.Sleep(s.opts.RetryBackoff << try)
		}
	}
}

// spec names the campaign a cell is about to run, for delegation to an
// external campaign service. The spec's seed is the campaign seed; in every
// campaign experiment it is also the instance seed, so the remote side
// regenerates the identical benchmark instance and fault plan.
func (s *scheduler) spec(tech Technique, level string) CampaignSpec {
	return CampaignSpec{
		Technique: tech, Level: level,
		Samples: s.opts.Samples, Seed: s.opts.Seed, Scale: s.opts.Scale,
		Optimize: s.opts.Optimize,
	}
}

// asmCampaignCell runs one (benchmark × technique) assembly-level campaign
// cell — locally (memoised build, then RunAsmCampaign), or through
// Options.Delegate when the experiment's campaigns are served remotely.
func (s *scheduler) asmCampaignCell(cc *cellCtx, inst instanceAt, tech Technique) (fi.Result, error) {
	if s.opts.Delegate != nil {
		sp := s.spec(tech, "asm")
		sp.Bench = inst.inst.Bench.Name
		return s.opts.Delegate(sp)
	}
	build, err := s.build(cc.cx, inst, tech)
	if err != nil {
		return fi.Result{}, err
	}
	return fi.RunAsmCampaign(asmTarget(inst.inst, build), s.campaign(cc))
}

/// irCampaignCell is asmCampaignCell's IR-level counterpart: raw injects the
// benchmark module as-is, IREDDI injects the protected IR. Prune is always
// off at IR level (the analysis is assembly-only), locally and delegated.
func (s *scheduler) irCampaignCell(cc *cellCtx, inst instanceAt, tech Technique) (fi.Result, error) {
	if s.opts.Delegate != nil {
		sp := s.spec(tech, "ir")
		sp.Bench = inst.inst.Bench.Name
		return s.opts.Delegate(sp)
	}
	mod := inst.inst.Mod
	if tech == IREDDI {
		build, err := s.build(cc.cx, inst, IREDDI)
		if err != nil {
			return fi.Result{}, err
		}
		mod = build.ProtectedIR
	}
	c := s.campaign(cc)
	c.Prune = fi.PruneOff
	// Compose is assembly-only too: sections are machine snapshots and
	// boundary descriptors are register/flag/page diffs.
	c.Compose, c.SectionCache = fi.ComposeOff, nil
	return fi.RunIRCampaign(irTarget(inst.inst, mod), c)
}

// build memoises the technique build for an instance at the scheduler's
/// scale/seed/optimize settings. The span shows what the cell actually paid:
// cache hits collapse to microseconds on the timeline.
func (s *scheduler) build(cx *obs.Ctx, inst instanceAt, tech Technique) (*Build, error) {
	sp := cx.Span("build")
	sp.SetAttr("tech", string(tech))
	b, err := s.cache.build(inst.inst, s.opts.Scale, inst.seed, tech, BuildOptions{Optimize: s.opts.Optimize})
	sp.End()
	return b, err
}

// golden memoises the golden run for an instance at the scheduler's
// settings.
func (s *scheduler) golden(cx *obs.Ctx, inst instanceAt, tech Technique) (golden, error) {
	sp := cx.Span("golden.cached")
	sp.SetAttr("tech", string(tech))
	g, err := s.cache.golden(inst.inst, s.opts.Scale, inst.seed, tech, BuildOptions{Optimize: s.opts.Optimize})
	sp.End()
	return g, err
}

// instanceAt pairs an instance with the seed it was generated from, which
// is part of every cache key (Variation runs cells at shifted seeds).
type instanceAt struct {
	inst *rodinia.Instance
	seed int64
}

func (s *scheduler) emit(ev CellEvent) {
	if s.opts.Progress == nil {
		return
	}
	s.progressMu.Lock()
	defer s.progressMu.Unlock()
	s.opts.Progress(ev)
}

// run executes the cells on min(cellWorkers, len(cells)) goroutines and
// returns the lowest-index error, matching what a serial sweep would have
// reported first. Worker w runs its cells on observability lane w+1 (lane 0
// is the main goroutine), so the Perfetto export shows one timeline row per
// cell worker.
func (s *scheduler) run(cells []cellSpec) error {
	n := len(cells)
	workers := s.cellWorkers
	if workers > n {
		workers = n
	}
	runCell := func(i, lane int) error {
		c := cells[i]
		cx := s.opts.Obs.Cell(c.name, lane)
		s.emit(CellEvent{Experiment: s.exp, Cell: c.name, Index: i, Total: n})
		sp := cx.Span("cell")
		start := time.Now()
		err := s.attempts(cx, c)
		wall := time.Since(start)
		sp.SetAttr("experiment", s.exp)
		sp.SetAttr("injections", c.inj)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
		s.observeCell(c, wall, err)
		s.emit(CellEvent{
			Experiment: s.exp, Cell: c.name, Index: i, Total: n,
			Done: true, Wall: wall, Injections: c.inj, Err: err,
		})
		return err
	}
	if workers <= 1 {
		for i := range cells {
			if err := runCell(i, 1); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = runCell(i, lane)
			}
		}(w + 1)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// observeCell publishes one completed cell's totals to the registry. The
// sched.* counters are the scheduler's own view (cells and their injection
// budgets), deliberately distinct from the fi.* counters the campaigns
// report from inside.
func (s *scheduler) observeCell(c cellSpec, wall time.Duration, err error) {
	o := s.opts.Obs
	if o == nil {
		return
	}
	o.Counter(obs.MCells).Add(1)
	o.Counter(obs.MInjections).Add(int64(c.inj))
	o.Counter(obs.MCellWallUS).Add(wall.Microseconds())
	if err != nil {
		o.Counter(obs.MCellErrs).Add(1)
	}
	o.Reg.Histogram(obs.HCellWallMS, obs.CellWallBuckets).
		Observe(float64(wall.Milliseconds()))
}
