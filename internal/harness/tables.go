package harness

// InstClass is an assembly instruction class from Table I of the paper.
type InstClass string

// Table I instruction classes.
const (
	ClassBasic      InstClass = "basic"
	ClassStore      InstClass = "store"
	ClassBranch     InstClass = "branch"
	ClassCall       InstClass = "call"
	ClassMapping    InstClass = "mapping"
	ClassComparison InstClass = "comparison"
)

// InstClasses lists Table I's columns in order.
var InstClasses = []InstClass{
	ClassBasic, ClassStore, ClassBranch, ClassCall, ClassMapping, ClassComparison,
}

// Table I cell values: the level at which a technique protects a class.
// "IR" = IR-level protection, "AS1" = assembly level without SIMD, "AS2" =
// assembly level with SIMD, "/" = not covered at assembly level.
const (
	LevelIR   = "IR"
	LevelAS1  = "AS1"
	LevelAS2  = "AS2"
	LevelNone = "/"
)

// Table1 returns the technique capability matrix exactly as the paper's
// Table I reports it, reflecting what each implementation in this
// repository covers:
//
//   - IR-LEVEL-EDDI duplicates IR computations ("basic" at IR) but cannot
//     see the instructions the backend introduces for stores, branches,
//     calls, value mapping, or comparisons.
//   - HYBRID-ASSEMBLY-LEVEL-EDDI duplicates at assembly level without SIMD
//     and delegates branch and comparison protection to IR-level
//     signatures.
//   - FERRUM covers every class at assembly level with SIMD batching.
func Table1() map[Technique]map[InstClass]string {
	return map[Technique]map[InstClass]string{
		IREDDI: {
			ClassBasic: LevelIR, ClassStore: LevelNone, ClassBranch: LevelNone,
			ClassCall: LevelNone, ClassMapping: LevelNone, ClassComparison: LevelNone,
		},
		Hybrid: {
			ClassBasic: LevelAS1, ClassStore: LevelAS1, ClassBranch: LevelIR,
			ClassCall: LevelAS1, ClassMapping: LevelAS1, ClassComparison: LevelIR,
		},
		Ferrum: {
			ClassBasic: LevelAS2, ClassStore: LevelAS2, ClassBranch: LevelAS2,
			ClassCall: LevelAS2, ClassMapping: LevelAS2, ClassComparison: LevelAS2,
		},
	}
}

// Table2Row describes one benchmark (Table II of the paper), extended with
// the static assembly instruction count our backend produces, which
// §IV-B3 correlates transform time against.
type Table2Row struct {
	Benchmark   string
	Suite       string
	Domain      string
	IRInsts     int
	StaticInsts int
}

// Table2 returns the benchmark details table. The unoptimised raw build it
// reports static counts from is memoised through Options.Cache, so a suite
// run shares it with the raw campaign cells.
func Table2(opts Options) ([]Table2Row, error) {
	opts = opts.withDefaults()
	insts, err := opts.instances()
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, inst := range insts {
		// Table II reports the backend's unoptimised output regardless of
		// Options.Optimize, as the seed evaluation always has.
		build, err := opts.Cache.build(inst, opts.Scale, opts.Seed, Raw, BuildOptions{})
		if err != nil {
			return nil, err
		}
		prog := build.Prog
		rows = append(rows, Table2Row{
			Benchmark:   inst.Bench.Name,
			Suite:       inst.Bench.Suite,
			Domain:      inst.Bench.Domain,
			IRInsts:     inst.Mod.InstCount(),
			StaticInsts: prog.StaticInstCount(),
		})
	}
	return rows, nil
}
