package harness

import (
	"fmt"
	"time"

	"ferrum/internal/fi"
	"ferrum/internal/ir"
	"ferrum/internal/machine"
	"ferrum/internal/rodinia"
)

// Fig10Row is one benchmark's SDC-coverage measurement (fig. 10 of the
// paper): coverage per technique, derived from assembly-level injection
// campaigns against the raw and protected binaries.
type Fig10Row struct {
	Benchmark  string
	RawSDCRate float64
	RawCI      [2]float64
	Coverage   map[Technique]float64
	SDCRate    map[Technique]float64
	Counts     map[Technique]fi.Result
}

// Fig10 reproduces the SDC-coverage experiment.
func Fig10(opts Options) ([]Fig10Row, error) {
	opts = opts.withDefaults()
	insts, err := opts.instances()
	if err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for _, inst := range insts {
		row := Fig10Row{
			Benchmark: inst.Bench.Name,
			Coverage:  map[Technique]float64{},
			SDCRate:   map[Technique]float64{},
			Counts:    map[Technique]fi.Result{},
		}
		rawBuild, err := BuildTechniqueOpts(inst.Mod, Raw, BuildOptions{Optimize: opts.Optimize})
		if err != nil {
			return nil, fmt.Errorf("%s/raw: %w", inst.Bench.Name, err)
		}
		campaign := fi.Campaign{Samples: opts.Samples, Seed: opts.Seed, Workers: opts.Workers}
		rawRes, err := fi.RunAsmCampaign(asmTarget(inst, rawBuild), campaign)
		if err != nil {
			return nil, fmt.Errorf("%s/raw: %w", inst.Bench.Name, err)
		}
		row.RawSDCRate = rawRes.SDCRate()
		lo, hi := rawRes.CI95()
		row.RawCI = [2]float64{lo, hi}
		row.Counts[Raw] = rawRes
		for _, tech := range Techniques {
			build, err := BuildTechniqueOpts(inst.Mod, tech, BuildOptions{Optimize: opts.Optimize})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", inst.Bench.Name, tech, err)
			}
			res, err := fi.RunAsmCampaign(asmTarget(inst, build), campaign)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", inst.Bench.Name, tech, err)
			}
			row.Coverage[tech] = fi.Coverage(rawRes, res)
			row.SDCRate[tech] = res.SDCRate()
			row.Counts[tech] = res
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func asmTarget(inst *rodinia.Instance, build *Build) fi.AsmTarget {
	return fi.AsmTarget{
		Prog:    build.Prog,
		MemSize: 1 << 20,
		Args:    inst.Args,
		Setup:   func(w fi.MemWriter) error { return inst.Setup(w) },
	}
}

// Fig11Row is one benchmark's runtime performance overhead (fig. 11):
// (cycles_prot - cycles_raw) / cycles_raw on the machine cycle model.
type Fig11Row struct {
	Benchmark string
	RawCycles float64
	Overhead  map[Technique]float64
	Cycles    map[Technique]float64
	DynInsts  map[Technique]uint64
}

// Fig11 reproduces the runtime-overhead experiment.
func Fig11(opts Options) ([]Fig11Row, error) {
	opts = opts.withDefaults()
	insts, err := opts.instances()
	if err != nil {
		return nil, err
	}
	var rows []Fig11Row
	for _, inst := range insts {
		row := Fig11Row{
			Benchmark: inst.Bench.Name,
			Overhead:  map[Technique]float64{},
			Cycles:    map[Technique]float64{},
			DynInsts:  map[Technique]uint64{},
		}
		raw, err := goldenRun(inst, Raw, BuildOptions{Optimize: opts.Optimize})
		if err != nil {
			return nil, err
		}
		row.RawCycles = raw.cycles
		row.Cycles[Raw] = raw.cycles
		row.DynInsts[Raw] = raw.dyn
		for _, tech := range Techniques {
			g, err := goldenRun(inst, tech, BuildOptions{Optimize: opts.Optimize})
			if err != nil {
				return nil, err
			}
			row.Overhead[tech] = fi.Overhead(raw.cycles, g.cycles)
			row.Cycles[tech] = g.cycles
			row.DynInsts[tech] = g.dyn
		}
		rows = append(rows, row)
	}
	return rows, nil
}

type golden struct {
	cycles float64
	dyn    uint64
	output []uint64
}

func goldenRun(inst *rodinia.Instance, tech Technique, bo BuildOptions) (golden, error) {
	build, err := BuildTechniqueOpts(inst.Mod, tech, bo)
	if err != nil {
		return golden{}, fmt.Errorf("%s/%s: %w", inst.Bench.Name, tech, err)
	}
	res, err := runBuild(inst, build)
	if err != nil {
		return golden{}, fmt.Errorf("%s/%s: %w", inst.Bench.Name, tech, err)
	}
	return res, nil
}

// ExecTimeRow is one benchmark's FERRUM transform-time measurement
// (§IV-B3 of the paper), correlated with the static instruction count.
type ExecTimeRow struct {
	Benchmark   string
	StaticInsts int
	Duration    time.Duration
	SIMDEnabled int
	General     int
	Comparisons int
	Batches     int
}

// ExecTime reproduces the §IV-B3 measurement: the FERRUM transform is run
// repeatedly and the fastest time is reported (wall-clock, per the paper).
func ExecTime(opts Options) ([]ExecTimeRow, error) {
	opts = opts.withDefaults()
	insts, err := opts.instances()
	if err != nil {
		return nil, err
	}
	const reps = 5
	var rows []ExecTimeRow
	for _, inst := range insts {
		var best *ExecTimeRow
		for r := 0; r < reps; r++ {
			build, err := BuildTechniqueOpts(inst.Mod, Ferrum, BuildOptions{Optimize: opts.Optimize})
			if err != nil {
				return nil, err
			}
			rep := build.FerrumStats
			row := ExecTimeRow{
				Benchmark:   inst.Bench.Name,
				StaticInsts: rep.StaticInsts,
				Duration:    rep.Duration,
				SIMDEnabled: rep.SIMDEnabled,
				General:     rep.General,
				Comparisons: rep.Comparisons,
				Batches:     rep.Batches,
			}
			if best == nil || row.Duration < best.Duration {
				best = &row
			}
		}
		rows = append(rows, *best)
	}
	return rows, nil
}

// GapRow is one benchmark's anticipated-vs-measured coverage for
// IR-LEVEL-EDDI (the paper's first headline finding: a 28% average gap).
// Anticipated coverage comes from IR-level injection into the protected
// IR; measured coverage from assembly-level injection into the compiled
// binary.
type GapRow struct {
	Benchmark   string
	Anticipated float64
	Measured    float64
	Gap         float64
}

// Gap reproduces the cross-layer coverage-gap experiment.
func Gap(opts Options) ([]GapRow, error) {
	opts = opts.withDefaults()
	insts, err := opts.instances()
	if err != nil {
		return nil, err
	}
	campaign := fi.Campaign{Samples: opts.Samples, Seed: opts.Seed, Workers: opts.Workers}
	var rows []GapRow
	for _, inst := range insts {
		// Anticipated: IR-level campaigns on raw and protected IR.
		rawIR, err := fi.RunIRCampaign(irTarget(inst, inst.Mod), campaign)
		if err != nil {
			return nil, fmt.Errorf("%s/ir-raw: %w", inst.Bench.Name, err)
		}
		build, err := BuildTechniqueOpts(inst.Mod, IREDDI, BuildOptions{Optimize: opts.Optimize})
		if err != nil {
			return nil, err
		}
		protIR, err := fi.RunIRCampaign(irTarget(inst, build.ProtectedIR), campaign)
		if err != nil {
			return nil, fmt.Errorf("%s/ir-prot: %w", inst.Bench.Name, err)
		}
		anticipated := fi.Coverage(rawIR, protIR)

		// Measured: assembly-level campaigns on the compiled binaries.
		rawBuild, err := BuildTechniqueOpts(inst.Mod, Raw, BuildOptions{Optimize: opts.Optimize})
		if err != nil {
			return nil, err
		}
		rawAsm, err := fi.RunAsmCampaign(asmTarget(inst, rawBuild), campaign)
		if err != nil {
			return nil, fmt.Errorf("%s/asm-raw: %w", inst.Bench.Name, err)
		}
		protAsm, err := fi.RunAsmCampaign(asmTarget(inst, build), campaign)
		if err != nil {
			return nil, fmt.Errorf("%s/asm-prot: %w", inst.Bench.Name, err)
		}
		measured := fi.Coverage(rawAsm, protAsm)
		rows = append(rows, GapRow{
			Benchmark:   inst.Bench.Name,
			Anticipated: anticipated,
			Measured:    measured,
			Gap:         anticipated - measured,
		})
	}
	return rows, nil
}

func irTarget(inst *rodinia.Instance, mod *ir.Module) fi.IRTarget {
	return fi.IRTarget{
		Mod:     mod,
		MemSize: 1 << 20,
		Args:    inst.Args,
		Setup:   func(w fi.MemWriter) error { return inst.Setup(w) },
	}
}

// runBuild executes a build's golden run on a fresh machine.
func runBuild(inst *rodinia.Instance, build *Build) (golden, error) {
	m, err := machine.New(build.Prog, 1<<20)
	if err != nil {
		return golden{}, err
	}
	if err := inst.Setup(m); err != nil {
		return golden{}, err
	}
	res := m.Run(machine.RunOpts{Args: inst.Args})
	if res.Outcome != machine.OutcomeOK {
		return golden{}, fmt.Errorf("golden run failed: %v (%s)", res.Outcome, res.CrashMsg)
	}
	return golden{cycles: res.Cycles, dyn: res.DynInsts, output: res.Output}, nil
}
