package harness

import (
	"fmt"
	"time"

	"ferrum/internal/fi"
	"ferrum/internal/ir"
	"ferrum/internal/machine"
	"ferrum/internal/rodinia"
)

// Fig10Row is one benchmark's SDC-coverage measurement (fig. 10 of the
// paper): coverage per technique, derived from assembly-level injection
// campaigns against the raw and protected binaries.
type Fig10Row struct {
	Benchmark  string
	RawSDCRate float64
	RawCI      [2]float64
	Coverage   map[Technique]float64
	SDCRate    map[Technique]float64
	Counts     map[Technique]fi.Result
}

// Fig10 reproduces the SDC-coverage experiment. Each (benchmark × technique)
// campaign is an independent scheduler cell; builds are memoised through
// Options.Cache.
func Fig10(opts Options) ([]Fig10Row, error) {
	opts = opts.withDefaults()
	insts, err := opts.instances()
	if err != nil {
		return nil, err
	}
	s := newScheduler("fig10", opts)
	techs := append([]Technique{Raw}, Techniques...)
	results := make([]fi.Result, len(insts)*len(techs))
	var cells []cellSpec
	for bi, inst := range insts {
		for ti, tech := range techs {
			idx := bi*len(techs) + ti
			cells = append(cells, cellSpec{
				name: inst.Bench.Name + "/" + string(tech),
				inj:  opts.Samples,
				run: func(cc *cellCtx) error {
					res, err := s.asmCampaignCell(cc, instanceAt{inst, opts.Seed}, tech)
					if err != nil {
						return fmt.Errorf("%s/%s: %w", inst.Bench.Name, tech, err)
					}
					results[idx] = res
					return nil
				},
			})
		}
	}
	if err := s.run(cells); err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for bi, inst := range insts {
		rawRes := results[bi*len(techs)]
		row := Fig10Row{
			Benchmark: inst.Bench.Name,
			Coverage:  map[Technique]float64{},
			SDCRate:   map[Technique]float64{},
			Counts:    map[Technique]fi.Result{},
		}
		row.RawSDCRate = rawRes.SDCRate()
		lo, hi := rawRes.CI95()
		row.RawCI = [2]float64{lo, hi}
		row.Counts[Raw] = rawRes
		for ti, tech := range Techniques {
			res := results[bi*len(techs)+ti+1]
			row.Coverage[tech] = fi.Coverage(rawRes, res)
			row.SDCRate[tech] = res.SDCRate()
			row.Counts[tech] = res
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func asmTarget(inst *rodinia.Instance, build *Build) fi.AsmTarget {
	return fi.AsmTarget{
		Prog:    build.Prog,
		MemSize: 1 << 20,
		Args:    inst.Args,
		Setup:   func(w fi.MemWriter) error { return inst.Setup(w) },
	}
}

// Fig11Row is one benchmark's runtime performance overhead (fig. 11):
// (cycles_prot - cycles_raw) / cycles_raw on the machine cycle model.
type Fig11Row struct {
	Benchmark string
	RawCycles float64
	Overhead  map[Technique]float64
	Cycles    map[Technique]float64
	DynInsts  map[Technique]uint64
}

// Fig11 reproduces the runtime-overhead experiment. Golden runs are
// memoised through Options.Cache, so a suite that already measured a
// build's golden run never repeats it.
func Fig11(opts Options) ([]Fig11Row, error) {
	opts = opts.withDefaults()
	insts, err := opts.instances()
	if err != nil {
		return nil, err
	}
	s := newScheduler("fig11", opts)
	techs := append([]Technique{Raw}, Techniques...)
	goldens := make([]golden, len(insts)*len(techs))
	var cells []cellSpec
	for bi, inst := range insts {
		for ti, tech := range techs {
			idx := bi*len(techs) + ti
			cells = append(cells, cellSpec{
				name: inst.Bench.Name + "/" + string(tech),
				run: func(cc *cellCtx) error {
					g, err := s.golden(cc.cx, instanceAt{inst, opts.Seed}, tech)
					if err != nil {
						return fmt.Errorf("%s/%s: %w", inst.Bench.Name, tech, err)
					}
					goldens[idx] = g
					return nil
				},
			})
		}
	}
	if err := s.run(cells); err != nil {
		return nil, err
	}
	var rows []Fig11Row
	for bi, inst := range insts {
		raw := goldens[bi*len(techs)]
		row := Fig11Row{
			Benchmark: inst.Bench.Name,
			Overhead:  map[Technique]float64{},
			Cycles:    map[Technique]float64{},
			DynInsts:  map[Technique]uint64{},
		}
		row.RawCycles = raw.cycles
		row.Cycles[Raw] = raw.cycles
		row.DynInsts[Raw] = raw.dyn
		for ti, tech := range Techniques {
			g := goldens[bi*len(techs)+ti+1]
			row.Overhead[tech] = fi.Overhead(raw.cycles, g.cycles)
			row.Cycles[tech] = g.cycles
			row.DynInsts[tech] = g.dyn
		}
		rows = append(rows, row)
	}
	return rows, nil
}

type golden struct {
	cycles float64
	dyn    uint64
	output []uint64
}

// ExecTimeRow is one benchmark's FERRUM transform-time measurement
// (§IV-B3 of the paper), correlated with the static instruction count.
type ExecTimeRow struct {
	Benchmark   string
	StaticInsts int
	Duration    time.Duration
	SIMDEnabled int
	General     int
	Comparisons int
	Batches     int
}

// ExecTime reproduces the §IV-B3 measurement: the FERRUM transform is run
// repeatedly and the fastest time is reported (wall-clock, per the paper).
// The timing reps deliberately bypass the build cache (a memoised transform
// has no duration) and the cells run serially so concurrent cells don't
// inflate the wall-clock being measured.
func ExecTime(opts Options) ([]ExecTimeRow, error) {
	opts = opts.withDefaults()
	insts, err := opts.instances()
	if err != nil {
		return nil, err
	}
	s := newScheduler("exectime", opts)
	s.cellWorkers = 1
	const reps = 5
	rows := make([]ExecTimeRow, len(insts))
	var cells []cellSpec
	for bi, inst := range insts {
		cells = append(cells, cellSpec{
			name: inst.Bench.Name + "/transform",
			run: func(cc *cellCtx) error {
				sp := cc.cx.Span("transform.reps")
				defer sp.End()
				var best *ExecTimeRow
				for r := 0; r < reps; r++ {
					build, err := BuildTechniqueOpts(inst.Mod, Ferrum, BuildOptions{Optimize: opts.Optimize})
					if err != nil {
						return err
					}
					rep := build.FerrumStats
					row := ExecTimeRow{
						Benchmark:   inst.Bench.Name,
						StaticInsts: rep.StaticInsts,
						Duration:    rep.Duration,
						SIMDEnabled: rep.SIMDEnabled,
						General:     rep.General,
						Comparisons: rep.Comparisons,
						Batches:     rep.Batches,
					}
					if best == nil || row.Duration < best.Duration {
						best = &row
					}
				}
				rows[bi] = *best
				return nil
			},
		})
	}
	if err := s.run(cells); err != nil {
		return nil, err
	}
	return rows, nil
}

// GapRow is one benchmark's anticipated-vs-measured coverage for
// IR-LEVEL-EDDI (the paper's first headline finding: a 28% average gap).
// Anticipated coverage comes from IR-level injection into the protected
// IR; measured coverage from assembly-level injection into the compiled
// binary.
type GapRow struct {
	Benchmark   string
	Anticipated float64
	Measured    float64
	Gap         float64
}

// Gap reproduces the cross-layer coverage-gap experiment. The four
// campaigns per benchmark (IR raw/protected, assembly raw/protected) are
// independent scheduler cells; both protected campaigns share one memoised
// IR-EDDI build.
func Gap(opts Options) ([]GapRow, error) {
	opts = opts.withDefaults()
	insts, err := opts.instances()
	if err != nil {
		return nil, err
	}
	s := newScheduler("gap", opts)
	kinds := []string{"ir-raw", "ir-prot", "asm-raw", "asm-prot"}
	results := make([]fi.Result, len(insts)*len(kinds))
	var cells []cellSpec
	for bi, inst := range insts {
		for ki, kind := range kinds {
			idx := bi*len(kinds) + ki
			cells = append(cells, cellSpec{
				name: inst.Bench.Name + "/" + kind,
				inj:  opts.Samples,
				run: func(cc *cellCtx) error {
					var res fi.Result
					var err error
					at := instanceAt{inst, opts.Seed}
					switch kind {
					case "ir-raw":
						res, err = s.irCampaignCell(cc, at, Raw)
					case "ir-prot":
						res, err = s.irCampaignCell(cc, at, IREDDI)
					case "asm-raw":
						res, err = s.asmCampaignCell(cc, at, Raw)
					case "asm-prot":
						res, err = s.asmCampaignCell(cc, at, IREDDI)
					}
					if err != nil {
						return fmt.Errorf("%s/%s: %w", inst.Bench.Name, kind, err)
					}
					results[idx] = res
					return nil
				},
			})
		}
	}
	if err := s.run(cells); err != nil {
		return nil, err
	}
	var rows []GapRow
	for bi, inst := range insts {
		base := bi * len(kinds)
		anticipated := fi.Coverage(results[base], results[base+1])
		measured := fi.Coverage(results[base+2], results[base+3])
		rows = append(rows, GapRow{
			Benchmark:   inst.Bench.Name,
			Anticipated: anticipated,
			Measured:    measured,
			Gap:         anticipated - measured,
		})
	}
	return rows, nil
}

func irTarget(inst *rodinia.Instance, mod *ir.Module) fi.IRTarget {
	return fi.IRTarget{
		Mod:     mod,
		MemSize: 1 << 20,
		Args:    inst.Args,
		Setup:   func(w fi.MemWriter) error { return inst.Setup(w) },
	}
}

// runBuild executes a build's golden run on a fresh machine.
func runBuild(inst *rodinia.Instance, build *Build) (golden, error) {
	m, err := machine.New(build.Prog, 1<<20)
	if err != nil {
		return golden{}, err
	}
	if err := inst.Setup(m); err != nil {
		return golden{}, err
	}
	res := m.Run(machine.RunOpts{Args: inst.Args})
	if res.Outcome != machine.OutcomeOK {
		return golden{}, fmt.Errorf("golden run failed: %v (%s)", res.Outcome, res.CrashMsg)
	}
	return golden{cycles: res.Cycles, dyn: res.DynInsts, output: res.Output}, nil
}
