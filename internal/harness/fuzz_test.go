package harness

import (
	"math/rand"
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/ferrumpass"
	"ferrum/internal/ir"
	"ferrum/internal/machine"
	"ferrum/internal/progen"
)

// runConfig executes a program on a fresh machine with the fuzz scratch
// image installed.
func runFuzz(t *testing.T, prog *machineProg, args []uint64) machine.Result {
	t.Helper()
	m, err := machine.New(prog, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		if err := m.WriteWordImage(8192+8*uint64(s), uint64(s*5+3)); err != nil {
			t.Fatal(err)
		}
	}
	return m.Run(machine.RunOpts{Args: args, MaxSteps: 5_000_000})
}

type asmProgram = asm.Program

type machineProg = asmProgram

// TestFuzzAllTechniquesAgree generates random programs and requires the IR
// interpreter, the raw build and every protection variant to produce
// identical outputs — the strongest whole-stack semantic property.
func TestFuzzAllTechniquesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	iters := 40
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters; i++ {
		mod, err := progen.Generate(rng, progen.Options{Stmts: 25, Calls: i%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		args := []uint64{8192, uint64(rng.Int63n(10000)), uint64(rng.Int63n(10000))}

		ip, err := ir.NewInterp(mod, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 8; s++ {
			if err := ip.WriteWordImage(8192+8*uint64(s), uint64(s*5+3)); err != nil {
				t.Fatal(err)
			}
		}
		ires := ip.Run(ir.RunOpts{Args: args, MaxSteps: 5_000_000})
		if ires.Outcome != ir.OutcomeOK {
			t.Fatalf("iter %d: interp %v (%s)\n%s", i, ires.Outcome, ires.CrashMsg, mod)
		}

		type variant struct {
			name  string
			build func() (*machineProg, error)
		}
		variants := []variant{
			{"raw", func() (*machineProg, error) {
				b, err := BuildTechnique(mod, Raw)
				if err != nil {
					return nil, err
				}
				return b.Prog, nil
			}},
			{"ir-eddi", func() (*machineProg, error) {
				b, err := BuildTechnique(mod, IREDDI)
				if err != nil {
					return nil, err
				}
				return b.Prog, nil
			}},
			{"hybrid", func() (*machineProg, error) {
				b, err := BuildTechnique(mod, Hybrid)
				if err != nil {
					return nil, err
				}
				return b.Prog, nil
			}},
			{"ferrum", func() (*machineProg, error) {
				b, err := BuildTechnique(mod, Ferrum)
				if err != nil {
					return nil, err
				}
				return b.Prog, nil
			}},
			{"ferrum-zmm", func() (*machineProg, error) {
				b, err := BuildTechnique(mod, Raw)
				if err != nil {
					return nil, err
				}
				p, _, err := ferrumpass.Protect(b.Prog, ferrumpass.Config{UseZMM: true})
				return p, err
			}},
			{"ferrum-nosimd", func() (*machineProg, error) {
				b, err := BuildTechnique(mod, Raw)
				if err != nil {
					return nil, err
				}
				p, _, err := ferrumpass.Protect(b.Prog, ferrumpass.Config{DisableSIMD: true})
				return p, err
			}},
			{"ferrum-selective", func() (*machineProg, error) {
				b, err := BuildTechnique(mod, Raw)
				if err != nil {
					return nil, err
				}
				p, _, err := ferrumpass.Protect(b.Prog, ferrumpass.Config{
					Select: ferrumpass.SelectRatio(0.5, int64(i)),
				})
				return p, err
			}},
			{"raw-O1", func() (*machineProg, error) {
				b, err := BuildTechniqueOpts(mod, Raw, BuildOptions{Optimize: true})
				if err != nil {
					return nil, err
				}
				return b.Prog, nil
			}},
			{"ferrum-O1", func() (*machineProg, error) {
				b, err := BuildTechniqueOpts(mod, Ferrum, BuildOptions{Optimize: true})
				if err != nil {
					return nil, err
				}
				return b.Prog, nil
			}},
			{"hybrid-O1", func() (*machineProg, error) {
				b, err := BuildTechniqueOpts(mod, Hybrid, BuildOptions{Optimize: true})
				if err != nil {
					return nil, err
				}
				return b.Prog, nil
			}},
			{"ireddi-O1", func() (*machineProg, error) {
				b, err := BuildTechniqueOpts(mod, IREDDI, BuildOptions{Optimize: true})
				if err != nil {
					return nil, err
				}
				return b.Prog, nil
			}},
		}
		for _, v := range variants {
			prog, err := v.build()
			if err != nil {
				t.Fatalf("iter %d %s: %v\n%s", i, v.name, err, mod)
			}
			res := runFuzz(t, prog, args)
			if res.Outcome != machine.OutcomeOK {
				t.Fatalf("iter %d %s: %v (%s)\n%s", i, v.name, res.Outcome, res.CrashMsg, mod)
			}
			if len(res.Output) != len(ires.Output) {
				t.Fatalf("iter %d %s: output %v vs interp %v\n%s", i, v.name, res.Output, ires.Output, mod)
			}
			for j := range res.Output {
				if res.Output[j] != ires.Output[j] {
					t.Fatalf("iter %d %s: output[%d] %d vs %d\n%s",
						i, v.name, j, res.Output[j], ires.Output[j], mod)
				}
			}
		}
	}
}

// TestFuzzFerrumCoverage samples fault injections over random FERRUM-
// protected programs; no silent corruption is allowed.
func TestFuzzFerrumCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	iters := 6
	if testing.Short() {
		iters = 2
	}
	for i := 0; i < iters; i++ {
		mod, err := progen.Generate(rng, progen.Options{Stmts: 15, Calls: true})
		if err != nil {
			t.Fatal(err)
		}
		build, err := BuildTechnique(mod, Ferrum)
		if err != nil {
			t.Fatal(err)
		}
		args := []uint64{8192, uint64(rng.Int63n(500)), uint64(rng.Int63n(500))}
		m, err := machine.New(build.Prog, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 8; s++ {
			if err := m.WriteWordImage(8192+8*uint64(s), uint64(s*5+3)); err != nil {
				t.Fatal(err)
			}
		}
		golden := m.Run(machine.RunOpts{Args: args, MaxSteps: 5_000_000})
		if golden.Outcome != machine.OutcomeOK {
			t.Fatalf("iter %d: golden %v (%s)", i, golden.Outcome, golden.CrashMsg)
		}
		stride := golden.DynSites/120 + 1
		for site := uint64(0); site < golden.DynSites; site += stride {
			bit := uint(rng.Intn(64))
			res := m.Run(machine.RunOpts{Args: args, MaxSteps: 5_000_000,
				Fault: &machine.Fault{Site: site, Bit: bit}})
			if res.Outcome == machine.OutcomeOK {
				same := len(res.Output) == len(golden.Output)
				if same {
					for j := range res.Output {
						if res.Output[j] != golden.Output[j] {
							same = false
						}
					}
				}
				if !same {
					t.Fatalf("iter %d site %d bit %d: silent corruption\n%s",
						i, site, bit, mod)
				}
			}
		}
	}
}
