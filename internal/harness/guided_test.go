package harness

import (
	"testing"

	"ferrum/internal/ferrumpass"
	"ferrum/internal/fi"
	"ferrum/internal/machine"
)

func locOf(fn string, idx int) machine.SiteLoc { return machine.SiteLoc{Fn: fn, Idx: idx} }

// TestGuidedBeatsRandomSelection is the SDCTune property: at the same
// protection budget, proneness-guided selection achieves higher coverage
// than a uniform random subset.
func TestGuidedBeatsRandomSelection(t *testing.T) {
	opts := testOpts("bfs").withDefaults()
	insts, err := opts.instances()
	if err != nil {
		t.Fatal(err)
	}
	inst := insts[0]
	rawBuild, err := BuildTechnique(inst.Mod, Raw)
	if err != nil {
		t.Fatal(err)
	}
	tgt := asmTarget(inst, rawBuild)

	// Profile proneness on the raw binary.
	profCampaign := fi.Campaign{Samples: 600, Seed: 77}
	stats, err := fi.ProfileProneness(tgt, profCampaign)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no proneness stats")
	}
	if stats[0].Proneness() < stats[len(stats)-1].Proneness() {
		t.Error("stats not sorted by proneness")
	}
	totalSDC := 0
	for _, s := range stats {
		totalSDC += s.SDCs
	}
	if totalSDC == 0 {
		t.Fatal("profiling found no SDCs")
	}

	// Evaluate both selectors at the same static budget.
	const fraction = 0.3
	evalCampaign := fi.Campaign{Samples: 500, Seed: 99}
	rawRes, err := fi.RunAsmCampaign(tgt, evalCampaign)
	if err != nil {
		t.Fatal(err)
	}
	coverage := func(sel ferrumpass.Selector) float64 {
		prot, _, err := ferrumpass.Protect(rawBuild.Prog, ferrumpass.Config{Select: sel})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fi.RunAsmCampaign(fi.AsmTarget{
			Prog: prot, MemSize: 1 << 20, Args: inst.Args,
			Setup: func(w fi.MemWriter) error { return inst.Setup(w) },
		}, evalCampaign)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Coverage(rawRes, res)
	}
	guided := coverage(GuidedSelector(stats, fraction))
	random := coverage(ferrumpass.SelectRatio(fraction, 5))
	t.Logf("coverage at %.0f%% budget: guided %.3f vs random %.3f", fraction*100, guided, random)
	if guided <= random {
		t.Errorf("guided selection (%.3f) should beat random (%.3f)", guided, random)
	}
}

func TestGuidedSelectorEdges(t *testing.T) {
	sel := GuidedSelector(nil, 1)
	if !sel("f", 0, asmInst{}) {
		t.Error("fraction 1 must protect everything")
	}
	stats := []fi.SiteStats{
		{Loc: locOf("main", 3), Faults: 10, SDCs: 8},
		{Loc: locOf("main", 7), Faults: 10, SDCs: 0},
	}
	sel = GuidedSelector(stats, 0.5)
	if !sel("main", 3, asmInst{}) {
		t.Error("most SDC-prone location not protected")
	}
	if sel("main", 7, asmInst{}) {
		t.Error("benign location protected within half budget")
	}
	if sel("other", 1, asmInst{}) {
		t.Error("unobserved location protected")
	}
}
