// Package harness assembles the paper's evaluation (§IV): it builds each
// benchmark under each protection technique, runs assembly-level and
// IR-level fault-injection campaigns, measures runtime overhead on the
// machine cycle model, and renders every table and figure of the paper
// (Table I, Table II, fig. 10, fig. 11, the §IV-B3 transform-time
// measurement, and the cross-layer anticipated-vs-measured coverage gap).
package harness

import (
	"fmt"
	"time"

	"ferrum/internal/asm"
	"ferrum/internal/backend"
	"ferrum/internal/compose"
	"ferrum/internal/eddi"
	"ferrum/internal/ferrumpass"
	"ferrum/internal/fi"
	"ferrum/internal/ir"
	"ferrum/internal/irpass"
	"ferrum/internal/obs"
	"ferrum/internal/opt"
	"ferrum/internal/rodinia"
)

// Technique identifies one protection scheme from the paper's evaluation.
type Technique string

// The paper's techniques. Raw is the unprotected baseline every metric is
// relative to.
const (
	Raw    Technique = "raw"
	IREDDI Technique = "ir-level-eddi"
	Hybrid Technique = "hybrid-assembly-level-eddi"
	Ferrum Technique = "ferrum"
)

// Techniques lists the protected techniques in the paper's presentation
// order.
var Techniques = []Technique{IREDDI, Hybrid, Ferrum}

// Build holds one compiled (and possibly protected) benchmark binary plus
// metadata about the transformation.
type Build struct {
	Technique   Technique
	Prog        *asm.Program
	ProtectedIR *ir.Module    // IR after IR-level passes (nil for asm-only)
	Transform   time.Duration // wall-clock protection time (FERRUM: §IV-B3)
	FerrumStats *ferrumpass.Report
	HybridStats *eddi.Report
}

// BuildTechnique compiles the module under the given technique:
//
//	raw:     backend only
//	ir-eddi: irpass.EDDI -> backend
//	hybrid:  irpass.Signature -> backend -> eddi.Protect
//	ferrum:  backend -> ferrumpass.Protect
func BuildTechnique(mod *ir.Module, tech Technique) (*Build, error) {
	return BuildTechniqueOpts(mod, tech, BuildOptions{})
}

// BuildOptions tunes the build pipeline.
type BuildOptions struct {
	// Optimize inserts the -O1-style peephole optimizer between the
	// backend and the assembly-level protection passes, modelling
	// production compilation (see internal/opt).
	Optimize bool
}

// BuildTechniqueOpts compiles the module under the given technique with
// explicit build options.
func BuildTechniqueOpts(mod *ir.Module, tech Technique, bo BuildOptions) (*Build, error) {
	b := &Build{Technique: tech}
	compile := func(m *ir.Module) (*asm.Program, error) {
		prog, err := backend.Compile(m)
		if err != nil {
			return nil, err
		}
		if bo.Optimize {
			prog, _, err = opt.Optimize(prog)
			if err != nil {
				return nil, err
			}
		}
		return prog, nil
	}
	switch tech {
	case Raw:
		prog, err := compile(mod)
		if err != nil {
			return nil, err
		}
		b.Prog = prog
	case IREDDI:
		start := time.Now()
		prot, err := irpass.EDDI(mod)
		if err != nil {
			return nil, err
		}
		b.Transform = time.Since(start)
		b.ProtectedIR = prot
		prog, err := compile(prot)
		if err != nil {
			return nil, err
		}
		b.Prog = prog
	case Hybrid:
		start := time.Now()
		sig, err := irpass.Signature(mod)
		if err != nil {
			return nil, err
		}
		b.ProtectedIR = sig
		prog, err := compile(sig)
		if err != nil {
			return nil, err
		}
		prot, rep, err := eddi.Protect(prog)
		if err != nil {
			return nil, err
		}
		b.Transform = time.Since(start)
		b.Prog = prot
		b.HybridStats = rep
	case Ferrum:
		prog, err := compile(mod)
		if err != nil {
			return nil, err
		}
		prot, rep, err := ferrumpass.Protect(prog, ferrumpass.Config{})
		if err != nil {
			return nil, err
		}
		b.Prog = prot
		b.Transform = rep.Duration
		b.FerrumStats = rep
	default:
		return nil, fmt.Errorf("harness: unknown technique %q", tech)
	}
	return b, nil
}

// DefaultSeed is the seed the paper-scale reproduction uses. It is applied
// at the flag layer (cmd/reprod defaults -seed to it); the harness itself
// treats every seed — including zero — as an honest seed.
const DefaultSeed int64 = 20240624

// Options configures an experiment run.
type Options struct {
	Samples int // fault injections per campaign cell (paper: 1000)
	// Seed is the base RNG seed. Zero is a real seed, not "use default";
	// callers wanting the paper's seed pass DefaultSeed explicitly.
	Seed       int64
	Scale      int      // benchmark scale factor (1 = default)
	MemSize    int      // machine/interpreter memory (0 = 1 MiB)
	Workers    int      // intra-campaign parallelism (0 = GOMAXPROCS/CellWorkers)
	Benchmarks []string // nil = all eight
	// Optimize runs every build through the -O1-style peephole optimizer
	// before protection, modelling production compilation.
	Optimize bool
	// CellWorkers bounds how many independent (benchmark × technique)
	// campaign cells run concurrently (0 = GOMAXPROCS). Rendered tables
	// are byte-identical for any value: fault plans are pre-generated per
	// cell from the seed and results land in per-cell slots.
	CellWorkers int
	// Cache memoises benchmark instances, technique builds and golden runs.
	// Pass one cache to several experiment calls to share builds across a
	// whole suite (cmd/reprod does); nil gives each call a private cache.
	Cache *BuildCache
	// Progress, if non-nil, receives live cell status events. Callbacks
	// are serialised by the scheduler, so implementations need no locking
	// of their own.
	Progress func(CellEvent)
	// NoCheckpoint disables checkpointed fast-forwarding in every campaign
	// (see fi.Campaign.NoCheckpoint); results are byte-identical either way.
	NoCheckpoint bool
	// CheckpointEvery overrides the per-campaign snapshot spacing K
	// (0 = auto-tune per cell from DynSites/√Samples).
	CheckpointEvery uint64
	// CellTimeout, if > 0, arms a per-cell watchdog: a cell still running
	// after this long is cooperatively canceled (its campaign stops at the
	// next batch boundary), recorded as ErrCellTimeout and counted in
	// sched.timeouts, while sibling cells keep running. Journaled plans the
	// cell completed before the deadline remain resumable.
	CellTimeout time.Duration
	// MaxRetries re-attempts a transiently failing cell up to this many
	// extra times (sched.retries counts them). Watchdog timeouts are never
	// retried. Retries are deterministic re-runs: results and journal
	// records are identical, so no double counting occurs.
	MaxRetries int
	// RetryBackoff is the sleep before the first retry, doubled each
	// further attempt. Zero retries immediately.
	RetryBackoff time.Duration
	// CIWidth, if > 0, enables Wilson-interval early stopping in every
	// campaign cell (see fi.Campaign.CIWidth): a campaign ends once the 95%
	// CI of its SDC rate over the completed plan prefix is no wider than
	// this, deterministically for any worker count.
	CIWidth float64
	// Prune selects static bit-level fault-site pruning for every
	// assembly-level campaign cell (see fi.Campaign.Prune): plans the
	// liveness/masking analysis proves Benign are answered without
	// executing, and under fi.PruneFull one representative per
	// (static instruction, bit) class stands in for its whole class.
	// IR-level cells ignore it (the analysis is assembly-only).
	// Incompatible with CIWidth.
	Prune fi.PruneMode
	// Compose selects compositional sectioned campaigns for every
	// assembly-level campaign cell (see fi.Campaign.Compose): plans run only
	// to their section boundary, boundary descriptors compose into
	// whole-program outcomes, and per-section propagation tables are cached
	// by content fingerprint so re-runs re-inject only changed sections.
	// IR-level cells ignore it (sections are machine snapshots).
	// Incompatible with Prune, CIWidth and delegation.
	Compose fi.ComposeMode
	// SectionCache supplies the section-table cache compose mode serves
	// from. Nil with Compose on uses the BuildCache's shared section cache,
	// so a suite reuses tables across experiments exactly as it reuses
	// builds.
	SectionCache *compose.Cache
	// Journal, if non-nil, makes every campaign cell durable: one record
	// per completed plan and per completed campaign, keyed by
	// "<experiment>/<cell>", fsync-batched (see fi.CreateJournal).
	Journal *fi.Journal
	// Resume, if non-nil, is a loaded journal from an interrupted run:
	// journaled campaigns are answered from their cell records and
	// partially-journaled campaigns re-run only their missing plans,
	// producing byte-identical tables to an uninterrupted run.
	Resume *fi.JournalState
	// CampaignStats, if non-nil, accumulates checkpointing counters across
	// every campaign the experiments run (shared, concurrency-safe). It
	// predates Obs, which captures the same counters (and more) in one
	// registry; kept as a thin adapter for library callers.
	CampaignStats *fi.CampaignStats
	// Obs, if non-nil, collects metrics and per-phase spans from the
	// scheduler, the build cache and every campaign: cells become timeline
	// slices on their worker's lane, and the suite summary, NDJSON event
	// stream and Perfetto export all render from its registry. Nil disables
	// all instrumentation (nil observer handles are no-ops throughout).
	Obs *obs.Observer
	// Delegate, if non-nil, routes every injection-campaign cell to an
	// external campaign service (the fiserve coordinator) instead of
	// building and running it in this process: the scheduler hands over a
	// CampaignSpec and adopts whatever Result comes back. Campaign results
	// are deterministic functions of the spec, so delegated tables are
	// byte-identical to local ones. Build-only experiments (Fig11, ExecTime)
	// always run locally; journaling, pruning and early stopping belong to
	// the service in delegated mode, not to these Options.
	Delegate func(CampaignSpec) (fi.Result, error)
}

// CampaignSpec names one injection campaign precisely enough for another
// process to reproduce it: the deterministic plan space (samples, seed,
// bits) plus the target recipe (benchmark, scale, technique, level,
// optimization). It deliberately carries no worker counts, journal paths or
// checkpoint tuning — nothing that can change the campaign's result.
type CampaignSpec struct {
	Bench     string    `json:"bench"`
	Technique Technique `json:"technique"`
	Level     string    `json:"level"` // "asm" or "ir"
	Samples   int       `json:"samples"`
	Seed      int64     `json:"seed"`
	Scale     int       `json:"scale"`
	Bits      int       `json:"bits,omitempty"`
	Optimize  bool      `json:"optimize,omitempty"`
}

// RunSpec executes one CampaignSpec in this process: it instantiates the
// named benchmark at the spec's scale and seed, builds the technique, and
// runs the injection campaign. The caller's Campaign supplies everything a
// spec deliberately omits — worker count, sharding, journal, observability —
// while RunSpec fills in the result-determining fields from the spec.
// fiserve workers execute leased shards through this, and a local
// Options.Delegate built on it reproduces in-process results exactly.
func RunSpec(spec CampaignSpec, c fi.Campaign) (fi.Result, error) {
	b, ok := rodinia.ByName(spec.Bench)
	if !ok {
		return fi.Result{}, fmt.Errorf("harness: unknown benchmark %q", spec.Bench)
	}
	scale := spec.Scale
	if scale == 0 {
		scale = 1
	}
	inst, err := b.Instantiate(scale, spec.Seed)
	if err != nil {
		return fi.Result{}, err
	}
	c.Samples = spec.Samples
	c.Seed = spec.Seed
	if spec.Bits > 0 {
		c.BitsPerFault = spec.Bits
	}
	switch spec.Level {
	case "ir":
		mod := inst.Mod
		switch spec.Technique {
		case Raw:
		case IREDDI:
			build, err := BuildTechniqueOpts(inst.Mod, IREDDI, BuildOptions{Optimize: spec.Optimize})
			if err != nil {
				return fi.Result{}, err
			}
			mod = build.ProtectedIR
		default:
			return fi.Result{}, fmt.Errorf("harness: IR-level injection supports raw and ir-level-eddi, not %q", spec.Technique)
		}
		// The prune analysis is assembly-level; IR campaigns always run
		// unpruned (matching irCampaignCell).
		c.Prune = fi.PruneOff
		return fi.RunIRCampaign(irTarget(inst, mod), c)
	case "asm":
		build, err := BuildTechniqueOpts(inst.Mod, spec.Technique, BuildOptions{Optimize: spec.Optimize})
		if err != nil {
			return fi.Result{}, err
		}
		return fi.RunAsmCampaign(asmTarget(inst, build), c)
	default:
		return fi.Result{}, fmt.Errorf("harness: unknown injection level %q", spec.Level)
	}
}

func (o Options) withDefaults() Options {
	if o.Samples == 0 {
		o.Samples = 1000
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.MemSize == 0 {
		o.MemSize = 1 << 20
	}
	if o.Benchmarks == nil {
		for _, b := range rodinia.All() {
			o.Benchmarks = append(o.Benchmarks, b.Name)
		}
	}
	if o.Cache == nil {
		o.Cache = NewBuildCache()
	}
	if o.SectionCache == nil && o.Compose != fi.ComposeOff {
		o.SectionCache = o.Cache.Sections()
	}
	// Bind the cache's counters into the observer's registry so cache.*
	// metrics appear alongside everything else (idempotent per observer).
	o.Cache.Observe(o.Obs)
	o.SectionCache.Observe(o.Obs)
	o.Journal.Observe(o.Obs)
	return o
}

func (o Options) instances() ([]*rodinia.Instance, error) {
	return o.instancesAt(o.Seed)
}

// instancesAt instantiates the selected benchmarks at an explicit seed
// (Variation shifts the base seed per cell), memoised through the cache.
func (o Options) instancesAt(seed int64) ([]*rodinia.Instance, error) {
	var out []*rodinia.Instance
	for _, name := range o.Benchmarks {
		b, ok := rodinia.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown benchmark %q", name)
		}
		var inst *rodinia.Instance
		var err error
		if o.Cache != nil {
			inst, err = o.Cache.instance(b, o.Scale, seed)
		} else {
			inst, err = b.Instantiate(o.Scale, seed)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, inst)
	}
	return out, nil
}
