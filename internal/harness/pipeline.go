// Package harness assembles the paper's evaluation (§IV): it builds each
// benchmark under each protection technique, runs assembly-level and
// IR-level fault-injection campaigns, measures runtime overhead on the
// machine cycle model, and renders every table and figure of the paper
// (Table I, Table II, fig. 10, fig. 11, the §IV-B3 transform-time
// measurement, and the cross-layer anticipated-vs-measured coverage gap).
package harness

import (
	"fmt"
	"time"

	"ferrum/internal/asm"
	"ferrum/internal/backend"
	"ferrum/internal/eddi"
	"ferrum/internal/ferrumpass"
	"ferrum/internal/ir"
	"ferrum/internal/irpass"
	"ferrum/internal/opt"
	"ferrum/internal/rodinia"
)

// Technique identifies one protection scheme from the paper's evaluation.
type Technique string

// The paper's techniques. Raw is the unprotected baseline every metric is
// relative to.
const (
	Raw    Technique = "raw"
	IREDDI Technique = "ir-level-eddi"
	Hybrid Technique = "hybrid-assembly-level-eddi"
	Ferrum Technique = "ferrum"
)

// Techniques lists the protected techniques in the paper's presentation
// order.
var Techniques = []Technique{IREDDI, Hybrid, Ferrum}

// Build holds one compiled (and possibly protected) benchmark binary plus
// metadata about the transformation.
type Build struct {
	Technique   Technique
	Prog        *asm.Program
	ProtectedIR *ir.Module    // IR after IR-level passes (nil for asm-only)
	Transform   time.Duration // wall-clock protection time (FERRUM: §IV-B3)
	FerrumStats *ferrumpass.Report
	HybridStats *eddi.Report
}

// BuildTechnique compiles the module under the given technique:
//
//	raw:     backend only
//	ir-eddi: irpass.EDDI -> backend
//	hybrid:  irpass.Signature -> backend -> eddi.Protect
//	ferrum:  backend -> ferrumpass.Protect
func BuildTechnique(mod *ir.Module, tech Technique) (*Build, error) {
	return BuildTechniqueOpts(mod, tech, BuildOptions{})
}

// BuildOptions tunes the build pipeline.
type BuildOptions struct {
	// Optimize inserts the -O1-style peephole optimizer between the
	// backend and the assembly-level protection passes, modelling
	// production compilation (see internal/opt).
	Optimize bool
}

// BuildTechniqueOpts compiles the module under the given technique with
// explicit build options.
func BuildTechniqueOpts(mod *ir.Module, tech Technique, bo BuildOptions) (*Build, error) {
	b := &Build{Technique: tech}
	compile := func(m *ir.Module) (*asm.Program, error) {
		prog, err := backend.Compile(m)
		if err != nil {
			return nil, err
		}
		if bo.Optimize {
			prog, _, err = opt.Optimize(prog)
			if err != nil {
				return nil, err
			}
		}
		return prog, nil
	}
	switch tech {
	case Raw:
		prog, err := compile(mod)
		if err != nil {
			return nil, err
		}
		b.Prog = prog
	case IREDDI:
		start := time.Now()
		prot, err := irpass.EDDI(mod)
		if err != nil {
			return nil, err
		}
		b.Transform = time.Since(start)
		b.ProtectedIR = prot
		prog, err := compile(prot)
		if err != nil {
			return nil, err
		}
		b.Prog = prog
	case Hybrid:
		start := time.Now()
		sig, err := irpass.Signature(mod)
		if err != nil {
			return nil, err
		}
		b.ProtectedIR = sig
		prog, err := compile(sig)
		if err != nil {
			return nil, err
		}
		prot, rep, err := eddi.Protect(prog)
		if err != nil {
			return nil, err
		}
		b.Transform = time.Since(start)
		b.Prog = prot
		b.HybridStats = rep
	case Ferrum:
		prog, err := compile(mod)
		if err != nil {
			return nil, err
		}
		prot, rep, err := ferrumpass.Protect(prog, ferrumpass.Config{})
		if err != nil {
			return nil, err
		}
		b.Prog = prot
		b.Transform = rep.Duration
		b.FerrumStats = rep
	default:
		return nil, fmt.Errorf("harness: unknown technique %q", tech)
	}
	return b, nil
}

// Options configures an experiment run.
type Options struct {
	Samples    int      // fault injections per campaign cell (paper: 1000)
	Seed       int64    // base RNG seed
	Scale      int      // benchmark scale factor (1 = default)
	MemSize    int      // machine/interpreter memory (0 = 1 MiB)
	Workers    int      // campaign parallelism (0 = GOMAXPROCS)
	Benchmarks []string // nil = all eight
	// Optimize runs every build through the -O1-style peephole optimizer
	// before protection, modelling production compilation.
	Optimize bool
}

func (o Options) withDefaults() Options {
	if o.Samples == 0 {
		o.Samples = 1000
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.MemSize == 0 {
		o.MemSize = 1 << 20
	}
	if o.Seed == 0 {
		o.Seed = 20240624
	}
	if o.Benchmarks == nil {
		for _, b := range rodinia.All() {
			o.Benchmarks = append(o.Benchmarks, b.Name)
		}
	}
	return o
}

func (o Options) instances() ([]*rodinia.Instance, error) {
	var out []*rodinia.Instance
	for _, name := range o.Benchmarks {
		b, ok := rodinia.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown benchmark %q", name)
		}
		inst, err := b.Instantiate(o.Scale, o.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, inst)
	}
	return out, nil
}
