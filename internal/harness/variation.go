package harness

import (
	"fmt"
	"math"
	"strings"

	"ferrum/internal/fi"
)

// VariationRow summarises how a technique's runtime overhead varies across
// program inputs for one benchmark — the phenomenon the paper's authors
// study in their companion work on runtime performance variation in EDDI
// (ref. [37]): protection overhead is not a single number but a
// distribution over inputs.
type VariationRow struct {
	Benchmark string
	Technique Technique
	Seeds     int
	Mean      float64
	Min       float64
	Max       float64
	StdDev    float64
}

// Variation measures per-technique overhead across several input seeds.
// Each (benchmark × seed) measurement is an independent scheduler cell;
// golden runs are memoised per seed, so the base-seed cell shares builds
// with the other experiments in a suite.
func Variation(opts Options, seeds int) ([]VariationRow, error) {
	opts = opts.withDefaults()
	if seeds < 2 {
		seeds = 5
	}
	sched := newScheduler("variation", opts)
	// overheads[bench][seed][tech]
	overheads := make([][][]float64, len(opts.Benchmarks))
	var cells []cellSpec
	for bi, name := range opts.Benchmarks {
		overheads[bi] = make([][]float64, seeds)
		for s := 0; s < seeds; s++ {
			seed := opts.Seed + int64(s)
			cells = append(cells, cellSpec{
				name: fmt.Sprintf("%s/seed+%d", name, s),
				run: func(cc *cellCtx) error {
					seedOpts := opts
					seedOpts.Benchmarks = []string{opts.Benchmarks[bi]}
					insts, err := seedOpts.instancesAt(seed)
					if err != nil {
						return err
					}
					inst := instanceAt{insts[0], seed}
					raw, err := sched.golden(cc.cx, inst, Raw)
					if err != nil {
						return fmt.Errorf("%s/raw: %w", insts[0].Bench.Name, err)
					}
					ovs := make([]float64, len(Techniques))
					for ti, tech := range Techniques {
						g, err := sched.golden(cc.cx, inst, tech)
						if err != nil {
							return fmt.Errorf("%s/%s: %w", insts[0].Bench.Name, tech, err)
						}
						ovs[ti] = fi.Overhead(raw.cycles, g.cycles)
					}
					overheads[bi][s] = ovs
					return nil
				},
			})
		}
	}
	if err := sched.run(cells); err != nil {
		return nil, err
	}
	var rows []VariationRow
	for bi, name := range opts.Benchmarks {
		for ti, tech := range Techniques {
			xs := make([]float64, seeds)
			for s := 0; s < seeds; s++ {
				xs[s] = overheads[bi][s][ti]
			}
			rows = append(rows, VariationRow{
				Benchmark: name,
				Technique: tech,
				Seeds:     seeds,
				Mean:      mean(xs),
				Min:       minOf(xs),
				Max:       maxOf(xs),
				StdDev:    stddev(xs),
			})
		}
	}
	return rows, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - mu) * (x - mu)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// RenderVariation renders the input-variation table.
func RenderVariation(rows []VariationRow) string {
	t := &table{header: []string{"benchmark", "technique", "mean", "min", "max", "stddev"}}
	last := ""
	for _, r := range rows {
		name := ""
		if r.Benchmark != last {
			name, last = r.Benchmark, r.Benchmark
		}
		t.add(name, string(r.Technique), pct(r.Mean), pct(r.Min), pct(r.Max),
			fmt.Sprintf("%.2fpp", r.StdDev*100))
	}
	var b strings.Builder
	b.WriteString("Overhead variation across inputs (ref. [37] companion study)\n\n")
	b.WriteString(t.String())
	return b.String()
}
