package harness

import (
	"fmt"
	"math"
	"strings"

	"ferrum/internal/fi"
)

// VariationRow summarises how a technique's runtime overhead varies across
// program inputs for one benchmark — the phenomenon the paper's authors
// study in their companion work on runtime performance variation in EDDI
// (ref. [37]): protection overhead is not a single number but a
// distribution over inputs.
type VariationRow struct {
	Benchmark string
	Technique Technique
	Seeds     int
	Mean      float64
	Min       float64
	Max       float64
	StdDev    float64
}

// Variation measures per-technique overhead across several input seeds.
func Variation(opts Options, seeds int) ([]VariationRow, error) {
	opts = opts.withDefaults()
	if seeds < 2 {
		seeds = 5
	}
	var rows []VariationRow
	for _, name := range opts.Benchmarks {
		samples := map[Technique][]float64{}
		for s := 0; s < seeds; s++ {
			seedOpts := opts
			seedOpts.Seed = opts.Seed + int64(s)
			seedOpts.Benchmarks = []string{name}
			insts, err := seedOpts.instances()
			if err != nil {
				return nil, err
			}
			inst := insts[0]
			raw, err := goldenRun(inst, Raw, BuildOptions{Optimize: opts.Optimize})
			if err != nil {
				return nil, err
			}
			for _, tech := range Techniques {
				g, err := goldenRun(inst, tech, BuildOptions{Optimize: opts.Optimize})
				if err != nil {
					return nil, err
				}
				samples[tech] = append(samples[tech], fi.Overhead(raw.cycles, g.cycles))
			}
		}
		for _, tech := range Techniques {
			xs := samples[tech]
			rows = append(rows, VariationRow{
				Benchmark: name,
				Technique: tech,
				Seeds:     seeds,
				Mean:      mean(xs),
				Min:       minOf(xs),
				Max:       maxOf(xs),
				StdDev:    stddev(xs),
			})
		}
	}
	return rows, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - mu) * (x - mu)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// RenderVariation renders the input-variation table.
func RenderVariation(rows []VariationRow) string {
	t := &table{header: []string{"benchmark", "technique", "mean", "min", "max", "stddev"}}
	last := ""
	for _, r := range rows {
		name := ""
		if r.Benchmark != last {
			name, last = r.Benchmark, r.Benchmark
		}
		t.add(name, string(r.Technique), pct(r.Mean), pct(r.Min), pct(r.Max),
			fmt.Sprintf("%.2fpp", r.StdDev*100))
	}
	var b strings.Builder
	b.WriteString("Overhead variation across inputs (ref. [37] companion study)\n\n")
	b.WriteString(t.String())
	return b.String()
}
