// Package irpass implements the paper's IR-level protection passes:
//
//   - EDDI: classic error detection by duplicated instructions at IR level
//     (fig. 2 of the paper) — the IR-LEVEL-EDDI baseline.
//   - Signature: SWIFT-style condition-signature protection of comparison
//     and branch instructions — the IR-level half of the
//     HYBRID-ASSEMBLY-LEVEL-EDDI baseline (Table I's "branch" and
//     "comparison" rows for that technique).
//
// Both passes return transformed clones; the input module is not modified.
package irpass

import (
	"fmt"

	"ferrum/internal/ir"
)

// DupSuffix is appended to a value name to form its EDDI shadow name.
const DupSuffix = ".d"

// EDDI applies IR-level instruction duplication to every function in the
// module: duplicable computations (arithmetic, compares, loads, address
// computations) are executed twice, and before every synchronisation point
// (store, conditional branch, call, return, output) the values it consumes
// are compared against their shadows with the check intrinsic.
//
// Memory is not duplicated (the fault model assumes ECC), so stores happen
// once and a duplicated load re-reads the same address through the shadow
// address chain, exactly as in classic EDDI.
func EDDI(mod *ir.Module) (*ir.Module, error) {
	out := ir.Clone(mod)
	for _, f := range out.Funcs {
		transformFuncEDDI(f)
	}
	if err := ir.Verify(out); err != nil {
		return nil, fmt.Errorf("irpass: EDDI produced invalid IR: %w", err)
	}
	return out, nil
}

func dupable(op ir.Op) bool {
	if op.IsBinary() {
		return true
	}
	switch op {
	case ir.OpICmp, ir.OpLoad, ir.OpGEP:
		return true
	}
	return false
}

func transformFuncEDDI(f *ir.Func) {
	// shadow maps an original value to its duplicate computation. Values
	// with no entry (params, constants, alloca addresses, call results)
	// are their own shadow: they are EDDI sphere inputs.
	shadow := map[ir.Value]ir.Value{}
	shadowOf := func(v ir.Value) ir.Value {
		if s, ok := shadow[v]; ok {
			return s
		}
		return v
	}

	for _, b := range f.Blocks {
		var insts []*ir.Inst
		emitChecks := func(vals ...ir.Value) {
			for _, v := range vals {
				s := shadowOf(v)
				if s == v {
					continue
				}
				insts = append(insts, &ir.Inst{Op: ir.OpCheck, Args: []ir.Value{v, s}, Prov: ir.ProvCheck})
			}
		}
		for _, in := range b.Insts {
			switch {
			case dupable(in.Op):
				insts = append(insts, in)
				dup := &ir.Inst{
					Op:   in.Op,
					Name: in.Name + DupSuffix,
					Pred: in.Pred,
					Prov: ir.ProvDup,
				}
				for _, a := range in.Args {
					dup.Args = append(dup.Args, shadowOf(a))
				}
				insts = append(insts, dup)
				shadow[in] = dup

			case in.Op == ir.OpStore:
				emitChecks(in.Args[0], in.Args[1])
				insts = append(insts, in)

			case in.Op == ir.OpCondBr:
				emitChecks(in.Args[0])
				insts = append(insts, in)

			case in.Op == ir.OpCall:
				emitChecks(in.Args...)
				insts = append(insts, in)

			case in.Op == ir.OpRet, in.Op == ir.OpOut:
				emitChecks(in.Args...)
				insts = append(insts, in)

			default:
				// alloca, br, check: pass through.
				insts = append(insts, in)
			}
		}
		b.Insts = insts
	}
}
