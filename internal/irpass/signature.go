package irpass

import (
	"fmt"

	"ferrum/internal/ir"
)

// SigSuffix is appended to a condition name to form its signature copy.
const SigSuffix = ".sig"

// Signature applies SWIFT-style condition-signature protection to every
// conditional branch: the branch condition is computed a second time,
// independently of the copy the branch consumes, and each outgoing edge is
// split with a block that verifies the recomputed condition matches the
// direction actually taken. A transient fault that corrupts the branch
// condition or flips the flags feeding the jump sends control down an edge
// whose expectation disagrees with the intact recomputation, and the check
// traps.
//
// This is the protection the paper's HYBRID-ASSEMBLY-LEVEL-EDDI baseline
// uses for the "branch" and "comparison" instruction classes (Table I),
// following the open-source IR patches of the authors' prior work [13].
func Signature(mod *ir.Module) (*ir.Module, error) {
	out := ir.Clone(mod)
	for _, f := range out.Funcs {
		transformFuncSignature(f)
	}
	if err := ir.Verify(out); err != nil {
		return nil, fmt.Errorf("irpass: Signature produced invalid IR: %w", err)
	}
	return out, nil
}

func transformFuncSignature(f *ir.Func) {
	// Recompute each condbr condition. For a condition defined by an
	// instruction, duplicate that instruction immediately after the
	// original so the signature is an independent dataflow copy. For
	// parameters or constants, materialise a copy at function entry.
	sig := map[ir.Value]ir.Value{}
	sigCounter := 0

	// Collect conditions needing signatures.
	var needSig []ir.Value
	seen := map[ir.Value]bool{}
	for _, b := range f.Blocks {
		if t := b.Terminator(); t != nil && t.Op == ir.OpCondBr {
			c := t.Args[0]
			if _, isConst := c.(ir.Const); isConst {
				continue
			}
			if !seen[c] {
				seen[c] = true
				needSig = append(needSig, c)
			}
		}
	}
	if len(needSig) == 0 {
		return
	}

	// Insert duplicates.
	for _, b := range f.Blocks {
		var insts []*ir.Inst
		for _, in := range b.Insts {
			insts = append(insts, in)
			if !seen[in] {
				continue
			}
			dup := &ir.Inst{
				Op:   in.Op,
				Name: fmt.Sprintf("%s%s%d", in.Name, SigSuffix, sigCounter),
				Pred: in.Pred,
				Args: append([]ir.Value(nil), in.Args...),
				Prov: ir.ProvDup,
			}
			sigCounter++
			insts = append(insts, dup)
			sig[in] = dup
		}
		b.Insts = insts
	}
	// Parameter conditions: copy at entry via add 0.
	var entryPrefix []*ir.Inst
	for _, c := range needSig {
		p, ok := c.(*ir.Param)
		if !ok {
			continue
		}
		dup := &ir.Inst{
			Op:   ir.OpAdd,
			Name: fmt.Sprintf("%s%s%d", p.Name, SigSuffix, sigCounter),
			Args: []ir.Value{p, ir.Const(0)},
			Prov: ir.ProvDup,
		}
		sigCounter++
		entryPrefix = append(entryPrefix, dup)
		sig[p] = dup
	}
	if len(entryPrefix) > 0 {
		entry := f.Blocks[0]
		entry.Insts = append(entryPrefix, entry.Insts...)
	}

	// Split every conditional edge with a verification block.
	var newBlocks []*ir.Block
	edgeCounter := 0
	for _, b := range f.Blocks {
		newBlocks = append(newBlocks, b)
		t := b.Terminator()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		c := t.Args[0]
		s, ok := sig[c]
		if !ok {
			continue // constant condition
		}
		makeEdge := func(target string, takenExpect bool) string {
			name := fmt.Sprintf("%s.sigedge%d", b.Name, edgeCounter)
			edgeCounter++
			var checkInst *ir.Inst
			if inst, isInst := c.(*ir.Inst); isInst && inst.Op == ir.OpICmp {
				// icmp conditions are 0/1: compare directly.
				expect := ir.Const(0)
				if takenExpect {
					expect = ir.Const(1)
				}
				checkInst = &ir.Inst{Op: ir.OpCheck, Args: []ir.Value{s, expect}, Prov: ir.ProvCheck}
				newBlocks = append(newBlocks, &ir.Block{Name: name, Insts: []*ir.Inst{
					checkInst,
					{Op: ir.OpBr, Targets: []string{target}},
				}})
				return name
			}
			// General conditions: normalise to 0/1 first.
			norm := &ir.Inst{
				Op:   ir.OpICmp,
				Name: fmt.Sprintf("sig.norm%d", edgeCounter),
				Pred: ir.PredNE,
				Args: []ir.Value{s, ir.Const(0)},
				Prov: ir.ProvCheck,
			}
			expect := ir.Const(0)
			if takenExpect {
				expect = ir.Const(1)
			}
			checkInst = &ir.Inst{Op: ir.OpCheck, Args: []ir.Value{norm, expect}, Prov: ir.ProvCheck}
			newBlocks = append(newBlocks, &ir.Block{Name: name, Insts: []*ir.Inst{
				norm,
				checkInst,
				{Op: ir.OpBr, Targets: []string{target}},
			}})
			return name
		}
		t.Targets[0] = makeEdge(t.Targets[0], true)
		t.Targets[1] = makeEdge(t.Targets[1], false)
	}
	f.Blocks = newBlocks
}
