package irpass

import (
	"math/rand"
	"strings"
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/backend"
	"ferrum/internal/ir"
	"ferrum/internal/machine"
	"ferrum/internal/progen"
)

const memSize = 1 << 20

const loopSrc = `
func @main(%n, %base) {
entry:
  %acc = alloca 1
  %i = alloca 1
  store 0, %acc
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = icmp slt %iv, %n
  br %c, body, done
body:
  %p = gep %base, %iv
  %v = load %p
  %a = load %acc
  %a2 = add %a, %v
  store %a2, %acc
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  %r = load %acc
  out %r
  ret %r
}
`

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return m
}

func interpret(t *testing.T, mod *ir.Module, args []uint64, load func(func(addr, v uint64))) ir.RunResult {
	t.Helper()
	ip, err := ir.NewInterp(mod, memSize)
	if err != nil {
		t.Fatalf("NewInterp: %v", err)
	}
	if load != nil {
		load(func(addr, v uint64) {
			if err := ip.WriteWordImage(addr, v); err != nil {
				t.Fatal(err)
			}
		})
	}
	return ip.Run(ir.RunOpts{Args: args})
}

func loadArray(base uint64, vals []uint64) func(func(addr, v uint64)) {
	return func(w func(addr, v uint64)) {
		for i, v := range vals {
			w(base+8*uint64(i), v)
		}
	}
}

func TestEDDIPreservesSemantics(t *testing.T) {
	mod := parse(t, loopSrc)
	prot, err := EDDI(mod)
	if err != nil {
		t.Fatal(err)
	}
	args := []uint64{4, 8192}
	data := loadArray(8192, []uint64{10, 20, 30, 40})
	orig := interpret(t, mod, args, data)
	protRes := interpret(t, prot, args, data)
	if orig.Outcome != ir.OutcomeOK || protRes.Outcome != ir.OutcomeOK {
		t.Fatalf("outcomes: %v / %v (%s)", orig.Outcome, protRes.Outcome, protRes.CrashMsg)
	}
	if orig.Output[0] != 100 || protRes.Output[0] != 100 {
		t.Fatalf("outputs: %v / %v", orig.Output, protRes.Output)
	}
}

func TestEDDIDuplicatesAndChecks(t *testing.T) {
	mod := parse(t, loopSrc)
	prot, err := EDDI(mod)
	if err != nil {
		t.Fatal(err)
	}
	text := prot.String()
	if !strings.Contains(text, "%iv.d = load") {
		t.Errorf("missing duplicated load:\n%s", text)
	}
	if !strings.Contains(text, "%c.d = icmp slt") {
		t.Errorf("missing duplicated icmp:\n%s", text)
	}
	if !strings.Contains(text, "check %c, %c.d") {
		t.Errorf("missing pre-branch check:\n%s", text)
	}
	if !strings.Contains(text, "check %a2, %a2.d") {
		t.Errorf("missing pre-store value check:\n%s", text)
	}
	// Original module untouched.
	if strings.Contains(mod.String(), ".d") {
		t.Error("EDDI mutated its input module")
	}
}

func TestEDDIDoesNotDuplicateSyncPoints(t *testing.T) {
	mod := parse(t, loopSrc)
	prot, err := EDDI(mod)
	if err != nil {
		t.Fatal(err)
	}
	f := prot.Func("main")
	stores, calls, outs := 0, 0, 0
	origF := mod.Func("main")
	origStores := 0
	for _, b := range origF.Blocks {
		for _, in := range b.Insts {
			if in.Op == ir.OpStore {
				origStores++
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			switch in.Op {
			case ir.OpStore:
				stores++
			case ir.OpCall:
				calls++
			case ir.OpOut:
				outs++
			}
		}
	}
	if stores != origStores {
		t.Errorf("stores duplicated: %d vs %d", stores, origStores)
	}
	if outs != 1 {
		t.Errorf("outs = %d, want 1", outs)
	}
	_ = calls
}

// TestEDDIDetectsIRFaults is the "anticipated coverage" property: injecting
// a bit flip into any value-producing IR instruction of the protected
// program must never produce a silent wrong output.
func TestEDDIDetectsIRFaults(t *testing.T) {
	mod := parse(t, loopSrc)
	prot, err := EDDI(mod)
	if err != nil {
		t.Fatal(err)
	}
	args := []uint64{4, 8192}
	data := loadArray(8192, []uint64{10, 20, 30, 40})

	ip, err := ir.NewInterp(prot, memSize)
	if err != nil {
		t.Fatal(err)
	}
	data(func(addr, v uint64) {
		if err := ip.WriteWordImage(addr, v); err != nil {
			t.Fatal(err)
		}
	})
	golden := ip.Run(ir.RunOpts{Args: args})
	if golden.Outcome != ir.OutcomeOK {
		t.Fatalf("golden outcome: %v", golden.Outcome)
	}
	sdc := 0
	for site := uint64(0); site < golden.Sites; site += 3 {
		for _, bit := range []uint{0, 7, 31, 63} {
			res := ip.Run(ir.RunOpts{Args: args, Fault: &ir.Fault{Site: site, Bit: bit}})
			if res.Outcome == ir.OutcomeOK && !equalOutput(res.Output, golden.Output) {
				sdc++
				t.Errorf("site %d bit %d: silent corruption %v", site, bit, res.Output)
			}
		}
	}
	if sdc != 0 {
		t.Errorf("%d SDCs in EDDI-protected IR", sdc)
	}
}

func equalOutput(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSignaturePreservesSemantics(t *testing.T) {
	mod := parse(t, loopSrc)
	prot, err := Signature(mod)
	if err != nil {
		t.Fatal(err)
	}
	args := []uint64{4, 8192}
	data := loadArray(8192, []uint64{1, 2, 3, 4})
	orig := interpret(t, mod, args, data)
	protRes := interpret(t, prot, args, data)
	if orig.Outcome != ir.OutcomeOK || protRes.Outcome != ir.OutcomeOK {
		t.Fatalf("outcomes: %v / %v (%s)", orig.Outcome, protRes.Outcome, protRes.CrashMsg)
	}
	if !equalOutput(orig.Output, protRes.Output) {
		t.Fatalf("outputs differ: %v vs %v", orig.Output, protRes.Output)
	}
}

func TestSignatureSplitsEdges(t *testing.T) {
	mod := parse(t, loopSrc)
	prot, err := Signature(mod)
	if err != nil {
		t.Fatal(err)
	}
	f := prot.Func("main")
	edges := 0
	for _, b := range f.Blocks {
		if strings.Contains(b.Name, ".sigedge") {
			edges++
			if len(b.Insts) < 2 {
				t.Errorf("edge block %s too small", b.Name)
			}
			if b.Insts[0].Op != ir.OpCheck && b.Insts[1].Op != ir.OpCheck {
				t.Errorf("edge block %s has no check", b.Name)
			}
		}
	}
	if edges != 2 {
		t.Errorf("edge blocks = %d, want 2", edges)
	}
	if !strings.Contains(prot.String(), SigSuffix) {
		t.Error("no signature duplicate emitted")
	}
}

// TestSignatureCatchesBranchFlip verifies the mechanism end to end at the
// assembly level: flip the flags of the rematerialised compare before the
// conditional jump and the signature check in the edge block must trap.
func TestSignatureCatchesBranchFlip(t *testing.T) {
	src := `
func @main(%n) {
entry:
  %c = icmp sgt %n, 10
  br %c, big, small
big:
  out 1
  ret
small:
  out 0
  ret
}
`
	mod := parse(t, src)
	prot, err := Signature(mod)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(prot)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(prog, memSize)
	if err != nil {
		t.Fatal(err)
	}
	golden := m.Run(machine.RunOpts{Args: []uint64{42}, RecordSites: true})
	if golden.Outcome != machine.OutcomeOK || golden.Output[0] != 1 {
		t.Fatalf("golden: %+v", golden)
	}
	// Flip every flags site (the branch-direction faults Signature
	// protects); any wrong-direction branch must be detected, never
	// silent.
	silent := 0
	for site := uint64(0); site < golden.DynSites; site++ {
		if golden.SiteDests[site] != asm.DestFlags {
			continue
		}
		for bit := uint(0); bit < 4; bit++ {
			res := m.Run(machine.RunOpts{Args: []uint64{42}, Fault: &machine.Fault{Site: site, Bit: bit}})
			if res.Outcome == machine.OutcomeOK && !equalOutput(res.Output, golden.Output) {
				silent++
			}
		}
	}
	if silent != 0 {
		t.Errorf("%d silent wrong-direction branches escaped the signature check", silent)
	}
}

// Without Signature, the same flag flips cause silent corruptions — the
// cross-layer gap exists.
func TestUnprotectedBranchFlipIsSilent(t *testing.T) {
	src := `
func @main(%n) {
entry:
  %c = icmp sgt %n, 10
  br %c, big, small
big:
  out 1
  ret
small:
  out 0
  ret
}
`
	mod := parse(t, src)
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(prog, memSize)
	if err != nil {
		t.Fatal(err)
	}
	golden := m.Run(machine.RunOpts{Args: []uint64{42}, RecordSites: true})
	silent := 0
	for site := uint64(0); site < golden.DynSites; site++ {
		if golden.SiteDests[site] != asm.DestFlags {
			continue
		}
		for bit := uint(0); bit < 4; bit++ {
			res := m.Run(machine.RunOpts{Args: []uint64{42}, Fault: &machine.Fault{Site: site, Bit: bit}})
			if res.Outcome == machine.OutcomeOK && !equalOutput(res.Output, golden.Output) {
				silent++
			}
		}
	}
	if silent == 0 {
		t.Error("expected at least one silent corruption in the unprotected program")
	}
}

func TestEDDICompilesAndRuns(t *testing.T) {
	mod := parse(t, loopSrc)
	prot, err := EDDI(mod)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(prot)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(prog, memSize)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []uint64{10, 20, 30, 40} {
		if err := m.WriteWordImage(8192+8*uint64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	res := m.Run(machine.RunOpts{Args: []uint64{4, 8192}})
	if res.Outcome != machine.OutcomeOK || res.Output[0] != 100 {
		t.Fatalf("res = %+v (%s)", res, res.CrashMsg)
	}
}

func TestSignatureParamCondition(t *testing.T) {
	src := `
func @main(%c) {
entry:
  br %c, a, b
a:
  out 1
  ret
b:
  out 0
  ret
}
`
	mod := parse(t, src)
	prot, err := Signature(mod)
	if err != nil {
		t.Fatal(err)
	}
	for _, arg := range []uint64{0, 1, 7} {
		res := interpret(t, prot, []uint64{arg}, nil)
		if res.Outcome != ir.OutcomeOK {
			t.Fatalf("arg %d: outcome %v", arg, res.Outcome)
		}
		want := uint64(0)
		if arg != 0 {
			want = 1
		}
		if res.Output[0] != want {
			t.Errorf("arg %d: output %v, want %d", arg, res.Output, want)
		}
	}
}

func TestEDDIOnConstantConditions(t *testing.T) {
	src := `
func @main() {
entry:
  br 1, a, b
a:
  out 1
  ret
b:
  out 0
  ret
}
`
	mod := parse(t, src)
	for name, pass := range map[string]func(*ir.Module) (*ir.Module, error){"eddi": EDDI, "sig": Signature} {
		prot, err := pass(mod)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := interpret(t, prot, nil, nil)
		if res.Outcome != ir.OutcomeOK || res.Output[0] != 1 {
			t.Errorf("%s: res = %+v", name, res)
		}
	}
}

// TestPassesFuzzPreserveSemantics runs both IR-level passes over random
// generated programs and requires interpreter outputs to be unchanged.
func TestPassesFuzzPreserveSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 50; i++ {
		mod, err := progen.Generate(rng, progen.Options{Stmts: 20, Calls: i%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		args := []uint64{8192, uint64(rng.Int63n(4000)), uint64(rng.Int63n(4000))}
		runMod := func(m *ir.Module) ir.RunResult {
			ip, err := ir.NewInterp(m, memSize)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < 8; s++ {
				if err := ip.WriteWordImage(8192+8*uint64(s), uint64(s*2+1)); err != nil {
					t.Fatal(err)
				}
			}
			return ip.Run(ir.RunOpts{Args: args, MaxSteps: 3_000_000})
		}
		base := runMod(mod)
		if base.Outcome != ir.OutcomeOK {
			t.Fatalf("iter %d: base %v (%s)", i, base.Outcome, base.CrashMsg)
		}
		for name, pass := range map[string]func(*ir.Module) (*ir.Module, error){
			"eddi": EDDI, "signature": Signature,
		} {
			prot, err := pass(mod)
			if err != nil {
				t.Fatalf("iter %d %s: %v", i, name, err)
			}
			res := runMod(prot)
			if res.Outcome != ir.OutcomeOK {
				t.Fatalf("iter %d %s: %v (%s)\n%s", i, name, res.Outcome, res.CrashMsg, prot)
			}
			if len(res.Output) != len(base.Output) {
				t.Fatalf("iter %d %s: output count changed", i, name)
			}
			for j := range res.Output {
				if res.Output[j] != base.Output[j] {
					t.Fatalf("iter %d %s: output[%d] %d vs %d", i, name, j, res.Output[j], base.Output[j])
				}
			}
		}
	}
}

func TestProvenanceMarked(t *testing.T) {
	mod := parse(t, loopSrc)
	prot, err := EDDI(mod)
	if err != nil {
		t.Fatal(err)
	}
	dups, checks := 0, 0
	for _, f := range prot.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				switch in.Prov {
				case ir.ProvDup:
					dups++
				case ir.ProvCheck:
					checks++
				}
			}
		}
	}
	if dups == 0 || checks == 0 {
		t.Errorf("provenance missing: dups=%d checks=%d", dups, checks)
	}
	sig, err := Signature(mod)
	if err != nil {
		t.Fatal(err)
	}
	sigDups := 0
	for _, f := range sig.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.Prov == ir.ProvDup {
					sigDups++
				}
			}
		}
	}
	if sigDups == 0 {
		t.Error("signature pass marked no duplicates")
	}
}
