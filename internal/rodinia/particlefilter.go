package rodinia

import "math/rand"

// Particlefilter: a sequential Monte-Carlo tracker miniature following
// Rodinia's particlefilter: per-step particle propagation with LCG noise,
// likelihood weighting with integer division, cumulative-weight
// computation, systematic resampling and a weighted state estimate. It is
// the largest benchmark, matching the paper's observation that
// particlefilter has the largest static instruction count. Memory layout:
//
//	x[p] | y[p] | w[p] | cw[p] | nx[p] | ny[p] | seed
//
// Arguments: base, nparticles, nsteps. Output: the final x/y estimates and
// a particle checksum.
var Particlefilter = register(&Benchmark{
	Name:   "particlefilter",
	Domain: "Noise estimator",
	source: particlefilterSrc,
	build: func(scale int, rng *rand.Rand) ([]uint64, []uint64) {
		p := 24 * scale
		steps := 5
		words := make([]uint64, 0, 6*p+1)
		for i := 0; i < p; i++ {
			words = append(words, uint64(100+rng.Intn(20))) // x
		}
		for i := 0; i < p; i++ {
			words = append(words, uint64(100+rng.Intn(20))) // y
		}
		for i := 0; i < 4*p; i++ {
			words = append(words, 0) // w, cw, nx, ny
		}
		words = append(words, uint64(rng.Int63n(1<<31)+1)) // seed
		return []uint64{DataBase, uint64(p), uint64(steps)}, words
	},
})

const particlefilterSrc = `
; Rodinia particlefilter miniature: propagate, weight, resample, estimate.
func @lcg(%s) {
entry:
  %m0 = mul %s, 1103515245
  %m1 = add %m0, 12345
  %m2 = and %m1, 2147483647
  ret %m2
}

func @main(%base, %np, %nsteps) {
entry:
  %tS = alloca 1
  %iS = alloca 1
  %jS = alloca 1
  %totS = alloca 1
  %exS = alloca 1
  %eyS = alloca 1
  %csS = alloca 1
  %txS = alloca 1
  %tyS = alloca 1
  %yoff = add %np, 0
  %woff = mul %np, 2
  %cwoff = mul %np, 3
  %nxoff = mul %np, 4
  %nyoff = mul %np, 5
  %seedoff = mul %np, 6
  %yB = gep %base, %yoff
  %wB = gep %base, %woff
  %cwB = gep %base, %cwoff
  %nxB = gep %base, %nxoff
  %nyB = gep %base, %nyoff
  %seedP = gep %base, %seedoff
  store 100, %txS
  store 100, %tyS
  store 0, %tS
  br step
step:
  %t = load %tS
  %tc = icmp slt %t, %nsteps
  br %tc, propagate, finish
propagate:
  ; true object moves deterministically
  %tx0 = load %txS
  %tx1 = add %tx0, 3
  store %tx1, %txS
  %ty0 = load %tyS
  %ty1 = add %ty0, 2
  store %ty1, %tyS
  store 0, %iS
  br ploop
ploop:
  %i = load %iS
  %ic = icmp slt %i, %np
  br %ic, pbody, weight
pbody:
  %s0 = load %seedP
  %s1 = call @lcg(%s0)
  store %s1, %seedP
  %noisex0 = srem %s1, 5
  %noisex = sub %noisex0, 2
  %s2 = call @lcg(%s1)
  store %s2, %seedP
  %noisey0 = srem %s2, 5
  %noisey = sub %noisey0, 2
  %xP = gep %base, %i
  %x0 = load %xP
  %x1 = add %x0, 3
  %x2 = add %x1, %noisex
  store %x2, %xP
  %yP = gep %yB, %i
  %y0 = load %yP
  %y1 = add %y0, 2
  %y2 = add %y1, %noisey
  store %y2, %yP
  %i1 = add %i, 1
  store %i1, %iS
  br ploop
weight:
  store 0, %iS
  store 0, %totS
  br wloop
wloop:
  %wi = load %iS
  %wc = icmp slt %wi, %np
  br %wc, wbody, cumsum
wbody:
  %wxP = gep %base, %wi
  %wx = load %wxP
  %wyP = gep %yB, %wi
  %wy = load %wyP
  %txv = load %txS
  %tyv = load %tyS
  %dx = sub %wx, %txv
  %dy = sub %wy, %tyv
  %dx2 = mul %dx, %dx
  %dy2 = mul %dy, %dy
  %d2 = add %dx2, %dy2
  %d2p1 = add %d2, 1
  %wv = sdiv 65536, %d2p1
  %wslot = gep %wB, %wi
  store %wv, %wslot
  %tot0 = load %totS
  %tot1 = add %tot0, %wv
  store %tot1, %totS
  %wi1 = add %wi, 1
  store %wi1, %iS
  br wloop
cumsum:
  store 0, %iS
  br cloop
cloop:
  %ci = load %iS
  %ccnd = icmp slt %ci, %np
  br %ccnd, cbody, resample
cbody:
  %cwvP = gep %wB, %ci
  %cwv = load %cwvP
  %prev0 = icmp sgt %ci, 0
  br %prev0, chain, first
chain:
  %cim1 = sub %ci, 1
  %prevP = gep %cwB, %cim1
  %prev = load %prevP
  %sum = add %prev, %cwv
  %slotc = gep %cwB, %ci
  store %sum, %slotc
  br cnext
first:
  %slotf = gep %cwB, %ci
  store %cwv, %slotf
  br cnext
cnext:
  %ci1 = add %ci, 1
  store %ci1, %iS
  br cloop
resample:
  ; systematic resampling: u_j = j*total/np; pick first cw > u_j
  store 0, %jS
  br rloop
rloop:
  %j = load %jS
  %jc = icmp slt %j, %np
  br %jc, rbody, copyback
rbody:
  %total = load %totS
  %ju0 = mul %j, %total
  %u = sdiv %ju0, %np
  store 0, %iS
  br pick
pick:
  %pi = load %iS
  %pinb = icmp slt %pi, %np
  br %pinb, picktest, picklast
picktest:
  %pcP = gep %cwB, %pi
  %pc = load %pcP
  %gt = icmp sgt %pc, %u
  br %gt, picked, picknext
picknext:
  %pi1 = add %pi, 1
  store %pi1, %iS
  br pick
picklast:
  %lastI = sub %np, 1
  store %lastI, %iS
  br picked
picked:
  %sel = load %iS
  %selxP = gep %base, %sel
  %selx = load %selxP
  %selyP = gep %yB, %sel
  %sely = load %selyP
  %nxP = gep %nxB, %j
  store %selx, %nxP
  %nyP = gep %nyB, %j
  store %sely, %nyP
  %j1 = add %j, 1
  store %j1, %jS
  br rloop
copyback:
  store 0, %iS
  br cbloop
cbloop:
  %cbi = load %iS
  %cbc = icmp slt %cbi, %np
  br %cbc, cbbody, estimate
cbbody:
  %cbxP = gep %nxB, %cbi
  %cbx = load %cbxP
  %dstxP = gep %base, %cbi
  store %cbx, %dstxP
  %cbyP = gep %nyB, %cbi
  %cby = load %cbyP
  %dstyP = gep %yB, %cbi
  store %cby, %dstyP
  %cbi1 = add %cbi, 1
  store %cbi1, %iS
  br cbloop
estimate:
  store 0, %iS
  store 0, %exS
  store 0, %eyS
  br eloop
eloop:
  %ei = load %iS
  %ec = icmp slt %ei, %np
  br %ec, ebody, enorm
ebody:
  %exP = gep %base, %ei
  %ex = load %exP
  %ex0 = load %exS
  %ex1 = add %ex0, %ex
  store %ex1, %exS
  %eyP = gep %yB, %ei
  %ey = load %eyP
  %ey0 = load %eyS
  %ey1 = add %ey0, %ey
  store %ey1, %eyS
  %ei1 = add %ei, 1
  store %ei1, %iS
  br eloop
enorm:
  %exT = load %exS
  %exAvg = sdiv %exT, %np
  store %exAvg, %exS
  %eyT = load %eyS
  %eyAvg = sdiv %eyT, %np
  store %eyAvg, %eyS
  %t1 = add %t, 1
  store %t1, %tS
  br step
finish:
  %exF = load %exS
  out %exF
  %eyF = load %eyS
  out %eyF
  store 0, %csS
  store 0, %iS
  br fsloop
fsloop:
  %fi = load %iS
  %fc = icmp slt %fi, %np
  br %fc, fsbody, alldone
fsbody:
  %fxP = gep %base, %fi
  %fx = load %fxP
  %fyP = gep %yB, %fi
  %fy = load %fyP
  %fcs0 = load %csS
  %fcs1 = mul %fcs0, 43
  %fcs2 = add %fcs1, %fx
  %fcs3 = mul %fcs2, 43
  %fcs4 = add %fcs3, %fy
  store %fcs4, %csS
  %fi1 = add %fi, 1
  store %fi1, %iS
  br fsloop
alldone:
  %csF = load %csS
  out %csF
  ret %csF
}
`
