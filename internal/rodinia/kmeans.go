package rodinia

import "math/rand"

// Kmeans: Lloyd iterations over 2-D points, as in Rodinia's kmeans:
// nearest-centroid assignment (distance computation + comparisons), then
// centroid recomputation with integer division. Memory layout:
//
//	px[n] | py[n] | cx[k] | cy[k] | sumx[k] | sumy[k] | cnt[k] | assign[n]
//
// Arguments: base, n, k, iters. Output: centroid checksum and the final
// total assignment distance.
var Kmeans = register(&Benchmark{
	Name:   "kmeans",
	Domain: "Data Mining",
	source: kmeansSrc,
	build: func(scale int, rng *rand.Rand) ([]uint64, []uint64) {
		n := 30 * scale
		k := 3
		iters := 3
		words := make([]uint64, 0, 2*n+5*k+n)
		for i := 0; i < n; i++ {
			words = append(words, uint64(rng.Intn(1000)))
		}
		for i := 0; i < n; i++ {
			words = append(words, uint64(rng.Intn(1000)))
		}
		for c := 0; c < k; c++ {
			words = append(words, uint64(rng.Intn(1000))) // cx
		}
		for c := 0; c < k; c++ {
			words = append(words, uint64(rng.Intn(1000))) // cy
		}
		for i := 0; i < 3*k+n; i++ {
			words = append(words, 0) // sums, counts, assignments
		}
		return []uint64{DataBase, uint64(n), uint64(k), uint64(iters)}, words
	},
})

const kmeansSrc = `
; Rodinia kmeans miniature: Lloyd iterations with integer centroids.
func @dist2k(%ax, %ay, %bx, %by) {
entry:
  %dx = sub %ax, %bx
  %dy = sub %ay, %by
  %dx2 = mul %dx, %dx
  %dy2 = mul %dy, %dy
  %d = add %dx2, %dy2
  ret %d
}

func @main(%base, %n, %k, %iters) {
entry:
  %tS = alloca 1
  %iS = alloca 1
  %cS = alloca 1
  %bestS = alloca 1
  %bestCS = alloca 1
  %totS = alloca 1
  %csS = alloca 1
  %pyoff = add %n, 0
  %cxoff = mul %n, 2
  %cyoff = add %cxoff, %k
  %sxoff = add %cyoff, %k
  %syoff = add %sxoff, %k
  %cntoff = add %syoff, %k
  %asgoff = add %cntoff, %k
  %pyB = gep %base, %pyoff
  %cxB = gep %base, %cxoff
  %cyB = gep %base, %cyoff
  %sxB = gep %base, %sxoff
  %syB = gep %base, %syoff
  %cntB = gep %base, %cntoff
  %asgB = gep %base, %asgoff
  store 0, %tS
  br titer
titer:
  %t = load %tS
  %tc = icmp slt %t, %iters
  br %tc, tbody, report
tbody:
  ; clear accumulators
  store 0, %cS
  br clearloop
clearloop:
  %cc0 = load %cS
  %ccc = icmp slt %cc0, %k
  br %ccc, clearbody, assign
clearbody:
  %sxP = gep %sxB, %cc0
  store 0, %sxP
  %syP = gep %syB, %cc0
  store 0, %syP
  %cntP = gep %cntB, %cc0
  store 0, %cntP
  %cc1 = add %cc0, 1
  store %cc1, %cS
  br clearloop
assign:
  store 0, %iS
  store 0, %totS
  br ailoop
ailoop:
  %i = load %iS
  %ic = icmp slt %i, %n
  br %ic, aibody, update
aibody:
  %pxP = gep %base, %i
  %px = load %pxP
  %pyP = gep %pyB, %i
  %py = load %pyP
  store 4611686018427387903, %bestS
  store 0, %bestCS
  store 0, %cS
  br acloop
acloop:
  %c = load %cS
  %acc = icmp slt %c, %k
  br %acc, acbody, apick
acbody:
  %cxP = gep %cxB, %c
  %cx = load %cxP
  %cyP = gep %cyB, %c
  %cy = load %cyP
  %d = call @dist2k(%px, %py, %cx, %cy)
  %b = load %bestS
  %closer = icmp slt %d, %b
  br %closer, acupd, acnext
acupd:
  store %d, %bestS
  store %c, %bestCS
  br acnext
acnext:
  %c1 = add %c, 1
  store %c1, %cS
  br acloop
apick:
  %bc = load %bestCS
  %asgP = gep %asgB, %i
  store %bc, %asgP
  %sxuP = gep %sxB, %bc
  %sxu = load %sxuP
  %sxu1 = add %sxu, %px
  store %sxu1, %sxuP
  %syuP = gep %syB, %bc
  %syu = load %syuP
  %syu1 = add %syu, %py
  store %syu1, %syuP
  %cntuP = gep %cntB, %bc
  %cntu = load %cntuP
  %cntu1 = add %cntu, 1
  store %cntu1, %cntuP
  %bdist = load %bestS
  %tot0 = load %totS
  %tot1 = add %tot0, %bdist
  store %tot1, %totS
  %i1 = add %i, 1
  store %i1, %iS
  br ailoop
update:
  store 0, %cS
  br upcloop
upcloop:
  %uc = load %cS
  %ucc = icmp slt %uc, %k
  br %ucc, upcbody, tnext
upcbody:
  %ucntP = gep %cntB, %uc
  %ucnt = load %ucntP
  %empty = icmp sle %ucnt, 0
  br %empty, upcnext, upcompute
upcompute:
  %usxP = gep %sxB, %uc
  %usx = load %usxP
  %newcx = sdiv %usx, %ucnt
  %ucxP = gep %cxB, %uc
  store %newcx, %ucxP
  %usyP = gep %syB, %uc
  %usy = load %usyP
  %newcy = sdiv %usy, %ucnt
  %ucyP = gep %cyB, %uc
  store %newcy, %ucyP
  br upcnext
upcnext:
  %uc1 = add %uc, 1
  store %uc1, %cS
  br upcloop
tnext:
  %t1 = add %t, 1
  store %t1, %tS
  br titer
report:
  store 0, %csS
  store 0, %cS
  br rloop
rloop:
  %rc0 = load %cS
  %rcc = icmp slt %rc0, %k
  br %rcc, rbody, done
rbody:
  %rcxP = gep %cxB, %rc0
  %rcx = load %rcxP
  %rcyP = gep %cyB, %rc0
  %rcy = load %rcyP
  %cs0 = load %csS
  %cs1 = mul %cs0, 41
  %cs2 = add %cs1, %rcx
  %cs3 = mul %cs2, 41
  %cs4 = add %cs3, %rcy
  store %cs4, %csS
  %rc1 = add %rc0, 1
  store %rc1, %cS
  br rloop
done:
  %csF = load %csS
  out %csF
  %totF = load %totS
  out %totF
  ret %csF
}
`
