package rodinia

import "math/rand"

// Needle: Needleman-Wunsch global sequence alignment scoring, as in
// Rodinia's needle — a branch-heavy DP over a (n+1)^2 score matrix with a
// match/mismatch similarity and linear gap penalty. Memory layout:
//
//	a[n] | b[n] | m[(n+1)*(n+1)]
//
// Arguments: base, n. Output: alignment score and a checksum of the final
// row.
var Needle = register(&Benchmark{
	Name:   "needle",
	Domain: "Dynamic Programming",
	source: needleSrc,
	build: func(scale int, rng *rand.Rand) ([]uint64, []uint64) {
		n := 10 * scale
		words := make([]uint64, 0, 2*n+(n+1)*(n+1))
		for i := 0; i < 2*n; i++ {
			words = append(words, uint64(rng.Intn(4))) // 4-letter alphabet
		}
		for i := 0; i < (n+1)*(n+1); i++ {
			words = append(words, 0)
		}
		return []uint64{DataBase, uint64(n)}, words
	},
})

const needleSrc = `
; Rodinia needle miniature: Needleman-Wunsch DP with max-of-three scoring.
func @max2(%x, %y) {
entry:
  %c = icmp sgt %x, %y
  br %c, takex, takey
takex:
  ret %x
takey:
  ret %y
}

func @main(%base, %n) {
entry:
  %iS = alloca 1
  %jS = alloca 1
  %csS = alloca 1
  %n1 = add %n, 1
  %moff = mul %n, 2
  %mB = gep %base, %moff
  %bB = gep %base, %n
  ; boundary row and column: -2 per gap
  store 0, %iS
  br binit
binit:
  %bi = load %iS
  %bic = icmp sle %bi, %n
  br %bic, binitbody, binitdone
binitbody:
  %g0 = mul %bi, -2
  %rowP = gep %mB, %bi
  store %g0, %rowP
  %colIdx = mul %bi, %n1
  %colP = gep %mB, %colIdx
  store %g0, %colP
  %bi1 = add %bi, 1
  store %bi1, %iS
  br binit
binitdone:
  store 1, %iS
  br irow
irow:
  %i = load %iS
  %ic = icmp sle %i, %n
  br %ic, icol, nwdone
icol:
  store 1, %jS
  br jloop
jloop:
  %j = load %jS
  %jc = icmp sle %j, %n
  br %jc, jbody, inext
jbody:
  %ai0 = sub %i, 1
  %aiP = gep %base, %ai0
  %ai = load %aiP
  %bj0 = sub %j, 1
  %bjP = gep %bB, %bj0
  %bj = load %bjP
  %same = icmp eq %ai, %bj
  br %same, matched, mismatched
matched:
  %dIdxm0 = sub %i, 1
  %dIdxm1 = mul %dIdxm0, %n1
  %dIdxm2 = sub %j, 1
  %dIdxm = add %dIdxm1, %dIdxm2
  %dPm = gep %mB, %dIdxm
  %dvm = load %dPm
  %diagm = add %dvm, 3
  br combine
mismatched:
  %dIdxx0 = sub %i, 1
  %dIdxx1 = mul %dIdxx0, %n1
  %dIdxx2 = sub %j, 1
  %dIdxx = add %dIdxx1, %dIdxx2
  %dPx = gep %mB, %dIdxx
  %dvx = load %dPx
  %diagx = sub %dvx, 1
  br combine
combine:
  ; reload the chosen diagonal score through memory (no phi nodes)
  %curIdx0 = mul %i, %n1
  %curIdx = add %curIdx0, %j
  %curP = gep %mB, %curIdx
  %upIdx0 = sub %i, 1
  %upIdx1 = mul %upIdx0, %n1
  %upIdx = add %upIdx1, %j
  %upP = gep %mB, %upIdx
  %upv0 = load %upP
  %upv = sub %upv0, 2
  %leftIdx0 = mul %i, %n1
  %leftIdx1 = sub %j, 1
  %leftIdx = add %leftIdx0, %leftIdx1
  %leftP = gep %mB, %leftIdx
  %leftv0 = load %leftP
  %leftv = sub %leftv0, 2
  %best0 = call @max2(%upv, %leftv)
  store %best0, %curP
  br diagsel
diagsel:
  ; merge the diag value via the store-free path: recompute both ways
  %sIdx0 = sub %i, 1
  %sIdx1 = mul %sIdx0, %n1
  %sIdx2 = sub %j, 1
  %sIdx = add %sIdx1, %sIdx2
  %sP = gep %mB, %sIdx
  %sv = load %sP
  %ai2P = gep %base, %sIdx2
  %useIdx = sub %i, 1
  %ai2P2 = gep %base, %useIdx
  %av2 = load %ai2P2
  %bv2P = gep %bB, %sIdx2
  %bv2 = load %bv2P
  %same2 = icmp eq %av2, %bv2
  br %same2, diag3, diagm1
diag3:
  %d3 = add %sv, 3
  %cur3P0 = mul %i, %n1
  %cur3Idx = add %cur3P0, %j
  %cur3P = gep %mB, %cur3Idx
  %old3 = load %cur3P
  %best3 = call @max2(%old3, %d3)
  store %best3, %cur3P
  br jnext
diagm1:
  %dm1 = sub %sv, 1
  %curmP0 = mul %i, %n1
  %curmIdx = add %curmP0, %j
  %curmP = gep %mB, %curmIdx
  %oldm = load %curmP
  %bestm = call @max2(%oldm, %dm1)
  store %bestm, %curmP
  br jnext
jnext:
  %j1 = add %j, 1
  store %j1, %jS
  br jloop
inext:
  %i1 = add %i, 1
  store %i1, %iS
  br irow
nwdone:
  %finIdx0 = mul %n, %n1
  %finIdx = add %finIdx0, %n
  %finP = gep %mB, %finIdx
  %score = load %finP
  out %score
  store 0, %csS
  store 0, %jS
  br csloop
csloop:
  %cj = load %jS
  %cjc = icmp sle %cj, %n
  br %cjc, csbody, done
csbody:
  %crIdx0 = mul %n, %n1
  %crIdx = add %crIdx0, %cj
  %crP = gep %mB, %crIdx
  %crv = load %crP
  %cs0 = load %csS
  %cs1 = mul %cs0, 29
  %cs2 = add %cs1, %crv
  store %cs2, %csS
  %cj1 = add %cj, 1
  store %cj1, %jS
  br csloop
done:
  %csF = load %csS
  out %csF
  ret %csF
}
`
