package rodinia

import "math/rand"

// LUD: in-place LU decomposition (Doolittle, no pivoting) of a diagonally
// dominant matrix in Q8.8 fixed point, as in Rodinia's lud. Exercises the
// division protection path. Memory layout: a[n*n]. Arguments: base, n.
// Output: the U-factor diagonal, the matrix checksum and the final pivot.
var LUD = register(&Benchmark{
	Name:   "lud",
	Domain: "Linear Algebra",
	source: ludSrc,
	build: func(scale int, rng *rand.Rand) ([]uint64, []uint64) {
		n := 7 * scale
		words := make([]uint64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := q8(rng.Float64()*2 - 1)
				if i == j {
					// Diagonal dominance keeps pivots well away from zero.
					v = q8(float64(n) + rng.Float64())
				}
				words[i*n+j] = v
			}
		}
		return []uint64{DataBase, uint64(n)}, words
	},
})

const ludSrc = `
; Rodinia LUD miniature: Doolittle LU decomposition in fixed point.
func @main(%base, %n) {
entry:
  %kS = alloca 1
  %iS = alloca 1
  %jS = alloca 1
  %csS = alloca 1
  store 0, %kS
  br kloop
kloop:
  %k = load %kS
  %kmax = sub %n, 1
  %kc = icmp slt %k, %kmax
  br %kc, kbody, luddone
kbody:
  %pivIdx0 = mul %k, %n
  %pivIdx = add %pivIdx0, %k
  %pivP = gep %base, %pivIdx
  %piv = load %pivP
  %k1 = add %k, 1
  store %k1, %iS
  br iloop
iloop:
  %i = load %iS
  %ic = icmp slt %i, %n
  br %ic, ibody, knext
ibody:
  %aikIdx0 = mul %i, %n
  %aikIdx = add %aikIdx0, %k
  %aikP = gep %base, %aikIdx
  %aik = load %aikP
  %num = shl %aik, 8
  %factor = sdiv %num, %piv
  store %factor, %aikP
  %kk1 = add %k, 1
  store %kk1, %jS
  br jloop
jloop:
  %j = load %jS
  %jc = icmp slt %j, %n
  br %jc, jbody, inext
jbody:
  %akjIdx0 = mul %k, %n
  %akjIdx = add %akjIdx0, %j
  %akjP = gep %base, %akjIdx
  %akj = load %akjP
  %aijIdx0 = mul %i, %n
  %aijIdx = add %aijIdx0, %j
  %aijP = gep %base, %aijIdx
  %aij = load %aijP
  %upd0 = mul %factor, %akj
  %upd = ashr %upd0, 8
  %aijn = sub %aij, %upd
  store %aijn, %aijP
  %j1 = add %j, 1
  store %j1, %jS
  br jloop
inext:
  %i1 = add %i, 1
  store %i1, %iS
  br iloop
knext:
  %kn = load %kS
  %kn1 = add %kn, 1
  store %kn1, %kS
  br kloop
luddone:
  ; emit the U diagonal
  store 0, %iS
  br dloop
dloop:
  %di = load %iS
  %dc = icmp slt %di, %n
  br %dc, dbody, ddone
dbody:
  %dIdx0 = mul %di, %n
  %dIdx = add %dIdx0, %di
  %dP = gep %base, %dIdx
  %dv = load %dP
  out %dv
  %di1 = add %di, 1
  store %di1, %iS
  br dloop
ddone:
  store 0, %csS
  store 0, %iS
  br csloop
csloop:
  %ci = load %iS
  %size = mul %n, %n
  %cc = icmp slt %ci, %size
  br %cc, csbody, done
csbody:
  %cP = gep %base, %ci
  %cv = load %cP
  %cs0 = load %csS
  %cs1 = mul %cs0, 33
  %cs2 = add %cs1, %cv
  %cs3 = and %cs2, 1152921504606846975
  store %cs3, %csS
  %ci1 = add %ci, 1
  store %ci1, %iS
  br csloop
done:
  %lastIdx0 = mul %n, %n
  %lastIdx = sub %lastIdx0, 1
  %lastP = gep %base, %lastIdx
  %last = load %lastP
  out %last
  %csF = load %csS
  out %csF
  ret %csF
}
`
