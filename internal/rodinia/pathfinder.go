package rodinia

import "math/rand"

// Pathfinder: dynamic-programming minimum path through a grid, row by row,
// as in Rodinia's pathfinder. dp'[j] = grid[i][j] + min(dp[j-1], dp[j],
// dp[j+1]) with clamped boundaries. Memory layout in words:
//
//	grid[rows*cols] | dp[cols] | dpn[cols]
//
// Arguments: base, rows, cols. Output: minimum path cost, a checksum of the
// final row.
var Pathfinder = register(&Benchmark{
	Name:   "pathfinder",
	Domain: "Dynamic Programming",
	source: pathfinderSrc,
	build: func(scale int, rng *rand.Rand) ([]uint64, []uint64) {
		rows := 8 * scale
		cols := 20 * scale
		words := make([]uint64, 0, rows*cols+2*cols)
		for i := 0; i < rows*cols; i++ {
			words = append(words, uint64(rng.Intn(10)))
		}
		for i := 0; i < 2*cols; i++ {
			words = append(words, 0)
		}
		return []uint64{DataBase, uint64(rows), uint64(cols)}, words
	},
})

const pathfinderSrc = `
; Rodinia pathfinder miniature: row-wise DP with three-way min.
func @main(%base, %rows, %cols) {
entry:
  %iS = alloca 1
  %jS = alloca 1
  %minS = alloca 1
  %csS = alloca 1
  %bestS = alloca 1
  %gridsize = mul %rows, %cols
  %dpnoff = add %gridsize, %cols
  %dpB = gep %base, %gridsize
  %dpnB = gep %base, %dpnoff
  ; dp = grid row 0
  store 0, %jS
  br initloop
initloop:
  %ij = load %jS
  %ijc = icmp slt %ij, %cols
  br %ijc, initbody, initdone
initbody:
  %g0P = gep %base, %ij
  %g0 = load %g0P
  %dp0P = gep %dpB, %ij
  store %g0, %dp0P
  %ij1 = add %ij, 1
  store %ij1, %jS
  br initloop
initdone:
  store 1, %iS
  br rowloop
rowloop:
  %i = load %iS
  %rc = icmp slt %i, %rows
  br %rc, rowbody, dpdone
rowbody:
  store 0, %jS
  br colloop
colloop:
  %j = load %jS
  %cc = icmp slt %j, %cols
  br %cc, colbody, rowcopy
colbody:
  ; min of dp[j-1], dp[j], dp[j+1] with boundary clamping
  %dpjP = gep %dpB, %j
  %dpj = load %dpjP
  store %dpj, %minS
  %hasL = icmp sgt %j, 0
  br %hasL, left, midr
left:
  %jm1 = sub %j, 1
  %dplP = gep %dpB, %jm1
  %dpl = load %dplP
  %m0 = load %minS
  %lless = icmp slt %dpl, %m0
  br %lless, takeleft, midr
takeleft:
  store %dpl, %minS
  br midr
midr:
  %jp1 = add %j, 1
  %hasR = icmp slt %jp1, %cols
  br %hasR, right, apply
right:
  %dprP = gep %dpB, %jp1
  %dpr = load %dprP
  %m1 = load %minS
  %rless = icmp slt %dpr, %m1
  br %rless, takeright, apply
takeright:
  store %dpr, %minS
  br apply
apply:
  %gidx0 = mul %i, %cols
  %gidx = add %gidx0, %j
  %gP = gep %base, %gidx
  %g = load %gP
  %mf = load %minS
  %nv = add %g, %mf
  %dpnP = gep %dpnB, %j
  store %nv, %dpnP
  %j1 = add %j, 1
  store %j1, %jS
  br colloop
rowcopy:
  store 0, %jS
  br copyloop
copyloop:
  %cj = load %jS
  %cjc = icmp slt %cj, %cols
  br %cjc, copybody, rownext
copybody:
  %srcP = gep %dpnB, %cj
  %sv = load %srcP
  %dstP = gep %dpB, %cj
  store %sv, %dstP
  %cj1 = add %cj, 1
  store %cj1, %jS
  br copyloop
rownext:
  %i1 = add %i, 1
  store %i1, %iS
  br rowloop
dpdone:
  ; best = min over final dp, checksum over row
  %b0P = gep %dpB, 0
  %b0 = load %b0P
  store %b0, %bestS
  store 0, %csS
  store 0, %jS
  br scanloop
scanloop:
  %sj = load %jS
  %sjc = icmp slt %sj, %cols
  br %sjc, scanbody, done
scanbody:
  %sP = gep %dpB, %sj
  %sv2 = load %sP
  %cs0 = load %csS
  %cs1 = mul %cs0, 31
  %cs2 = add %cs1, %sv2
  store %cs2, %csS
  %bb = load %bestS
  %better = icmp slt %sv2, %bb
  br %better, takebest, scannext
takebest:
  store %sv2, %bestS
  br scannext
scannext:
  %sj1 = add %sj, 1
  store %sj1, %jS
  br scanloop
done:
  %bestF = load %bestS
  out %bestF
  %csF = load %csS
  out %csF
  ret %bestF
}
`
