package rodinia

import "math/rand"

// Backprop: one forward and one backward pass of a two-layer perceptron in
// Q8.8 fixed point, mirroring the structure of Rodinia's backprop kernel
// (input->hidden matrix-vector product, activation, output accumulation,
// weight update). Memory layout, in 64-bit words starting at DataBase:
//
//	input[nin] | w1[nhid*nin] | hidden[nhid] | w2[nhid] | target
//
// Arguments: base, nin, nhid. Output: network output, delta, and a
// checksum over the updated weights and hidden activations.
var Backprop = register(&Benchmark{
	Name:   "backprop",
	Domain: "Machine Learning",
	source: backpropSrc,
	build: func(scale int, rng *rand.Rand) ([]uint64, []uint64) {
		nin := 12 * scale
		nhid := 6 * scale
		words := make([]uint64, 0, nin+nhid*nin+2*nhid+1)
		for i := 0; i < nin; i++ {
			words = append(words, q8(rng.Float64()*2-1))
		}
		for i := 0; i < nhid*nin; i++ {
			words = append(words, q8(rng.Float64()-0.5))
		}
		for i := 0; i < nhid; i++ {
			words = append(words, 0) // hidden activations
		}
		for i := 0; i < nhid; i++ {
			words = append(words, q8(rng.Float64()-0.5)) // w2
		}
		words = append(words, q8(0.25)) // target
		return []uint64{DataBase, uint64(nin), uint64(nhid)}, words
	},
})

const backpropSrc = `
; Rodinia backprop miniature: forward pass, leaky activation, output layer,
; gradient update of the output weights, checksum.
func @main(%base, %nin, %nhid) {
entry:
  %hS = alloca 1
  %iS = alloca 1
  %accS = alloca 1
  %oS = alloca 1
  %csS = alloca 1
  %w1size = mul %nin, %nhid
  %hidoff = add %nin, %w1size
  %w2off = add %hidoff, %nhid
  %tgtoff = add %w2off, %nhid
  %w1B = gep %base, %nin
  %hidB = gep %base, %hidoff
  %w2B = gep %base, %w2off
  %tgtP = gep %base, %tgtoff
  store 0, %hS
  br hloop
hloop:
  %h = load %hS
  %hc = icmp slt %h, %nhid
  br %hc, hbody, fdone
hbody:
  store 0, %accS
  store 0, %iS
  br iloop
iloop:
  %i = load %iS
  %ic = icmp slt %i, %nin
  br %ic, ibody, isum
ibody:
  %inP = gep %base, %i
  %inV = load %inP
  %wIdx0 = mul %h, %nin
  %wIdx = add %wIdx0, %i
  %wP = gep %w1B, %wIdx
  %wV = load %wP
  %prod = mul %inV, %wV
  %prodQ = ashr %prod, 8
  %acc0 = load %accS
  %acc1 = add %acc0, %prodQ
  store %acc1, %accS
  %i1 = add %i, 1
  store %i1, %iS
  br iloop
isum:
  %accv = load %accS
  %neg = icmp slt %accv, 0
  br %neg, leaky, actdone
leaky:
  %lv = ashr %accv, 2
  store %lv, %accS
  br actdone
actdone:
  %hval = load %accS
  %hidP = gep %hidB, %h
  store %hval, %hidP
  %h1 = add %h, 1
  store %h1, %hS
  br hloop
fdone:
  store 0, %oS
  store 0, %hS
  br oloop
oloop:
  %oh = load %hS
  %ohc = icmp slt %oh, %nhid
  br %ohc, obody, odone
obody:
  %hv2P = gep %hidB, %oh
  %hv2 = load %hv2P
  %w2P = gep %w2B, %oh
  %w2v = load %w2P
  %p2 = mul %hv2, %w2v
  %p2q = ashr %p2, 8
  %o0 = load %oS
  %o1 = add %o0, %p2q
  store %o1, %oS
  %oh1 = add %oh, 1
  store %oh1, %hS
  br oloop
odone:
  %outv = load %oS
  %tgt = load %tgtP
  %delta = sub %outv, %tgt
  store 0, %hS
  br uloop
uloop:
  %uh = load %hS
  %uc = icmp slt %uh, %nhid
  br %uc, ubody, udone
ubody:
  %uhP = gep %hidB, %uh
  %uhv = load %uhP
  %g0 = mul %delta, %uhv
  %g1 = ashr %g0, 12
  %uw2P = gep %w2B, %uh
  %uw2v = load %uw2P
  %uw2n = sub %uw2v, %g1
  store %uw2n, %uw2P
  %uh1 = add %uh, 1
  store %uh1, %hS
  br uloop
udone:
  store 0, %csS
  store 0, %hS
  br csloop
csloop:
  %ch = load %hS
  %cc = icmp slt %ch, %nhid
  br %cc, csbody, csdone
csbody:
  %cw2P = gep %w2B, %ch
  %cw2 = load %cw2P
  %chidP = gep %hidB, %ch
  %chid = load %chidP
  %cs0 = load %csS
  %cs1 = add %cs0, %cw2
  %cs2 = mul %cs1, 31
  %cs3 = add %cs2, %chid
  store %cs3, %csS
  %ch1 = add %ch, 1
  store %ch1, %hS
  br csloop
csdone:
  %outF = load %oS
  out %outF
  out %delta
  %csF = load %csS
  out %csF
  ret %csF
}
`
