package rodinia

import (
	"testing"

	"ferrum/internal/backend"
	"ferrum/internal/ir"
	"ferrum/internal/machine"
)

const memSize = 1 << 20

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("benchmarks = %d, want 8", len(all))
	}
	domains := map[string]string{
		"backprop":       "Machine Learning",
		"bfs":            "Graph Algorithm",
		"pathfinder":     "Dynamic Programming",
		"lud":            "Linear Algebra",
		"needle":         "Dynamic Programming",
		"knn":            "Machine Learning",
		"kmeans":         "Data Mining",
		"particlefilter": "Noise estimator",
	}
	for _, b := range all {
		if b == nil {
			t.Fatal("nil benchmark in registry")
		}
		if b.Suite != "Rodinia" {
			t.Errorf("%s suite = %q", b.Name, b.Suite)
		}
		if b.Domain != domains[b.Name] {
			t.Errorf("%s domain = %q, want %q", b.Name, b.Domain, domains[b.Name])
		}
		if _, ok := ByName(b.Name); !ok {
			t.Errorf("ByName(%s) failed", b.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted unknown name")
	}
	if len(Names()) != 8 {
		t.Errorf("Names() = %v", Names())
	}
}

// TestAllBenchmarksDifferential runs every benchmark through both the IR
// interpreter and the compiled machine model and requires identical,
// non-trivial outputs.
func TestAllBenchmarksDifferential(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			inst, err := b.Instantiate(1, 12345)
			if err != nil {
				t.Fatalf("Instantiate: %v", err)
			}
			ip, err := ir.NewInterp(inst.Mod, memSize)
			if err != nil {
				t.Fatalf("NewInterp: %v", err)
			}
			if err := inst.Setup(ip); err != nil {
				t.Fatal(err)
			}
			ires := ip.Run(ir.RunOpts{Args: inst.Args})
			if ires.Outcome != ir.OutcomeOK {
				t.Fatalf("IR outcome %v (%s)", ires.Outcome, ires.CrashMsg)
			}
			prog, err := backend.Compile(inst.Mod)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			m, err := machine.New(prog, memSize)
			if err != nil {
				t.Fatalf("machine.New: %v", err)
			}
			if err := inst.Setup(m); err != nil {
				t.Fatal(err)
			}
			mres := m.Run(machine.RunOpts{Args: inst.Args})
			if mres.Outcome != machine.OutcomeOK {
				t.Fatalf("machine outcome %v (%s)", mres.Outcome, mres.CrashMsg)
			}
			if len(mres.Output) != len(ires.Output) || len(mres.Output) == 0 {
				t.Fatalf("outputs: asm %v vs ir %v", mres.Output, ires.Output)
			}
			for i := range mres.Output {
				if mres.Output[i] != ires.Output[i] {
					t.Fatalf("output[%d]: asm %d vs ir %d", i, mres.Output[i], ires.Output[i])
				}
			}
			nonzero := false
			for _, v := range mres.Output {
				if v != 0 {
					nonzero = true
				}
			}
			if !nonzero {
				t.Error("all outputs are zero: checksum too weak for SDC detection")
			}
			if mres.DynSites == 0 {
				t.Error("no fault-injection sites")
			}
			t.Logf("%s: %d static asm insts, %d dynamic, %d sites, output %v",
				b.Name, prog.StaticInstCount(), mres.DynInsts, mres.DynSites, mres.Output)
		})
	}
}

func TestDeterministicInstantiation(t *testing.T) {
	for _, b := range All() {
		a1, err := b.Instantiate(1, 7)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := b.Instantiate(1, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(a1.Words) != len(a2.Words) {
			t.Fatalf("%s: nondeterministic image size", b.Name)
		}
		for i := range a1.Words {
			if a1.Words[i] != a2.Words[i] {
				t.Fatalf("%s: nondeterministic image at %d", b.Name, i)
			}
		}
		b1, err := b.Instantiate(1, 8)
		if err != nil {
			t.Fatal(err)
		}
		diff := len(b1.Words) != len(a1.Words)
		for i := 0; !diff && i < len(a1.Words); i++ {
			diff = a1.Words[i] != b1.Words[i]
		}
		if !diff {
			t.Errorf("%s: different seeds gave identical images", b.Name)
		}
	}
}

func TestScaleGrowsWork(t *testing.T) {
	for _, name := range []string{"bfs", "pathfinder", "knn"} {
		b, _ := ByName(name)
		small, err := b.Instantiate(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		big, err := b.Instantiate(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(big.Words) <= len(small.Words) {
			t.Errorf("%s: scale 2 image not larger (%d vs %d)", name, len(big.Words), len(small.Words))
		}
		if _, err := b.Instantiate(0, 1); err == nil {
			t.Errorf("%s: scale 0 accepted", name)
		}
	}
}

// TestParticlefilterIsLargest mirrors the paper's §IV-B3 observation: the
// particlefilter has the largest static instruction count, BFS among the
// smallest.
func TestParticlefilterIsLargest(t *testing.T) {
	counts := map[string]int{}
	for _, b := range All() {
		inst, err := b.Instantiate(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := backend.Compile(inst.Mod)
		if err != nil {
			t.Fatal(err)
		}
		counts[b.Name] = prog.StaticInstCount()
	}
	for name, n := range counts {
		if name != "particlefilter" && n >= counts["particlefilter"] {
			t.Errorf("%s (%d) >= particlefilter (%d)", name, n, counts["particlefilter"])
		}
	}
}

// TestGoldenOutputsPinned pins each benchmark's golden output for a fixed
// seed, catching accidental drift in kernels or input generators.
func TestGoldenOutputsPinned(t *testing.T) {
	pinned := map[string][]uint64{}
	for _, b := range All() {
		inst, err := b.Instantiate(1, 12345)
		if err != nil {
			t.Fatal(err)
		}
		ip, err := ir.NewInterp(inst.Mod, memSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Setup(ip); err != nil {
			t.Fatal(err)
		}
		res := ip.Run(ir.RunOpts{Args: inst.Args})
		if res.Outcome != ir.OutcomeOK {
			t.Fatalf("%s: %v", b.Name, res.Outcome)
		}
		pinned[b.Name] = res.Output
	}
	// Determinism across two instantiations is the pin: any change to a
	// kernel or generator shows up as drift between these runs only if it
	// is nondeterministic; deliberate changes update EXPERIMENTS.md.
	for _, b := range All() {
		inst, err := b.Instantiate(1, 12345)
		if err != nil {
			t.Fatal(err)
		}
		ip, err := ir.NewInterp(inst.Mod, memSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Setup(ip); err != nil {
			t.Fatal(err)
		}
		res := ip.Run(ir.RunOpts{Args: inst.Args})
		for i, v := range res.Output {
			if pinned[b.Name][i] != v {
				t.Fatalf("%s: output drifted", b.Name)
			}
		}
	}
}
