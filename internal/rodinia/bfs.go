package rodinia

import "math/rand"

// BFS: breadth-first search over a CSR graph with an explicit frontier
// queue, mirroring Rodinia's bfs kernel. Memory layout in words:
//
//	off[n+1] | edges[nedge] | dist[n] | queue[n]
//
// Arguments: base, n, nedge. Output: a checksum over the distance array
// and the number of visited nodes.
var BFS = register(&Benchmark{
	Name:   "bfs",
	Domain: "Graph Algorithm",
	source: bfsSrc,
	build: func(scale int, rng *rand.Rand) ([]uint64, []uint64) {
		n := 28 * scale
		// Ring edges guarantee connectivity; random chords add irregular
		// fan-out like the Rodinia graphs.
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			adj[i] = append(adj[i], (i+1)%n)
		}
		for c := 0; c < n; c++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				adj[u] = append(adj[u], v)
			}
		}
		var off, edges []uint64
		for i := 0; i < n; i++ {
			off = append(off, uint64(len(edges)))
			for _, v := range adj[i] {
				edges = append(edges, uint64(v))
			}
		}
		off = append(off, uint64(len(edges)))
		words := make([]uint64, 0, len(off)+len(edges)+2*n)
		words = append(words, off...)
		words = append(words, edges...)
		for i := 0; i < 2*n; i++ {
			words = append(words, 0) // dist + queue, initialised by the kernel
		}
		return []uint64{DataBase, uint64(n), uint64(len(edges))}, words
	},
})

const bfsSrc = `
; Rodinia BFS miniature: frontier-queue BFS over a CSR graph.
func @main(%base, %n, %nedge) {
entry:
  %qhS = alloca 1
  %qtS = alloca 1
  %eS = alloca 1
  %csS = alloca 1
  %iS = alloca 1
  %n1 = add %n, 1
  %distoff = add %n1, %nedge
  %queueoff = add %distoff, %n
  %edgeB = gep %base, %n1
  %distB = gep %base, %distoff
  %queueB = gep %base, %queueoff
  store 0, %iS
  br initloop
initloop:
  %ii = load %iS
  %ic = icmp slt %ii, %n
  br %ic, initbody, initdone
initbody:
  %dP = gep %distB, %ii
  store -1, %dP
  %ii1 = add %ii, 1
  store %ii1, %iS
  br initloop
initdone:
  %d0P = gep %distB, 0
  store 0, %d0P
  %q0P = gep %queueB, 0
  store 0, %q0P
  store 0, %qhS
  store 1, %qtS
  br bfsloop
bfsloop:
  %qh = load %qhS
  %qt = load %qtS
  %qc = icmp slt %qh, %qt
  br %qc, visit, bfsdone
visit:
  %quP = gep %queueB, %qh
  %u = load %quP
  %qh1 = add %qh, 1
  store %qh1, %qhS
  %uoffP = gep %base, %u
  %ustart = load %uoffP
  %u1 = add %u, 1
  %uoffP2 = gep %base, %u1
  %uend = load %uoffP2
  store %ustart, %eS
  br eloop
eloop:
  %e = load %eS
  %ec = icmp slt %e, %uend
  br %ec, ebody, bfsloop
ebody:
  %evP = gep %edgeB, %e
  %v = load %evP
  %vdP = gep %distB, %v
  %vd = load %vdP
  %seen = icmp sge %vd, 0
  br %seen, enext, enqueue
enqueue:
  %udP = gep %distB, %u
  %ud = load %udP
  %vd1 = add %ud, 1
  store %vd1, %vdP
  %qt0 = load %qtS
  %qslot = gep %queueB, %qt0
  store %v, %qslot
  %qt1 = add %qt0, 1
  store %qt1, %qtS
  br enext
enext:
  %e1 = add %e, 1
  store %e1, %eS
  br eloop
bfsdone:
  store 0, %csS
  store 0, %iS
  br csloop
csloop:
  %ci = load %iS
  %cc = icmp slt %ci, %n
  br %cc, csbody, csdone
csbody:
  %cdP = gep %distB, %ci
  %cd = load %cdP
  %cs0 = load %csS
  %cs1 = mul %cs0, 33
  %cs2 = add %cs1, %cd
  store %cs2, %csS
  %ci1 = add %ci, 1
  store %ci1, %iS
  br csloop
csdone:
  %csF = load %csS
  out %csF
  %qtF = load %qtS
  out %qtF
  ret %csF
}
`
