// Package rodinia provides the paper's eight evaluation benchmarks
// (Table II) re-implemented in the reproduction's IR: Backprop, BFS,
// Pathfinder, LUD, Needle, kNN, kmeans and Particlefilter. Each benchmark
// couples an IR module with a deterministic input generator that installs
// the same memory image into the IR interpreter and the machine model, so
// the two executions are directly comparable.
//
// Floating-point kernels use Q8.8-style fixed-point arithmetic in 64-bit
// integers; EDDI compares results bit-wise, so the arithmetic domain does
// not affect protection behaviour (see DESIGN.md).
package rodinia

import (
	"fmt"
	"math/rand"
	"sort"

	"ferrum/internal/ir"
)

// DataBase is the address where benchmark data is loaded; it matches the
// layout both executors share (above the guard page).
const DataBase = 8192

// MemWriter is the data-loading interface implemented by both the machine
// model and the IR interpreter (and by fi's campaign targets).
type MemWriter interface {
	WriteWordImage(addr, v uint64) error
	SetMemImage(addr uint64, data []byte) error
}

// Instance is one runnable configuration of a benchmark: the module, the
// entry arguments, and the memory image loader.
type Instance struct {
	Bench *Benchmark
	Mod   *ir.Module
	Args  []uint64
	Words []uint64 // memory image, written word-by-word at DataBase
}

// Setup installs the instance's memory image.
func (in *Instance) Setup(w MemWriter) error {
	for i, v := range in.Words {
		if err := w.WriteWordImage(DataBase+8*uint64(i), v); err != nil {
			return err
		}
	}
	return nil
}

// Benchmark describes one Table II workload.
type Benchmark struct {
	Name   string
	Suite  string
	Domain string
	source string
	// build generates args and the memory image for a scale factor
	// (1 = default miniature of the Rodinia input).
	build func(scale int, rng *rand.Rand) (args []uint64, words []uint64)
}

// Instantiate parses the benchmark source and generates inputs at the given
// scale with a deterministic seed.
func (b *Benchmark) Instantiate(scale int, seed int64) (*Instance, error) {
	if scale < 1 {
		return nil, fmt.Errorf("rodinia: scale %d < 1", scale)
	}
	mod, err := ir.Parse(b.source)
	if err != nil {
		return nil, fmt.Errorf("rodinia: %s: %w", b.Name, err)
	}
	rng := rand.New(rand.NewSource(seed))
	args, words := b.build(scale, rng)
	return &Instance{Bench: b, Mod: mod, Args: args, Words: words}, nil
}

// Source returns the benchmark's IR text.
func (b *Benchmark) Source() string { return b.source }

var registry = map[string]*Benchmark{}

func register(b *Benchmark) *Benchmark {
	b.Suite = "Rodinia"
	registry[b.Name] = b
	return b
}

// All returns every benchmark in the paper's Table II order.
func All() []*Benchmark {
	names := []string{"backprop", "bfs", "pathfinder", "lud", "needle", "knn", "kmeans", "particlefilter"}
	out := make([]*Benchmark, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// ByName looks up a benchmark; the boolean reports whether it exists.
func ByName(name string) (*Benchmark, bool) {
	b, ok := registry[name]
	return b, ok
}

// Names lists registered benchmark names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// q8 converts a small rational to Q8.8 fixed point.
func q8(x float64) uint64 { return uint64(int64(x * 256)) }
