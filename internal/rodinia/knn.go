package rodinia

import "math/rand"

// KNN: k-nearest-neighbours over 2-D points, as in Rodinia's nn kernel:
// squared Euclidean distances to a query point, then k selection passes of
// a comparison-heavy minimum scan with a visited mask. Memory layout:
//
//	xs[n] | ys[n] | visited[n] | outd[k] | outi[k]
//
// Arguments: base, n, k. Output: each of the k nearest squared distances,
// their accumulated sum, and the checksum of selected indices.
var KNN = register(&Benchmark{
	Name:   "knn",
	Domain: "Machine Learning",
	source: knnSrc,
	build: func(scale int, rng *rand.Rand) ([]uint64, []uint64) {
		n := 40 * scale
		k := 4 * scale
		words := make([]uint64, 0, 3*n)
		for i := 0; i < n; i++ {
			words = append(words, uint64(rng.Intn(2000))) // xs
		}
		for i := 0; i < n; i++ {
			words = append(words, uint64(rng.Intn(2000))) // ys
		}
		for i := 0; i < n+2*k; i++ {
			words = append(words, 0) // visited, outd, outi
		}
		return []uint64{DataBase, uint64(n), uint64(k)}, words
	},
})

const knnSrc = `
; Rodinia nn miniature: k rounds of minimum-distance selection.
func @dist2(%ax, %ay, %bx, %by) {
entry:
  %dx = sub %ax, %bx
  %dy = sub %ay, %by
  %dx2 = mul %dx, %dx
  %dy2 = mul %dy, %dy
  %d = add %dx2, %dy2
  ret %d
}

func @main(%base, %n, %k) {
entry:
  %rS = alloca 1
  %iS = alloca 1
  %bestS = alloca 1
  %bestIdxS = alloca 1
  %accS = alloca 1
  %idxCsS = alloca 1
  %ysB = gep %base, %n
  %visoff = mul %n, 2
  %visB = gep %base, %visoff
  %outdoff = mul %n, 3
  %outdB = gep %base, %outdoff
  %outioff = add %outdoff, %k
  %outiB = gep %base, %outioff
  store 0, %rS
  store 0, %accS
  store 0, %idxCsS
  br rloop
rloop:
  %r = load %rS
  %rc = icmp slt %r, %k
  br %rc, rbody, alldone
rbody:
  store -1, %bestIdxS
  store 4611686018427387903, %bestS
  store 0, %iS
  br scan
scan:
  %i = load %iS
  %ic = icmp slt %i, %n
  br %ic, sbody, rpick
sbody:
  %vP = gep %visB, %i
  %v = load %vP
  %taken = icmp ne %v, 0
  br %taken, snext, smeasure
smeasure:
  %xP = gep %base, %i
  %x = load %xP
  %yP = gep %ysB, %i
  %y = load %yP
  %d = call @dist2(%x, %y, 1000, 1000)
  %b = load %bestS
  %closer = icmp slt %d, %b
  br %closer, supdate, snext
supdate:
  store %d, %bestS
  store %i, %bestIdxS
  br snext
snext:
  %i1 = add %i, 1
  store %i1, %iS
  br scan
rpick:
  %bi = load %bestIdxS
  %found = icmp sge %bi, 0
  br %found, rmark, alldone
rmark:
  %mP = gep %visB, %bi
  store 1, %mP
  %bd = load %bestS
  %odP = gep %outdB, %r
  store %bd, %odP
  %oiP = gep %outiB, %r
  store %bi, %oiP
  %a0 = load %accS
  %a1 = add %a0, %bd
  store %a1, %accS
  %ic0 = load %idxCsS
  %ic1 = mul %ic0, 37
  %ic2 = add %ic1, %bi
  store %ic2, %idxCsS
  %r1 = add %r, 1
  store %r1, %rS
  br rloop
alldone:
  store 0, %iS
  br emitloop
emitloop:
  %ei = load %iS
  %ec = icmp slt %ei, %k
  br %ec, emitbody, emitdone
emitbody:
  %edP = gep %outdB, %ei
  %ed = load %edP
  out %ed
  %ei1 = add %ei, 1
  store %ei1, %iS
  br emitloop
emitdone:
  %accF = load %accS
  out %accF
  %icsF = load %idxCsS
  out %icsF
  ret %accF
}
`
