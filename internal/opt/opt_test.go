package opt

import (
	"math/rand"
	"strings"
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/backend"
	"ferrum/internal/ir"
	"ferrum/internal/machine"
	"ferrum/internal/progen"
)

const memSize = 1 << 20

func TestStoreToLoadForwarding(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$5, %rax
	movq	%rax, -8(%rbp)
	movq	-8(%rbp), %rax
	movq	-8(%rbp), %rcx
	out	%rax
	out	%rcx
	hlt
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	o, rep, err := Optimize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LoadsEliminated != 1 {
		t.Errorf("eliminated = %d, want 1 (reload into same register)", rep.LoadsEliminated)
	}
	if rep.LoadsForwarded != 1 {
		t.Errorf("forwarded = %d, want 1 (reload into another register)", rep.LoadsForwarded)
	}
	text := o.Func("main")
	// The second load became a register move.
	found := false
	for _, in := range text.Insts {
		if in.Op == asm.MOVQ && in.A[0].IsReg(asm.RAX) && in.A[1].IsReg(asm.RCX) {
			found = true
		}
	}
	if !found {
		t.Errorf("forwarded move missing:\n%s", o)
	}
}

func TestImmediateForwarding(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$42, -8(%rbp)
	movq	-8(%rbp), %rax
	out	%rax
	hlt
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	o, rep, err := Optimize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LoadsForwarded != 1 {
		t.Errorf("forwarded = %d", rep.LoadsForwarded)
	}
	if !strings.Contains(o.String(), "movq\t$42, %rax") {
		t.Errorf("immediate not forwarded:\n%s", o)
	}
}

func TestInvalidationRules(t *testing.T) {
	// A register redefinition, an aliasing store, and a call must each
	// prevent forwarding.
	src := `
	.globl	main
main:
	movq	$1, %rax
	movq	%rax, -8(%rbp)
	movq	$2, %rax
	movq	-8(%rbp), %rcx
	movq	%rcx, (%rdx)
	movq	-8(%rbp), %rsi
	callq	main
	movq	-8(%rbp), %rdi
	hlt
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	o, rep, err := Optimize(prog)
	if err != nil {
		t.Fatal(err)
	}
	// First reload: rax was overwritten, but the slot still maps to...
	// rax mapping is invalidated, so the load stays a load. After the
	// aliasing store and the call, loads must also stay.
	loads := 0
	for _, in := range o.Func("main").Insts {
		if in.Op == asm.MOVQ && in.A[0].Kind == asm.KMem {
			loads++
		}
	}
	if loads != 3 {
		t.Errorf("loads = %d, want all 3 preserved:\n%s", loads, o)
	}
	_ = rep
}

func TestLabelBoundaryInvalidates(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$1, %rax
	movq	%rax, -8(%rbp)
	jmp	.Lnext
.Lnext:
	movq	-8(%rbp), %rcx
	out	%rcx
	hlt
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	o, rep, err := Optimize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LoadsForwarded != 0 || rep.LoadsEliminated != 0 {
		t.Errorf("forwarding across a label: %+v", rep)
	}
	// But the jump to the next instruction is gone.
	if rep.JumpsElided != 1 {
		t.Errorf("jumps elided = %d", rep.JumpsElided)
	}
	if strings.Contains(o.Func("main").Insts[2].Op.String(), "jmp") {
		t.Errorf("jmp not elided:\n%s", o)
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	irSrc := `
func @main(%base, %n) {
entry:
  %iS = alloca 1
  %accS = alloca 1
  store 0, %iS
  store 0, %accS
  br loop
loop:
  %i = load %iS
  %c = icmp slt %i, %n
  br %c, body, done
body:
  %p = gep %base, %i
  %v = load %p
  %a = load %accS
  %a2 = add %a, %v
  store %a2, %accS
  %i2 = add %i, 1
  store %i2, %iS
  br loop
done:
  %r = load %accS
  out %r
  ret %r
}
`
	mod, err := ir.Parse(irSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	o, rep, err := Optimize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LoadsForwarded+rep.LoadsEliminated == 0 {
		t.Error("optimizer found nothing on -O0 output")
	}
	if o.StaticInstCount() >= prog.StaticInstCount() {
		t.Errorf("no shrink: %d -> %d", prog.StaticInstCount(), o.StaticInstCount())
	}
	run := func(p *asm.Program) machine.Result {
		m, err := machine.New(p, memSize)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range []uint64{10, 20, 30, 40} {
			if err := m.WriteWordImage(8192+8*uint64(i), v); err != nil {
				t.Fatal(err)
			}
		}
		return m.Run(machine.RunOpts{Args: []uint64{8192, 4}})
	}
	a, b := run(prog), run(o)
	if a.Outcome != machine.OutcomeOK || b.Outcome != machine.OutcomeOK {
		t.Fatalf("outcomes %v/%v (%s)", a.Outcome, b.Outcome, b.CrashMsg)
	}
	if a.Output[0] != b.Output[0] {
		t.Fatalf("outputs differ: %v vs %v", a.Output, b.Output)
	}
	if b.Cycles >= a.Cycles {
		t.Errorf("optimised not faster: %v vs %v cycles", b.Cycles, a.Cycles)
	}
}

// TestOptimizeFuzz: random programs keep identical outputs after
// optimisation.
func TestOptimizeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 60; i++ {
		mod, err := progen.Generate(rng, progen.Options{Stmts: 25, Calls: i%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := backend.Compile(mod)
		if err != nil {
			t.Fatal(err)
		}
		o, _, err := Optimize(prog)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		args := []uint64{8192, uint64(rng.Int63n(5000)), uint64(rng.Int63n(5000))}
		run := func(p *asm.Program) machine.Result {
			m, err := machine.New(p, memSize)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < 8; s++ {
				if err := m.WriteWordImage(8192+8*uint64(s), uint64(s+11)); err != nil {
					t.Fatal(err)
				}
			}
			return m.Run(machine.RunOpts{Args: args, MaxSteps: 5_000_000})
		}
		a, b := run(prog), run(o)
		if a.Outcome != machine.OutcomeOK || b.Outcome != machine.OutcomeOK {
			t.Fatalf("iter %d: outcomes %v/%v (%s)\n%s", i, a.Outcome, b.Outcome, b.CrashMsg, mod)
		}
		if len(a.Output) != len(b.Output) {
			t.Fatalf("iter %d: output lengths differ\n%s", i, mod)
		}
		for j := range a.Output {
			if a.Output[j] != b.Output[j] {
				t.Fatalf("iter %d: output[%d] %d vs %d\n%s", i, j, a.Output[j], b.Output[j], mod)
			}
		}
	}
}

func TestLabeledJumpKept(t *testing.T) {
	// A jmp that itself carries a label must not be elided (something
	// may jump to it).
	src := `
	.globl	main
main:
	cmpq	$0, %rax
	je	.Lj
	hlt
.Lj:
	jmp	.Lnext
.Lnext:
	hlt
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	o, rep, err := Optimize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.JumpsElided != 0 {
		t.Errorf("labeled jmp elided:\n%s", o)
	}
}

func TestXmmStoreInvalidatesSlot(t *testing.T) {
	src := `
	.globl	main
main:
	movq	$5, %rax
	movq	%rax, -8(%rbp)
	movq	%xmm0, -8(%rbp)
	movq	-8(%rbp), %rcx
	out	%rcx
	hlt
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := Optimize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LoadsForwarded != 0 || rep.LoadsEliminated != 0 {
		t.Errorf("forwarded across an xmm store: %+v", rep)
	}
}
