// Package opt is a peephole optimizer over the asm subset, modelling the
// step from -O0 to lightly optimised (-O1-style) code: within each basic
// block it forwards stack-slot stores to subsequent loads, eliminates
// redundant reloads, and removes jumps to the next instruction.
//
// The optimizer matters to the reproduction beyond performance: the paper's
// benchmarks were compiled by a production compiler, whose denser code has
// proportionally more of the backend-introduced fault sites (flag
// rematerialisation, address staging) that IR-LEVEL-EDDI cannot protect.
// Running the evaluation at both optimisation levels shows how the
// cross-layer coverage gap widens as slot traffic is optimised away (see
// EXPERIMENTS.md).
package opt

import (
	"fmt"

	"ferrum/internal/asm"
)

// Report counts the rewrites the optimizer performed.
type Report struct {
	LoadsEliminated int // loads deleted because the value was already in place
	LoadsForwarded  int // loads replaced by register moves or immediates
	JumpsElided     int // jumps to the textually next instruction removed
}

// Optimize returns an optimised clone of the program. Runtime scaffolding
// functions are left untouched.
func Optimize(prog *asm.Program) (*asm.Program, *Report, error) {
	out := prog.Clone()
	rep := &Report{}
	for _, f := range out.Funcs {
		optimizeFunc(f, rep)
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("opt: produced invalid program: %w", err)
	}
	return out, rep, nil
}

// slotVal describes what a frame slot currently mirrors.
type slotVal struct {
	isImm bool
	reg   asm.Reg
	imm   int64
}

func optimizeFunc(f *asm.Func, rep *Report) {
	forwardSlots(f, rep)
	elideJumps(f, rep)
}

// forwardSlots runs the per-block slot-cache dataflow.
func forwardSlots(f *asm.Func, rep *Report) {
	var out []asm.Inst
	cache := map[int64]slotVal{}

	invalidateReg := func(r asm.Reg) {
		for k, v := range cache {
			if !v.isImm && v.reg == r {
				delete(cache, k)
			}
		}
	}
	invalidateAll := func() {
		for k := range cache {
			delete(cache, k)
		}
	}

	for _, in := range f.Insts {
		// Block boundary: labels mean unknown predecessors.
		if len(in.Labels) > 0 {
			invalidateAll()
		}

		if repl, drop, handled := rewriteSlotAccess(in, cache, rep); handled {
			if !drop {
				out = append(out, repl)
			} else if len(in.Labels) > 0 {
				// Never drop a labelled instruction silently; keep a nop
				// to anchor the label. (Labels invalidate the cache, so
				// this cannot happen: rewrites need a warm cache.)
				nop := asm.NewInst(asm.NOP)
				nop.Labels = in.Labels
				out = append(out, nop)
			}
		} else {
			out = append(out, in)
			updateCache(in, cache, invalidateReg, invalidateAll)
		}
		if asm.EndsBlock(in.Op) || in.Op == asm.CALL {
			invalidateAll()
		}
	}
	f.Insts = out
}

// rewriteSlotAccess handles the two rewrite patterns. handled reports
// whether the instruction was consumed by a rewrite; drop means it is
// deleted entirely.
func rewriteSlotAccess(in asm.Inst, cache map[int64]slotVal, rep *Report) (asm.Inst, bool, bool) {
	if in.Op != asm.MOVQ || len(in.A) != 2 {
		return asm.Inst{}, false, false
	}
	src, dst := in.A[0], in.A[1]
	// Load from a frame slot into a 64-bit register.
	if isFrameSlot(src) && dst.Kind == asm.KReg && dst.W == asm.W64 {
		v, ok := cache[src.M.Disp]
		if !ok {
			return asm.Inst{}, false, false
		}
		if !v.isImm && v.reg == dst.Reg {
			rep.LoadsEliminated++
			// Value already in the destination register: drop the load.
			// The cache stays valid (nothing changed).
			return asm.Inst{}, true, true
		}
		rep.LoadsForwarded++
		repl := in
		if v.isImm {
			repl.A = []asm.Operand{asm.Imm(v.imm), dst}
		} else {
			repl.A = []asm.Operand{asm.Reg64(v.reg), dst}
		}
		// The destination register now mirrors the slot too; prefer to
		// keep the existing (older) mapping, but update mappings broken
		// by the write to dst.
		for k, sv := range cache {
			if !sv.isImm && sv.reg == dst.Reg {
				delete(cache, k)
			}
		}
		if v.isImm {
			cache[src.M.Disp] = v
		} else {
			cache[src.M.Disp] = slotVal{reg: dst.Reg}
		}
		return repl, false, true
	}
	return asm.Inst{}, false, false
}

// updateCache tracks the effect of a (non-rewritten) instruction.
func updateCache(in asm.Inst, cache map[int64]slotVal,
	invalidateReg func(asm.Reg), invalidateAll func()) {
	// Stores to frame slots refresh the cache; all other memory writes
	// may alias a slot through an alloca pointer and flush it.
	if in.Op == asm.MOVQ && len(in.A) == 2 && isFrameSlot(in.A[1]) {
		src := in.A[0]
		switch {
		case src.Kind == asm.KReg && src.W == asm.W64:
			cache[in.A[1].M.Disp] = slotVal{reg: src.Reg}
		case src.Kind == asm.KImm:
			cache[in.A[1].M.Disp] = slotVal{isImm: true, imm: src.Imm}
		default:
			delete(cache, in.A[1].M.Disp)
		}
		return
	}
	d := asm.DestOf(in)
	switch d.Kind {
	case asm.DestGPR:
		invalidateReg(d.Reg)
		if in.Op == asm.IDIVQ {
			invalidateReg(asm.RDX) // remainder write
		}
	}
	// Any memory write outside the frame-slot pattern may alias.
	if writesMemory(in) {
		invalidateAll()
	}
	if in.Op == asm.CALL {
		invalidateAll()
	}
}

// isFrameSlot matches the backend's canonical %rbp-relative value slots.
func isFrameSlot(o asm.Operand) bool {
	return o.Kind == asm.KMem && o.M.Base == asm.RBP &&
		o.M.Index == asm.RNone && o.M.Disp < 0
}

// writesMemory reports whether the instruction stores to memory anywhere
// other than a frame slot (push included: it writes the stack).
func writesMemory(in asm.Inst) bool {
	switch in.Op {
	case asm.PUSHQ:
		return true
	case asm.MOVQ, asm.MOVL, asm.MOVB:
		d := in.Dst()
		return d.Kind == asm.KMem && !isFrameSlot(d)
	case asm.ADDQ, asm.SUBQ, asm.IMULQ, asm.ANDQ, asm.ORQ, asm.XORQ,
		asm.SHLQ, asm.SHRQ, asm.SARQ, asm.NEGQ:
		return in.Dst().Kind == asm.KMem
	}
	return false
}

// elideJumps removes `jmp L` when L labels the next instruction.
func elideJumps(f *asm.Func, rep *Report) {
	var out []asm.Inst
	for i, in := range f.Insts {
		if in.Op == asm.JMP && i+1 < len(f.Insts) {
			target := in.A[0].Label
			next := f.Insts[i+1]
			hit := false
			for _, l := range next.Labels {
				if l == target {
					hit = true
				}
			}
			if hit && len(in.Labels) == 0 {
				rep.JumpsElided++
				continue
			}
		}
		out = append(out, in)
	}
	f.Insts = out
}
