// Package core ties the FERRUM toolchain together: compile IR to the
// modelled x86-64 subset, apply a protection technique, execute on the
// machine model, and run fault-injection campaigns. It is the layer the
// public ferrum package, the command-line tools and the examples build on.
package core

import (
	"fmt"

	"ferrum/internal/asm"
	"ferrum/internal/backend"
	"ferrum/internal/eddi"
	"ferrum/internal/ferrumpass"
	"ferrum/internal/fi"
	"ferrum/internal/ir"
	"ferrum/internal/irpass"
	"ferrum/internal/machine"
	"ferrum/internal/opt"
)

// DefaultMemSize is the machine/interpreter memory used when a Pipeline
// does not override it.
const DefaultMemSize = 1 << 20

// Pipeline is a configured FERRUM toolchain. The zero value is usable; New
// applies the defaults explicitly.
type Pipeline struct {
	// MemSize is the memory given to machines and interpreters.
	MemSize int
	// Ferrum configures the FERRUM pass (batch size, SIMD, spares).
	Ferrum ferrumpass.Config
}

// New returns a pipeline with default settings.
func New() *Pipeline {
	return &Pipeline{MemSize: DefaultMemSize}
}

func (p *Pipeline) memSize() int {
	if p.MemSize > 0 {
		return p.MemSize
	}
	return DefaultMemSize
}

// ParseIR parses and verifies IR source text.
func (p *Pipeline) ParseIR(src string) (*ir.Module, error) {
	return ir.Parse(src)
}

// ParseASM parses assembly source text.
func (p *Pipeline) ParseASM(src string) (*asm.Program, error) {
	return asm.Parse(src)
}

// CompileIR parses IR source and compiles it to assembly.
func (p *Pipeline) CompileIR(src string) (*asm.Program, error) {
	mod, err := ir.Parse(src)
	if err != nil {
		return nil, err
	}
	return backend.Compile(mod)
}

// Compile lowers a verified module to assembly.
func (p *Pipeline) Compile(mod *ir.Module) (*asm.Program, error) {
	return backend.Compile(mod)
}

// Optimize applies the -O1-style peephole optimizer (store-to-load
// forwarding, redundant reload elimination, jump threading) to a compiled
// program. Protection passes compose with optimized code.
func (p *Pipeline) Optimize(prog *asm.Program) (*asm.Program, *opt.Report, error) {
	return opt.Optimize(prog)
}

// Protect applies the FERRUM transform to an assembly program.
func (p *Pipeline) Protect(prog *asm.Program) (*asm.Program, *ferrumpass.Report, error) {
	return ferrumpass.Protect(prog, p.Ferrum)
}

// ProtectHybrid applies the HYBRID-ASSEMBLY-LEVEL-EDDI baseline's assembly
// half to a compiled program. For the full hybrid pipeline (including the
// IR-level signature protection of branches and comparisons), use
// ProtectModuleHybrid.
func (p *Pipeline) ProtectHybrid(prog *asm.Program) (*asm.Program, *eddi.Report, error) {
	return eddi.Protect(prog)
}

// ProtectModuleIREDDI applies the IR-LEVEL-EDDI baseline and compiles.
func (p *Pipeline) ProtectModuleIREDDI(mod *ir.Module) (*asm.Program, error) {
	prot, err := irpass.EDDI(mod)
	if err != nil {
		return nil, err
	}
	return backend.Compile(prot)
}

// ProtectModuleHybrid applies the full hybrid baseline: IR signature
// protection, compilation, and assembly-level duplication.
func (p *Pipeline) ProtectModuleHybrid(mod *ir.Module) (*asm.Program, error) {
	sig, err := irpass.Signature(mod)
	if err != nil {
		return nil, err
	}
	prog, err := backend.Compile(sig)
	if err != nil {
		return nil, err
	}
	prot, _, err := eddi.Protect(prog)
	return prot, err
}

// ProtectModuleFerrum compiles a module and applies FERRUM.
func (p *Pipeline) ProtectModuleFerrum(mod *ir.Module) (*asm.Program, *ferrumpass.Report, error) {
	prog, err := backend.Compile(mod)
	if err != nil {
		return nil, nil, err
	}
	return ferrumpass.Protect(prog, p.Ferrum)
}

// NewMachine loads a program into a fresh machine.
func (p *Pipeline) NewMachine(prog *asm.Program) (*machine.Machine, error) {
	return machine.New(prog, p.memSize())
}

// Run executes a program with the given arguments after installing data
// words into memory (address -> value).
func (p *Pipeline) Run(prog *asm.Program, args []uint64, data map[uint64]uint64) (machine.Result, error) {
	m, err := machine.New(prog, p.memSize())
	if err != nil {
		return machine.Result{}, err
	}
	for addr, v := range data {
		if err := m.WriteWordImage(addr, v); err != nil {
			return machine.Result{}, err
		}
	}
	return m.Run(machine.RunOpts{Args: args}), nil
}

// Campaign runs an assembly-level fault-injection campaign against a
// program.
func (p *Pipeline) Campaign(prog *asm.Program, args []uint64, data map[uint64]uint64, c fi.Campaign) (fi.Result, error) {
	tgt := fi.AsmTarget{
		Prog:    prog,
		MemSize: p.memSize(),
		Args:    args,
		Setup: func(w fi.MemWriter) error {
			for addr, v := range data {
				if err := w.WriteWordImage(addr, v); err != nil {
					return err
				}
			}
			return nil
		},
	}
	return fi.RunAsmCampaign(tgt, c)
}

// Verify cross-checks a compiled program against the IR interpreter on the
// given inputs, returning an error if outputs or outcomes diverge. It is
// the differential-testing primitive used throughout this repository.
func (p *Pipeline) Verify(mod *ir.Module, prog *asm.Program, args []uint64, data map[uint64]uint64) error {
	ip, err := ir.NewInterp(mod, p.memSize())
	if err != nil {
		return err
	}
	for addr, v := range data {
		if err := ip.WriteWordImage(addr, v); err != nil {
			return err
		}
	}
	ires := ip.Run(ir.RunOpts{Args: args})
	mres, err := p.Run(prog, args, data)
	if err != nil {
		return err
	}
	if ires.Outcome != ir.OutcomeOK {
		return fmt.Errorf("core: IR run failed: %v (%s)", ires.Outcome, ires.CrashMsg)
	}
	if mres.Outcome != machine.OutcomeOK {
		return fmt.Errorf("core: machine run failed: %v (%s)", mres.Outcome, mres.CrashMsg)
	}
	if len(ires.Output) != len(mres.Output) {
		return fmt.Errorf("core: output lengths diverge: ir %d vs asm %d", len(ires.Output), len(mres.Output))
	}
	for i := range ires.Output {
		if ires.Output[i] != mres.Output[i] {
			return fmt.Errorf("core: output[%d] diverges: ir %d vs asm %d", i, ires.Output[i], mres.Output[i])
		}
	}
	return nil
}
