package core

import (
	"strings"
	"testing"

	"ferrum/internal/asm"
	"ferrum/internal/ferrumpass"
	"ferrum/internal/fi"
	"ferrum/internal/machine"
)

const kernelSrc = `
func @main(%base, %n) {
entry:
  %iS = alloca 1
  %accS = alloca 1
  store 0, %iS
  store 0, %accS
  br loop
loop:
  %i = load %iS
  %c = icmp slt %i, %n
  br %c, body, done
body:
  %p = gep %base, %i
  %v = load %p
  %a = load %accS
  %a2 = add %a, %v
  store %a2, %accS
  %i2 = add %i, 1
  store %i2, %iS
  br loop
done:
  %r = load %accS
  out %r
  ret %r
}
`

func testData() map[uint64]uint64 {
	return map[uint64]uint64{8192: 5, 8200: 6, 8208: 7}
}

func TestPipelineCompileRun(t *testing.T) {
	p := New()
	prog, err := p.CompileIR(kernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(prog, []uint64{8192, 3}, testData())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != machine.OutcomeOK || res.Output[0] != 18 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPipelineVerify(t *testing.T) {
	p := New()
	mod, err := p.ParseIR(kernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(mod, prog, []uint64{8192, 3}, testData()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// A protected program also verifies against the unprotected IR.
	prot, _, err := p.Protect(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(mod, prot, []uint64{8192, 3}, testData()); err != nil {
		t.Fatalf("Verify protected: %v", err)
	}
}

func TestPipelineProtectVariantsAgree(t *testing.T) {
	p := New()
	mod, err := p.ParseIR(kernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	args := []uint64{8192, 3}
	want := uint64(18)

	ireddi, err := p.ProtectModuleIREDDI(mod)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := p.ProtectModuleHybrid(mod)
	if err != nil {
		t.Fatal(err)
	}
	fer, rep, err := p.ProtectModuleFerrum(mod)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SIMDEnabled == 0 {
		t.Error("FERRUM report empty")
	}
	for name, prog := range map[string]*asm.Program{"ireddi": ireddi, "hybrid": hybrid, "ferrum": fer} {
		res, err := p.Run(prog, args, testData())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Output[0] != want {
			t.Errorf("%s: output = %v", name, res.Output)
		}
	}
}

func TestPipelineCampaign(t *testing.T) {
	p := New()
	prog, err := p.CompileIR(kernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Campaign(prog, []uint64{8192, 3}, testData(), fi.Campaign{Samples: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 100 || res.DynSites == 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPipelineFerrumConfigFlowsThrough(t *testing.T) {
	p := New()
	p.Ferrum = ferrumpass.Config{DisableSIMD: true}
	prog, err := p.CompileIR(kernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	prot, rep, err := p.Protect(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SIMDEnabled != 0 {
		t.Errorf("SIMD used despite DisableSIMD: %+v", rep)
	}
	if strings.Contains(prot.String(), "vpxor") {
		t.Error("SIMD instructions present despite DisableSIMD")
	}
}

func TestPipelineZeroValueUsable(t *testing.T) {
	var p Pipeline
	if _, err := p.CompileIR(kernelSrc); err != nil {
		t.Fatalf("zero-value pipeline: %v", err)
	}
}

func TestPipelineErrors(t *testing.T) {
	p := New()
	if _, err := p.CompileIR("not ir"); err == nil {
		t.Error("bad IR accepted")
	}
	if _, err := p.ParseASM("frobnicate"); err == nil {
		t.Error("bad asm accepted")
	}
	prog, err := p.CompileIR(kernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Data write outside memory bounds is surfaced.
	if _, err := p.Run(prog, nil, map[uint64]uint64{1 << 40: 1}); err == nil {
		t.Error("out-of-range data accepted")
	}
}
