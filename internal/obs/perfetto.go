package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// traceEvent is one Chrome trace_event record. Complete events (ph "X")
// carry a relative-microsecond timestamp and duration; metadata events
// (ph "M") name the process and the per-lane threads so Perfetto and
// chrome://tracing render one labelled timeline row per cell-worker lane.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace exports spans as a Chrome trace_event JSON document that loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing: every span
// becomes a complete ("X") slice on the timeline row of the worker lane
// that executed it, named after its cell when it has one, with phase and
// attrs preserved under args. epoch is the zero timestamp; a zero epoch
// uses the earliest span start.
func WriteTrace(w io.Writer, spans []Span, epoch time.Time) error {
	if epoch.IsZero() {
		for _, s := range spans {
			if epoch.IsZero() || s.Start.Before(epoch) {
				epoch = s.Start
			}
		}
	}
	lanes := map[int]bool{}
	for _, s := range spans {
		lanes[s.Lane] = true
	}
	laneIDs := make([]int, 0, len(lanes))
	for l := range lanes {
		laneIDs = append(laneIDs, l)
	}
	sort.Ints(laneIDs)

	tf := traceFile{DisplayTimeUnit: "ms"}
	tf.TraceEvents = append(tf.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "injection pipeline"},
	})
	for _, l := range laneIDs {
		name := fmt.Sprintf("cell-worker-%d", l)
		if l == 0 {
			name = "main"
		}
		tf.TraceEvents = append(tf.TraceEvents,
			traceEvent{Name: "thread_name", Ph: "M", PID: 1, TID: l,
				Args: map[string]any{"name": name}},
			// sort_index keeps lanes in worker order top-to-bottom.
			traceEvent{Name: "thread_sort_index", Ph: "M", PID: 1, TID: l,
				Args: map[string]any{"sort_index": l}},
		)
	}
	for _, s := range spans {
		name := s.Name
		if s.Cell != "" && s.Name == "cell" {
			name = s.Cell
		}
		args := map[string]any{}
		if s.Cell != "" {
			args["cell"] = s.Cell
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		dur := s.Dur.Microseconds()
		if dur < 1 {
			dur = 1 // zero-duration slices vanish in Perfetto
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: name,
			Cat:  s.Name,
			Ph:   "X",
			TS:   s.Start.Sub(epoch).Microseconds(),
			Dur:  dur,
			PID:  1,
			TID:  s.Lane,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}
