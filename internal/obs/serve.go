package obs

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// serve.go is the live observability surface: a stdlib net/http server
// exposing the metrics registry as Prometheus text exposition (/metrics),
// the NDJSON event stream over chunked HTTP (/progress), and the stdlib
// pprof handlers (/debug/pprof). One Server per process, enabled by the
// CLIs' -serve flag; the planned fiserve coordinator scrapes the same
// endpoints per worker shard.

// SanitizeMetricName maps a registry metric name onto the Prometheus data
// model: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (the registry's namespace
// separator) and any other invalid rune become underscores; a leading
// digit gains an underscore prefix. "sched.retries" → "sched_retries".
func SanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a float the way the exposition format expects:
// shortest round-trippable decimal, "+Inf" for the unbounded bucket.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-bucketed series with _sum and
// _count. Output is sorted by metric name, so two snapshots with equal
// contents render byte-identically — scrapes are diffable.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(s.Counters) {
		n := SanitizeMetricName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := SanitizeMetricName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name])
	}
	hists := make([]string, 0, len(s.Hists))
	for name := range s.Hists {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	for _, name := range hists {
		h := s.Hists[name]
		n := SanitizeMetricName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", n)
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", n, formatFloat(bound), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", n, formatFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", n, h.Count)
	}
	return bw.Flush()
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ParsePrometheus reads text exposition back into a Snapshot keyed by the
// sanitised metric names. Histogram buckets are de-cumulated back into
// per-bucket counts, so WritePrometheus∘ParsePrometheus round-trips a
// snapshot (modulo name sanitisation). This is the scrape side of the
// reconciliation story: fistat parses a saved /metrics body with it and
// diffs against the journal's own totals.
func ParsePrometheus(r io.Reader) (Snapshot, error) {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
	}
	types := map[string]string{}
	type histAcc struct {
		bounds []float64
		cums   []int64
		sum    float64
		count  int64
	}
	hists := map[string]*histAcc{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) == 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		name, rest, ok := cutSample(line)
		if !ok {
			return s, fmt.Errorf("obs: unparseable exposition line %q", line)
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			if types[base] != "histogram" {
				return s, fmt.Errorf("obs: bucket sample for non-histogram %q", base)
			}
			le, val, err := parseBucket(rest)
			if err != nil {
				return s, err
			}
			h := hists[base]
			if h == nil {
				h = &histAcc{}
				hists[base] = h
			}
			if le == "+Inf" {
				h.count = val
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return s, fmt.Errorf("obs: bad le %q: %v", le, err)
			}
			h.bounds = append(h.bounds, bound)
			h.cums = append(h.cums, val)
		case strings.HasSuffix(name, "_sum") && types[strings.TrimSuffix(name, "_sum")] == "histogram":
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return s, fmt.Errorf("obs: bad sum in %q: %v", line, err)
			}
			base := strings.TrimSuffix(name, "_sum")
			if hists[base] == nil {
				hists[base] = &histAcc{}
			}
			hists[base].sum = v
		case strings.HasSuffix(name, "_count") && types[strings.TrimSuffix(name, "_count")] == "histogram":
			// The +Inf bucket already carries the total; _count re-states it.
			continue
		default:
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return s, fmt.Errorf("obs: bad value in %q: %v", line, err)
			}
			if types[name] == "gauge" {
				s.Gauges[name] = v
			} else {
				s.Counters[name] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	for base, h := range hists {
		hs := HistSnapshot{
			Bounds: h.bounds,
			Counts: make([]int64, len(h.bounds)+1),
			Sum:    h.sum,
			Count:  h.count,
		}
		var prev int64
		for i, c := range h.cums {
			hs.Counts[i] = c - prev
			prev = c
		}
		hs.Counts[len(h.bounds)] = h.count - prev
		s.Hists[base] = hs
	}
	return s, nil
}

// cutSample splits an exposition sample line into metric name (with any
// label suffix folded into rest) and the remainder holding labels + value.
func cutSample(line string) (name, rest string, ok bool) {
	for i, r := range line {
		if r == '{' || r == ' ' || r == '\t' {
			return line[:i], line[i:], true
		}
	}
	return "", "", false
}

// parseBucket extracts the le label and value from `{le="..."} N`.
func parseBucket(rest string) (le string, val int64, err error) {
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "{") {
		return "", 0, fmt.Errorf("obs: bucket sample without labels: %q", rest)
	}
	end := strings.Index(rest, "}")
	if end < 0 {
		return "", 0, fmt.Errorf("obs: unterminated labels: %q", rest)
	}
	labels, value := rest[1:end], strings.TrimSpace(rest[end+1:])
	for _, kv := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if ok && strings.TrimSpace(k) == "le" {
			le = strings.Trim(strings.TrimSpace(v), `"`)
		}
	}
	if le == "" {
		return "", 0, fmt.Errorf("obs: bucket sample without le: %q", rest)
	}
	val, err = strconv.ParseInt(value, 10, 64)
	return le, val, err
}

// Hub is a broadcast io.Writer: every Write fans out to all subscribers.
// The NDJSON sink writes through it so /progress clients see the live
// event stream. Slow clients drop lines instead of stalling the campaign
// (their buffered channel fills); the writer never blocks.
type Hub struct {
	mu   sync.Mutex
	subs map[chan []byte]struct{}
}

// NewHub returns an empty hub; it is usable as an io.Writer immediately.
func NewHub() *Hub { return &Hub{subs: map[chan []byte]struct{}{}} }

// Write broadcasts p (copied — callers reuse their buffers) to every
// subscriber; it never blocks and never fails.
func (h *Hub) Write(p []byte) (int, error) {
	if h == nil {
		return len(p), nil
	}
	h.mu.Lock()
	if len(h.subs) > 0 {
		cp := append([]byte(nil), p...)
		for ch := range h.subs {
			select {
			case ch <- cp:
			default: // slow client: drop this line rather than stall
			}
		}
	}
	h.mu.Unlock()
	return len(p), nil
}

// Subscribe registers a new client; cancel unregisters it and must be
// called exactly once.
func (h *Hub) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, 256)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		delete(h.subs, ch)
		h.mu.Unlock()
	}
}

// Server is the live observability endpoint. Zero campaign-path cost: the
// only interaction with the run is snapshotting the registry when a scrape
// arrives.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	hub     *Hub
	mu      sync.Mutex
	scrapes int64
	cond    *sync.Cond
}

// StartServer listens on addr (host:port; ":0" picks a free port) and
// serves /metrics from snap, /progress from hub, and /debug/pprof. snap is
// called per scrape, so a scrape after the run's summary sees the final
// frozen counters.
func StartServer(addr string, snap func() Snapshot, hub *Hub) (*Server, error) {
	return StartServerMux(addr, snap, hub, nil)
}

// StartServerMux is StartServer with caller-supplied routes: extra, if
// non-nil, is handed the mux before the server starts, so a service (the
// fiserve coordinator) can mount its API next to the standard observability
// surface and share one listener.
func StartServerMux(addr string, snap func() Snapshot, hub *Hub, extra func(*http.ServeMux)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve: %w", err)
	}
	s := &Server{ln: ln, hub: hub}
	s.cond = sync.NewCond(&s.mu)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, snap())
		s.mu.Lock()
		s.scrapes++
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		if hub == nil {
			http.Error(w, "no event stream attached", http.StatusNotFound)
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		ch, cancel := hub.Subscribe()
		defer cancel()
		fl.Flush()
		for {
			select {
			case line := <-ch:
				if _, err := w.Write(line); err != nil {
					return
				}
				fl.Flush()
			case <-r.Context().Done():
				return
			}
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if extra != nil {
		extra(mux)
	}
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr is the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Scrapes reports how many /metrics scrapes have been answered.
func (s *Server) Scrapes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scrapes
}

// AwaitScrape blocks until more than after scrapes have been answered, or
// the timeout elapses; it reports whether the scrape arrived. The CLIs use
// it to keep -serve alive just long enough for one final scrape of the
// frozen end-of-run counters.
func (s *Server) AwaitScrape(after int64, timeout time.Duration) bool {
	if s == nil {
		return false
	}
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.scrapes <= after {
		if time.Now().After(deadline) {
			return false
		}
		s.cond.Wait()
	}
	return true
}

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
