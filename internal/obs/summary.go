package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RenderSummary writes the human end-of-run block from a registry snapshot
// — the single replacement for the per-layer stderr lines the runner used
// to hand-format. Lines appear only when their counters did: a run with no
// campaigns prints no outcome line, one with checkpointing disabled prints
// no checkpointing line. spans, when provided, adds the slowest cells.
func RenderSummary(w io.Writer, s Snapshot, wall time.Duration, spans []Span) {
	c := func(name string) int64 { return s.Counters[name] }

	fmt.Fprintf(w,
		"suite: %d cells, %d injections, %v wall (%v summed cell time); "+
			"builds: %d unique, %d cache hits; goldens: %d unique, %d cache hits\n",
		c(MCells), c(MInjections), wall.Round(time.Millisecond),
		(time.Duration(c(MCellWallUS)) * time.Microsecond).Round(time.Millisecond),
		c(MBuildMisses), c(MBuildHits), c(MGoldenMisses), c(MGoldenHits))

	if n := c(MCkptCampaigns); n > 0 {
		fmt.Fprintf(w,
			"checkpointing: %d campaigns, %d snapshots (%d KiB), "+
				"%d restores, %d cold starts, %d insts skipped\n",
			n, c(MCkptSnapshots), c(MCkptBytes)>>10,
			c(MCkptRestores), c(MCkptColdStarts), c(MCkptSkippedInsts))
	}

	if n := c(MPrunedCampaigns); n > 0 {
		fmt.Fprintf(w,
			"pruning: %d campaigns, %d plans answered statically "+
				"(%d dead, %d masked, %d deduped)\n",
			n, c(MPrunedPlans), c(MPrunedDead), c(MPrunedMasked), c(MPrunedDedup))
	}

	if n := c(MComposedCampaigns); n > 0 {
		fmt.Fprintf(w,
			"compose: %d campaigns, %d sections; %d plans boundary-classified, %d fell back end-to-end\n",
			n, c(MComposedSections), c(MComposedPlans), c(MComposedFallbacks))
		if hits, misses := c(MComposeSectionHits), c(MComposeSectionMisses); hits+misses > 0 {
			fmt.Fprintf(w,
				"compose cache: %d section tables reused, %d measured fresh, %d plans served without execution\n",
				hits, misses, c(MComposePlansServed))
		}
	}

	if n := c(MWidthFallbacks); n > 0 {
		fmt.Fprintf(w, "site widths: %d sites fell back to full-width faults (no recorded width)\n", n)
	}

	if plans := c(MPlans); plans > 0 {
		var parts []string
		for _, o := range []string{"benign", "sdc", "detected", "crash", "hang"} {
			if v := c(MOutcomePrefix + o); v > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", v, o))
			}
		}
		fmt.Fprintf(w, "outcomes: %d plans across %d campaigns: %s\n",
			plans, c(MCampaigns), strings.Join(parts, ", "))
	}

	if n := c(MFusedUops); n > 0 {
		fmt.Fprintf(w, "dispatch: %d blocks entered, %d fused superinstructions executed\n",
			c(MBlocksEntered), n)
	}

	if cells := slowestCells(spans, 3); len(cells) > 0 {
		fmt.Fprintf(w, "slowest cells: %s\n", strings.Join(cells, ", "))
	}
}

// FusionCount is one fused opcode pattern's dynamic execution count,
// extracted from the machine.fusion.* counters the campaigns merged in.
type FusionCount struct {
	Pair string
	Hits int64
}

// TopFusionPairs extracts the fused-pattern counters from a snapshot,
// sorted by dynamic executions descending (ties by name) and truncated to
// n entries (n <= 0 keeps all).
func TopFusionPairs(s Snapshot, n int) []FusionCount {
	var out []FusionCount
	for name, v := range s.Counters {
		if p, ok := strings.CutPrefix(name, MFusionPrefix); ok && v > 0 {
			out = append(out, FusionCount{Pair: p, Hits: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Pair < out[j].Pair
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// RenderFusion writes the -dump-fusion report: dispatch-tier totals and
// the top-n fused opcode patterns by dynamic executions. Silent when the
// run executed no fused superinstructions.
func RenderFusion(w io.Writer, s Snapshot, n int) {
	pairs := TopFusionPairs(s, n)
	if len(pairs) == 0 {
		fmt.Fprintln(w, "fusion: no fused superinstructions executed")
		return
	}
	fmt.Fprintf(w, "fusion: %d blocks entered, %d fused superinstructions; top %d patterns:\n",
		s.Counters[MBlocksEntered], s.Counters[MFusedUops], len(pairs))
	for _, p := range pairs {
		fmt.Fprintf(w, "  %12d  %s\n", p.Hits, p.Pair)
	}
}

// slowestCells returns the top-n "cell" spans by duration as "name dur".
func slowestCells(spans []Span, n int) []string {
	var cells []Span
	for _, s := range spans {
		if s.Name == "cell" {
			cells = append(cells, s)
		}
	}
	sort.SliceStable(cells, func(i, j int) bool { return cells[i].Dur > cells[j].Dur })
	if len(cells) > n {
		cells = cells[:n]
	}
	out := make([]string, len(cells))
	for i, s := range cells {
		out[i] = fmt.Sprintf("%s %v", s.Cell, s.Dur.Round(time.Millisecond))
	}
	return out
}
