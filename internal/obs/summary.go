package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RenderSummary writes the human end-of-run block from a registry snapshot
// — the single replacement for the per-layer stderr lines the runner used
// to hand-format. Lines appear only when their counters did: a run with no
// campaigns prints no outcome line, one with checkpointing disabled prints
// no checkpointing line. spans, when provided, adds the slowest cells.
func RenderSummary(w io.Writer, s Snapshot, wall time.Duration, spans []Span) {
	c := func(name string) int64 { return s.Counters[name] }

	fmt.Fprintf(w,
		"suite: %d cells, %d injections, %v wall (%v summed cell time); "+
			"builds: %d unique, %d cache hits; goldens: %d unique, %d cache hits\n",
		c(MCells), c(MInjections), wall.Round(time.Millisecond),
		(time.Duration(c(MCellWallUS)) * time.Microsecond).Round(time.Millisecond),
		c(MBuildMisses), c(MBuildHits), c(MGoldenMisses), c(MGoldenHits))

	if n := c(MCkptCampaigns); n > 0 {
		fmt.Fprintf(w,
			"checkpointing: %d campaigns, %d snapshots (%d KiB), "+
				"%d restores, %d cold starts, %d insts skipped\n",
			n, c(MCkptSnapshots), c(MCkptBytes)>>10,
			c(MCkptRestores), c(MCkptColdStarts), c(MCkptSkippedInsts))
	}

	if n := c(MPrunedCampaigns); n > 0 {
		fmt.Fprintf(w,
			"pruning: %d campaigns, %d plans answered statically "+
				"(%d dead, %d masked, %d deduped)\n",
			n, c(MPrunedPlans), c(MPrunedDead), c(MPrunedMasked), c(MPrunedDedup))
	}

	if plans := c(MPlans); plans > 0 {
		var parts []string
		for _, o := range []string{"benign", "sdc", "detected", "crash", "hang"} {
			if v := c(MOutcomePrefix + o); v > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", v, o))
			}
		}
		fmt.Fprintf(w, "outcomes: %d plans across %d campaigns: %s\n",
			plans, c(MCampaigns), strings.Join(parts, ", "))
	}

	if cells := slowestCells(spans, 3); len(cells) > 0 {
		fmt.Fprintf(w, "slowest cells: %s\n", strings.Join(cells, ", "))
	}
}

// slowestCells returns the top-n "cell" spans by duration as "name dur".
func slowestCells(spans []Span, n int) []string {
	var cells []Span
	for _, s := range spans {
		if s.Name == "cell" {
			cells = append(cells, s)
		}
	}
	sort.SliceStable(cells, func(i, j int) bool { return cells[i].Dur > cells[j].Dur })
	if len(cells) > n {
		cells = cells[:n]
	}
	out := make([]string, len(cells))
	for i, s := range cells {
		out[i] = fmt.Sprintf("%s %v", s.Cell, s.Dur.Round(time.Millisecond))
	}
	return out
}
