// Package obs is the runner's unified observability core: a metrics
// registry (counters, gauges, fixed-bucket histograms), span-based tracing
// of every pipeline phase, and pluggable sinks (NDJSON event stream,
// Chrome trace_event/Perfetto timeline export, human end-of-run summary).
//
// One Observer is injected from the CLI down through the harness scheduler
// into the fault-injection campaigns, superseding the bespoke telemetry the
// layers grew separately (BuildCache hit/miss counters, fi.CampaignStats,
// the hand-formatted stderr suite summary).
//
// Everything is provably off-path when disabled: nil Observer, Registry,
// Tracer, Ctx, Counter, Gauge, Histogram and ActiveSpan are all valid
// receivers whose methods are no-ops, so instrumented call sites never
// branch on an "enabled" flag and the injection inner loop — which is never
// instrumented per-instruction in the first place — pays nothing.
package obs

// Observer bundles the injectable observability state: one metrics
// registry and one span tracer. A nil *Observer disables everything.
type Observer struct {
	Reg   *Registry
	Trace *Tracer
}

// New returns an Observer with a fresh registry and tracer.
func New() *Observer {
	return &Observer{Reg: NewRegistry(), Trace: NewTracer()}
}

// Cell returns a per-cell handle carrying the cell name and worker lane, so
// phases deep in the pipeline (campaign golden runs, snapshot recording,
// the injection loop) can emit spans attributed to the scheduler cell that
// ran them. Nil observers return nil handles.
func (o *Observer) Cell(cell string, lane int) *Ctx {
	if o == nil {
		return nil
	}
	return &Ctx{obs: o, cell: cell, lane: lane}
}

// Counter resolves a registry counter; nil-safe.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.Counter(name)
}

// Ctx is an Observer scoped to one scheduler cell (name + worker lane).
// A nil *Ctx is valid and inert.
type Ctx struct {
	obs  *Observer
	cell string
	lane int
}

// Span opens a span named name on this cell's lane.
func (c *Ctx) Span(name string) *ActiveSpan {
	if c == nil {
		return nil
	}
	return c.obs.Trace.Start(name, c.cell, c.lane)
}

// Counter resolves a registry counter.
func (c *Ctx) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	return c.obs.Reg.Counter(name)
}

// Gauge resolves a registry gauge.
func (c *Ctx) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	return c.obs.Reg.Gauge(name)
}

// Histogram resolves a registry histogram.
func (c *Ctx) Histogram(name string, bounds []float64) *Histogram {
	if c == nil {
		return nil
	}
	return c.obs.Reg.Histogram(name, bounds)
}

// Cell returns the cell name ("" on nil).
func (c *Ctx) CellName() string {
	if c == nil {
		return ""
	}
	return c.cell
}

// Lane returns the worker lane (0 on nil).
func (c *Ctx) Lane() int {
	if c == nil {
		return 0
	}
	return c.lane
}

// Canonical metric names shared by the layers that report and the sinks
// that render, so the NDJSON stream, the Perfetto export and the human
// summary all reconcile against one source of truth.
const (
	// Scheduler-level (one increment per completed cell).
	MCells         = "sched.cells"        // completed cells
	MCellErrs      = "sched.cell_errors"  // cells that returned an error
	MInjections    = "sched.injections"   // injections attributed to completed cells
	MCellWallUS    = "sched.cell_wall_us" // summed cell wall-clock, µs
	MSchedRetries  = "sched.retries"      // cell attempts repeated after a transient failure
	MSchedTimeouts = "sched.timeouts"     // cells canceled by the per-cell watchdog

	// Build-cache adapters (supersede harness.CacheStats).
	MInstances    = "cache.instances"     // benchmark instantiations performed
	MBuildMisses  = "cache.build_misses"  // unique technique builds
	MBuildHits    = "cache.build_hits"    // builds answered from cache
	MGoldenMisses = "cache.golden_misses" // unique golden runs
	MGoldenHits   = "cache.golden_hits"   // golden runs answered from cache

	// Campaign-level, reported by internal/fi (supersede fi.CampaignStats).
	MCampaigns     = "fi.campaigns"   // campaigns executed
	MPlans         = "fi.plans"       // fault plans executed
	MOutcomePrefix = "fi.outcome."    // + benign|sdc|detected|crash|hang
	MEarlyStops    = "fi.early_stops" // campaigns ended early by the CI-width rule
	// MDetectLatencyPrefix + "<unit>.<outcome>" (unit "cycles" for asm
	// campaigns, "insts" for IR) is the detection-latency histogram for
	// that outcome class: injection → terminal event, bucketed on
	// fi.LatencyBuckets.
	MDetectLatencyPrefix = "fi.detect_latency."
	MCkptCampaigns       = "ckpt.campaigns"      // campaigns with checkpointing on
	MCkptSnapshots       = "ckpt.snapshots"      // snapshots recorded
	MCkptBytes           = "ckpt.snapshot_bytes" // dirtied bytes captured
	MCkptRestores        = "ckpt.restores"       // plans resumed from a snapshot
	MCkptColdStarts      = "ckpt.cold_starts"    // plans run from scratch
	MCkptSkippedInsts    = "ckpt.skipped_insts"  // dynamic instructions fast-forwarded
	HCellWallMS          = "sched.cell_wall_ms"  // histogram of cell wall-clock, ms

	// Static pruning (internal/prune driven by fi.Campaign.Prune).
	MPrunedCampaigns = "fi.pruned_campaigns" // campaigns run in a prune mode
	MPrunedPlans     = "fi.pruned_plans"     // plans answered statically, not executed
	MPrunedDead      = "fi.pruned_dead"      // ... of which dead (liveness)
	MPrunedMasked    = "fi.pruned_masked"    // ... of which masked (and/shift/partial write)
	MPrunedDedup     = "fi.pruned_dedup"     // ... of which deduplicated onto a class representative
	MWidthFallbacks  = "fi.width_fallbacks"  // sites whose recorded width was missing/zero

	// Dispatch-tier counters, reported by internal/fi from the machines a
	// campaign executed on (golden template plus per-worker clones).
	MBlocksEntered = "machine.blocks_entered" // basic blocks dispatched by the block loop
	MFusedUops     = "machine.fused_uops"     // fused superinstructions executed
	// MFusionPrefix + a pair name (e.g. "vpxor+vptest+jcc") counts that
	// fused pattern's dynamic executions; -dump-fusion renders the top N.
	MFusionPrefix = "machine.fusion."

	// Compositional campaigns (internal/fi driven by fi.Campaign.Compose,
	// section-table cache in internal/compose).
	MComposedCampaigns = "fi.composed_campaigns" // campaigns run in a compose mode
	MComposedPlans     = "fi.composed_plans"     // plans resolved at a section boundary
	MComposedSections  = "fi.composed_sections"  // sections measured or served
	MComposedFallbacks = "fi.composed_fallbacks" // plans run end-to-end (ambiguous boundary)

	MComposeSectionHits   = "compose.cache_section_hits"   // section tables answered from cache
	MComposeSectionMisses = "compose.cache_section_misses" // section tables measured fresh
	MComposePlansServed   = "compose.cache_plans_served"   // plans answered from cached tables

	// Durable-campaign journal (written by internal/fi and the CLIs).
	MJournalRecords      = "journal.records"       // records appended this process
	MJournalSyncs        = "journal.syncs"         // fsync batches flushed
	MJournalSkippedPlans = "journal.skipped_plans" // plans answered from a resumed journal
	MJournalSkippedCells = "journal.skipped_cells" // whole campaigns answered from a cell record
)

// CellWallBuckets are the HCellWallMS bucket bounds (milliseconds).
var CellWallBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000, 60000}
