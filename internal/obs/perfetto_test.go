package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestWriteTraceConcurrentLanes: spans emitted by concurrent cell workers
// must export with stable lane→TID assignment (every span lands on the row
// of the lane that ran it), valid JSON even when cell names contain quotes
// and backslashes, and one thread_name metadata record per lane.
func TestWriteTraceConcurrentLanes(t *testing.T) {
	o := New()
	const lanes = 8
	const spansPerLane = 25
	var wg sync.WaitGroup
	for lane := 1; lane <= lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			cell := fmt.Sprintf(`bench"q%d"\tech`, lane) // hostile name: quotes + backslash
			cx := o.Cell(cell, lane)
			for i := 0; i < spansPerLane; i++ {
				sp := cx.Span("inject")
				sp.SetAttr("plan", fmt.Sprintf(`p"%d"`, i))
				sp.End()
			}
		}(lane)
	}
	wg.Wait()

	spans := o.Trace.Spans()
	if len(spans) != lanes*spansPerLane {
		t.Fatalf("spans = %d, want %d", len(spans), lanes*spansPerLane)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, spans, o.Trace.Epoch()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("trace with quoted names is not valid JSON:\n%.400s", buf.String())
	}

	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	// Every slice must sit on the TID of the lane encoded in its cell name —
	// concurrency must not smear spans across rows.
	sliceCount := map[int]int{}
	threadNames := map[int]bool{}
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			cell, _ := ev.Args["cell"].(string)
			wantCell := fmt.Sprintf(`bench"q%d"\tech`, ev.TID)
			if cell != wantCell {
				t.Fatalf("span on TID %d has cell %q, want %q", ev.TID, cell, wantCell)
			}
			sliceCount[ev.TID]++
		case "M":
			if ev.Name == "thread_name" {
				threadNames[ev.TID] = true
			}
		}
	}
	for lane := 1; lane <= lanes; lane++ {
		if sliceCount[lane] != spansPerLane {
			t.Errorf("lane %d has %d slices, want %d", lane, sliceCount[lane], spansPerLane)
		}
		if !threadNames[lane] {
			t.Errorf("lane %d missing thread_name metadata", lane)
		}
	}

	// Two exports of the same span list are byte-identical: lane metadata is
	// sorted, not map-ordered.
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, spans, o.Trace.Epoch()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("trace export is not deterministic for a fixed span list")
	}

	// The hostile names survive the round trip literally.
	if !strings.Contains(buf.String(), `bench\"q1\"\\tech`) {
		t.Errorf("escaped cell name missing from JSON:\n%.400s", buf.String())
	}
}
