package obs

import (
	"sync"
	"time"
)

// Span is one completed pipeline phase: benchmark instantiation, a
// technique build, a golden run, snapshot recording, a campaign's injection
// loop, a whole scheduler cell, a table render. Cell names the scheduler
// cell the phase belongs to ("bfs/ferrum"); Lane is the cell-worker lane
// that executed it (0 is the main goroutine), which the Perfetto exporter
// maps to one timeline row per worker.
type Span struct {
	Name  string
	Cell  string
	Lane  int
	Start time.Time
	Dur   time.Duration
	Attrs map[string]any
}

// Tracer collects spans and broadcasts each completed one to registered
// sinks. A nil *Tracer starts nil *ActiveSpans, whose every method is a
// no-op — tracing disabled costs one nil check per phase, never per
// instruction.
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	spans []Span
	onEnd []func(Span)
}

// NewTracer returns a tracer whose epoch (the zero point of exported
// relative timestamps) is now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Epoch returns the tracer's zero time.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// OnSpan registers a callback invoked (serialised under the tracer's lock)
// for every completed span — the streaming-sink hook.
func (t *Tracer) OnSpan(fn func(Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onEnd = append(t.onEnd, fn)
}

// Spans returns a copy of every completed span, in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Start opens a span. End completes it; an unfinished span is simply never
// recorded.
func (t *Tracer) Start(name, cell string, lane int) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, s: Span{Name: name, Cell: cell, Lane: lane, Start: time.Now()}}
}

// ActiveSpan is an open span; nil is valid and inert.
type ActiveSpan struct {
	t *Tracer
	s Span
}

// SetAttr attaches a key/value to the span.
func (a *ActiveSpan) SetAttr(key string, v any) {
	if a == nil {
		return
	}
	if a.s.Attrs == nil {
		a.s.Attrs = map[string]any{}
	}
	a.s.Attrs[key] = v
}

// End closes the span, records it, and fans it out to the sinks.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.s.Dur = time.Since(a.s.Start)
	a.t.mu.Lock()
	a.t.spans = append(a.t.spans, a.s)
	sinks := a.t.onEnd
	for _, fn := range sinks {
		fn(a.s)
	}
	a.t.mu.Unlock()
}
