package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// NDJSON streams observability records as newline-delimited JSON, one
// object per line. Record types:
//
//	{"type":"meta",    "tool":..., "argv":[...], "start_unix_us":...}
//	{"type":"span",    "name":..., "cell":..., "lane":N, "start_us":..., "dur_us":..., "attrs":{...}}
//	{"type":"metrics", "counters":{...}, "gauges":{...}, "histograms":{...}}
//
// start_us is relative to the sink's epoch (the tracer's, when attached via
// Attach), so a stream is self-contained and replayable. Writes are
// serialised; any io error is remembered and reported by Err/Close.
type NDJSON struct {
	mu    sync.Mutex
	w     io.Writer
	epoch time.Time
	err   error
}

// NewNDJSON returns a sink writing to w with the given epoch (zero time for
// span start offsets). A zero epoch falls back to the first record's time.
func NewNDJSON(w io.Writer, epoch time.Time) *NDJSON {
	if epoch.IsZero() {
		epoch = time.Now()
	}
	return &NDJSON{w: w, epoch: epoch}
}

// Attach subscribes the sink to every span the tracer completes and aligns
// the sink's epoch with the tracer's.
func (n *NDJSON) Attach(t *Tracer) {
	if n == nil || t == nil {
		return
	}
	n.mu.Lock()
	n.epoch = t.Epoch()
	n.mu.Unlock()
	t.OnSpan(n.Span)
}

// Meta writes the stream-opening metadata record.
func (n *NDJSON) Meta(tool string, argv []string) {
	n.write(map[string]any{
		"type":          "meta",
		"tool":          tool,
		"argv":          argv,
		"start_unix_us": n.epoch.UnixMicro(),
	})
}

// Span writes one completed span record.
func (n *NDJSON) Span(s Span) {
	rec := map[string]any{
		"type":     "span",
		"name":     s.Name,
		"lane":     s.Lane,
		"start_us": s.Start.Sub(n.epoch).Microseconds(),
		"dur_us":   s.Dur.Microseconds(),
	}
	if s.Cell != "" {
		rec["cell"] = s.Cell
	}
	if len(s.Attrs) > 0 {
		rec["attrs"] = s.Attrs
	}
	n.write(rec)
}

// Metrics writes a registry snapshot record (conventionally the stream's
// final line, so consumers can reconcile counters against the span stream).
func (n *NDJSON) Metrics(s Snapshot) {
	n.write(map[string]any{
		"type":       "metrics",
		"counters":   s.Counters,
		"gauges":     s.Gauges,
		"histograms": s.Hists,
	})
}

func (n *NDJSON) write(rec map[string]any) {
	if n == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		n.err = err
		return
	}
	if _, err := n.w.Write(append(b, '\n')); err != nil {
		n.err = fmt.Errorf("obs: ndjson write: %w", err)
	}
}

// Err reports the first write/marshal error, if any.
func (n *NDJSON) Err() error {
	if n == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}
