package obs

import (
	"fmt"
	"net/http"
	"strings"
)

// remote.go is the scrape side of multi-process observability: the fiserve
// coordinator pulls each worker's /metrics surface as a Snapshot and merges
// the pieces into its own registry view. Fetched snapshots are keyed by
// sanitised metric names (the only names the wire format carries), which
// Snapshot.Merge handles like any other: merging a fetched snapshot into a
// live registry snapshot adds counters and histogram buckets under whichever
// spelling each side uses, so callers merging across the wire should fetch
// both sides or sanitise first.

// FetchSnapshot scrapes base's /metrics endpoint and parses the exposition
// body into a Snapshot. base is the server root ("http://host:port"); a nil
// client uses http.DefaultClient.
func FetchSnapshot(client *http.Client, base string) (Snapshot, error) {
	if client == nil {
		client = http.DefaultClient
	}
	url := strings.TrimSuffix(base, "/") + "/metrics"
	resp, err := client.Get(url)
	if err != nil {
		return Snapshot{}, fmt.Errorf("obs: fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Snapshot{}, fmt.Errorf("obs: fetch %s: %s", url, resp.Status)
	}
	s, err := ParsePrometheus(resp.Body)
	if err != nil {
		return Snapshot{}, fmt.Errorf("obs: fetch %s: %w", url, err)
	}
	return s, nil
}

// FilterSnapshot returns a copy of s holding only the metrics keep accepts.
// The coordinator uses it to strip fi.* campaign counters out of worker
// snapshots before merging: merged campaign Results are replayed into the
// coordinator's own registry exactly once (fi.ReplayResult), so admitting
// the workers' per-shard fi.* totals as well would double-count every plan.
func FilterSnapshot(s Snapshot, keep func(name string) bool) Snapshot {
	out := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
	}
	for k, v := range s.Counters {
		if keep(k) {
			out.Counters[k] = v
		}
	}
	for k, v := range s.Gauges {
		if keep(k) {
			out.Gauges[k] = v
		}
	}
	for k, h := range s.Hists {
		if keep(k) {
			out.Hists[k] = h.clone()
		}
	}
	return out
}
