package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op, which is what keeps disabled
// instrumentation off the hot path — call sites never branch on "enabled".
type Counter struct{ v atomic.Int64 }

// Add increments the counter; no-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value; 0 on a nil receiver.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-written value (worker counts, effective K, ...).
// The zero value is ready; a nil *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores the value; no-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// SetMax raises the gauge to n if n is larger (high-water marks).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value; 0 on a nil receiver.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper bounds in ascending order; an implicit +Inf bucket catches the
// rest. All methods are safe for concurrent use; nil receivers are no-ops.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	n      atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample; no-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// AddBuckets folds a pre-bucketed distribution into the histogram: counts
// must follow the histogram's own geometry (len(bounds)+1 entries, the
// final one the +Inf bucket). Mismatched shapes are dropped rather than
// smeared across the wrong buckets. Nil receivers are no-ops.
func (h *Histogram) AddBuckets(counts []int64, sum float64, n int64) {
	if h == nil || len(counts) != len(h.counts) {
		return
	}
	for i := range counts {
		if counts[i] != 0 {
			h.counts[i].Add(counts[i])
		}
	}
	h.n.Add(n)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+sum)) {
			return
		}
	}
}

// HistSnapshot is one histogram's frozen state. Counts[i] is the number of
// observations ≤ Bounds[i]; the final element counts the +Inf bucket.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1)
// from the bucket counts: the smallest bucket bound whose cumulative count
// reaches q·Count. The +Inf bucket reports the largest finite bound.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Bounds[len(h.Bounds)-1]
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Registry is a process-wide (but injectable) name→metric table. All
// lookups memoise, so the same name always returns the same metric, and a
// metric handle resolved once can be used forever without further locking.
// A nil *Registry hands out nil metrics, which are no-ops — the off-path
// guarantee is structural, not conditional.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Nil
// registries return nil (a no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a frozen, serialisable view of a registry. Snapshots from
// different registries (e.g. per-shard runners) merge with Merge.
type Snapshot struct {
	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current values. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    math.Float64frombits(h.sum.Load()),
			Count:  h.n.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Hists[name] = hs
	}
	return s
}

// Merge combines two snapshots: counters and histogram buckets add, gauges
// keep the maximum (they are high-water readings once frozen). The receiver
// is not modified.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		if cur, ok := out.Gauges[k]; !ok || v > cur {
			out.Gauges[k] = v
		}
	}
	for k, v := range s.Hists {
		out.Hists[k] = v.clone()
	}
	for k, v := range o.Hists {
		cur, ok := out.Hists[k]
		if !ok || len(cur.Bounds) != len(v.Bounds) {
			out.Hists[k] = v.clone()
			continue
		}
		merged := cur.clone()
		for i := range v.Counts {
			merged.Counts[i] += v.Counts[i]
		}
		merged.Sum += v.Sum
		merged.Count += v.Count
		out.Hists[k] = merged
	}
	return out
}

func (h HistSnapshot) clone() HistSnapshot {
	return HistSnapshot{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]int64(nil), h.Counts...),
		Sum:    h.Sum,
		Count:  h.Count,
	}
}
