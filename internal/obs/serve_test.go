package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSanitizeMetricName: the registry's dotted namespace must land inside
// the Prometheus data model [a-zA-Z_:][a-zA-Z0-9_:]*.
func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"sched.retries":                "sched_retries",
		"fi.detect_latency.cycles.sdc": "fi_detect_latency_cycles_sdc",
		"machine.fusion.vpxor+vptest":  "machine_fusion_vpxor_vptest",
		"9lives":                       "_9lives",
		"already_fine:with_colon":      "already_fine:with_colon",
		"spaces and-dashes":            "spaces_and_dashes",
		"":                             "",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusCumulative: histogram buckets must be cumulative in le
// order and the +Inf bucket must equal _count — the two invariants every
// Prometheus consumer assumes.
func TestWritePrometheusCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fi.detect_latency.cycles.detected", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		`fi_detect_latency_cycles_detected_bucket{le="1"} 1`,
		`fi_detect_latency_cycles_detected_bucket{le="2"} 3`,
		`fi_detect_latency_cycles_detected_bucket{le="4"} 4`,
		`fi_detect_latency_cycles_detected_bucket{le="8"} 4`,
		`fi_detect_latency_cycles_detected_bucket{le="+Inf"} 5`,
		`fi_detect_latency_cycles_detected_count 5`,
	}
	for _, line := range want {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	if !strings.Contains(out, "# TYPE fi_detect_latency_cycles_detected histogram\n") {
		t.Errorf("exposition missing TYPE line:\n%s", out)
	}
}

// TestWritePrometheusDeterministic: equal snapshots render byte-identically
// (sorted by name), so scrapes can be diffed.
func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Add(1)
	r.Gauge("z.g").Set(9)
	r.Histogram("m.h", []float64{1, 2}).Observe(1.5)
	var b1, b2 strings.Builder
	if err := WritePrometheus(&b1, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b2, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("two renders of the same registry differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	// Counters render in sorted order.
	if strings.Index(b1.String(), "a_one") > strings.Index(b1.String(), "b_two") {
		t.Errorf("counters not sorted:\n%s", b1.String())
	}
}

// TestPrometheusRoundTrip: Parse(Write(snapshot)) reconstructs the snapshot
// under sanitised names — the property fistat's -reconcile mode depends on.
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("fi.plans").Add(123)
	r.Counter("sched.retries").Add(4)
	r.Gauge("sched.workers").Set(8)
	h := r.Histogram("fi.detect_latency.insts.sdc", []float64{1, 2, 4, 8, 16})
	for _, v := range []float64{1, 3, 3, 7, 40, 40, 40} {
		h.Observe(v)
	}
	snap := r.Snapshot()

	var b strings.Builder
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\ninput:\n%s", err, b.String())
	}
	if got.Counters["fi_plans"] != 123 || got.Counters["sched_retries"] != 4 {
		t.Errorf("counters = %v", got.Counters)
	}
	if got.Gauges["sched_workers"] != 8 {
		t.Errorf("gauges = %v", got.Gauges)
	}
	gh, ok := got.Hists["fi_detect_latency_insts_sdc"]
	if !ok {
		t.Fatalf("histogram missing from parse-back: %v", got.Hists)
	}
	wh := snap.Hists["fi.detect_latency.insts.sdc"]
	if !reflect.DeepEqual(gh.Bounds, wh.Bounds) || !reflect.DeepEqual(gh.Counts, wh.Counts) {
		t.Errorf("histogram buckets: got %+v, want %+v", gh, wh)
	}
	if gh.Sum != wh.Sum || gh.Count != wh.Count {
		t.Errorf("histogram sum/count: got %v/%d, want %v/%d", gh.Sum, gh.Count, wh.Sum, wh.Count)
	}
}

// TestParsePrometheusRejectsGarbage: a corrupted scrape fails loudly, not
// with silently-zero metrics.
func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} notanumber\n",
		"# TYPE h histogram\nh_bucket{nolabel=\"1\"} 3\n",
		"c 1.5.3\n",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePrometheus accepted %q", bad)
		}
	}
}

// TestHubBroadcast: every subscriber sees every line; a full (slow) client
// drops lines instead of blocking the writer.
func TestHubBroadcast(t *testing.T) {
	h := NewHub()
	ch1, cancel1 := h.Subscribe()
	ch2, cancel2 := h.Subscribe()
	defer cancel1()
	defer cancel2()
	h.Write([]byte("line1\n"))
	h.Write([]byte("line2\n"))
	for _, ch := range []<-chan []byte{ch1, ch2} {
		for _, want := range []string{"line1\n", "line2\n"} {
			select {
			case got := <-ch:
				if string(got) != want {
					t.Errorf("got %q, want %q", got, want)
				}
			case <-time.After(time.Second):
				t.Fatal("broadcast line never arrived")
			}
		}
	}
	// Saturate one subscriber's buffer; Write must not block.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			h.Write([]byte("flood\n"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Hub.Write blocked on a slow subscriber")
	}
	var nilHub *Hub
	if n, err := nilHub.Write([]byte("x")); n != 1 || err != nil {
		t.Errorf("nil hub Write = %d, %v", n, err)
	}
}

// TestHubConcurrentWriters: the hub is written from campaign goroutines and
// subscribed/unsubscribed from HTTP handlers concurrently; run under -race.
func TestHubConcurrentWriters(t *testing.T) {
	h := NewHub()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fmt.Fprintf(h, "w%d line %d\n", w, i)
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ch, cancel := h.Subscribe()
				select {
				case <-ch:
				default:
				}
				cancel()
			}
		}()
	}
	wg.Wait()
}

// TestServerMetricsEndpoint: a live scrape of /metrics parses back to
// exactly the registry snapshot — the end-to-end half of the round-trip
// conformance test.
func TestServerMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("fi.plans").Add(77)
	h := r.Histogram("fi.detect_latency.cycles.detected", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)
	srv, err := StartServer("127.0.0.1:0", r.Snapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	got, err := ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["fi_plans"] != 77 {
		t.Errorf("scraped fi_plans = %d, want 77", got.Counters["fi_plans"])
	}
	gh := got.Hists["fi_detect_latency_cycles_detected"]
	want := r.Snapshot().Hists["fi.detect_latency.cycles.detected"]
	if !reflect.DeepEqual(gh.Counts, want.Counts) || gh.Count != want.Count || gh.Sum != want.Sum {
		t.Errorf("scraped histogram %+v, want %+v", gh, want)
	}
	if srv.Scrapes() != 1 {
		t.Errorf("Scrapes() = %d, want 1", srv.Scrapes())
	}
}

// TestServerAwaitScrape: AwaitScrape wakes when a scrape lands and times
// out cleanly when none does — the -serve-drain contract.
func TestServerAwaitScrape(t *testing.T) {
	r := NewRegistry()
	srv, err := StartServer("127.0.0.1:0", r.Snapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.AwaitScrape(0, 50*time.Millisecond) {
		t.Error("AwaitScrape reported a scrape that never happened")
	}
	errc := make(chan error, 1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	if !srv.AwaitScrape(0, 5*time.Second) {
		t.Error("AwaitScrape missed the scrape")
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestServerProgressStream: /progress streams hub lines over chunked HTTP
// as they are written — the live NDJSON tail.
func TestServerProgressStream(t *testing.T) {
	r := NewRegistry()
	hub := NewHub()
	srv, err := StartServer("127.0.0.1:0", r.Snapshot, hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	go func() {
		// The subscription races the handler setup; retry until the reader
		// below sees a line.
		for i := 0; i < 100; i++ {
			hub.Write([]byte(`{"t":"progress","done":1}` + "\n"))
			time.Sleep(10 * time.Millisecond)
		}
	}()
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil {
		t.Fatalf("reading progress stream: %v", err)
	}
	if line != `{"t":"progress","done":1}`+"\n" {
		t.Errorf("progress line = %q", line)
	}
}

// TestServerNoHub: /progress without an attached event stream 404s instead
// of hanging.
func TestServerNoHub(t *testing.T) {
	r := NewRegistry()
	srv, err := StartServer("127.0.0.1:0", r.Snapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/progress without hub = %d, want 404", resp.StatusCode)
	}
}

// TestServerPprof: the pprof index answers — profiling a live campaign is
// part of the observatory contract.
func TestServerPprof(t *testing.T) {
	r := NewRegistry()
	srv, err := StartServer("127.0.0.1:0", r.Snapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/ = %d, body %.80q", resp.StatusCode, body)
	}
}

// TestServerNilSafety: a disabled server (nil) is inert like every other
// obs receiver.
func TestServerNilSafety(t *testing.T) {
	var s *Server
	if s.Addr() != "" || s.Scrapes() != 0 || s.AwaitScrape(0, time.Millisecond) || s.Close() != nil {
		t.Error("nil Server methods not inert")
	}
}
