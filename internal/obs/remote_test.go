package obs

import (
	"strings"
	"testing"
)

// TestFetchSnapshotRoundTrip: a snapshot scraped over HTTP from a live
// Server equals the registry's own snapshot under sanitised names,
// histograms included.
func TestFetchSnapshotRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fi.plans").Add(42)
	reg.Counter("journal.records").Add(45)
	reg.Gauge("sched.live").Set(3)
	h := reg.Histogram("fi.detect_latency.cycles.detected", []float64{1, 10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	srv, err := StartServer("127.0.0.1:0", reg.Snapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	got, err := FetchSnapshot(nil, "http://"+srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["fi_plans"] != 42 || got.Counters["journal_records"] != 45 {
		t.Errorf("fetched counters = %v", got.Counters)
	}
	if got.Gauges["sched_live"] != 3 {
		t.Errorf("fetched gauges = %v", got.Gauges)
	}
	hs, ok := got.Hists["fi_detect_latency_cycles_detected"]
	if !ok {
		t.Fatalf("fetched hists = %v, want latency histogram", got.Hists)
	}
	if hs.Count != 3 || hs.Sum != 5055 {
		t.Errorf("fetched histogram count=%d sum=%g, want 3, 5055", hs.Count, hs.Sum)
	}
	// 5 → (1,10], 50 → (10,100], 5000 → +Inf.
	if len(hs.Counts) != 4 {
		t.Fatalf("fetched histogram has %d buckets, want 4", len(hs.Counts))
	}
	for i, c := range []int64{0, 1, 1, 1} {
		if hs.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d", i, hs.Counts[i], c)
		}
	}
}

// TestFetchSnapshotErrors: unreachable servers and non-200 responses are
// reported, not parsed.
func TestFetchSnapshotErrors(t *testing.T) {
	if _, err := FetchSnapshot(nil, "http://127.0.0.1:1"); err == nil {
		t.Error("unreachable server produced no error")
	}
	srv, err := StartServer("127.0.0.1:0", func() Snapshot { return Snapshot{} }, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := FetchSnapshot(nil, "http://"+srv.Addr()+"/nope"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("404 fetch error = %v, want status in message", err)
	}
}

// TestFilterSnapshotSplitsNamespaces: the coordinator's merge rule — strip
// fi_* from worker snapshots, keep everything else — composes out of
// FilterSnapshot + Merge without double-counting.
func TestFilterSnapshotSplitsNamespaces(t *testing.T) {
	worker := Snapshot{
		Counters: map[string]int64{"fi_plans": 40, "journal_records": 41, "ckpt_restores": 12},
		Gauges:   map[string]int64{"sched_live": 2},
		Hists: map[string]HistSnapshot{
			"fi_detect_latency_cycles_detected": {Bounds: []float64{1}, Counts: []int64{1, 2}, Sum: 9, Count: 3},
		},
	}
	keep := func(name string) bool { return !strings.HasPrefix(name, "fi_") }
	f := FilterSnapshot(worker, keep)
	if _, ok := f.Counters["fi_plans"]; ok {
		t.Error("fi_plans survived the filter")
	}
	if _, ok := f.Hists["fi_detect_latency_cycles_detected"]; ok {
		t.Error("fi_* histogram survived the filter")
	}
	if f.Counters["journal_records"] != 41 || f.Counters["ckpt_restores"] != 12 || f.Gauges["sched_live"] != 2 {
		t.Errorf("filtered snapshot lost non-fi metrics: %v %v", f.Counters, f.Gauges)
	}
	// The filtered copy is detached from the original's histogram storage.
	worker.Hists["fi_detect_latency_cycles_detected"].Counts[0] = 99
	merged := Snapshot{Counters: map[string]int64{"journal_records": 1}}.Merge(f)
	if merged.Counters["journal_records"] != 42 {
		t.Errorf("merged journal_records = %d, want 42", merged.Counters["journal_records"])
	}
}
