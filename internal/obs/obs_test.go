package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(3)
	r.Counter("a").Add(2) // same name -> same counter
	if got := r.Counter("a").Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	g.SetMax(3) // lower: ignored
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Errorf("gauge = %d, want 9", got)
	}
}

func TestNilSafety(t *testing.T) {
	// Every disabled handle must be inert, not panic: this is the
	// structural off-path guarantee instrumented call sites rely on.
	var (
		o  *Observer
		r  *Registry
		tr *Tracer
		cx *Ctx
	)
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x", []float64{1}).Observe(2)
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	sp := tr.Start("phase", "cell", 1)
	sp.SetAttr("k", "v")
	sp.End()
	if tr.Spans() != nil {
		t.Error("nil tracer recorded spans")
	}
	cx = o.Cell("c", 2)
	if cx != nil {
		t.Error("nil observer returned non-nil ctx")
	}
	cx.Span("p").End()
	cx.Counter("n").Add(1)
	cx.Histogram("h", nil).Observe(1)
	if cx.CellName() != "" || cx.Lane() != 0 {
		t.Error("nil ctx identity not zero")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100, 1000})
	for _, v := range []float64{1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot().Hists["lat"]
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := []int64{2, 1, 1, 1}; len(s.Counts) != 4 ||
		s.Counts[0] != want[0] || s.Counts[1] != want[1] ||
		s.Counts[2] != want[2] || s.Counts[3] != want[3] {
		t.Errorf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Sum != 5556 {
		t.Errorf("sum = %v, want 5556", s.Sum)
	}
	if q := s.Quantile(0.5); q != 100 {
		t.Errorf("p50 = %v, want 100 (upper bound of median bucket)", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram([]float64{50})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if n := h.n.Load(); n != 8000 {
		t.Errorf("count = %d, want 8000", n)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("n").Add(2)
	b.Counter("n").Add(3)
	b.Counter("only-b").Add(1)
	a.Gauge("g").Set(4)
	b.Gauge("g").Set(9)
	a.Histogram("h", []float64{10}).Observe(1)
	b.Histogram("h", []float64{10}).Observe(100)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["n"] != 5 || m.Counters["only-b"] != 1 {
		t.Errorf("merged counters = %v", m.Counters)
	}
	if m.Gauges["g"] != 9 {
		t.Errorf("merged gauge = %d, want max 9", m.Gauges["g"])
	}
	h := m.Hists["h"]
	if h.Count != 2 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("merged hist = %+v", h)
	}
}

func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	var streamed []Span
	tr.OnSpan(func(s Span) { streamed = append(streamed, s) })
	sp := tr.Start("golden", "bfs/ferrum", 2)
	sp.SetAttr("dyn_insts", 123)
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 || len(streamed) != 1 {
		t.Fatalf("spans = %d recorded, %d streamed; want 1, 1", len(spans), len(streamed))
	}
	s := spans[0]
	if s.Name != "golden" || s.Cell != "bfs/ferrum" || s.Lane != 2 {
		t.Errorf("span identity = %+v", s)
	}
	if s.Dur < 0 {
		t.Errorf("span dur = %v", s.Dur)
	}
	if s.Attrs["dyn_insts"] != 123 {
		t.Errorf("span attrs = %v", s.Attrs)
	}
}

func TestNDJSONStream(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer()
	sink := NewNDJSON(&buf, time.Time{})
	sink.Attach(tr)
	sink.Meta("test", []string{"-x"})
	tr.Start("build", "bfs/raw", 1).End()
	reg := NewRegistry()
	reg.Counter(MInjections).Add(42)
	sink.Metrics(reg.Snapshot())
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	var types []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		typ, _ := rec["type"].(string)
		types = append(types, typ)
		switch typ {
		case "span":
			if rec["name"] != "build" || rec["cell"] != "bfs/raw" {
				t.Errorf("span record = %v", rec)
			}
		case "metrics":
			counters := rec["counters"].(map[string]any)
			if counters[MInjections].(float64) != 42 {
				t.Errorf("metrics record = %v", rec)
			}
		}
	}
	if strings.Join(types, ",") != "meta,span,metrics" {
		t.Errorf("record types = %v", types)
	}
}

func TestWriteTrace(t *testing.T) {
	epoch := time.Now()
	spans := []Span{
		{Name: "cell", Cell: "bfs/ferrum", Lane: 1, Start: epoch.Add(time.Millisecond), Dur: 2 * time.Millisecond},
		{Name: "golden", Cell: "bfs/ferrum", Lane: 1, Start: epoch.Add(time.Millisecond), Dur: time.Millisecond},
		{Name: "render", Lane: 0, Start: epoch.Add(4 * time.Millisecond), Dur: 0},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, spans, epoch); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	var threadNames, slices int
	laneSeen := map[float64]bool{}
	for _, ev := range tf.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				threadNames++
			}
		case "X":
			slices++
			laneSeen[ev["tid"].(float64)] = true
			if ev["dur"].(float64) < 1 {
				t.Errorf("slice with sub-µs dur: %v", ev)
			}
			// The cell span is named after its cell for the timeline.
			if ev["cat"] == "cell" && ev["name"] != "bfs/ferrum" {
				t.Errorf("cell slice name = %v", ev["name"])
			}
		}
	}
	if threadNames != 2 { // lane 0 (main) and lane 1
		t.Errorf("thread_name metadata = %d, want 2", threadNames)
	}
	if slices != 3 || !laneSeen[0] || !laneSeen[1] {
		t.Errorf("slices = %d on lanes %v", slices, laneSeen)
	}
}

func TestRenderSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter(MCells).Add(4)
	r.Counter(MInjections).Add(240)
	r.Counter(MCellWallUS).Add(3_400_000)
	r.Counter(MBuildMisses).Add(4)
	r.Counter(MBuildHits).Add(2)
	r.Counter(MGoldenMisses).Add(4)
	r.Counter(MGoldenHits).Add(1)
	r.Counter(MCkptCampaigns).Add(4)
	r.Counter(MCkptSnapshots).Add(57)
	r.Counter(MCkptBytes).Add(2048)
	r.Counter(MCampaigns).Add(4)
	r.Counter(MPlans).Add(240)
	r.Counter(MOutcomePrefix + "benign").Add(200)
	r.Counter(MOutcomePrefix + "sdc").Add(40)
	r.Counter(MComposedCampaigns).Add(2)
	r.Counter(MComposedSections).Add(26)
	r.Counter(MComposedPlans).Add(90)
	r.Counter(MComposedFallbacks).Add(30)
	r.Counter(MComposeSectionHits).Add(13)
	r.Counter(MComposeSectionMisses).Add(13)
	r.Counter(MComposePlansServed).Add(35)
	r.Counter(MWidthFallbacks).Add(3)
	var buf bytes.Buffer
	spans := []Span{
		{Name: "cell", Cell: "bfs/ferrum", Dur: 2 * time.Second},
		{Name: "cell", Cell: "bfs/raw", Dur: time.Second},
	}
	RenderSummary(&buf, r.Snapshot(), 1200*time.Millisecond, spans)
	got := buf.String()
	for _, needle := range []string{
		"suite: 4 cells, 240 injections, 1.2s wall (3.4s summed cell time)",
		"builds: 4 unique, 2 cache hits", "goldens: 4 unique, 1 cache hits",
		"checkpointing: 4 campaigns, 57 snapshots (2 KiB)",
		"outcomes: 240 plans across 4 campaigns: 200 benign, 40 sdc",
		"compose: 2 campaigns, 26 sections; 90 plans boundary-classified, 30 fell back end-to-end",
		"compose cache: 13 section tables reused, 13 measured fresh, 35 plans served without execution",
		"site widths: 3 sites fell back to full-width faults",
		"slowest cells: bfs/ferrum 2s, bfs/raw 1s",
	} {
		if !strings.Contains(got, needle) {
			t.Errorf("summary missing %q:\n%s", needle, got)
		}
	}
	// A run with no checkpointing, no campaigns, no compose prints none of
	// their lines.
	buf.Reset()
	RenderSummary(&buf, NewRegistry().Snapshot(), 0, nil)
	for _, spurious := range []string{"checkpointing", "outcomes", "compose", "site widths"} {
		if strings.Contains(buf.String(), spurious) {
			t.Errorf("empty-run summary has spurious %q line:\n%s", spurious, buf.String())
		}
	}
}
