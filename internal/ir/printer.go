package ir

import (
	"fmt"
	"strings"
)

// String renders the instruction in the textual syntax Parse accepts.
func (in *Inst) String() string {
	var b strings.Builder
	if in.Name != "" {
		fmt.Fprintf(&b, "%%%s = ", in.Name)
	}
	args := func(vs []Value) string {
		parts := make([]string, len(vs))
		for i, v := range vs {
			parts[i] = v.OperandString()
		}
		return strings.Join(parts, ", ")
	}
	switch {
	case in.Op.IsBinary():
		fmt.Fprintf(&b, "%s %s", in.Op, args(in.Args))
	case in.Op == OpICmp:
		fmt.Fprintf(&b, "icmp %s %s", in.Pred, args(in.Args))
	case in.Op == OpAlloca:
		fmt.Fprintf(&b, "alloca %d", in.NSlots)
	case in.Op == OpBr:
		fmt.Fprintf(&b, "br %s", in.Targets[0])
	case in.Op == OpCondBr:
		fmt.Fprintf(&b, "br %s, %s, %s", in.Args[0].OperandString(), in.Targets[0], in.Targets[1])
	case in.Op == OpCall:
		fmt.Fprintf(&b, "call @%s(%s)", in.Callee, args(in.Args))
	case in.Op == OpRet && len(in.Args) == 0:
		b.WriteString("ret")
	default:
		fmt.Fprintf(&b, "%s %s", in.Op, args(in.Args))
	}
	return b.String()
}

// String renders the function.
func (f *Func) String() string {
	var b strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = "%" + p.Name
	}
	fmt.Fprintf(&b, "func @%s(%s) {\n", f.Name, strings.Join(params, ", "))
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Name)
		for _, in := range blk.Insts {
			fmt.Fprintf(&b, "  %s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the module.
func (m *Module) String() string {
	var b strings.Builder
	for i, f := range m.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.String())
	}
	return b.String()
}
